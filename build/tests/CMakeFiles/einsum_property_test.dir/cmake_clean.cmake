file(REMOVE_RECURSE
  "CMakeFiles/einsum_property_test.dir/einsum_property_test.cc.o"
  "CMakeFiles/einsum_property_test.dir/einsum_property_test.cc.o.d"
  "einsum_property_test"
  "einsum_property_test.pdb"
  "einsum_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/einsum_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
