# Empty dependencies file for einsum_property_test.
# This may be replaced when dependencies are built.
