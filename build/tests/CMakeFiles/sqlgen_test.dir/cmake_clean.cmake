file(REMOVE_RECURSE
  "CMakeFiles/sqlgen_test.dir/sqlgen_test.cc.o"
  "CMakeFiles/sqlgen_test.dir/sqlgen_test.cc.o.d"
  "sqlgen_test"
  "sqlgen_test.pdb"
  "sqlgen_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqlgen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
