# Empty dependencies file for sqlgen_test.
# This may be replaced when dependencies are built.
