# Empty compiler generated dependencies file for tondir_test.
# This may be replaced when dependencies are built.
