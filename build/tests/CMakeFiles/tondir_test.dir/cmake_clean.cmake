file(REMOVE_RECURSE
  "CMakeFiles/tondir_test.dir/tondir_test.cc.o"
  "CMakeFiles/tondir_test.dir/tondir_test.cc.o.d"
  "tondir_test"
  "tondir_test.pdb"
  "tondir_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tondir_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
