# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/tondir_test[1]_include.cmake")
include("/root/repo/build/tests/engine_test[1]_include.cmake")
include("/root/repo/build/tests/optimizer_test[1]_include.cmake")
include("/root/repo/build/tests/sqlgen_test[1]_include.cmake")
include("/root/repo/build/tests/frontend_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/engine_property_test[1]_include.cmake")
include("/root/repo/build/tests/einsum_property_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_test[1]_include.cmake")
include("/root/repo/build/tests/failure_injection_test[1]_include.cmake")
