file(REMOVE_RECURSE
  "CMakeFiles/fig3_tpch_1t.dir/fig3_tpch_1t.cc.o"
  "CMakeFiles/fig3_tpch_1t.dir/fig3_tpch_1t.cc.o.d"
  "fig3_tpch_1t"
  "fig3_tpch_1t.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_tpch_1t.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
