# Empty dependencies file for fig3_tpch_1t.
# This may be replaced when dependencies are built.
