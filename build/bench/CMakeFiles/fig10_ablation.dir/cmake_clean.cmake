file(REMOVE_RECURSE
  "CMakeFiles/fig10_ablation.dir/fig10_ablation.cc.o"
  "CMakeFiles/fig10_ablation.dir/fig10_ablation.cc.o.d"
  "fig10_ablation"
  "fig10_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
