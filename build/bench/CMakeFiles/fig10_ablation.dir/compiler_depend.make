# Empty compiler generated dependencies file for fig10_ablation.
# This may be replaced when dependencies are built.
