file(REMOVE_RECURSE
  "CMakeFiles/fig5_ds_1t.dir/fig5_ds_1t.cc.o"
  "CMakeFiles/fig5_ds_1t.dir/fig5_ds_1t.cc.o.d"
  "fig5_ds_1t"
  "fig5_ds_1t.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_ds_1t.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
