# Empty dependencies file for fig5_ds_1t.
# This may be replaced when dependencies are built.
