# Empty compiler generated dependencies file for fig8_scalability_hybrid.
# This may be replaced when dependencies are built.
