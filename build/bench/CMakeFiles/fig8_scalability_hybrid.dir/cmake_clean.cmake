file(REMOVE_RECURSE
  "CMakeFiles/fig8_scalability_hybrid.dir/fig8_scalability_hybrid.cc.o"
  "CMakeFiles/fig8_scalability_hybrid.dir/fig8_scalability_hybrid.cc.o.d"
  "fig8_scalability_hybrid"
  "fig8_scalability_hybrid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_scalability_hybrid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
