# Empty compiler generated dependencies file for fig4_tpch_4t.
# This may be replaced when dependencies are built.
