file(REMOVE_RECURSE
  "CMakeFiles/fig4_tpch_4t.dir/fig4_tpch_4t.cc.o"
  "CMakeFiles/fig4_tpch_4t.dir/fig4_tpch_4t.cc.o.d"
  "fig4_tpch_4t"
  "fig4_tpch_4t.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_tpch_4t.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
