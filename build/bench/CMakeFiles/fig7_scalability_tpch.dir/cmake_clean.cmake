file(REMOVE_RECURSE
  "CMakeFiles/fig7_scalability_tpch.dir/fig7_scalability_tpch.cc.o"
  "CMakeFiles/fig7_scalability_tpch.dir/fig7_scalability_tpch.cc.o.d"
  "fig7_scalability_tpch"
  "fig7_scalability_tpch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_scalability_tpch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
