# Empty dependencies file for fig7_scalability_tpch.
# This may be replaced when dependencies are built.
