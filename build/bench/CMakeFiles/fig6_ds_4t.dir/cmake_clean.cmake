file(REMOVE_RECURSE
  "CMakeFiles/fig6_ds_4t.dir/fig6_ds_4t.cc.o"
  "CMakeFiles/fig6_ds_4t.dir/fig6_ds_4t.cc.o.d"
  "fig6_ds_4t"
  "fig6_ds_4t.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_ds_4t.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
