# Empty dependencies file for fig6_ds_4t.
# This may be replaced when dependencies are built.
