file(REMOVE_RECURSE
  "CMakeFiles/fig9_covariance.dir/fig9_covariance.cc.o"
  "CMakeFiles/fig9_covariance.dir/fig9_covariance.cc.o.d"
  "fig9_covariance"
  "fig9_covariance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_covariance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
