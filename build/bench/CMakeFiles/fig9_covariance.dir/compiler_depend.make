# Empty compiler generated dependencies file for fig9_covariance.
# This may be replaced when dependencies are built.
