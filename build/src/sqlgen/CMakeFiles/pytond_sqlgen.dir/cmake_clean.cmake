file(REMOVE_RECURSE
  "CMakeFiles/pytond_sqlgen.dir/sqlgen.cc.o"
  "CMakeFiles/pytond_sqlgen.dir/sqlgen.cc.o.d"
  "libpytond_sqlgen.a"
  "libpytond_sqlgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pytond_sqlgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
