file(REMOVE_RECURSE
  "libpytond_sqlgen.a"
)
