# Empty compiler generated dependencies file for pytond_sqlgen.
# This may be replaced when dependencies are built.
