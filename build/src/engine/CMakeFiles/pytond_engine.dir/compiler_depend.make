# Empty compiler generated dependencies file for pytond_engine.
# This may be replaced when dependencies are built.
