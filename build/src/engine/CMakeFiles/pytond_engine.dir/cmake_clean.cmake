file(REMOVE_RECURSE
  "CMakeFiles/pytond_engine.dir/database.cc.o"
  "CMakeFiles/pytond_engine.dir/database.cc.o.d"
  "CMakeFiles/pytond_engine.dir/exec/executor.cc.o"
  "CMakeFiles/pytond_engine.dir/exec/executor.cc.o.d"
  "CMakeFiles/pytond_engine.dir/expr/expr.cc.o"
  "CMakeFiles/pytond_engine.dir/expr/expr.cc.o.d"
  "CMakeFiles/pytond_engine.dir/plan/binder.cc.o"
  "CMakeFiles/pytond_engine.dir/plan/binder.cc.o.d"
  "CMakeFiles/pytond_engine.dir/plan/logical.cc.o"
  "CMakeFiles/pytond_engine.dir/plan/logical.cc.o.d"
  "CMakeFiles/pytond_engine.dir/plan/optimizer.cc.o"
  "CMakeFiles/pytond_engine.dir/plan/optimizer.cc.o.d"
  "CMakeFiles/pytond_engine.dir/sql/parser.cc.o"
  "CMakeFiles/pytond_engine.dir/sql/parser.cc.o.d"
  "libpytond_engine.a"
  "libpytond_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pytond_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
