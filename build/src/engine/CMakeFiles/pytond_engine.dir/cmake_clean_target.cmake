file(REMOVE_RECURSE
  "libpytond_engine.a"
)
