
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/engine/database.cc" "src/engine/CMakeFiles/pytond_engine.dir/database.cc.o" "gcc" "src/engine/CMakeFiles/pytond_engine.dir/database.cc.o.d"
  "/root/repo/src/engine/exec/executor.cc" "src/engine/CMakeFiles/pytond_engine.dir/exec/executor.cc.o" "gcc" "src/engine/CMakeFiles/pytond_engine.dir/exec/executor.cc.o.d"
  "/root/repo/src/engine/expr/expr.cc" "src/engine/CMakeFiles/pytond_engine.dir/expr/expr.cc.o" "gcc" "src/engine/CMakeFiles/pytond_engine.dir/expr/expr.cc.o.d"
  "/root/repo/src/engine/plan/binder.cc" "src/engine/CMakeFiles/pytond_engine.dir/plan/binder.cc.o" "gcc" "src/engine/CMakeFiles/pytond_engine.dir/plan/binder.cc.o.d"
  "/root/repo/src/engine/plan/logical.cc" "src/engine/CMakeFiles/pytond_engine.dir/plan/logical.cc.o" "gcc" "src/engine/CMakeFiles/pytond_engine.dir/plan/logical.cc.o.d"
  "/root/repo/src/engine/plan/optimizer.cc" "src/engine/CMakeFiles/pytond_engine.dir/plan/optimizer.cc.o" "gcc" "src/engine/CMakeFiles/pytond_engine.dir/plan/optimizer.cc.o.d"
  "/root/repo/src/engine/sql/parser.cc" "src/engine/CMakeFiles/pytond_engine.dir/sql/parser.cc.o" "gcc" "src/engine/CMakeFiles/pytond_engine.dir/sql/parser.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/storage/CMakeFiles/pytond_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pytond_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
