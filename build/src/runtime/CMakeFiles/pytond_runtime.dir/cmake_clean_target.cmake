file(REMOVE_RECURSE
  "libpytond_runtime.a"
)
