file(REMOVE_RECURSE
  "CMakeFiles/pytond_runtime.dir/eager.cc.o"
  "CMakeFiles/pytond_runtime.dir/eager.cc.o.d"
  "CMakeFiles/pytond_runtime.dir/interpreter.cc.o"
  "CMakeFiles/pytond_runtime.dir/interpreter.cc.o.d"
  "libpytond_runtime.a"
  "libpytond_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pytond_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
