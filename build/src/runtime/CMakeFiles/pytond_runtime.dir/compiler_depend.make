# Empty compiler generated dependencies file for pytond_runtime.
# This may be replaced when dependencies are built.
