file(REMOVE_RECURSE
  "CMakeFiles/pytond_storage.dir/catalog.cc.o"
  "CMakeFiles/pytond_storage.dir/catalog.cc.o.d"
  "CMakeFiles/pytond_storage.dir/column.cc.o"
  "CMakeFiles/pytond_storage.dir/column.cc.o.d"
  "CMakeFiles/pytond_storage.dir/csv.cc.o"
  "CMakeFiles/pytond_storage.dir/csv.cc.o.d"
  "CMakeFiles/pytond_storage.dir/table.cc.o"
  "CMakeFiles/pytond_storage.dir/table.cc.o.d"
  "libpytond_storage.a"
  "libpytond_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pytond_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
