file(REMOVE_RECURSE
  "libpytond_storage.a"
)
