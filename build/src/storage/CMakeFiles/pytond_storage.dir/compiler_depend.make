# Empty compiler generated dependencies file for pytond_storage.
# This may be replaced when dependencies are built.
