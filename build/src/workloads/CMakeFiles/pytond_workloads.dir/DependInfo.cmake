
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/datasci.cc" "src/workloads/CMakeFiles/pytond_workloads.dir/datasci.cc.o" "gcc" "src/workloads/CMakeFiles/pytond_workloads.dir/datasci.cc.o.d"
  "/root/repo/src/workloads/tpch/dbgen.cc" "src/workloads/CMakeFiles/pytond_workloads.dir/tpch/dbgen.cc.o" "gcc" "src/workloads/CMakeFiles/pytond_workloads.dir/tpch/dbgen.cc.o.d"
  "/root/repo/src/workloads/tpch/queries.cc" "src/workloads/CMakeFiles/pytond_workloads.dir/tpch/queries.cc.o" "gcc" "src/workloads/CMakeFiles/pytond_workloads.dir/tpch/queries.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/engine/CMakeFiles/pytond_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pytond_common.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/pytond_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
