# Empty compiler generated dependencies file for pytond_workloads.
# This may be replaced when dependencies are built.
