file(REMOVE_RECURSE
  "libpytond_workloads.a"
)
