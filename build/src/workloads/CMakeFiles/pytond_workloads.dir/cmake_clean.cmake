file(REMOVE_RECURSE
  "CMakeFiles/pytond_workloads.dir/datasci.cc.o"
  "CMakeFiles/pytond_workloads.dir/datasci.cc.o.d"
  "CMakeFiles/pytond_workloads.dir/tpch/dbgen.cc.o"
  "CMakeFiles/pytond_workloads.dir/tpch/dbgen.cc.o.d"
  "CMakeFiles/pytond_workloads.dir/tpch/queries.cc.o"
  "CMakeFiles/pytond_workloads.dir/tpch/queries.cc.o.d"
  "libpytond_workloads.a"
  "libpytond_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pytond_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
