file(REMOVE_RECURSE
  "libpytond_common.a"
)
