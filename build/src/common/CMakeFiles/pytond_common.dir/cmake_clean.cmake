file(REMOVE_RECURSE
  "CMakeFiles/pytond_common.dir/common.cc.o"
  "CMakeFiles/pytond_common.dir/common.cc.o.d"
  "libpytond_common.a"
  "libpytond_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pytond_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
