# Empty compiler generated dependencies file for pytond_common.
# This may be replaced when dependencies are built.
