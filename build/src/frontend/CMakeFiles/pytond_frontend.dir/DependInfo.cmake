
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/frontend/anf/anf.cc" "src/frontend/CMakeFiles/pytond_frontend.dir/anf/anf.cc.o" "gcc" "src/frontend/CMakeFiles/pytond_frontend.dir/anf/anf.cc.o.d"
  "/root/repo/src/frontend/compiler.cc" "src/frontend/CMakeFiles/pytond_frontend.dir/compiler.cc.o" "gcc" "src/frontend/CMakeFiles/pytond_frontend.dir/compiler.cc.o.d"
  "/root/repo/src/frontend/pylang/parser.cc" "src/frontend/CMakeFiles/pytond_frontend.dir/pylang/parser.cc.o" "gcc" "src/frontend/CMakeFiles/pytond_frontend.dir/pylang/parser.cc.o.d"
  "/root/repo/src/frontend/translate/einsum.cc" "src/frontend/CMakeFiles/pytond_frontend.dir/translate/einsum.cc.o" "gcc" "src/frontend/CMakeFiles/pytond_frontend.dir/translate/einsum.cc.o.d"
  "/root/repo/src/frontend/translate/translator.cc" "src/frontend/CMakeFiles/pytond_frontend.dir/translate/translator.cc.o" "gcc" "src/frontend/CMakeFiles/pytond_frontend.dir/translate/translator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tondir/CMakeFiles/pytond_tondir.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/pytond_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/optimizer/CMakeFiles/pytond_optimizer.dir/DependInfo.cmake"
  "/root/repo/build/src/sqlgen/CMakeFiles/pytond_sqlgen.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pytond_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
