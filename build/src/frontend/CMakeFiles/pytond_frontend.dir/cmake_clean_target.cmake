file(REMOVE_RECURSE
  "libpytond_frontend.a"
)
