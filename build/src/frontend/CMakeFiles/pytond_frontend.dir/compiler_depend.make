# Empty compiler generated dependencies file for pytond_frontend.
# This may be replaced when dependencies are built.
