file(REMOVE_RECURSE
  "CMakeFiles/pytond_frontend.dir/anf/anf.cc.o"
  "CMakeFiles/pytond_frontend.dir/anf/anf.cc.o.d"
  "CMakeFiles/pytond_frontend.dir/compiler.cc.o"
  "CMakeFiles/pytond_frontend.dir/compiler.cc.o.d"
  "CMakeFiles/pytond_frontend.dir/pylang/parser.cc.o"
  "CMakeFiles/pytond_frontend.dir/pylang/parser.cc.o.d"
  "CMakeFiles/pytond_frontend.dir/translate/einsum.cc.o"
  "CMakeFiles/pytond_frontend.dir/translate/einsum.cc.o.d"
  "CMakeFiles/pytond_frontend.dir/translate/translator.cc.o"
  "CMakeFiles/pytond_frontend.dir/translate/translator.cc.o.d"
  "libpytond_frontend.a"
  "libpytond_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pytond_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
