file(REMOVE_RECURSE
  "libpytond_optimizer.a"
)
