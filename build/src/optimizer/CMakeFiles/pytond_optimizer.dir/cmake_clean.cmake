file(REMOVE_RECURSE
  "CMakeFiles/pytond_optimizer.dir/passes.cc.o"
  "CMakeFiles/pytond_optimizer.dir/passes.cc.o.d"
  "libpytond_optimizer.a"
  "libpytond_optimizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pytond_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
