# Empty dependencies file for pytond_optimizer.
# This may be replaced when dependencies are built.
