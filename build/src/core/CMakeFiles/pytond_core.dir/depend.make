# Empty dependencies file for pytond_core.
# This may be replaced when dependencies are built.
