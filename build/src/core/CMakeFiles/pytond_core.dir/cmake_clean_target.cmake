file(REMOVE_RECURSE
  "libpytond_core.a"
)
