file(REMOVE_RECURSE
  "CMakeFiles/pytond_core.dir/session.cc.o"
  "CMakeFiles/pytond_core.dir/session.cc.o.d"
  "libpytond_core.a"
  "libpytond_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pytond_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
