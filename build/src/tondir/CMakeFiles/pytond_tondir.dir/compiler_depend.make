# Empty compiler generated dependencies file for pytond_tondir.
# This may be replaced when dependencies are built.
