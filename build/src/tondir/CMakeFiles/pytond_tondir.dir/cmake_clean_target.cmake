file(REMOVE_RECURSE
  "libpytond_tondir.a"
)
