file(REMOVE_RECURSE
  "CMakeFiles/pytond_tondir.dir/ir.cc.o"
  "CMakeFiles/pytond_tondir.dir/ir.cc.o.d"
  "CMakeFiles/pytond_tondir.dir/parser.cc.o"
  "CMakeFiles/pytond_tondir.dir/parser.cc.o.d"
  "libpytond_tondir.a"
  "libpytond_tondir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pytond_tondir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
