# CMake generated Testfile for 
# Source directory: /root/repo/src/tondir
# Build directory: /root/repo/build/src/tondir
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
