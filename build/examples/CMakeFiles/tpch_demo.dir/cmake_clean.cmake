file(REMOVE_RECURSE
  "CMakeFiles/tpch_demo.dir/tpch_demo.cpp.o"
  "CMakeFiles/tpch_demo.dir/tpch_demo.cpp.o.d"
  "tpch_demo"
  "tpch_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpch_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
