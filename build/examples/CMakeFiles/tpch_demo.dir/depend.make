# Empty dependencies file for tpch_demo.
# This may be replaced when dependencies are built.
