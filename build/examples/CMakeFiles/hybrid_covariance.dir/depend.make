# Empty dependencies file for hybrid_covariance.
# This may be replaced when dependencies are built.
