file(REMOVE_RECURSE
  "CMakeFiles/hybrid_covariance.dir/hybrid_covariance.cpp.o"
  "CMakeFiles/hybrid_covariance.dir/hybrid_covariance.cpp.o.d"
  "hybrid_covariance"
  "hybrid_covariance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hybrid_covariance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
