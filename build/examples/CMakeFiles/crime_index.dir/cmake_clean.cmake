file(REMOVE_RECURSE
  "CMakeFiles/crime_index.dir/crime_index.cpp.o"
  "CMakeFiles/crime_index.dir/crime_index.cpp.o.d"
  "crime_index"
  "crime_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crime_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
