# Empty dependencies file for crime_index.
# This may be replaced when dependencies are built.
