
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/crime_index.cpp" "examples/CMakeFiles/crime_index.dir/crime_index.cpp.o" "gcc" "examples/CMakeFiles/crime_index.dir/crime_index.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/pytond_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/pytond_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/pytond_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/pytond_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/optimizer/CMakeFiles/pytond_optimizer.dir/DependInfo.cmake"
  "/root/repo/build/src/sqlgen/CMakeFiles/pytond_sqlgen.dir/DependInfo.cmake"
  "/root/repo/build/src/tondir/CMakeFiles/pytond_tondir.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/pytond_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/pytond_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pytond_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
