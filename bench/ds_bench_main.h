#ifndef PYTOND_BENCH_DS_BENCH_MAIN_H_
#define PYTOND_BENCH_DS_BENCH_MAIN_H_

// Shared harness for Figures 5/6: hybrid data-science workloads across
// the competitor systems.

#include <string>
#include <vector>

#include "bench_util.h"
#include "workloads/datasci.h"

namespace pytond::bench {

inline int g_ds_threads = 1;

struct DsWorkload {
  const char* name;
  std::string source;
};

inline Session& DsSession() {
  static Session* session = [] {
    auto* s = new Session();
    double sf = ScaleFactor();
    // Row counts scaled so SF 1 roughly matches the paper's dataset sizes
    // (Crime Index SF100 ~ 1M rows; N3 ~ 700MB of airline rows).
    auto rows = [&](double base) {
      return std::max<int64_t>(500, static_cast<int64_t>(base * sf));
    };
    Status st = workloads::datasci::PopulateCrimeIndex(&s->db(),
                                                       rows(1000000));
    if (st.ok()) {
      st = workloads::datasci::PopulateBirthAnalysis(&s->db(), rows(1500000));
    }
    if (st.ok()) st = workloads::datasci::PopulateN3(&s->db(), rows(5000000));
    if (st.ok()) st = workloads::datasci::PopulateN9(&s->db(), rows(1000000));
    if (st.ok()) st = workloads::datasci::PopulateHybrid(&s->db(),
                                                         rows(1000000));
    if (!st.ok()) std::abort();
    return s;
  }();
  return *session;
}

inline const std::vector<DsWorkload>& DsWorkloads() {
  static const std::vector<DsWorkload>* w = new std::vector<DsWorkload>{
      {"CrimeIndex", workloads::datasci::CrimeIndexSource()},
      {"BirthAnalysis", workloads::datasci::BirthAnalysisSource()},
      {"N3", workloads::datasci::N3Source()},
      {"N9", workloads::datasci::N9Source()},
      {"HybridMatMul", workloads::datasci::HybridMatMulSource(false)},
      {"HybridMatMulFilt", workloads::datasci::HybridMatMulSource(true)},
      {"HybridCovar", workloads::datasci::HybridCovarSource(false)},
      {"HybridCovarFilt", workloads::datasci::HybridCovarSource(true)},
  };
  return *w;
}

inline void RegisterDsBenchmarks() {
  const System kSystems[] = {System::kPython, System::kGrizzlyDuck,
                             System::kPyTondDuck, System::kGrizzlyHyper,
                             System::kPyTondHyper, System::kPyTondLingo};
  for (const DsWorkload& w : DsWorkloads()) {
    for (System s : kSystems) {
      std::string name = std::string(w.name) + "/" + SystemName(s);
      benchmark::RegisterBenchmark(
          name.c_str(),
          [src = w.source, s](benchmark::State& st) {
            RunWorkload(st, DsSession(), src, s, g_ds_threads);
          })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(2);
    }
  }
}

inline int DsBenchMain(int argc, char** argv, int default_threads) {
  g_ds_threads = default_threads;
  const char* t = std::getenv("PYTOND_BENCH_THREADS");
  if (t != nullptr) g_ds_threads = std::atoi(t);
  benchmark::Initialize(&argc, argv);
  RegisterDsBenchmarks();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace pytond::bench

#endif  // PYTOND_BENCH_DS_BENCH_MAIN_H_
