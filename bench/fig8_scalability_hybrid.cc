// Figure 8: thread scalability (1..4 threads) of the hybrid workloads
// (Crime Index, Birth Analysis, N3, N9, Hybrid Covar) for PyTond on both
// main profiles.

#include "bench_util.h"
#include "workloads/datasci.h"

namespace pytond::bench {
namespace {

Session& DsSession() {
  static Session* session = [] {
    auto* s = new Session();
    double sf = ScaleFactor();
    auto rows = [&](double base) {
      return std::max<int64_t>(500, static_cast<int64_t>(base * sf));
    };
    Status st =
        workloads::datasci::PopulateCrimeIndex(&s->db(), rows(1000000));
    if (st.ok()) {
      st = workloads::datasci::PopulateBirthAnalysis(&s->db(), rows(1500000));
    }
    if (st.ok()) st = workloads::datasci::PopulateN3(&s->db(), rows(5000000));
    if (st.ok()) st = workloads::datasci::PopulateN9(&s->db(), rows(1000000));
    if (st.ok()) {
      st = workloads::datasci::PopulateHybrid(&s->db(), rows(1000000));
    }
    if (!st.ok()) std::abort();
    return s;
  }();
  return *session;
}

void Register() {
  struct W { const char* name; std::string src; };
  static const std::vector<W>* workloads = new std::vector<W>{
      {"CrimeIndex", workloads::datasci::CrimeIndexSource()},
      {"BirthAnalysis", workloads::datasci::BirthAnalysisSource()},
      {"N3", workloads::datasci::N3Source()},
      {"N9", workloads::datasci::N9Source()},
      {"HybridCovar", workloads::datasci::HybridCovarSource(false)},
  };
  const System kSystems[] = {System::kPyTondDuck, System::kPyTondHyper};
  for (const W& w : *workloads) {
    for (System s : kSystems) {
      for (int threads = 1; threads <= 4; ++threads) {
        std::string name = std::string(w.name) + "/" + SystemName(s) +
                           "/threads:" + std::to_string(threads);
        benchmark::RegisterBenchmark(
            name.c_str(),
            [src = w.src, s, threads](benchmark::State& st) {
              RunWorkload(st, DsSession(), src, s, threads);
            })
            ->Unit(benchmark::kMillisecond)
            ->Iterations(2);
      }
    }
  }
}

}  // namespace
}  // namespace pytond::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  pytond::bench::Register();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
