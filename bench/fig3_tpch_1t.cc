// Figure 3: all TPC-H queries on a single thread — Python baseline,
// Grizzly-simulated (unoptimized codegen) and PyTond per backend profile.
// Prints per-query times plus the §V-B geomean summary rows.

#include "tpch_bench_main.h"

int main(int argc, char** argv) {
  return pytond::bench::TpchBenchMain(argc, argv, /*default_threads=*/1);
}
