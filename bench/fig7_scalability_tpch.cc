// Figure 7: thread scalability (1..4 threads) of the representative
// TPC-H queries {Q1, Q4, Q6, Q13, Q19, Q22} for PyTond on both main
// profiles. The paper plots speedup over each system's single-threaded
// run; benchmark names encode query/profile/threads so the series can be
// read off directly. (Absolute scaling depends on host cores — recorded
// as measured in EXPERIMENTS.md.)

#include "bench_util.h"
#include "workloads/tpch/dbgen.h"
#include "workloads/tpch/queries.h"

namespace pytond::bench {
namespace {

Session& TpchSession() {
  static Session* session = [] {
    auto* s = new Session();
    Status st = workloads::tpch::Populate(&s->db(), ScaleFactor());
    if (!st.ok()) std::abort();
    return s;
  }();
  return *session;
}

void Register() {
  const int kQueries[] = {1, 4, 6, 13, 19, 22};
  const System kSystems[] = {System::kPyTondDuck, System::kPyTondHyper};
  for (int id : kQueries) {
    for (System s : kSystems) {
      for (int threads = 1; threads <= 4; ++threads) {
        std::string name = std::string(workloads::tpch::GetQuery(id).name) +
                           "/" + SystemName(s) + "/threads:" +
                           std::to_string(threads);
        benchmark::RegisterBenchmark(
            name.c_str(),
            [id, s, threads](benchmark::State& st) {
              RunWorkload(st, TpchSession(),
                          workloads::tpch::GetQuery(id).source, s, threads);
            })
            ->Unit(benchmark::kMillisecond)
            ->Iterations(2);
      }
    }
  }
}

}  // namespace
}  // namespace pytond::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  pytond::bench::Register();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
