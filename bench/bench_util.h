#ifndef PYTOND_BENCH_BENCH_UTIL_H_
#define PYTOND_BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <map>
#include <memory>
#include <string>

#include "core/session.h"

namespace pytond::bench {

/// Scale factor for benchmark datasets: PYTOND_BENCH_SF env var, default
/// 0.02 (the paper uses SF 1; shapes are preserved at smaller scale —
/// see EXPERIMENTS.md).
inline double ScaleFactor() {
  const char* env = std::getenv("PYTOND_BENCH_SF");
  return env != nullptr ? std::atof(env) : 0.02;
}

/// The competitor systems of the paper's end-to-end figures.
///  - kPython:     eager interpreter baseline (Pandas/NumPy stand-in)
///  - kGrizzlyDuck/Hyper: unoptimized TondIR codegen (O0) per backend
///  - kPyTondDuck/Hyper/Lingo: full PyTond (O4) per backend profile
enum class System {
  kPython,
  kGrizzlyDuck,
  kGrizzlyHyper,
  kPyTondDuck,
  kPyTondHyper,
  kPyTondLingo,
};

inline const char* SystemName(System s) {
  switch (s) {
    case System::kPython: return "Python";
    case System::kGrizzlyDuck: return "GrizzlySim_duck";
    case System::kGrizzlyHyper: return "GrizzlySim_hyper";
    case System::kPyTondDuck: return "PyTond_duck";
    case System::kPyTondHyper: return "PyTond_hyper";
    case System::kPyTondLingo: return "PyTond_lingo";
  }
  return "?";
}

inline RunOptions OptionsFor(System s, int threads) {
  RunOptions o;
  o.num_threads = threads;
  switch (s) {
    case System::kPython:
      break;
    case System::kGrizzlyDuck:
      o.optimization_level = 0;
      o.profile = engine::BackendProfile::kVectorized;
      break;
    case System::kGrizzlyHyper:
      o.optimization_level = 0;
      o.profile = engine::BackendProfile::kCompiled;
      break;
    case System::kPyTondDuck:
      o.profile = engine::BackendProfile::kVectorized;
      break;
    case System::kPyTondHyper:
      o.profile = engine::BackendProfile::kCompiled;
      break;
    case System::kPyTondLingo:
      o.profile = engine::BackendProfile::kResearch;
      break;
  }
  return o;
}

/// Runs one traced compile + execute of `source` and reports the trace's
/// compile-time/execution-time split as benchmark counters — the paper's
/// point that PyTond's compilation overhead is negligible next to the
/// runtime win (§V-C). Counters: compile_ms (parse through sqlgen) and
/// exec_ms (engine time for one run, outside the timing loop).
inline void ReportCompileExecSplit(benchmark::State& state, Session& session,
                                   const std::string& source,
                                   const RunOptions& opts) {
  RunOptions traced = opts;
  traced.trace = nullptr;  // RunProfiled attaches its own collector
  auto profiled = session.RunProfiled(source, traced);
  if (!profiled.ok()) return;  // benchmark timings already reported
  state.counters["compile_ms"] = profiled->profile.compile_ms;
  state.counters["exec_ms"] = profiled->profile.exec_ms;
}

/// Times one serve-path run of `source` under `system`: compilation is
/// seeded into the session's plan cache outside the loop, so iterations
/// measure a cache hit plus execution on the shared worker pool (the paper
/// measures query execution with the data already in the database; the
/// cache lookup is noise next to it). Skips (and reports) unsupported
/// combinations — e.g. the lingo profile rejecting window functions,
/// mirroring the paper's LingoDB exclusions. After the timing loop, one
/// traced run reports the compile/exec split (ReportCompileExecSplit) and
/// the loop's plan-cache hit/miss deltas land as counters.
inline void RunWorkload(benchmark::State& state, Session& session,
                        const std::string& source, System system,
                        int threads) {
  if (system == System::kPython) {
    for (auto _ : state) {
      auto r = session.RunBaseline(source);
      if (!r.ok()) {
        state.SkipWithError(r.status().ToString().c_str());
        return;
      }
      benchmark::DoNotOptimize(r->num_rows());
    }
    return;
  }
  RunOptions opts = OptionsFor(system, threads);
  auto compiled = session.CompileCached(source, opts);  // seed the cache
  if (!compiled.ok()) {
    state.SkipWithError(compiled.status().ToString().c_str());
    return;
  }
  PlanCacheStats before = session.plan_cache_stats();
  for (auto _ : state) {
    auto r = session.Run(source, opts);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize((*r)->num_rows());
  }
  PlanCacheStats after = session.plan_cache_stats();
  state.counters["cache_hits"] =
      static_cast<double>(after.hits - before.hits);
  state.counters["cache_misses"] =
      static_cast<double>(after.misses - before.misses);
  ReportCompileExecSplit(state, session, source, opts);
}

}  // namespace pytond::bench

#endif  // PYTOND_BENCH_BENCH_UTIL_H_
