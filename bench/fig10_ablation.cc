// Figure 10: break-down of the TondIR optimizations. Starting from the
// Grizzly-simulated baseline (O0) and stacking passes:
//   O1 = local + global dead-code elimination
//   O2 = O1 + group/aggregate elimination
//   O3 = O2 + self-join elimination
//   O4 = O3 + rule inlining (full PyTond)
// over the paper's representative workloads (Q3, Q6, Q9, Crime Index,
// Hybrid Covar) on both main backend profiles.

#include "bench_util.h"
#include "workloads/datasci.h"
#include "workloads/tpch/dbgen.h"
#include "workloads/tpch/queries.h"

namespace pytond::bench {
namespace {

Session& AblationSession() {
  static Session* session = [] {
    auto* s = new Session();
    double sf = ScaleFactor();
    Status st = workloads::tpch::Populate(&s->db(), sf);
    auto rows = [&](double base) {
      return std::max<int64_t>(500, static_cast<int64_t>(base * sf));
    };
    if (st.ok()) {
      st = workloads::datasci::PopulateCrimeIndex(&s->db(), rows(1000000));
    }
    if (st.ok()) {
      st = workloads::datasci::PopulateHybrid(&s->db(), rows(1000000));
    }
    if (!st.ok()) std::abort();
    return s;
  }();
  return *session;
}

void AblationBench(benchmark::State& state, const std::string& source,
                   engine::BackendProfile profile, int level) {
  RunOptions opts;
  opts.profile = profile;
  opts.optimization_level = level;
  auto compiled = AblationSession().Compile(source, opts);
  if (!compiled.ok()) {
    state.SkipWithError(compiled.status().ToString().c_str());
    return;
  }
  for (auto _ : state) {
    auto r = AblationSession().Execute(*compiled, opts);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize((*r)->num_rows());
  }
  ReportCompileExecSplit(state, AblationSession(), source, opts);
}

void Register() {
  struct W { const char* name; std::string src; };
  static const std::vector<W>* workloads = new std::vector<W>{
      {"Q3", workloads::tpch::GetQuery(3).source},
      {"Q6", workloads::tpch::GetQuery(6).source},
      {"Q9", workloads::tpch::GetQuery(9).source},
      {"CrimeIndex", workloads::datasci::CrimeIndexSource()},
      {"HybridCovar", workloads::datasci::HybridCovarSource(false)},
  };
  struct P { const char* name; engine::BackendProfile profile; };
  const P kProfiles[] = {{"duck", engine::BackendProfile::kVectorized},
                         {"hyper", engine::BackendProfile::kCompiled}};
  for (const W& w : *workloads) {
    for (const P& p : kProfiles) {
      for (int level = 0; level <= 4; ++level) {
        std::string name = std::string(w.name) + "/" + p.name + "/O" +
                           std::to_string(level);
        benchmark::RegisterBenchmark(
            name.c_str(),
            [src = w.src, profile = p.profile, level](benchmark::State& st) {
              AblationBench(st, src, profile, level);
            })
            ->Unit(benchmark::kMillisecond)
            ->Iterations(2);
      }
    }
  }
}

}  // namespace
}  // namespace pytond::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  pytond::bench::Register();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
