// Figures 5 and 6: the data-science workloads (Crime Index, Birth
// Analysis, Kaggle-style N3/N9, and the hybrid matrix computations, plain
// and filtered) for Python / Grizzly-simulated / PyTond on each profile.
// Threads default to 1 (Figure 5); fig6_ds_4t runs the same set at 4
// threads (Figure 6); PYTOND_BENCH_THREADS overrides.

#include "ds_bench_main.h"

int main(int argc, char** argv) {
  return pytond::bench::DsBenchMain(argc, argv, /*default_threads=*/1);
}
