#ifndef PYTOND_BENCH_TPCH_BENCH_MAIN_H_
#define PYTOND_BENCH_TPCH_BENCH_MAIN_H_

// Shared harness for Figures 3 and 4: all TPC-H queries across the
// paper's competitor systems, plus the geometric-mean summary rows the
// paper reports in §V-B (Python-relative speedups and the
// Grizzly-to-PyTond rewriting gain).

#include <cmath>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench_util.h"
#include "workloads/tpch/dbgen.h"
#include "workloads/tpch/queries.h"

namespace pytond::bench {

inline int g_tpch_threads = 1;

inline Session& TpchSession() {
  static Session* session = [] {
    auto* s = new Session();
    Status st = workloads::tpch::Populate(&s->db(), ScaleFactor());
    if (!st.ok()) std::abort();
    return s;
  }();
  return *session;
}

/// Console reporter that also records per-(query, system) wall times and
/// prints the paper's geomean summary at the end.
class TpchGeoMeanReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      std::string name = run.benchmark_name();
      size_t slash = name.find('/');
      if (slash != std::string::npos) {
        // Strip trailing "/iterations:N" decorations.
        std::string sys = name.substr(slash + 1);
        size_t extra = sys.find('/');
        if (extra != std::string::npos) sys = sys.substr(0, extra);
        times_[name.substr(0, slash)][sys] = run.GetAdjustedRealTime();
      }
    }
    ConsoleReporter::ReportRuns(runs);
  }

  void Finalize() override {
    ConsoleReporter::Finalize();
    std::printf(
        "\n-- TPC-H summary (threads=%d, SF=%.3f): geometric-mean "
        "speedup over Python --\n",
        g_tpch_threads, ScaleFactor());
    const char* systems[] = {"GrizzlySim_duck", "PyTond_duck",
                             "GrizzlySim_hyper", "PyTond_hyper",
                             "PyTond_lingo"};
    for (const char* sys : systems) {
      double log_sum = 0;
      int n = 0;
      for (const auto& [query, per_system] : times_) {
        auto py = per_system.find("Python");
        auto it = per_system.find(sys);
        if (py == per_system.end() || it == per_system.end()) continue;
        if (it->second <= 0 || py->second <= 0) continue;
        log_sum += std::log(py->second / it->second);
        ++n;
      }
      if (n > 0) {
        std::printf("  %-18s %.2fx (over %d queries)\n", sys,
                    std::exp(log_sum / n), n);
      }
    }
    struct Pair { const char* grizzly; const char* pytond; };
    for (const Pair& pr : {Pair{"GrizzlySim_duck", "PyTond_duck"},
                           Pair{"GrizzlySim_hyper", "PyTond_hyper"}}) {
      double log_sum = 0;
      int n = 0;
      for (const auto& [query, per_system] : times_) {
        auto g = per_system.find(pr.grizzly);
        auto p = per_system.find(pr.pytond);
        if (g == per_system.end() || p == per_system.end()) continue;
        if (g->second <= 0 || p->second <= 0) continue;
        log_sum += std::log(g->second / p->second);
        ++n;
      }
      if (n > 0) {
        std::printf(
            "  TondIR rewriting gain (%s -> %s): %.2fx over %d queries\n",
            pr.grizzly, pr.pytond, std::exp(log_sum / n), n);
      }
    }
  }

 private:
  std::map<std::string, std::map<std::string, double>> times_;
};

inline void RegisterTpchBenchmarks() {
  const System kSystems[] = {System::kPython,      System::kGrizzlyDuck,
                             System::kPyTondDuck,  System::kGrizzlyHyper,
                             System::kPyTondHyper, System::kPyTondLingo};
  for (const auto& q : workloads::tpch::AllQueries()) {
    for (System s : kSystems) {
      std::string name = std::string(q.name) + "/" + SystemName(s);
      benchmark::RegisterBenchmark(
          name.c_str(),
          [id = q.id, s](benchmark::State& st) {
            const auto& query = workloads::tpch::GetQuery(id);
            RunWorkload(st, TpchSession(), query.source, s, g_tpch_threads);
          })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(2);
    }
  }
}

inline int TpchBenchMain(int argc, char** argv, int default_threads) {
  g_tpch_threads = default_threads;
  const char* t = std::getenv("PYTOND_BENCH_THREADS");
  if (t != nullptr) g_tpch_threads = std::atoi(t);
  benchmark::Initialize(&argc, argv);
  RegisterTpchBenchmarks();
  TpchGeoMeanReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return 0;
}

}  // namespace pytond::bench

#endif  // PYTOND_BENCH_TPCH_BENCH_MAIN_H_
