// Figure 6: the data-science workloads on 4 threads (see fig5_ds_1t).

#include "ds_bench_main.h"

int main(int argc, char** argv) {
  return pytond::bench::DsBenchMain(argc, argv, /*default_threads=*/4);
}
