// Figure 4: all TPC-H queries on 4 threads (the Python baseline stays
// single-threaded — "Pandas library does not support parallelization",
// paper §V-C). Prints per-query times plus the geomean summary rows.

#include "tpch_bench_main.h"

int main(int argc, char** argv) {
  return pytond::bench::TpchBenchMain(argc, argv, /*default_threads=*/4);
}
