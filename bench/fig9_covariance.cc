// Figure 9: covariance-matrix computation sweeps. Three series of charts:
// vary sparsity (density), vary rows, vary columns — comparing the NumPy
// stand-in (eager dense einsum), PyTond dense layout and PyTond sparse
// (COO) layout on both main profiles. Fixed dimensions follow the paper
// (scaled): rows = 1e6*SF (paper: 1e6), cols = 32, density = 1.

#include "bench_util.h"
#include "workloads/datasci.h"

namespace pytond::bench {
namespace {

struct CovCase {
  int64_t rows;
  int cols;
  double density;
};

/// One Session per input shape, built lazily and cached.
Session& CovSession(const CovCase& c) {
  static std::map<std::string, Session*>* cache =
      new std::map<std::string, Session*>();
  std::string key = std::to_string(c.rows) + "x" + std::to_string(c.cols) +
                    "@" + std::to_string(c.density);
  auto it = cache->find(key);
  if (it == cache->end()) {
    auto* s = new Session();
    Status st = workloads::datasci::PopulateCovariance(&s->db(), c.rows,
                                                       c.cols, c.density);
    if (!st.ok()) std::abort();
    it = cache->emplace(key, s).first;
  }
  return *it->second;
}

enum class Layout { kNumpy, kDense, kSparse };

void CovBench(benchmark::State& state, const CovCase& c, Layout layout,
              System system) {
  Session& session = CovSession(c);
  const char* src = layout == Layout::kSparse
                        ? workloads::datasci::CovarSparseSource()
                        : workloads::datasci::CovarDenseSource();
  if (layout == Layout::kNumpy) {
    RunWorkload(state, session, src, System::kPython, 1);
    return;
  }
  RunWorkload(state, session, src, system, 1);
}

void Register() {
  double sf = ScaleFactor();
  const int64_t kFixedRows =
      std::max<int64_t>(1000, static_cast<int64_t>(1000000 * sf));
  const int kFixedCols = 32;

  struct Series {
    const char* label;
    Layout layout;
    System system;
  };
  const Series kSeries[] = {
      {"NumPy", Layout::kNumpy, System::kPython},
      {"PyTond_duck_dense", Layout::kDense, System::kPyTondDuck},
      {"PyTond_hyper_dense", Layout::kDense, System::kPyTondHyper},
      {"PyTond_duck_sparse", Layout::kSparse, System::kPyTondDuck},
      {"PyTond_hyper_sparse", Layout::kSparse, System::kPyTondHyper},
  };

  // (a) vary sparsity/density at fixed rows x 32 cols.
  for (double density : {0.001, 0.01, 0.1, 0.5, 1.0}) {
    for (const Series& s : kSeries) {
      std::string name = "VarySparsity/density:" + std::to_string(density) +
                         "/" + s.label;
      CovCase c{kFixedRows, kFixedCols, density};
      benchmark::RegisterBenchmark(
          name.c_str(),
          [c, s](benchmark::State& st) {
            CovBench(st, c, s.layout, s.system);
          })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }
  }
  // (b) vary rows at 32 cols, density 1.
  for (int64_t rows : {kFixedRows / 100, kFixedRows / 10, kFixedRows}) {
    for (const Series& s : kSeries) {
      std::string name =
          "VaryRows/rows:" + std::to_string(rows) + "/" + s.label;
      CovCase c{rows, kFixedCols, 1.0};
      benchmark::RegisterBenchmark(
          name.c_str(),
          [c, s](benchmark::State& st) {
            CovBench(st, c, s.layout, s.system);
          })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }
  }
  // (c) vary columns at fixed rows, density 1.
  for (int cols : {4, 8, 16, 32}) {
    for (const Series& s : kSeries) {
      std::string name =
          "VaryCols/cols:" + std::to_string(cols) + "/" + s.label;
      CovCase c{kFixedRows / 10, cols, 1.0};
      benchmark::RegisterBenchmark(
          name.c_str(),
          [c, s](benchmark::State& st) {
            CovBench(st, c, s.layout, s.system);
          })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }
  }
}

}  // namespace
}  // namespace pytond::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  pytond::bench::Register();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
