// serve_throughput: QPS/latency benchmark for the serve path.
//
//   serve_throughput [--clients N] [--reps N] [--sf SF]
//                    [--datasci-rows N] [--max-inflight N]
//                    [--queue N] [--timeout-ms N] > BENCH_serve.json
//
// N client threads each open a Connection and sweep the full 30-workload
// mix (22 TPC-H + 8 data-science) `reps` times through the PREPARE/EXECUTE
// fast path (Connection::Run). Every client sends its own literal variant
// of each workload — date literals are shifted per (client, rep) — which
// is the serve-cache stress the literal-keyed cache fails (every variant
// a compile) and the auto-parameterized skeleton cache must absorb: one
// compile per workload shape, everything else a prepared hit. The report
// carries client-observed latency percentiles (admission wait included),
// QPS over the storm wall-clock, the prepared hit rate read back from the
// always-on tond_serve_* metrics (not bench-private counters), and the
// admission rejection counts.
//
// Exit status: 0 ok, 1 run failure, 2 usage error.

#include <algorithm>
#include <atomic>
#include <cmath>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.h"
#include "obs/trace.h"
#include "serve/connection_manager.h"
#include "workloads/datasci.h"
#include "workloads/tpch/dbgen.h"
#include "workloads/tpch/queries.h"

namespace {

using pytond::Status;

struct Workload {
  std::string name;
  std::string source;
};

struct BenchConfig {
  int clients = 8;
  int reps = 3;
  double tpch_sf = 0.02;
  int64_t datasci_rows = 10000;
  pytond::serve::ServeConfig serve;
};

int Usage() {
  std::cerr <<
      "usage: serve_throughput [options]\n"
      "  --clients N       concurrent client threads (default 8)\n"
      "  --reps N          sweeps of the 30-workload mix per client "
      "(default 3)\n"
      "  --sf SF           TPC-H scale factor (default 0.02)\n"
      "  --datasci-rows N  datasci dataset rows (default 10000)\n"
      "  --max-inflight N  admission in-flight limit (default 4)\n"
      "  --queue N         admission queue depth (default 64)\n"
      "  --timeout-ms N    admission queue timeout (default 30000)\n";
  return 2;
}

bool ParseArgs(int argc, char** argv, BenchConfig* cfg) {
  cfg->serve.max_queue = 64;
  cfg->serve.queue_timeout_ms = 30000;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--clients" && i + 1 < argc) {
      cfg->clients = std::atoi(argv[++i]);
    } else if (arg == "--reps" && i + 1 < argc) {
      cfg->reps = std::atoi(argv[++i]);
    } else if (arg == "--sf" && i + 1 < argc) {
      cfg->tpch_sf = std::atof(argv[++i]);
    } else if (arg == "--datasci-rows" && i + 1 < argc) {
      cfg->datasci_rows = std::atoll(argv[++i]);
    } else if (arg == "--max-inflight" && i + 1 < argc) {
      cfg->serve.max_in_flight = std::atoi(argv[++i]);
    } else if (arg == "--queue" && i + 1 < argc) {
      cfg->serve.max_queue = std::atoi(argv[++i]);
    } else if (arg == "--timeout-ms" && i + 1 < argc) {
      cfg->serve.queue_timeout_ms = std::atoi(argv[++i]);
    } else {
      std::cerr << "serve_throughput: unknown option '" << arg << "'\n";
      return false;
    }
  }
  if (cfg->clients < 1 || cfg->reps < 1 || cfg->tpch_sf <= 0 ||
      cfg->datasci_rows < 1 || cfg->serve.max_in_flight < 1) {
    std::cerr << "serve_throughput: all numeric options must be >= 1 "
                 "(--sf > 0)\n";
    return false;
  }
  return true;
}

double Percentile(std::vector<double>* v, double q) {
  if (v->empty()) return 0;
  std::sort(v->begin(), v->end());
  size_t idx = static_cast<size_t>(
      std::ceil(q * static_cast<double>(v->size()))) - 1;
  return (*v)[std::min(idx, v->size() - 1)];
}

Status PopulateAll(pytond::engine::Database* db, const BenchConfig& cfg) {
  PYTOND_RETURN_IF_ERROR(
      pytond::workloads::tpch::Populate(db, cfg.tpch_sf));
  namespace ds = pytond::workloads::datasci;
  PYTOND_RETURN_IF_ERROR(ds::PopulateCrimeIndex(db, cfg.datasci_rows));
  PYTOND_RETURN_IF_ERROR(ds::PopulateBirthAnalysis(db, cfg.datasci_rows));
  PYTOND_RETURN_IF_ERROR(ds::PopulateN3(db, cfg.datasci_rows));
  PYTOND_RETURN_IF_ERROR(ds::PopulateN9(db, cfg.datasci_rows));
  PYTOND_RETURN_IF_ERROR(ds::PopulateHybrid(db, cfg.datasci_rows));
  PYTOND_RETURN_IF_ERROR(ds::PopulateCovariance(db, 256, 8, 0.5));
  return Status::OK();
}

std::vector<Workload> AllWorkloads() {
  namespace ds = pytond::workloads::datasci;
  std::vector<Workload> workloads;
  for (const auto& q : pytond::workloads::tpch::AllQueries()) {
    workloads.push_back({q.name, q.source});
  }
  workloads.push_back({"crime_index", ds::CrimeIndexSource()});
  workloads.push_back({"birth_analysis", ds::BirthAnalysisSource()});
  workloads.push_back({"n3", ds::N3Source()});
  workloads.push_back({"n9", ds::N9Source()});
  workloads.push_back({"hybrid_matmul", ds::HybridMatMulSource(false)});
  workloads.push_back({"hybrid_covar", ds::HybridCovarSource(false)});
  workloads.push_back({"covar_dense", ds::CovarDenseSource()});
  workloads.push_back({"covar_sparse", ds::CovarSparseSource()});
  return workloads;
}

bool IsDigit(char c) { return c >= '0' && c <= '9'; }

/// Per-client literal variation: every 'YYYY-MM-DD' date literal gets its
/// day-of-month shifted by `shift` (mod 28, so any month stays valid and
/// range predicates keep their ordering — both endpoints shift alike).
/// Only dates are varied: numeric literals in these sources also appear
/// in structural positions (head(n), matmul shapes) where textual edits
/// would change the plan, not a binding. Workloads without date literals
/// pass through unchanged and exercise the same-source hit path instead.
std::string VaryLiterals(const std::string& source, int shift) {
  std::string out = source;
  for (size_t i = 0; i + 11 < out.size(); ++i) {
    if (out[i] != '\'' || out[i + 11] != '\'') continue;
    const char* p = out.data() + i + 1;
    if (!(IsDigit(p[0]) && IsDigit(p[1]) && IsDigit(p[2]) &&
          IsDigit(p[3]) && p[4] == '-' && IsDigit(p[5]) && IsDigit(p[6]) &&
          p[7] == '-' && IsDigit(p[8]) && IsDigit(p[9]))) {
      continue;
    }
    int day = (p[8] - '0') * 10 + (p[9] - '0');
    day = (day - 1 + shift) % 28 + 1;
    out[i + 9] = static_cast<char>('0' + day / 10);
    out[i + 10] = static_cast<char>('0' + day % 10);
    i += 11;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  BenchConfig cfg;
  if (!ParseArgs(argc, argv, &cfg)) return Usage();

  auto db = std::make_shared<pytond::engine::Database>();
  Status st = PopulateAll(db.get(), cfg);
  if (!st.ok()) {
    std::cerr << "serve_throughput: populate failed: " << st.ToString()
              << "\n";
    return 1;
  }
  const std::vector<Workload> workloads = AllWorkloads();

  pytond::serve::ConnectionManager mgr(db, cfg.serve);
  auto& metrics = db->metrics();
  const uint64_t hits0 =
      metrics.counter("tond_serve_prepared_hits_total").Value();
  const uint64_t misses0 =
      metrics.counter("tond_serve_prepared_misses_total").Value();

  std::vector<std::vector<double>> latencies(cfg.clients);
  std::vector<std::string> errors(cfg.clients);
  std::atomic<int> ready{0};
  std::vector<std::thread> clients;
  const uint64_t storm_t0 = pytond::obs::NowNs();
  for (int c = 0; c < cfg.clients; ++c) {
    clients.emplace_back([&, c] {
      auto conn = mgr.Connect();
      ++ready;
      while (ready.load() < cfg.clients) std::this_thread::yield();
      for (int rep = 0; rep < cfg.reps; ++rep) {
        for (size_t w = 0; w < workloads.size(); ++w) {
          // Offset each client's sweep so the mix interleaves instead of
          // stampeding one workload at a time.
          const Workload& workload =
              workloads[(w + static_cast<size_t>(c)) % workloads.size()];
          const std::string varied =
              VaryLiterals(workload.source, 1 + c * 3 + rep);
          const uint64_t t0 = pytond::obs::NowNs();
          auto r = conn->Run(varied);
          if (!r.ok()) {
            errors[c] = workload.name + ": " + r.status().ToString();
            return;
          }
          latencies[c].push_back(
              static_cast<double>(pytond::obs::NowNs() - t0) / 1e6);
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  const double wall_ms =
      static_cast<double>(pytond::obs::NowNs() - storm_t0) / 1e6;

  for (int c = 0; c < cfg.clients; ++c) {
    if (!errors[c].empty()) {
      std::cerr << "serve_throughput: client " << c << ": " << errors[c]
                << "\n";
      return 1;
    }
  }

  std::vector<double> all;
  for (const auto& v : latencies) all.insert(all.end(), v.begin(), v.end());
  const uint64_t hits =
      metrics.counter("tond_serve_prepared_hits_total").Value() - hits0;
  const uint64_t misses =
      metrics.counter("tond_serve_prepared_misses_total").Value() - misses0;
  const double hit_rate =
      hits + misses > 0
          ? static_cast<double>(hits) / static_cast<double>(hits + misses)
          : 0;
  const pytond::serve::ServeStats stats = mgr.stats();

  pytond::obs::JsonWriter json;
  json.BeginObject()
      .Key("bench").String("serve")
      .Key("clients").Int(cfg.clients)
      .Key("reps").Int(cfg.reps)
      .Key("workloads").Int(static_cast<int64_t>(workloads.size()))
      .Key("tpch_sf").Double(cfg.tpch_sf)
      .Key("datasci_rows").Int(cfg.datasci_rows)
      .Key("max_in_flight").Int(cfg.serve.max_in_flight)
      .Key("max_queue").Int(cfg.serve.max_queue)
      .Key("total_queries").Int(static_cast<int64_t>(all.size()))
      .Key("wall_ms").Double(wall_ms)
      .Key("qps").Double(wall_ms > 0
                             ? 1000.0 * static_cast<double>(all.size()) /
                                   wall_ms
                             : 0)
      .Key("p50_ms").Double(Percentile(&all, 0.50))
      .Key("p95_ms").Double(Percentile(&all, 0.95))
      .Key("p99_ms").Double(Percentile(&all, 0.99))
      .Key("prepared_hits").UInt(hits)
      .Key("prepared_misses").UInt(misses)
      .Key("hit_rate").Double(hit_rate)
      .Key("admitted").UInt(stats.admitted)
      .Key("rejected_queue_full").UInt(stats.rejected_queue_full)
      .Key("rejected_timeout").UInt(stats.rejected_timeout)
      .Key("rejected_memory").UInt(stats.rejected_memory)
      .EndObject();
  std::cout << json.str() << "\n";
  return 0;
}
