#include "storage/catalog.h"

#include <algorithm>

namespace pytond {

bool TableConstraints::IsUniqueColumn(const std::string& name) const {
  if (primary_key.size() == 1 && primary_key[0] == name) return true;
  return std::find(unique_columns.begin(), unique_columns.end(), name) !=
         unique_columns.end();
}

Status Catalog::CreateTable(const std::string& name, Table table,
                            TableConstraints constraints) {
  if (tables_.count(name)) {
    return Status::InvalidArgument("table '" + name + "' already exists");
  }
  tables_[name] = Entry{std::move(table), std::move(constraints)};
  return Status::OK();
}

Status Catalog::DropTable(const std::string& name) {
  if (!tables_.erase(name)) {
    return Status::NotFound("table '" + name + "'");
  }
  return Status::OK();
}

bool Catalog::HasTable(const std::string& name) const {
  return tables_.count(name) > 0;
}

const Table* Catalog::GetTable(const std::string& name) const {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : &it->second.table;
}

Table* Catalog::GetMutableTable(const std::string& name) {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : &it->second.table;
}

const TableConstraints* Catalog::GetConstraints(
    const std::string& name) const {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : &it->second.constraints;
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> out;
  out.reserve(tables_.size());
  for (const auto& [k, v] : tables_) out.push_back(k);
  return out;
}

}  // namespace pytond
