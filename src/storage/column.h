#ifndef PYTOND_STORAGE_COLUMN_H_
#define PYTOND_STORAGE_COLUMN_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/status.h"
#include "common/value.h"

namespace pytond {

/// A typed column: contiguous values plus an optional validity mask.
/// When `validity()` is empty every row is valid. Bool and date columns
/// share the int-family storage discipline (uint8_t / int32_t vectors).
class Column {
 public:
  Column() : type_(DataType::kInt64) {}
  explicit Column(DataType type);

  static Column Int64(std::vector<int64_t> v);
  static Column Float64(std::vector<double> v);
  static Column String(std::vector<std::string> v);
  static Column Bool(std::vector<uint8_t> v);
  static Column Date(std::vector<int32_t> v);

  DataType type() const { return type_; }
  size_t size() const;

  /// Typed storage accessors; calling the wrong one is a programming error
  /// (checked by std::get).
  std::vector<int64_t>& ints() { return std::get<std::vector<int64_t>>(data_); }
  const std::vector<int64_t>& ints() const {
    return std::get<std::vector<int64_t>>(data_);
  }
  std::vector<double>& doubles() {
    return std::get<std::vector<double>>(data_);
  }
  const std::vector<double>& doubles() const {
    return std::get<std::vector<double>>(data_);
  }
  std::vector<std::string>& strings() {
    return std::get<std::vector<std::string>>(data_);
  }
  const std::vector<std::string>& strings() const {
    return std::get<std::vector<std::string>>(data_);
  }
  std::vector<uint8_t>& bools() {
    return std::get<std::vector<uint8_t>>(data_);
  }
  const std::vector<uint8_t>& bools() const {
    return std::get<std::vector<uint8_t>>(data_);
  }
  std::vector<int32_t>& dates() {
    return std::get<std::vector<int32_t>>(data_);
  }
  const std::vector<int32_t>& dates() const {
    return std::get<std::vector<int32_t>>(data_);
  }

  /// Validity mask; empty means all-valid. 1 = valid, 0 = NULL.
  std::vector<uint8_t>& validity() { return validity_; }
  const std::vector<uint8_t>& validity() const { return validity_; }
  bool IsValid(size_t row) const {
    return validity_.empty() || validity_[row] != 0;
  }
  bool has_nulls() const;

  /// Dynamic row access (test / printing paths).
  Value Get(size_t row) const;
  void Append(const Value& v);
  void AppendNull();

  /// Appends row `row` of `src` (same type) to this column.
  void AppendFrom(const Column& src, size_t row);

  /// Appends every row of `src` (same type) in one bulk vector insert —
  /// strings are moved out of `src`. The validity mask materializes only
  /// when either side carries nulls. Orders of magnitude faster than a
  /// per-row AppendFrom loop; this is what makes chunk-merge
  /// concatenation (EvalParallel, pipeline collect sinks) cheap.
  void AppendAll(Column&& src);

  /// Reserves capacity in the underlying vector.
  void Reserve(size_t n);

  /// Gathers `rows` from this column into a new column (selection vector).
  Column Gather(const std::vector<uint32_t>& rows) const;

  /// Estimated resident bytes of this column's payload: element storage
  /// (string content bytes + per-string object overhead for kString) plus
  /// the validity mask. Feeds the executor's memory accountant.
  size_t MemoryBytes() const;

 private:
  DataType type_;
  std::variant<std::vector<int64_t>, std::vector<double>,
               std::vector<std::string>, std::vector<uint8_t>,
               std::vector<int32_t>>
      data_;
  std::vector<uint8_t> validity_;
};

}  // namespace pytond

#endif  // PYTOND_STORAGE_COLUMN_H_
