#include "storage/csv.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/date_util.h"

namespace pytond::csv {

namespace {

bool NeedsQuoting(const std::string& s, char sep) {
  for (char c : s) {
    if (c == sep || c == '"' || c == '\n' || c == '\r') return true;
  }
  return false;
}

void AppendField(const std::string& s, char sep, std::string* out) {
  if (!NeedsQuoting(s, sep)) {
    *out += s;
    return;
  }
  *out += '"';
  for (char c : s) {
    if (c == '"') *out += '"';
    *out += c;
  }
  *out += '"';
}

/// Splits one CSV record honoring quoting; `pos` advances past the
/// terminating newline.
std::vector<std::string> SplitRecord(const std::string& text, size_t* pos,
                                     char sep) {
  std::vector<std::string> fields;
  std::string cur;
  bool quoted = false;
  size_t i = *pos;
  for (; i < text.size(); ++i) {
    char c = text[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          cur += '"';
          ++i;
        } else {
          quoted = false;
        }
      } else {
        cur += c;
      }
      continue;
    }
    if (c == '"') {
      quoted = true;
    } else if (c == sep) {
      fields.push_back(std::move(cur));
      cur.clear();
    } else if (c == '\n') {
      ++i;
      break;
    } else if (c != '\r') {
      cur += c;
    }
  }
  fields.push_back(std::move(cur));
  *pos = i;
  return fields;
}

}  // namespace

std::string WriteCsv(const Table& table, char sep) {
  std::string out;
  for (size_t c = 0; c < table.num_columns(); ++c) {
    if (c) out += sep;
    AppendField(table.schema().names[c], sep, &out);
  }
  out += '\n';
  for (size_t r = 0; r < table.num_rows(); ++r) {
    for (size_t c = 0; c < table.num_columns(); ++c) {
      if (c) out += sep;
      const Column& col = table.column(c);
      if (!col.IsValid(r)) continue;  // NULL -> empty field
      AppendField(col.Get(r).ToString(), sep, &out);
    }
    out += '\n';
  }
  return out;
}

Result<Table> ReadCsv(const std::string& text, const Schema& schema,
                      char sep) {
  size_t pos = 0;
  std::vector<std::string> header = SplitRecord(text, &pos, sep);
  if (header.size() != schema.names.size()) {
    return Status::InvalidArgument(
        "CSV header has " + std::to_string(header.size()) +
        " fields, schema expects " + std::to_string(schema.names.size()));
  }
  for (size_t i = 0; i < header.size(); ++i) {
    if (header[i] != schema.names[i]) {
      return Status::InvalidArgument("CSV header field '" + header[i] +
                                     "' != schema column '" +
                                     schema.names[i] + "'");
    }
  }
  Table out(schema);
  while (pos < text.size()) {
    std::vector<std::string> fields = SplitRecord(text, &pos, sep);
    if (fields.size() == 1 && fields[0].empty()) continue;  // blank line
    if (fields.size() != schema.names.size()) {
      return Status::ParseError("CSV record with " +
                                std::to_string(fields.size()) + " fields");
    }
    std::vector<Value> row;
    row.reserve(fields.size());
    for (size_t c = 0; c < fields.size(); ++c) {
      const std::string& f = fields[c];
      if (f.empty() && schema.types[c] != DataType::kString) {
        row.push_back(Value::Null());
        continue;
      }
      switch (schema.types[c]) {
        case DataType::kInt64:
          row.push_back(Value::Int64(std::strtoll(f.c_str(), nullptr, 10)));
          break;
        case DataType::kFloat64:
          row.push_back(Value::Float64(std::strtod(f.c_str(), nullptr)));
          break;
        case DataType::kBool:
          row.push_back(Value::Bool(f == "true" || f == "1"));
          break;
        case DataType::kDate: {
          PYTOND_ASSIGN_OR_RETURN(int32_t d, date_util::Parse(f));
          row.push_back(Value::Date(d));
          break;
        }
        case DataType::kString:
        case DataType::kNull:
          row.push_back(Value::String(f));
          break;
      }
    }
    PYTOND_RETURN_IF_ERROR(out.AppendRow(row));
  }
  return out;
}

Status WriteCsvFile(const Table& table, const std::string& path, char sep) {
  std::ofstream f(path);
  if (!f) return Status::InvalidArgument("cannot open '" + path + "'");
  f << WriteCsv(table, sep);
  return f.good() ? Status::OK()
                  : Status::Internal("write failed for '" + path + "'");
}

Result<Table> ReadCsvFile(const std::string& path, const Schema& schema,
                          char sep) {
  std::ifstream f(path);
  if (!f) return Status::NotFound("cannot open '" + path + "'");
  std::ostringstream buf;
  buf << f.rdbuf();
  return ReadCsv(buf.str(), schema, sep);
}

}  // namespace pytond::csv
