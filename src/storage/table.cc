#include "storage/table.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

namespace pytond {

int Schema::Find(const std::string& name) const {
  for (size_t i = 0; i < names.size(); ++i) {
    if (names[i] == name) return static_cast<int>(i);
  }
  return -1;
}

Table::Table(Schema schema) : schema_(std::move(schema)) {
  columns_.reserve(schema_.types.size());
  for (DataType t : schema_.types) columns_.emplace_back(t);
}

const Column* Table::FindColumn(const std::string& name) const {
  int i = schema_.Find(name);
  return i < 0 ? nullptr : &columns_[i];
}

Status Table::AddColumn(std::string name, Column col) {
  if (!columns_.empty() && col.size() != num_rows()) {
    return Status::InvalidArgument("column '" + name + "' has " +
                                   std::to_string(col.size()) +
                                   " rows, table has " +
                                   std::to_string(num_rows()));
  }
  schema_.Add(std::move(name), col.type());
  columns_.push_back(std::move(col));
  return Status::OK();
}

Status Table::AppendRow(const std::vector<Value>& row) {
  if (row.size() != columns_.size()) {
    return Status::InvalidArgument("row width mismatch");
  }
  for (size_t i = 0; i < row.size(); ++i) columns_[i].Append(row[i]);
  return Status::OK();
}

std::vector<Value> Table::GetRow(size_t row) const {
  std::vector<Value> out;
  out.reserve(columns_.size());
  for (const Column& c : columns_) out.push_back(c.Get(row));
  return out;
}

Table Table::Gather(const std::vector<uint32_t>& rows) const {
  Table out(schema_);
  for (size_t i = 0; i < columns_.size(); ++i) {
    out.columns_[i] = columns_[i].Gather(rows);
  }
  return out;
}

size_t Table::MemoryBytes() const {
  size_t bytes = 0;
  for (const Column& c : columns_) bytes += c.MemoryBytes();
  return bytes;
}

std::string Table::ToString(size_t max_rows) const {
  std::ostringstream os;
  for (size_t i = 0; i < schema_.names.size(); ++i) {
    if (i) os << " | ";
    os << schema_.names[i];
  }
  os << "\n";
  size_t n = std::min(num_rows(), max_rows);
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < columns_.size(); ++c) {
      if (c) os << " | ";
      os << columns_[c].Get(r).ToString();
    }
    os << "\n";
  }
  if (num_rows() > n) {
    os << "... (" << num_rows() << " rows total)\n";
  }
  return os.str();
}

namespace {

// Total order over dynamic values (NULL first) for canonical sorting.
int CompareValues(const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) {
    return static_cast<int>(b.is_null()) - static_cast<int>(a.is_null()) == 0
               ? 0
               : (a.is_null() ? -1 : 1);
  }
  if (a.type() == DataType::kString) {
    return a.AsString().compare(b.AsString());
  }
  double da = a.ToDouble(), db = b.ToDouble();
  if (da < db) return -1;
  if (da > db) return 1;
  return 0;
}

std::vector<uint32_t> CanonicalOrder(const Table& t) {
  std::vector<uint32_t> idx(t.num_rows());
  std::iota(idx.begin(), idx.end(), 0);
  std::sort(idx.begin(), idx.end(), [&](uint32_t a, uint32_t b) {
    for (size_t c = 0; c < t.num_columns(); ++c) {
      int cmp = CompareValues(t.column(c).Get(a), t.column(c).Get(b));
      if (cmp != 0) return cmp < 0;
    }
    return false;
  });
  return idx;
}

bool ValuesClose(const Value& a, const Value& b, double eps) {
  if (a.is_null() != b.is_null()) return false;
  if (a.is_null()) return true;
  if (a.type() == DataType::kString || b.type() == DataType::kString) {
    return a.type() == b.type() && a.AsString() == b.AsString();
  }
  double da = a.ToDouble(), db = b.ToDouble();
  double scale = std::max({1.0, std::fabs(da), std::fabs(db)});
  return std::fabs(da - db) <= eps * scale;
}

}  // namespace

bool Table::UnorderedEquals(const Table& a, const Table& b, double eps,
                            std::string* diff) {
  auto fail = [&](const std::string& why) {
    if (diff) *diff = why;
    return false;
  };
  if (a.num_columns() != b.num_columns()) {
    return fail("column count " + std::to_string(a.num_columns()) + " vs " +
                std::to_string(b.num_columns()));
  }
  if (a.num_rows() != b.num_rows()) {
    return fail("row count " + std::to_string(a.num_rows()) + " vs " +
                std::to_string(b.num_rows()));
  }
  std::vector<uint32_t> ia = CanonicalOrder(a), ib = CanonicalOrder(b);
  for (size_t r = 0; r < ia.size(); ++r) {
    for (size_t c = 0; c < a.num_columns(); ++c) {
      Value va = a.column(c).Get(ia[r]);
      Value vb = b.column(c).Get(ib[r]);
      if (!ValuesClose(va, vb, eps)) {
        return fail("row " + std::to_string(r) + " col " + std::to_string(c) +
                    ": " + va.ToString() + " vs " + vb.ToString());
      }
    }
  }
  return true;
}

}  // namespace pytond
