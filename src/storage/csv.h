#ifndef PYTOND_STORAGE_CSV_H_
#define PYTOND_STORAGE_CSV_H_

#include <string>

#include "common/status.h"
#include "storage/table.h"

namespace pytond::csv {

/// Serializes a table to CSV: a header row of column names, then one row
/// per record. Strings are quoted (embedded quotes doubled) when they
/// contain separators/quotes/newlines; NULLs render as empty fields;
/// dates as YYYY-MM-DD.
std::string WriteCsv(const Table& table, char sep = ',');

/// Parses CSV into a table following `schema` (types drive the parsing:
/// empty fields become NULL, date columns accept YYYY-MM-DD). The header
/// row must match the schema's column names.
Result<Table> ReadCsv(const std::string& text, const Schema& schema,
                      char sep = ',');

/// Convenience file wrappers.
Status WriteCsvFile(const Table& table, const std::string& path,
                    char sep = ',');
Result<Table> ReadCsvFile(const std::string& path, const Schema& schema,
                          char sep = ',');

}  // namespace pytond::csv

#endif  // PYTOND_STORAGE_CSV_H_
