#ifndef PYTOND_STORAGE_CATALOG_H_
#define PYTOND_STORAGE_CATALOG_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/table.h"

namespace pytond {

/// Integrity metadata the TondIR optimizer consumes (paper §III-A:
/// "contextual information" from the database catalog).
struct TableConstraints {
  /// Columns forming the primary key (unique, non-null).
  std::vector<std::string> primary_key;
  /// Additional individually-unique columns.
  std::vector<std::string> unique_columns;

  bool IsUniqueColumn(const std::string& name) const;
};

/// Named tables plus their constraints. The engine executes against a
/// catalog; the PyTond frontend reads schemas and uniqueness from it.
class Catalog {
 public:
  Status CreateTable(const std::string& name, Table table,
                     TableConstraints constraints = {});
  Status DropTable(const std::string& name);

  bool HasTable(const std::string& name) const;
  /// nullptr when absent.
  const Table* GetTable(const std::string& name) const;
  Table* GetMutableTable(const std::string& name);
  const TableConstraints* GetConstraints(const std::string& name) const;

  std::vector<std::string> TableNames() const;

 private:
  struct Entry {
    Table table;
    TableConstraints constraints;
  };
  std::map<std::string, Entry> tables_;
};

}  // namespace pytond

#endif  // PYTOND_STORAGE_CATALOG_H_
