#ifndef PYTOND_STORAGE_TABLE_H_
#define PYTOND_STORAGE_TABLE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "storage/column.h"

namespace pytond {

/// Ordered (name, type) column descriptors of a table.
struct Schema {
  std::vector<std::string> names;
  std::vector<DataType> types;

  size_t num_columns() const { return names.size(); }
  /// Index of `name`, or -1.
  int Find(const std::string& name) const;
  void Add(std::string name, DataType type) {
    names.push_back(std::move(name));
    types.push_back(type);
  }
  bool operator==(const Schema& other) const = default;
};

/// An in-memory columnar table. All columns have equal length.
class Table {
 public:
  Table() = default;
  explicit Table(Schema schema);

  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return columns_.empty() ? 0 : columns_[0].size(); }
  size_t num_columns() const { return columns_.size(); }

  Column& column(size_t i) { return columns_[i]; }
  const Column& column(size_t i) const { return columns_[i]; }
  /// Column by name; nullptr if absent.
  const Column* FindColumn(const std::string& name) const;

  /// Adds a fully built column (must match current row count unless the
  /// table is empty).
  Status AddColumn(std::string name, Column col);

  /// Appends a row of dynamic values (test / loader path).
  Status AppendRow(const std::vector<Value>& row);

  /// Row as dynamic values.
  std::vector<Value> GetRow(size_t row) const;

  /// Gathers a subset of rows into a new table.
  Table Gather(const std::vector<uint32_t>& rows) const;

  /// Estimated resident bytes across all columns (see Column::MemoryBytes).
  size_t MemoryBytes() const;

  /// ASCII rendering (header + up to `max_rows` rows) for examples/tests.
  std::string ToString(size_t max_rows = 20) const;

  /// Exact content comparison after sorting both tables on all columns;
  /// floats compare with `eps` tolerance. Used by correctness tests.
  static bool UnorderedEquals(const Table& a, const Table& b,
                              double eps = 1e-6, std::string* diff = nullptr);

 private:
  Schema schema_;
  std::vector<Column> columns_;
};

}  // namespace pytond

#endif  // PYTOND_STORAGE_TABLE_H_
