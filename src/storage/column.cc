#include "storage/column.h"

namespace pytond {

Column::Column(DataType type) : type_(type) {
  switch (type) {
    case DataType::kInt64: data_ = std::vector<int64_t>{}; break;
    case DataType::kFloat64: data_ = std::vector<double>{}; break;
    case DataType::kString: data_ = std::vector<std::string>{}; break;
    case DataType::kBool: data_ = std::vector<uint8_t>{}; break;
    case DataType::kDate: data_ = std::vector<int32_t>{}; break;
    case DataType::kNull: data_ = std::vector<int64_t>{}; break;
  }
}

Column Column::Int64(std::vector<int64_t> v) {
  Column c(DataType::kInt64);
  c.data_ = std::move(v);
  return c;
}
Column Column::Float64(std::vector<double> v) {
  Column c(DataType::kFloat64);
  c.data_ = std::move(v);
  return c;
}
Column Column::String(std::vector<std::string> v) {
  Column c(DataType::kString);
  c.data_ = std::move(v);
  return c;
}
Column Column::Bool(std::vector<uint8_t> v) {
  Column c(DataType::kBool);
  c.data_ = std::move(v);
  return c;
}
Column Column::Date(std::vector<int32_t> v) {
  Column c(DataType::kDate);
  c.data_ = std::move(v);
  return c;
}

size_t Column::size() const {
  switch (type_) {
    case DataType::kInt64:
    case DataType::kNull:
      return ints().size();
    case DataType::kFloat64: return doubles().size();
    case DataType::kString: return strings().size();
    case DataType::kBool: return bools().size();
    case DataType::kDate: return dates().size();
  }
  return 0;
}

size_t Column::MemoryBytes() const {
  size_t bytes = validity_.size();
  switch (type_) {
    case DataType::kInt64:
    case DataType::kNull:
      bytes += ints().size() * sizeof(int64_t);
      break;
    case DataType::kFloat64:
      bytes += doubles().size() * sizeof(double);
      break;
    case DataType::kString:
      bytes += strings().size() * sizeof(std::string);
      for (const std::string& s : strings()) bytes += s.size();
      break;
    case DataType::kBool:
      bytes += bools().size() * sizeof(uint8_t);
      break;
    case DataType::kDate:
      bytes += dates().size() * sizeof(int32_t);
      break;
  }
  return bytes;
}

bool Column::has_nulls() const {
  for (uint8_t v : validity_) {
    if (!v) return true;
  }
  return false;
}

Value Column::Get(size_t row) const {
  if (!IsValid(row)) return Value::Null();
  switch (type_) {
    case DataType::kInt64:
    case DataType::kNull:
      return Value::Int64(ints()[row]);
    case DataType::kFloat64: return Value::Float64(doubles()[row]);
    case DataType::kString: return Value::String(strings()[row]);
    case DataType::kBool: return Value::Bool(bools()[row] != 0);
    case DataType::kDate: return Value::Date(dates()[row]);
  }
  return Value::Null();
}

void Column::Append(const Value& v) {
  if (v.is_null()) {
    AppendNull();
    return;
  }
  if (!validity_.empty()) validity_.push_back(1);
  switch (type_) {
    case DataType::kInt64:
    case DataType::kNull:
      ints().push_back(v.type() == DataType::kFloat64
                           ? static_cast<int64_t>(v.AsFloat64())
                           : v.AsInt64());
      break;
    case DataType::kFloat64: doubles().push_back(v.ToDouble()); break;
    case DataType::kString: strings().push_back(v.AsString()); break;
    case DataType::kBool: bools().push_back(v.AsBool() ? 1 : 0); break;
    case DataType::kDate: dates().push_back(v.AsDate()); break;
  }
}

void Column::AppendNull() {
  size_t n = size();
  if (validity_.empty()) validity_.assign(n, 1);
  validity_.push_back(0);
  switch (type_) {
    case DataType::kInt64:
    case DataType::kNull:
      ints().push_back(0);
      break;
    case DataType::kFloat64: doubles().push_back(0.0); break;
    case DataType::kString: strings().emplace_back(); break;
    case DataType::kBool: bools().push_back(0); break;
    case DataType::kDate: dates().push_back(0); break;
  }
}

void Column::AppendFrom(const Column& src, size_t row) {
  if (!src.IsValid(row)) {
    AppendNull();
    return;
  }
  if (!validity_.empty()) validity_.push_back(1);
  switch (type_) {
    case DataType::kInt64:
    case DataType::kNull:
      ints().push_back(src.ints()[row]);
      break;
    case DataType::kFloat64: doubles().push_back(src.doubles()[row]); break;
    case DataType::kString: strings().push_back(src.strings()[row]); break;
    case DataType::kBool: bools().push_back(src.bools()[row]); break;
    case DataType::kDate: dates().push_back(src.dates()[row]); break;
  }
}

void Column::AppendAll(Column&& src) {
  const size_t m = src.size();
  if (m == 0) return;
  if (!validity_.empty() || !src.validity_.empty()) {
    validity_.resize(size(), 1);
    if (src.validity_.empty()) {
      validity_.insert(validity_.end(), m, 1);
    } else {
      validity_.insert(validity_.end(), src.validity_.begin(),
                       src.validity_.end());
    }
  }
  switch (type_) {
    case DataType::kInt64:
    case DataType::kNull:
      ints().insert(ints().end(), src.ints().begin(), src.ints().end());
      break;
    case DataType::kFloat64:
      doubles().insert(doubles().end(), src.doubles().begin(),
                       src.doubles().end());
      break;
    case DataType::kString: {
      std::vector<std::string>& s = src.strings();
      strings().insert(strings().end(),
                       std::make_move_iterator(s.begin()),
                       std::make_move_iterator(s.end()));
      break;
    }
    case DataType::kBool:
      bools().insert(bools().end(), src.bools().begin(), src.bools().end());
      break;
    case DataType::kDate:
      dates().insert(dates().end(), src.dates().begin(), src.dates().end());
      break;
  }
}

void Column::Reserve(size_t n) {
  switch (type_) {
    case DataType::kInt64:
    case DataType::kNull:
      ints().reserve(n);
      break;
    case DataType::kFloat64: doubles().reserve(n); break;
    case DataType::kString: strings().reserve(n); break;
    case DataType::kBool: bools().reserve(n); break;
    case DataType::kDate: dates().reserve(n); break;
  }
}

namespace {
template <typename T>
std::vector<T> GatherVec(const std::vector<T>& src,
                         const std::vector<uint32_t>& rows) {
  std::vector<T> out;
  out.reserve(rows.size());
  for (uint32_t r : rows) out.push_back(src[r]);
  return out;
}
}  // namespace

Column Column::Gather(const std::vector<uint32_t>& rows) const {
  Column out(type_);
  switch (type_) {
    case DataType::kInt64:
    case DataType::kNull:
      out.data_ = GatherVec(ints(), rows);
      break;
    case DataType::kFloat64: out.data_ = GatherVec(doubles(), rows); break;
    case DataType::kString: out.data_ = GatherVec(strings(), rows); break;
    case DataType::kBool: out.data_ = GatherVec(bools(), rows); break;
    case DataType::kDate: out.data_ = GatherVec(dates(), rows); break;
  }
  if (!validity_.empty()) out.validity_ = GatherVec(validity_, rows);
  return out;
}

}  // namespace pytond
