#ifndef PYTOND_SERVE_CONNECTION_MANAGER_H_
#define PYTOND_SERVE_CONNECTION_MANAGER_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/session.h"
#include "engine/database.h"

namespace pytond::serve {

/// Admission-control knobs for a ConnectionManager.
struct ServeConfig {
  /// Queries executing concurrently across all connections. Excess
  /// arrivals wait in the admission queue. Must be >= 1.
  int max_in_flight = 4;
  /// Arrivals allowed to wait once the in-flight limit is reached;
  /// arrival number max_in_flight + max_queue + 1 is rejected
  /// immediately (queue_full). 0 = never queue.
  int max_queue = 16;
  /// How long a queued arrival waits for a slot before it is rejected
  /// (timeout). <= 0 rejects instead of queuing.
  int queue_timeout_ms = 1000;
  /// Reject new work while the database-wide memory accountant's
  /// `current` gauge is at or above this many bytes. 0 = no memory
  /// admission. Checked at admission only — already-admitted queries
  /// run to completion, so this is a soft brake, not a hard cap.
  uint64_t memory_limit_bytes = 0;
};

/// Why admission turned a query away (mirrors the reject counters).
enum class RejectReason { kQueueFull, kTimeout, kMemory };

/// Cumulative admission counters (thread-safe snapshot).
struct ServeStats {
  uint64_t admitted = 0;
  uint64_t rejected_queue_full = 0;
  uint64_t rejected_timeout = 0;
  uint64_t rejected_memory = 0;
};

class ConnectionManager;

/// One client's handle onto the shared database: a private Session (own
/// prepared statements and run options) over the shared catalog, worker
/// pool, and compiled-plan cache. Every query entry point passes through
/// the manager's admission gate. Obtain via ConnectionManager::Connect;
/// a Connection itself is single-client (callers serialize their own use
/// of one Connection, as with any database handle), but any number of
/// Connections run concurrently.
class Connection {
 public:
  ~Connection();
  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  /// The serve fast path: admission, then PREPARE (auto-parameterized
  /// plan-cache lookup), then EXECUTE with the source's own literals.
  /// Repeat arrivals of the same query shape skip the whole frontend.
  Result<std::shared_ptr<const Table>> Run(const std::string& source,
                                           const RunOptions& options = {});

  /// Admission + plain Session::Run (literal-keyed plan cache); the
  /// escape hatch for sources the parameterizer should not touch.
  Result<std::shared_ptr<const Table>> RunAdHoc(const std::string& source,
                                                const RunOptions& options = {});

  /// PREPARE without executing. Compilation is admission-exempt (it
  /// holds no worker slots); only Execute admits.
  Result<PreparedStatement> Prepare(const std::string& source,
                                    const RunOptions& options = {});

  /// Admission + PreparedStatement::Execute with explicit bindings.
  Result<std::shared_ptr<const Table>> Execute(
      const PreparedStatement& statement, const std::vector<Value>& params);
  /// Admission + execute with the statement's default (prepared) bindings.
  Result<std::shared_ptr<const Table>> Execute(
      const PreparedStatement& statement);

  /// The underlying session (shared db + shared plan cache). Direct use
  /// bypasses admission control.
  Session& session() { return session_; }

 private:
  friend class ConnectionManager;
  explicit Connection(ConnectionManager* manager);

  ConnectionManager* manager_;
  Session session_;
};

/// Owns the shared Database + PlanCache and the admission gate in front
/// of them. Connections are cheap (a Session holding two shared_ptrs);
/// the expensive state — catalog, worker pool, compiled plans, metrics —
/// lives once, here.
///
/// Admission protocol (per query): memory brake first (reject kMemory),
/// then an in-flight slot if free, else wait in a bounded queue
/// (reject kQueueFull when the queue is at max_queue, kTimeout after
/// queue_timeout_ms). Rejections return StatusCode::kRejected and never
/// reach the engine. Counters: tond_serve_queries_total,
/// tond_serve_rejected_{queue_full,timeout,memory}_total, gauges
/// tond_serve_inflight / tond_serve_queue_depth /
/// tond_serve_connections, histogram tond_serve_wait_ns (admission wait
/// of admitted queries only).
class ConnectionManager {
 public:
  /// Fresh private database.
  explicit ConnectionManager(ServeConfig config = {});
  /// Serve an existing (typically pre-populated) database.
  ConnectionManager(std::shared_ptr<engine::Database> db, ServeConfig config);
  ConnectionManager(const ConnectionManager&) = delete;
  ConnectionManager& operator=(const ConnectionManager&) = delete;

  /// Opens a connection. Connections must not outlive the manager.
  std::unique_ptr<Connection> Connect();

  engine::Database& db() { return *db_; }
  const std::shared_ptr<engine::Database>& shared_db() const { return db_; }
  const std::shared_ptr<PlanCache>& shared_cache() const { return cache_; }
  const ServeConfig& config() const { return config_; }
  ServeStats stats() const;

 private:
  friend class Connection;

  /// RAII in-flight slot: released (and the next waiter woken) on
  /// destruction. Obtained via Admit.
  class Ticket {
   public:
    explicit Ticket(ConnectionManager* manager) : manager_(manager) {}
    Ticket(Ticket&& other) noexcept : manager_(other.manager_) {
      other.manager_ = nullptr;
    }
    Ticket& operator=(Ticket&&) = delete;
    Ticket(const Ticket&) = delete;
    Ticket& operator=(const Ticket&) = delete;
    ~Ticket() {
      if (manager_ != nullptr) manager_->ReleaseSlot();
    }

   private:
    ConnectionManager* manager_;
  };

  Result<Ticket> Admit();
  void ReleaseSlot();
  void CountRejection(RejectReason reason);

  std::shared_ptr<engine::Database> db_;
  std::shared_ptr<PlanCache> cache_;
  ServeConfig config_;

  mutable std::mutex mu_;
  std::condition_variable slot_free_;
  int in_flight_ = 0;
  int queued_ = 0;
  ServeStats stats_;

  obs::Counter* queries_total_;
  obs::Counter* rejected_queue_full_total_;
  obs::Counter* rejected_timeout_total_;
  obs::Counter* rejected_memory_total_;
  obs::Gauge* inflight_;
  obs::Gauge* queue_depth_;
  obs::Gauge* connections_;
  obs::Histogram* wait_ns_;
};

}  // namespace pytond::serve

#endif  // PYTOND_SERVE_CONNECTION_MANAGER_H_
