#include "serve/connection_manager.h"

#include <chrono>

#include "obs/trace.h"

namespace pytond::serve {

Connection::Connection(ConnectionManager* manager)
    : manager_(manager),
      session_(manager->shared_db(), manager->shared_cache()) {}

Connection::~Connection() {
  if (manager_->db().metrics().enabled()) {
    manager_->connections_->Add(-1);
  }
}

Result<std::shared_ptr<const Table>> Connection::Run(
    const std::string& source, const RunOptions& options) {
  PYTOND_ASSIGN_OR_RETURN(ConnectionManager::Ticket ticket,
                          manager_->Admit());
  PYTOND_ASSIGN_OR_RETURN(PreparedStatement ps,
                          session_.Prepare(source, options));
  return ps.Execute();
}

Result<std::shared_ptr<const Table>> Connection::RunAdHoc(
    const std::string& source, const RunOptions& options) {
  PYTOND_ASSIGN_OR_RETURN(ConnectionManager::Ticket ticket,
                          manager_->Admit());
  return session_.Run(source, options);
}

Result<PreparedStatement> Connection::Prepare(const std::string& source,
                                              const RunOptions& options) {
  return session_.Prepare(source, options);
}

Result<std::shared_ptr<const Table>> Connection::Execute(
    const PreparedStatement& statement, const std::vector<Value>& params) {
  PYTOND_ASSIGN_OR_RETURN(ConnectionManager::Ticket ticket,
                          manager_->Admit());
  return statement.Execute(params);
}

Result<std::shared_ptr<const Table>> Connection::Execute(
    const PreparedStatement& statement) {
  PYTOND_ASSIGN_OR_RETURN(ConnectionManager::Ticket ticket,
                          manager_->Admit());
  return statement.Execute();
}

ConnectionManager::ConnectionManager(ServeConfig config)
    : ConnectionManager(std::make_shared<engine::Database>(), config) {}

ConnectionManager::ConnectionManager(std::shared_ptr<engine::Database> db,
                                     ServeConfig config)
    : db_(std::move(db)),
      cache_(std::make_shared<PlanCache>(&db_->metrics())),
      config_(config),
      queries_total_(&db_->metrics().counter("tond_serve_queries_total")),
      rejected_queue_full_total_(&db_->metrics().counter(
          "tond_serve_rejected_queue_full_total")),
      rejected_timeout_total_(
          &db_->metrics().counter("tond_serve_rejected_timeout_total")),
      rejected_memory_total_(
          &db_->metrics().counter("tond_serve_rejected_memory_total")),
      inflight_(&db_->metrics().gauge("tond_serve_inflight")),
      queue_depth_(&db_->metrics().gauge("tond_serve_queue_depth")),
      connections_(&db_->metrics().gauge("tond_serve_connections")),
      wait_ns_(&db_->metrics().histogram("tond_serve_wait_ns")) {
  if (config_.max_in_flight < 1) config_.max_in_flight = 1;
  if (config_.max_queue < 0) config_.max_queue = 0;
}

std::unique_ptr<Connection> ConnectionManager::Connect() {
  if (db_->metrics().enabled()) connections_->Add(1);
  return std::unique_ptr<Connection>(new Connection(this));
}

ServeStats ConnectionManager::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void ConnectionManager::CountRejection(RejectReason reason) {
  // Caller holds mu_ for the ServeStats update; metric counters are
  // lock-free either way.
  const bool record = db_->metrics().enabled();
  switch (reason) {
    case RejectReason::kQueueFull:
      ++stats_.rejected_queue_full;
      if (record) rejected_queue_full_total_->Add(1);
      break;
    case RejectReason::kTimeout:
      ++stats_.rejected_timeout;
      if (record) rejected_timeout_total_->Add(1);
      break;
    case RejectReason::kMemory:
      ++stats_.rejected_memory;
      if (record) rejected_memory_total_->Add(1);
      break;
  }
}

Result<ConnectionManager::Ticket> ConnectionManager::Admit() {
  const bool record = db_->metrics().enabled();
  const uint64_t t0 = record ? obs::NowNs() : 0;

  // Memory brake before anything queues: admitting more work while the
  // database is already over budget only deepens the hole, and waiting
  // does not help a client whose problem is resident bytes, not slots.
  if (config_.memory_limit_bytes > 0 &&
      db_->memory().current() >= config_.memory_limit_bytes) {
    std::lock_guard<std::mutex> lock(mu_);
    CountRejection(RejectReason::kMemory);
    return Status::Rejected(
        "memory admission: database holds " +
        std::to_string(db_->memory().current()) + " bytes, limit " +
        std::to_string(config_.memory_limit_bytes));
  }

  std::unique_lock<std::mutex> lock(mu_);
  if (in_flight_ >= config_.max_in_flight) {
    if (queued_ >= config_.max_queue || config_.queue_timeout_ms <= 0) {
      CountRejection(RejectReason::kQueueFull);
      return Status::Rejected(
          "admission queue full (" + std::to_string(queued_) + "/" +
          std::to_string(config_.max_queue) + " waiting, " +
          std::to_string(in_flight_) + " in flight)");
    }
    ++queued_;
    if (record) queue_depth_->Set(queued_);
    const bool got_slot = slot_free_.wait_for(
        lock, std::chrono::milliseconds(config_.queue_timeout_ms),
        [&] { return in_flight_ < config_.max_in_flight; });
    --queued_;
    if (record) queue_depth_->Set(queued_);
    if (!got_slot) {
      CountRejection(RejectReason::kTimeout);
      return Status::Rejected("admission wait exceeded " +
                              std::to_string(config_.queue_timeout_ms) +
                              " ms");
    }
  }
  ++in_flight_;
  ++stats_.admitted;
  if (record) {
    inflight_->Set(in_flight_);
    queries_total_->Add(1);
    wait_ns_->Record(obs::NowNs() - t0);
  }
  return Ticket(this);
}

void ConnectionManager::ReleaseSlot() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    --in_flight_;
    if (db_->metrics().enabled()) inflight_->Set(in_flight_);
  }
  slot_free_.notify_one();
}

}  // namespace pytond::serve
