#include "tondir/ir.h"

#include <sstream>

namespace pytond::tondir {

const char* BinOpName(BinOp op) {
  switch (op) {
    case BinOp::kAdd: return "+";
    case BinOp::kSub: return "-";
    case BinOp::kMul: return "*";
    case BinOp::kDiv: return "/";
    case BinOp::kMod: return "%";
    case BinOp::kAnd: return "and";
    case BinOp::kOr: return "or";
    case BinOp::kLike: return "like";
    case BinOp::kNotLike: return "not_like";
    case BinOp::kConcat: return "||";
    case BinOp::kEq: return "=";
    case BinOp::kNe: return "!=";
    case BinOp::kLt: return "<";
    case BinOp::kLe: return "<=";
    case BinOp::kGt: return ">";
    case BinOp::kGe: return ">=";
  }
  return "?";
}

const char* CmpOpName(CmpOp op) {
  switch (op) {
    case CmpOp::kLt: return "<";
    case CmpOp::kLe: return "<=";
    case CmpOp::kEq: return "=";
    case CmpOp::kNe: return "!=";
    case CmpOp::kGe: return ">=";
    case CmpOp::kGt: return ">";
  }
  return "?";
}

const char* AggFnName(AggFn fn) {
  switch (fn) {
    case AggFn::kSum: return "sum";
    case AggFn::kMin: return "min";
    case AggFn::kMax: return "max";
    case AggFn::kAvg: return "avg";
    case AggFn::kCount: return "count";
    case AggFn::kCountDistinct: return "count_distinct";
  }
  return "?";
}

TermPtr Term::Var(std::string name) {
  auto t = std::make_shared<Term>();
  t->kind = Kind::kVar;
  t->var = std::move(name);
  return t;
}

TermPtr Term::Const(Value v) {
  auto t = std::make_shared<Term>();
  t->kind = Kind::kConst;
  t->constant = std::move(v);
  return t;
}

TermPtr Term::Param(int index, Value seed) {
  auto t = std::make_shared<Term>();
  t->kind = Kind::kParam;
  t->param_index = index;
  t->constant = std::move(seed);
  return t;
}

TermPtr Term::Agg(AggFn fn, TermPtr arg) {
  auto t = std::make_shared<Term>();
  t->kind = Kind::kAgg;
  t->agg_fn = fn;
  t->children.push_back(std::move(arg));
  return t;
}

TermPtr Term::Ext(std::string name, std::vector<TermPtr> args) {
  auto t = std::make_shared<Term>();
  t->kind = Kind::kExt;
  t->ext_name = std::move(name);
  t->children = std::move(args);
  return t;
}

TermPtr Term::If(TermPtr cond, TermPtr then_t, TermPtr else_t) {
  auto t = std::make_shared<Term>();
  t->kind = Kind::kIf;
  t->children = {std::move(cond), std::move(then_t), std::move(else_t)};
  return t;
}

TermPtr Term::Binary(BinOp op, TermPtr lhs, TermPtr rhs) {
  auto t = std::make_shared<Term>();
  t->kind = Kind::kBinary;
  t->bin_op = op;
  t->children = {std::move(lhs), std::move(rhs)};
  return t;
}

TermPtr Term::Clone() const {
  auto t = std::make_shared<Term>(*this);
  for (auto& c : t->children) c = c->Clone();
  return t;
}

void Term::CollectVars(std::set<std::string>* out) const {
  if (kind == Kind::kVar) out->insert(var);
  for (const auto& c : children) c->CollectVars(out);
}

bool Term::ContainsAgg() const {
  if (kind == Kind::kAgg) return true;
  for (const auto& c : children) {
    if (c->ContainsAgg()) return true;
  }
  return false;
}

TermPtr Term::Substitute(const TermPtr& t,
                         const std::map<std::string, TermPtr>& subst) {
  if (t->kind == Kind::kVar) {
    auto it = subst.find(t->var);
    return it == subst.end() ? t : it->second->Clone();
  }
  if (t->children.empty()) return t;
  auto copy = std::make_shared<Term>(*t);
  for (auto& c : copy->children) c = Substitute(c, subst);
  return copy;
}

Atom Atom::RelAccess(std::string relation, std::vector<std::string> vars) {
  Atom a;
  a.kind = Kind::kRelAccess;
  a.relation = std::move(relation);
  a.vars = std::move(vars);
  return a;
}

Atom Atom::ConstRel(std::string var, std::vector<Value> values) {
  Atom a;
  a.kind = Kind::kConstRel;
  a.var0 = std::move(var);
  a.const_values = std::move(values);
  return a;
}

Atom Atom::Exists(Body body, bool negated) {
  Atom a;
  a.kind = Kind::kExists;
  a.exists_body = std::make_shared<Body>(std::move(body));
  a.negated = negated;
  return a;
}

Atom Atom::Compare(std::string var, CmpOp op, TermPtr term) {
  Atom a;
  a.kind = Kind::kCompare;
  a.var0 = std::move(var);
  a.cmp_op = op;
  a.term = std::move(term);
  return a;
}

Atom Atom::External(std::string name, std::vector<std::string> vars) {
  Atom a;
  a.kind = Kind::kExternal;
  a.ext_name = std::move(name);
  a.vars = std::move(vars);
  return a;
}

Atom Atom::CloneAtom() const {
  Atom a = *this;
  if (term) a.term = term->Clone();
  if (exists_body) {
    auto body = std::make_shared<Body>();
    for (const Atom& inner : *exists_body) body->push_back(inner.CloneAtom());
    a.exists_body = body;
  }
  return a;
}

void Atom::CollectVars(std::set<std::string>* out) const {
  switch (kind) {
    case Kind::kRelAccess:
    case Kind::kExternal:
      out->insert(vars.begin(), vars.end());
      break;
    case Kind::kConstRel:
      out->insert(var0);
      break;
    case Kind::kExists:
      for (const Atom& a : *exists_body) a.CollectVars(out);
      break;
    case Kind::kCompare:
      out->insert(var0);
      if (term) term->CollectVars(out);
      break;
  }
}

void Atom::CollectDefinedVars(const std::set<std::string>& defined_before,
                              std::set<std::string>* out) const {
  switch (kind) {
    case Kind::kRelAccess:
      out->insert(vars.begin(), vars.end());
      break;
    case Kind::kConstRel:
      out->insert(var0);
      break;
    case Kind::kCompare:
      if (cmp_op == CmpOp::kEq && !defined_before.count(var0)) {
        out->insert(var0);
      }
      break;
    case Kind::kExists:
    case Kind::kExternal:
      break;
  }
}

Rule Rule::CloneRule() const {
  Rule r;
  r.head = head;
  for (const Atom& a : body) r.body.push_back(a.CloneAtom());
  return r;
}

bool Rule::HasAggregate() const {
  for (const Atom& a : body) {
    if (a.kind == Atom::Kind::kCompare && a.term && a.term->ContainsAgg()) {
      return true;
    }
  }
  return false;
}

bool Rule::HasJoin() const {
  int rels = 0;
  for (const Atom& a : body) {
    if (a.kind == Atom::Kind::kRelAccess) ++rels;
  }
  return rels > 1;
}

bool Rule::HasOuterMarker() const {
  for (const Atom& a : body) {
    if (a.kind == Atom::Kind::kExternal &&
        a.ext_name.rfind("outer_", 0) == 0) {
      return true;
    }
  }
  return false;
}

std::string TermToString(const Term& term) {
  switch (term.kind) {
    case Term::Kind::kVar: return term.var;
    case Term::Kind::kParam:
      return "$p" + std::to_string(term.param_index);
    case Term::Kind::kConst:
      if (term.constant.type() == DataType::kString) {
        return "\"" + term.constant.AsString() + "\"";
      }
      return term.constant.ToString();
    case Term::Kind::kAgg:
      return std::string(AggFnName(term.agg_fn)) + "(" +
             TermToString(*term.children[0]) + ")";
    case Term::Kind::kExt: {
      std::string s = term.ext_name + "(";
      for (size_t i = 0; i < term.children.size(); ++i) {
        if (i) s += ", ";
        s += TermToString(*term.children[i]);
      }
      return s + ")";
    }
    case Term::Kind::kIf:
      return "if(" + TermToString(*term.children[0]) + ", " +
             TermToString(*term.children[1]) + ", " +
             TermToString(*term.children[2]) + ")";
    case Term::Kind::kBinary: {
      std::string s = "(";
      s += TermToString(*term.children[0]);
      s += " ";
      s += BinOpName(term.bin_op);
      s += " ";
      s += TermToString(*term.children[1]);
      s += ")";
      return s;
    }
  }
  return "?";
}

namespace {
std::string VarsToString(const std::vector<std::string>& vars) {
  std::string s;
  for (size_t i = 0; i < vars.size(); ++i) {
    if (i) s += ", ";
    s += vars[i];
  }
  return s;
}

std::string BodyToString(const Body& body) {
  std::string s;
  for (size_t i = 0; i < body.size(); ++i) {
    if (i) s += ", ";
    s += AtomToString(body[i]);
  }
  return s;
}
}  // namespace

std::string AtomToString(const Atom& atom) {
  switch (atom.kind) {
    case Atom::Kind::kRelAccess:
      return atom.relation + "(" + VarsToString(atom.vars) + ")";
    case Atom::Kind::kConstRel: {
      std::string s = "(" + atom.var0 + " = [";
      for (size_t i = 0; i < atom.const_values.size(); ++i) {
        if (i) s += ", ";
        s += atom.const_values[i].ToString();
      }
      return s + "])";
    }
    case Atom::Kind::kExists:
      return std::string(atom.negated ? "!" : "") + "exists(" +
             BodyToString(*atom.exists_body) + ")";
    case Atom::Kind::kCompare:
      return "(" + atom.var0 + " " + CmpOpName(atom.cmp_op) + " " +
             TermToString(*atom.term) + ")";
    case Atom::Kind::kExternal:
      return "@" + atom.ext_name + "(" + VarsToString(atom.vars) + ")";
  }
  return "?";
}

std::string RuleToString(const Rule& rule) {
  std::ostringstream os;
  os << rule.head.relation << "(" << VarsToString(rule.head.vars) << ")";
  if (rule.head.has_group()) {
    os << " group(" << VarsToString(rule.head.group_vars) << ")";
  }
  if (rule.head.has_sort()) {
    os << " sort(";
    for (size_t i = 0; i < rule.head.sort_keys.size(); ++i) {
      if (i) os << ", ";
      os << rule.head.sort_keys[i].var
         << (rule.head.sort_keys[i].ascending ? " asc" : " desc");
    }
    os << ")";
  }
  if (rule.head.limit) os << " limit(" << *rule.head.limit << ")";
  if (rule.head.distinct) os << " distinct";
  os << " :- " << BodyToString(rule.body) << ".";
  return os.str();
}

std::string Program::ToString() const {
  std::string s;
  for (const Rule& r : rules) {
    s += RuleToString(r);
    s += "\n";
  }
  return s;
}

// Program::Validate is defined in analysis/verifier.cc as a thin wrapper
// over the semantic verifier; callers link pytond_analysis.

std::map<std::string, std::vector<size_t>> Program::BuildReaderIndex() const {
  std::map<std::string, std::vector<size_t>> readers;
  for (size_t i = 0; i < rules.size(); ++i) {
    for (const Atom& a : rules[i].body) {
      if (a.kind == Atom::Kind::kRelAccess) {
        readers[a.relation].push_back(i);
      } else if (a.kind == Atom::Kind::kExists) {
        for (const Atom& inner : *a.exists_body) {
          if (inner.kind == Atom::Kind::kRelAccess) {
            readers[inner.relation].push_back(i);
          }
        }
      }
    }
  }
  return readers;
}

}  // namespace pytond::tondir
