#include <cctype>
#include <cstdlib>

#include "tondir/ir.h"

namespace pytond::tondir {
namespace {

/// Hand-rolled tokenizer/parser for the textual TondIR syntax. This exists
/// for tests and debugging: optimizer tests author programs as text instead
/// of building ASTs node by node.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<Program> ParseProgramText() {
    Program p;
    SkipWs();
    while (pos_ < text_.size()) {
      // Top-level '@' introduces a directive; inside bodies it is a marker
      // atom, so there is no ambiguity.
      if (text_[pos_] == '@') {
        ++pos_;
        if (!TryKeyword("base")) {
          return Status::ParseError("expected 'base' after '@' at pos " +
                                    std::to_string(pos_));
        }
        PYTOND_RETURN_IF_ERROR(ParseBaseDirective(&p));
        SkipWs();
        continue;
      }
      auto r = ParseRuleText();
      if (!r.ok()) return r.status();
      p.rules.push_back(std::move(*r));
      SkipWs();
    }
    return p;
  }

  Result<Rule> ParseRuleText() {
    Rule rule;
    PYTOND_ASSIGN_OR_RETURN(std::string rel, Name());
    rule.head.relation = rel;
    PYTOND_ASSIGN_OR_RETURN(rule.head.vars, VarList());
    rule.head.col_names = rule.head.vars;
    SkipWs();
    // Optional head decorations in any order.
    while (true) {
      if (TryKeyword("group")) {
        PYTOND_ASSIGN_OR_RETURN(rule.head.group_vars, VarList());
      } else if (TryKeyword("sort")) {
        PYTOND_RETURN_IF_ERROR(ParseSortKeys(&rule.head.sort_keys));
      } else if (TryKeyword("limit")) {
        PYTOND_RETURN_IF_ERROR(Expect('('));
        PYTOND_ASSIGN_OR_RETURN(Value v, Number());
        rule.head.limit = v.AsInt64();
        PYTOND_RETURN_IF_ERROR(Expect(')'));
      } else if (TryKeyword("distinct")) {
        rule.head.distinct = true;
      } else {
        break;
      }
      SkipWs();
    }
    PYTOND_RETURN_IF_ERROR(ExpectStr(":-"));
    PYTOND_ASSIGN_OR_RETURN(rule.body, ParseBody());
    PYTOND_RETURN_IF_ERROR(Expect('.'));
    return rule;
  }

 private:
  /// '@base' NAME '(' col[:type], ... ')' ['unique' '(' ints ')'] '.' —
  /// declares an extensional relation for standalone .tir files (tondlint,
  /// examples). The optional ':type' annotation (int, float, str, bool,
  /// date) seeds base_column_types for the dataflow analysis.
  Status ParseBaseDirective(Program* p) {
    PYTOND_ASSIGN_OR_RETURN(std::string rel, Name());
    PYTOND_RETURN_IF_ERROR(Expect('('));
    std::vector<std::string> cols;
    std::vector<DataType> types;
    bool any_type = false;
    while (true) {
      PYTOND_ASSIGN_OR_RETURN(std::string col, Name());
      cols.push_back(std::move(col));
      DataType ty = DataType::kNull;
      if (TryChar(':')) {
        PYTOND_ASSIGN_OR_RETURN(std::string tname, Name());
        if (tname == "int") ty = DataType::kInt64;
        else if (tname == "float") ty = DataType::kFloat64;
        else if (tname == "str") ty = DataType::kString;
        else if (tname == "bool") ty = DataType::kBool;
        else if (tname == "date") ty = DataType::kDate;
        else return Status::ParseError("unknown column type '" + tname + "'");
        any_type = true;
      }
      types.push_back(ty);
      if (TryChar(')')) break;
      PYTOND_RETURN_IF_ERROR(Expect(','));
    }
    p->base_columns[rel] = std::move(cols);
    if (any_type) p->base_column_types[rel] = std::move(types);
    if (TryKeyword("unique")) {
      PYTOND_RETURN_IF_ERROR(Expect('('));
      while (true) {
        PYTOND_ASSIGN_OR_RETURN(Value v, Number());
        p->relation_info[rel].unique_positions.insert(
            static_cast<size_t>(v.AsInt64()));
        if (TryChar(')')) break;
        PYTOND_RETURN_IF_ERROR(Expect(','));
      }
    }
    return Expect('.');
  }

  void SkipWs() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '#') {  // comment to end of line
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
      } else {
        break;
      }
    }
  }

  bool TryChar(char c) {
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Expect(char c) {
    if (!TryChar(c)) {
      return Status::ParseError(std::string("expected '") + c + "' at pos " +
                                std::to_string(pos_));
    }
    return Status::OK();
  }

  Status ExpectStr(const std::string& s) {
    SkipWs();
    if (text_.compare(pos_, s.size(), s) == 0) {
      pos_ += s.size();
      return Status::OK();
    }
    return Status::ParseError("expected '" + s + "' at pos " +
                              std::to_string(pos_));
  }

  bool TryKeyword(const std::string& kw) {
    SkipWs();
    if (text_.compare(pos_, kw.size(), kw) != 0) return false;
    size_t end = pos_ + kw.size();
    if (end < text_.size() &&
        (std::isalnum(static_cast<unsigned char>(text_[end])) ||
         text_[end] == '_')) {
      return false;
    }
    pos_ = end;
    return true;
  }

  Result<std::string> Name() {
    SkipWs();
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_')) {
      ++pos_;
    }
    if (pos_ == start) {
      return Status::ParseError("expected identifier at pos " +
                                std::to_string(start));
    }
    return text_.substr(start, pos_ - start);
  }

  Result<Value> Number() {
    SkipWs();
    size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    bool is_float = false;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.')) {
      if (text_[pos_] == '.') is_float = true;
      ++pos_;
    }
    if (pos_ == start) {
      return Status::ParseError("expected number at pos " +
                                std::to_string(start));
    }
    std::string tok = text_.substr(start, pos_ - start);
    if (is_float) return Value::Float64(std::strtod(tok.c_str(), nullptr));
    return Value::Int64(std::strtoll(tok.c_str(), nullptr, 10));
  }

  Result<std::vector<std::string>> VarList() {
    PYTOND_RETURN_IF_ERROR(Expect('('));
    std::vector<std::string> vars;
    if (TryChar(')')) return vars;
    while (true) {
      PYTOND_ASSIGN_OR_RETURN(std::string v, Name());
      vars.push_back(v);
      if (TryChar(')')) break;
      PYTOND_RETURN_IF_ERROR(Expect(','));
    }
    return vars;
  }

  Status ParseSortKeys(std::vector<SortKey>* keys) {
    PYTOND_RETURN_IF_ERROR(Expect('('));
    while (true) {
      PYTOND_ASSIGN_OR_RETURN(std::string v, Name());
      SortKey k{v, true};
      if (TryKeyword("desc")) k.ascending = false;
      else TryKeyword("asc");
      keys->push_back(k);
      if (TryChar(')')) break;
      PYTOND_RETURN_IF_ERROR(Expect(','));
    }
    return Status::OK();
  }

  Result<Body> ParseBody() {
    Body body;
    while (true) {
      PYTOND_ASSIGN_OR_RETURN(Atom a, ParseAtom());
      body.push_back(std::move(a));
      SkipWs();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      break;
    }
    return body;
  }

  Result<Atom> ParseAtom() {
    SkipWs();
    if (pos_ >= text_.size()) return Status::ParseError("unexpected end");
    char c = text_[pos_];
    if (c == '@') {
      ++pos_;
      PYTOND_ASSIGN_OR_RETURN(std::string name, Name());
      PYTOND_ASSIGN_OR_RETURN(std::vector<std::string> vars, VarList());
      return Atom::External(name, vars);
    }
    if (c == '!') {
      ++pos_;
      PYTOND_RETURN_IF_ERROR(ExpectStr("exists"));
      PYTOND_RETURN_IF_ERROR(Expect('('));
      PYTOND_ASSIGN_OR_RETURN(Body b, ParseBody());
      PYTOND_RETURN_IF_ERROR(Expect(')'));
      return Atom::Exists(std::move(b), /*negated=*/true);
    }
    if (c == '(') {
      // Comparison / assignment / constant relation.
      ++pos_;
      PYTOND_ASSIGN_OR_RETURN(std::string var, Name());
      PYTOND_ASSIGN_OR_RETURN(CmpOp op, ParseCmpOp());
      SkipWs();
      if (op == CmpOp::kEq && pos_ < text_.size() && text_[pos_] == '[') {
        ++pos_;
        std::vector<Value> values;
        if (!TryChar(']')) {
          while (true) {
            PYTOND_ASSIGN_OR_RETURN(Value v, ParseConstValue());
            values.push_back(std::move(v));
            if (TryChar(']')) break;
            PYTOND_RETURN_IF_ERROR(Expect(','));
          }
        }
        PYTOND_RETURN_IF_ERROR(Expect(')'));
        return Atom::ConstRel(var, std::move(values));
      }
      PYTOND_ASSIGN_OR_RETURN(TermPtr t, ParseTerm());
      PYTOND_RETURN_IF_ERROR(Expect(')'));
      return Atom::Compare(var, op, std::move(t));
    }
    // exists(...) or relation access.
    size_t save = pos_;
    PYTOND_ASSIGN_OR_RETURN(std::string name, Name());
    if (name == "exists") {
      PYTOND_RETURN_IF_ERROR(Expect('('));
      PYTOND_ASSIGN_OR_RETURN(Body b, ParseBody());
      PYTOND_RETURN_IF_ERROR(Expect(')'));
      return Atom::Exists(std::move(b), /*negated=*/false);
    }
    pos_ = save;
    PYTOND_ASSIGN_OR_RETURN(std::string rel, Name());
    PYTOND_ASSIGN_OR_RETURN(std::vector<std::string> vars, VarList());
    return Atom::RelAccess(rel, vars);
  }

  Result<CmpOp> ParseCmpOp() {
    SkipWs();
    auto two = [&](const char* s) {
      return text_.compare(pos_, 2, s) == 0;
    };
    if (two("<=")) { pos_ += 2; return CmpOp::kLe; }
    if (two(">=")) { pos_ += 2; return CmpOp::kGe; }
    if (two("!=") || two("<>")) { pos_ += 2; return CmpOp::kNe; }
    char c = pos_ < text_.size() ? text_[pos_] : 0;
    if (c == '<') { ++pos_; return CmpOp::kLt; }
    if (c == '>') { ++pos_; return CmpOp::kGt; }
    if (c == '=') { ++pos_; return CmpOp::kEq; }
    return Status::ParseError("expected comparison operator at pos " +
                              std::to_string(pos_));
  }

  Result<Value> ParseConstValue() {
    SkipWs();
    char c = pos_ < text_.size() ? text_[pos_] : 0;
    if (c == '"' || c == '\'') {
      char quote = c;
      ++pos_;
      size_t start = pos_;
      while (pos_ < text_.size() && text_[pos_] != quote) ++pos_;
      if (pos_ >= text_.size()) return Status::ParseError("unclosed string");
      std::string s = text_.substr(start, pos_ - start);
      ++pos_;
      return Value::String(std::move(s));
    }
    if (TryKeyword("true")) return Value::Bool(true);
    if (TryKeyword("false")) return Value::Bool(false);
    if (TryKeyword("null")) return Value::Null();
    return Number();
  }

  Result<TermPtr> ParseTerm() {
    PYTOND_ASSIGN_OR_RETURN(TermPtr lhs, ParsePrimary());
    // Left-associative chain; parenthesize in test inputs for grouping.
    while (true) {
      SkipWs();
      BinOp op;
      if (TryChar('+')) op = BinOp::kAdd;
      else if (PeekMinusBinary()) { ++pos_; op = BinOp::kSub; }
      else if (TryChar('*')) op = BinOp::kMul;
      else if (TryChar('/')) op = BinOp::kDiv;
      else if (TryChar('%')) op = BinOp::kMod;
      else if (TryKeyword("and")) op = BinOp::kAnd;
      else if (TryKeyword("or")) op = BinOp::kOr;
      else if (TryKeyword("like")) op = BinOp::kLike;
      else if (TryTwoCharOp("<=")) op = BinOp::kLe;
      else if (TryTwoCharOp(">=")) op = BinOp::kGe;
      else if (TryTwoCharOp("!=")) op = BinOp::kNe;
      else if (TryChar('=')) op = BinOp::kEq;
      else if (TryChar('<')) op = BinOp::kLt;
      else if (TryChar('>')) op = BinOp::kGt;
      else break;
      PYTOND_ASSIGN_OR_RETURN(TermPtr rhs, ParsePrimary());
      lhs = Term::Binary(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  bool PeekMinusBinary() {
    SkipWs();
    return pos_ < text_.size() && text_[pos_] == '-';
  }

  bool TryTwoCharOp(const char* op) {
    SkipWs();
    if (text_.compare(pos_, 2, op) == 0) {
      pos_ += 2;
      return true;
    }
    return false;
  }

  Result<TermPtr> ParsePrimary() {
    SkipWs();
    char c = pos_ < text_.size() ? text_[pos_] : 0;
    if (c == '$') {
      // Parameter slot `$pN` (printed by TermToString for prepared
      // skeletons). The textual form carries no seed value; it parses
      // with a null seed, which types as unknown.
      ++pos_;
      if (pos_ >= text_.size() || text_[pos_] != 'p') {
        return Status::ParseError("expected 'p' after '$'");
      }
      ++pos_;
      size_t start = pos_;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
      if (pos_ == start) {
        return Status::ParseError("expected parameter index after '$p'");
      }
      int idx = std::atoi(text_.substr(start, pos_ - start).c_str());
      return Term::Param(idx, Value::Null());
    }
    if (c == '(') {
      ++pos_;
      PYTOND_ASSIGN_OR_RETURN(TermPtr t, ParseTerm());
      PYTOND_RETURN_IF_ERROR(Expect(')'));
      return t;
    }
    if (c == '"' || c == '\'' ||
        std::isdigit(static_cast<unsigned char>(c)) || c == '-') {
      PYTOND_ASSIGN_OR_RETURN(Value v, ParseConstValue());
      return Term::Const(std::move(v));
    }
    PYTOND_ASSIGN_OR_RETURN(std::string name, Name());
    if (name == "true") return Term::Const(Value::Bool(true));
    if (name == "false") return Term::Const(Value::Bool(false));
    if (name == "null") return Term::Const(Value::Null());
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == '(') {
      // if(...), agg(...), or external function call.
      ++pos_;
      std::vector<TermPtr> args;
      if (!TryChar(')')) {
        while (true) {
          PYTOND_ASSIGN_OR_RETURN(TermPtr t, ParseTerm());
          args.push_back(std::move(t));
          if (TryChar(')')) break;
          PYTOND_RETURN_IF_ERROR(Expect(','));
        }
      }
      if (name == "if") {
        if (args.size() != 3) {
          return Status::ParseError("if() takes 3 arguments");
        }
        return Term::If(args[0], args[1], args[2]);
      }
      static const std::map<std::string, AggFn> kAggs = {
          {"sum", AggFn::kSum},     {"min", AggFn::kMin},
          {"max", AggFn::kMax},     {"avg", AggFn::kAvg},
          {"count", AggFn::kCount}, {"count_distinct", AggFn::kCountDistinct},
      };
      auto it = kAggs.find(name);
      if (it != kAggs.end()) {
        if (name == "count" && args.empty()) {
          args.push_back(Term::Const(Value::Int64(1)));
        }
        if (args.size() != 1) {
          return Status::ParseError(name + "() takes 1 argument");
        }
        return Term::Agg(it->second, args[0]);
      }
      return Term::Ext(name, std::move(args));
    }
    return Term::Var(name);
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

Result<Program> ParseProgram(const std::string& text) {
  return Parser(text).ParseProgramText();
}

Result<Rule> ParseRule(const std::string& text) {
  return Parser(text).ParseRuleText();
}

}  // namespace pytond::tondir
