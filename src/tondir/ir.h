#ifndef PYTOND_TONDIR_IR_H_
#define PYTOND_TONDIR_IR_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/value.h"

namespace pytond::tondir {

/// Binary operators over terms (paper: "arithmetic, and/or, like, etc.").
enum class BinOp {
  kAdd, kSub, kMul, kDiv, kMod,
  kAnd, kOr,
  kLike, kNotLike,
  kConcat,
  // Comparisons usable inside terms (e.g. if(ID = 1, ..) kernels).
  kEq, kNe, kLt, kLe, kGt, kGe,
};

/// Comparison / assignment operators (theta in the grammar).
enum class CmpOp { kLt, kLe, kEq, kNe, kGe, kGt };

/// Aggregation functions usable in `agg(t)` terms.
enum class AggFn { kSum, kMin, kMax, kAvg, kCount, kCountDistinct };

const char* BinOpName(BinOp op);
const char* CmpOpName(CmpOp op);
const char* AggFnName(AggFn fn);

struct Term;
using TermPtr = std::shared_ptr<Term>;

/// Term (grammar row `t`): variable, aggregation, external function call,
/// conditional, binary operation, constant, or parameter slot.
struct Term {
  enum class Kind { kVar, kConst, kAgg, kExt, kIf, kBinary, kParam };

  Kind kind;
  // kVar
  std::string var;
  // kConst. For kParam this holds the *seed* literal the parameterizer
  // extracted — used only for typing (dataflow/verifier) and as the
  // default binding; value-dependent passes must never read it, which is
  // the whole point of keeping parameters a distinct kind.
  Value constant;
  // kParam: 0-based slot index into the execute-time parameter vector.
  int param_index = -1;
  // kAgg
  AggFn agg_fn = AggFn::kSum;
  // kExt: external function name, e.g. "uid", "round", "year", "substr",
  // "starts_with", "contains". Arguments live in `children`.
  std::string ext_name;
  // kBinary
  BinOp bin_op = BinOp::kAdd;
  // kAgg: 1 child; kIf: 3 children (cond, then, else); kBinary: 2 children;
  // kExt: n children.
  std::vector<TermPtr> children;

  static TermPtr Var(std::string name);
  static TermPtr Const(Value v);
  /// Parameter slot `index` with typing seed `seed` (rendered `$p<index>`).
  static TermPtr Param(int index, Value seed);
  static TermPtr Agg(AggFn fn, TermPtr arg);
  static TermPtr Ext(std::string name, std::vector<TermPtr> args);
  static TermPtr If(TermPtr cond, TermPtr then_t, TermPtr else_t);
  static TermPtr Binary(BinOp op, TermPtr lhs, TermPtr rhs);

  /// Deep copy.
  TermPtr Clone() const;
  /// Collects all variable names referenced by this term into `out`.
  void CollectVars(std::set<std::string>* out) const;
  /// True if any sub-term is an aggregation.
  bool ContainsAgg() const;
  /// Replaces every kVar whose name is a key of `subst` by a clone of the
  /// mapped term. Returns the rewritten term (may share structure).
  static TermPtr Substitute(const TermPtr& t,
                            const std::map<std::string, TermPtr>& subst);
};

struct Atom;

/// Body of a rule: a chain of atoms.
using Body = std::vector<Atom>;

/// Atom (grammar row `a`): relation access, constant relation, existential
/// filter, or comparison/assignment.
struct Atom {
  enum class Kind {
    kRelAccess,   // X(x1, ..., xn)
    kConstRel,    // (x = [v1, v2, ...])  -- constant column relation
    kExists,      // exists(B) / not exists(B)
    kCompare,     // x theta t ; '=' with a fresh x is an assignment
    kExternal,    // marker atoms, e.g. outer_left(x, y)
  };

  Kind kind;

  // kRelAccess
  std::string relation;
  std::vector<std::string> vars;

  // kConstRel: `var` receives each value of `const_values` in turn.
  std::vector<Value> const_values;

  // kExists
  std::shared_ptr<Body> exists_body;
  bool negated = false;

  // kCompare: var `var0` op `term`.
  std::string var0;
  CmpOp cmp_op = CmpOp::kEq;
  TermPtr term;

  // kExternal: marker name ("outer_left", "outer_right", "outer_full") and
  // its argument variables in `vars`.
  std::string ext_name;

  static Atom RelAccess(std::string relation, std::vector<std::string> vars);
  static Atom ConstRel(std::string var, std::vector<Value> values);
  static Atom Exists(Body body, bool negated);
  static Atom Compare(std::string var, CmpOp op, TermPtr term);
  static Atom External(std::string name, std::vector<std::string> vars);

  Atom CloneAtom() const;
  void CollectVars(std::set<std::string>* out) const;
  /// Variables *defined* by this atom (relation access vars, const-rel var,
  /// assignment target).  `defined_before` distinguishes assignment from
  /// equality comparison for kCompare atoms.
  void CollectDefinedVars(const std::set<std::string>& defined_before,
                          std::set<std::string>* out) const;
};

/// One sort key: variable name + ascending flag.
struct SortKey {
  std::string var;
  bool ascending = true;
  bool operator==(const SortKey&) const = default;
};

/// Head (grammar row `H`): relation access with optional group / sort /
/// limit / distinct decorations. `col_names` are the output column names
/// (parallel to `vars`); they keep SQL codegen sound across renamings.
struct Head {
  std::string relation;
  std::vector<std::string> vars;
  std::vector<std::string> col_names;
  std::vector<std::string> group_vars;
  std::vector<SortKey> sort_keys;
  std::optional<int64_t> limit;
  bool distinct = false;

  bool has_group() const { return !group_vars.empty(); }
  bool has_sort() const { return !sort_keys.empty(); }
};

/// Rule: Head := Body.
struct Rule {
  Head head;
  Body body;

  Rule CloneRule() const;
  /// True if any body atom assigns an aggregate term.
  bool HasAggregate() const;
  /// True if the body contains >1 relation access (a join).
  bool HasJoin() const;
  /// True if the body contains outer-join marker atoms.
  bool HasOuterMarker() const;
};

/// Per-relation knowledge used by the optimizer: which column *positions*
/// hold unique values (PK or UID-generated), fed from the catalog and from
/// UID() insertion during translation.
struct RelationInfo {
  std::set<size_t> unique_positions;
};

/// A TondIR program: an ordered list of rules; the last rule is the sink.
/// `base_relations` are the extensional relations (database tables).
struct Program {
  std::vector<Rule> rules;
  std::map<std::string, RelationInfo> relation_info;
  /// Column names of the extensional (database) relations, needed by the
  /// SQL code generator to resolve positional accesses.
  std::map<std::string, std::vector<std::string>> base_columns;
  /// Column value types of extensional relations (parallel to
  /// base_columns), seeded by the translator from the catalog schema or by
  /// `col:type` annotations in a textual '@base' directive. Optional: the
  /// dataflow analysis treats missing entries as unknown-typed.
  std::map<std::string, std::vector<DataType>> base_column_types;

  /// Pretty Datalog-style rendering, matching the paper's notation.
  std::string ToString() const;

  /// Semantic sanity checks: thin wrapper over analysis::VerifyProgram
  /// (defined in analysis/verifier.cc; callers link pytond_analysis).
  /// Returns the first error diagnostic, e.g. undefined relations
  /// (including inside exists bodies), arity mismatches, undefined
  /// head/group vars, aggregate/group inconsistencies.
  Status Validate(const std::set<std::string>& base_relations) const;

  /// relation name -> indices of rules whose body reads it.
  std::map<std::string, std::vector<size_t>> BuildReaderIndex() const;
};

/// Renders a single rule in the paper's textual syntax.
std::string RuleToString(const Rule& rule);
std::string TermToString(const Term& term);
std::string AtomToString(const Atom& atom);

/// Parses the textual TondIR syntax produced by ToString (used heavily by
/// optimizer unit tests and by the `tondlint` CLI). Grammar:
///   prog   := (base | rule)*
///   base   := '@base' NAME '(' col [':' type] , ... ')'
///             ['unique' '(' ints ')'] '.'
///             where type is one of int, float, str, bool, date
///   rule   := head ':-' body '.'
///   head   := NAME '(' vars ')' ['group' '(' vars ')']
///             ['sort' '(' keys ')'] ['limit' '(' INT ')'] ['distinct']
///   body   := atom (',' atom)*
///   atom   := NAME '(' vars ')' | '(' NAME cmp term ')' |
///             '(' NAME '=' '[' consts ']' ')' | 'exists' '(' body ')' |
///             '!exists' '(' body ')' | '@' NAME '(' vars ')'
/// '@base' declares an extensional relation: it fills base_columns (the
/// listed vars become the column names) and, with the optional unique(..)
/// clause, relation_info[..].unique_positions.
Result<Program> ParseProgram(const std::string& text);
Result<Rule> ParseRule(const std::string& text);

}  // namespace pytond::tondir

#endif  // PYTOND_TONDIR_IR_H_
