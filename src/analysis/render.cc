#include "analysis/render.h"

#include <fstream>
#include <iostream>
#include <sstream>

namespace pytond::analysis::render {

void WriteDiagnosticJson(obs::JsonWriter& json, const Diagnostic& d,
                         Location loc) {
  json.BeginObject()
      .Key("code").String(d.code)
      .Key("severity").String(SeverityName(d.severity));
  switch (loc) {
    case Location::kRuleAtom:
      json.Key("rule").Int(d.rule_index).Key("atom").Int(d.atom_index);
      break;
    case Location::kLine:
      json.Key("line").Int(d.line);
      break;
    case Location::kNode:
      json.Key("node").String(d.node);
      break;
  }
  json.Key("message").String(d.message);
  if (!d.fix_hint.empty()) json.Key("fix_hint").String(d.fix_hint);
  if (!d.notes.empty()) {
    json.Key("notes").BeginArray();
    for (const auto& n : d.notes) json.String(n);
    json.EndArray();
  }
  json.EndObject();
}

void WriteParseErrorJson(obs::JsonWriter& json, const std::string& label,
                         const std::string& message) {
  json.BeginObject()
      .Key("file").String(label)
      .Key("parse_error").String(message)
      .Key("ok").Bool(false)
      .EndObject();
}

void PrintDiagnostic(std::ostream& os, const std::string& label,
                     const Diagnostic& d, bool explain) {
  os << label << ": " << d.ToString() << "\n";
  if (explain) {
    for (const auto& n : d.notes) os << "    note: " << n << "\n";
  }
}

bool AnyFailed(const std::vector<Diagnostic>& diags, bool werror) {
  return HasErrors(diags) || (werror && !diags.empty());
}

SourceInput ReadInput(const std::string& input) {
  SourceInput in;
  if (input == "-") {
    std::ostringstream ss;
    ss << std::cin.rdbuf();
    in.label = "<stdin>";
    in.text = ss.str();
    in.ok = true;
    return in;
  }
  in.label = input;
  std::ifstream f(input);
  if (!f) {
    in.error = "cannot open file";
    return in;
  }
  std::ostringstream ss;
  ss << f.rdbuf();
  in.text = ss.str();
  in.ok = true;
  return in;
}

}  // namespace pytond::analysis::render
