#ifndef PYTOND_ANALYSIS_DIAGNOSTICS_H_
#define PYTOND_ANALYSIS_DIAGNOSTICS_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace pytond::analysis {

/// Diagnostic severity. Errors make a program unusable for codegen;
/// warnings flag suspicious-but-lowerable constructs (dead rules, unknown
/// marker atoms).
enum class Severity { kWarning, kError };

const char* SeverityName(Severity s);

/// One finding of the TondIR semantic verifier ("tondlint") or of the
/// frontend translatability analyzer ("tondcheck"). `code` is a stable
/// identifier (see codes:: below and the tables in DESIGN.md) so that
/// tests and CI can match on it independently of message wording.
struct Diagnostic {
  std::string code;                  // "T001".."T032" / "F001".."F015" / "P001"..
  Severity severity = Severity::kError;
  int rule_index = -1;               // -1 = program-level finding
  int atom_index = -1;               // index in the immediate body; -1 = head
  /// Source line in the original @pytond function (frontend F-series
  /// diagnostics only; -1 for TondIR-level findings, which have no
  /// surviving source location).
  int line = -1;
  /// Physical location for P-series findings: a plan-tree path like
  /// "root.child[0]:Join" or a pipeline coordinate like
  /// "pipeline 2, op 1:Filter". Empty for T/F findings.
  std::string node;
  std::string message;
  std::string fix_hint;              // optional remediation suggestion
  /// Inference chain for fact-based diagnostics (T020+ and the F-series):
  /// one line per derivation step, e.g. how the dataflow analysis
  /// concluded a column is constant, or how the frontend analyzer inferred
  /// a binding's schema. Rendered by `--explain-diag`.
  std::vector<std::string> notes;

  /// "rule 2, atom 3: error[T006]: message (hint: ...)" or, for frontend
  /// findings, "line 4: error[F001]: message (hint: ...)".
  std::string ToString() const;
};

/// Stable diagnostic codes, one per verifier invariant.
namespace codes {
inline constexpr const char* kUndefinedRelation = "T001";
inline constexpr const char* kArityMismatch = "T002";
inline constexpr const char* kUndefinedHeadVar = "T003";
inline constexpr const char* kUndefinedGroupVar = "T004";
inline constexpr const char* kColNamesArity = "T005";
inline constexpr const char* kUndefinedVar = "T006";
inline constexpr const char* kExistsLeak = "T007";
inline constexpr const char* kUngroupedHeadVar = "T008";
inline constexpr const char* kNestedAggregate = "T009";
inline constexpr const char* kAggregateOutsideAssignment = "T010";
inline constexpr const char* kSortWithoutLimitNotSink = "T011";
inline constexpr const char* kSortKeyNotInHead = "T012";
inline constexpr const char* kBadOuterMarker = "T013";
inline constexpr const char* kUnknownMarker = "T014";
inline constexpr const char* kDeadRule = "T015";
inline constexpr const char* kRelationRedefined = "T016";
inline constexpr const char* kConstRelHeterogeneous = "T017";
inline constexpr const char* kConstRelEmpty = "T018";
inline constexpr const char* kUidWithoutAccess = "T019";
// Deep (fact-based) tier, produced by the dataflow analysis
// (analysis/dataflow/) when VerifyOptions::deep_lints is on.
inline constexpr const char* kTypeMismatch = "T020";
inline constexpr const char* kAlwaysFalsePredicate = "T021";
inline constexpr const char* kAlwaysTruePredicate = "T022";
inline constexpr const char* kNullableArithmetic = "T023";
inline constexpr const char* kUnreachableColumn = "T024";
inline constexpr const char* kRedundantDistinct = "T025";
inline constexpr const char* kConstantSortKey = "T026";
inline constexpr const char* kAggregateOverEmpty = "T027";
inline constexpr const char* kDivisionByZero = "T028";
inline constexpr const char* kRedundantGroupBy = "T029";
inline constexpr const char* kStringOpOnNonString = "T030";
inline constexpr const char* kNullComparison = "T031";
inline constexpr const char* kEmptyResult = "T032";
// Frontend tier (F-series), produced by the translatability analyzer
// (frontend/analysis/) over the pylang/ANF program *before* translation.
// Errors abort the compile with a located message; warnings ride along on
// Compiled::diagnostics exactly like verifier warnings.
inline constexpr const char* kUnknownColumn = "F001";
inline constexpr const char* kUnknownTable = "F002";
inline constexpr const char* kUndefinedName = "F003";
inline constexpr const char* kUnsupportedApi = "F004";
inline constexpr const char* kTypeIncompatible = "F005";
inline constexpr const char* kCrossFrameOp = "F006";
inline constexpr const char* kBadAxis = "F007";
inline constexpr const char* kBadEinsum = "F008";
inline constexpr const char* kBadMergeKey = "F009";
inline constexpr const char* kDeadBinding = "F010";
inline constexpr const char* kFlowBreaker = "F011";
inline constexpr const char* kShadowedBinding = "F012";
inline constexpr const char* kMissingArgument = "F013";
inline constexpr const char* kNonLiteralArgument = "F014";
inline constexpr const char* kBadReturn = "F015";
// Physical tier (P-series), produced by the plan/pipeline verifier
// (analysis/physical/) over bound LogicalPlan trees and PipelinePlans.
// Runs after binding, after each engine optimizer pass (with pass blame),
// after pipeline build, and once per plan-cache insert on the serve path.
//
// Plan tier: column binding / schema resolution / node well-formedness.
inline constexpr const char* kColRefOutOfRange = "P001";
inline constexpr const char* kColRefTypeMismatch = "P002";
inline constexpr const char* kBadChildCount = "P003";
inline constexpr const char* kSchemaMismatch = "P004";
inline constexpr const char* kMissingMember = "P005";
inline constexpr const char* kScanSchemaMismatch = "P006";
inline constexpr const char* kNonBoolPredicate = "P007";
inline constexpr const char* kJoinKeyTypeMismatch = "P008";
inline constexpr const char* kBuildSideOnNonInner = "P009";
inline constexpr const char* kBadAggSpec = "P010";
inline constexpr const char* kSortKeyOutOfRange = "P011";
inline constexpr const char* kOuterRefEscaped = "P012";
// Pipeline tier: shape legality, DAG soundness, liveness-mask soundness.
inline constexpr const char* kPipelineIdOrder = "P020";
inline constexpr const char* kPipelineDepCycle = "P021";
inline constexpr const char* kPipelineBadSource = "P022";
inline constexpr const char* kNonStreamingOp = "P023";
inline constexpr const char* kBadBuildInput = "P024";
inline constexpr const char* kChainBroken = "P025";
inline constexpr const char* kBreakerSinkMismatch = "P026";
inline constexpr const char* kBadPipelineOutput = "P027";
inline constexpr const char* kReadOutsideDeps = "P028";
inline constexpr const char* kNodeCoverage = "P029";
inline constexpr const char* kLivenessMaskKillsLive = "P030";
// Param tier: Term::kParam opacity and prepared-skeleton slot safety.
inline constexpr const char* kParamIndexOutOfRange = "P040";
inline constexpr const char* kParamFolded = "P041";
inline constexpr const char* kParamSeedTypeMismatch = "P042";
inline constexpr const char* kSkeletonSlotMismatch = "P043";
}  // namespace codes

/// True if any diagnostic is an error.
bool HasErrors(const std::vector<Diagnostic>& diags);

/// One diagnostic per line, errors and warnings alike.
std::string FormatDiagnostics(const std::vector<Diagnostic>& diags);

/// OK when no diagnostic is an error; otherwise InvalidArgument carrying the
/// first error's rendering (thin-wrapper helper for Program::Validate).
Status FirstError(const std::vector<Diagnostic>& diags);

}  // namespace pytond::analysis

#endif  // PYTOND_ANALYSIS_DIAGNOSTICS_H_
