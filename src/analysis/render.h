#ifndef PYTOND_ANALYSIS_RENDER_H_
#define PYTOND_ANALYSIS_RENDER_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "analysis/diagnostics.h"
#include "obs/json.h"

namespace pytond::analysis::render {

/// Shared diagnostic rendering for the lint CLIs (tondlint / tondcheck /
/// tondplan). Each tier locates findings differently — T by rule/atom,
/// F by source line, P by plan node / pipeline coordinate — but the JSON
/// envelope (code, severity, location, message, fix_hint, notes) and the
/// plain-text "label: diag" + "    note: ..." forms are identical, so the
/// three tools emit through these helpers and CI goldens stay consistent.

/// Which location keys the JSON diagnostic object carries.
enum class Location {
  kRuleAtom,  // T-series: "rule", "atom"
  kLine,      // F-series: "line"
  kNode,      // P-series: "node"
};

/// Appends one diagnostic object to an open JSON container:
/// {code, severity, <location>, message, fix_hint?, notes?[]}.
void WriteDiagnosticJson(obs::JsonWriter& json, const Diagnostic& d,
                         Location loc);

/// Appends the per-file parse-failure object: {file, parse_error, ok:false}.
void WriteParseErrorJson(obs::JsonWriter& json, const std::string& label,
                         const std::string& message);

/// Plain-text form: "label: <diag.ToString()>" plus, with `explain`, one
/// indented "    note: ..." line per why-chain entry.
void PrintDiagnostic(std::ostream& os, const std::string& label,
                     const Diagnostic& d, bool explain);

/// The CLIs' shared failure predicate: any error, or (with --werror) any
/// diagnostic at all.
bool AnyFailed(const std::vector<Diagnostic>& diags, bool werror);

/// One CLI input: a file path or "-" for stdin. `ok` is false when the
/// file cannot be opened (error describes it; callers decide whether that
/// renders as JSON or stderr).
struct SourceInput {
  std::string label;
  std::string text;
  bool ok = false;
  std::string error;
};

/// Reads `input` (path or "-"). Stdin inputs are labelled "<stdin>".
SourceInput ReadInput(const std::string& input);

}  // namespace pytond::analysis::render

#endif  // PYTOND_ANALYSIS_RENDER_H_
