#ifndef PYTOND_ANALYSIS_VERIFIER_H_
#define PYTOND_ANALYSIS_VERIFIER_H_

#include <set>
#include <string>
#include <vector>

#include "analysis/diagnostics.h"
#include "tondir/ir.h"

namespace pytond::analysis {

struct VerifyOptions {
  /// Relations assumed extensional (database tables) in addition to the
  /// keys of program.base_columns. Arity of relations listed here but not
  /// in base_columns is inferred from their first access and then held
  /// consistent.
  std::set<std::string> base_relations;
  /// tondlint mode: a relation that is read but neither defined by a rule
  /// nor declared extensional becomes an implicitly-declared base relation
  /// (arity from first access) instead of a T001 error.
  bool implicit_bases = false;
  /// Runs the fact-based deep tier T020..T032 (analysis/dataflow/) after
  /// the structural tier, provided the latter found no errors. Deep
  /// diagnostics carry a `notes` inference chain explaining the facts they
  /// rest on.
  bool deep_lints = false;
};

/// Semantic verifier for TondIR programs — the library behind `tondlint`
/// and the optimizer's per-pass invariant checking. Mirrors the
/// preconditions the SQL code generator (sqlgen) relies on:
///
///   T001  body reads an unknown relation (including inside exists(..))
///   T002  relation accessed with the wrong arity
///   T003  head variable not defined in the body
///   T004  group variable not defined in the body
///   T005  head col_names/vars arity mismatch
///   T006  comparison/assignment references an undefined variable
///   T007  variable defined only inside exists(..) used outside it
///   T008  non-aggregate head var of a grouped/aggregate rule not grouped
///   T009  nested aggregate (agg inside an agg argument)
///   T010  aggregate outside an assignment (in a filter or exists body)
///   T011  sort without limit on a non-sink rule
///   T012  sort key not among head vars
///   T013  malformed outer-join marker atom
///   T014  unknown external marker atom            [warning]
///   T015  rule not reachable from the sink        [warning]
///   T016  relation redefined / shadows a base relation
///   T017  constant relation mixes value types
///   T018  empty constant relation
///   T019  uid() in a body without a relation access
///
/// Deep tier (VerifyOptions::deep_lints, computed by analysis/dataflow/):
///
///   T020  join/comparison over incompatible value types
///   T021  predicate provably always false              [warning]
///   T022  predicate provably always true               [warning]
///   T023  arithmetic on a possibly-NULL column         [warning]
///   T024  column computed but unreachable from sink    [warning]
///   T025  redundant distinct (rows already unique)     [warning]
///   T026  sort key provably constant                   [warning]
///   T027  aggregate over provably empty input          [warning]
///   T028  division by provably-zero divisor            [warning]
///   T029  group-by keys already unique per row         [warning]
///   T030  string operation on a non-string operand     [warning]
///   T031  comparison with a provably-NULL operand      [warning]
///   T032  sink relation provably empty                 [warning]
///
/// Diagnostics are ordered by rule, then atom. Warnings never make a
/// program invalid; HasErrors()/FirstError() ignore them.
std::vector<Diagnostic> VerifyProgram(const tondir::Program& program,
                                      const VerifyOptions& options = {});

}  // namespace pytond::analysis

#endif  // PYTOND_ANALYSIS_VERIFIER_H_
