#ifndef PYTOND_ANALYSIS_PHYSICAL_PHYSICAL_H_
#define PYTOND_ANALYSIS_PHYSICAL_PHYSICAL_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "analysis/diagnostics.h"
#include "common/status.h"
#include "common/value.h"
#include "engine/exec/pipeline.h"
#include "engine/plan/logical.h"
#include "storage/table.h"
#include "tondir/ir.h"

/// Physical plan & pipeline verifier — the P-series, third leg of the
/// correctness stack after the TondIR verifier (T-series) and the
/// frontend analyzer (F-series). Purely structural: walks a bound
/// `LogicalPlan` tree (column-binding resolution, schema agreement,
/// node well-formedness) and a `PipelinePlan` (sink/breaker legality,
/// dependency-DAG soundness, chain continuity, liveness-mask soundness
/// via an independent requirement recomputation), and audits parameter
/// slots through the prepared path (`Term::kParam` opacity, skeleton
/// `$pN` agreement). Emits located diagnostics with why-chains; never
/// mutates what it checks.
///
/// Layering: this library consumes engine *headers* only — every helper
/// it needs (kind names, expression column collection) is reimplemented
/// locally — so pytond_engine can link against it without a cycle.
namespace pytond::analysis::physical {

/// Options for VerifyPlan.
struct VerifyOptions {
  /// Resolves a scan's table name to its catalog/temp schema for the
  /// P006 scan-schema check. Null (or returning null) skips resolution
  /// for that table. The returned pointer must outlive the call.
  std::function<const Schema*(const std::string&)> table_schema;
};

/// Accumulated verification accounting (per query, across stages).
struct VerifyStats {
  uint64_t stages = 0;       // Verify* invocations
  uint64_t checks = 0;       // individual invariants evaluated
  uint64_t diagnostics = 0;  // findings (errors + warnings)
  uint64_t ns = 0;           // wall-clock spent verifying

  void Merge(const VerifyStats& o) {
    stages += o.stages;
    checks += o.checks;
    diagnostics += o.diagnostics;
    ns += o.ns;
  }
};

/// Verifies a bound plan tree: P001–P012. Every expression input must
/// resolve in its child's output schema with type agreement; every
/// node's output schema must agree with what the node computes.
std::vector<Diagnostic> VerifyPlan(const engine::LogicalPlan& plan,
                                   const VerifyOptions& opts,
                                   VerifyStats* stats = nullptr);

/// Verifies a pipeline decomposition of `root`: P020–P030. Shape
/// legality (one sink per pipeline, breaker matches sink kind, ops
/// genuinely streaming), dependency soundness (acyclic, reads declared),
/// chain continuity against the plan tree, exact node coverage, and
/// liveness-mask soundness (a stored mask may never kill a column the
/// verifier's own backward requirement analysis proves consumed
/// downstream).
std::vector<Diagnostic> VerifyPipelines(const engine::LogicalPlan& root,
                                        const engine::PipelinePlan& pp,
                                        VerifyStats* stats = nullptr);

/// Verifies parameter-slot opacity in optimized TondIR: P040–P042.
/// Every `Term::kParam` must carry an in-range slot index whose seed
/// type matches the slot's static type, and every slot must still be
/// referenced — a missing slot means a value-dependent pass folded the
/// parameter into a constant, which would bake one binding into the
/// cached skeleton.
std::vector<Diagnostic> VerifyParamSlots(const tondir::Program& program,
                                         const std::vector<DataType>& slots,
                                         VerifyStats* stats = nullptr);

/// Verifies a generated SQL skeleton against its slot count: P043.
/// Each `$pN` must reference a declared slot and each slot must appear
/// (run once per plan-cache insert on the serve path, not per EXECUTE).
std::vector<Diagnostic> VerifySkeletonSql(const std::string& sql,
                                          size_t num_slots,
                                          VerifyStats* stats = nullptr);

/// OK when no diagnostic is an error; otherwise Internal with the stage
/// blamed ("plan verifier [optimizer:limit_pushdown]: ...") — a failed
/// physical invariant is a bug in the engine, not in user input.
Status CheckOrError(const std::vector<Diagnostic>& diags,
                    const std::string& stage);

/// Whether plan verification is on by default: always in debug and
/// sanitizer builds, opt-in via TOND_VERIFY_PLANS elsewhere (an explicit
/// "0"/"off"/"false" forces it off everywhere). Read once per process.
bool VerifyDefault();

}  // namespace pytond::analysis::physical

#endif  // PYTOND_ANALYSIS_PHYSICAL_PHYSICAL_H_
