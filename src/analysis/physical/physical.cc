#include "analysis/physical/physical.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdlib>
#include <map>
#include <set>
#include <sstream>

namespace pytond::analysis::physical {

using engine::AggOp;
using engine::AggSpec;
using engine::BoundExpr;
using engine::JoinType;
using engine::LogicalPlan;
using engine::PipelineDesc;
using engine::PipelinePlan;
using engine::PipelineSinkKind;

namespace {

/// Correlated outer references are rewritten away during subquery
/// decorrelation; an index at or above this base escaping into a final
/// plan is always a bug (mirrors the binder's kOuterBase).
constexpr int kOuterBase = 1000000;

// Local name tables: this library must not pull in engine-defined
// symbols (Label/JoinTypeName live in engine .cc files), so the few
// names the messages need are restated here.
const char* KindName(LogicalPlan::Kind k) {
  switch (k) {
    case LogicalPlan::Kind::kScan: return "Scan";
    case LogicalPlan::Kind::kValues: return "Values";
    case LogicalPlan::Kind::kFilter: return "Filter";
    case LogicalPlan::Kind::kProject: return "Project";
    case LogicalPlan::Kind::kJoin: return "Join";
    case LogicalPlan::Kind::kAggregate: return "Aggregate";
    case LogicalPlan::Kind::kSort: return "Sort";
    case LogicalPlan::Kind::kLimit: return "Limit";
    case LogicalPlan::Kind::kDistinct: return "Distinct";
    case LogicalPlan::Kind::kWindow: return "Window";
  }
  return "?";
}

const char* JoinName(JoinType t) {
  switch (t) {
    case JoinType::kInner: return "inner";
    case JoinType::kLeft: return "left";
    case JoinType::kRight: return "right";
    case JoinType::kFull: return "full";
    case JoinType::kSemi: return "semi";
    case JoinType::kAnti: return "anti";
    case JoinType::kCross: return "cross";
  }
  return "?";
}

const char* AggName(AggOp op) {
  switch (op) {
    case AggOp::kSum: return "sum";
    case AggOp::kMin: return "min";
    case AggOp::kMax: return "max";
    case AggOp::kAvg: return "avg";
    case AggOp::kCount: return "count";
    case AggOp::kCountStar: return "count(*)";
    case AggOp::kCountDistinct: return "count(distinct)";
  }
  return "?";
}

/// Independent reimplementation of BoundExpr::CollectColumns (an engine
/// .cc symbol): appends every kColRef index in the tree.
void CollectCols(const BoundExpr& e, std::vector<int>* out) {
  if (e.kind == BoundExpr::Kind::kColRef) out->push_back(e.col_index);
  for (const auto& c : e.children) {
    if (c) CollectCols(*c, out);
  }
}

std::string SchemaStr(const Schema& s) {
  std::ostringstream os;
  os << "(";
  size_t shown = std::min<size_t>(s.num_columns(), 8);
  for (size_t i = 0; i < shown; ++i) {
    if (i > 0) os << ", ";
    os << s.names[i] << ":" << DataTypeName(s.types[i]);
  }
  if (s.num_columns() > shown) os << ", ...";
  os << ")";
  return os.str();
}

struct Checker {
  std::vector<Diagnostic> diags;
  uint64_t checks = 0;

  Diagnostic& Add(const char* code, Severity sev, std::string node,
                  std::string message) {
    Diagnostic d;
    d.code = code;
    d.severity = sev;
    d.node = std::move(node);
    d.message = std::move(message);
    diags.push_back(std::move(d));
    return diags.back();
  }
};

void FinishStats(VerifyStats* stats, const Checker& c,
                 std::chrono::steady_clock::time_point t0) {
  if (stats == nullptr) return;
  stats->stages += 1;
  stats->checks += c.checks;
  stats->diagnostics += c.diags.size();
  stats->ns += static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
}

// ===================================================================
// Plan tier (P001-P012)
// ===================================================================

/// Lazily-formatted role label ("projection expr 3", "join key 0
/// (left)"): verification runs on every clean query, so diagnostic
/// labels must cost nothing until a diagnostic actually fires.
struct Role {
  const char* what;
  int64_t idx = -1;
  const char* suffix = "";

  std::string Str() const {
    std::string out = what;
    if (idx >= 0) {
      out += ' ';
      out += std::to_string(idx);
    }
    out += suffix;
    return out;
  }
};

/// Walks one bound expression, resolving every column reference against
/// `in` (DuckDB ColumnBindingResolver-style): indices in range, annotated
/// types agreeing with the input schema, child arity per expression kind.
void CheckExprTree(const BoundExpr& e, const Schema& in,
                   const std::string& node, const Role& role,
                   Checker* c) {
  c->checks++;
  for (const auto& ch : e.children) {
    if (ch == nullptr) {
      c->Add(codes::kMissingMember, Severity::kError, node,
             role.Str() + " has a null sub-expression");
      return;
    }
  }
  size_t n = e.children.size();
  switch (e.kind) {
    case BoundExpr::Kind::kColRef: {
      if (e.col_index >= kOuterBase) {
        Diagnostic& d = c->Add(
            codes::kOuterRefEscaped, Severity::kError, node,
            role.Str() + " references correlated outer column " +
                std::to_string(e.col_index) + " after decorrelation");
        d.notes.push_back(
            "indices >= 1000000 are binder-internal outer-reference "
            "placeholders and must be rewritten away before execution");
        return;
      }
      if (e.col_index < 0 ||
          static_cast<size_t>(e.col_index) >= in.num_columns()) {
        Diagnostic& d = c->Add(
            codes::kColRefOutOfRange, Severity::kError, node,
            role.Str() + " references column " + std::to_string(e.col_index) +
                " but the input has " + std::to_string(in.num_columns()) +
                " columns");
        d.notes.push_back("input schema: " + SchemaStr(in));
        return;
      }
      DataType want = in.types[static_cast<size_t>(e.col_index)];
      if (e.type != want) {
        Diagnostic& d = c->Add(
            codes::kColRefTypeMismatch, Severity::kError, node,
            role.Str() + " column " + std::to_string(e.col_index) + " ('" +
                in.names[static_cast<size_t>(e.col_index)] +
                "') is annotated " + DataTypeName(e.type) +
                " but the input column is " + DataTypeName(want));
        d.notes.push_back("input schema: " + SchemaStr(in));
      }
      return;
    }
    case BoundExpr::Kind::kConst:
      return;
    case BoundExpr::Kind::kBinary:
      if (n != 2) {
        c->Add(codes::kMissingMember, Severity::kError, node,
               role.Str() + " binary expression has " + std::to_string(n) +
                   " children (want 2)");
        return;
      }
      break;
    case BoundExpr::Kind::kUnary:
    case BoundExpr::Kind::kCast:
    case BoundExpr::Kind::kIsNull:
    case BoundExpr::Kind::kInList:
      if (n != 1) {
        c->Add(codes::kMissingMember, Severity::kError, node,
               role.Str() + " unary-shaped expression has " + std::to_string(n) +
                   " children (want 1)");
        return;
      }
      break;
    case BoundExpr::Kind::kCase:
      if (n < 2 || n % 2 != (e.case_has_else ? 1u : 0u)) {
        c->Add(codes::kMissingMember, Severity::kError, node,
               role.Str() + " CASE has " + std::to_string(n) +
                   " children (want when/then pairs" +
                   (e.case_has_else ? " plus else" : "") + ")");
        return;
      }
      break;
    case BoundExpr::Kind::kFunc:
      break;
  }
  for (const auto& ch : e.children) CheckExprTree(*ch, in, node, role, c);
}

void CheckBoolPredicate(const BoundExpr& e, const std::string& node,
                        const Role& role, Checker* c) {
  c->checks++;
  if (e.type != DataType::kBool) {
    c->Add(codes::kNonBoolPredicate, Severity::kError, node,
           role.Str() + " has type " + std::string(DataTypeName(e.type)) +
               " (want bool)");
  }
}

void CheckSchemaEq(const Schema& got, const Schema& want,
                   const std::string& node, const std::string& what,
                   Checker* c) {
  c->checks++;
  if (got == want) return;
  Diagnostic& d = c->Add(codes::kSchemaMismatch, Severity::kError, node,
                         what + " disagrees with the node's output schema");
  d.notes.push_back("node schema:     " + SchemaStr(got));
  d.notes.push_back("expected schema: " + SchemaStr(want));
}

/// CheckSchemaEq against an expected schema given column-wise by `col`
/// (returning {&name, type} for index i): clean-path comparison never
/// materializes the expected Schema — it is only built, column by
/// column, for the mismatch note. `what1 + what2` labels the check.
template <typename ColFn>
void CheckSchemaDerived(const Schema& got, size_t n, ColFn col,
                        const std::string& node, const char* what1,
                        const char* what2, Checker* c) {
  c->checks++;
  bool same = got.num_columns() == n;
  for (size_t i = 0; same && i < n; ++i) {
    auto [name, type] = col(i);
    same = got.names[i] == *name && got.types[i] == type;
  }
  if (same) return;
  Schema want;
  for (size_t i = 0; i < n; ++i) {
    auto [name, type] = col(i);
    want.Add(*name, type);
  }
  Diagnostic& d = c->Add(
      codes::kSchemaMismatch, Severity::kError, node,
      std::string(what1) + what2 + " disagrees with the node's output schema");
  d.notes.push_back("node schema:     " + SchemaStr(got));
  d.notes.push_back("expected schema: " + SchemaStr(want));
}

/// Orderability class for join-key agreement: the type-tagged key
/// encoding (AppendEncodedValue) never matches across classes, so
/// cross-class keys make a join vacuously empty.
int TypeClass(DataType t) {
  switch (t) {
    case DataType::kInt64:
    case DataType::kFloat64:
    case DataType::kDate:
      return 0;
    case DataType::kString:
      return 1;
    case DataType::kBool:
      return 2;
    case DataType::kNull:
      return -1;
  }
  return -1;
}

size_t ExpectedChildren(LogicalPlan::Kind k) {
  switch (k) {
    case LogicalPlan::Kind::kScan:
    case LogicalPlan::Kind::kValues:
      return 0;
    case LogicalPlan::Kind::kJoin:
      return 2;
    default:
      return 1;
  }
}

void CheckNode(const LogicalPlan& p, const std::string& path,
               const VerifyOptions& opts, Checker* c) {
  const std::string node = path + ":" + KindName(p.kind);

  c->checks++;
  size_t want_children = ExpectedChildren(p.kind);
  bool null_child = false;
  for (const auto& ch : p.children) null_child |= (ch == nullptr);
  if (p.children.size() != want_children || null_child) {
    c->Add(codes::kBadChildCount, Severity::kError, node,
           std::string(KindName(p.kind)) + " has " +
               std::to_string(p.children.size()) +
               (null_child ? " children (one null)" : " children") +
               " (want " + std::to_string(want_children) + ")");
    for (size_t i = 0; i < p.children.size(); ++i) {
      if (p.children[i]) {
        CheckNode(*p.children[i], path + "." + std::to_string(i), opts, c);
      }
    }
    return;  // the kind-specific checks below index children
  }
  for (size_t i = 0; i < p.children.size(); ++i) {
    CheckNode(*p.children[i], path + "." + std::to_string(i), opts, c);
  }

  switch (p.kind) {
    case LogicalPlan::Kind::kScan: {
      c->checks++;
      if (p.table_name.empty()) {
        c->Add(codes::kMissingMember, Severity::kError, node,
               "scan has no table name");
        break;
      }
      if (opts.table_schema) {
        c->checks++;
        const Schema* resolved = opts.table_schema(p.table_name);
        if (resolved == nullptr) {
          c->Add(codes::kScanSchemaMismatch, Severity::kWarning, node,
                 "scan of '" + p.table_name +
                     "' does not resolve in the verification scope");
        } else if (!(*resolved == p.schema)) {
          Diagnostic& d = c->Add(
              codes::kScanSchemaMismatch, Severity::kError, node,
              "scan schema of '" + p.table_name +
                  "' disagrees with the resolved table schema");
          d.notes.push_back("scan schema:  " + SchemaStr(p.schema));
          d.notes.push_back("table schema: " + SchemaStr(*resolved));
        }
      }
      break;
    }
    case LogicalPlan::Kind::kValues: {
      c->checks++;
      if (p.values == nullptr) {
        c->Add(codes::kMissingMember, Severity::kError, node,
               "VALUES node has no table");
        break;
      }
      if (!(p.values->schema() == p.schema)) {
        Diagnostic& d =
            c->Add(codes::kScanSchemaMismatch, Severity::kError, node,
                   "VALUES schema disagrees with the inline table");
        d.notes.push_back("node schema:  " + SchemaStr(p.schema));
        d.notes.push_back("table schema: " + SchemaStr(p.values->schema()));
      }
      break;
    }
    case LogicalPlan::Kind::kFilter: {
      c->checks++;
      if (p.predicate == nullptr) {
        c->Add(codes::kMissingMember, Severity::kError, node,
               "filter has no predicate");
      } else {
        CheckExprTree(*p.predicate, p.children[0]->schema, node, {"predicate"},
                      c);
        CheckBoolPredicate(*p.predicate, node, {"filter predicate"}, c);
      }
      CheckSchemaEq(p.schema, p.children[0]->schema, node,
                    "filter passthrough schema", c);
      break;
    }
    case LogicalPlan::Kind::kProject: {
      c->checks++;
      if (p.exprs.size() != p.names.size() ||
          p.exprs.size() != p.schema.num_columns()) {
        c->Add(codes::kMissingMember, Severity::kError, node,
               "projection arity disagrees: " + std::to_string(p.exprs.size()) +
                   " exprs, " + std::to_string(p.names.size()) + " names, " +
                   std::to_string(p.schema.num_columns()) + " schema columns");
        break;
      }
      bool any_null = false;
      for (size_t i = 0; i < p.exprs.size(); ++i) {
        if (p.exprs[i] == nullptr) {
          c->Add(codes::kMissingMember, Severity::kError, node,
                 "projection expression " + std::to_string(i) + " is null");
          any_null = true;
          continue;
        }
        CheckExprTree(*p.exprs[i], p.children[0]->schema, node,
                      {"projection expr", static_cast<int64_t>(i)}, c);
      }
      if (!any_null) {
        CheckSchemaDerived(
            p.schema, p.exprs.size(),
            [&](size_t i) {
              return std::pair<const std::string*, DataType>(
                  &p.names[i], p.exprs[i]->type);
            },
            node, "", "projected schema", c);
      }
      break;
    }
    case LogicalPlan::Kind::kJoin: {
      const Schema& left = p.children[0]->schema;
      const Schema& right = p.children[1]->schema;
      c->checks++;
      if (p.join_type == JoinType::kCross && !p.join_keys.empty()) {
        c->Add(codes::kMissingMember, Severity::kError, node,
               "cross join carries " + std::to_string(p.join_keys.size()) +
                   " equi-keys");
      }
      c->checks++;
      if (p.build_left && p.join_type != JoinType::kInner) {
        c->Add(codes::kBuildSideOnNonInner, Severity::kError, node,
               std::string("build_left set on a ") + JoinName(p.join_type) +
                   " join (inner only: other types fix their build side)");
      }
      for (size_t i = 0; i < p.join_keys.size(); ++i) {
        const auto& [l, r] = p.join_keys[i];
        if (l == nullptr || r == nullptr) {
          c->Add(codes::kMissingMember, Severity::kError, node,
                 "join key " + std::to_string(i) + " has a null side");
          continue;
        }
        CheckExprTree(*l, left, node,
                      {"join key", static_cast<int64_t>(i), " (left)"}, c);
        CheckExprTree(*r, right, node,
                      {"join key", static_cast<int64_t>(i), " (right)"}, c);
        c->checks++;
        if (l->type != r->type) {
          int lc = TypeClass(l->type), rc = TypeClass(r->type);
          Severity sev = (lc != rc || lc < 0) ? Severity::kError
                                              : Severity::kWarning;
          Diagnostic& d = c->Add(
              codes::kJoinKeyTypeMismatch, sev, node,
              "join key " + std::to_string(i) + " compares " +
                  DataTypeName(l->type) + " to " + DataTypeName(r->type));
          d.notes.push_back(
              "hash keys use a type-tagged encoding: mismatched key types "
              "never match, making the join vacuously empty");
        }
      }
      if (p.predicate != nullptr) {
        Schema concat = left;
        for (size_t i = 0; i < right.num_columns(); ++i) {
          concat.Add(right.names[i], right.types[i]);
        }
        CheckExprTree(*p.predicate, concat, node, {"join residual"}, c);
        CheckBoolPredicate(*p.predicate, node, {"join residual"}, c);
      }
      bool left_only = p.join_type == JoinType::kSemi ||
                       p.join_type == JoinType::kAnti;
      size_t want_n =
          left.num_columns() + (left_only ? 0 : right.num_columns());
      CheckSchemaDerived(
          p.schema, want_n,
          [&](size_t i) {
            const Schema& src = i < left.num_columns() ? left : right;
            size_t j = i < left.num_columns() ? i : i - left.num_columns();
            return std::pair<const std::string*, DataType>(&src.names[j],
                                                           src.types[j]);
          },
          node, JoinName(p.join_type), " join schema", c);
      break;
    }
    case LogicalPlan::Kind::kAggregate: {
      const Schema& in = p.children[0]->schema;
      c->checks++;
      if (p.group_exprs.size() != p.group_names.size()) {
        c->Add(codes::kMissingMember, Severity::kError, node,
               "group arity disagrees: " +
                   std::to_string(p.group_exprs.size()) + " exprs, " +
                   std::to_string(p.group_names.size()) + " names");
        break;
      }
      bool any_null = false;
      for (size_t i = 0; i < p.group_exprs.size(); ++i) {
        if (p.group_exprs[i] == nullptr) {
          c->Add(codes::kMissingMember, Severity::kError, node,
                 "group expression " + std::to_string(i) + " is null");
          any_null = true;
          continue;
        }
        CheckExprTree(*p.group_exprs[i], in, node,
                      {"group expr", static_cast<int64_t>(i)}, c);
      }
      for (size_t i = 0; i < p.aggs.size(); ++i) {
        const AggSpec& a = p.aggs[i];
        c->checks++;
        if (a.op == AggOp::kCountStar) {
          if (a.arg != nullptr) {
            c->Add(codes::kBadAggSpec, Severity::kError, node,
                   "count(*) aggregate " + std::to_string(i) +
                       " carries an argument");
          }
        } else if (a.arg == nullptr) {
          c->Add(codes::kBadAggSpec, Severity::kError, node,
                 std::string(AggName(a.op)) + " aggregate " +
                     std::to_string(i) + " has no argument");
          continue;
        } else {
          CheckExprTree(*a.arg, in, node,
                        {"aggregate arg", static_cast<int64_t>(i)}, c);
        }
        // Mirror of the binder's aggregate result typing.
        DataType want = a.out_type;
        switch (a.op) {
          case AggOp::kCount:
          case AggOp::kCountStar:
          case AggOp::kCountDistinct:
            want = DataType::kInt64;
            break;
          case AggOp::kAvg:
            want = DataType::kFloat64;
            break;
          case AggOp::kSum:
            want = (a.arg != nullptr && a.arg->type == DataType::kInt64)
                       ? DataType::kInt64
                       : DataType::kFloat64;
            break;
          case AggOp::kMin:
          case AggOp::kMax:
            if (a.arg != nullptr) want = a.arg->type;
            break;
        }
        c->checks++;
        if (a.out_type != want) {
          Diagnostic& d = c->Add(
              codes::kBadAggSpec, Severity::kError, node,
              std::string(AggName(a.op)) + " aggregate " + std::to_string(i) +
                  " ('" + a.out_name + "') declares result type " +
                  DataTypeName(a.out_type) + " (binder rule gives " +
                  DataTypeName(want) + ")");
          if (a.arg != nullptr) {
            d.notes.push_back(std::string("argument type: ") +
                              DataTypeName(a.arg->type));
          }
        }
      }
      size_t want_n = p.group_exprs.size() + p.aggs.size();
      if (any_null) {
        break;  // the null-expr diagnostics above already fail the plan
      }
      if (want_n == p.schema.num_columns()) {
        CheckSchemaDerived(
            p.schema, want_n,
            [&](size_t i) {
              if (i < p.group_exprs.size()) {
                return std::pair<const std::string*, DataType>(
                    &p.group_names[i], p.group_exprs[i]->type);
              }
              const AggSpec& a = p.aggs[i - p.group_exprs.size()];
              return std::pair<const std::string*, DataType>(&a.out_name,
                                                             a.out_type);
            },
            node, "", "aggregate schema", c);
      } else {
        c->checks++;
        c->Add(codes::kSchemaMismatch, Severity::kError, node,
               "aggregate schema has " +
                   std::to_string(p.schema.num_columns()) +
                   " columns (groups + aggs give " +
                   std::to_string(want_n) + ")");
      }
      break;
    }
    case LogicalPlan::Kind::kSort: {
      c->checks++;
      if (p.sort_keys.empty()) {
        c->Add(codes::kMissingMember, Severity::kError, node,
               "sort has no keys");
      }
      for (const auto& [idx, asc] : p.sort_keys) {
        c->checks++;
        if (idx < 0 ||
            static_cast<size_t>(idx) >= p.children[0]->schema.num_columns()) {
          c->Add(codes::kSortKeyOutOfRange, Severity::kError, node,
                 "sort key " + std::to_string(idx) + " out of range (child has " +
                     std::to_string(p.children[0]->schema.num_columns()) +
                     " columns)");
        }
      }
      CheckSchemaEq(p.schema, p.children[0]->schema, node,
                    "sort passthrough schema", c);
      break;
    }
    case LogicalPlan::Kind::kLimit: {
      c->checks++;
      if (p.limit < 0) {
        c->Add(codes::kMissingMember, Severity::kError, node,
               "negative limit " + std::to_string(p.limit));
      }
      CheckSchemaEq(p.schema, p.children[0]->schema, node,
                    "limit passthrough schema", c);
      break;
    }
    case LogicalPlan::Kind::kDistinct: {
      CheckSchemaEq(p.schema, p.children[0]->schema, node,
                    "distinct passthrough schema", c);
      break;
    }
    case LogicalPlan::Kind::kWindow: {
      c->checks++;
      if (p.window_name.empty()) {
        c->Add(codes::kMissingMember, Severity::kError, node,
               "window has no output column name");
      }
      for (const auto& [idx, asc] : p.window_order) {
        c->checks++;
        if (idx < 0 ||
            static_cast<size_t>(idx) >= p.children[0]->schema.num_columns()) {
          c->Add(codes::kSortKeyOutOfRange, Severity::kError, node,
                 "window order key " + std::to_string(idx) +
                     " out of range (child has " +
                     std::to_string(p.children[0]->schema.num_columns()) +
                     " columns)");
        }
      }
      const Schema& in = p.children[0]->schema;
      CheckSchemaDerived(
          p.schema, in.num_columns() + 1,
          [&](size_t i) {
            if (i < in.num_columns()) {
              return std::pair<const std::string*, DataType>(&in.names[i],
                                                             in.types[i]);
            }
            return std::pair<const std::string*, DataType>(&p.window_name,
                                                           DataType::kInt64);
          },
          node, "", "window schema", c);
      break;
    }
  }
}

// ===================================================================
// Pipeline tier (P020-P030)
// ===================================================================

bool IsStreamingKind(const LogicalPlan& p) {
  return p.kind == LogicalPlan::Kind::kFilter ||
         p.kind == LogicalPlan::Kind::kProject ||
         (p.kind == LogicalPlan::Kind::kJoin &&
          p.join_type != JoinType::kCross);
}

bool IsSerialBreaker(LogicalPlan::Kind k) {
  return k == LogicalPlan::Kind::kSort || k == LogicalPlan::Kind::kLimit ||
         k == LogicalPlan::Kind::kDistinct || k == LogicalPlan::Kind::kWindow;
}

void CollectNodes(const LogicalPlan& p,
                  std::vector<const LogicalPlan*>* out) {
  out->push_back(&p);
  for (const auto& ch : p.children) {
    if (ch) CollectNodes(*ch, out);
  }
}

void SetRefs(const BoundExpr& e, std::vector<uint8_t>* mask,
             std::vector<int>* scratch) {
  scratch->clear();
  CollectCols(e, scratch);
  for (int col : *scratch) {
    if (col >= 0 && static_cast<size_t>(col) < mask->size()) {
      (*mask)[static_cast<size_t>(col)] = 1;
    }
  }
}

/// Probe-side geometry of a probe join: which block of the op's output
/// the streamed (probe) child occupies, mirroring the executor's
/// swapped/off/psz arithmetic.
struct ProbeGeom {
  bool swapped = false;
  size_t lsz = 0;
  size_t psz = 0;  // probe child width
  size_t off = 0;  // probe block offset within the l++r output
  const LogicalPlan* probe = nullptr;
  const LogicalPlan* build = nullptr;
};

bool ProbeGeometry(const LogicalPlan& j, ProbeGeom* g) {
  if (j.children.size() != 2 || !j.children[0] || !j.children[1]) return false;
  g->swapped = j.join_type == JoinType::kRight ||
               (j.join_type == JoinType::kInner && j.build_left);
  g->lsz = j.children[0]->schema.num_columns();
  g->probe = g->swapped ? j.children[1].get() : j.children[0].get();
  g->build = g->swapped ? j.children[0].get() : j.children[1].get();
  g->psz = g->probe->schema.num_columns();
  g->off = g->swapped ? g->lsz : 0;
  return true;
}

/// Independently recomputes, for each chain position, which output
/// columns anything downstream still consumes — the soundness bound a
/// stored liveness mask must respect. Written against the *semantics*
/// of the streaming operators (what each op reads from its input, what
/// each sink consumes), deliberately not sharing code with the
/// builder's mask computation so a bug there cannot hide here.
void CheckLivenessMasks(const PipelineDesc& d, const std::string& pnode,
                        Checker* c) {
  if (d.ops.empty() || d.sink == PipelineSinkKind::kCompute) return;
  const LogicalPlan* last = d.ops.back();
  if (last == nullptr) return;
  std::vector<int> scratch;

  // Requirement over the chain's final output, per sink kind.
  std::vector<uint8_t> req(last->schema.num_columns(), 1);
  if (d.sink == PipelineSinkKind::kAggregate && d.breaker != nullptr &&
      d.breaker->kind == LogicalPlan::Kind::kAggregate) {
    std::fill(req.begin(), req.end(), 0);
    for (const auto& g : d.breaker->group_exprs) {
      if (g) SetRefs(*g, &req, &scratch);
    }
    for (const auto& a : d.breaker->aggs) {
      if (a.arg) SetRefs(*a.arg, &req, &scratch);
    }
  }

  for (size_t i = d.ops.size(); i-- > 0;) {
    const LogicalPlan* opn = d.ops[i];
    if (opn == nullptr || !IsStreamingKind(*opn)) return;  // P023 covers it
    size_t width = opn->schema.num_columns();
    if (req.size() != width) return;  // P004/P025 cover the shape break

    if (i < d.op_masks.size() && !d.op_masks[i].empty()) {
      c->checks++;
      const std::vector<uint8_t>& mask = d.op_masks[i];
      auto onode = [&] {
        return pnode + ", op " + std::to_string(i) + ":" +
               KindName(opn->kind);
      };
      if (mask.size() != width) {
        c->Add(codes::kLivenessMaskKillsLive, Severity::kError, onode(),
               "liveness mask has " + std::to_string(mask.size()) +
                   " entries over a " + std::to_string(width) +
                   "-column output");
      } else {
        for (size_t col = 0; col < width; ++col) {
          if (req[col] && !mask[col]) {
            Diagnostic& diag = c->Add(
                codes::kLivenessMaskKillsLive, Severity::kError, onode(),
                "liveness mask kills column " + std::to_string(col) + " ('" +
                    opn->schema.names[col] + "') still consumed downstream");
            diag.notes.push_back(
                "the verifier recomputed downstream requirements "
                "independently of the builder's backward liveness pass");
            break;
          }
        }
      }
    }

    // Requirement over this op's input (the previous chain output).
    if (opn->children.empty() || opn->children[0] == nullptr) return;
    switch (opn->kind) {
      case LogicalPlan::Kind::kFilter: {
        if (opn->predicate) SetRefs(*opn->predicate, &req, &scratch);
        break;
      }
      case LogicalPlan::Kind::kProject: {
        std::vector<uint8_t> in_req(opn->children[0]->schema.num_columns(), 0);
        for (size_t j = 0; j < opn->exprs.size() && j < req.size(); ++j) {
          if (req[j] && opn->exprs[j]) SetRefs(*opn->exprs[j], &in_req, &scratch);
        }
        req = std::move(in_req);
        break;
      }
      case LogicalPlan::Kind::kJoin: {
        ProbeGeom g;
        if (!ProbeGeometry(*opn, &g)) return;
        std::vector<uint8_t> in_req(g.psz, 0);
        if (opn->join_type == JoinType::kFull) {
          std::fill(in_req.begin(), in_req.end(), 1);
        } else if (opn->join_type == JoinType::kSemi ||
                   opn->join_type == JoinType::kAnti) {
          in_req = req;  // output schema == probe schema
          in_req.resize(g.psz, 0);
        } else {
          for (size_t col = 0; col < g.psz && g.off + col < req.size();
               ++col) {
            if (req[g.off + col]) in_req[col] = 1;
          }
        }
        for (const auto& [l, r] : opn->join_keys) {
          const auto& probe_key = g.swapped ? r : l;
          if (probe_key) SetRefs(*probe_key, &in_req, &scratch);
        }
        if (opn->predicate) {
          scratch.clear();
          CollectCols(*opn->predicate, &scratch);
          for (int col : scratch) {
            size_t cc = static_cast<size_t>(col);
            if (col >= 0 && cc >= g.off && cc < g.off + g.psz) {
              in_req[cc - g.off] = 1;
            }
          }
        }
        req = std::move(in_req);
        break;
      }
      default:
        return;
    }
  }
}

}  // namespace

std::vector<Diagnostic> VerifyPlan(const LogicalPlan& plan,
                                   const VerifyOptions& opts,
                                   VerifyStats* stats) {
  auto t0 = std::chrono::steady_clock::now();
  Checker c;
  CheckNode(plan, "root", opts, &c);
  FinishStats(stats, c, t0);
  return std::move(c.diags);
}

std::vector<Diagnostic> VerifyPipelines(const LogicalPlan& root,
                                        const PipelinePlan& pp,
                                        VerifyStats* stats) {
  auto t0 = std::chrono::steady_clock::now();
  Checker c;

  // Flat node table: `tree` holds every node (with multiplicity, sorted
  // by address), `covered` counts pipeline-role references in parallel —
  // no per-node allocation on the clean path.
  std::vector<const LogicalPlan*> tree;
  CollectNodes(root, &tree);
  std::sort(tree.begin(), tree.end());
  std::vector<int> covered(tree.size(), 0);
  // `where` is built lazily: coverage runs per op on every clean query.
  auto cover = [&](const LogicalPlan* n, const auto& where) {
    if (n == nullptr) return;
    c.checks++;
    auto it = std::lower_bound(tree.begin(), tree.end(), n);
    if (it == tree.end() || *it != n) {
      c.Add(codes::kNodeCoverage, Severity::kError, where(),
            "references a node outside the plan tree");
      return;
    }
    covered[static_cast<size_t>(it - tree.begin())] += 1;
  };

  const int np = static_cast<int>(pp.pipelines.size());
  for (int i = 0; i < np; ++i) {
    const PipelineDesc& d = pp.pipelines[i];
    const std::string pnode = "pipeline " + std::to_string(i);
    auto valid_pid = [&](int pid) { return pid >= 0 && pid < d.id; };

    c.checks++;
    if (d.id != i) {
      c.Add(codes::kPipelineIdOrder, Severity::kError, pnode,
            "pipeline at index " + std::to_string(i) + " carries id " +
                std::to_string(d.id));
      continue;  // every downstream check keys off d.id
    }
    for (int dep : d.deps) {
      c.checks++;
      if (!valid_pid(dep)) {
        Diagnostic& diag = c.Add(
            codes::kPipelineDepCycle, Severity::kError, pnode,
            "dependency on pipeline " + std::to_string(dep) +
                " breaks the topological order (own id " +
                std::to_string(d.id) + ")");
        diag.notes.push_back(
            "pipelines run in index order; every dependency id must be "
            "smaller than the dependent's id (acyclic by construction)");
      }
    }

    // Sink / breaker agreement.
    c.checks++;
    switch (d.sink) {
      case PipelineSinkKind::kResult:
        if (d.breaker != nullptr) {
          c.Add(codes::kBreakerSinkMismatch, Severity::kError, pnode,
                "result sink carries a breaker node");
        }
        break;
      case PipelineSinkKind::kAggregate:
        if (d.breaker == nullptr ||
            d.breaker->kind != LogicalPlan::Kind::kAggregate) {
          c.Add(codes::kBreakerSinkMismatch, Severity::kError, pnode,
                std::string("aggregate sink breaker is ") +
                    (d.breaker ? KindName(d.breaker->kind) : "null"));
        }
        break;
      case PipelineSinkKind::kSerial:
        if (d.breaker == nullptr || !IsSerialBreaker(d.breaker->kind)) {
          c.Add(codes::kBreakerSinkMismatch, Severity::kError, pnode,
                std::string("serial sink breaker is ") +
                    (d.breaker ? KindName(d.breaker->kind) : "null") +
                    " (want sort/limit/distinct/window)");
        }
        break;
      case PipelineSinkKind::kCompute:
        if (d.breaker == nullptr ||
            d.breaker->kind != LogicalPlan::Kind::kJoin ||
            d.breaker->join_type != JoinType::kCross) {
          c.Add(codes::kBreakerSinkMismatch, Severity::kError, pnode,
                "compute sink is reserved for cross joins");
        }
        break;
    }

    // Source shape.
    c.checks++;
    if (d.sink == PipelineSinkKind::kCompute) {
      if (d.source != nullptr || d.source_pipeline >= 0 || !d.ops.empty() ||
          d.inputs.empty()) {
        c.Add(codes::kPipelineBadSource, Severity::kError, pnode,
              "compute pipeline must have no source and no ops, only "
              "materialized inputs");
      }
    } else {
      bool has_src = d.source != nullptr;
      bool has_pid = d.source_pipeline >= 0;
      if (has_src == has_pid) {
        c.Add(codes::kPipelineBadSource, Severity::kError, pnode,
              has_src ? "both a leaf source and a source pipeline"
                      : "neither a leaf source nor a source pipeline");
      } else if (has_src && d.source->kind != LogicalPlan::Kind::kScan &&
                 d.source->kind != LogicalPlan::Kind::kValues) {
        c.Add(codes::kPipelineBadSource, Severity::kError, pnode,
              std::string("morsel source is a ") + KindName(d.source->kind) +
                  " (want a scan/values leaf)");
      } else if (has_pid && !valid_pid(d.source_pipeline)) {
        c.Add(codes::kPipelineBadSource, Severity::kError, pnode,
              "source pipeline " + std::to_string(d.source_pipeline) +
                  " out of range");
      }
      if (!d.inputs.empty()) {
        c.Add(codes::kPipelineBadSource, Severity::kError, pnode,
              "materialized inputs on a non-compute pipeline");
      }
    }

    // Ops: streaming kinds, build-input arity.
    bool builds_ok = d.op_build_inputs.size() == d.ops.size();
    c.checks++;
    if (!builds_ok) {
      c.Add(codes::kBadBuildInput, Severity::kError, pnode,
            "op_build_inputs has " + std::to_string(d.op_build_inputs.size()) +
                " entries for " + std::to_string(d.ops.size()) + " ops");
    }
    for (size_t oi = 0; oi < d.ops.size(); ++oi) {
      const LogicalPlan* opn = d.ops[oi];
      auto onode = [&] {
        return pnode + ", op " + std::to_string(oi) +
               (opn ? std::string(":") + KindName(opn->kind) : "");
      };
      c.checks++;
      if (opn == nullptr || !IsStreamingKind(*opn)) {
        Diagnostic& diag = c.Add(
            codes::kNonStreamingOp, Severity::kError, onode(),
            opn == nullptr
                ? "null op in streaming chain"
                : std::string(KindName(opn->kind)) +
                      " in a streaming chain (breakers must sink a pipeline)");
        diag.notes.push_back(
            "streaming ops transform chunks in place: filter, project, "
            "and probe-side hash join only");
        continue;
      }
      if (!builds_ok) continue;
      int bp = d.op_build_inputs[oi];
      c.checks++;
      if (opn->kind == LogicalPlan::Kind::kJoin) {
        if (!valid_pid(bp)) {
          c.Add(codes::kBadBuildInput, Severity::kError, onode(),
                "probe join's build pipeline " + std::to_string(bp) +
                    " out of range");
        } else if (std::find(d.deps.begin(), d.deps.end(), bp) ==
                   d.deps.end()) {
          c.Add(codes::kBadBuildInput, Severity::kError, onode(),
                "build pipeline " + std::to_string(bp) +
                    " missing from deps");
        }
      } else if (bp != -1) {
        c.Add(codes::kBadBuildInput, Severity::kError, onode(),
              "non-join op carries build input " + std::to_string(bp));
      }
    }

    // Chain continuity against the plan tree.
    const LogicalPlan* prev = nullptr;
    if (d.source != nullptr) {
      prev = d.source;
    } else if (valid_pid(d.source_pipeline)) {
      prev = pp.pipelines[d.source_pipeline].output;
    }
    for (size_t oi = 0; oi < d.ops.size(); ++oi) {
      const LogicalPlan* opn = d.ops[oi];
      if (opn == nullptr || !IsStreamingKind(*opn)) break;
      auto onode = [&] {
        return pnode + ", op " + std::to_string(oi) + ":" +
               KindName(opn->kind);
      };
      if (opn->kind == LogicalPlan::Kind::kJoin) {
        ProbeGeom g;
        if (!ProbeGeometry(*opn, &g)) break;
        c.checks++;
        if (g.probe != prev) {
          c.Add(codes::kChainBroken, Severity::kError, onode(),
                "probe child is not the previous chain node");
        }
        if (builds_ok && valid_pid(d.op_build_inputs[oi])) {
          c.checks++;
          if (pp.pipelines[d.op_build_inputs[oi]].output != g.build) {
            Diagnostic& diag = c.Add(
                codes::kChainBroken, Severity::kError, onode(),
                "build pipeline " + std::to_string(d.op_build_inputs[oi]) +
                    " materializes a different node than the join's build "
                    "child");
            diag.notes.push_back(
                "a probe op hashes exactly its build child's output; any "
                "other table changes the join result");
          }
        }
      } else {
        c.checks++;
        if (opn->children.size() != 1 || opn->children[0].get() != prev) {
          c.Add(codes::kChainBroken, Severity::kError, onode(),
                "op's child is not the previous chain node");
        }
      }
      prev = opn;
    }
    if (d.breaker != nullptr && d.sink != PipelineSinkKind::kCompute) {
      c.checks++;
      if (d.breaker->children.empty() ||
          d.breaker->children[0].get() != prev) {
        c.Add(codes::kChainBroken, Severity::kError, pnode,
              "breaker's child is not the chain's last node");
      }
    }
    if (d.sink == PipelineSinkKind::kCompute && d.breaker != nullptr) {
      c.checks++;
      if (d.inputs.size() != d.breaker->children.size()) {
        c.Add(codes::kChainBroken, Severity::kError, pnode,
              "compute pipeline has " + std::to_string(d.inputs.size()) +
                  " inputs for a " +
                  std::to_string(d.breaker->children.size()) +
                  "-child breaker");
      } else {
        for (size_t k = 0; k < d.inputs.size(); ++k) {
          c.checks++;
          if (!valid_pid(d.inputs[k]) ||
              pp.pipelines[d.inputs[k]].output !=
                  d.breaker->children[k].get()) {
            c.Add(codes::kChainBroken, Severity::kError, pnode,
                  "compute input " + std::to_string(k) +
                      " does not materialize the breaker's child");
          }
        }
      }
    }

    // Output node.
    const LogicalPlan* expect_out = d.breaker != nullptr ? d.breaker : prev;
    c.checks++;
    if (d.output == nullptr || d.output != expect_out) {
      c.Add(codes::kBadPipelineOutput, Severity::kError, pnode,
            "output node is not the pipeline's final node");
    }

    // Reads covered by declared deps (and deps actually read).
    std::vector<int> reads;
    if (d.source_pipeline >= 0) reads.push_back(d.source_pipeline);
    for (int bp : d.op_build_inputs) {
      if (bp >= 0) reads.push_back(bp);
    }
    for (int in : d.inputs) reads.push_back(in);
    std::sort(reads.begin(), reads.end());
    reads.erase(std::unique(reads.begin(), reads.end()), reads.end());
    std::vector<int> deps = d.deps;
    std::sort(deps.begin(), deps.end());
    deps.erase(std::unique(deps.begin(), deps.end()), deps.end());
    for (int r : reads) {
      c.checks++;
      if (!std::binary_search(deps.begin(), deps.end(), r)) {
        Diagnostic& diag = c.Add(
            codes::kReadOutsideDeps, Severity::kError, pnode,
            "reads pipeline " + std::to_string(r) +
                "'s output without declaring the dependency");
        diag.notes.push_back(
            "the scheduler releases an output after its last declared "
            "consumer; an undeclared read can see freed memory");
      }
    }
    for (int dep : deps) {
      c.checks++;
      if (!std::binary_search(reads.begin(), reads.end(), dep)) {
        c.Add(codes::kReadOutsideDeps, Severity::kWarning, pnode,
              "declared dependency " + std::to_string(dep) + " is never read");
      }
    }

    // Node coverage bookkeeping.
    cover(d.source, [&] { return pnode + " source"; });
    for (size_t oi = 0; oi < d.ops.size(); ++oi) {
      cover(d.ops[oi], [&] { return pnode + ", op " + std::to_string(oi); });
    }
    cover(d.breaker, [&] { return pnode + " breaker"; });

    CheckLivenessMasks(d, pnode, &c);
  }

  // Whole-plan checks: the last pipeline materializes the root, and every
  // plan node belongs to exactly one pipeline role.
  c.checks++;
  if (pp.pipelines.empty() || pp.pipelines.back().output != &root) {
    c.Add(codes::kBadPipelineOutput, Severity::kError, "plan",
          "the final pipeline does not materialize the plan root");
  }
  for (size_t i = 0; i < tree.size();) {
    size_t j = i;
    int sum = 0;
    while (j < tree.size() && tree[j] == tree[i]) sum += covered[j++];
    int cnt = static_cast<int>(j - i);
    c.checks++;
    if (sum != cnt) {
      c.Add(codes::kNodeCoverage, Severity::kError, "plan",
            std::string(KindName(tree[i]->kind)) + " node covered by " +
                std::to_string(sum) + " pipeline roles (want " +
                std::to_string(cnt) + ")");
    }
    i = j;
  }

  FinishStats(stats, c, t0);
  return std::move(c.diags);
}

// ===================================================================
// Param tier (P040-P043)
// ===================================================================

namespace {

void WalkTermParams(
    const tondir::Term& t,
    const std::function<void(const tondir::Term&)>& visit) {
  if (t.kind == tondir::Term::Kind::kParam) visit(t);
  for (const auto& ch : t.children) {
    if (ch) WalkTermParams(*ch, visit);
  }
}

void WalkBodyParams(
    const tondir::Body& body,
    const std::function<void(const tondir::Term&)>& visit) {
  for (const tondir::Atom& a : body) {
    if (a.term) WalkTermParams(*a.term, visit);
    if (a.exists_body) WalkBodyParams(*a.exists_body, visit);
  }
}

}  // namespace

std::vector<Diagnostic> VerifyParamSlots(const tondir::Program& program,
                                         const std::vector<DataType>& slots,
                                         VerifyStats* stats) {
  auto t0 = std::chrono::steady_clock::now();
  Checker c;
  std::vector<uint8_t> seen(slots.size(), 0);
  for (size_t r = 0; r < program.rules.size(); ++r) {
    const std::string node = "rule " + std::to_string(r);
    WalkBodyParams(program.rules[r].body, [&](const tondir::Term& t) {
      c.checks++;
      if (t.param_index < 0 ||
          static_cast<size_t>(t.param_index) >= slots.size()) {
        Diagnostic& d = c.Add(
            codes::kParamIndexOutOfRange, Severity::kError, node,
            "parameter $p" + std::to_string(t.param_index) +
                " out of range (" + std::to_string(slots.size()) +
                " declared slots)");
        d.notes.push_back(
            "slots are extracted in deterministic pre-order by the "
            "parameterizer and bound positionally at EXECUTE");
        return;
      }
      seen[static_cast<size_t>(t.param_index)] = 1;
      c.checks++;
      DataType want = slots[static_cast<size_t>(t.param_index)];
      if (t.constant.type() != want) {
        Diagnostic& d = c.Add(
            codes::kParamSeedTypeMismatch, Severity::kError, node,
            "parameter $p" + std::to_string(t.param_index) +
                " carries a " + DataTypeName(t.constant.type()) +
                " seed but the slot was declared " + DataTypeName(want));
        d.notes.push_back(
            "the slot's static type is what the skeleton plan was "
            "compiled against; a drifted seed means a pass rewrote the "
            "opaque parameter's typing");
      }
    });
  }
  for (size_t i = 0; i < seen.size(); ++i) {
    c.checks++;
    if (!seen[i]) {
      Diagnostic& d = c.Add(
          codes::kParamFolded, Severity::kError, "params",
          "parameter slot $p" + std::to_string(i) +
              " is no longer referenced by the optimized program");
      d.notes.push_back(
          "a value-dependent pass (constant folding / interval "
          "specialization) consumed the parameter, baking one binding "
          "into a plan cached for every binding");
    }
  }
  FinishStats(stats, c, t0);
  return std::move(c.diags);
}

std::vector<Diagnostic> VerifySkeletonSql(const std::string& sql,
                                          size_t num_slots,
                                          VerifyStats* stats) {
  auto t0 = std::chrono::steady_clock::now();
  Checker c;
  std::vector<uint8_t> seen(num_slots, 0);
  for (size_t i = 0; i + 2 < sql.size(); ++i) {
    if (sql[i] != '$' || sql[i + 1] != 'p' ||
        !std::isdigit(static_cast<unsigned char>(sql[i + 2]))) {
      continue;
    }
    size_t j = i + 2;
    size_t idx = 0;
    while (j < sql.size() &&
           std::isdigit(static_cast<unsigned char>(sql[j]))) {
      idx = idx * 10 + static_cast<size_t>(sql[j] - '0');
      ++j;
    }
    c.checks++;
    if (idx >= num_slots) {
      c.Add(codes::kSkeletonSlotMismatch, Severity::kError, "skeleton",
            "skeleton SQL references $p" + std::to_string(idx) + " but only " +
                std::to_string(num_slots) + " slots are declared");
    } else {
      seen[idx] = 1;
    }
    i = j - 1;
  }
  for (size_t i = 0; i < seen.size(); ++i) {
    c.checks++;
    if (!seen[i]) {
      Diagnostic& d = c.Add(
          codes::kSkeletonSlotMismatch, Severity::kError, "skeleton",
          "declared slot $p" + std::to_string(i) +
              " never appears in the skeleton SQL");
      d.notes.push_back(
          "the parameter was folded into a constant during lowering: "
          "EXECUTE bindings for this slot would be silently ignored");
    }
  }
  FinishStats(stats, c, t0);
  return std::move(c.diags);
}

Status CheckOrError(const std::vector<Diagnostic>& diags,
                    const std::string& stage) {
  size_t errors = 0;
  const Diagnostic* first = nullptr;
  for (const Diagnostic& d : diags) {
    if (d.severity == Severity::kError) {
      if (first == nullptr) first = &d;
      ++errors;
    }
  }
  if (first == nullptr) return Status::OK();
  std::string msg =
      "plan verifier [" + stage + "]: " + first->ToString();
  if (errors > 1) {
    msg += " (+" + std::to_string(errors - 1) + " more)";
  }
  return Status::Internal(std::move(msg));
}

bool VerifyDefault() {
  static const bool kDefault = [] {
    const char* env = std::getenv("TOND_VERIFY_PLANS");
    if (env != nullptr && *env != '\0') {
      std::string v(env);
      for (char& ch : v) ch = static_cast<char>(std::tolower(ch));
      return !(v == "0" || v == "off" || v == "false");
    }
#if !defined(NDEBUG) || defined(PYTOND_SANITIZER_BUILD)
    return true;
#else
    return false;
#endif
  }();
  return kDefault;
}

}  // namespace pytond::analysis::physical
