#include "analysis/dataflow/dataflow.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <sstream>

#include "common/date_util.h"
#include "obs/trace.h"

namespace pytond::analysis::dataflow {

using tondir::AggFn;
using tondir::Atom;
using tondir::BinOp;
using tondir::Body;
using tondir::CmpOp;
using tondir::Program;
using tondir::Rule;
using tondir::Term;

// ---------------------------------------------------------------------------
// Interval

bool Interval::Empty() const {
  if (!lo.has_value() || !hi.has_value()) return false;
  if (*lo > *hi) return true;
  return *lo == *hi && (lo_open || hi_open);
}

void Interval::TightenLo(double v, bool open) {
  if (!lo.has_value() || v > *lo || (v == *lo && open)) {
    lo = v;
    lo_open = open;
  }
}

void Interval::TightenHi(double v, bool open) {
  if (!hi.has_value() || v < *hi || (v == *hi && open)) {
    hi = v;
    hi_open = open;
  }
}

bool Interval::Implies(CmpOp op, double v) const {
  switch (op) {
    case CmpOp::kLt:
      return hi.has_value() && (*hi < v || (*hi == v && hi_open));
    case CmpOp::kLe:
      return hi.has_value() && *hi <= v;
    case CmpOp::kGt:
      return lo.has_value() && (*lo > v || (*lo == v && lo_open));
    case CmpOp::kGe:
      return lo.has_value() && *lo >= v;
    case CmpOp::kEq:
      return lo.has_value() && hi.has_value() && *lo == v && *hi == v &&
             !lo_open && !hi_open;
    case CmpOp::kNe:
      return Contradicts(CmpOp::kEq, v) &&
             (lo.has_value() || hi.has_value()) &&
             ((lo.has_value() && (*lo > v || (*lo == v && lo_open))) ||
              (hi.has_value() && (*hi < v || (*hi == v && hi_open))));
  }
  return false;
}

bool Interval::Contradicts(CmpOp op, double v) const {
  switch (op) {
    case CmpOp::kLt:  // no value < v  <=>  every value >= v
      return Implies(CmpOp::kGe, v);
    case CmpOp::kLe:
      return Implies(CmpOp::kGt, v);
    case CmpOp::kGt:
      return Implies(CmpOp::kLe, v);
    case CmpOp::kGe:
      return Implies(CmpOp::kLt, v);
    case CmpOp::kEq:  // v outside the interval
      return (lo.has_value() && (*lo > v || (*lo == v && lo_open))) ||
             (hi.has_value() && (*hi < v || (*hi == v && hi_open)));
    case CmpOp::kNe:
      return Implies(CmpOp::kEq, v);
  }
  return false;
}

std::string Interval::ToString() const {
  auto num = [](double d) {
    std::ostringstream os;
    os << d;
    return os.str();
  };
  std::string s = lo.has_value() ? (lo_open ? "(" : "[") + num(*lo) : "(-inf";
  s += ", ";
  s += hi.has_value() ? num(*hi) + (hi_open ? ")" : "]") : "+inf)";
  return s;
}

// ---------------------------------------------------------------------------
// ColumnFacts / RelationFacts / ProgramFacts

namespace {

/// Widens a value to the double comparison domain; strings only when
/// `as_date` and the text parses as a date.
std::optional<double> WidenValue(const Value& v, bool as_date) {
  switch (v.type()) {
    case DataType::kInt64:
      return static_cast<double>(v.AsInt64());
    case DataType::kFloat64:
      return v.AsFloat64();
    case DataType::kBool:
      return v.AsBool() ? 1.0 : 0.0;
    case DataType::kDate:
      return static_cast<double>(v.AsDate());
    case DataType::kString:
      if (as_date) {
        auto d = date_util::Parse(v.AsString());
        if (d.ok()) return static_cast<double>(*d);
      }
      return std::nullopt;
    case DataType::kNull:
      return std::nullopt;
  }
  return std::nullopt;
}

}  // namespace

std::optional<double> ColumnFacts::ConstantAsDouble() const {
  if (!constant.has_value()) return std::nullopt;
  return WidenValue(*constant, type == DataType::kDate);
}

bool RelationFacts::IsUniqueColumn(size_t pos) const {
  std::set<size_t> s{pos};
  return KeyWithin(s) != nullptr;
}

const KeyFact* RelationFacts::KeyWithin(const std::set<size_t>& cols) const {
  for (const KeyFact& k : keys) {
    if (std::includes(cols.begin(), cols.end(), k.cols.begin(),
                      k.cols.end())) {
      return &k;
    }
  }
  return nullptr;
}

const RelationFacts* ProgramFacts::Find(const std::string& rel) const {
  auto it = relations.find(rel);
  return it == relations.end() ? nullptr : &it->second;
}

std::string ProgramFacts::Dump() const {
  std::ostringstream os;
  for (const auto& [rel, rf] : relations) {
    os << rel << " (" << (rf.derived ? "derived" : "base") << ")";
    if (rf.provably_empty) os << " [provably empty: " << rf.empty_why << "]";
    os << "\n";
    for (size_t i = 0; i < rf.columns.size(); ++i) {
      const ColumnFacts& c = rf.columns[i];
      os << "  col " << i << ": "
         << (c.type.has_value() ? DataTypeName(*c.type) : "?");
      if (c.nullable) os << " nullable";
      if (c.constant.has_value()) os << " const=" << c.constant->ToString();
      if (!c.range.Unbounded()) os << " range=" << c.range.ToString();
      os << "\n";
    }
    for (const KeyFact& k : rf.keys) {
      os << "  key {";
      bool first = true;
      for (size_t p : k.cols) {
        if (!first) os << ", ";
        os << p;
        first = false;
      }
      os << "}  -- " << k.why << "\n";
    }
  }
  return os.str();
}

size_t ProgramFacts::CountFacts() const {
  size_t n = 0;
  for (const auto& [rel, rf] : relations) {
    for (const ColumnFacts& c : rf.columns) {
      if (c.type.has_value()) ++n;
      if (c.nullable) ++n;
      if (c.constant.has_value()) ++n;
      if (!c.range.Unbounded()) ++n;
    }
    n += rf.keys.size();
    if (rf.provably_empty) ++n;
  }
  return n;
}

std::optional<bool> EvalCmp(const Value& lhs, CmpOp op, const Value& rhs) {
  if (lhs.is_null() || rhs.is_null()) return std::nullopt;
  if (lhs.type() == DataType::kString && rhs.type() == DataType::kString) {
    int c = lhs.AsString().compare(rhs.AsString());
    switch (op) {
      case CmpOp::kLt: return c < 0;
      case CmpOp::kLe: return c <= 0;
      case CmpOp::kEq: return c == 0;
      case CmpOp::kNe: return c != 0;
      case CmpOp::kGe: return c >= 0;
      case CmpOp::kGt: return c > 0;
    }
    return std::nullopt;
  }
  bool as_date =
      lhs.type() == DataType::kDate || rhs.type() == DataType::kDate;
  std::optional<double> a = WidenValue(lhs, as_date);
  std::optional<double> b = WidenValue(rhs, as_date);
  if (!a.has_value() || !b.has_value()) return std::nullopt;
  switch (op) {
    case CmpOp::kLt: return *a < *b;
    case CmpOp::kLe: return *a <= *b;
    case CmpOp::kEq: return *a == *b;
    case CmpOp::kNe: return *a != *b;
    case CmpOp::kGe: return *a >= *b;
    case CmpOp::kGt: return *a > *b;
  }
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// Analyzer

namespace {

/// True when comparing / joining values of these two (known) types is
/// meaningful for the engine: numeric-family types interoperate, strings
/// compare against strings and date columns (date literals arrive as
/// strings from the frontend).
bool TypesComparable(DataType a, DataType b) {
  if (a == b) return true;
  if (a == DataType::kNull || b == DataType::kNull) return true;
  auto numericish = [](DataType t) {
    return t == DataType::kInt64 || t == DataType::kFloat64 ||
           t == DataType::kBool;
  };
  if (numericish(a) && numericish(b)) return true;
  // date <-> string: allowed (string literals are parsed as dates).
  if ((a == DataType::kDate && b == DataType::kString) ||
      (a == DataType::kString && b == DataType::kDate)) {
    return true;
  }
  return false;
}

/// Counts occurrences of variable `v` in a term.
size_t CountTermUses(const Term& t, const std::string& v) {
  size_t n = 0;
  if (t.kind == Term::Kind::kVar) {
    if (t.var == v) ++n;
  }
  for (const auto& c : t.children) n += CountTermUses(*c, v);
  return n;
}

size_t CountBodyUses(const Body& body, const std::string& v) {
  size_t n = 0;
  for (const Atom& a : body) {
    for (const std::string& x : a.vars) {
      if (x == v) ++n;
    }
    if (!a.var0.empty() && a.var0 == v) ++n;
    if (a.term) n += CountTermUses(*a.term, v);
    if (a.exists_body) n += CountBodyUses(*a.exists_body, v);
  }
  return n;
}

/// Occurrences of `v` anywhere in the rule (head + body, all nesting).
size_t CountRuleUses(const Rule& r, const std::string& v) {
  size_t n = CountBodyUses(r.body, v);
  for (const std::string& x : r.head.vars) {
    if (x == v) ++n;
  }
  for (const std::string& x : r.head.group_vars) {
    if (x == v) ++n;
  }
  for (const auto& k : r.head.sort_keys) {
    if (k.var == v) ++n;
  }
  return n;
}

class Analyzer {
 public:
  Analyzer(const Program& program, const AnalyzeOptions& options)
      : program_(program), options_(options) {}

  ProgramFacts Run() {
    SeedBaseRelations();
    for (size_t i = 0; i < program_.rules.size(); ++i) {
      AnalyzeRule(i);
    }
    if (options_.diags != nullptr) CheckUnreachableColumns();
    return std::move(facts_);
  }

 private:
  using Scope = std::map<std::string, ColumnFacts>;

  // -- program level --------------------------------------------------------

  void SeedBaseRelations() {
    std::set<std::string> defined;
    for (const Rule& r : program_.rules) defined.insert(r.head.relation);
    // Every relation accessed anywhere but not defined by a rule is
    // extensional, whether or not it was declared via @base/base_columns —
    // optimizer unit tests routinely seed relation_info only.
    std::map<std::string, size_t> accessed;
    std::function<void(const Body&)> scan = [&](const Body& body) {
      for (const Atom& a : body) {
        if (a.kind == Atom::Kind::kRelAccess) {
          accessed.emplace(a.relation, a.vars.size());
        } else if (a.kind == Atom::Kind::kExists) {
          scan(*a.exists_body);
        }
      }
    };
    for (const Rule& r : program_.rules) scan(r.body);
    auto seed = [&](const std::string& rel, size_t arity) {
      if (defined.count(rel) != 0 || facts_.relations.count(rel) != 0) return;
      RelationFacts rf;
      rf.derived = false;
      auto cols = program_.base_columns.find(rel);
      auto types = program_.base_column_types.find(rel);
      if (cols != program_.base_columns.end()) arity = cols->second.size();
      rf.columns.resize(arity);
      for (size_t i = 0; i < arity; ++i) {
        ColumnFacts& c = rf.columns[i];
        if (types != program_.base_column_types.end() &&
            i < types->second.size() &&
            types->second[i] != DataType::kNull) {
          c.type = types->second[i];
          c.Note("type " + std::string(DataTypeName(*c.type)) +
                 ": declared for base column " + rel + "." +
                 ColumnName(rel, i));
        }
        // Base tables are loaded from non-null columnar storage.
        c.Note("non-null: base relation column");
      }
      auto info = program_.relation_info.find(rel);
      if (info != program_.relation_info.end()) {
        for (size_t p : info->second.unique_positions) {
          if (p >= arity) continue;
          rf.keys.push_back(
              {{p},
               "column " + ColumnName(rel, p) + " of base relation '" + rel +
                   "' is declared unique (catalog / @base unique)"});
        }
      }
      facts_.relations.emplace(rel, std::move(rf));
    };
    for (const auto& [rel, cols] : program_.base_columns) {
      seed(rel, cols.size());
    }
    for (const auto& [rel, arity] : accessed) {
      seed(rel, arity);
    }
  }

  std::string ColumnName(const std::string& rel, size_t pos) const {
    auto it = program_.base_columns.find(rel);
    if (it != program_.base_columns.end() && pos < it->second.size()) {
      return it->second[pos];
    }
    return "#" + std::to_string(pos);
  }

  RelationFacts* FactsForAccess(const Atom& a) {
    auto it = facts_.relations.find(a.relation);
    if (it != facts_.relations.end()) return &it->second;
    // Undeclared base (tondlint --implicit-bases): unknown facts.
    RelationFacts rf;
    rf.derived = false;
    rf.columns.resize(a.vars.size());
    return &facts_.relations.emplace(a.relation, std::move(rf)).first->second;
  }

  // -- diagnostics ----------------------------------------------------------

  void Emit(const char* code, Severity sev, int atom_index, std::string msg,
            std::string hint, std::vector<std::string> notes) {
    if (options_.diags == nullptr) return;
    Diagnostic d;
    d.code = code;
    d.severity = sev;
    d.rule_index = static_cast<int>(rule_index_);
    d.atom_index = atom_index;
    d.message = std::move(msg);
    d.fix_hint = std::move(hint);
    d.notes = std::move(notes);
    if (d.notes.empty()) d.notes.push_back("derived by dataflow analysis");
    options_.diags->push_back(std::move(d));
  }

  /// Inference chain of a fact: its provenance notes, capped.
  static std::vector<std::string> Chain(const ColumnFacts& f) {
    std::vector<std::string> n = f.why;
    if (n.size() > 8) n.resize(8);
    return n;
  }

  static std::vector<std::string> Chain2(const ColumnFacts& a,
                                         const ColumnFacts& b) {
    std::vector<std::string> n = Chain(a);
    for (auto& s : Chain(b)) n.push_back(std::move(s));
    if (n.size() > 10) n.resize(10);
    return n;
  }

  // -- rule level -----------------------------------------------------------

  void AnalyzeRule(size_t idx) {
    rule_index_ = idx;
    rule_empty_ = false;
    rule_empty_why_.clear();
    fds_.clear();
    access_keys_.clear();
    top_accesses_.clear();
    uid_vars_.clear();
    Scope scope;
    const Rule& rule = program_.rules[idx];
    AnalyzeBody(rule.body, &scope, /*parent_index=*/-1, /*depth=*/0,
                /*negated=*/false);
    ProjectHead(rule, scope);
  }

  void AnalyzeBody(const Body& body, Scope* scope, int parent_index,
                   int depth, bool negated) {
    for (size_t i = 0; i < body.size(); ++i) {
      const Atom& a = body[i];
      int report = depth == 0 ? static_cast<int>(i) : parent_index;
      switch (a.kind) {
        case Atom::Kind::kRelAccess:
          HandleAccess(a, scope, report, depth, negated);
          break;
        case Atom::Kind::kConstRel:
          HandleConstRel(a, scope, report, depth);
          break;
        case Atom::Kind::kExists: {
          Scope child = *scope;  // inner bindings do not escape
          AnalyzeBody(*a.exists_body, &child, report, depth + 1,
                      negated || a.negated);
          break;
        }
        case Atom::Kind::kCompare:
          HandleCompare(a, scope, report, depth);
          break;
        case Atom::Kind::kExternal:
          if (depth == 0) HandleMarker(a, scope);
          break;
      }
    }
  }

  void HandleAccess(const Atom& a, Scope* scope, int report, int depth,
                    bool negated) {
    RelationFacts* rf = FactsForAccess(a);
    if (rf->provably_empty && !negated) {
      MarkEmpty("reads relation '" + a.relation +
                "' which is provably empty (" + rf->empty_why + ")");
    }
    for (size_t pos = 0; pos < a.vars.size(); ++pos) {
      if (pos >= rf->columns.size()) break;  // arity error: structural tier
      const std::string& v = a.vars[pos];
      ColumnFacts col = rf->columns[pos];
      col.Note("bound by " + a.relation + " column " +
               ColumnName(a.relation, pos));
      auto it = scope->find(v);
      if (it == scope->end()) {
        (*scope)[v] = std::move(col);
        continue;
      }
      // Var already bound: equality join between the existing binding and
      // this column. Meet the facts; conflicts are deep diagnostics.
      ColumnFacts& cur = it->second;
      if (cur.type.has_value() && col.type.has_value() &&
          !TypesComparable(*cur.type, *col.type)) {
        Emit(codes::kTypeMismatch, Severity::kError, report,
             "join on variable '" + v + "' compares " +
                 DataTypeName(*cur.type) + " with " + DataTypeName(*col.type),
             "check the join keys; these columns can never be equal",
             Chain2(cur, col));
      }
      if (!cur.type.has_value()) cur.type = col.type;
      if (cur.constant.has_value() && col.constant.has_value() &&
          *cur.constant != *col.constant) {
        MarkEmpty("join on '" + v + "' requires " + cur.constant->ToString() +
                  " = " + col.constant->ToString());
      }
      if (!cur.constant.has_value()) cur.constant = col.constant;
      if (col.range.lo.has_value()) {
        cur.range.TightenLo(*col.range.lo, col.range.lo_open);
      }
      if (col.range.hi.has_value()) {
        cur.range.TightenHi(*col.range.hi, col.range.hi_open);
      }
      cur.nullable = cur.nullable && col.nullable;
      cur.Note("join with " + a.relation + " column " +
               ColumnName(a.relation, pos));
    }
    if (depth == 0) {
      top_accesses_.push_back(&a);
      // FDs: each key of the accessed relation determines all its vars.
      std::set<std::string> all(a.vars.begin(), a.vars.end());
      std::vector<std::set<std::string>> key_sets;
      for (const KeyFact& k : rf->keys) {
        std::set<std::string> kv;
        bool ok = true;
        for (size_t p : k.cols) {
          if (p >= a.vars.size()) {
            ok = false;
            break;
          }
          kv.insert(a.vars[p]);
        }
        if (!ok) continue;
        fds_.push_back({kv, all});
        key_sets.push_back(std::move(kv));
      }
      access_keys_.push_back(std::move(key_sets));
    }
  }

  void HandleConstRel(const Atom& a, Scope* scope, int report, int depth) {
    const std::string& v = a.var0;
    bool is_filter = scope->count(v) != 0;
    ColumnFacts vals;
    for (const Value& c : a.const_values) {
      if (c.is_null()) {
        vals.nullable = true;
        continue;
      }
      if (!vals.type.has_value()) vals.type = c.type();
      std::optional<double> d = WidenValue(c, /*as_date=*/false);
      if (d.has_value()) {
        if (!vals.range.lo.has_value() || *d < *vals.range.lo) {
          vals.range.lo = *d;
        }
        if (!vals.range.hi.has_value() || *d > *vals.range.hi) {
          vals.range.hi = *d;
        }
      }
    }
    if (a.const_values.size() == 1) vals.constant = a.const_values[0];
    vals.Note("constant relation [" + std::to_string(a.const_values.size()) +
              " values]");
    if (!is_filter) {
      (*scope)[v] = std::move(vals);
      if (depth == 0) {
        if (a.const_values.size() <= 1) {
          fds_.push_back({{}, {v}});
        } else {
          // Multi-value generator: multiplies rows, values may repeat, so
          // it contributes an unkeyed source.
          access_keys_.push_back({});
        }
      }
      return;
    }
    // Membership filter over an already-bound var: refine type/range.
    ColumnFacts& cur = (*scope)[v];
    if (cur.type.has_value() && vals.type.has_value() &&
        !TypesComparable(*cur.type, *vals.type)) {
      Emit(codes::kTypeMismatch, Severity::kError, report,
           "membership test compares " + std::string(DataTypeName(*cur.type)) +
               " with a list of " + DataTypeName(*vals.type),
           "the filter can never match", Chain2(cur, vals));
    }
    if (vals.range.lo.has_value()) {
      cur.range.TightenLo(*vals.range.lo, false);
    }
    if (vals.range.hi.has_value()) {
      cur.range.TightenHi(*vals.range.hi, false);
    }
    cur.Note("restricted to a " + std::to_string(a.const_values.size()) +
             "-value list");
  }

  void HandleMarker(const Atom& a, Scope* scope) {
    // Outer-join markers make the non-preserved side's columns nullable.
    if (a.ext_name != "outer_left" && a.ext_name != "outer_right" &&
        a.ext_name != "outer_full") {
      return;
    }
    if (top_accesses_.size() < 2) return;
    auto mark = [&](const Atom* access, const char* side) {
      for (const std::string& v : access->vars) {
        auto it = scope->find(v);
        if (it == scope->end()) continue;
        it->second.nullable = true;
        it->second.Note(std::string("may be NULL: ") + side +
                        " side of @" + a.ext_name + " is not preserved");
      }
    };
    if (a.ext_name == "outer_left" || a.ext_name == "outer_full") {
      mark(top_accesses_[1], "right");
    }
    if (a.ext_name == "outer_right" || a.ext_name == "outer_full") {
      mark(top_accesses_[0], "left");
    }
  }

  void HandleCompare(const Atom& a, Scope* scope, int report, int depth) {
    bool is_assignment = a.cmp_op == CmpOp::kEq && scope->count(a.var0) == 0;
    ColumnFacts rhs = EvalTerm(*a.term, *scope, report);
    if (is_assignment) {
      rhs.Note("assigned to '" + a.var0 + "'");
      (*scope)[a.var0] = std::move(rhs);
      if (depth == 0) {
        std::set<std::string> src;
        a.term->CollectVars(&src);
        fds_.push_back({src, {a.var0}});
        if (a.term->kind == Term::Kind::kExt && a.term->ext_name == "uid") {
          uid_vars_.insert(a.var0);
        }
      }
      return;
    }
    // Filter: var0 cmp term.
    ColumnFacts& lhs = (*scope)[a.var0];
    if (lhs.why.empty()) lhs.Note("variable '" + a.var0 + "'");
    bool lhs_date = lhs.type == DataType::kDate;
    if (lhs.type.has_value() && rhs.type.has_value() &&
        !TypesComparable(*lhs.type, *rhs.type)) {
      bool date_str_ok = false;
      if (lhs_date && rhs.constant.has_value() &&
          rhs.constant->type() == DataType::kString) {
        date_str_ok = date_util::Parse(rhs.constant->AsString()).ok();
      }
      if (!date_str_ok) {
        Emit(codes::kTypeMismatch, Severity::kError, report,
             "comparison of '" + a.var0 + "' (" + DataTypeName(*lhs.type) +
                 ") with a " + DataTypeName(*rhs.type) + " operand",
             "operands of incompatible types never compare equal",
             Chain2(lhs, rhs));
      }
    }
    if ((lhs.constant.has_value() && lhs.constant->is_null()) ||
        (rhs.constant.has_value() && rhs.constant->is_null())) {
      Emit(codes::kNullComparison, Severity::kWarning, report,
           "comparison with a provably-NULL operand never matches",
           "SQL three-valued logic makes this predicate always unknown",
           Chain2(lhs, rhs));
    }
    // Always-true / always-false detection against facts accumulated from
    // the *other* atoms seen so far.
    std::optional<bool> outcome;
    std::vector<std::string> chain = Chain2(lhs, rhs);
    if (lhs.constant.has_value() && rhs.constant.has_value()) {
      outcome = EvalCmp(*lhs.constant, a.cmp_op, *rhs.constant);
    }
    std::optional<double> rhs_num;
    if (rhs.constant.has_value()) {
      rhs_num = WidenValue(*rhs.constant, lhs_date);
    }
    if (!outcome.has_value() && rhs_num.has_value()) {
      if (lhs.range.Implies(a.cmp_op, *rhs_num)) outcome = true;
      if (lhs.range.Contradicts(a.cmp_op, *rhs_num)) outcome = false;
    }
    if (outcome.has_value()) {
      if (*outcome) {
        // A NULL operand makes the predicate unknown (row dropped), so a
        // nullable side disproves "always true" — but never "always false".
        if (lhs.nullable || rhs.nullable) return;
        Emit(codes::kAlwaysTruePredicate, Severity::kWarning, report,
             "predicate (" + a.var0 + " " + tondir::CmpOpName(a.cmp_op) +
                 " ...) is provably always true",
             "remove the redundant filter", chain);
      } else {
        Emit(codes::kAlwaysFalsePredicate, Severity::kWarning, report,
             "predicate (" + a.var0 + " " + tondir::CmpOpName(a.cmp_op) +
                 " ...) is provably always false",
             "the rule can never produce rows", chain);
        if (depth == 0) {
          MarkEmpty("always-false predicate on '" + a.var0 + "'");
        }
      }
    }
    // Refinement.
    if (rhs_num.has_value()) {
      switch (a.cmp_op) {
        case CmpOp::kLt: lhs.range.TightenHi(*rhs_num, true); break;
        case CmpOp::kLe: lhs.range.TightenHi(*rhs_num, false); break;
        case CmpOp::kGt: lhs.range.TightenLo(*rhs_num, true); break;
        case CmpOp::kGe: lhs.range.TightenLo(*rhs_num, false); break;
        case CmpOp::kEq:
          lhs.range.TightenLo(*rhs_num, false);
          lhs.range.TightenHi(*rhs_num, false);
          break;
        case CmpOp::kNe: break;
      }
      lhs.Note("filtered: " + a.var0 + " " + tondir::CmpOpName(a.cmp_op) +
               " " + rhs.constant->ToString() + " -> range " +
               lhs.range.ToString());
    }
    if (a.cmp_op == CmpOp::kEq) {
      if (rhs.constant.has_value() && !lhs.constant.has_value()) {
        lhs.constant = rhs.constant;
        lhs.Note("constant " + rhs.constant->ToString() +
                 " via equality filter");
      }
      if (!lhs.type.has_value()) lhs.type = rhs.type;
      // Var-var equality: unify the two bindings (CopyPropagation performs
      // the same unification syntactically later in the pipeline).
      if (a.term->kind == Term::Kind::kVar) {
        auto it = scope->find(a.term->var);
        if (it != scope->end()) {
          ColumnFacts& other = it->second;
          if (!other.type.has_value()) other.type = lhs.type;
          if (!other.constant.has_value()) other.constant = lhs.constant;
          if (lhs.range.lo.has_value()) {
            other.range.TightenLo(*lhs.range.lo, lhs.range.lo_open);
          }
          if (lhs.range.hi.has_value()) {
            other.range.TightenHi(*lhs.range.hi, lhs.range.hi_open);
          }
          if (depth == 0) {
            fds_.push_back({{a.var0}, {a.term->var}});
            fds_.push_back({{a.term->var}, {a.var0}});
          }
        }
      }
    }
  }

  // -- term evaluation ------------------------------------------------------

  ColumnFacts EvalTerm(const Term& t, const Scope& scope, int report) {
    switch (t.kind) {
      case Term::Kind::kVar: {
        auto it = scope.find(t.var);
        if (it != scope.end()) return it->second;
        ColumnFacts f;
        f.Note("unbound variable '" + t.var + "'");
        return f;
      }
      case Term::Kind::kConst: {
        ColumnFacts f;
        f.constant = t.constant;
        if (t.constant.is_null()) {
          f.nullable = true;
          f.Note("NULL literal");
        } else {
          f.type = t.constant.type();
          std::optional<double> d = WidenValue(t.constant, false);
          if (d.has_value()) {
            f.range.lo = f.range.hi = *d;
          }
          f.Note("literal " + t.constant.ToString());
        }
        return f;
      }
      case Term::Kind::kParam: {
        // Parameter slots are opaque by design: the seed literal supplies
        // only the static type, never a constant or interval fact, so no
        // value-dependent rewrite (constant folding, always-true filters,
        // empty-rule caps) can specialize a prepared plan to one binding.
        ColumnFacts f;
        if (!t.constant.is_null()) f.type = t.constant.type();
        f.Note("parameter $p" + std::to_string(t.param_index));
        return f;
      }
      case Term::Kind::kAgg:
        return EvalAgg(t, scope, report);
      case Term::Kind::kExt:
        return EvalExt(t, scope, report);
      case Term::Kind::kIf: {
        ColumnFacts a = EvalTerm(*t.children[1], scope, report);
        ColumnFacts b = EvalTerm(*t.children[2], scope, report);
        EvalTerm(*t.children[0], scope, report);  // diagnostics in the cond
        ColumnFacts f;
        if (a.type.has_value() && b.type.has_value()) {
          if (*a.type == *b.type) {
            f.type = a.type;
          } else if (IsNumeric(*a.type) && IsNumeric(*b.type)) {
            f.type = CommonNumericType(*a.type, *b.type);
          }
        }
        f.nullable = a.nullable || b.nullable;
        if (a.constant.has_value() && b.constant.has_value() &&
            *a.constant == *b.constant) {
          f.constant = a.constant;
        }
        if (a.range.lo.has_value() && b.range.lo.has_value()) {
          f.range.lo = std::min(*a.range.lo, *b.range.lo);
        }
        if (a.range.hi.has_value() && b.range.hi.has_value()) {
          f.range.hi = std::max(*a.range.hi, *b.range.hi);
        }
        f.Note("if(..) merges both branches");
        return f;
      }
      case Term::Kind::kBinary:
        return EvalBinary(t, scope, report);
    }
    return {};
  }

  ColumnFacts EvalAgg(const Term& t, const Scope& scope, int report) {
    ColumnFacts arg = EvalTerm(*t.children[0], scope, report);
    ColumnFacts f;
    switch (t.agg_fn) {
      case AggFn::kCount:
      case AggFn::kCountDistinct:
        f.type = DataType::kInt64;
        f.range.TightenLo(0, false);
        f.Note("count() yields a non-negative int");
        return f;
      case AggFn::kAvg:
        f.type = DataType::kFloat64;
        f.range = arg.range;
        break;
      case AggFn::kSum:
        f.type = arg.type;
        if (arg.range.lo.has_value() && *arg.range.lo >= 0) {
          f.range.TightenLo(0, false);
        }
        break;
      case AggFn::kMin:
      case AggFn::kMax:
        f.type = arg.type;
        f.range = arg.range;
        break;
    }
    f.nullable = arg.nullable;
    f.Note(std::string(tondir::AggFnName(t.agg_fn)) + "() over " +
           (arg.type.has_value() ? DataTypeName(*arg.type) : "?"));
    return f;
  }

  ColumnFacts EvalExt(const Term& t, const Scope& scope, int report) {
    std::vector<ColumnFacts> args;
    args.reserve(t.children.size());
    for (const auto& c : t.children) {
      args.push_back(EvalTerm(*c, scope, report));
    }
    const std::string& f = t.ext_name;
    ColumnFacts r;
    auto string_fn = [&](size_t arity_checked) {
      for (size_t i = 0; i < arity_checked && i < args.size(); ++i) {
        if (args[i].type.has_value() && *args[i].type != DataType::kString) {
          Emit(codes::kStringOpOnNonString, Severity::kWarning, report,
               "string function '" + f + "' applied to a " +
                   DataTypeName(*args[i].type) + " operand",
               "wrap the operand in an explicit conversion", Chain(args[i]));
        }
      }
    };
    if (f == "uid") {
      r.type = DataType::kInt64;
      r.range.TightenLo(0, false);
      r.Note("uid() generates unique non-negative ids");
    } else if (f == "year") {
      r.type = DataType::kInt64;
      r.Note("year() of a date");
    } else if (f == "month") {
      r.type = DataType::kInt64;
      r.range.TightenLo(1, false);
      r.range.TightenHi(12, false);
      r.Note("month() of a date");
    } else if (f == "day") {
      r.type = DataType::kInt64;
      r.range.TightenLo(1, false);
      r.range.TightenHi(31, false);
      r.Note("day() of a date");
    } else if (f == "substr" || f == "lower" || f == "upper" ||
               f == "trim") {
      string_fn(1);
      r.type = DataType::kString;
      r.Note(f + "() yields a string");
    } else if (f == "starts_with" || f == "ends_with" || f == "contains") {
      string_fn(2);
      r.type = DataType::kBool;
      r.Note(f + "() yields a bool");
    } else if (f == "round" || f == "sqrt" || f == "ln" || f == "exp" ||
               f == "power") {
      r.type = DataType::kFloat64;
      r.Note(f + "() yields a float");
    } else if (f == "abs") {
      if (!args.empty()) r.type = args[0].type;
      r.range.TightenLo(0, false);
      r.Note("abs() is non-negative");
    } else if (f == "coalesce") {
      bool all_nullable = true;
      for (const ColumnFacts& a : args) {
        if (!r.type.has_value()) r.type = a.type;
        all_nullable = all_nullable && a.nullable;
      }
      r.nullable = all_nullable;
      r.Note("coalesce() of " + std::to_string(args.size()) + " operands");
    } else {
      r.Note("external function " + f + "() has unknown signature");
    }
    return r;
  }

  ColumnFacts EvalBinary(const Term& t, const Scope& scope, int report) {
    ColumnFacts a = EvalTerm(*t.children[0], scope, report);
    ColumnFacts b = EvalTerm(*t.children[1], scope, report);
    ColumnFacts f;
    f.nullable = a.nullable || b.nullable;
    switch (t.bin_op) {
      case BinOp::kAdd:
      case BinOp::kSub:
      case BinOp::kMul:
      case BinOp::kDiv:
      case BinOp::kMod: {
        for (const ColumnFacts* side : {&a, &b}) {
          if (side->nullable) {
            Emit(codes::kNullableArithmetic, Severity::kWarning, report,
                 "arithmetic on a possibly-NULL operand propagates NULL",
                 "guard with coalesce() or filter NULLs first",
                 Chain(*side));
          }
        }
        if (t.bin_op == BinOp::kDiv || t.bin_op == BinOp::kMod) {
          bool zero = (b.constant.has_value() &&
                       WidenValue(*b.constant, false) == 0.0) ||
                      (b.range.lo.has_value() && b.range.hi.has_value() &&
                       *b.range.lo == 0 && *b.range.hi == 0 &&
                       !b.range.lo_open && !b.range.hi_open);
          if (zero) {
            Emit(codes::kDivisionByZero, Severity::kWarning, report,
                 "divisor is provably zero", "this expression cannot be "
                 "evaluated", Chain(b));
          }
        }
        if (a.type.has_value() && b.type.has_value()) {
          DataType common = CommonNumericType(*a.type, *b.type);
          if (common != DataType::kNull) f.type = common;
        }
        // Interval arithmetic for +/-; products and quotients fold only
        // through constants below.
        if (t.bin_op == BinOp::kAdd) {
          if (a.range.lo.has_value() && b.range.lo.has_value()) {
            f.range.lo = *a.range.lo + *b.range.lo;
            f.range.lo_open = a.range.lo_open || b.range.lo_open;
          }
          if (a.range.hi.has_value() && b.range.hi.has_value()) {
            f.range.hi = *a.range.hi + *b.range.hi;
            f.range.hi_open = a.range.hi_open || b.range.hi_open;
          }
        } else if (t.bin_op == BinOp::kSub) {
          if (a.range.lo.has_value() && b.range.hi.has_value()) {
            f.range.lo = *a.range.lo - *b.range.hi;
            f.range.lo_open = a.range.lo_open || b.range.hi_open;
          }
          if (a.range.hi.has_value() && b.range.lo.has_value()) {
            f.range.hi = *a.range.hi - *b.range.lo;
            f.range.hi_open = a.range.hi_open || b.range.lo_open;
          }
        }
        // Constant folding (int-preserving; int/int division left alone
        // because SQL and Python disagree on its result type).
        if (a.constant.has_value() && b.constant.has_value() &&
            !a.constant->is_null() && !b.constant->is_null()) {
          FoldArith(t.bin_op, *a.constant, *b.constant, &f);
        }
        f.Note(std::string(tondir::BinOpName(t.bin_op)) + " over " +
               (f.type.has_value() ? DataTypeName(*f.type) : "?"));
        return f;
      }
      case BinOp::kAnd:
      case BinOp::kOr: {
        f.type = DataType::kBool;
        auto lit = [](const ColumnFacts& x) -> std::optional<bool> {
          if (x.constant.has_value() &&
              x.constant->type() == DataType::kBool) {
            return x.constant->AsBool();
          }
          return std::nullopt;
        };
        std::optional<bool> la = lit(a), lb = lit(b);
        if (t.bin_op == BinOp::kAnd) {
          if ((la.has_value() && !*la) || (lb.has_value() && !*lb)) {
            f.constant = Value::Bool(false);
          } else if (la.has_value() && lb.has_value()) {
            f.constant = Value::Bool(*la && *lb);
          }
        } else {
          if ((la.has_value() && *la) || (lb.has_value() && *lb)) {
            f.constant = Value::Bool(true);
          } else if (la.has_value() && lb.has_value()) {
            f.constant = Value::Bool(*la || *lb);
          }
        }
        f.Note("boolean connective");
        return f;
      }
      case BinOp::kLike:
      case BinOp::kNotLike: {
        for (const ColumnFacts* side : {&a, &b}) {
          if (side->type.has_value() && *side->type != DataType::kString) {
            Emit(codes::kStringOpOnNonString, Severity::kWarning, report,
                 std::string("'") + tondir::BinOpName(t.bin_op) +
                     "' applied to a " + DataTypeName(*side->type) +
                     " operand",
                 "LIKE requires string operands", Chain(*side));
          }
        }
        f.type = DataType::kBool;
        f.Note("pattern match yields a bool");
        return f;
      }
      case BinOp::kConcat:
        f.type = DataType::kString;
        f.Note("string concatenation");
        return f;
      case BinOp::kEq:
      case BinOp::kNe:
      case BinOp::kLt:
      case BinOp::kLe:
      case BinOp::kGt:
      case BinOp::kGe: {
        f.type = DataType::kBool;
        static constexpr std::pair<BinOp, CmpOp> kMap[] = {
            {BinOp::kEq, CmpOp::kEq}, {BinOp::kNe, CmpOp::kNe},
            {BinOp::kLt, CmpOp::kLt}, {BinOp::kLe, CmpOp::kLe},
            {BinOp::kGt, CmpOp::kGt}, {BinOp::kGe, CmpOp::kGe}};
        if (a.constant.has_value() && b.constant.has_value()) {
          for (const auto& [bop, cop] : kMap) {
            if (bop == t.bin_op) {
              std::optional<bool> r = EvalCmp(*a.constant, cop, *b.constant);
              if (r.has_value()) f.constant = Value::Bool(*r);
            }
          }
        }
        f.Note("comparison yields a bool");
        return f;
      }
    }
    return f;
  }

  static void FoldArith(BinOp op, const Value& a, const Value& b,
                        ColumnFacts* out) {
    bool both_int = a.type() == DataType::kInt64 &&
                    b.type() == DataType::kInt64;
    std::optional<double> da = WidenValue(a, false);
    std::optional<double> db = WidenValue(b, false);
    if (!da.has_value() || !db.has_value()) return;
    double r;
    switch (op) {
      case BinOp::kAdd: r = *da + *db; break;
      case BinOp::kSub: r = *da - *db; break;
      case BinOp::kMul: r = *da * *db; break;
      default: return;  // division/modulo semantics differ across dialects
    }
    out->constant = both_int ? Value::Int64(static_cast<int64_t>(r))
                             : Value::Float64(r);
    out->range.lo = out->range.hi = r;
    out->range.lo_open = out->range.hi_open = false;
    out->Note("constant-folded to " + out->constant->ToString());
  }

  // -- head projection & per-rule deep lints --------------------------------

  void MarkEmpty(std::string why) {
    if (rule_empty_) return;
    rule_empty_ = true;
    rule_empty_why_ = std::move(why);
  }

  /// FD closure of `start` under fds_.
  std::set<std::string> Closure(const std::set<std::string>& start) const {
    std::set<std::string> c = start;
    bool changed = true;
    while (changed) {
      changed = false;
      for (const auto& [from, to] : fds_) {
        if (!std::includes(c.begin(), c.end(), from.begin(), from.end())) {
          continue;
        }
        for (const std::string& v : to) {
          if (c.insert(v).second) changed = true;
        }
      }
    }
    return c;
  }

  /// True when `vars` functionally determines one row of the joined body:
  /// its closure must cover at least one key of every multirow source.
  bool IsRowKey(const std::set<std::string>& vars) const {
    std::set<std::string> c = Closure(vars);
    for (const auto& keys : access_keys_) {
      bool covered = false;
      for (const auto& k : keys) {
        if (std::includes(c.begin(), c.end(), k.begin(), k.end())) {
          covered = true;
          break;
        }
      }
      if (!covered) return false;
    }
    return true;
  }

  void ProjectHead(const Rule& rule, Scope& scope) {
    const auto& head = rule.head;
    RelationFacts rf;
    rf.derived = true;
    if (rule_empty_) {
      rf.provably_empty = true;
      rf.empty_why = rule_empty_why_;
    }
    if (head.limit.has_value() && *head.limit == 0) {
      rf.provably_empty = true;
      if (rf.empty_why.empty()) rf.empty_why = "limit(0)";
    }

    std::map<std::string, size_t> head_pos;
    for (size_t i = 0; i < head.vars.size(); ++i) {
      auto it = scope.find(head.vars[i]);
      rf.columns.push_back(it != scope.end() ? it->second : ColumnFacts{});
      head_pos.emplace(head.vars[i], i);
    }

    bool is_sink = rule_index_ + 1 == program_.rules.size();

    // Keys.
    if (head.limit.has_value() && *head.limit <= 1) {
      rf.keys.push_back({{}, "limit(" + std::to_string(*head.limit) +
                                 ") caps the relation at one row"});
    }
    if (rule.HasAggregate() && !head.has_group()) {
      rf.keys.push_back({{}, "ungrouped aggregate yields a single row"});
    }
    if (head.has_group()) {
      std::set<size_t> gpos;
      bool all_in_head = true;
      for (const std::string& g : head.group_vars) {
        auto it = head_pos.find(g);
        if (it == head_pos.end()) {
          all_in_head = false;
          break;
        }
        gpos.insert(it->second);
      }
      if (all_in_head) {
        rf.keys.push_back(
            {gpos, "group-by keys identify one output row per group"});
      }
      // T029: grouping on a row key of the body means one row per group.
      std::set<std::string> gvars(head.group_vars.begin(),
                                  head.group_vars.end());
      if (options_.diags != nullptr && !access_keys_.empty() &&
          IsRowKey(gvars)) {
        Emit(codes::kRedundantGroupBy, Severity::kWarning, -1,
             "group-by keys already identify a single body row; every "
             "group has exactly one element",
             "the aggregates degenerate to their argument",
             {"group vars form a candidate key of the joined body",
              "derived from the accessed relations' key facts"});
      }
    } else {
      // Body-derived keys (FD reasoning); grouped rules are covered by
      // their group key above.
      std::vector<std::pair<std::set<size_t>, std::string>> cands;
      for (size_t i = 0; i < head.vars.size(); ++i) {
        cands.push_back({{i}, "column " + std::to_string(i) + " ('" +
                                  (i < head.col_names.size()
                                       ? head.col_names[i]
                                       : head.vars[i]) +
                                  "') determines the joined row"});
      }
      if (head.vars.size() > 1) {
        std::set<size_t> all;
        for (size_t i = 0; i < head.vars.size(); ++i) all.insert(i);
        cands.push_back({all, "the full column set determines the row"});
      }
      for (const std::string& u : uid_vars_) {
        auto it = head_pos.find(u);
        if (it != head_pos.end()) {
          rf.keys.push_back({{it->second}, "uid() generates unique ids"});
        }
      }
      if (!access_keys_.empty()) {
        for (auto& [cols, why] : cands) {
          if (rf.KeyWithin(cols) != nullptr) continue;
          std::set<std::string> vars;
          for (size_t p : cols) vars.insert(head.vars[p]);
          if (IsRowKey(vars)) {
            rf.keys.push_back({cols, why + " (FD closure covers a key of "
                                         "every joined source)"});
          }
        }
      }
    }
    if (head.distinct) {
      std::set<size_t> all;
      for (size_t i = 0; i < head.vars.size(); ++i) all.insert(i);
      if (const KeyFact* k = rf.KeyWithin(all)) {
        Emit(codes::kRedundantDistinct, Severity::kWarning, -1,
             "distinct is redundant: rows are already unique",
             "drop the distinct marker", {k->why});
      } else {
        rf.keys.push_back({all, "distinct deduplicates the full row"});
      }
    }

    // T026: constant sort keys.
    for (const auto& sk : head.sort_keys) {
      auto it = scope.find(sk.var);
      if (it != scope.end() && it->second.constant.has_value()) {
        Emit(codes::kConstantSortKey, Severity::kWarning, -1,
             "sort key '" + sk.var + "' is provably constant (" +
                 it->second.constant->ToString() + "); the sort is a no-op",
             "remove the sort key", Chain(it->second));
      }
    }
    // T027 / T032: aggregates and sinks over provably empty inputs.
    if (rule_empty_) {
      if (rule.HasAggregate()) {
        Emit(codes::kAggregateOverEmpty, Severity::kWarning, -1,
             "aggregate over provably empty input",
             "the aggregate yields NULL / zero rows", {rule_empty_why_});
      }
      if (is_sink) {
        Emit(codes::kEmptyResult, Severity::kWarning, -1,
             "sink relation '" + head.relation + "' is provably empty",
             "the query always returns zero rows", {rule_empty_why_});
      }
    }

    facts_.relations[head.relation] = std::move(rf);
  }

  // -- whole-program post pass ---------------------------------------------

  /// T024: a column of a derived, non-sink relation that no reader ever
  /// uses (its binding variable is dead in every reading rule).
  void CheckUnreachableColumns() {
    std::map<std::string, size_t> definer;
    for (size_t i = 0; i < program_.rules.size(); ++i) {
      definer.emplace(program_.rules[i].head.relation, i);
    }
    const std::string sink = program_.rules.empty()
                                 ? std::string()
                                 : program_.rules.back().head.relation;
    // relation -> positions still unused by every reader seen so far.
    std::map<std::string, std::set<size_t>> unused;
    std::map<std::string, size_t> reader_count;
    auto visit_access = [&](const Rule& rule, const Atom& a) {
      auto def = definer.find(a.relation);
      if (def == definer.end() || a.relation == sink) return;
      ++reader_count[a.relation];
      auto [it, fresh] = unused.try_emplace(a.relation);
      if (fresh) {
        for (size_t p = 0; p < a.vars.size(); ++p) it->second.insert(p);
      }
      std::set<size_t> still;
      for (size_t p : it->second) {
        if (p < a.vars.size() && CountRuleUses(rule, a.vars[p]) <= 1) {
          still.insert(p);
        }
      }
      it->second = std::move(still);
    };
    std::function<void(const Rule&, const Body&)> walk =
        [&](const Rule& rule, const Body& body) {
          for (const Atom& a : body) {
            if (a.kind == Atom::Kind::kRelAccess) visit_access(rule, a);
            if (a.kind == Atom::Kind::kExists) walk(rule, *a.exists_body);
          }
        };
    for (const Rule& r : program_.rules) walk(r, r.body);
    for (const auto& [rel, positions] : unused) {
      if (positions.empty() || reader_count[rel] == 0) continue;
      const Rule& def = program_.rules[definer[rel]];
      std::string cols;
      for (size_t p : positions) {
        if (!cols.empty()) cols += ", ";
        cols += "'" + (p < def.head.col_names.size() ? def.head.col_names[p]
                                                     : std::to_string(p)) +
                "'";
      }
      rule_index_ = definer[rel];
      Emit(codes::kUnreachableColumn, Severity::kWarning, -1,
           "column(s) " + cols + " of '" + rel +
               "' are computed but never used by any reader",
           "drop the dead columns from the head",
           {"every reader of '" + rel + "' binds these positions to "
            "variables that appear nowhere else in the reading rule",
            std::to_string(reader_count[rel]) + " reader(s) checked"});
    }
  }

  const Program& program_;
  const AnalyzeOptions& options_;
  ProgramFacts facts_;

  // Per-rule state.
  size_t rule_index_ = 0;
  bool rule_empty_ = false;
  std::string rule_empty_why_;
  std::vector<std::pair<std::set<std::string>, std::set<std::string>>> fds_;
  std::vector<std::vector<std::set<std::string>>> access_keys_;
  std::vector<const Atom*> top_accesses_;
  std::set<std::string> uid_vars_;
};

}  // namespace

ProgramFacts AnalyzeProgram(const Program& program,
                            const AnalyzeOptions& options) {
  obs::Span span(options.trace, "dataflow", "phase");
  ProgramFacts facts = Analyzer(program, options).Run();
  span.AddCounter("relations", static_cast<int64_t>(facts.relations.size()));
  span.AddCounter("facts", static_cast<int64_t>(facts.CountFacts()));
  size_t keys = 0, empty = 0;
  for (const auto& [rel, rf] : facts.relations) {
    keys += rf.keys.size();
    empty += rf.provably_empty ? 1 : 0;
  }
  span.AddCounter("keys", static_cast<int64_t>(keys));
  span.AddCounter("empty_relations", static_cast<int64_t>(empty));
  return facts;
}

}  // namespace pytond::analysis::dataflow
