#ifndef PYTOND_ANALYSIS_DATAFLOW_DATAFLOW_H_
#define PYTOND_ANALYSIS_DATAFLOW_DATAFLOW_H_

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "analysis/diagnostics.h"
#include "common/value.h"
#include "tondir/ir.h"

namespace pytond::obs {
class TraceCollector;
}

namespace pytond::analysis::dataflow {

/// Numeric interval over the double-widened value domain (int64, float64,
/// bool as 0/1, date as days since epoch). An unset bound is unbounded;
/// `*_open` marks a strict (exclusive) bound.
struct Interval {
  std::optional<double> lo;
  std::optional<double> hi;
  bool lo_open = false;
  bool hi_open = false;

  bool Unbounded() const { return !lo.has_value() && !hi.has_value(); }
  /// True when no value satisfies the bounds (lo > hi, or lo == hi with an
  /// open end).
  bool Empty() const;
  void TightenLo(double v, bool open);
  void TightenHi(double v, bool open);
  /// True when *every* value in the interval satisfies `op v`.
  bool Implies(tondir::CmpOp op, double v) const;
  /// True when *no* value in the interval satisfies `op v`.
  bool Contradicts(tondir::CmpOp op, double v) const;
  /// "[0.05, 0.07]", "(5, +inf)", "(-inf, +inf)".
  std::string ToString() const;
};

/// Abstract facts about one column / variable: the lattice element of the
/// forward dataflow analysis (DESIGN.md §10). Every field over-approximates
/// the concrete value set, so refinements are always sound to apply.
struct ColumnFacts {
  std::optional<DataType> type;   // unset = unknown
  bool nullable = false;          // may hold NULL (outer joins, NULL consts)
  std::optional<Value> constant;  // provably this single value
  Interval range;                 // numeric/date/bool value bounds
  std::vector<std::string> why;   // inference chain (provenance), in order

  void Note(std::string s) { why.push_back(std::move(s)); }
  /// Numeric rendering of `constant` if it is comparable on the double
  /// domain (int/float/bool/date, or a string that parses as a date when
  /// the column type is kDate).
  std::optional<double> ConstantAsDouble() const;
};

/// One candidate key: the column positions in `cols` jointly determine the
/// row. An empty `cols` set means the relation holds at most one row.
struct KeyFact {
  std::set<size_t> cols;
  std::string why;  // the fact that justifies the key (provenance)
};

/// Facts about one relation (extensional or derived).
struct RelationFacts {
  std::vector<ColumnFacts> columns;
  std::vector<KeyFact> keys;
  bool derived = false;  // defined by a rule (vs extensional/base)
  bool provably_empty = false;
  std::string empty_why;

  /// True when column `pos` alone is a candidate key (a unique column).
  bool IsUniqueColumn(size_t pos) const;
  /// First candidate key that is a subset of `cols`, or nullptr. A key
  /// within `cols` proves that rows agreeing on `cols` are identical.
  const KeyFact* KeyWithin(const std::set<size_t>& cols) const;
};

/// Result of AnalyzeProgram: the per-relation fact lattice.
struct ProgramFacts {
  std::map<std::string, RelationFacts> relations;

  const RelationFacts* Find(const std::string& rel) const;
  /// Human-readable per-relation lattice dump (`tondlint --facts`).
  std::string Dump() const;
  /// Number of non-trivial facts (typed columns + nullable flags +
  /// constants + bounded ranges + keys) — obs span counter fodder.
  size_t CountFacts() const;
};

struct AnalyzeOptions {
  /// Extensional relations beyond the keys of program.base_columns. Any
  /// relation that is read but not defined by a rule is treated as a base
  /// relation either way; listing it here merely suppresses no facts.
  std::set<std::string> base_relations;
  /// When set, the deep diagnostic tier T020..T032 is appended here. Each
  /// emitted diagnostic carries a non-empty `notes` inference chain.
  std::vector<Diagnostic>* diags = nullptr;
  /// Optional tracing: emits one "dataflow" span (category "phase") with
  /// counters relations/facts/keys/empty.
  obs::TraceCollector* trace = nullptr;
};

/// Forward abstract interpretation over `program`: walks rules in order
/// (TondIR requires definition before use), interprets each body atom over
/// the per-variable fact lattice, and projects head facts into the
/// per-relation map. Facts for underived (extensional) relations are seeded
/// from base_column_types and relation_info.unique_positions — the declared
/// catalog ground truth; facts for derived relations are *derived
/// structurally only* and never trust relation_info, which is what makes
/// them safe to gate optimizer rewrites on.
ProgramFacts AnalyzeProgram(const tondir::Program& program,
                            const AnalyzeOptions& options = {});

/// Evaluates `lhs op rhs` over constants where both sides are comparable
/// (numeric/date widened to double, or string = string). Returns nullopt
/// when the values are not comparable (including any NULL operand).
std::optional<bool> EvalCmp(const Value& lhs, tondir::CmpOp op,
                            const Value& rhs);

}  // namespace pytond::analysis::dataflow

#endif  // PYTOND_ANALYSIS_DATAFLOW_DATAFLOW_H_
