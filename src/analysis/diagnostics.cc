#include "analysis/diagnostics.h"

#include <sstream>

namespace pytond::analysis {

const char* SeverityName(Severity s) {
  return s == Severity::kError ? "error" : "warning";
}

std::string Diagnostic::ToString() const {
  std::ostringstream os;
  if (!node.empty()) {
    os << node << ": ";
  } else if (rule_index >= 0) {
    os << "rule " << rule_index;
    if (atom_index >= 0) os << ", atom " << atom_index;
    os << ": ";
  } else if (line >= 0) {
    os << "line " << line << ": ";
  }
  os << SeverityName(severity) << "[" << code << "]: " << message;
  if (!fix_hint.empty()) os << " (hint: " << fix_hint << ")";
  return os.str();
}

bool HasErrors(const std::vector<Diagnostic>& diags) {
  for (const Diagnostic& d : diags) {
    if (d.severity == Severity::kError) return true;
  }
  return false;
}

std::string FormatDiagnostics(const std::vector<Diagnostic>& diags) {
  std::string out;
  for (const Diagnostic& d : diags) {
    out += d.ToString();
    out += "\n";
  }
  return out;
}

Status FirstError(const std::vector<Diagnostic>& diags) {
  for (const Diagnostic& d : diags) {
    if (d.severity == Severity::kError) {
      return Status::InvalidArgument(d.ToString());
    }
  }
  return Status::OK();
}

}  // namespace pytond::analysis
