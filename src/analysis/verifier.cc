#include "analysis/verifier.h"

#include <algorithm>
#include <cstddef>
#include <map>
#include <tuple>
#include <vector>

#include "analysis/dataflow/dataflow.h"

namespace pytond::analysis {

using tondir::Atom;
using tondir::Body;
using tondir::CmpOp;
using tondir::Program;
using tondir::Rule;
using tondir::Term;

namespace {

constexpr size_t kUnknownArity = static_cast<size_t>(-1);

bool IsOuterMarker(const Atom& a) {
  return a.kind == Atom::Kind::kExternal && a.ext_name.rfind("outer_", 0) == 0;
}

bool TermHasUid(const Term& t) {
  if (t.kind == Term::Kind::kExt && t.ext_name == "uid") return true;
  for (const auto& c : t.children) {
    if (TermHasUid(*c)) return true;
  }
  return false;
}

/// True if the term may appear in the select list of a grouped/aggregated
/// rule: aggregates cover their arguments, everything else must bottom out
/// in `safe` vars (group vars or previously safe assignments) or constants.
bool GroupSafeTerm(const Term& t, const std::set<std::string>& safe) {
  switch (t.kind) {
    case Term::Kind::kAgg:
    case Term::Kind::kConst:
      return true;
    case Term::Kind::kVar:
      return safe.count(t.var) > 0;
    default:
      for (const auto& c : t.children) {
        if (!GroupSafeTerm(*c, safe)) return false;
      }
      return true;
  }
}

class Verifier {
 public:
  Verifier(const Program& program, const VerifyOptions& options)
      : program_(program), options_(options) {}

  std::vector<Diagnostic> Run() {
    for (const auto& [rel, cols] : program_.base_columns) {
      relations_[rel] = cols.size();
    }
    for (const std::string& rel : options_.base_relations) {
      relations_.try_emplace(rel, kUnknownArity);
    }
    for (size_t i = 0; i < program_.rules.size(); ++i) {
      const Rule& rule = program_.rules[i];
      VerifyRule(i, rule);
      // Define the head relation for subsequent rules (strict rule order:
      // readers must come after definers, like Program::Validate enforced).
      auto [it, inserted] =
          relations_.try_emplace(rule.head.relation, rule.head.vars.size());
      (void)it;
      if (!inserted) {
        Emit(codes::kRelationRedefined, Severity::kError, i, -1,
             "relation '" + rule.head.relation +
                 "' is already defined (by an earlier rule or as a base "
                 "relation)",
             "give the rule a fresh relation name");
      }
    }
    CheckReachability();
    return std::move(diags_);
  }

 private:
  void Emit(const char* code, Severity severity, int rule_index,
            int atom_index, std::string message, std::string hint = "") {
    Diagnostic d;
    d.code = code;
    d.severity = severity;
    d.rule_index = rule_index;
    d.atom_index = atom_index;
    d.message = std::move(message);
    d.fix_hint = std::move(hint);
    diags_.push_back(std::move(d));
  }

  // ------------------------------------------------------------- rules

  void VerifyRule(size_t idx, const Rule& rule) {
    bool is_sink = idx + 1 == program_.rules.size();
    int i = static_cast<int>(idx);

    // Variables bound only inside exists(..) bodies, for T007 refinement.
    exists_pool_.clear();
    CollectExistsDefined(rule.body, /*inside_exists=*/false, &exists_pool_);

    std::set<std::string> defined =
        VerifyBody(idx, rule.body, /*outer_defined=*/{}, /*depth=*/0);

    for (const std::string& v : rule.head.vars) {
      if (defined.count(v)) continue;
      if (exists_pool_.count(v)) {
        Emit(codes::kExistsLeak, Severity::kError, i, -1,
             "head var '" + v + "' is only bound inside an exists(..) body",
             "exists(..) filters rows but binds no variables in the outer "
             "rule; bind '" + v + "' with a relation access or assignment");
      } else {
        Emit(codes::kUndefinedHeadVar, Severity::kError, i, -1,
             "head var '" + v + "' not defined in body",
             "bind '" + v + "' in a relation access or an assignment");
      }
    }
    for (const std::string& v : rule.head.group_vars) {
      if (!defined.count(v)) {
        Emit(codes::kUndefinedGroupVar, Severity::kError, i, -1,
             "group var '" + v + "' not defined in body");
      }
    }
    if (!rule.head.col_names.empty() &&
        rule.head.col_names.size() != rule.head.vars.size()) {
      Emit(codes::kColNamesArity, Severity::kError, i, -1,
           "head has " + std::to_string(rule.head.vars.size()) +
               " vars but " + std::to_string(rule.head.col_names.size()) +
               " col_names");
    }
    if (rule.head.has_sort()) {
      if (!is_sink && !rule.head.limit.has_value()) {
        Emit(codes::kSortWithoutLimitNotSink, Severity::kError, i, -1,
             "sort without limit on a non-sink rule",
             "add limit(n) to make it a top-N CTE, or move the sort to the "
             "sink rule");
      }
      for (const auto& key : rule.head.sort_keys) {
        bool in_head = false;
        for (const std::string& v : rule.head.vars) {
          if (v == key.var) {
            in_head = true;
            break;
          }
        }
        if (!in_head) {
          Emit(codes::kSortKeyNotInHead, Severity::kError, i, -1,
               "sort key '" + key.var + "' not among head vars",
               "project the sort key in the head");
        }
      }
    }
    CheckGroupConsistency(idx, rule);
  }

  /// T008: in a grouped or aggregating rule, every head var must be a group
  /// var, an aggregate result, or an expression over such vars — mirroring
  /// SQL's GROUP BY projection rule.
  void CheckGroupConsistency(size_t idx, const Rule& rule) {
    if (!rule.head.has_group() && !rule.HasAggregate()) return;
    std::set<std::string> safe(rule.head.group_vars.begin(),
                               rule.head.group_vars.end());
    // Classify assignments the way sqlgen does: relation-access vars are
    // bound up-front, compare targets become assignments when still fresh.
    std::set<std::string> defined;
    for (const Atom& a : rule.body) {
      if (a.kind == Atom::Kind::kRelAccess) {
        defined.insert(a.vars.begin(), a.vars.end());
      }
    }
    for (const Atom& a : rule.body) {
      if (a.kind == Atom::Kind::kConstRel) {
        defined.insert(a.var0);
      } else if (a.kind == Atom::Kind::kCompare && a.term &&
                 a.cmp_op == CmpOp::kEq && !defined.count(a.var0)) {
        if (GroupSafeTerm(*a.term, safe)) safe.insert(a.var0);
        defined.insert(a.var0);
      }
    }
    for (const std::string& v : rule.head.vars) {
      if (!safe.count(v)) {
        Emit(codes::kUngroupedHeadVar, Severity::kError, static_cast<int>(idx),
             -1,
             "head var '" + v +
                 "' of a grouped/aggregate rule is neither a group var nor "
                 "derived from aggregates",
             "add '" + v + "' to group(..) or aggregate it");
      }
    }
  }

  // ------------------------------------------------------------- bodies

  /// Walks one body level (the rule body, or an exists(..) sub-body at
  /// depth > 0) and returns the variables bound at this level (plus the
  /// inherited outer ones). Mirrors sqlgen's scoping: relation accesses
  /// bind up-front, constant relations and assignments bind in order,
  /// exists(..) binds nothing in its enclosing body.
  std::set<std::string> VerifyBody(size_t rule_idx, const Body& body,
                                   const std::set<std::string>& outer_defined,
                                   int depth) {
    int i = static_cast<int>(rule_idx);
    std::set<std::string> defined = outer_defined;
    bool has_access = false;
    for (size_t j = 0; j < body.size(); ++j) {
      const Atom& a = body[j];
      if (a.kind == Atom::Kind::kRelAccess) {
        has_access = true;
        CheckAccess(rule_idx, j, a);
        defined.insert(a.vars.begin(), a.vars.end());
      }
    }
    CheckMarkers(rule_idx, body);

    std::set<std::string> agg_derived;
    bool uses_uid = false;
    for (size_t j = 0; j < body.size(); ++j) {
      const Atom& a = body[j];
      int aj = static_cast<int>(j);
      switch (a.kind) {
        case Atom::Kind::kRelAccess:
        case Atom::Kind::kExternal:
          break;
        case Atom::Kind::kConstRel:
          CheckConstRel(rule_idx, j, a);
          defined.insert(a.var0);
          break;
        case Atom::Kind::kCompare: {
          if (!a.term) break;
          if (TermHasUid(*a.term)) uses_uid = true;
          CheckTermAggs(rule_idx, j, *a.term, depth, /*inside_agg=*/false);
          std::set<std::string> term_vars;
          a.term->CollectVars(&term_vars);
          for (const std::string& v : term_vars) {
            CheckVarDefined(rule_idx, j, v, defined);
          }
          bool term_has_agg = a.term->ContainsAgg();
          bool touches_agg = term_has_agg;
          for (const std::string& v : term_vars) {
            if (agg_derived.count(v)) touches_agg = true;
          }
          bool is_assign = a.cmp_op == CmpOp::kEq && !defined.count(a.var0);
          if (is_assign) {
            defined.insert(a.var0);
            if (touches_agg) agg_derived.insert(a.var0);
          } else {
            CheckVarDefined(rule_idx, j, a.var0, defined);
            if (depth == 0 && (touches_agg || agg_derived.count(a.var0))) {
              Emit(codes::kAggregateOutsideAssignment, Severity::kError, i, aj,
                   "filter references an aggregate",
                   "aggregate filters (HAVING) must live in a separate rule "
                   "reading the aggregated relation");
            }
          }
          break;
        }
        case Atom::Kind::kExists:
          VerifyBody(rule_idx, *a.exists_body, defined, depth + 1);
          break;
      }
    }
    if (uses_uid && !has_access) {
      Emit(codes::kUidWithoutAccess, Severity::kError, i, -1,
           "uid() requires a relation access in the same body to anchor its "
           "ordering");
    }
    return defined;
  }

  void CheckVarDefined(size_t rule_idx, size_t atom_idx, const std::string& v,
                       const std::set<std::string>& defined) {
    if (defined.count(v)) return;
    int i = static_cast<int>(rule_idx), j = static_cast<int>(atom_idx);
    if (exists_pool_.count(v)) {
      Emit(codes::kExistsLeak, Severity::kError, i, j,
           "variable '" + v + "' is only bound inside an exists(..) body",
           "exists(..) binds no variables outside its own body");
    } else {
      Emit(codes::kUndefinedVar, Severity::kError, i, j,
           "use of undefined variable '" + v + "'",
           "bind '" + v + "' with a relation access or an earlier "
           "assignment");
    }
  }

  void CheckAccess(size_t rule_idx, size_t atom_idx, const Atom& a) {
    int i = static_cast<int>(rule_idx), j = static_cast<int>(atom_idx);
    auto it = relations_.find(a.relation);
    if (it == relations_.end()) {
      if (!options_.implicit_bases) {
        Emit(codes::kUndefinedRelation, Severity::kError, i, j,
             "reads undefined relation '" + a.relation + "'",
             "define it with an earlier rule or declare it with "
             "'@base " + a.relation + "(..).'");
      }
      // Record the first-seen arity either way so later accesses are
      // checked for consistency instead of re-reporting T001.
      relations_[a.relation] = a.vars.size();
      return;
    }
    if (it->second == kUnknownArity) {
      it->second = a.vars.size();
      return;
    }
    if (it->second != a.vars.size()) {
      Emit(codes::kArityMismatch, Severity::kError, i, j,
           "relation '" + a.relation + "' accessed with " +
               std::to_string(a.vars.size()) + " vars but has " +
               std::to_string(it->second) + " columns");
    }
  }

  void CheckConstRel(size_t rule_idx, size_t atom_idx, const Atom& a) {
    int i = static_cast<int>(rule_idx), j = static_cast<int>(atom_idx);
    if (a.const_values.empty()) {
      Emit(codes::kConstRelEmpty, Severity::kError, i, j,
           "constant relation '" + a.var0 + "' has no values",
           "a VALUES clause needs at least one row");
      return;
    }
    DataType type = DataType::kNull;
    for (const Value& v : a.const_values) {
      if (v.is_null()) continue;
      if (type == DataType::kNull) {
        type = v.type();
      } else if (v.type() != type) {
        Emit(codes::kConstRelHeterogeneous, Severity::kError, i, j,
             "constant relation '" + a.var0 + "' mixes " +
                 DataTypeName(type) + " and " + DataTypeName(v.type()),
             "constant columns must be type-homogeneous");
        break;
      }
    }
  }

  void CheckTermAggs(size_t rule_idx, size_t atom_idx, const Term& t,
                     int depth, bool inside_agg) {
    int i = static_cast<int>(rule_idx), j = static_cast<int>(atom_idx);
    if (t.kind == Term::Kind::kAgg) {
      if (inside_agg) {
        Emit(codes::kNestedAggregate, Severity::kError, i, j,
             "nested aggregate '" + std::string(AggFnName(t.agg_fn)) + "(..)'",
             "split the inner aggregate into its own rule");
      }
      if (depth > 0) {
        Emit(codes::kAggregateOutsideAssignment, Severity::kError, i, j,
             "aggregate inside an exists(..) body",
             "aggregate in a separate rule and test the result instead");
      }
      inside_agg = true;
    }
    for (const auto& c : t.children) {
      CheckTermAggs(rule_idx, atom_idx, *c, depth, inside_agg);
    }
  }

  /// Outer-join marker invariants at one body level (mirrors sqlgen's
  /// ProcessOuterJoin preconditions).
  void CheckMarkers(size_t rule_idx, const Body& body) {
    int i = static_cast<int>(rule_idx);
    std::vector<size_t> markers;
    std::set<std::string> access_vars;
    size_t accesses = 0;
    for (size_t j = 0; j < body.size(); ++j) {
      const Atom& a = body[j];
      if (a.kind == Atom::Kind::kRelAccess) {
        ++accesses;
        access_vars.insert(a.vars.begin(), a.vars.end());
      } else if (IsOuterMarker(a)) {
        markers.push_back(j);
      } else if (a.kind == Atom::Kind::kExternal) {
        Emit(codes::kUnknownMarker, Severity::kWarning, i,
             static_cast<int>(j),
             "unknown marker atom '@" + a.ext_name + "(..)' is ignored by "
             "codegen");
      }
    }
    if (markers.empty()) return;
    if (markers.size() > 1) {
      Emit(codes::kBadOuterMarker, Severity::kError, i,
           static_cast<int>(markers[1]),
           "multiple outer-join markers in one body; codegen honors only "
           "one");
    }
    const Atom& m = body[markers[0]];
    int mj = static_cast<int>(markers[0]);
    if (m.ext_name != "outer_left" && m.ext_name != "outer_right" &&
        m.ext_name != "outer_full") {
      Emit(codes::kBadOuterMarker, Severity::kError, i, mj,
           "unsupported outer-join marker '@" + m.ext_name + "'",
           "use @outer_left, @outer_right or @outer_full");
    }
    if (accesses != 2) {
      Emit(codes::kBadOuterMarker, Severity::kError, i, mj,
           "outer-join body has " + std::to_string(accesses) +
               " relation accesses; exactly two are required");
    }
    if (m.vars.empty() || m.vars.size() % 2 != 0) {
      Emit(codes::kBadOuterMarker, Severity::kError, i, mj,
           "outer-join marker needs a non-empty, even list of key vars "
           "(left/right pairs)");
    }
    for (const std::string& v : m.vars) {
      if (!access_vars.count(v)) {
        Emit(codes::kBadOuterMarker, Severity::kError, i, mj,
             "outer-join key '" + v + "' is not bound by either relation "
             "access");
      }
    }
  }

  // ----------------------------------------------------------- program

  void CollectExistsDefined(const Body& body, bool inside_exists,
                            std::set<std::string>* out) {
    for (const Atom& a : body) {
      if (a.kind == Atom::Kind::kExists) {
        CollectExistsDefined(*a.exists_body, true, out);
      } else if (inside_exists) {
        if (a.kind == Atom::Kind::kRelAccess) {
          out->insert(a.vars.begin(), a.vars.end());
        } else if (a.kind == Atom::Kind::kConstRel) {
          out->insert(a.var0);
        } else if (a.kind == Atom::Kind::kCompare &&
                   a.cmp_op == CmpOp::kEq) {
          out->insert(a.var0);
        }
      }
    }
  }

  /// T015: warn about rules whose result can never reach the sink.
  void CheckReachability() {
    if (program_.rules.size() < 2) return;
    std::map<std::string, std::vector<size_t>> defs;
    for (size_t i = 0; i < program_.rules.size(); ++i) {
      defs[program_.rules[i].head.relation].push_back(i);
    }
    std::set<size_t> reachable;
    std::vector<size_t> work = {program_.rules.size() - 1};
    reachable.insert(program_.rules.size() - 1);
    auto visit_body = [&](const Body& body, auto&& self) -> void {
      for (const Atom& a : body) {
        if (a.kind == Atom::Kind::kRelAccess) {
          auto it = defs.find(a.relation);
          if (it == defs.end()) continue;
          for (size_t d : it->second) {
            if (reachable.insert(d).second) work.push_back(d);
          }
        } else if (a.kind == Atom::Kind::kExists) {
          self(*a.exists_body, self);
        }
      }
    };
    while (!work.empty()) {
      size_t r = work.back();
      work.pop_back();
      visit_body(program_.rules[r].body, visit_body);
    }
    for (size_t i = 0; i + 1 < program_.rules.size(); ++i) {
      if (!reachable.count(i)) {
        Emit(codes::kDeadRule, Severity::kWarning, static_cast<int>(i), -1,
             "rule for '" + program_.rules[i].head.relation +
                 "' is not reachable from the sink",
             "global dead-code elimination will remove it");
      }
    }
  }

  const Program& program_;
  const VerifyOptions& options_;
  std::vector<Diagnostic> diags_;
  /// Known relations -> arity (kUnknownArity until first access fixes it).
  std::map<std::string, size_t> relations_;
  /// Vars bound inside exists(..) bodies of the rule under verification.
  std::set<std::string> exists_pool_;
};

}  // namespace

std::vector<Diagnostic> VerifyProgram(const Program& program,
                                      const VerifyOptions& options) {
  std::vector<Diagnostic> diags = Verifier(program, options).Run();
  // Deep (fact-based) tier: only meaningful on structurally valid programs;
  // the dataflow walker assumes definition-before-use holds.
  if (options.deep_lints && !HasErrors(diags)) {
    dataflow::AnalyzeOptions ao;
    ao.base_relations = options.base_relations;
    ao.diags = &diags;
    dataflow::AnalyzeProgram(program, ao);
    std::stable_sort(diags.begin(), diags.end(),
                     [](const Diagnostic& a, const Diagnostic& b) {
                       return std::tie(a.rule_index, a.atom_index) <
                              std::tie(b.rule_index, b.atom_index);
                     });
  }
  return diags;
}

}  // namespace pytond::analysis

namespace pytond::tondir {

// Thin wrapper over the semantic verifier (defined here so the tondir
// library itself stays dependency-free; callers of Validate link
// pytond_analysis).
Status Program::Validate(const std::set<std::string>& base_relations) const {
  analysis::VerifyOptions options;
  options.base_relations = base_relations;
  return analysis::FirstError(analysis::VerifyProgram(*this, options));
}

}  // namespace pytond::tondir
