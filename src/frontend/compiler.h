#ifndef PYTOND_FRONTEND_COMPILER_H_
#define PYTOND_FRONTEND_COMPILER_H_

#include <optional>
#include <string>
#include <vector>

#include "analysis/diagnostics.h"
#include "common/status.h"
#include "frontend/parameterize.h"
#include "frontend/translate/translator.h"
#include "obs/trace.h"
#include "optimizer/passes.h"
#include "sqlgen/sqlgen.h"
#include "storage/catalog.h"

namespace pytond::frontend {

/// End-to-end compilation options.
struct CompileOptions {
  /// Optimization preset 0..4 (paper Figure 10: 0 = Grizzly-simulated,
  /// 4 = full PyTond).
  int optimization_level = 4;
  sqlgen::SqlDialect dialect = sqlgen::SqlDialect::kDuck;
  /// Overridden per-function by the decorator's layout= kwarg.
  TensorLayout layout = TensorLayout::kDense;
  /// Run the TondIR semantic verifier on the translator output before
  /// optimizing; a violation there is a translator bug (Internal error).
  bool verify = true;
  /// Also run the dataflow deep-lint tier (T020-T032) during verification;
  /// warnings land in Compiled::diagnostics rather than failing the
  /// compile. Requires verify.
  bool deep_lints = false;
  /// Run the frontend translatability analyzer (F001-F015, DESIGN.md §11)
  /// over the ANF program before translation. F-errors abort the compile
  /// with a located message; F-warnings join Compiled::diagnostics ahead of
  /// the verifier's T-warnings. The analyzer's liveness facts also gate
  /// translate-time region fusion (logged in Compiled::rewrite_log).
  bool frontend_checks = true;
  /// Serve-path auto-parameterization (DESIGN.md §14): rewrite
  /// filter-shaped literals into typed parameter slots before analysis,
  /// so the emitted SQL carries `$pN` placeholders and the compiled
  /// artifact lists the slots in Compiled::params. Value-dependent
  /// optimizations see opaque parameters and simply don't fire, which is
  /// what keeps one prepared plan correct for every binding.
  bool parameterize = false;
  /// Forwarded to OptimizerOptions::verify_each_pass. Unset = keep the
  /// optimizer's build-type default (on in debug, off in release).
  std::optional<bool> verify_each_pass;
  /// Optional tracing: the whole pipeline opens a "compile" span with one
  /// "phase" child per stage (parse, anf, translate, verify, optimize —
  /// with per-pass children — and sqlgen). Null = no instrumentation.
  obs::TraceCollector* trace = nullptr;
};

/// A compiled @pytond function.
struct Compiled {
  std::string function_name;
  std::string sql;
  std::string tondir_before;  // IR before optimization (debugging/tests)
  std::string tondir_after;   // IR after optimization
  std::vector<std::string> output_columns;
  /// Verifier warnings (never errors — those abort the compile). Cached
  /// compiles must re-emit these on every hit, so they are stored here
  /// rather than printed.
  std::vector<analysis::Diagnostic> diagnostics;
  /// One line per fact-gated optimizer rewrite, naming the pass, rule, and
  /// justifying dataflow fact (DESIGN.md §10).
  std::vector<std::string> rewrite_log;
  /// Parameter slots extracted by auto-parameterization, in `$pN` order
  /// (empty unless CompileOptions::parameterize). The SQL references slot
  /// N as `$pN`; execution binds QueryOptions::params positionally.
  std::vector<ParamSlot> params;
};

/// Compiles every @pytond-decorated function in `source` against the
/// catalog: parse -> ANF -> type-informed translation to TondIR ->
/// optimization -> SQL codegen (the full Figure 1 pipeline).
Result<std::vector<Compiled>> CompileModule(const std::string& source,
                                            const Catalog& catalog,
                                            const CompileOptions& options = {});

/// Convenience: compiles a module expected to contain exactly one
/// decorated function.
Result<Compiled> CompileFunction(const std::string& source,
                                 const Catalog& catalog,
                                 const CompileOptions& options = {});

}  // namespace pytond::frontend

#endif  // PYTOND_FRONTEND_COMPILER_H_
