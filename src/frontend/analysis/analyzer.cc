#include "frontend/analysis/analyzer.h"

#include <algorithm>
#include <cctype>
#include <set>
#include <sstream>

#include "frontend/anf/anf.h"
#include "frontend/pylang/parser.h"
#include "frontend/translate/einsum.h"

namespace pytond::frontend::check {

namespace codes = pytond::analysis::codes;
using analysis::Diagnostic;
using analysis::Severity;
using py::Expr;
using py::ExprPtr;
using py::Stmt;

const char* TranslatabilityName(Translatability t) {
  switch (t) {
    case Translatability::kTranslatable: return "translatable";
    case Translatability::kFlowBreaker: return "flow-breaker";
    case Translatability::kUntranslatable: return "untranslatable";
  }
  return "?";
}

const char* ValueKindName(ValueKind k) {
  switch (k) {
    case ValueKind::kFrame: return "frame";
    case ValueKind::kColumn: return "column";
    case ValueKind::kScalar: return "scalar";
    case ValueKind::kGroupBy: return "groupby";
    case ValueKind::kStrList: return "list";
    case ValueKind::kUnknown: return "unknown";
  }
  return "?";
}

int FrameSchema::Find(const std::string& name) const {
  for (size_t i = 0; i < columns.size(); ++i) {
    if (columns[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

std::string FrameSchema::ToString() const {
  if (!columns_known) return "(?)";
  std::string s = "(";
  for (size_t i = 0; i < columns.size(); ++i) {
    if (i > 0) s += ", ";
    s += columns[i].name;
    if (columns[i].type != DataType::kNull) {
      s += ": ";
      s += DataTypeName(columns[i].type);
    }
  }
  s += ")";
  return s;
}

const BindingFacts* FunctionFacts::Find(const std::string& name,
                                        int before_stmt) const {
  const BindingFacts* best = nullptr;
  for (const BindingFacts& b : bindings) {
    if (b.name != name) continue;
    if (before_stmt >= 0 && b.stmt_index > before_stmt) continue;
    best = &b;
  }
  return best;
}

bool FunctionFacts::DiesAt(const std::string& name, int stmt_index) const {
  // The binding a *use* at `stmt_index` refers to was defined strictly
  // before it (a redefinition at `stmt_index` shadows only afterwards).
  const BindingFacts* best = nullptr;
  for (const BindingFacts& b : bindings) {
    if (b.name != name || b.stmt_index >= stmt_index) continue;
    best = &b;
  }
  return best != nullptr && best->last_use_stmt == stmt_index;
}

std::string FunctionFacts::Dump() const {
  std::ostringstream os;
  os << "function " << function_name << ":\n";
  for (const BindingFacts& b : bindings) {
    os << "  " << b.name << ": " << ValueKindName(b.kind);
    if (b.kind == ValueKind::kFrame || b.kind == ValueKind::kGroupBy) {
      os << " " << b.schema.ToString();
      if (b.schema.is_array) os << " array[order " << b.schema.order << "]";
    }
    os << " <- " << (b.op.empty() ? "?" : b.op) << " ["
       << TranslatabilityName(b.klass);
    if (!b.reason.empty()) os << ": " << b.reason;
    os << "] line " << b.line << ", uses=" << b.uses
       << ", last_use=" << b.last_use_stmt
       << (b.returned ? ", returned" : "") << "\n";
    for (const std::string& w : b.why) os << "      . " << w << "\n";
  }
  return os.str();
}

namespace {

/// Levenshtein distance, for nearest-name fix hints.
size_t EditDistance(const std::string& a, const std::string& b) {
  std::vector<size_t> prev(b.size() + 1), cur(b.size() + 1);
  for (size_t j = 0; j <= b.size(); ++j) prev[j] = j;
  for (size_t i = 1; i <= a.size(); ++i) {
    cur[0] = i;
    for (size_t j = 1; j <= b.size(); ++j) {
      size_t sub = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
    }
    std::swap(prev, cur);
  }
  return prev[b.size()];
}

std::string Nearest(const std::string& name,
                    const std::vector<std::string>& candidates) {
  std::string best;
  size_t best_d = name.size() / 2 + 2;
  for (const std::string& c : candidates) {
    size_t d = EditDistance(name, c);
    if (d < best_d) {
      best_d = d;
      best = c;
    }
  }
  return best;
}

/// Abstract value of one mini-Python expression (the analyzer's analogue
/// of the translator's TValue).
struct AValue {
  ValueKind kind = ValueKind::kUnknown;
  FrameSchema schema;               // kFrame / kGroupBy / kColumn owner
  int frame_id = -1;                // relation identity (masks must match)
  DataType type = DataType::kNull;  // kColumn / kScalar element type
  std::vector<std::string> group_keys;  // kGroupBy
  std::vector<std::string> restricted;  // groupby(..)[cols]
  std::vector<std::string> strings;     // kStrList string items
  std::vector<DataType> item_types;     // kStrList item types
  bool empty_frame = false;             // pd.DataFrame()
  bool is_mask = false;                 // boolean column
  bool has_isin = false;                // mask carries EXISTS payloads
  bool str_ctx = false;
  bool dt_ctx = false;
  bool flow_breaker = false;            // producing op ends a region
  std::string fb_reason;
  std::string op;                       // producing operation label
  std::string col_name;                 // kColumn: name when directly selected
  Value lit;                            // kScalar: literal payload
  bool has_lit = false;
};

AValue Unknown() { return AValue{}; }

bool IsModuleName(const std::string& n) {
  return n == "np" || n == "numpy" || n == "pd" || n == "pandas";
}

DataType AggResultType(const std::string& fn, DataType in) {
  if (fn == "count" || fn == "nunique" || fn == "count_distinct") {
    return DataType::kInt64;
  }
  if (fn == "mean" || fn == "avg") return DataType::kFloat64;
  return in;  // sum / min / max
}

const std::vector<std::string>& AggFnNames() {
  static const std::vector<std::string> kNames = {
      "sum", "min", "max", "mean", "avg", "count", "nunique",
      "count_distinct"};
  return kNames;
}

bool IsAggFnName(const std::string& fn) {
  const auto& ns = AggFnNames();
  return std::count(ns.begin(), ns.end(), fn) > 0;
}

class Analyzer {
 public:
  explicit Analyzer(const AnalyzerOptions& options) : options_(options) {}

  FunctionFacts Run(const py::Function& fn) {
    facts_.function_name = fn.name;
    BindParams(fn);
    bool returned = false;
    for (size_t i = 0; i < fn.body.size(); ++i) {
      const Stmt& stmt = fn.body[i];
      cur_stmt_ = static_cast<int>(i);
      cur_line_ = stmt.line > 0 ? stmt.line : cur_line_;
      cur_uses_.clear();
      why_.clear();
      if (stmt.kind == Stmt::Kind::kReturn) {
        ExecReturn(stmt);
        returned = true;
        break;
      }
      ExecAssign(stmt);
    }
    if (!returned) {
      Emit(codes::kBadReturn, Severity::kError, StatusCode::kInvalidArgument,
           cur_line_ > 0 ? cur_line_ : 1, "function has no return statement",
           "end the @pytond function with `return <frame>`",
           {"every @pytond function must produce a result relation"});
    }
    PropagateReturned();
    FinalLints();
    return std::move(facts_);
  }

 private:
  // ------------------------------------------------------------ facts
  void Note(std::string s) { why_.push_back(std::move(s)); }

  void Emit(const char* code, Severity sev, StatusCode sc, int line,
            std::string msg, std::string hint,
            std::vector<std::string> notes) {
    Diagnostic d;
    d.code = code;
    d.severity = sev;
    d.line = line > 0 ? line : (cur_line_ > 0 ? cur_line_ : 1);
    d.message = std::move(msg);
    d.fix_hint = std::move(hint);
    d.notes = std::move(notes);
    for (const std::string& w : why_) d.notes.push_back(w);
    if (d.notes.empty()) {
      d.notes.push_back("while analyzing statement " +
                        std::to_string(cur_stmt_) + " of function '" +
                        facts_.function_name + "'");
    }
    if (sev == Severity::kError) {
      ++error_count_;
      if (facts_.error_status.ok()) {
        facts_.error_status = Status(sc, d.ToString());
      }
    }
    facts_.diagnostics.push_back(std::move(d));
  }

  int LineOf(const Expr& e) const { return e.line > 0 ? e.line : cur_line_; }

  std::vector<std::string> ColumnNames(const FrameSchema& s) const {
    std::vector<std::string> out;
    for (const ColumnInfo& c : s.columns) out.push_back(c.name);
    return out;
  }

  DataType ColType(const FrameSchema& s, const std::string& name) const {
    int i = s.Find(name);
    return i < 0 ? DataType::kNull : s.columns[i].type;
  }

  int FreshFrame() { return ++next_frame_id_; }

  void BindParams(const py::Function& fn) {
    for (const std::string& param : fn.params) {
      AValue v;
      BindingFacts b;
      b.name = param;
      b.line = 1;
      b.stmt_index = -1;
      b.op = "param";
      const Table* t =
          options_.catalog ? options_.catalog->GetTable(param) : nullptr;
      if (t == nullptr) {
        Emit(codes::kUnknownTable, Severity::kError, StatusCode::kNotFound, 1,
             "parameter '" + param + "' has no catalog table",
             options_.catalog
                 ? "declare the table (or a '# @base " + param +
                       "(col:type, ...)' directive) before analyzing"
                 : "add a '# @base " + param +
                       "(col:type, ...)' directive so tondcheck knows the "
                       "schema",
             {"@pytond parameters bind to database tables of the same name "
              "(paper §III-A)"});
        v.kind = ValueKind::kUnknown;
        b.kind = ValueKind::kUnknown;
        b.klass = Translatability::kUntranslatable;
        b.reason = "no catalog table for parameter";
      } else {
        v.kind = ValueKind::kFrame;
        v.frame_id = FreshFrame();
        const Schema& s = t->schema();
        for (size_t i = 0; i < s.names.size(); ++i) {
          v.schema.columns.push_back({s.names[i], s.types[i]});
        }
        v.schema.has_id = !s.names.empty() && s.names[0] == "id";
        if (options_.layout == TensorLayout::kSparse &&
            s.names.size() == 3 && s.names[0] == "row_id") {
          v.schema.is_array = true;
          v.schema.order = 2;
        }
        b.kind = ValueKind::kFrame;
        b.schema = v.schema;
        b.why.push_back("schema " + v.schema.ToString() +
                        " from catalog table '" + param + "'");
      }
      v.op = "param";
      env_[param] = v;
      binding_idx_[param] = static_cast<int>(facts_.bindings.size());
      deps_.push_back({});
      shadow_warned_.push_back(false);
      facts_.bindings.push_back(std::move(b));
    }
  }

  void UseBinding(const std::string& name) {
    auto it = binding_idx_.find(name);
    if (it == binding_idx_.end()) return;
    BindingFacts& b = facts_.bindings[it->second];
    ++b.uses;
    b.last_use_stmt = cur_stmt_;
    cur_uses_.insert(it->second);
  }

  void DefineBinding(const std::string& name, const AValue& v, int line) {
    auto prev = binding_idx_.find(name);
    if (prev != binding_idx_.end()) {
      BindingFacts& old = facts_.bindings[prev->second];
      if (old.uses == 0 && old.stmt_index >= 0) {
        shadow_warned_[prev->second] = true;
        Emit(codes::kShadowedBinding, Severity::kWarning, StatusCode::kOk,
             line,
             "'" + name + "' reassigned before the value bound at line " +
                 std::to_string(old.line) + " was ever read",
             "drop the earlier assignment",
             {"binding '" + name + "' defined at line " +
              std::to_string(old.line) + " has zero uses at this point"});
      }
    }
    BindingFacts b;
    b.name = name;
    b.line = line;
    b.stmt_index = cur_stmt_;
    b.kind = v.kind;
    b.schema = v.schema;
    b.op = v.op;
    b.group_keys = v.group_keys;
    if (error_count_ > errors_at_stmt_start_) {
      b.klass = Translatability::kUntranslatable;
      b.reason = facts_.diagnostics.empty()
                     ? "analysis error"
                     : facts_.diagnostics.back().message;
    } else if (v.flow_breaker) {
      b.klass = Translatability::kFlowBreaker;
      b.reason = v.fb_reason;
    }
    b.why = why_;
    binding_idx_[name] = static_cast<int>(facts_.bindings.size());
    deps_.push_back(std::vector<int>(cur_uses_.begin(), cur_uses_.end()));
    shadow_warned_.push_back(false);
    facts_.bindings.push_back(std::move(b));
  }

  void PropagateReturned() {
    // Seed: bindings read by the return statement; then close over deps.
    std::vector<int> work(return_uses_.begin(), return_uses_.end());
    for (int i : work) facts_.bindings[i].returned = true;
    while (!work.empty()) {
      int i = work.back();
      work.pop_back();
      for (int d : deps_[i]) {
        if (!facts_.bindings[d].returned) {
          facts_.bindings[d].returned = true;
          work.push_back(d);
        }
      }
    }
  }

  void FinalLints() {
    why_.clear();
    for (size_t i = 0; i < facts_.bindings.size(); ++i) {
      const BindingFacts& b = facts_.bindings[i];
      bool anf_temp = b.name.rfind("_v", 0) == 0;
      if (b.kind == ValueKind::kFrame && b.stmt_index >= 0 && b.uses == 0 &&
          !b.returned && !shadow_warned_[i] && !anf_temp) {
        Emit(codes::kDeadBinding, Severity::kWarning, StatusCode::kOk, b.line,
             "dataframe binding '" + b.name +
                 "' is never used and does not reach the return",
             "delete the assignment",
             {"liveness: uses=0, not in the return's dependency closure"});
      }
      if (options_.report_flow_breakers &&
          b.klass == Translatability::kFlowBreaker) {
        std::vector<std::string> notes = {
            "flow breakers (aggregate / group-by / distinct) end a maximal "
            "translatable region (paper §III-B)"};
        for (const std::string& w : b.why) notes.push_back(w);
        Emit(codes::kFlowBreaker, Severity::kWarning, StatusCode::kOk, b.line,
             "'" + b.name + "' (" + b.op +
                 ") is a flow breaker: " + b.reason,
             "", std::move(notes));
      }
    }
  }

  // ------------------------------------------------------------ stmts
  void ExecAssign(const Stmt& stmt) {
    errors_at_stmt_start_ = error_count_;
    if (stmt.target->kind == Expr::Kind::kName) {
      AValue v = Eval(stmt.value);
      DefineBinding(stmt.target->name, v, stmt.line);
      env_[stmt.target->name] = std::move(v);
      return;
    }
    ExecSubscriptAssign(stmt);
  }

  void ExecSubscriptAssign(const Stmt& stmt) {
    const Expr& target = *stmt.target;
    if (target.kind != Expr::Kind::kSubscript ||
        target.children[0]->kind != Expr::Kind::kName) {
      Emit(codes::kUnsupportedApi, Severity::kError, StatusCode::kUnsupported,
           stmt.line, "unsupported assignment target " + target.ToString(),
           "assign to a name or df['col']", {});
      return;
    }
    const std::string& df_name = target.children[0]->name;
    const Expr& idx = *target.children[1];
    if (idx.kind != Expr::Kind::kLiteral ||
        idx.literal.type() != DataType::kString) {
      Emit(codes::kNonLiteralArgument, Severity::kError,
           StatusCode::kUnsupported, stmt.line,
           "column assignment target must be a string literal, got " +
               idx.ToString(),
           "", {"translation needs the new column's name at compile time"});
      return;
    }
    const std::string col = idx.literal.AsString();
    auto it = env_.find(df_name);
    if (it == env_.end()) {
      Emit(codes::kUndefinedName, Severity::kError, StatusCode::kNotFound,
           stmt.line, "undefined variable '" + df_name + "'", "", {});
      return;
    }
    UseBinding(df_name);
    AValue value = Eval(stmt.value);
    AValue& dst = it->second;
    AValue out;
    out.kind = ValueKind::kFrame;
    out.op = "assign-column";
    if (dst.kind == ValueKind::kUnknown || value.kind == ValueKind::kUnknown) {
      out.kind = ValueKind::kUnknown;  // poisoned upstream; stay quiet
    } else if (value.kind != ValueKind::kColumn &&
               value.kind != ValueKind::kScalar) {
      Emit(codes::kUnsupportedApi, Severity::kError, StatusCode::kUnsupported,
           stmt.line,
           "column assignment value must be a column or scalar, got " +
               std::string(ValueKindName(value.kind)),
           "", {});
    } else if (dst.empty_frame) {
      if (value.kind != ValueKind::kColumn) {
        Emit(codes::kUnsupportedApi, Severity::kError,
             StatusCode::kUnsupported, stmt.line,
             "first column must come from a frame", "", {});
      } else {
        out.schema.columns = {{col, value.type}};
        out.frame_id = FreshFrame();
        append_src_[df_name] = value.frame_id;
        Note("new frame from column '" + col + "'");
      }
    } else if (dst.kind != ValueKind::kFrame) {
      Emit(codes::kUnsupportedApi, Severity::kError, StatusCode::kUnsupported,
           stmt.line,
           "subscript assignment on a " +
               std::string(ValueKindName(dst.kind)),
           "", {});
    } else if (value.kind == ValueKind::kScalar ||
               value.frame_id == dst.frame_id) {
      // Same-frame column append / replacement.
      out.schema = dst.schema;
      int existing = out.schema.Find(col);
      if (existing >= 0) {
        out.schema.columns[existing].type = value.type;
        Note("replaced column '" + col + "' in place");
      } else {
        out.schema.columns.push_back({col, value.type});
        Note("appended column '" + col + "' (same-frame, no join needed)");
      }
      out.frame_id = FreshFrame();
    } else {
      // Implicit join through UID columns (paper §III-C).
      out.schema = EnsureId(dst.schema);
      out.schema.columns.push_back({col, value.type});
      out.frame_id = FreshFrame();
      Note("appended column '" + col +
           "' via implicit UID join (value derives from another frame)");
    }
    DefineBinding(df_name, out, stmt.line);
    env_[df_name] = std::move(out);
  }

  void ExecReturn(const Stmt& stmt) {
    errors_at_stmt_start_ = error_count_;
    AValue v = Eval(stmt.value);
    return_uses_ = cur_uses_;
    if (v.kind == ValueKind::kUnknown) return;  // poisoned upstream
    if (v.kind != ValueKind::kFrame && v.kind != ValueKind::kColumn) {
      Emit(codes::kBadReturn, Severity::kError, StatusCode::kUnsupported,
           stmt.line,
           "return value must be a DataFrame/array, got " +
               std::string(ValueKindName(v.kind)),
           "return a frame, column, or array", {});
    }
  }

  // ------------------------------------------------------------ helpers
  static const ExprPtr* FindKwarg(const Expr& call, const std::string& name) {
    for (const auto& [k, v] : call.kwargs) {
      if (k == name) return &v;
    }
    return nullptr;
  }

  /// Literal string argument; emits F014 otherwise.
  bool LitString(const ExprPtr& e, const std::string& what,
                 std::string* out) {
    if (e->kind == Expr::Kind::kLiteral &&
        e->literal.type() == DataType::kString) {
      *out = e->literal.AsString();
      return true;
    }
    Emit(codes::kNonLiteralArgument, Severity::kError,
         StatusCode::kUnsupported, LineOf(*e),
         what + " must be a string literal, got " + e->ToString(), "",
         {"translation resolves " + what + " at compile time"});
    return false;
  }

  bool LitStringList(const ExprPtr& e, const std::string& what,
                     std::vector<std::string>* out) {
    if (e->kind == Expr::Kind::kLiteral) {
      std::string s;
      if (!LitString(e, what, &s)) return false;
      out->push_back(s);
      return true;
    }
    if (e->kind == Expr::Kind::kList || e->kind == Expr::Kind::kTuple) {
      for (const ExprPtr& c : e->children) {
        std::string s;
        if (!LitString(c, what, &s)) return false;
        out->push_back(s);
      }
      return true;
    }
    Emit(codes::kNonLiteralArgument, Severity::kError,
         StatusCode::kUnsupported, LineOf(*e),
         what + " must be a string or list of strings, got " + e->ToString(),
         "", {});
    return false;
  }

  /// True when `col` exists or the schema is unknown; F001 otherwise.
  bool CheckColumn(const FrameSchema& s, const std::string& col,
                   const std::string& what, int line,
                   Severity sev = Severity::kError) {
    if (!s.columns_known || s.Find(col) >= 0) return true;
    std::string near = Nearest(col, ColumnNames(s));
    Emit(codes::kUnknownColumn, sev, StatusCode::kNotFound, line,
         what + " '" + col + "' not found in schema " + s.ToString(),
         near.empty() ? "" : "did you mean '" + near + "'?",
         {"schema inferred as " + s.ToString()});
    return false;
  }

  FrameSchema EnsureId(const FrameSchema& s) {
    if (s.has_id) return s;
    FrameSchema out;
    out.columns.push_back({"id", DataType::kInt64});
    for (const ColumnInfo& c : s.columns) out.columns.push_back(c);
    out.columns_known = s.columns_known;
    out.is_array = s.is_array;
    out.order = s.order;
    out.has_id = true;
    return out;
  }

  // ------------------------------------------------------------ eval
  AValue Eval(const ExprPtr& e) {
    switch (e->kind) {
      case Expr::Kind::kName:
        return EvalName(*e);
      case Expr::Kind::kLiteral: {
        AValue v;
        v.kind = ValueKind::kScalar;
        v.type = e->literal.type();
        v.lit = e->literal;
        v.has_lit = true;
        v.op = "literal";
        return v;
      }
      case Expr::Kind::kList:
      case Expr::Kind::kTuple:
        return EvalList(*e);
      case Expr::Kind::kAttribute:
        return EvalAttribute(*e);
      case Expr::Kind::kSubscript:
        return EvalSubscript(*e);
      case Expr::Kind::kCall:
        return EvalCall(*e);
      case Expr::Kind::kBinOp:
      case Expr::Kind::kCompare:
      case Expr::Kind::kBoolOp:
        return EvalBinary(*e);
      case Expr::Kind::kUnary:
        return EvalUnary(*e);
    }
    return Unknown();
  }

  AValue EvalName(const Expr& e) {
    auto it = env_.find(e.name);
    if (it != env_.end()) {
      UseBinding(e.name);
      return it->second;
    }
    if (IsModuleName(e.name)) {
      AValue v;
      v.op = "module";
      return v;
    }
    std::vector<std::string> known;
    for (const auto& [n, _] : env_) known.push_back(n);
    std::string near = Nearest(e.name, known);
    Emit(codes::kUndefinedName, Severity::kError, StatusCode::kNotFound,
         LineOf(e), "undefined variable '" + e.name + "'",
         near.empty() ? "" : "did you mean '" + near + "'?",
         {"names in scope: function parameters and prior assignments"});
    return Unknown();
  }

  AValue EvalList(const Expr& e) {
    AValue v;
    v.kind = ValueKind::kStrList;
    v.op = "list";
    for (const ExprPtr& c : e.children) {
      if (c->kind != Expr::Kind::kLiteral) {
        Emit(codes::kNonLiteralArgument, Severity::kError,
             StatusCode::kUnsupported, LineOf(e),
             "non-literal list item: " + c->ToString(),
             "list arguments must hold literals only",
             {"the translator materializes list arguments at compile time"});
        return Unknown();
      }
      v.item_types.push_back(c->literal.type());
      if (c->literal.type() == DataType::kString) {
        v.strings.push_back(c->literal.AsString());
      }
    }
    return v;
  }

  AValue EvalAttribute(const Expr& e) {
    const std::string& attr = e.name;
    AValue base = Eval(e.children[0]);
    if (base.kind == ValueKind::kUnknown) return Unknown();
    if (base.kind == ValueKind::kFrame) {
      if (attr == "values") return MarkArray(std::move(base), LineOf(e));
      if (!CheckColumn(base.schema, attr, "column", LineOf(e))) {
        return Unknown();
      }
      AValue v;
      v.kind = ValueKind::kColumn;
      v.schema = base.schema;
      v.frame_id = base.frame_id;
      v.type = ColType(base.schema, attr);
      v.col_name = attr;
      v.is_mask = v.type == DataType::kBool;
      v.op = "column";
      return v;
    }
    if (base.kind == ValueKind::kColumn) {
      if (attr == "str") {
        base.str_ctx = true;
        return base;
      }
      if (attr == "dt") {
        base.dt_ctx = true;
        return base;
      }
      if (base.dt_ctx &&
          (attr == "year" || attr == "month" || attr == "day")) {
        base.dt_ctx = false;
        base.type = DataType::kInt64;
        base.col_name.clear();
        return base;
      }
      Emit(codes::kUnsupportedApi, Severity::kError, StatusCode::kUnsupported,
           LineOf(e), "attribute '" + attr + "' on a column",
           "supported column namespaces: .str, .dt (.year/.month/.day)", {});
      return Unknown();
    }
    Emit(codes::kUnsupportedApi, Severity::kError, StatusCode::kUnsupported,
         LineOf(e),
         "attribute '" + attr + "' on a " +
             std::string(ValueKindName(base.kind)),
         "", {});
    return Unknown();
  }

  AValue MarkArray(AValue v, int line) {
    if (v.kind != ValueKind::kFrame) {
      Emit(codes::kUnsupportedApi, Severity::kError, StatusCode::kUnsupported,
           line, "to_numpy() needs a DataFrame", "", {});
      return Unknown();
    }
    bool had_id = v.schema.has_id;
    v.schema = EnsureId(v.schema);
    v.schema.is_array = true;
    v.schema.order =
        v.schema.columns_known ? (v.schema.data_width() == 1 ? 1 : 2) : 2;
    if (!had_id) v.frame_id = FreshFrame();
    v.op = "to_numpy";
    Note("array of order " + std::to_string(v.schema.order) + " over " +
         v.schema.ToString());
    return v;
  }

  AValue EvalSubscript(const Expr& e) {
    AValue base = Eval(e.children[0]);
    AValue index = Eval(e.children[1]);
    if (base.kind == ValueKind::kUnknown) return Unknown();
    if (base.kind == ValueKind::kGroupBy &&
        index.kind == ValueKind::kStrList) {
      for (const std::string& c : index.strings) {
        CheckColumn(base.schema, c, "groupby selection column", LineOf(e));
      }
      base.restricted = index.strings;
      return base;
    }
    if (base.kind != ValueKind::kFrame) {
      Emit(codes::kUnsupportedApi, Severity::kError, StatusCode::kUnsupported,
           LineOf(e),
           "subscript on a " + std::string(ValueKindName(base.kind)), "", {});
      return Unknown();
    }
    if (index.kind == ValueKind::kScalar &&
        index.has_lit && index.lit.type() == DataType::kString) {
      const std::string col = index.lit.AsString();
      if (!CheckColumn(base.schema, col, "column", LineOf(e))) {
        return Unknown();
      }
      AValue v;
      v.kind = ValueKind::kColumn;
      v.schema = base.schema;
      v.frame_id = base.frame_id;
      v.type = ColType(base.schema, col);
      v.col_name = col;
      v.is_mask = v.type == DataType::kBool;
      v.op = "column";
      return v;
    }
    if (index.kind == ValueKind::kStrList) {
      AValue v;
      v.kind = ValueKind::kFrame;
      v.op = "project";
      v.frame_id = FreshFrame();
      v.schema.columns_known = base.schema.columns_known;
      v.schema.is_array = base.schema.is_array;
      bool all_ok = true;
      for (const std::string& c : index.strings) {
        if (!CheckColumn(base.schema, c, "projected column", LineOf(e))) {
          all_ok = false;
          continue;
        }
        v.schema.columns.push_back({c, ColType(base.schema, c)});
      }
      if (!all_ok) return Unknown();
      v.schema.has_id =
          !v.schema.columns.empty() && v.schema.columns[0].name == "id";
      Note("projection of " + std::to_string(index.strings.size()) +
           " columns from " + base.schema.ToString());
      return v;
    }
    if (index.kind == ValueKind::kColumn) {
      if (index.frame_id != base.frame_id) {
        Emit(codes::kCrossFrameOp, Severity::kError, StatusCode::kUnsupported,
             LineOf(e),
             "boolean mask must derive from the frame being filtered",
             "merge the frames first, then filter the merged frame",
             {"the mask was computed over a different relation than the "
              "subscripted frame",
              "relational translation has no positional row alignment "
              "between independent frames (paper §III-B)"});
        return Unknown();
      }
      AValue v = base;
      v.frame_id = FreshFrame();
      v.op = "filter";
      v.empty_frame = false;
      Note("filter keeps schema " + base.schema.ToString());
      return v;
    }
    if (index.kind == ValueKind::kUnknown) return Unknown();
    Emit(codes::kUnsupportedApi, Severity::kError, StatusCode::kUnsupported,
         LineOf(e), "unsupported subscript index " + e.children[1]->ToString(),
         "index with a column name, a list of names, or a boolean mask", {});
    return Unknown();
  }

  AValue EvalUnary(const Expr& e) {
    AValue v = Eval(e.children[0]);
    if (v.kind == ValueKind::kUnknown) return Unknown();
    if (e.op == "~") {
      if (v.kind == ValueKind::kColumn || v.kind == ValueKind::kScalar) {
        v.is_mask = true;
        v.type = DataType::kBool;
        v.col_name.clear();
        v.op = "negate";
        return v;
      }
      Emit(codes::kUnsupportedApi, Severity::kError, StatusCode::kUnsupported,
           LineOf(e), "~ on a " + std::string(ValueKindName(v.kind)),
           "~ applies to boolean masks", {});
      return Unknown();
    }
    if (v.kind == ValueKind::kColumn || v.kind == ValueKind::kScalar) {
      v.col_name.clear();
      v.op = "negate";
      return v;
    }
    Emit(codes::kUnsupportedApi, Severity::kError, StatusCode::kUnsupported,
         LineOf(e),
         "unary " + e.op + " on a " + std::string(ValueKindName(v.kind)), "",
         {});
    return Unknown();
  }

  AValue EvalBinary(const Expr& e) {
    AValue l = Eval(e.children[0]);
    AValue r = Eval(e.children[1]);
    if (l.kind == ValueKind::kUnknown || r.kind == ValueKind::kUnknown) {
      return Unknown();
    }
    if (e.op == "&" &&
        (l.has_isin || r.has_isin || (l.is_mask && r.is_mask))) {
      if (l.kind == ValueKind::kColumn && r.kind == ValueKind::kColumn &&
          l.frame_id != r.frame_id) {
        Emit(codes::kCrossFrameOp, Severity::kError, StatusCode::kUnsupported,
             LineOf(e), "mask conjunction across frames",
             "build both mask sides over the same frame",
             {"left and right masks range over different relations"});
        return Unknown();
      }
      AValue out;
      out.kind = ValueKind::kColumn;
      out.schema = l.kind == ValueKind::kColumn ? l.schema : r.schema;
      out.frame_id =
          l.kind == ValueKind::kColumn ? l.frame_id : r.frame_id;
      out.type = DataType::kBool;
      out.is_mask = true;
      out.has_isin = l.has_isin || r.has_isin;
      out.op = "mask";
      return out;
    }
    if ((l.kind == ValueKind::kFrame && l.schema.is_array) ||
        (r.kind == ValueKind::kFrame && r.schema.is_array)) {
      return ArrayBinary(e.op, l, r, LineOf(e));
    }
    if ((l.kind != ValueKind::kColumn && l.kind != ValueKind::kScalar) ||
        (r.kind != ValueKind::kColumn && r.kind != ValueKind::kScalar)) {
      Emit(codes::kUnsupportedApi, Severity::kError, StatusCode::kUnsupported,
           LineOf(e),
           "operands of '" + e.op + "' must be columns or scalars (got " +
               ValueKindName(l.kind) + " and " + ValueKindName(r.kind) + ")",
           "", {});
      return Unknown();
    }
    if (l.kind == ValueKind::kColumn && r.kind == ValueKind::kColumn &&
        l.frame_id != r.frame_id) {
      Emit(codes::kCrossFrameOp, Severity::kError, StatusCode::kUnsupported,
           LineOf(e), "column arithmetic across different frames",
           "merge the frames, then combine columns of the merged frame",
           {"'" + e.op + "' needs both columns in one relation; independent "
            "frames have no shared row identity"});
      return Unknown();
    }
    static const std::set<std::string> kCmp = {"==", "!=", "<",
                                               "<=", ">",  ">="};
    static const std::set<std::string> kArith = {"+", "-",  "*", "/",
                                                 "//", "%", "**"};
    bool is_cmp = kCmp.count(e.op) > 0;
    bool is_bool = e.op == "&" || e.op == "|";
    if (!is_cmp && !is_bool && kArith.count(e.op) == 0) {
      Emit(codes::kUnsupportedApi, Severity::kError, StatusCode::kUnsupported,
           LineOf(e), "operator '" + e.op + "'", "", {});
      return Unknown();
    }
    if (is_cmp) CheckComparisonTypes(l, r, e);
    AValue out;
    out.kind = (l.kind == ValueKind::kColumn || r.kind == ValueKind::kColumn)
                   ? ValueKind::kColumn
                   : ValueKind::kScalar;
    const AValue& owner = l.kind == ValueKind::kColumn ? l : r;
    out.schema = owner.schema;
    out.frame_id = owner.frame_id;
    if (is_cmp || is_bool) {
      out.type = DataType::kBool;
      out.is_mask = true;
    } else if (e.op == "/" || e.op == "**") {
      out.type = DataType::kFloat64;
    } else {
      out.type = CommonNumericType(l.type, r.type);
    }
    out.op = is_cmp || is_bool ? "mask" : "column-expr";
    return out;
  }

  void CheckComparisonTypes(const AValue& l, const AValue& r, const Expr& e) {
    auto numeric = [](DataType t) {
      return t == DataType::kInt64 || t == DataType::kFloat64;
    };
    bool bad = (l.type == DataType::kString && numeric(r.type)) ||
               (r.type == DataType::kString && numeric(l.type));
    if (!bad) return;
    Emit(codes::kTypeIncompatible, Severity::kError, StatusCode::kTypeError,
         LineOf(e),
         "type-incompatible comparison: " +
             std::string(DataTypeName(l.type)) + " " + e.op + " " +
             DataTypeName(r.type),
         "cast one side explicitly (astype) or compare like types",
         {"left operand inferred as " + std::string(DataTypeName(l.type)) +
              (l.col_name.empty() ? "" : " (column '" + l.col_name + "')"),
          "right operand inferred as " + std::string(DataTypeName(r.type)) +
              (r.col_name.empty() ? "" : " (column '" + r.col_name + "')")});
  }

  AValue ArrayBinary(const std::string& op, const AValue& l, const AValue& r,
                     int line) {
    static const std::set<std::string> kOps = {"+", "-", "*", "/"};
    if (kOps.count(op) == 0) {
      Emit(codes::kUnsupportedApi, Severity::kError, StatusCode::kUnsupported,
           line, "array operator '" + op + "'", "", {});
      return Unknown();
    }
    auto array_scalar = [&](const AValue& a) {
      AValue v = a;
      v.frame_id = FreshFrame();
      v.op = "array-map";
      Note("elementwise '" + op + "' maps over each data column");
      return v;
    };
    if (l.kind == ValueKind::kFrame && r.kind == ValueKind::kScalar) {
      return array_scalar(l);
    }
    if (r.kind == ValueKind::kFrame && l.kind == ValueKind::kScalar) {
      return array_scalar(r);
    }
    if (l.kind == ValueKind::kFrame && r.kind == ValueKind::kFrame) {
      if (l.schema.columns_known && r.schema.columns_known) {
        if (l.schema.data_width() != r.schema.data_width()) {
          Emit(codes::kUnsupportedApi, Severity::kError,
               StatusCode::kUnsupported, line,
               "array arithmetic shape mismatch (" +
                   std::to_string(l.schema.data_width()) + " vs " +
                   std::to_string(r.schema.data_width()) + " data columns)",
               "", {});
          return Unknown();
        }
        if (op != "*") {
          Emit(codes::kUnsupportedApi, Severity::kError,
               StatusCode::kUnsupported, line,
               "array-array operator '" + op + "' (only * is lowered)", "",
               {});
          return Unknown();
        }
      }
      AValue v = l;
      v.frame_id = FreshFrame();
      v.op = "array-hadamard";
      return v;
    }
    Emit(codes::kUnsupportedApi, Severity::kError, StatusCode::kUnsupported,
         line, "array operands of '" + op + "'", "", {});
    return Unknown();
  }

  // ------------------------------------------------------------ calls
  AValue EvalCall(const Expr& e) {
    const ExprPtr& callee = e.children[0];
    if (callee->kind == Expr::Kind::kAttribute) {
      const std::string& method = callee->name;
      const ExprPtr& base_expr = callee->children[0];
      if (base_expr->kind == Expr::Kind::kName &&
          (base_expr->name == "np" || base_expr->name == "numpy")) {
        return EvalNumpyCall(method, e);
      }
      if (base_expr->kind == Expr::Kind::kName &&
          (base_expr->name == "pd" || base_expr->name == "pandas")) {
        if (method == "DataFrame") return EvalDataFrameCtor(e);
        Emit(codes::kUnsupportedApi, Severity::kError,
             StatusCode::kUnsupported, LineOf(e), "pd." + method,
             "only pd.DataFrame(...) is supported", {});
        return Unknown();
      }
      AValue base = Eval(base_expr);
      return EvalMethod(std::move(base), method, e);
    }
    if (callee->kind == Expr::Kind::kName && callee->name == "DataFrame") {
      return EvalDataFrameCtor(e);
    }
    Emit(codes::kUnsupportedApi, Severity::kError, StatusCode::kUnsupported,
         LineOf(e), "call to " + callee->ToString(),
         "only method calls and np./pd. functions are supported", {});
    return Unknown();
  }

  AValue EvalDataFrameCtor(const Expr& e) {
    if (e.children.size() == 1) {
      AValue v;
      v.kind = ValueKind::kFrame;
      v.empty_frame = true;
      v.frame_id = FreshFrame();
      v.op = "DataFrame";
      return v;
    }
    AValue arg = Eval(e.children[1]);
    if (arg.kind == ValueKind::kUnknown) return Unknown();
    if (arg.kind != ValueKind::kFrame) {
      Emit(codes::kUnsupportedApi, Severity::kError, StatusCode::kUnsupported,
           LineOf(e), "DataFrame(<non-array>)",
           "pass an array produced by to_numpy() / einsum", {});
      return Unknown();
    }
    arg.schema.is_array = false;
    arg.schema.order = 0;
    arg.op = "DataFrame";
    return arg;
  }

  AValue EvalNumpyCall(const std::string& fn, const Expr& e) {
    if (fn == "einsum") return EvalEinsum(e);
    if (fn == "where") {
      if (e.children.size() < 4) {
        Emit(codes::kMissingArgument, Severity::kError,
             StatusCode::kInvalidArgument, LineOf(e),
             "np.where needs (condition, then, else)", "", {});
        return Unknown();
      }
      AValue c = Eval(e.children[1]);
      AValue a = Eval(e.children[2]);
      AValue b = Eval(e.children[3]);
      if (c.kind == ValueKind::kUnknown) return Unknown();
      AValue out = c;
      out.is_mask = false;
      out.type = CommonNumericType(a.type, b.type);
      out.col_name.clear();
      out.op = "np.where";
      return out;
    }
    if (fn == "sqrt" || fn == "abs" || fn == "log" || fn == "exp") {
      if (e.children.size() < 2) {
        Emit(codes::kMissingArgument, Severity::kError,
             StatusCode::kInvalidArgument, LineOf(e),
             "np." + fn + " needs an argument", "", {});
        return Unknown();
      }
      AValue a = Eval(e.children[1]);
      if (a.kind == ValueKind::kUnknown) return Unknown();
      if (a.kind != ValueKind::kColumn && a.kind != ValueKind::kScalar) {
        Emit(codes::kUnsupportedApi, Severity::kError,
             StatusCode::kUnsupported, LineOf(e),
             "np." + fn + " on a " + std::string(ValueKindName(a.kind)), "",
             {});
        return Unknown();
      }
      a.type = DataType::kFloat64;
      a.col_name.clear();
      a.op = "np." + fn;
      return a;
    }
    std::string near =
        Nearest(fn, {"einsum", "where", "sqrt", "abs", "log", "exp"});
    Emit(codes::kUnsupportedApi, Severity::kError, StatusCode::kUnsupported,
         LineOf(e), "np." + fn,
         near.empty() ? "" : "did you mean np." + near + "?",
         {"supported numpy surface: einsum, where, sqrt, abs, log, exp"});
    return Unknown();
  }

  AValue EvalEinsum(const Expr& e) {
    if (e.children.size() < 3) {
      Emit(codes::kMissingArgument, Severity::kError,
           StatusCode::kInvalidArgument, LineOf(e),
           "einsum needs a spec and operands",
           "np.einsum('ij,j->i', a, b)", {});
      return Unknown();
    }
    std::string spec_str;
    if (!LitString(e.children[1], "einsum spec", &spec_str)) return Unknown();
    auto spec_r = ParseEinsumSpec(spec_str);
    if (!spec_r.ok()) {
      // Keep the parser's StatusCode: a malformed spec is kInvalidArgument
      // but e.g. an order-3 tensor is kUnsupported, and callers pin these.
      Emit(codes::kBadEinsum, Severity::kError, spec_r.status().code(),
           LineOf(e), spec_r.status().message(),
           "write the spec as '<in1>,<in2>-><out>' over letters",
           {"spec '" + spec_str + "' did not parse"});
      return Unknown();
    }
    const EinsumSpec& spec = *spec_r;
    for (const std::string& s : spec.inputs) {
      if (s.size() > 2) {
        Emit(codes::kBadEinsum, Severity::kError, StatusCode::kUnsupported,
             LineOf(e),
             "einsum index '" + s + "' has order " +
                 std::to_string(s.size()) +
                 "; only vectors and matrices are supported",
             "decompose the contraction into order-<=2 steps",
             {"relations model at most (id, columns...) / COO matrices "
              "(paper §III-D)"});
        return Unknown();
      }
    }
    if (spec.output.size() > 2) {
      Emit(codes::kBadEinsum, Severity::kError, StatusCode::kUnsupported,
           LineOf(e), "einsum output order " +
                          std::to_string(spec.output.size()) +
                          " exceeds 2",
           "", {});
      return Unknown();
    }
    std::vector<FrameSchema> operands;
    bool sparse = options_.layout == TensorLayout::kSparse;
    for (size_t i = 2; i < e.children.size(); ++i) {
      AValue v = Eval(e.children[i]);
      if (v.kind == ValueKind::kUnknown) return Unknown();
      if (v.kind != ValueKind::kFrame) {
        Emit(codes::kBadEinsum, Severity::kError, StatusCode::kUnsupported,
             LineOf(e),
             "einsum operand " + std::to_string(i - 1) + " must be an array",
             "call .to_numpy() first", {});
        return Unknown();
      }
      operands.push_back(v.schema);
    }
    if (operands.size() != spec.inputs.size()) {
      Emit(codes::kBadEinsum, Severity::kError, StatusCode::kInvalidArgument,
           LineOf(e),
           "einsum spec '" + spec_str + "' names " +
               std::to_string(spec.inputs.size()) + " operands but " +
               std::to_string(operands.size()) + " were passed",
           "", {});
      return Unknown();
    }
    if (!sparse) {
      for (size_t i = 0; i < operands.size(); ++i) {
        if (spec.inputs[i].size() == 1 && operands[i].columns_known &&
            operands[i].data_width() > 1) {
          Emit(codes::kBadEinsum, Severity::kError,
               StatusCode::kInvalidArgument, LineOf(e),
               "einsum operand " + std::to_string(i + 1) + " has " +
                   std::to_string(operands[i].data_width()) +
                   " data columns but index '" + spec.inputs[i] +
                   "' denotes a vector",
               "", {"operand schema " + operands[i].ToString()});
          return Unknown();
        }
      }
    }
    AValue out;
    out.kind = ValueKind::kFrame;
    out.frame_id = FreshFrame();
    out.op = "einsum";
    out.schema.is_array = true;
    out.schema.order = static_cast<int>(spec.output.size());
    // Contractions (a summed-away letter) aggregate -> flow breaker.
    std::string all_letters;
    for (const std::string& s : spec.inputs) all_letters += s;
    bool contracts = false;
    for (char c : all_letters) {
      if (spec.output.find(c) == std::string::npos) contracts = true;
    }
    out.flow_breaker = contracts;
    if (contracts) {
      out.fb_reason = "einsum contraction sums over eliminated indices";
    }
    if (sparse) {
      out.schema.columns_known = false;  // COO shape decided by lowering
    } else if (spec.output.empty()) {
      out.schema.columns = {{"c0", DataType::kFloat64}};
      out.schema.order = 0;
      out.schema.is_array = false;
    } else if (spec.output.size() == 1) {
      out.schema.columns = {{"id", DataType::kInt64},
                            {"c0", DataType::kNull}};
      out.schema.has_id = true;
    } else {
      // Matrix output: width = data width of the operand providing the
      // column axis letter, when statically known.
      size_t width = 0;
      for (size_t i = 0; i < operands.size(); ++i) {
        if (spec.inputs[i].size() == 2 &&
            spec.inputs[i][1] == spec.output[1] &&
            operands[i].columns_known) {
          width = operands[i].data_width();
        }
      }
      if (width == 0) {
        out.schema.columns_known = false;
        out.schema.has_id = true;
      } else {
        out.schema.columns.push_back({"id", DataType::kInt64});
        for (size_t i = 0; i < width; ++i) {
          out.schema.columns.push_back(
              {"c" + std::to_string(i), DataType::kNull});
        }
        out.schema.has_id = true;
      }
    }
    Note("einsum '" + spec_str + "' -> order " +
         std::to_string(out.schema.order) +
         (contracts ? " (contraction, aggregates)" : " (no contraction)"));
    return out;
  }

  // ------------------------------------------------------------ methods
  AValue EvalMethod(AValue base, const std::string& method, const Expr& e) {
    if (base.kind == ValueKind::kUnknown) return Unknown();
    if (base.kind == ValueKind::kColumn) {
      return EvalColumnMethod(base, method, e);
    }
    if (base.kind == ValueKind::kGroupBy) {
      return EvalGroupByMethod(base, method, e);
    }
    if (base.kind != ValueKind::kFrame) {
      Emit(codes::kUnsupportedApi, Severity::kError, StatusCode::kUnsupported,
           LineOf(e),
           "method '" + method + "' on a " +
               std::string(ValueKindName(base.kind)),
           "", {});
      return Unknown();
    }
    if (method == "merge") return EvalMerge(base, e);
    if (method == "groupby") {
      if (e.children.size() < 2) {
        Emit(codes::kMissingArgument, Severity::kError,
             StatusCode::kInvalidArgument, LineOf(e), "groupby needs keys",
             "df.groupby('key') or df.groupby(['k1', 'k2'])", {});
        return Unknown();
      }
      std::vector<std::string> keys;
      if (!LitStringList(e.children[1], "groupby key", &keys)) {
        return Unknown();
      }
      bool ok = true;
      for (const std::string& k : keys) {
        ok &= CheckColumn(base.schema, k, "group key", LineOf(e));
      }
      if (!ok) return Unknown();
      AValue v;
      v.kind = ValueKind::kGroupBy;
      v.schema = base.schema;
      v.frame_id = base.frame_id;
      v.group_keys = keys;
      v.op = "groupby";
      return v;
    }
    if (method == "agg" || method == "aggregate") {
      return EvalAgg(base, {}, e);
    }
    if (method == "sort_values") {
      const ExprPtr* by = FindKwarg(e, "by");
      std::vector<std::string> keys;
      if (by != nullptr) {
        if (!LitStringList(*by, "sort key", &keys)) return Unknown();
      } else if (e.children.size() > 1) {
        if (!LitStringList(e.children[1], "sort key", &keys)) {
          return Unknown();
        }
      } else {
        Emit(codes::kMissingArgument, Severity::kError,
             StatusCode::kInvalidArgument, LineOf(e),
             "sort_values needs 'by'", "df.sort_values(by='col')", {});
        return Unknown();
      }
      bool ok = true;
      for (const std::string& k : keys) {
        ok &= CheckColumn(base.schema, k, "sort key", LineOf(e));
      }
      if (!ok) return Unknown();
      AValue v = base;
      v.op = "sort_values";
      Note("sort deferred to the consuming head()/sink (paper §III-E)");
      return v;
    }
    if (method == "head") {
      AValue v = base;
      v.frame_id = FreshFrame();
      v.empty_frame = false;
      v.op = "head";
      return v;
    }
    if (method == "drop") {
      std::vector<std::string> cols;
      if (e.children.size() > 1) {
        if (!LitStringList(e.children[1], "dropped column", &cols)) {
          return Unknown();
        }
      } else if (const ExprPtr* kw = FindKwarg(e, "columns")) {
        if (!LitStringList(*kw, "dropped column", &cols)) return Unknown();
      }
      for (const std::string& c : cols) {
        CheckColumn(base.schema, c, "dropped column", LineOf(e),
                    Severity::kWarning);
      }
      AValue v = base;
      v.frame_id = FreshFrame();
      v.op = "drop";
      if (v.schema.columns_known) {
        FrameSchema ns;
        ns.columns_known = true;
        ns.is_array = base.schema.is_array;
        for (size_t i = 0; i < base.schema.columns.size(); ++i) {
          const ColumnInfo& c = base.schema.columns[i];
          bool dropped = std::count(cols.begin(), cols.end(), c.name) > 0;
          if (dropped && !(base.schema.has_id && i == 0)) continue;
          ns.columns.push_back(c);
        }
        ns.has_id = !ns.columns.empty() && ns.columns[0].name == "id";
        v.schema = ns;
      }
      return v;
    }
    if (method == "reset_index" || method == "copy" || method == "astype") {
      return base;
    }
    if (method == "to_numpy") return MarkArray(std::move(base), LineOf(e));
    if (method == "pivot_table") return EvalPivot(base, e);
    if (base.schema.is_array) return EvalArrayMethod(base, method, e);
    std::string near = Nearest(
        method, {"merge", "groupby", "agg", "sort_values", "head", "drop",
                 "reset_index", "copy", "astype", "to_numpy", "pivot_table",
                 "unique", "isin"});
    Emit(codes::kUnsupportedApi, Severity::kError, StatusCode::kUnsupported,
         LineOf(e), "DataFrame method '" + method + "'",
         near.empty() ? "" : "did you mean '" + near + "'?",
         {"the supported pandas surface is the paper's workload subset"});
    return Unknown();
  }

  AValue EvalColumnMethod(AValue& base, const std::string& method,
                          const Expr& e) {
    if (base.str_ctx) {
      base.str_ctx = false;
      if (method == "startswith" || method == "endswith" ||
          method == "contains") {
        if (e.children.size() < 2) {
          Emit(codes::kMissingArgument, Severity::kError,
               StatusCode::kInvalidArgument, LineOf(e),
               ".str." + method + " needs a pattern", "", {});
          return Unknown();
        }
        std::string pat;
        if (!LitString(e.children[1], "string pattern", &pat)) {
          return Unknown();
        }
        AValue v = base;
        v.type = DataType::kBool;
        v.is_mask = true;
        v.col_name.clear();
        v.op = "str." + method;
        return v;
      }
      if (method == "slice") {
        if (e.children.size() < 3) {
          Emit(codes::kMissingArgument, Severity::kError,
               StatusCode::kInvalidArgument, LineOf(e),
               ".str.slice needs start and stop", ".str.slice(0, 3)", {});
          return Unknown();
        }
        for (size_t i = 1; i <= 2; ++i) {
          if (e.children[i]->kind != Expr::Kind::kLiteral ||
              e.children[i]->literal.type() != DataType::kInt64) {
            Emit(codes::kNonLiteralArgument, Severity::kError,
                 StatusCode::kUnsupported, LineOf(e),
                 ".str.slice bounds must be integer literals", "", {});
            return Unknown();
          }
        }
        AValue v = base;
        v.type = DataType::kString;
        v.col_name.clear();
        v.op = "str.slice";
        return v;
      }
      Emit(codes::kUnsupportedApi, Severity::kError, StatusCode::kUnsupported,
           LineOf(e), ".str." + method,
           "supported: startswith, endswith, contains, slice", {});
      return Unknown();
    }
    if (method == "isin") {
      if (e.children.size() < 2) {
        Emit(codes::kMissingArgument, Severity::kError,
             StatusCode::kInvalidArgument, LineOf(e),
             "isin needs a list or column", "", {});
        return Unknown();
      }
      AValue other = Eval(e.children[1]);
      if (other.kind == ValueKind::kUnknown) return Unknown();
      if (other.kind == ValueKind::kStrList) {
        if (other.item_types.empty()) {
          Emit(codes::kMissingArgument, Severity::kError,
               StatusCode::kInvalidArgument, LineOf(e), "isin([]) is empty",
               "membership in the empty set is always false; drop the "
               "filter",
               {"the list literal parsed to zero elements"});
          return Unknown();
        }
        CheckIsinTypes(base, other, e);
        AValue v = base;
        v.type = DataType::kBool;
        v.is_mask = true;
        v.col_name.clear();
        v.op = "isin";
        return v;
      }
      if (other.kind == ValueKind::kColumn ||
          (other.kind == ValueKind::kFrame &&
           (!other.schema.columns_known ||
            other.schema.columns.size() == 1))) {
        AValue v;
        v.kind = ValueKind::kColumn;
        v.schema = base.schema;
        v.frame_id = base.frame_id;
        v.type = DataType::kBool;
        v.is_mask = true;
        v.has_isin = true;
        v.op = "isin";
        Note("isin over another relation becomes an EXISTS subquery");
        return v;
      }
      Emit(codes::kUnsupportedApi, Severity::kError, StatusCode::kUnsupported,
           LineOf(e), "isin() against this operand",
           "pass a literal list, a column, or a single-column frame", {});
      return Unknown();
    }
    if (method == "unique") {
      AValue v;
      v.kind = ValueKind::kFrame;
      v.frame_id = FreshFrame();
      v.schema.columns = {
          {base.col_name.empty() ? "value" : base.col_name, base.type}};
      v.flow_breaker = true;
      v.fb_reason = "distinct materializes the deduplicated set";
      v.op = "unique";
      return v;
    }
    if (IsAggFnName(method) && method != "avg" && method != "count_distinct") {
      AValue v;
      v.kind = ValueKind::kFrame;
      v.frame_id = FreshFrame();
      v.schema.columns = {{method, AggResultType(method, base.type)}};
      v.flow_breaker = true;
      v.fb_reason = "scalar aggregate collapses the column to one row";
      v.op = "aggregate";
      return v;
    }
    if (method == "round") {
      AValue v = base;
      v.col_name.clear();
      v.op = "round";
      return v;
    }
    if (method == "astype") return base;
    std::string near = Nearest(
        method, {"isin", "unique", "sum", "min", "max", "mean", "count",
                 "nunique", "round", "astype"});
    Emit(codes::kUnsupportedApi, Severity::kError, StatusCode::kUnsupported,
         LineOf(e), "column method '" + method + "'",
         near.empty() ? "" : "did you mean '" + near + "'?", {});
    return Unknown();
  }

  void CheckIsinTypes(const AValue& base, const AValue& items,
                      const Expr& e) {
    if (base.type == DataType::kNull) return;
    auto numeric = [](DataType t) {
      return t == DataType::kInt64 || t == DataType::kFloat64;
    };
    for (DataType t : items.item_types) {
      bool bad = (base.type == DataType::kString && numeric(t)) ||
                 (numeric(base.type) && t == DataType::kString);
      if (bad) {
        Emit(codes::kTypeIncompatible, Severity::kError,
             StatusCode::kTypeError, LineOf(e),
             "isin list item type " + std::string(DataTypeName(t)) +
                 " is incompatible with column type " +
                 DataTypeName(base.type),
             "", {"column inferred as " +
                  std::string(DataTypeName(base.type)) +
                  (base.col_name.empty() ? ""
                                         : " ('" + base.col_name + "')")});
        return;
      }
    }
  }

  AValue EvalGroupByMethod(AValue& base, const std::string& method,
                           const Expr& e) {
    if (method == "agg" || method == "aggregate") {
      return EvalAgg(base, base.group_keys, e);
    }
    if (IsAggFnName(method) && method != "avg" &&
        method != "count_distinct") {
      AValue v;
      v.kind = ValueKind::kFrame;
      v.frame_id = FreshFrame();
      v.op = "groupby." + method;
      v.flow_breaker = true;
      v.fb_reason = "group-by aggregation materializes one row per group";
      if (!base.schema.columns_known) {
        v.schema.columns_known = false;
        return v;
      }
      for (const std::string& k : base.group_keys) {
        v.schema.columns.push_back({k, ColType(base.schema, k)});
      }
      std::vector<std::string> cols = base.restricted;
      if (cols.empty()) {
        for (const ColumnInfo& c : base.schema.columns) {
          if (!std::count(base.group_keys.begin(), base.group_keys.end(),
                          c.name)) {
            cols.push_back(c.name);
          }
        }
      }
      for (const std::string& c : cols) {
        v.schema.columns.push_back(
            {c, AggResultType(method, ColType(base.schema, c))});
      }
      return v;
    }
    if (method == "size") {
      AValue v;
      v.kind = ValueKind::kFrame;
      v.frame_id = FreshFrame();
      v.op = "groupby.size";
      v.flow_breaker = true;
      v.fb_reason = "group-by aggregation materializes one row per group";
      v.schema.columns_known = base.schema.columns_known;
      if (v.schema.columns_known) {
        for (const std::string& k : base.group_keys) {
          v.schema.columns.push_back({k, ColType(base.schema, k)});
        }
        v.schema.columns.push_back({"size", DataType::kInt64});
      }
      return v;
    }
    Emit(codes::kUnsupportedApi, Severity::kError, StatusCode::kUnsupported,
         LineOf(e), "groupby method '" + method + "'",
         "supported: agg, sum, min, max, mean, count, nunique, size", {});
    return Unknown();
  }

  AValue EvalAgg(const AValue& base, const std::vector<std::string>& keys,
                 const Expr& e) {
    if (e.kwargs.empty()) {
      Emit(codes::kUnsupportedApi, Severity::kError, StatusCode::kUnsupported,
           LineOf(e), "agg() requires named aggregations",
           "use out_name=('column', 'fn') keyword specs", {});
      return Unknown();
    }
    AValue v;
    v.kind = ValueKind::kFrame;
    v.frame_id = FreshFrame();
    v.op = keys.empty() ? "agg" : "groupby.agg";
    v.flow_breaker = true;
    v.fb_reason = keys.empty()
                      ? "aggregate collapses the frame to one row"
                      : "group-by aggregation materializes one row per group";
    v.schema.columns_known = base.schema.columns_known;
    bool ok = true;
    for (const std::string& k : keys) {
      ok &= CheckColumn(base.schema, k, "group key", LineOf(e));
      v.schema.columns.push_back({k, ColType(base.schema, k)});
    }
    for (const auto& [out, spec] : e.kwargs) {
      if (spec->kind != Expr::Kind::kTuple || spec->children.size() != 2) {
        Emit(codes::kUnsupportedApi, Severity::kError,
             StatusCode::kUnsupported, LineOf(e),
             "agg spec must be (column, fn)",
             out + "=('col', 'sum')", {});
        return Unknown();
      }
      std::string col, fn;
      if (!LitString(spec->children[0], "aggregate column", &col) ||
          !LitString(spec->children[1], "aggregate function", &fn)) {
        return Unknown();
      }
      if (!IsAggFnName(fn)) {
        std::string near = Nearest(fn, AggFnNames());
        Emit(codes::kUnsupportedApi, Severity::kError,
             StatusCode::kUnsupported, LineOf(e), "aggregate '" + fn + "'",
             near.empty() ? "" : "did you mean '" + near + "'?",
             {"supported aggregate functions: sum, min, max, mean, count, "
              "nunique"});
        ok = false;
        continue;
      }
      ok &= CheckColumn(base.schema, col, "aggregate input column",
                        LineOf(e));
      v.schema.columns.push_back(
          {out, AggResultType(fn, ColType(base.schema, col))});
    }
    if (!ok) return Unknown();
    Note("aggregation over " + base.schema.ToString() +
         (keys.empty() ? " (no keys)"
                       : " grouped by " + std::to_string(keys.size()) +
                             " key(s)"));
    return v;
  }

  AValue EvalMerge(AValue& left, const Expr& e) {
    if (e.children.size() < 2) {
      Emit(codes::kMissingArgument, Severity::kError,
           StatusCode::kInvalidArgument, LineOf(e),
           "merge needs a right operand", "df.merge(other, on='key')", {});
      return Unknown();
    }
    AValue right_v = Eval(e.children[1]);
    if (right_v.kind == ValueKind::kUnknown) return Unknown();
    FrameSchema right;
    if (right_v.kind == ValueKind::kFrame) {
      right = right_v.schema;
    } else if (right_v.kind == ValueKind::kColumn) {
      right.columns = {{right_v.col_name.empty() ? "value"
                                                 : right_v.col_name,
                        right_v.type}};
    } else {
      Emit(codes::kUnsupportedApi, Severity::kError, StatusCode::kUnsupported,
           LineOf(e), "merge right operand must be a DataFrame", "", {});
      return Unknown();
    }
    std::string how = "inner";
    if (const ExprPtr* kw = FindKwarg(e, "how")) {
      if (!LitString(*kw, "merge 'how'", &how)) return Unknown();
    }
    std::vector<std::string> lkeys, rkeys;
    if (const ExprPtr* kw = FindKwarg(e, "on")) {
      if (!LitStringList(*kw, "merge key", &lkeys)) return Unknown();
      rkeys = lkeys;
    } else {
      if (const ExprPtr* kw2 = FindKwarg(e, "left_on")) {
        if (!LitStringList(*kw2, "merge key", &lkeys)) return Unknown();
      }
      if (const ExprPtr* kw2 = FindKwarg(e, "right_on")) {
        if (!LitStringList(*kw2, "merge key", &rkeys)) return Unknown();
      }
    }
    if (how != "cross" && (lkeys.empty() || lkeys.size() != rkeys.size())) {
      Emit(codes::kMissingArgument, Severity::kError,
           StatusCode::kInvalidArgument, LineOf(e),
           "merge needs matching join keys",
           "pass on='key' or matching left_on=/right_on= lists", {});
      return Unknown();
    }
    bool ok = true;
    for (const std::string& k : lkeys) {
      if (left.schema.columns_known && left.schema.Find(k) < 0) {
        std::string near = Nearest(k, ColumnNames(left.schema));
        Emit(codes::kBadMergeKey, Severity::kError, StatusCode::kNotFound,
             LineOf(e),
             "left merge key '" + k + "' not in schema " +
                 left.schema.ToString(),
             near.empty() ? "" : "did you mean '" + near + "'?",
             {"left schema inferred as " + left.schema.ToString()});
        ok = false;
      }
    }
    for (const std::string& k : rkeys) {
      if (right.columns_known && right.Find(k) < 0) {
        std::string near = Nearest(k, ColumnNames(right));
        Emit(codes::kBadMergeKey, Severity::kError, StatusCode::kNotFound,
             LineOf(e),
             "right merge key '" + k + "' not in schema " + right.ToString(),
             near.empty() ? "" : "did you mean '" + near + "'?",
             {"right schema inferred as " + right.ToString()});
        ok = false;
      }
    }
    if (!ok) return Unknown();
    AValue v;
    v.kind = ValueKind::kFrame;
    v.frame_id = FreshFrame();
    v.op = "merge";
    v.schema.columns_known =
        left.schema.columns_known && right.columns_known;
    if (v.schema.columns_known) {
      bool same_key_names = lkeys == rkeys;
      auto overlaps = [&](const std::string& c) {
        return left.schema.Find(c) >= 0 && right.Find(c) >= 0;
      };
      auto is_key = [](const std::vector<std::string>& ks,
                       const std::string& c) {
        return std::count(ks.begin(), ks.end(), c) > 0;
      };
      for (const ColumnInfo& c : left.schema.columns) {
        bool shared_key = same_key_names && is_key(lkeys, c.name);
        std::string name =
            (!shared_key && overlaps(c.name)) ? c.name + "_x" : c.name;
        v.schema.columns.push_back({name, c.type});
      }
      for (const ColumnInfo& c : right.columns) {
        if (same_key_names && is_key(rkeys, c.name) && how != "cross") {
          continue;
        }
        std::string name = overlaps(c.name) ? c.name + "_y" : c.name;
        v.schema.columns.push_back({name, c.type});
      }
      v.schema.has_id =
          !v.schema.columns.empty() && v.schema.columns[0].name == "id";
    }
    Note("merge (" + how + ") of " + left.schema.ToString() + " and " +
         right.ToString());
    return v;
  }

  AValue EvalPivot(const AValue& base, const Expr& e) {
    const ExprPtr* index = FindKwarg(e, "index");
    const ExprPtr* columns = FindKwarg(e, "columns");
    const ExprPtr* values = FindKwarg(e, "values");
    if (!index || !columns || !values) {
      Emit(codes::kMissingArgument, Severity::kError,
           StatusCode::kInvalidArgument, LineOf(e),
           "pivot_table needs index=, columns=, values=", "", {});
      return Unknown();
    }
    std::string idx_col, col_col, val_col;
    if (!LitString(*index, "pivot index", &idx_col) ||
        !LitString(*columns, "pivot columns", &col_col) ||
        !LitString(*values, "pivot values", &val_col)) {
      return Unknown();
    }
    bool ok = CheckColumn(base.schema, idx_col, "pivot index", LineOf(e));
    ok &= CheckColumn(base.schema, col_col, "pivot columns", LineOf(e));
    ok &= CheckColumn(base.schema, val_col, "pivot values", LineOf(e));
    if (!ok) return Unknown();
    if (options_.pivot_values.empty()) {
      Emit(codes::kMissingArgument, Severity::kError,
           StatusCode::kInvalidArgument, LineOf(e),
           "pivot_table needs distinct values via the decorator "
           "(pivot_values=[...], paper §III-C)",
           "@pytond(pivot_values=['a', 'b', ...])",
           {"the translator widens the frame with one column per distinct "
            "value; those values must be known at compile time"});
      return Unknown();
    }
    AValue v;
    v.kind = ValueKind::kFrame;
    v.frame_id = FreshFrame();
    v.op = "pivot_table";
    v.flow_breaker = true;
    v.fb_reason = "pivot aggregates one row per index value";
    DataType vt = CommonNumericType(ColType(base.schema, val_col),
                                    DataType::kInt64);
    v.schema.columns.push_back({idx_col, ColType(base.schema, idx_col)});
    for (const std::string& dv : options_.pivot_values) {
      v.schema.columns.push_back({"p_" + dv, vt});
    }
    Note("pivot over '" + col_col + "' widens to " +
         std::to_string(options_.pivot_values.size()) + " value columns");
    return v;
  }

  AValue EvalArrayMethod(AValue& base, const std::string& method,
                         const Expr& e) {
    const FrameSchema& f = base.schema;
    if (method == "sum") {
      const ExprPtr* axis = FindKwarg(e, "axis");
      AValue v;
      v.kind = ValueKind::kFrame;
      v.frame_id = FreshFrame();
      v.op = "array.sum";
      v.flow_breaker = true;
      v.fb_reason = "array sum aggregates over an axis";
      if (axis == nullptr) {
        v.schema.columns = {{"c0", DataType::kFloat64}};
        return v;
      }
      if ((*axis)->kind != Expr::Kind::kLiteral ||
          (*axis)->literal.type() != DataType::kInt64) {
        Emit(codes::kNonLiteralArgument, Severity::kError,
             StatusCode::kUnsupported, LineOf(e),
             "sum axis must be an integer literal", "", {});
        return Unknown();
      }
      int64_t ax = (*axis)->literal.AsInt64();
      if (ax != 0 && ax != 1) {
        Emit(codes::kBadAxis, Severity::kError, StatusCode::kInvalidArgument,
             LineOf(e),
             "axis " + std::to_string(ax) + " out of range for an order-" +
                 std::to_string(f.order > 0 ? f.order : 2) + " array",
             "use axis=0 (columns) or axis=1 (rows)",
             {"array inferred as order " +
              std::to_string(f.order > 0 ? f.order : 2) + " with schema " +
              f.ToString()});
        return Unknown();
      }
      v.schema.columns = {{"id", DataType::kInt64}, {"c0", DataType::kNull}};
      v.schema.has_id = true;
      v.schema.is_array = true;
      v.schema.order = 1;
      return v;
    }
    if (method == "nonzero") {
      AValue v;
      v.kind = ValueKind::kFrame;
      v.frame_id = FreshFrame();
      v.op = "nonzero";
      v.schema.columns = {{"id", DataType::kInt64}};
      v.schema.has_id = true;
      v.schema.is_array = true;
      v.schema.order = 1;
      return v;
    }
    if (method == "all") {
      AValue v;
      v.kind = ValueKind::kFrame;
      v.frame_id = FreshFrame();
      v.op = "array.all";
      v.flow_breaker = true;
      v.fb_reason = "all() aggregates the array to one row";
      v.schema.columns = {{"all_", DataType::kNull}};
      return v;
    }
    if (method == "round") {
      AValue v = base;
      v.frame_id = FreshFrame();
      v.op = "array.round";
      return v;
    }
    if (method == "compress") {
      if (e.children.size() < 2 ||
          e.children[1]->kind != Expr::Kind::kList) {
        Emit(codes::kNonLiteralArgument, Severity::kError,
             StatusCode::kUnsupported, LineOf(e),
             "compress() needs a literal mask", "a.compress([1, 0, 1])", {});
        return Unknown();
      }
      AValue v;
      v.kind = ValueKind::kFrame;
      v.frame_id = FreshFrame();
      v.op = "compress";
      v.schema.is_array = true;
      v.schema.order = f.order;
      v.schema.columns_known = f.columns_known;
      if (f.columns_known) {
        v.schema.columns.push_back({"id", DataType::kInt64});
        v.schema.has_id = true;
        size_t data0 = f.has_id ? 1 : 0;
        const auto& items = e.children[1]->children;
        for (size_t i = 0; i < items.size(); ++i) {
          const Expr& m = *items[i];
          bool keep = m.kind == Expr::Kind::kLiteral &&
                      ((m.literal.type() == DataType::kBool &&
                        m.literal.AsBool()) ||
                       (m.literal.type() == DataType::kInt64 &&
                        m.literal.AsInt64() != 0));
          if (keep && data0 + i < f.columns.size()) {
            v.schema.columns.push_back(f.columns[data0 + i]);
          }
        }
      }
      return v;
    }
    if (method == "transpose") {
      Emit(codes::kUnsupportedApi, Severity::kError, StatusCode::kUnsupported,
           LineOf(e),
           "dense transpose requires a known row count; use sparse layout",
           "@pytond(layout='sparse')",
           {"dense arrays map rows to tuples; transposing would need a "
            "row-count-dependent schema (paper §III-D)"});
      return Unknown();
    }
    Emit(codes::kUnsupportedApi, Severity::kError, StatusCode::kUnsupported,
         LineOf(e), "array method '" + method + "'",
         "supported: sum, nonzero, all, round, compress, transpose(sparse)",
         {});
    return Unknown();
  }

  const AnalyzerOptions& options_;
  FunctionFacts facts_;
  std::map<std::string, AValue> env_;
  std::map<std::string, int> binding_idx_;
  std::map<std::string, int> append_src_;  // df name -> source frame id
  std::vector<std::vector<int>> deps_;     // per binding: bindings it reads
  std::vector<bool> shadow_warned_;
  std::set<int> cur_uses_;
  std::set<int> return_uses_;
  std::vector<std::string> why_;
  int cur_stmt_ = -1;
  int cur_line_ = 0;
  int next_frame_id_ = 0;
  int error_count_ = 0;
  int errors_at_stmt_start_ = 0;
};

}  // namespace

FunctionFacts AnalyzeFunction(const py::Function& fn,
                              const AnalyzerOptions& options) {
  Analyzer a(options);
  return a.Run(fn);
}

Status RegisterBaseDirectives(const std::string& source, Catalog* catalog) {
  std::istringstream in(source);
  std::string line;
  while (std::getline(in, line)) {
    size_t at = line.find("@base");
    if (at == std::string::npos) continue;
    size_t hash = line.find('#');
    if (hash == std::string::npos || hash > at) continue;
    size_t open = line.find('(', at);
    size_t close = line.rfind(')');
    if (open == std::string::npos || close == std::string::npos ||
        close < open) {
      return Status::ParseError("malformed @base directive: " + line);
    }
    std::string name = line.substr(at + 5, open - at - 5);
    name.erase(std::remove_if(name.begin(), name.end(), ::isspace),
               name.end());
    if (name.empty()) {
      return Status::ParseError("@base directive without a table name: " +
                                line);
    }
    Table table;
    std::string cols = line.substr(open + 1, close - open - 1);
    std::istringstream cs(cols);
    std::string item;
    while (std::getline(cs, item, ',')) {
      item.erase(std::remove_if(item.begin(), item.end(), ::isspace),
                 item.end());
      if (item.empty()) continue;
      std::string cname = item;
      std::string tname = "int64";
      size_t colon = item.find(':');
      if (colon != std::string::npos) {
        cname = item.substr(0, colon);
        tname = item.substr(colon + 1);
      }
      Column col;
      if (tname == "int64" || tname == "int") {
        col = Column::Int64({});
      } else if (tname == "float64" || tname == "float") {
        col = Column::Float64({});
      } else if (tname == "string" || tname == "str") {
        col = Column::String({});
      } else if (tname == "bool") {
        col = Column::Bool({});
      } else if (tname == "date") {
        col = Column::Date({});
      } else {
        return Status::ParseError("@base directive: unknown type '" + tname +
                                  "' for column '" + cname + "'");
      }
      PYTOND_RETURN_IF_ERROR(table.AddColumn(cname, std::move(col)));
    }
    PYTOND_RETURN_IF_ERROR(catalog->CreateTable(name, std::move(table)));
  }
  return Status::OK();
}

Result<std::vector<FunctionFacts>> AnalyzeSource(
    const std::string& source, const AnalyzerOptions& options) {
  PYTOND_ASSIGN_OR_RETURN(py::Module module, py::ParseModule(source));
  Catalog scratch;
  if (options.catalog != nullptr) {
    for (const std::string& name : options.catalog->TableNames()) {
      Status st = scratch.CreateTable(
          name, *options.catalog->GetTable(name),
          options.catalog->GetConstraints(name)
              ? *options.catalog->GetConstraints(name)
              : TableConstraints{});
      if (!st.ok()) return st;
    }
  }
  PYTOND_RETURN_IF_ERROR(RegisterBaseDirectives(source, &scratch));
  std::vector<FunctionFacts> out;
  for (const py::Function& fn : module.functions) {
    AnalyzerOptions per_fn = options;
    per_fn.catalog = &scratch;
    for (const auto& [key, value] : fn.decorator_kwargs) {
      if (key == "layout" && value->kind == Expr::Kind::kLiteral &&
          value->literal.type() == DataType::kString) {
        per_fn.layout = value->literal.AsString() == "sparse"
                            ? TensorLayout::kSparse
                            : TensorLayout::kDense;
      } else if (key == "pivot_values" &&
                 (value->kind == Expr::Kind::kList ||
                  value->kind == Expr::Kind::kTuple)) {
        per_fn.pivot_values.clear();
        for (const ExprPtr& c : value->children) {
          if (c->kind == Expr::Kind::kLiteral &&
              c->literal.type() == DataType::kString) {
            per_fn.pivot_values.push_back(c->literal.AsString());
          }
        }
      }
    }
    py::Function anf_fn = fn;
    auto anf_body = ToAnf(fn.body);
    if (!anf_body.ok()) return anf_body.status();
    anf_fn.body = std::move(*anf_body);
    out.push_back(AnalyzeFunction(anf_fn, per_fn));
  }
  return out;
}

}  // namespace pytond::frontend::check
