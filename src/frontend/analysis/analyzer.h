#ifndef PYTOND_FRONTEND_ANALYSIS_ANALYZER_H_
#define PYTOND_FRONTEND_ANALYSIS_ANALYZER_H_

#include <map>
#include <string>
#include <vector>

#include "analysis/diagnostics.h"
#include "common/status.h"
#include "frontend/pylang/ast.h"
#include "frontend/translate/translator.h"
#include "storage/catalog.h"

/// Frontend translatability analyzer (the F-series tier, DESIGN.md §11).
///
/// A forward abstract interpretation over the ANF-normalized pylang
/// program, mirroring the TondIR dataflow engine one level up: it infers
/// per-binding *frame schemas* (column names + element types, seeded from
/// the catalog and propagated through selection / filter / merge /
/// groupby / pivot), *shape facts* for the NumPy/einsum path (array
/// order, axis validity), and *def-use / liveness* across ANF bindings.
/// On top of those facts a translatability classifier labels every
/// binding `translatable | flow-breaker | untranslatable` and emits
/// located F001-F015 diagnostics with why-chains, the frontend analogue
/// of the verifier's T-series.
///
/// The namespace is `check` (not `analysis`) so the existing
/// `pytond::analysis` TondIR tier stays unambiguous from inside
/// `pytond::frontend`.
namespace pytond::frontend::check {

/// Classification of one ANF binding (paper §III-B): translatable bindings
/// can be fused into the enclosing relational region; flow breakers
/// (aggregate, group-by, distinct) end a maximal translatable region; and
/// untranslatable bindings abort the compile with an F-error.
enum class Translatability { kTranslatable, kFlowBreaker, kUntranslatable };

const char* TranslatabilityName(Translatability t);

/// One inferred column: name plus element type (kNull = unknown).
struct ColumnInfo {
  std::string name;
  DataType type = DataType::kNull;
};

/// Abstract frame schema. `columns_known == false` means inference lost
/// track (e.g. an einsum whose output width is data-dependent); column
/// checks are then suppressed rather than guessed.
struct FrameSchema {
  std::vector<ColumnInfo> columns;
  bool columns_known = true;
  bool is_array = false;
  /// Array order: 1 = vector, 2 = matrix (0 for plain frames).
  int order = 0;
  bool has_id = false;  // leading "id" column (uid-joinable)

  int Find(const std::string& name) const;
  size_t data_width() const {
    return columns.size() - (has_id ? 1 : 0);
  }
  /// "(k: INT64, v: FLOAT64)" — for --facts dumps and why-chains.
  std::string ToString() const;
};

/// What kind of abstract value a binding holds (mirrors the translator's
/// TValue kinds).
enum class ValueKind {
  kFrame, kColumn, kScalar, kGroupBy, kStrList, kUnknown
};

const char* ValueKindName(ValueKind k);

/// Everything the analyzer learned about one ANF binding.
struct BindingFacts {
  std::string name;
  int line = 0;
  int stmt_index = -1;  // index into the ANF body that (re)defined it
  ValueKind kind = ValueKind::kUnknown;
  FrameSchema schema;  // kFrame / kGroupBy
  Translatability klass = Translatability::kTranslatable;
  /// Short operation label ("filter", "groupby.agg", "einsum", ...).
  std::string op;
  /// Why the binding is a flow breaker / untranslatable (empty otherwise).
  std::string reason;
  /// Inference chain: how the schema/classification was derived.
  std::vector<std::string> why;
  std::vector<std::string> group_keys;  // kGroupBy only

  // Def-use facts (filled by the liveness pass).
  int uses = 0;
  int last_use_stmt = -1;  // statement index of the last read; -1 = dead
  bool returned = false;   // flows (possibly indirectly) into the return
};

/// Analyzer configuration, mirroring TranslateOptions plus lint knobs.
struct AnalyzerOptions {
  const Catalog* catalog = nullptr;
  TensorLayout layout = TensorLayout::kDense;
  std::vector<std::string> pivot_values;
  /// Emit F011 warnings for flow breakers (group-by / aggregate /
  /// distinct forcing materialization boundaries). Off in the compiler
  /// path — every aggregating query would warn — and on in tondcheck,
  /// where region boundaries are exactly what the user asked to see.
  bool report_flow_breakers = false;
};

/// The analysis result for one @pytond function. Total: analysis itself
/// never fails; user errors surface as diagnostics (plus `error_status`,
/// the Status the compiler should return, preserving the per-site
/// StatusCode taxonomy the rest of the pipeline pins).
struct FunctionFacts {
  std::string function_name;
  /// Bindings in definition order; a reassigned name appears once per
  /// definition. Parameters come first (stmt_index -1).
  std::vector<BindingFacts> bindings;
  std::vector<analysis::Diagnostic> diagnostics;
  /// OK when no error-severity diagnostic was emitted; otherwise the
  /// first error rendered as a Status with the appropriate StatusCode.
  Status error_status;

  /// Latest binding of `name` defined at or before `before_stmt`
  /// (nullptr when absent). `before_stmt < 0` means "latest overall".
  const BindingFacts* Find(const std::string& name,
                           int before_stmt = -1) const;
  /// True when the latest binding of `name` visible at `stmt_index` dies
  /// there: its last read is this statement and nothing reads it later.
  /// The translator's fact-gated filter fusion keys off this.
  bool DiesAt(const std::string& name, int stmt_index) const;
  /// Human-readable fact dump (tondcheck --facts).
  std::string Dump() const;
};

/// Analyzes one ANF-normalized @pytond function. `fn` must already be in
/// ANF (the same body handed to TranslateFunction) so statement indices
/// line up with the translator's walk.
FunctionFacts AnalyzeFunction(const py::Function& fn,
                              const AnalyzerOptions& options);

/// Registers tables declared by `# @base name(col:type, ...)` comment
/// directives into `catalog` (tondcheck's stand-in for a live database
/// schema). Types: int64, float64, string, bool, date; omitted = int64.
Status RegisterBaseDirectives(const std::string& source, Catalog* catalog);

/// Convenience for tondcheck: parses `source`, applies `# @base`
/// directives to a scratch copy of options.catalog (or an empty catalog),
/// ANF-normalizes every @pytond function, and analyzes each. Fails only
/// on pylang parse errors; analysis findings land in the per-function
/// diagnostics.
Result<std::vector<FunctionFacts>> AnalyzeSource(
    const std::string& source, const AnalyzerOptions& options);

}  // namespace pytond::frontend::check

#endif  // PYTOND_FRONTEND_ANALYSIS_ANALYZER_H_
