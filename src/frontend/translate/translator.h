#ifndef PYTOND_FRONTEND_TRANSLATE_TRANSLATOR_H_
#define PYTOND_FRONTEND_TRANSLATE_TRANSLATOR_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "frontend/pylang/ast.h"
#include "storage/catalog.h"
#include "tondir/ir.h"

namespace pytond::frontend {

namespace check {
struct FunctionFacts;  // frontend/analysis/analyzer.h
}

/// Tensor layout for NumPy arrays (paper §II-B): dense keeps one relation
/// column per tensor column plus an ID column; sparse uses COO
/// (row_id, col_id, val).
enum class TensorLayout { kDense, kSparse };

/// Schema-level description of a translated relation (a DataFrame, Series
/// owner, or array) during translation.
struct FrameInfo {
  std::string relation;               // TondIR relation name
  std::vector<std::string> columns;   // column names == TondIR var names
  std::set<size_t> unique_positions;  // uniqueness knowledge
  bool has_id = false;                // column 0 is a row-id column
  bool is_array = false;              // produced by to_numpy / einsum
  TensorLayout layout = TensorLayout::kDense;
  /// Deferred ORDER BY (applied by head(n) or the sink rule).
  std::vector<tondir::SortKey> pending_sort;

  size_t FindColumn(const std::string& name) const;
  /// Data columns of an array (excluding the id column).
  size_t data_width() const {
    return columns.size() - (has_id ? 1 : 0);
  }
};

/// Translation options collected from the @pytond decorator and caller.
struct TranslateOptions {
  TensorLayout layout = TensorLayout::kDense;
  /// Distinct values of the pivot_table `columns` column (paper §III-C:
  /// passed via decorator or probed ahead of codegen).
  std::vector<std::string> pivot_values;
  /// Per-binding facts from the frontend translatability analyzer, when the
  /// compiler ran it (same ANF body, so statement indices line up). Enables
  /// fact-gated region fusion: a filter can be folded into its producer rule
  /// only when the analyzer proved the producer binding dies at the filter
  /// statement and no alias outlives it.
  const check::FunctionFacts* facts = nullptr;
  /// When set, every fusion decision (taken or declined, with the gating
  /// fact) is appended here — the translate-time analogue of the
  /// optimizer's rewrite_log.
  std::vector<std::string>* fusion_log = nullptr;
};

/// Result of translating one @pytond function: the TondIR program (sink
/// rule last) plus the output column names.
struct TranslationResult {
  tondir::Program program;
  std::vector<std::string> output_columns;
};

/// Translates a parsed + ANF-normalized function body to TondIR. Function
/// parameters bind to catalog tables of the same name; the catalog supplies
/// schemas and uniqueness (paper §III-A contextual information).
Result<TranslationResult> TranslateFunction(
    const py::Function& function, const Catalog& catalog,
    const TranslateOptions& options);

}  // namespace pytond::frontend

#endif  // PYTOND_FRONTEND_TRANSLATE_TRANSLATOR_H_
