#include "frontend/translate/translator.h"

#include <algorithm>
#include <optional>

#include "frontend/analysis/analyzer.h"
#include "frontend/translate/einsum.h"

namespace pytond::frontend {

using py::Expr;
using py::ExprPtr;
using py::Stmt;
using tondir::Atom;
using tondir::BinOp;
using tondir::CmpOp;
using tondir::Rule;
using tondir::Term;
using tondir::TermPtr;

size_t FrameInfo::FindColumn(const std::string& name) const {
  for (size_t i = 0; i < columns.size(); ++i) {
    if (columns[i] == name) return i;
  }
  return static_cast<size_t>(-1);
}

namespace {

constexpr char kIdCol[] = "id";

/// Conjunctive EXISTS payload attached to masks built from isin().
struct IsinPayload {
  FrameInfo frame;       // relation providing the membership set
  std::string column;    // its column
  TermPtr probe;         // probe term over the filtered frame's columns
  bool negated = false;
};

/// Translation-time value of a mini-Python expression.
struct TValue {
  enum class Kind { kFrame, kEmptyFrame, kColumn, kScalar, kGroupBy,
                    kStrList };
  Kind kind;
  FrameInfo frame;                   // kFrame / kColumn owner / kGroupBy
  TermPtr term;                      // kColumn / kScalar
  std::vector<std::string> strings;  // kStrList (string items)
  std::vector<Value> literals;       // kStrList (all literal items)
  std::vector<std::string> group_keys;
  std::vector<IsinPayload> isins;    // kColumn masks
  bool str_ctx = false;              // after `.str`
  bool dt_ctx = false;               // after `.dt`
};

Result<std::string> LiteralString(const ExprPtr& e) {
  if (e->kind != Expr::Kind::kLiteral ||
      e->literal.type() != DataType::kString) {
    return Status::Unsupported("expected a string literal, got " +
                               e->ToString());
  }
  return e->literal.AsString();
}

Result<std::vector<std::string>> StringList(const ExprPtr& e) {
  std::vector<std::string> out;
  if (e->kind == Expr::Kind::kLiteral) {
    PYTOND_ASSIGN_OR_RETURN(std::string s, LiteralString(e));
    out.push_back(s);
    return out;
  }
  if (e->kind == Expr::Kind::kList || e->kind == Expr::Kind::kTuple) {
    for (const ExprPtr& c : e->children) {
      PYTOND_ASSIGN_OR_RETURN(std::string s, LiteralString(c));
      out.push_back(s);
    }
    return out;
  }
  return Status::Unsupported("expected string or list of strings: " +
                             e->ToString());
}

const ExprPtr* FindKwarg(const Expr& call, const std::string& name) {
  for (const auto& [k, v] : call.kwargs) {
    if (k == name) return &v;
  }
  return nullptr;
}

bool IsCmp(BinOp op) {
  switch (op) {
    case BinOp::kEq: case BinOp::kNe: case BinOp::kLt:
    case BinOp::kLe: case BinOp::kGt: case BinOp::kGe:
      return true;
    default:
      return false;
  }
}

class Translator {
 public:
  Translator(const Catalog& catalog, const TranslateOptions& options)
      : catalog_(catalog), options_(options) {}

  Result<TranslationResult> Run(const py::Function& fn) {
    fn_name_ = fn.name;
    // Bind parameters to catalog tables (contextual information §III-A).
    for (const std::string& param : fn.params) {
      const Table* t = catalog_.GetTable(param);
      if (t == nullptr) {
        return Status::NotFound("parameter '" + param +
                                "' has no catalog table");
      }
      FrameInfo f;
      f.relation = param;
      f.columns = t->schema().names;
      const TableConstraints* tc = catalog_.GetConstraints(param);
      if (tc != nullptr) {
        for (size_t i = 0; i < f.columns.size(); ++i) {
          if (tc->IsUniqueColumn(f.columns[i])) f.unique_positions.insert(i);
        }
      }
      if (!f.columns.empty() && f.columns[0] == kIdCol) {
        f.has_id = true;
        f.unique_positions.insert(0);
      }
      if (options_.layout == TensorLayout::kSparse &&
          f.columns.size() == 3 && f.columns[0] == "row_id") {
        f.layout = TensorLayout::kSparse;
        f.is_array = true;
      }
      program_.base_columns[param] = f.columns;
      program_.base_column_types[param] = t->schema().types;
      program_.relation_info[param] = {f.unique_positions};
      base_relations_.insert(param);
      TValue v;
      v.kind = TValue::Kind::kFrame;
      v.frame = std::move(f);
      env_[param] = std::move(v);
    }

    for (size_t si = 0; si < fn.body.size(); ++si) {
      const Stmt& stmt = fn.body[si];
      cur_stmt_ = static_cast<int>(si);
      cur_line_ = stmt.line;
      if (stmt.kind == Stmt::Kind::kReturn) {
        Result<TValue> v = Eval(stmt.value);
        if (!v.ok()) return Located(v.status());
        Result<TranslationResult> r = Finalize(std::move(*v));
        if (!r.ok()) return Located(r.status());
        return r;
      }
      Status st = ExecAssign(stmt);
      if (!st.ok()) return Located(st);
    }
    return Status::InvalidArgument("function has no return statement");
  }

  const std::set<std::string>& base_relations() const {
    return base_relations_;
  }

 private:
  std::string Fresh() {
    return fn_name_ + "_v" + std::to_string(++counter_);
  }

  /// Prefixes the pylang source line of the statement being translated,
  /// matching the "line N: " rendering of F-series diagnostics. The
  /// StatusCode and original message are preserved (tests pin both).
  Status Located(const Status& s) const {
    if (s.ok() || cur_line_ <= 0) return s;
    return Status(s.code(),
                  "line " + std::to_string(cur_line_) + ": " + s.message());
  }

  EinsumEmitter Emitter() {
    return EinsumEmitter{&program_, [this] { return Fresh(); }};
  }

  // ------------------------------------------------------------ emit
  /// Emits a single-source rule. `outputs` are (column name, term over
  /// src columns); extra atoms (filters/exists) appended after.
  FrameInfo EmitSimple(const FrameInfo& src,
                       const std::vector<std::pair<std::string, TermPtr>>&
                           outputs,
                       tondir::Body extra = {},
                       std::vector<std::string> group_cols = {},
                       std::vector<tondir::SortKey> sort = {},
                       std::optional<int64_t> limit = std::nullopt,
                       bool distinct = false,
                       std::set<size_t> unique_positions = {}) {
    Rule rule;
    rule.body.push_back(Atom::RelAccess(src.relation, src.columns));
    FrameInfo out;
    out.relation = Fresh();
    out.is_array = src.is_array;
    out.layout = src.layout;
    int assign_n = 0;
    for (const auto& [name, term] : outputs) {
      out.columns.push_back(name);
      if (term->kind == Term::Kind::kVar) {
        rule.head.vars.push_back(term->var);
      } else {
        std::string v = "e" + std::to_string(++assign_n) + "_" + name;
        rule.body.push_back(Atom::Compare(v, CmpOp::kEq, term));
        rule.head.vars.push_back(v);
      }
    }
    for (Atom& a : extra) rule.body.push_back(std::move(a));
    rule.head.relation = out.relation;
    rule.head.col_names = out.columns;
    for (const std::string& g : group_cols) {
      // Group vars refer to head vars for the named columns.
      size_t idx = out.FindColumn(g);
      if (idx >= rule.head.vars.size()) continue;  // callers validate
      rule.head.group_vars.push_back(rule.head.vars[idx]);
    }
    for (const tondir::SortKey& k : sort) {
      size_t idx = out.FindColumn(k.var);
      if (idx >= rule.head.vars.size()) continue;  // callers validate
      rule.head.sort_keys.push_back({rule.head.vars[idx], k.ascending});
    }
    rule.head.limit = limit;
    rule.head.distinct = distinct;
    out.unique_positions = unique_positions;
    out.has_id = !out.columns.empty() && out.columns[0] == kIdCol;
    if (out.has_id) out.unique_positions.insert(0);
    program_.relation_info[out.relation] = {out.unique_positions};
    program_.rules.push_back(std::move(rule));
    return out;
  }

  /// Identity projection (all columns).
  std::vector<std::pair<std::string, TermPtr>> AllColumns(
      const FrameInfo& f) {
    std::vector<std::pair<std::string, TermPtr>> outs;
    for (const std::string& c : f.columns) outs.emplace_back(c, Term::Var(c));
    return outs;
  }

  /// Ensures the frame has a leading id column, generating UID if needed
  /// (paper §III-C, implicit joins).
  FrameInfo EnsureId(const FrameInfo& f) {
    if (f.has_id) return f;
    Rule rule;
    rule.body.push_back(Atom::RelAccess(f.relation, f.columns));
    rule.body.push_back(
        Atom::Compare(kIdCol, CmpOp::kEq, Term::Ext("uid", {})));
    FrameInfo out;
    out.relation = Fresh();
    out.columns.push_back(kIdCol);
    for (const std::string& c : f.columns) out.columns.push_back(c);
    out.has_id = true;
    out.is_array = f.is_array;
    out.layout = f.layout;
    out.unique_positions = {0};
    for (size_t p : f.unique_positions) out.unique_positions.insert(p + 1);
    rule.head.relation = out.relation;
    rule.head.vars = out.columns;
    rule.head.col_names = out.columns;
    program_.relation_info[out.relation] = {out.unique_positions};
    program_.rules.push_back(std::move(rule));
    return out;
  }

  /// Converts filter masks into body atoms (decomposing conjunctions and
  /// comparisons for idiomatic SQL).
  void AppendFilter(const TermPtr& cond, tondir::Body* body) {
    if (cond->kind == Term::Kind::kBinary && cond->bin_op == BinOp::kAnd) {
      AppendFilter(cond->children[0], body);
      AppendFilter(cond->children[1], body);
      return;
    }
    if (cond->kind == Term::Kind::kBinary && IsCmp(cond->bin_op)) {
      CmpOp op;
      switch (cond->bin_op) {
        case BinOp::kEq: op = CmpOp::kEq; break;
        case BinOp::kNe: op = CmpOp::kNe; break;
        case BinOp::kLt: op = CmpOp::kLt; break;
        case BinOp::kLe: op = CmpOp::kLe; break;
        case BinOp::kGt: op = CmpOp::kGt; break;
        default: op = CmpOp::kGe; break;
      }
      if (cond->children[0]->kind == Term::Kind::kVar) {
        body->push_back(
            Atom::Compare(cond->children[0]->var, op, cond->children[1]));
        return;
      }
      std::string tmp = "f" + std::to_string(++filter_n_);
      body->push_back(Atom::Compare(tmp, CmpOp::kEq, cond->children[0]));
      body->push_back(Atom::Compare(tmp, op, cond->children[1]));
      return;
    }
    // General boolean term (LIKE, OR, CASE...): bind then compare to TRUE.
    std::string tmp = "f" + std::to_string(++filter_n_);
    body->push_back(Atom::Compare(tmp, CmpOp::kEq, cond));
    body->push_back(Atom::Compare(tmp, CmpOp::kEq,
                                  Term::Const(Value::Bool(true))));
  }

  /// Builds the EXISTS atom for an isin payload.
  Atom MakeExists(const IsinPayload& p) {
    tondir::Body inner;
    std::vector<std::string> vars;
    size_t target = p.frame.FindColumn(p.column);
    for (size_t i = 0; i < p.frame.columns.size(); ++i) {
      vars.push_back("in_" + std::to_string(i));
    }
    inner.push_back(Atom::RelAccess(p.frame.relation, vars));
    inner.push_back(
        Atom::Compare(vars[target], CmpOp::kEq, p.probe));
    return Atom::Exists(std::move(inner), p.negated);
  }

  // ------------------------------------------------------ fusion
  /// True if the atom (or an exists body inside it) reads `rel`.
  static bool ReadsRelation(const Atom& a, const std::string& rel) {
    if (a.kind == Atom::Kind::kRelAccess) return a.relation == rel;
    if (a.kind == Atom::Kind::kExists && a.exists_body) {
      for (const Atom& ia : *a.exists_body) {
        if (ReadsRelation(ia, rel)) return true;
      }
    }
    return false;
  }

  /// Rewrites a filter atom phrased over a relation's *column names* into
  /// one phrased over the producer rule's *head vars* so it can live in the
  /// producer's body. Exists bodies keep their locally-scoped vars; only
  /// probe terms referencing outer columns are substituted.
  static Atom SubstituteAtom(const Atom& a,
                             const std::map<std::string, TermPtr>& subst,
                             const std::map<std::string, std::string>& vmap) {
    Atom out = a.CloneAtom();
    if (out.kind == Atom::Kind::kCompare) {
      auto it = vmap.find(out.var0);
      if (it != vmap.end()) out.var0 = it->second;
      out.term = Term::Substitute(out.term, subst);
    } else if (out.kind == Atom::Kind::kExists && out.exists_body) {
      auto nb = std::make_shared<tondir::Body>();
      for (const Atom& ia : *out.exists_body) {
        nb->push_back(SubstituteAtom(ia, subst, vmap));
      }
      out.exists_body = std::move(nb);
    }
    return out;
  }

  /// Fact-gated region fusion (paper §III-B): folds the filter atoms of
  /// `df[mask]` into the rule producing `df`'s relation instead of emitting
  /// a fresh selection rule. Sound only when the analyzer proved (a) the
  /// base binding is translatable and dies at this statement and (b) every
  /// other alias of the relation dies here too — otherwise a later reader
  /// would observe filtered rows. Every decision is appended to
  /// options_.fusion_log, mirroring the optimizer's rewrite_log.
  std::optional<FrameInfo> TryFuseFilter(const std::string& base_name,
                                         const FrameInfo& f,
                                         const tondir::Body& extra) {
    if (options_.facts == nullptr) return std::nullopt;
    auto log = [&](const std::string& msg) {
      if (options_.fusion_log != nullptr) options_.fusion_log->push_back(msg);
    };
    auto declined = [&](const std::string& reason) {
      log("translate: filter over '" + base_name + "' not fused into " +
          f.relation + ": " + reason);
      return std::nullopt;
    };
    if (base_relations_.count(f.relation)) {
      return declined("base relations are shared, never filtered in place");
    }
    const check::BindingFacts* b = options_.facts->Find(base_name, cur_stmt_);
    if (b == nullptr) return declined("no analyzer facts for the binding");
    if (b->klass != check::Translatability::kTranslatable) {
      return declined(std::string("analyzer classified it ") +
                      check::TranslatabilityName(b->klass) +
                      (b->reason.empty() ? "" : " (" + b->reason + ")"));
    }
    if (!options_.facts->DiesAt(base_name, cur_stmt_)) {
      return declined("liveness: binding is read again after this statement");
    }
    size_t producer = static_cast<size_t>(-1);
    for (size_t i = 0; i < program_.rules.size(); ++i) {
      if (program_.rules[i].head.relation == f.relation) {
        if (producer != static_cast<size_t>(-1)) {
          return declined("relation has multiple producer rules");
        }
        producer = i;
      }
    }
    if (producer == static_cast<size_t>(-1)) {
      return declined("no producer rule in scope");
    }
    Rule& rule = program_.rules[producer];
    if (rule.head.has_group() || rule.head.distinct ||
        rule.head.limit.has_value() || rule.head.has_sort() ||
        rule.HasAggregate()) {
      return declined("producer is a flow breaker (aggregate/distinct/limit)");
    }
    if (rule.HasOuterMarker()) {
      return declined("filtering below an outer join changes its semantics");
    }
    // Rules may only read relations defined by *earlier* rules: every
    // relation the filter atoms reference (isin EXISTS bodies) must already
    // be in scope at the producer's position.
    for (const Atom& a : extra) {
      for (size_t i = producer; i < program_.rules.size(); ++i) {
        if (ReadsRelation(a, program_.rules[i].head.relation)) {
          return declined("filter references relation '" +
                          program_.rules[i].head.relation +
                          "' defined after the producer");
        }
      }
    }
    for (const Rule& r : program_.rules) {
      if (&r == &rule) continue;
      for (const Atom& a : r.body) {
        if (ReadsRelation(a, f.relation)) {
          return declined("another rule reads the relation");
        }
      }
    }
    for (const auto& [name, tv] : env_) {
      if (name == base_name || tv.frame.relation != f.relation) continue;
      if (!options_.facts->DiesAt(name, cur_stmt_)) {
        return declined("alias '" + name + "' outlives this statement");
      }
    }
    for (const auto& [name, af] : append_sources_) {
      if (af.relation == f.relation) {
        return declined("relation is append lineage of '" + name + "'");
      }
    }
    std::map<std::string, TermPtr> subst;
    std::map<std::string, std::string> vmap;
    for (size_t i = 0; i < rule.head.col_names.size() &&
                       i < rule.head.vars.size();
         ++i) {
      subst[rule.head.col_names[i]] = Term::Var(rule.head.vars[i]);
      vmap[rule.head.col_names[i]] = rule.head.vars[i];
    }
    for (const Atom& a : extra) {
      rule.body.push_back(SubstituteAtom(a, subst, vmap));
    }
    log("translate: fused filter into producer of " + f.relation +
        " (analyzer: '" + base_name + "' is translatable and dies at stmt " +
        std::to_string(cur_stmt_) + ", no live alias)");
    return f;
  }

  // ------------------------------------------------------------ eval
  Result<TValue> Eval(const ExprPtr& e) {
    switch (e->kind) {
      case Expr::Kind::kName: {
        auto it = env_.find(e->name);
        if (it == env_.end()) {
          return Status::NotFound("undefined variable '" + e->name + "'");
        }
        return it->second;
      }
      case Expr::Kind::kLiteral: {
        TValue v;
        v.kind = TValue::Kind::kScalar;
        // A literal marked by the serve-path parameterizer becomes an
        // opaque parameter slot; its value is only the typing seed.
        v.term = e->param >= 0 ? Term::Param(e->param, e->literal)
                               : Term::Const(e->literal);
        return v;
      }
      case Expr::Kind::kList:
      case Expr::Kind::kTuple: {
        TValue v;
        v.kind = TValue::Kind::kStrList;
        for (const ExprPtr& c : e->children) {
          if (c->kind != Expr::Kind::kLiteral) {
            return Status::Unsupported("non-literal list item: " +
                                       c->ToString());
          }
          v.literals.push_back(c->literal);
          if (c->literal.type() == DataType::kString) {
            v.strings.push_back(c->literal.AsString());
          }
        }
        return v;
      }
      case Expr::Kind::kAttribute:
        return EvalAttribute(*e);
      case Expr::Kind::kSubscript:
        return EvalSubscript(*e);
      case Expr::Kind::kCall:
        return EvalCall(*e);
      case Expr::Kind::kBinOp:
      case Expr::Kind::kCompare:
      case Expr::Kind::kBoolOp:
        return EvalBinary(*e);
      case Expr::Kind::kUnary:
        return EvalUnary(*e);
    }
    return Status::Internal("unreachable");
  }

  Result<TValue> EvalAttribute(const Expr& e) {
    const std::string& attr = e.name;
    PYTOND_ASSIGN_OR_RETURN(TValue base, Eval(e.children[0]));
    if (base.kind == TValue::Kind::kFrame) {
      if (attr == "values") return MarkArray(base);
      size_t idx = base.frame.FindColumn(attr);
      if (idx == static_cast<size_t>(-1)) {
        return Status::NotFound("column '" + attr + "' in relation " +
                                base.frame.relation);
      }
      TValue v;
      v.kind = TValue::Kind::kColumn;
      v.frame = base.frame;
      v.term = Term::Var(attr);
      return v;
    }
    if (base.kind == TValue::Kind::kColumn) {
      if (attr == "str") {
        base.str_ctx = true;
        return base;
      }
      if (attr == "dt") {
        base.dt_ctx = true;
        return base;
      }
      if (base.dt_ctx &&
          (attr == "year" || attr == "month" || attr == "day")) {
        base.dt_ctx = false;
        base.term = Term::Ext(attr, {base.term});
        return base;
      }
      return Status::Unsupported("attribute '" + attr + "' on a column");
    }
    return Status::Unsupported("attribute '" + attr + "'");
  }

  Result<TValue> MarkArray(TValue v) {
    if (v.kind != TValue::Kind::kFrame) {
      return Status::Unsupported("to_numpy() needs a DataFrame");
    }
    v.frame = EnsureId(v.frame);
    v.frame.is_array = true;
    return v;
  }

  Result<TValue> EvalSubscript(const Expr& e) {
    PYTOND_ASSIGN_OR_RETURN(TValue base, Eval(e.children[0]));
    PYTOND_ASSIGN_OR_RETURN(TValue index, Eval(e.children[1]));
    if (base.kind == TValue::Kind::kGroupBy &&
        index.kind == TValue::Kind::kStrList) {
      // groupby(..)[cols] restricts aggregation inputs; remember them.
      base.strings = index.strings;
      return base;
    }
    if (base.kind != TValue::Kind::kFrame) {
      return Status::Unsupported("subscript on non-frame");
    }
    if (index.kind == TValue::Kind::kScalar &&
        index.term->constant.type() == DataType::kString) {
      const std::string& col = index.term->constant.AsString();
      if (base.frame.FindColumn(col) == static_cast<size_t>(-1)) {
        return Status::NotFound("column '" + col + "'");
      }
      TValue v;
      v.kind = TValue::Kind::kColumn;
      v.frame = base.frame;
      v.term = Term::Var(col);
      return v;
    }
    if (index.kind == TValue::Kind::kStrList) {
      // Projection df[[c1, c2]].
      std::vector<std::pair<std::string, TermPtr>> outs;
      std::set<size_t> uniq;
      for (const std::string& c : index.strings) {
        size_t idx = base.frame.FindColumn(c);
        if (idx == static_cast<size_t>(-1)) {
          return Status::NotFound("column '" + c + "'");
        }
        if (base.frame.unique_positions.count(idx)) {
          uniq.insert(outs.size());
        }
        outs.emplace_back(c, Term::Var(c));
      }
      TValue v;
      v.kind = TValue::Kind::kFrame;
      v.frame = EmitSimple(base.frame, outs, {}, {}, {}, std::nullopt, false,
                           uniq);
      return v;
    }
    if (index.kind == TValue::Kind::kColumn) {
      // Filter df[mask] (including isin payloads as EXISTS atoms).
      if (index.frame.relation != base.frame.relation &&
          !index.isins.empty() && index.term == nullptr) {
        return Status::Unsupported("mask frame mismatch");
      }
      if (index.frame.relation != base.frame.relation) {
        return Status::Unsupported(
            "boolean mask must derive from the filtered frame (got " +
            index.frame.relation + " vs " + base.frame.relation + ")");
      }
      tondir::Body extra;
      if (index.term) AppendFilter(index.term, &extra);
      for (const IsinPayload& p : index.isins) {
        extra.push_back(MakeExists(p));
      }
      if (e.children[0]->kind == Expr::Kind::kName) {
        std::optional<FrameInfo> fused =
            TryFuseFilter(e.children[0]->name, base.frame, extra);
        if (fused.has_value()) {
          TValue v;
          v.kind = TValue::Kind::kFrame;
          v.frame = std::move(*fused);
          return v;
        }
      }
      TValue v;
      v.kind = TValue::Kind::kFrame;
      v.frame = EmitSimple(base.frame, AllColumns(base.frame),
                           std::move(extra), {}, {}, std::nullopt, false,
                           base.frame.unique_positions);
      v.frame.is_array = base.frame.is_array;
      return v;
    }
    return Status::Unsupported("subscript index");
  }

  Result<TValue> EvalUnary(const Expr& e) {
    PYTOND_ASSIGN_OR_RETURN(TValue v, Eval(e.children[0]));
    if (e.op == "~") {
      if (!v.isins.empty() && v.term == nullptr) {
        for (IsinPayload& p : v.isins) p.negated = !p.negated;
        return v;
      }
      if (v.kind == TValue::Kind::kColumn ||
          v.kind == TValue::Kind::kScalar) {
        v.term = Term::If(v.term, Term::Const(Value::Bool(false)),
                          Term::Const(Value::Bool(true)));
        return v;
      }
      return Status::Unsupported("~ on non-mask");
    }
    // Unary minus. A parameter slot can't be folded into its literal, so
    // it negates arithmetically (0 - $pN) like a column does.
    if (v.kind == TValue::Kind::kScalar &&
        v.term->kind == Term::Kind::kParam) {
      v.term = Term::Binary(BinOp::kSub, Term::Const(Value::Int64(0)),
                            v.term);
      return v;
    }
    if (v.kind == TValue::Kind::kScalar &&
        v.term->kind == Term::Kind::kConst) {
      const Value& c = v.term->constant;
      v.term = Term::Const(c.type() == DataType::kFloat64
                               ? Value::Float64(-c.AsFloat64())
                               : Value::Int64(-c.AsInt64()));
      return v;
    }
    if (v.kind == TValue::Kind::kColumn) {
      v.term = Term::Binary(BinOp::kSub, Term::Const(Value::Int64(0)),
                            v.term);
      return v;
    }
    return Status::Unsupported("unary minus");
  }

  Result<TValue> EvalBinary(const Expr& e) {
    PYTOND_ASSIGN_OR_RETURN(TValue l, Eval(e.children[0]));
    PYTOND_ASSIGN_OR_RETURN(TValue r, Eval(e.children[1]));

    // Mask conjunction may carry isin payloads.
    if (e.op == "&") {
      TValue out;
      out.kind = TValue::Kind::kColumn;
      out.frame = l.kind == TValue::Kind::kColumn ? l.frame : r.frame;
      if (l.kind == TValue::Kind::kColumn &&
          r.kind == TValue::Kind::kColumn &&
          l.frame.relation != r.frame.relation) {
        return Status::Unsupported("mask conjunction across frames");
      }
      if (l.term && r.term) {
        out.term = Term::Binary(BinOp::kAnd, l.term, r.term);
      } else {
        out.term = l.term ? l.term : r.term;
      }
      out.isins = l.isins;
      out.isins.insert(out.isins.end(), r.isins.begin(), r.isins.end());
      return out;
    }

    // Array-level elementwise arithmetic.
    if (l.kind == TValue::Kind::kFrame && l.frame.is_array) {
      return ArrayBinary(e.op, l, r);
    }
    if (r.kind == TValue::Kind::kFrame && r.frame.is_array) {
      return ArrayBinary(e.op, l, r);
    }

    auto as_term = [](const TValue& v) -> TermPtr { return v.term; };
    if ((l.kind != TValue::Kind::kColumn &&
         l.kind != TValue::Kind::kScalar) ||
        (r.kind != TValue::Kind::kColumn &&
         r.kind != TValue::Kind::kScalar)) {
      return Status::Unsupported("operands of '" + e.op + "'");
    }
    if (l.kind == TValue::Kind::kColumn &&
        r.kind == TValue::Kind::kColumn &&
        l.frame.relation != r.frame.relation) {
      return Status::Unsupported(
          "column arithmetic across different frames (use merge)");
    }
    static const std::map<std::string, BinOp> kOps = {
        {"+", BinOp::kAdd}, {"-", BinOp::kSub},  {"*", BinOp::kMul},
        {"/", BinOp::kDiv}, {"//", BinOp::kDiv}, {"%", BinOp::kMod},
        {"==", BinOp::kEq}, {"!=", BinOp::kNe},  {"<", BinOp::kLt},
        {"<=", BinOp::kLe}, {">", BinOp::kGt},   {">=", BinOp::kGe},
        {"|", BinOp::kOr},  {"&", BinOp::kAnd},
    };
    auto it = kOps.find(e.op);
    if (it == kOps.end()) {
      if (e.op == "**") {
        TValue out = l.kind == TValue::Kind::kColumn ? l : r;
        out.term = Term::Ext("power", {as_term(l), as_term(r)});
        return out;
      }
      return Status::Unsupported("operator '" + e.op + "'");
    }
    TValue out = l.kind == TValue::Kind::kColumn ? l : r;
    out.kind = l.kind == TValue::Kind::kColumn ||
                       r.kind == TValue::Kind::kColumn
                   ? TValue::Kind::kColumn
                   : TValue::Kind::kScalar;
    out.term = Term::Binary(it->second, as_term(l), as_term(r));
    out.isins.clear();
    out.str_ctx = out.dt_ctx = false;
    return out;
  }

  Result<TValue> ArrayBinary(const std::string& op, const TValue& l,
                             const TValue& r) {
    // array op scalar -> per-column map; array op array -> join on id.
    static const std::map<std::string, BinOp> kOps = {
        {"+", BinOp::kAdd}, {"-", BinOp::kSub}, {"*", BinOp::kMul},
        {"/", BinOp::kDiv},
    };
    auto it = kOps.find(op);
    if (it == kOps.end()) {
      return Status::Unsupported("array operator '" + op + "'");
    }
    if (l.kind == TValue::Kind::kFrame && r.kind == TValue::Kind::kScalar) {
      std::vector<std::pair<std::string, TermPtr>> outs;
      for (const std::string& c : l.frame.columns) {
        if (c == kIdCol) {
          outs.emplace_back(c, Term::Var(c));
        } else {
          outs.emplace_back(c,
                            Term::Binary(it->second, Term::Var(c), r.term));
        }
      }
      TValue v;
      v.kind = TValue::Kind::kFrame;
      v.frame = EmitSimple(l.frame, outs, {}, {}, {}, std::nullopt, false,
                           l.frame.unique_positions);
      v.frame.is_array = true;
      return v;
    }
    if (l.kind == TValue::Kind::kFrame && r.kind == TValue::Kind::kFrame &&
        l.frame.data_width() == r.frame.data_width()) {
      // Elementwise; reuse the hadamard-style join lowering via einsum.
      EinsumSpec spec;
      spec.inputs = {l.frame.data_width() == 1 ? "i" : "ij",
                     r.frame.data_width() == 1 ? "i" : "ij"};
      spec.output = spec.inputs[0];
      if (op == "*") {
        return WrapFrame(LowerDenseEinsum(spec, {l.frame, r.frame},
                                          Emitter()));
      }
      return Status::Unsupported("array-array operator '" + op +
                                 "' (only * is lowered)");
    }
    return Status::Unsupported("array arithmetic shape mismatch");
  }

  Result<TValue> WrapFrame(Result<FrameInfo> f) {
    if (!f.ok()) return f.status();
    TValue v;
    v.kind = TValue::Kind::kFrame;
    v.frame = std::move(*f);
    return v;
  }

  // ------------------------------------------------------------ calls
  Result<TValue> EvalCall(const Expr& e) {
    const ExprPtr& callee = e.children[0];
    if (callee->kind == Expr::Kind::kAttribute) {
      const std::string& method = callee->name;
      const ExprPtr& base_expr = callee->children[0];
      // Module functions: np.xxx / pd.xxx.
      if (base_expr->kind == Expr::Kind::kName &&
          (base_expr->name == "np" || base_expr->name == "numpy")) {
        return EvalNumpyCall(method, e);
      }
      if (base_expr->kind == Expr::Kind::kName &&
          (base_expr->name == "pd" || base_expr->name == "pandas")) {
        if (method == "DataFrame") return EvalDataFrameCtor(e);
        return Status::Unsupported("pd." + method);
      }
      PYTOND_ASSIGN_OR_RETURN(TValue base, Eval(base_expr));
      return EvalMethod(base, method, e);
    }
    if (callee->kind == Expr::Kind::kName && callee->name == "DataFrame") {
      return EvalDataFrameCtor(e);
    }
    return Status::Unsupported("call to " + callee->ToString());
  }

  Result<TValue> EvalDataFrameCtor(const Expr& e) {
    if (e.children.size() == 1) {  // DataFrame() -> empty
      TValue v;
      v.kind = TValue::Kind::kEmptyFrame;
      return v;
    }
    PYTOND_ASSIGN_OR_RETURN(TValue arg, Eval(e.children[1]));
    if (arg.kind != TValue::Kind::kFrame) {
      return Status::Unsupported("DataFrame(<non-array>)");
    }
    arg.frame.is_array = false;
    return arg;
  }

  Result<TValue> EvalNumpyCall(const std::string& fn, const Expr& e) {
    if (fn == "einsum") {
      if (e.children.size() < 3) {
        return Status::InvalidArgument("einsum needs a spec and operands");
      }
      PYTOND_ASSIGN_OR_RETURN(std::string spec_str,
                              LiteralString(e.children[1]));
      PYTOND_ASSIGN_OR_RETURN(EinsumSpec spec, ParseEinsumSpec(spec_str));
      std::vector<FrameInfo> operands;
      TensorLayout layout = options_.layout;
      for (size_t i = 2; i < e.children.size(); ++i) {
        PYTOND_ASSIGN_OR_RETURN(TValue v, Eval(e.children[i]));
        if (v.kind != TValue::Kind::kFrame) {
          return Status::Unsupported("einsum operand must be an array");
        }
        if (v.frame.layout == TensorLayout::kSparse) {
          layout = TensorLayout::kSparse;
        }
        operands.push_back(v.frame);
      }
      // Binary specs lower directly; n-ary specs go through the
      // contraction-path planner first (the opt_einsum role, §III-D).
      return WrapFrame(LowerEinsum(spec, operands, layout, Emitter()));
    }
    if (fn == "where") {
      if (e.children.size() < 4) {
        return Status::InvalidArgument("np.where needs (cond, a, b)");
      }
      PYTOND_ASSIGN_OR_RETURN(TValue c, Eval(e.children[1]));
      PYTOND_ASSIGN_OR_RETURN(TValue a, Eval(e.children[2]));
      PYTOND_ASSIGN_OR_RETURN(TValue b, Eval(e.children[3]));
      TValue out = c;
      out.term = Term::If(c.term, a.term, b.term);
      return out;
    }
    if (fn == "sqrt" || fn == "abs" || fn == "log" || fn == "exp") {
      if (e.children.size() < 2) {
        return Status::InvalidArgument("np." + fn + " needs an argument");
      }
      PYTOND_ASSIGN_OR_RETURN(TValue a, Eval(e.children[1]));
      std::string ext = fn == "log" ? "ln" : fn;
      if (a.kind == TValue::Kind::kColumn ||
          a.kind == TValue::Kind::kScalar) {
        a.term = Term::Ext(ext, {a.term});
        return a;
      }
      return Status::Unsupported("np." + fn + " on non-column");
    }
    return Status::Unsupported("np." + fn);
  }

  Result<TValue> EvalMethod(TValue& base, const std::string& method,
                            const Expr& e) {
    // ---- column methods ----
    if (base.kind == TValue::Kind::kColumn) {
      return EvalColumnMethod(base, method, e);
    }
    if (base.kind == TValue::Kind::kGroupBy) {
      return EvalGroupByMethod(base, method, e);
    }
    if (base.kind != TValue::Kind::kFrame) {
      return Status::Unsupported("method '" + method + "'");
    }
    // ---- frame methods ----
    if (method == "merge") return EvalMerge(base, e);
    if (method == "groupby") {
      if (e.children.size() < 2) {
        return Status::InvalidArgument("groupby needs keys");
      }
      PYTOND_ASSIGN_OR_RETURN(std::vector<std::string> keys,
                              StringList(e.children[1]));
      TValue v;
      v.kind = TValue::Kind::kGroupBy;
      v.frame = base.frame;
      v.group_keys = std::move(keys);
      return v;
    }
    if (method == "agg" || method == "aggregate") {
      return EvalAgg(base.frame, {}, e);
    }
    if (method == "sort_values") {
      const ExprPtr* by = FindKwarg(e, "by");
      std::vector<std::string> keys;
      if (by != nullptr) {
        PYTOND_ASSIGN_OR_RETURN(keys, StringList(*by));
      } else if (e.children.size() > 1) {
        PYTOND_ASSIGN_OR_RETURN(keys, StringList(e.children[1]));
      } else {
        return Status::InvalidArgument("sort_values needs 'by'");
      }
      for (const std::string& k : keys) {
        if (base.frame.FindColumn(k) == static_cast<size_t>(-1)) {
          return Status::NotFound("sort key '" + k + "' in relation " +
                                  base.frame.relation);
        }
      }
      std::vector<bool> asc(keys.size(), true);
      const ExprPtr* ascending = FindKwarg(e, "ascending");
      if (ascending != nullptr) {
        const Expr& a = **ascending;
        if (a.kind == Expr::Kind::kLiteral &&
            a.literal.type() == DataType::kBool) {
          std::fill(asc.begin(), asc.end(), a.literal.AsBool());
        } else if (a.kind == Expr::Kind::kList) {
          for (size_t i = 0; i < a.children.size() && i < asc.size(); ++i) {
            if (a.children[i]->kind == Expr::Kind::kLiteral &&
                a.children[i]->literal.type() == DataType::kBool) {
              asc[i] = a.children[i]->literal.AsBool();
            }
          }
        }
      }
      TValue v = base;
      v.frame.pending_sort.clear();
      for (size_t i = 0; i < keys.size(); ++i) {
        v.frame.pending_sort.push_back({keys[i], asc[i]});
      }
      return v;
    }
    if (method == "head") {
      int64_t n = 5;
      if (e.children.size() > 1 &&
          e.children[1]->kind == Expr::Kind::kLiteral) {
        n = e.children[1]->literal.AsInt64();
      }
      TValue v;
      v.kind = TValue::Kind::kFrame;
      v.frame = EmitSimple(base.frame, AllColumns(base.frame), {}, {},
                           base.frame.pending_sort, n, false,
                           base.frame.unique_positions);
      return v;
    }
    if (method == "drop") {
      std::vector<std::string> cols;
      if (e.children.size() > 1) {
        PYTOND_ASSIGN_OR_RETURN(cols, StringList(e.children[1]));
      } else if (const ExprPtr* kw = FindKwarg(e, "columns")) {
        PYTOND_ASSIGN_OR_RETURN(cols, StringList(*kw));
      }
      std::vector<std::pair<std::string, TermPtr>> outs;
      std::set<size_t> uniq;
      for (size_t i = 0; i < base.frame.columns.size(); ++i) {
        const std::string& c = base.frame.columns[i];
        bool dropped = std::count(cols.begin(), cols.end(), c) > 0;
        // The ID column is never dropped (paper §III-F).
        if (dropped && !(base.frame.has_id && i == 0)) continue;
        if (base.frame.unique_positions.count(i)) uniq.insert(outs.size());
        outs.emplace_back(c, Term::Var(c));
      }
      TValue v;
      v.kind = TValue::Kind::kFrame;
      v.frame = EmitSimple(base.frame, outs, {}, {}, {}, std::nullopt, false,
                           uniq);
      v.frame.is_array = base.frame.is_array;
      return v;
    }
    if (method == "reset_index" || method == "copy" || method == "astype") {
      return base;
    }
    if (method == "to_numpy") return MarkArray(base);
    if (method == "pivot_table") return EvalPivot(base.frame, e);
    // Array methods.
    if (base.frame.is_array) return EvalArrayMethod(base, method, e);
    return Status::Unsupported("DataFrame method '" + method + "'");
  }

  Result<TValue> EvalColumnMethod(TValue& base, const std::string& method,
                                  const Expr& e) {
    if (base.str_ctx) {
      base.str_ctx = false;
      if (method == "startswith" || method == "endswith" ||
          method == "contains") {
        if (e.children.size() < 2) {
          return Status::InvalidArgument(".str." + method +
                                         " needs a pattern");
        }
        PYTOND_ASSIGN_OR_RETURN(std::string pat,
                                LiteralString(e.children[1]));
        std::string like = method == "startswith" ? pat + "%"
                           : method == "endswith" ? "%" + pat
                                                  : "%" + pat + "%";
        base.term = Term::Binary(BinOp::kLike, base.term,
                                 Term::Const(Value::String(like)));
        return base;
      }
      if (method == "slice") {
        if (e.children.size() < 3) {
          return Status::InvalidArgument(".str.slice needs start and stop");
        }
        PYTOND_ASSIGN_OR_RETURN(TValue a, Eval(e.children[1]));
        PYTOND_ASSIGN_OR_RETURN(TValue b, Eval(e.children[2]));
        if (a.kind != TValue::Kind::kScalar ||
            b.kind != TValue::Kind::kScalar ||
            a.term->kind != Term::Kind::kConst ||
            b.term->kind != Term::Kind::kConst ||
            a.term->constant.type() != DataType::kInt64 ||
            b.term->constant.type() != DataType::kInt64) {
          return Status::Unsupported(
              ".str.slice bounds must be integer literals");
        }
        // Python slice [a, b) -> SQL substr(s, a+1, b-a).
        int64_t start = a.term->constant.AsInt64();
        int64_t stop = b.term->constant.AsInt64();
        base.term = Term::Ext(
            "substr", {base.term, Term::Const(Value::Int64(start + 1)),
                       Term::Const(Value::Int64(stop - start))});
        return base;
      }
      return Status::Unsupported(".str." + method);
    }
    if (method == "isin") {
      if (e.children.size() < 2) {
        return Status::InvalidArgument("isin needs an argument");
      }
      PYTOND_ASSIGN_OR_RETURN(TValue other, Eval(e.children[1]));
      if (other.kind == TValue::Kind::kStrList) {
        // Membership in a literal list -> OR chain of equalities.
        TermPtr cond;
        for (const Value& lit : other.literals) {
          TermPtr eq = Term::Binary(BinOp::kEq, base.term->Clone(),
                                    Term::Const(lit));
          cond = cond ? Term::Binary(BinOp::kOr, cond, eq) : eq;
        }
        if (!cond) return Status::InvalidArgument("isin([]) is empty");
        TValue v = base;
        v.term = cond;
        return v;
      }
      FrameInfo other_frame;
      std::string col;
      if (other.kind == TValue::Kind::kColumn) {
        other_frame = other.frame;
        col = other.term->kind == Term::Kind::kVar ? other.term->var : "";
      } else if (other.kind == TValue::Kind::kFrame &&
                 other.frame.columns.size() == 1) {
        other_frame = other.frame;
        col = other.frame.columns[0];
      }
      if (col.empty()) {
        return Status::Unsupported("isin() against this operand");
      }
      TValue v;
      v.kind = TValue::Kind::kColumn;
      v.frame = base.frame;
      v.term = nullptr;
      v.isins.push_back({other_frame, col, base.term, false});
      return v;
    }
    if (method == "unique") {
      std::string name =
          base.term->kind == Term::Kind::kVar ? base.term->var : "value";
      TValue v;
      v.kind = TValue::Kind::kFrame;
      v.frame = EmitSimple(base.frame, {{name, base.term}}, {}, {}, {},
                           std::nullopt, /*distinct=*/true, {0});
      return v;
    }
    static const std::map<std::string, tondir::AggFn> kAggs = {
        {"sum", tondir::AggFn::kSum},     {"min", tondir::AggFn::kMin},
        {"max", tondir::AggFn::kMax},     {"mean", tondir::AggFn::kAvg},
        {"count", tondir::AggFn::kCount},
        {"nunique", tondir::AggFn::kCountDistinct},
    };
    auto agg = kAggs.find(method);
    if (agg != kAggs.end()) {
      // Scalar aggregate: single-row frame.
      TValue v;
      v.kind = TValue::Kind::kFrame;
      v.frame = EmitSimple(base.frame,
                           {{method, Term::Agg(agg->second, base.term)}});
      return v;
    }
    if (method == "round") {
      TValue v = base;
      std::vector<TermPtr> args = {base.term};
      if (e.children.size() > 1) {
        PYTOND_ASSIGN_OR_RETURN(TValue d, Eval(e.children[1]));
        args.push_back(d.term);
      }
      v.term = Term::Ext("round", args);
      return v;
    }
    if (method == "astype") return base;
    return Status::Unsupported("column method '" + method + "'");
  }

  Result<TValue> EvalGroupByMethod(TValue& base, const std::string& method,
                                   const Expr& e) {
    if (method == "agg" || method == "aggregate") {
      return EvalAgg(base.frame, base.group_keys, e);
    }
    static const std::map<std::string, std::string> kWholeFrame = {
        {"sum", "sum"},   {"min", "min"},     {"max", "max"},
        {"mean", "mean"}, {"count", "count"}, {"nunique", "nunique"},
    };
    auto it = kWholeFrame.find(method);
    if (it != kWholeFrame.end()) {
      // Aggregate the selected columns (or all non-key columns).
      std::vector<std::string> cols = base.strings;
      if (cols.empty()) {
        for (const std::string& c : base.frame.columns) {
          if (!std::count(base.group_keys.begin(), base.group_keys.end(),
                          c)) {
            cols.push_back(c);
          }
        }
      }
      return EmitAggregate(base.frame, base.group_keys,
                           [&](auto add) {
                             for (const std::string& c : cols) {
                               add(c, c, it->second);
                             }
                           });
    }
    if (method == "size") {
      return EmitAggregate(base.frame, base.group_keys, [&](auto add) {
        add("size", base.frame.columns[0], "count");
      });
    }
    return Status::Unsupported("groupby method '" + method + "'");
  }

  /// Shared aggregation emitter. `fill` calls add(out_name, col, fn).
  template <typename Filler>
  Result<TValue> EmitAggregate(const FrameInfo& src,
                               const std::vector<std::string>& keys,
                               Filler fill) {
    std::vector<std::pair<std::string, TermPtr>> outs;
    for (const std::string& k : keys) {
      if (src.FindColumn(k) == static_cast<size_t>(-1)) {
        return Status::NotFound("group key '" + k + "'");
      }
      outs.emplace_back(k, Term::Var(k));
    }
    Status st = Status::OK();
    auto add = [&](const std::string& out, const std::string& col,
                   const std::string& fn) {
      static const std::map<std::string, tondir::AggFn> kFns = {
          {"sum", tondir::AggFn::kSum},   {"min", tondir::AggFn::kMin},
          {"max", tondir::AggFn::kMax},   {"mean", tondir::AggFn::kAvg},
          {"avg", tondir::AggFn::kAvg},   {"count", tondir::AggFn::kCount},
          {"nunique", tondir::AggFn::kCountDistinct},
          {"count_distinct", tondir::AggFn::kCountDistinct},
      };
      auto fn_it = kFns.find(fn);
      if (fn_it == kFns.end()) {
        st = Status::Unsupported("aggregate '" + fn + "'");
        return;
      }
      if (src.FindColumn(col) == static_cast<size_t>(-1)) {
        st = Status::NotFound("aggregate input column '" + col + "'");
        return;
      }
      outs.emplace_back(out, Term::Agg(fn_it->second, Term::Var(col)));
    };
    fill(add);
    PYTOND_RETURN_IF_ERROR(st);
    std::set<size_t> uniq;
    if (keys.size() == 1) uniq.insert(0);
    TValue v;
    v.kind = TValue::Kind::kFrame;
    v.frame = EmitSimple(src, outs, {}, keys, {}, std::nullopt, false, uniq);
    return v;
  }

  /// Named aggregation: .agg(out=('col', 'fn'), ...).
  Result<TValue> EvalAgg(const FrameInfo& src,
                         const std::vector<std::string>& keys,
                         const Expr& e) {
    if (e.kwargs.empty()) {
      return Status::Unsupported("agg() requires named aggregations");
    }
    std::vector<std::tuple<std::string, std::string, std::string>> specs;
    for (const auto& [out, spec] : e.kwargs) {
      if (spec->kind != Expr::Kind::kTuple || spec->children.size() != 2) {
        return Status::Unsupported("agg spec must be (column, fn)");
      }
      PYTOND_ASSIGN_OR_RETURN(std::string col,
                              LiteralString(spec->children[0]));
      PYTOND_ASSIGN_OR_RETURN(std::string fn,
                              LiteralString(spec->children[1]));
      specs.emplace_back(out, col, fn);
    }
    return EmitAggregate(src, keys, [&](auto add) {
      for (const auto& [out, col, fn] : specs) add(out, col, fn);
    });
  }

  Result<TValue> EvalPivot(const FrameInfo& src, const Expr& e) {
    const ExprPtr* index = FindKwarg(e, "index");
    const ExprPtr* columns = FindKwarg(e, "columns");
    const ExprPtr* values = FindKwarg(e, "values");
    if (!index || !columns || !values) {
      return Status::InvalidArgument(
          "pivot_table needs index=, columns=, values=");
    }
    PYTOND_ASSIGN_OR_RETURN(std::string idx_col, LiteralString(*index));
    PYTOND_ASSIGN_OR_RETURN(std::string col_col, LiteralString(*columns));
    PYTOND_ASSIGN_OR_RETURN(std::string val_col, LiteralString(*values));
    if (options_.pivot_values.empty()) {
      return Status::InvalidArgument(
          "pivot_table needs distinct values via the decorator "
          "(pivot_values=[...], paper §III-C)");
    }
    // R(i, v1..vk) group(i) :- F(..), (vj = sum(if(c = 'vj', val, 0))).
    std::vector<std::pair<std::string, TermPtr>> outs;
    outs.emplace_back(idx_col, Term::Var(idx_col));
    for (const std::string& dv : options_.pivot_values) {
      TermPtr cond = Term::Binary(BinOp::kEq, Term::Var(col_col),
                                  Term::Const(Value::String(dv)));
      outs.emplace_back(
          "p_" + dv,
          Term::Agg(tondir::AggFn::kSum,
                    Term::If(cond, Term::Var(val_col),
                             Term::Const(Value::Int64(0)))));
    }
    TValue v;
    v.kind = TValue::Kind::kFrame;
    v.frame = EmitSimple(src, outs, {}, {idx_col}, {}, std::nullopt, false,
                         {0});
    return v;
  }

  Result<TValue> EvalArrayMethod(TValue& base, const std::string& method,
                                 const Expr& e) {
    const FrameInfo& f = base.frame;
    EinsumEmitter em = Emitter();
    if (method == "sum") {
      const ExprPtr* axis = FindKwarg(e, "axis");
      EinsumSpec spec;
      bool is_vec = f.data_width() == 1;
      if (axis == nullptr) {
        spec.inputs = {is_vec ? "i" : "ij"};
        spec.output = "";
      } else if ((*axis)->kind != Expr::Kind::kLiteral ||
                 (*axis)->literal.type() != DataType::kInt64) {
        return Status::InvalidArgument("sum(axis=...) must be 0 or 1");
      } else if ((*axis)->literal.AsInt64() == 0) {
        spec.inputs = {"ij"};
        spec.output = "j";
      } else {
        spec.inputs = {"ij"};
        spec.output = "i";
      }
      return WrapFrame(LowerDenseEinsum(spec, {f}, em));
    }
    if (method == "nonzero") {
      tondir::Body extra;
      extra.push_back(Atom::Compare(f.columns.back(), CmpOp::kNe,
                                    Term::Const(Value::Int64(0))));
      TValue v;
      v.kind = TValue::Kind::kFrame;
      v.frame = EmitSimple(f, {{kIdCol, Term::Var(f.columns[0])}},
                           std::move(extra), {}, {}, std::nullopt, false,
                           {0});
      v.frame.is_array = true;
      return v;
    }
    if (method == "all") {
      // min(value) acts as universal quantifier over booleans (§III-D).
      TValue v;
      v.kind = TValue::Kind::kFrame;
      v.frame = EmitSimple(
          f, {{"all_",
               Term::Agg(tondir::AggFn::kMin, Term::Var(f.columns.back()))}});
      return v;
    }
    if (method == "round") {
      std::vector<std::pair<std::string, TermPtr>> outs;
      for (const std::string& c : f.columns) {
        if (c == kIdCol) outs.emplace_back(c, Term::Var(c));
        else outs.emplace_back(c, Term::Ext("round", {Term::Var(c)}));
      }
      TValue v;
      v.kind = TValue::Kind::kFrame;
      v.frame = EmitSimple(f, outs, {}, {}, {}, std::nullopt, false,
                           f.unique_positions);
      v.frame.is_array = true;
      return v;
    }
    if (method == "compress") {
      // compress(mask, axis=1): select columns where the literal mask is
      // truthy (§III-D).
      if (e.children.size() < 2 ||
          e.children[1]->kind != Expr::Kind::kList) {
        return Status::Unsupported("compress() needs a literal mask");
      }
      std::vector<std::pair<std::string, TermPtr>> outs;
      outs.emplace_back(kIdCol, Term::Var(f.columns[0]));
      size_t data0 = f.has_id ? 1 : 0;
      for (size_t i = 0; i < e.children[1]->children.size(); ++i) {
        const Expr& m = *e.children[1]->children[i];
        bool keep = m.kind == Expr::Kind::kLiteral &&
                    ((m.literal.type() == DataType::kBool &&
                      m.literal.AsBool()) ||
                     (m.literal.type() == DataType::kInt64 &&
                      m.literal.AsInt64() != 0));
        if (keep && data0 + i < f.columns.size()) {
          outs.emplace_back(f.columns[data0 + i],
                            Term::Var(f.columns[data0 + i]));
        }
      }
      TValue v;
      v.kind = TValue::Kind::kFrame;
      v.frame = EmitSimple(f, outs, {}, {}, {}, std::nullopt, false, {0});
      v.frame.is_array = true;
      return v;
    }
    if (method == "transpose") {
      return Status::Unsupported(
          "dense transpose requires a known row count; use sparse layout");
    }
    return Status::Unsupported("array method '" + method + "'");
  }

  // ------------------------------------------------------------ merge
  Result<TValue> EvalMerge(TValue& left, const Expr& e) {
    if (e.children.size() < 2) {
      return Status::InvalidArgument("merge needs a right operand");
    }
    PYTOND_ASSIGN_OR_RETURN(TValue right_v, Eval(e.children[1]));
    PYTOND_ASSIGN_OR_RETURN(FrameInfo right, FrameOf(right_v));
    const FrameInfo& lf = left.frame;

    std::string how = "inner";
    if (const ExprPtr* kw = FindKwarg(e, "how")) {
      PYTOND_ASSIGN_OR_RETURN(how, LiteralString(*kw));
    }
    std::vector<std::string> lkeys, rkeys;
    if (const ExprPtr* kw = FindKwarg(e, "on")) {
      PYTOND_ASSIGN_OR_RETURN(lkeys, StringList(*kw));
      rkeys = lkeys;
    } else {
      if (const ExprPtr* kw2 = FindKwarg(e, "left_on")) {
        PYTOND_ASSIGN_OR_RETURN(lkeys, StringList(*kw2));
      }
      if (const ExprPtr* kw2 = FindKwarg(e, "right_on")) {
        PYTOND_ASSIGN_OR_RETURN(rkeys, StringList(*kw2));
      }
    }
    if (how != "cross" && (lkeys.empty() || lkeys.size() != rkeys.size())) {
      return Status::InvalidArgument("merge needs matching join keys");
    }
    for (const std::string& k : lkeys) {
      if (lf.FindColumn(k) == static_cast<size_t>(-1)) {
        return Status::NotFound("left merge key '" + k + "'");
      }
    }
    for (const std::string& k : rkeys) {
      if (right.FindColumn(k) == static_cast<size_t>(-1)) {
        return Status::NotFound("right merge key '" + k + "'");
      }
    }

    bool outer = how == "left" || how == "right" || how == "outer";
    bool same_key_names = lkeys == rkeys;

    // Variable naming: left col c -> "a_c", right -> "b_c"; inner-join keys
    // share the left var (paper §III-C). Outer joins keep all vars distinct
    // and add a marker atom.
    auto lvar = [](const std::string& c) { return "a_" + c; };
    auto rvar = [](const std::string& c) { return "b_" + c; };

    Rule rule;
    std::vector<std::string> lvars, rvars;
    for (const std::string& c : lf.columns) lvars.push_back(lvar(c));
    for (const std::string& c : right.columns) rvars.push_back(rvar(c));
    if (!outer && how != "cross") {
      for (size_t i = 0; i < lkeys.size(); ++i) {
        size_t rpos = right.FindColumn(rkeys[i]);
        rvars[rpos] = lvar(lkeys[i]);
      }
    }
    rule.body.push_back(Atom::RelAccess(lf.relation, lvars));
    rule.body.push_back(Atom::RelAccess(right.relation, rvars));
    if (outer) {
      std::vector<std::string> marker_vars;
      for (size_t i = 0; i < lkeys.size(); ++i) {
        marker_vars.push_back(lvar(lkeys[i]));
        marker_vars.push_back(rvar(rkeys[i]));
      }
      std::string marker = how == "left" ? "outer_left"
                           : how == "right" ? "outer_right"
                                            : "outer_full";
      rule.body.push_back(Atom::External(marker, marker_vars));
    }

    // Output columns per Pandas semantics: shared key (same name) once;
    // overlapping non-key columns suffixed _x/_y.
    FrameInfo out;
    out.relation = Fresh();
    auto overlaps = [&](const std::string& c) {
      return lf.FindColumn(c) != static_cast<size_t>(-1) &&
             right.FindColumn(c) != static_cast<size_t>(-1);
    };
    auto is_key = [](const std::vector<std::string>& ks,
                     const std::string& c) {
      return std::count(ks.begin(), ks.end(), c) > 0;
    };
    for (const std::string& c : lf.columns) {
      bool shared_key = same_key_names && is_key(lkeys, c);
      std::string name =
          (!shared_key && overlaps(c)) ? c + "_x" : c;
      out.columns.push_back(name);
      rule.head.vars.push_back(lvar(c));
    }
    for (const std::string& c : right.columns) {
      if (same_key_names && is_key(rkeys, c) && how != "cross") {
        continue;  // single instance of shared key columns
      }
      std::string name = overlaps(c) ? c + "_y" : c;
      out.columns.push_back(name);
      rule.head.vars.push_back(rvars[right.FindColumn(c)]);
    }
    rule.head.relation = out.relation;
    rule.head.col_names = out.columns;

    // Uniqueness: joining on a unique right key preserves left uniqueness
    // (and vice versa).
    auto key_unique = [&](const FrameInfo& f,
                          const std::vector<std::string>& ks) {
      return ks.size() == 1 &&
             f.unique_positions.count(f.FindColumn(ks[0])) > 0;
    };
    if (how == "inner" || how == "left") {
      if (key_unique(right, rkeys)) {
        for (size_t p : lf.unique_positions) out.unique_positions.insert(p);
      }
    }
    if ((how == "inner" || how == "right") && key_unique(lf, lkeys)) {
      size_t base_off = lf.columns.size();
      size_t skipped = 0;
      for (size_t i = 0; i < right.columns.size(); ++i) {
        if (same_key_names && is_key(rkeys, right.columns[i]) &&
            how != "cross") {
          ++skipped;
          continue;
        }
        if (right.unique_positions.count(i)) {
          out.unique_positions.insert(base_off + i - skipped);
        }
      }
    }
    out.has_id = !out.columns.empty() && out.columns[0] == kIdCol;
    program_.relation_info[out.relation] = {out.unique_positions};
    program_.rules.push_back(std::move(rule));
    TValue v;
    v.kind = TValue::Kind::kFrame;
    v.frame = std::move(out);
    return v;
  }

  Result<FrameInfo> FrameOf(TValue& v) {
    if (v.kind == TValue::Kind::kFrame) return v.frame;
    if (v.kind == TValue::Kind::kColumn) {
      // Materialize the column as a single-column relation.
      std::string name =
          v.term->kind == Term::Kind::kVar ? v.term->var : "value";
      return EmitSimple(v.frame, {{name, v.term}});
    }
    return Status::Unsupported("expected a DataFrame");
  }

  // ------------------------------------------------------------ stmts
  Status ExecAssign(const Stmt& stmt) {
    if (stmt.target->kind == Expr::Kind::kName) {
      PYTOND_ASSIGN_OR_RETURN(TValue v, Eval(stmt.value));
      env_[stmt.target->name] = std::move(v);
      return Status::OK();
    }
    // df['col'] = expr  (column creation / implicit joins, §III-C).
    const Expr& target = *stmt.target;
    if (target.children[0]->kind != Expr::Kind::kName) {
      return Status::Unsupported("subscript assignment target");
    }
    const std::string& df_name = target.children[0]->name;
    PYTOND_ASSIGN_OR_RETURN(std::string col,
                            LiteralString(target.children[1]));
    auto it = env_.find(df_name);
    if (it == env_.end()) {
      return Status::NotFound("undefined variable '" + df_name + "'");
    }
    PYTOND_ASSIGN_OR_RETURN(TValue value, Eval(stmt.value));
    if (value.kind != TValue::Kind::kColumn &&
        value.kind != TValue::Kind::kScalar) {
      return Status::Unsupported("column assignment value");
    }

    TValue& dst = it->second;
    if (dst.kind == TValue::Kind::kEmptyFrame) {
      if (value.kind != TValue::Kind::kColumn) {
        return Status::Unsupported("first column must come from a frame");
      }
      TValue v;
      v.kind = TValue::Kind::kFrame;
      v.frame = EmitSimple(value.frame, {{col, value.term}});
      // Remember lineage for id alignment on later appends.
      v.frame.pending_sort.clear();
      env_[df_name] = std::move(v);
      append_sources_[df_name] = value.frame;
      return Status::OK();
    }
    if (dst.kind != TValue::Kind::kFrame) {
      return Status::Unsupported("subscript assignment on non-frame");
    }
    bool same_frame =
        value.kind == TValue::Kind::kScalar ||
        value.frame.relation == dst.frame.relation ||
        (append_sources_.count(df_name) &&
         append_sources_[df_name].relation == value.frame.relation);

    if (value.kind == TValue::Kind::kScalar ||
        value.frame.relation == dst.frame.relation) {
      // Same-frame column append / replacement.
      std::vector<std::pair<std::string, TermPtr>> outs;
      bool replaced = false;
      for (const std::string& c : dst.frame.columns) {
        if (c == col) {
          outs.emplace_back(c, value.term);
          replaced = true;
        } else {
          outs.emplace_back(c, Term::Var(c));
        }
      }
      if (!replaced) outs.emplace_back(col, value.term);
      FrameInfo nf = EmitSimple(dst.frame, outs, {}, {}, {}, std::nullopt,
                                false, dst.frame.unique_positions);
      nf.is_array = dst.frame.is_array;
      dst.frame = std::move(nf);
      return Status::OK();
    }
    (void)same_frame;
    // Implicit join through UID columns (paper §III-C).
    FrameInfo dst_id = EnsureId(dst.frame);
    FrameInfo src_id = EnsureId(value.frame);
    Rule rule;
    std::vector<std::string> dvars, svars;
    for (const std::string& c : dst_id.columns) dvars.push_back("a_" + c);
    for (const std::string& c : src_id.columns) svars.push_back("b_" + c);
    svars[0] = dvars[0];  // join on the shared id
    rule.body.push_back(Atom::RelAccess(dst_id.relation, dvars));
    rule.body.push_back(Atom::RelAccess(src_id.relation, svars));
    // Rebuild the value term over prefixed source vars.
    std::map<std::string, TermPtr> subst;
    for (size_t i = 0; i < src_id.columns.size(); ++i) {
      subst[src_id.columns[i]] = Term::Var(svars[i]);
    }
    TermPtr vterm = Term::Substitute(value.term, subst);
    FrameInfo out;
    out.relation = Fresh();
    for (size_t i = 0; i < dst_id.columns.size(); ++i) {
      out.columns.push_back(dst_id.columns[i]);
      rule.head.vars.push_back(dvars[i]);
    }
    out.columns.push_back(col);
    rule.body.push_back(Atom::Compare("newc", CmpOp::kEq, vterm));
    rule.head.vars.push_back("newc");
    rule.head.relation = out.relation;
    rule.head.col_names = out.columns;
    out.has_id = true;
    out.unique_positions = {0};
    program_.relation_info[out.relation] = {out.unique_positions};
    program_.rules.push_back(std::move(rule));
    dst.frame = std::move(out);
    return Status::OK();
  }

  Result<TranslationResult> Finalize(TValue v) {
    if (v.kind == TValue::Kind::kColumn) {
      PYTOND_ASSIGN_OR_RETURN(FrameInfo f, FrameOf(v));
      v.kind = TValue::Kind::kFrame;
      v.frame = std::move(f);
    }
    if (v.kind != TValue::Kind::kFrame) {
      return Status::Unsupported("return value must be a DataFrame/array");
    }
    // Sink rule: copy with the deferred ORDER BY (paper §III-E).
    FrameInfo out = EmitSimple(v.frame, AllColumns(v.frame), {}, {},
                               v.frame.pending_sort, std::nullopt, false,
                               v.frame.unique_positions);
    // Rename the sink to a stable name.
    program_.rules.back().head.relation = fn_name_ + "_out";
    TranslationResult result;
    result.output_columns = out.columns;
    result.program = std::move(program_);
    return result;
  }

  const Catalog& catalog_;
  TranslateOptions options_;
  tondir::Program program_;
  std::map<std::string, TValue> env_;
  std::map<std::string, FrameInfo> append_sources_;
  std::set<std::string> base_relations_;
  std::string fn_name_;
  int counter_ = 0;
  int filter_n_ = 0;
  int cur_stmt_ = -1;  // ANF statement index being translated
  int cur_line_ = 0;   // its pylang source line
};

}  // namespace

Result<TranslationResult> TranslateFunction(const py::Function& function,
                                            const Catalog& catalog,
                                            const TranslateOptions& options) {
  Translator t(catalog, options);
  return t.Run(function);
}

}  // namespace pytond::frontend
