#ifndef PYTOND_FRONTEND_TRANSLATE_EINSUM_H_
#define PYTOND_FRONTEND_TRANSLATE_EINSUM_H_

#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "frontend/translate/translator.h"
#include "tondir/ir.h"

namespace pytond::frontend {

/// Parsed einsum specification: per-operand index strings + output string,
/// normalized to letters i, j, k by first appearance (paper §III-D).
struct EinsumSpec {
  std::vector<std::string> inputs;
  std::string output;

  std::string ToString() const;
};

Result<EinsumSpec> ParseEinsumSpec(const std::string& spec);

/// Normalizes index letters by order of first appearance: 'ab,cc->ba'
/// becomes 'ij,kk->ji'.
EinsumSpec NormalizeSpec(const EinsumSpec& spec);

/// One step of the kernel-reduction plan (paper §III-D / Table VI).
struct PlanStep {
  /// Kernel id (ES1..ES9) or a named reduction ("diag", "rowsum",
  /// "colsum", "vecsum", "swap", "transpose").
  std::string kernel;
  /// Which operand the step applies to (0/1), -1 for spec-level steps.
  int operand = -1;
  /// Spec after the step.
  EinsumSpec after;
};

/// Computes the reduction plan that turns an arbitrary binary (or unary)
/// einsum into one of the fundamental kernels. This reproduces the paper's
/// worked example: 'ab,cc->ba' -> diag -> vecsum -> swap -> transpose ->
/// ES6. Fails for specs outside the supported space.
Result<std::vector<PlanStep>> PlanEinsum(const EinsumSpec& spec);

/// Emission hooks the lowering uses to add rules to the program under
/// construction.
struct EinsumEmitter {
  tondir::Program* program;
  std::function<std::string()> fresh_relation;
};

/// Lowers an einsum over dense-layout operands, returning the output
/// frame. Covers the kernel set exercised by the paper's workloads
/// (sums, diagonal, inner/hadamard products, matrix-vector and
/// gram/covariance contractions, matmul, scalar scaling).
Result<FrameInfo> LowerDenseEinsum(const EinsumSpec& spec,
                                   const std::vector<FrameInfo>& operands,
                                   const EinsumEmitter& emitter);

/// Lowers an einsum over sparse (COO) operands: joins on shared letters,
/// groups by output letters, sums the product — fully general for unary
/// and binary specs.
Result<FrameInfo> LowerSparseEinsum(const EinsumSpec& spec,
                                    const std::vector<FrameInfo>& operands,
                                    const EinsumEmitter& emitter);

/// N-ary einsum (paper §III-D, the opt_einsum path): greedily contracts
/// operand pairs sharing the most letters into binary einsums, then
/// lowers each through the dense or sparse path. Specs whose intermediate
/// results would exceed order 2 are rejected.
Result<FrameInfo> LowerEinsum(const EinsumSpec& spec,
                              const std::vector<FrameInfo>& operands,
                              TensorLayout layout,
                              const EinsumEmitter& emitter);

/// The contraction path chosen for an n-ary spec: pairs of operand
/// indices with the intermediate spec each contraction computes
/// (exposed for tests).
struct ContractionStep {
  size_t lhs, rhs;       // operand positions contracted
  EinsumSpec binary;     // the binary einsum performed
};
Result<std::vector<ContractionStep>> PlanContractionPath(
    const EinsumSpec& spec);

}  // namespace pytond::frontend

#endif  // PYTOND_FRONTEND_TRANSLATE_EINSUM_H_
