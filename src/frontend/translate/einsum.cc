#include "frontend/translate/einsum.h"

#include <algorithm>
#include <map>
#include <set>

namespace pytond::frontend {

using tondir::Atom;
using tondir::BinOp;
using tondir::Rule;
using tondir::Term;
using tondir::TermPtr;

std::string EinsumSpec::ToString() const {
  std::string s;
  for (size_t i = 0; i < inputs.size(); ++i) {
    if (i) s += ",";
    s += inputs[i];
  }
  return s + "->" + output;
}

Result<EinsumSpec> ParseEinsumSpec(const std::string& spec) {
  EinsumSpec out;
  size_t arrow = spec.find("->");
  if (arrow == std::string::npos) {
    return Status::InvalidArgument("einsum spec needs '->': " + spec);
  }
  std::string lhs = spec.substr(0, arrow);
  out.output = spec.substr(arrow + 2);
  std::string cur;
  for (char c : lhs) {
    if (c == ',') {
      out.inputs.push_back(cur);
      cur.clear();
    } else if (c != ' ') {
      cur += c;
    }
  }
  out.inputs.push_back(cur);
  for (const std::string& in : out.inputs) {
    if (in.size() > 2) {
      return Status::Unsupported("tensors above order 2: '" + in + "'");
    }
  }
  for (char c : out.output) {
    bool found = false;
    for (const std::string& in : out.inputs) {
      if (in.find(c) != std::string::npos) found = true;
    }
    if (!found) {
      return Status::InvalidArgument(
          std::string("output index '") + c + "' not in any input");
    }
  }
  return out;
}

EinsumSpec NormalizeSpec(const EinsumSpec& spec) {
  static constexpr char kLetters[] = "ijklmn";
  std::map<char, char> rename;
  auto canon = [&](char c) {
    auto it = rename.find(c);
    if (it != rename.end()) return it->second;
    char fresh = kLetters[rename.size() % (sizeof(kLetters) - 1)];
    rename[c] = fresh;
    return fresh;
  };
  EinsumSpec out;
  for (const std::string& in : spec.inputs) {
    std::string s;
    for (char c : in) s += canon(c);
    out.inputs.push_back(s);
  }
  for (char c : spec.output) out.output += canon(c);
  return out;
}

namespace {

bool ContainsChar(const std::string& s, char c) {
  return s.find(c) != std::string::npos;
}

/// Direct kernel table (Table VI). Returns the ES id or empty.
std::string MatchKernel(const EinsumSpec& s) {
  std::string key = s.ToString();
  static const std::map<std::string, std::string> kKernels = {
      {"i->", "ES1"},        {"ij->i", "ES2"},     {"ii->i", "ES3"},
      {"ij->ji", "ES4"},     {",->", "ES5"},       {",ij->ij", "ES6"},
      {"ij,ij->ij", "ES7"},  {"ij,ik->jk", "ES8"}, {"ij,ik->ij", "ES9"},
      // Extended kernels the workloads rely on (reducible to the ES set
      // via swap/transpose but cheaper lowered directly).
      {"ij->j", "COLSUM"},   {"ij->", "MATSUM"},   {"i,i->", "INNER"},
      {"ij,j->i", "MATVEC"}, {"ij,jk->ik", "MATMUL"},
      {"i,->i", "VSCALE"},   {",i->i", "VSCALE"},  {"ij,->ij", "MSCALE"},
  };
  auto it = kKernels.find(key);
  return it == kKernels.end() ? "" : it->second;
}

}  // namespace

Result<std::vector<PlanStep>> PlanEinsum(const EinsumSpec& raw) {
  EinsumSpec spec = NormalizeSpec(raw);
  std::vector<PlanStep> plan;
  for (int guard = 0; guard < 8; ++guard) {
    if (!MatchKernel(spec).empty()) {
      plan.push_back({MatchKernel(spec), -1, spec});
      return plan;
    }
    bool progressed = false;
    // 1. Diagonal extraction: an operand 'xx' becomes 'x'.
    for (size_t op = 0; op < spec.inputs.size() && !progressed; ++op) {
      const std::string& in = spec.inputs[op];
      if (in.size() == 2 && in[0] == in[1]) {
        spec.inputs[op] = in.substr(0, 1);
        plan.push_back({"diag", static_cast<int>(op), spec});
        progressed = true;
      }
    }
    if (progressed) continue;
    // 2. Sum out letters private to one operand and absent from output.
    for (size_t op = 0; op < spec.inputs.size() && !progressed; ++op) {
      std::string& in = spec.inputs[op];
      for (size_t pos = 0; pos < in.size(); ++pos) {
        char c = in[pos];
        bool elsewhere = ContainsChar(spec.output, c);
        for (size_t other = 0; other < spec.inputs.size(); ++other) {
          if (other != op && ContainsChar(spec.inputs[other], c)) {
            elsewhere = true;
          }
        }
        if (elsewhere) continue;
        std::string kernel;
        if (in.size() == 1) {
          kernel = "vecsum";
          in = "";
        } else if (pos == 1) {
          kernel = "rowsum";  // 'xy->x'
          in = in.substr(0, 1);
        } else {
          kernel = "colsum";  // 'xy->y'
          in = in.substr(1, 1);
        }
        plan.push_back({kernel, static_cast<int>(op),
                        NormalizeSpec(spec)});
        spec = NormalizeSpec(spec);
        progressed = true;
        break;
      }
    }
    if (progressed) continue;
    // 3. Swap binary operands.
    if (spec.inputs.size() == 2) {
      EinsumSpec swapped = spec;
      std::swap(swapped.inputs[0], swapped.inputs[1]);
      swapped = NormalizeSpec(swapped);
      if (!MatchKernel(swapped).empty() ||
          swapped.ToString() != spec.ToString()) {
        spec = swapped;
        plan.push_back({"swap", -1, spec});
        progressed = true;
      }
    }
    if (progressed && !MatchKernel(spec).empty()) continue;
    // 4. Transpose an input so the output ordering matches.
    for (size_t op = 0; op < spec.inputs.size(); ++op) {
      if (spec.inputs[op].size() != 2) continue;
      EinsumSpec t = spec;
      std::swap(t.inputs[op][0], t.inputs[op][1]);
      EinsumSpec tn = NormalizeSpec(t);
      if (!MatchKernel(tn).empty()) {
        plan.push_back({"transpose", static_cast<int>(op), tn});
        spec = tn;
        progressed = true;
        break;
      }
    }
    if (!progressed) {
      return Status::Unsupported("no reduction plan for einsum '" +
                                 raw.ToString() + "'");
    }
  }
  return Status::Unsupported("einsum plan did not converge: '" +
                             raw.ToString() + "'");
}

// ===================================================================
// Dense lowering
// ===================================================================

namespace {

constexpr char kId[] = "id";

TermPtr Col(const std::string& name) { return Term::Var(name); }

TermPtr Mul(TermPtr a, TermPtr b) {
  return Term::Binary(BinOp::kMul, std::move(a), std::move(b));
}

TermPtr AddChain(std::vector<TermPtr> terms) {
  TermPtr acc = terms[0];
  for (size_t i = 1; i < terms.size(); ++i) {
    acc = Term::Binary(BinOp::kAdd, acc, terms[i]);
  }
  return acc;
}

std::vector<std::string> DataCols(const FrameInfo& f) {
  std::vector<std::string> out;
  for (size_t i = f.has_id ? 1 : 0; i < f.columns.size(); ++i) {
    out.push_back(f.columns[i]);
  }
  return out;
}

FrameInfo MakeArrayFrame(const std::string& relation, size_t ncols,
                         bool with_id) {
  FrameInfo f;
  f.relation = relation;
  f.is_array = true;
  f.has_id = with_id;
  if (with_id) f.columns.push_back(kId);
  for (size_t i = 0; i < ncols; ++i) {
    f.columns.push_back("c" + std::to_string(i));
  }
  if (with_id) f.unique_positions = {0};
  return f;
}

/// Emits: out(id, c0..cn) :- in(...), terms. Access vars use the input's
/// own column names; outputs computed by `exprs`.
FrameInfo EmitMap(const FrameInfo& in, std::vector<TermPtr> exprs,
                  bool keep_id, const EinsumEmitter& e) {
  Rule rule;
  rule.body.push_back(Atom::RelAccess(in.relation, in.columns));
  FrameInfo out = MakeArrayFrame(e.fresh_relation(), exprs.size(), keep_id);
  out.layout = in.layout;
  if (keep_id) {
    rule.head.vars.push_back(kId);
  }
  for (size_t i = 0; i < exprs.size(); ++i) {
    std::string v = "o" + std::to_string(i);
    rule.body.push_back(Atom::Compare(v, tondir::CmpOp::kEq, exprs[i]));
    rule.head.vars.push_back(v);
  }
  rule.head.relation = out.relation;
  rule.head.col_names = out.columns;
  e.program->rules.push_back(std::move(rule));
  e.program->relation_info[out.relation] = {out.unique_positions};
  return out;
}

/// Emits a global-aggregate rule producing a single flat row.
FrameInfo EmitFlatAgg(const std::vector<const FrameInfo*>& ins,
                      const std::vector<TermPtr>& agg_terms,
                      const EinsumEmitter& e, bool join_on_id) {
  Rule rule;
  // Join all inputs on their id columns by binding the same var.
  for (size_t k = 0; k < ins.size(); ++k) {
    std::vector<std::string> vars = ins[k]->columns;
    if (join_on_id && ins[k]->has_id) vars[0] = kId;
    // Distinguish column vars per operand.
    for (size_t i = (ins[k]->has_id ? 1 : 0); i < vars.size(); ++i) {
      std::string v = "x";
      v += std::to_string(k);
      v += "_";
      v += vars[i];
      vars[i] = std::move(v);
    }
    rule.body.push_back(Atom::RelAccess(ins[k]->relation, vars));
  }
  FrameInfo out = MakeArrayFrame(e.fresh_relation(), agg_terms.size(),
                                 /*with_id=*/false);
  for (size_t i = 0; i < agg_terms.size(); ++i) {
    std::string v = "o" + std::to_string(i);
    rule.body.push_back(Atom::Compare(v, tondir::CmpOp::kEq, agg_terms[i]));
    rule.head.vars.push_back(v);
  }
  rule.head.relation = out.relation;
  rule.head.col_names = out.columns;
  e.program->rules.push_back(std::move(rule));
  e.program->relation_info[out.relation] = {};
  return out;
}

/// Prefixed column term for operand k's data column i in a joined body.
TermPtr XCol(size_t k, const FrameInfo& f, size_t i) {
  return Col("x" + std::to_string(k) + "_" + DataCols(f)[i]);
}

/// Reshapes a 1-row flat frame (r*c values, row-major) into an r x c
/// matrix using a constant index relation + CASE chains (the paper's
/// v4_2/v4_3 pattern in Figure 2).
FrameInfo EmitReshape(const FrameInfo& flat, size_t rows, size_t cols,
                      const EinsumEmitter& e) {
  Rule rule;
  rule.body.push_back(Atom::RelAccess(flat.relation, flat.columns));
  std::vector<Value> indices;
  for (size_t r = 0; r < rows; ++r) {
    indices.push_back(Value::Int64(static_cast<int64_t>(r)));
  }
  rule.body.push_back(Atom::ConstRel(kId, std::move(indices)));
  FrameInfo out = MakeArrayFrame(e.fresh_relation(), cols, /*with_id=*/true);
  rule.head.vars.push_back(kId);
  for (size_t c = 0; c < cols; ++c) {
    // o_c = if(id=0, flat[0*cols+c], if(id=1, flat[1*cols+c], ...)).
    TermPtr expr = Col(flat.columns[(rows - 1) * cols + c]);
    for (size_t r = rows - 1; r-- > 0;) {
      expr = Term::If(
          Term::Binary(BinOp::kEq, Col(kId),
                       Term::Const(Value::Int64(static_cast<int64_t>(r)))),
          Col(flat.columns[r * cols + c]), expr);
    }
    std::string v = "o" + std::to_string(c);
    rule.body.push_back(Atom::Compare(v, tondir::CmpOp::kEq, expr));
    rule.head.vars.push_back(v);
  }
  rule.head.relation = out.relation;
  rule.head.col_names = out.columns;
  e.program->rules.push_back(std::move(rule));
  e.program->relation_info[out.relation] = {{0}};
  return out;
}

/// Pivots a dense vector (id, c0) of known length n into a single flat row
/// (v0..v{n-1}) via sum(if(id = p, c0, 0)).
FrameInfo EmitVectorPivot(const FrameInfo& vec, size_t n,
                          const EinsumEmitter& e) {
  std::vector<TermPtr> aggs;
  for (size_t p = 0; p < n; ++p) {
    aggs.push_back(Term::Agg(
        tondir::AggFn::kSum,
        Term::If(Term::Binary(BinOp::kEq, Col(kId),
                              Term::Const(Value::Int64(
                                  static_cast<int64_t>(p)))),
                 XCol(0, vec, 0), Term::Const(Value::Int64(0)))));
  }
  // Rename vec id to `id` for the XCol reference.
  FrameInfo v = vec;
  return EmitFlatAgg({&v}, aggs, e, /*join_on_id=*/true);
}

}  // namespace

Result<FrameInfo> LowerDenseEinsum(const EinsumSpec& raw,
                                   const std::vector<FrameInfo>& operands,
                                   const EinsumEmitter& e) {
  EinsumSpec spec = NormalizeSpec(raw);
  std::string kernel = MatchKernel(spec);
  const std::string key = spec.ToString();

  // Validate operand orders match the spec.
  for (size_t i = 0; i < spec.inputs.size(); ++i) {
    size_t want = spec.inputs[i].size();
    if (i < operands.size() && want > 0 && operands[i].data_width() == 0) {
      return Status::InvalidArgument("einsum operand " + std::to_string(i) +
                                     " has no data columns");
    }
  }

  if (kernel == "ES1") {  // 'i->'
    const FrameInfo& v = operands[0];
    return EmitFlatAgg({&v}, {Term::Agg(tondir::AggFn::kSum, XCol(0, v, 0))},
                       e, false);
  }
  if (kernel == "ES2") {  // 'ij->i' : per-row sum across columns
    const FrameInfo& m = operands[0];
    std::vector<TermPtr> parts;
    for (const std::string& c : DataCols(m)) parts.push_back(Col(c));
    return EmitMap(m, {AddChain(parts)}, /*keep_id=*/true, e);
  }
  if (kernel == "ES3") {  // 'ii->i' : diagonal
    const FrameInfo& m = operands[0];
    std::vector<std::string> cols = DataCols(m);
    TermPtr expr = Col(cols.back());
    for (size_t r = cols.size() - 1; r-- > 0;) {
      expr = Term::If(
          Term::Binary(BinOp::kEq, Col(m.columns[0]),
                       Term::Const(Value::Int64(static_cast<int64_t>(r)))),
          Col(cols[r]), expr);
    }
    FrameInfo in = m;
    Rule rule;
    rule.body.push_back(Atom::RelAccess(in.relation, in.columns));
    FrameInfo out = MakeArrayFrame(e.fresh_relation(), 1, true);
    rule.head.vars = {in.columns[0], "o0"};
    rule.body.push_back(Atom::Compare("o0", tondir::CmpOp::kEq, expr));
    rule.head.relation = out.relation;
    rule.head.col_names = out.columns;
    e.program->rules.push_back(std::move(rule));
    e.program->relation_info[out.relation] = {{0}};
    return out;
  }
  if (kernel == "COLSUM" || kernel == "MATSUM") {  // 'ij->j' / 'ij->'
    const FrameInfo& m = operands[0];
    std::vector<TermPtr> aggs;
    if (kernel == "MATSUM") {
      std::vector<TermPtr> parts;
      for (const std::string& c : DataCols(m)) {
        parts.push_back(Col("x0_" + c));
      }
      aggs.push_back(Term::Agg(tondir::AggFn::kSum, AddChain(parts)));
      return EmitFlatAgg({&m}, aggs, e, false);
    }
    for (size_t i = 0; i < m.data_width(); ++i) {
      aggs.push_back(Term::Agg(tondir::AggFn::kSum, XCol(0, m, i)));
    }
    FrameInfo flat = EmitFlatAgg({&m}, aggs, e, false);
    // A 'j' output is a vector: reshape 1 x n into n x 1.
    return EmitReshape(flat, m.data_width(), 1, e);
  }
  if (kernel == "INNER") {  // 'i,i->'
    const FrameInfo &a = operands[0], &b = operands[1];
    return EmitFlatAgg(
        {&a, &b},
        {Term::Agg(tondir::AggFn::kSum, Mul(XCol(0, a, 0), XCol(1, b, 0)))},
        e, /*join_on_id=*/true);
  }
  if (kernel == "ES7") {  // 'ij,ij->ij' hadamard
    const FrameInfo &a = operands[0], &b = operands[1];
    // Join on id with prefixed vars, per-column product.
    Rule rule;
    std::vector<std::string> va = a.columns, vb = b.columns;
    va[0] = kId;
    vb[0] = kId;
    for (size_t i = 1; i < va.size(); ++i) va[i] = "a_" + va[i];
    for (size_t i = 1; i < vb.size(); ++i) vb[i] = "b_" + vb[i];
    rule.body.push_back(Atom::RelAccess(a.relation, va));
    rule.body.push_back(Atom::RelAccess(b.relation, vb));
    FrameInfo out = MakeArrayFrame(e.fresh_relation(), a.data_width(), true);
    rule.head.vars.push_back(kId);
    for (size_t i = 0; i < a.data_width(); ++i) {
      std::string v = "o" + std::to_string(i);
      rule.body.push_back(Atom::Compare(
          v, tondir::CmpOp::kEq,
          Mul(Col(va[i + 1]), Col(vb[i + 1]))));
      rule.head.vars.push_back(v);
    }
    rule.head.relation = out.relation;
    rule.head.col_names = out.columns;
    e.program->rules.push_back(std::move(rule));
    e.program->relation_info[out.relation] = {{0}};
    return out;
  }
  if (kernel == "ES8") {  // 'ij,ik->jk' gram / batch outer
    // Lowered the naive way (paper Figure 2): per-row outer products
    // grouped by the unique id, then a global sum, then a reshape. The
    // TondIR optimizer removes the group-by (O2), the self-join when both
    // operands are the same relation (O3), and fuses the rules (O4).
    const FrameInfo &a = operands[0], &b = operands[1];
    size_t n = a.data_width(), m = b.data_width();
    Rule r1;
    std::vector<std::string> va = a.columns, vb = b.columns;
    va[0] = kId;
    vb[0] = kId;
    for (size_t i = 1; i < va.size(); ++i) va[i] = "a_" + va[i];
    for (size_t i = 1; i < vb.size(); ++i) vb[i] = "b_" + vb[i];
    r1.body.push_back(Atom::RelAccess(a.relation, va));
    r1.body.push_back(Atom::RelAccess(b.relation, vb));
    FrameInfo partial = MakeArrayFrame(e.fresh_relation(), n * m, true);
    r1.head.vars.push_back(kId);
    r1.head.group_vars.push_back(kId);
    for (size_t j = 0; j < n; ++j) {
      for (size_t k = 0; k < m; ++k) {
        std::string v = "p" + std::to_string(j * m + k);
        r1.body.push_back(Atom::Compare(
            v, tondir::CmpOp::kEq,
            Term::Agg(tondir::AggFn::kSum,
                      Mul(Col(va[j + 1]), Col(vb[k + 1])))));
        r1.head.vars.push_back(v);
      }
    }
    r1.head.relation = partial.relation;
    r1.head.col_names = partial.columns;
    e.program->rules.push_back(std::move(r1));
    e.program->relation_info[partial.relation] = {{0}};

    std::vector<TermPtr> totals;
    for (size_t i = 0; i < n * m; ++i) {
      totals.push_back(
          Term::Agg(tondir::AggFn::kSum, XCol(0, partial, i)));
    }
    FrameInfo flat = EmitFlatAgg({&partial}, totals, e, false);
    return EmitReshape(flat, n, m, e);
  }
  if (kernel == "ES9") {  // 'ij,ik->ij' row-scaled matrix
    const FrameInfo &a = operands[0], &b = operands[1];
    if (b.data_width() != 1) {
      return Status::Unsupported("ES9 expects a column vector second operand");
    }
    Rule rule;
    std::vector<std::string> va = a.columns, vb = b.columns;
    va[0] = kId;
    vb[0] = kId;
    for (size_t i = 1; i < va.size(); ++i) va[i] = "a_" + va[i];
    for (size_t i = 1; i < vb.size(); ++i) vb[i] = "b_" + vb[i];
    rule.body.push_back(Atom::RelAccess(a.relation, va));
    rule.body.push_back(Atom::RelAccess(b.relation, vb));
    FrameInfo out = MakeArrayFrame(e.fresh_relation(), a.data_width(), true);
    rule.head.vars.push_back(kId);
    for (size_t i = 0; i < a.data_width(); ++i) {
      std::string v = "o" + std::to_string(i);
      rule.body.push_back(Atom::Compare(v, tondir::CmpOp::kEq,
                                        Mul(Col(va[i + 1]), Col(vb[1]))));
      rule.head.vars.push_back(v);
    }
    rule.head.relation = out.relation;
    rule.head.col_names = out.columns;
    e.program->rules.push_back(std::move(rule));
    e.program->relation_info[out.relation] = {{0}};
    return out;
  }
  if (kernel == "MATVEC") {  // 'ij,j->i'
    const FrameInfo &m = operands[0], &v = operands[1];
    FrameInfo vt = EmitVectorPivot(v, m.data_width(), e);
    // out(id, s) :- M(id, a_c0..), VT(w0..wn), s = sum_k a_ck * w_k.
    Rule rule;
    std::vector<std::string> mv = m.columns;
    mv[0] = kId;
    for (size_t i = 1; i < mv.size(); ++i) mv[i] = "a_" + mv[i];
    std::vector<std::string> wv;
    for (size_t i = 0; i < vt.columns.size(); ++i) {
      wv.push_back("w" + std::to_string(i));
    }
    rule.body.push_back(Atom::RelAccess(m.relation, mv));
    rule.body.push_back(Atom::RelAccess(vt.relation, wv));
    std::vector<TermPtr> parts;
    for (size_t i = 0; i < m.data_width(); ++i) {
      parts.push_back(Mul(Col(mv[i + 1]), Col(wv[i])));
    }
    FrameInfo out = MakeArrayFrame(e.fresh_relation(), 1, true);
    rule.head.vars = {kId, "o0"};
    rule.body.push_back(
        Atom::Compare("o0", tondir::CmpOp::kEq, AddChain(parts)));
    rule.head.relation = out.relation;
    rule.head.col_names = out.columns;
    e.program->rules.push_back(std::move(rule));
    e.program->relation_info[out.relation] = {{0}};
    return out;
  }
  if (kernel == "MATMUL") {  // 'ij,jk->ik'
    const FrameInfo &a = operands[0], &b = operands[1];
    size_t p = a.data_width(), k = b.data_width();
    // Flatten b (p rows x k cols) into one row of p*k values.
    std::vector<TermPtr> aggs;
    for (size_t r = 0; r < p; ++r) {
      for (size_t c = 0; c < k; ++c) {
        aggs.push_back(Term::Agg(
            tondir::AggFn::kSum,
            Term::If(Term::Binary(BinOp::kEq, Term::Var("x0_" + b.columns[0]),
                                  Term::Const(Value::Int64(
                                      static_cast<int64_t>(r)))),
                     XCol(0, b, c), Term::Const(Value::Int64(0)))));
      }
    }
    // EmitFlatAgg prefixes operand-0 data cols with x0_, but we also need
    // its id var; rebind manually.
    Rule flat_rule;
    std::vector<std::string> bv = b.columns;
    bv[0] = "x0_" + bv[0];
    for (size_t i = 1; i < bv.size(); ++i) bv[i] = "x0_" + bv[i];
    flat_rule.body.push_back(Atom::RelAccess(b.relation, bv));
    FrameInfo bf = MakeArrayFrame(e.fresh_relation(), p * k, false);
    for (size_t i = 0; i < aggs.size(); ++i) {
      std::string v = "o" + std::to_string(i);
      flat_rule.body.push_back(Atom::Compare(v, tondir::CmpOp::kEq, aggs[i]));
      flat_rule.head.vars.push_back(v);
    }
    flat_rule.head.relation = bf.relation;
    flat_rule.head.col_names = bf.columns;
    e.program->rules.push_back(std::move(flat_rule));
    e.program->relation_info[bf.relation] = {};

    Rule rule;
    std::vector<std::string> av = a.columns;
    av[0] = kId;
    for (size_t i = 1; i < av.size(); ++i) av[i] = "a_" + av[i];
    std::vector<std::string> bw;
    for (size_t i = 0; i < bf.columns.size(); ++i) {
      bw.push_back("w" + std::to_string(i));
    }
    rule.body.push_back(Atom::RelAccess(a.relation, av));
    rule.body.push_back(Atom::RelAccess(bf.relation, bw));
    FrameInfo out = MakeArrayFrame(e.fresh_relation(), k, true);
    rule.head.vars.push_back(kId);
    for (size_t c = 0; c < k; ++c) {
      std::vector<TermPtr> parts;
      for (size_t j = 0; j < p; ++j) {
        parts.push_back(Mul(Col(av[j + 1]), Col(bw[j * k + c])));
      }
      std::string v = "oo" + std::to_string(c);
      rule.body.push_back(
          Atom::Compare(v, tondir::CmpOp::kEq, AddChain(parts)));
      rule.head.vars.push_back(v);
    }
    rule.head.relation = out.relation;
    rule.head.col_names = out.columns;
    e.program->rules.push_back(std::move(rule));
    e.program->relation_info[out.relation] = {{0}};
    return out;
  }

  return Status::Unsupported("dense einsum kernel for '" + raw.ToString() +
                             "' (plan-level reductions: " +
                             NormalizeSpec(raw).ToString() + ")");
}

// ===================================================================
// Sparse (COO) lowering
// ===================================================================

Result<FrameInfo> LowerSparseEinsum(const EinsumSpec& raw,
                                    const std::vector<FrameInfo>& operands,
                                    const EinsumEmitter& e) {
  EinsumSpec spec = NormalizeSpec(raw);
  if (spec.inputs.size() > 2) {
    return Status::Unsupported("sparse einsum supports <= 2 operands");
  }
  Rule rule;
  std::vector<TermPtr> val_terms;
  for (size_t k = 0; k < spec.inputs.size(); ++k) {
    const FrameInfo& f = operands[k];
    const std::string& idx = spec.inputs[k];
    // COO columns: one index column per letter + trailing value column.
    if (f.columns.size() != idx.size() + 1) {
      return Status::InvalidArgument(
          "sparse operand " + std::to_string(k) + " has " +
          std::to_string(f.columns.size()) + " columns, spec '" + idx +
          "' wants " + std::to_string(idx.size() + 1));
    }
    std::vector<std::string> vars;
    for (size_t i = 0; i < idx.size(); ++i) {
      // Shared letters share var names -> natural join.
      vars.push_back(std::string("ix_") + idx[i]);
    }
    std::string val_var = "val" + std::to_string(k);
    vars.push_back(val_var);
    // Repeated letter within one operand ('ii'): both positions get the
    // same var, which TondIR treats as an equality filter.
    rule.body.push_back(Atom::RelAccess(f.relation, vars));
    val_terms.push_back(Term::Var(val_var));
  }
  TermPtr product = val_terms[0];
  for (size_t i = 1; i < val_terms.size(); ++i) {
    product = Mul(product, val_terms[i]);
  }

  FrameInfo out;
  out.relation = e.fresh_relation();
  out.is_array = true;
  out.layout = TensorLayout::kSparse;
  for (size_t i = 0; i < spec.output.size(); ++i) {
    std::string col = spec.output.size() == 1
                          ? "row_id"
                          : (i == 0 ? "row_id" : "col_id");
    out.columns.push_back(col);
    rule.head.vars.push_back(std::string("ix_") + spec.output[i]);
    rule.head.group_vars.push_back(std::string("ix_") + spec.output[i]);
  }
  out.columns.push_back("val");
  rule.body.push_back(Atom::Compare(
      "v_out", tondir::CmpOp::kEq, Term::Agg(tondir::AggFn::kSum, product)));
  rule.head.vars.push_back("v_out");
  rule.head.relation = out.relation;
  rule.head.col_names = out.columns;
  e.program->rules.push_back(std::move(rule));
  e.program->relation_info[out.relation] = {};
  return out;
}

// ===================================================================
// N-ary contraction path (the opt_einsum role, §III-D)
// ===================================================================

namespace {

size_t SharedLetters(const std::string& a, const std::string& b) {
  size_t n = 0;
  for (char c : a) {
    if (ContainsChar(b, c)) ++n;
  }
  return n;
}

}  // namespace

Result<std::vector<ContractionStep>> PlanContractionPath(
    const EinsumSpec& spec) {
  std::vector<ContractionStep> steps;
  std::vector<std::string> live = spec.inputs;
  std::vector<size_t> origin(live.size());
  for (size_t i = 0; i < origin.size(); ++i) origin[i] = i;

  while (live.size() > 2) {
    // Greedy: contract the pair sharing the most letters (ties: earliest).
    size_t bi = 0, bj = 1, best = 0;
    for (size_t i = 0; i < live.size(); ++i) {
      for (size_t j = i + 1; j < live.size(); ++j) {
        size_t shared = SharedLetters(live[i], live[j]);
        if (shared > best) {
          best = shared;
          bi = i;
          bj = j;
        }
      }
    }
    // Letters of the pair that must survive (used by output or others).
    std::string keep;
    for (char c : live[bi] + live[bj]) {
      if (ContainsChar(keep, c)) continue;
      bool needed = ContainsChar(spec.output, c);
      for (size_t k = 0; k < live.size() && !needed; ++k) {
        if (k != bi && k != bj && ContainsChar(live[k], c)) needed = true;
      }
      if (needed) keep += c;
    }
    if (keep.size() > 2) {
      return Status::Unsupported(
          "n-ary einsum intermediate exceeds order 2: '" + keep + "'");
    }
    ContractionStep step;
    step.lhs = origin[bi];
    step.rhs = origin[bj];
    step.binary.inputs = {live[bi], live[bj]};
    step.binary.output = keep;
    steps.push_back(step);
    // The result replaces the first operand of the pair; its id in the
    // operand store is n_operands + (step index).
    live[bi] = keep;
    origin[bi] = spec.inputs.size() + steps.size() - 1;
    live.erase(live.begin() + static_cast<std::ptrdiff_t>(bj));
    origin.erase(origin.begin() + static_cast<std::ptrdiff_t>(bj));
  }
  if (live.size() == 1 && live[0] == spec.output) {
    return steps;  // the last contraction already produced the output
  }
  ContractionStep final_step;
  final_step.lhs = origin[0];
  final_step.rhs = live.size() > 1 ? origin[1] : origin[0];
  final_step.binary.inputs = live;
  final_step.binary.output = spec.output;
  steps.push_back(final_step);
  return steps;
}

Result<FrameInfo> LowerEinsum(const EinsumSpec& spec,
                              const std::vector<FrameInfo>& operands,
                              TensorLayout layout,
                              const EinsumEmitter& emitter) {
  auto lower_binary = [&](const EinsumSpec& s,
                          const std::vector<FrameInfo>& ops)
      -> Result<FrameInfo> {
    if (layout == TensorLayout::kSparse) {
      return LowerSparseEinsum(s, ops, emitter);
    }
    return LowerDenseEinsum(s, ops, emitter);
  };
  if (spec.inputs.size() <= 2) return lower_binary(spec, operands);

  PYTOND_ASSIGN_OR_RETURN(std::vector<ContractionStep> path,
                          PlanContractionPath(spec));
  // Operand store: original operands followed by intermediates in step
  // order (ids assigned in PlanContractionPath).
  std::vector<FrameInfo> store = operands;
  for (size_t s = 0; s < path.size(); ++s) {
    const ContractionStep& step = path[s];
    std::vector<FrameInfo> ops;
    ops.push_back(store[step.lhs]);
    if (step.binary.inputs.size() > 1) ops.push_back(store[step.rhs]);
    PYTOND_ASSIGN_OR_RETURN(FrameInfo out,
                            lower_binary(step.binary, ops));
    store.push_back(std::move(out));
  }
  return store.back();
}

}  // namespace pytond::frontend
