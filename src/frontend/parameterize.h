#ifndef PYTOND_FRONTEND_PARAMETERIZE_H_
#define PYTOND_FRONTEND_PARAMETERIZE_H_

#include <string>
#include <vector>

#include "common/value.h"
#include "frontend/pylang/ast.h"

namespace pytond::frontend {

/// One extracted parameter slot of a prepared statement: the static type
/// the plan was compiled against and the literal the slot was extracted
/// from (the default binding when Execute() is called without arguments).
struct ParamSlot {
  DataType type = DataType::kNull;
  Value seed;
  int line = 0;
};

/// Auto-parameterization for the serve path (DESIGN.md §14): walks every
/// expression of `fn` and replaces *filter-shaped* literals — number and
/// string literals appearing under a comparison, possibly nested in
/// arithmetic or unary minus — with parameter slots, in deterministic
/// pre-order. Structural literals (subscript column names, groupby/sort
/// lists, call and decorator kwargs, isin lists, slice bounds, head(n))
/// are never touched: the translator consumes those values at compile
/// time, so substituting them would change the plan shape, not a binding.
///
/// Marking mutates the literal nodes in place (py::Expr::param); callers
/// own the parse tree. Returns the slots in marking order; empty means
/// the function has nothing to parameterize and prepared execution
/// degenerates to the literal-keyed path.
std::vector<ParamSlot> ParameterizeFunction(py::Function* fn);

/// Deterministic structural rendering of a (possibly parameterized)
/// function: marked literals print as `$pN`, everything else by shape.
/// Two sources that differ only in parameterizable literal values
/// serialize identically — this is the prepared-plan cache key, which is
/// what makes the cache hit across per-client literal variation.
std::string SkeletonKey(const py::Function& fn);

}  // namespace pytond::frontend

#endif  // PYTOND_FRONTEND_PARAMETERIZE_H_
