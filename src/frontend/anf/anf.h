#ifndef PYTOND_FRONTEND_ANF_ANF_H_
#define PYTOND_FRONTEND_ANF_ANF_H_

#include <vector>

#include "common/status.h"
#include "frontend/pylang/ast.h"

namespace pytond::frontend {

/// A-normal form rewriting (paper §III-B): nested dataframe-level
/// operations (calls, subscripts, comparisons, boolean masks) are hoisted
/// into fresh `_vN` assignments so every statement performs one API-level
/// step. Input variable names are preserved; literal structures (lists,
/// tuples, kwargs) stay inline because they are arguments, not operations.
Result<std::vector<py::Stmt>> ToAnf(const std::vector<py::Stmt>& body);

}  // namespace pytond::frontend

#endif  // PYTOND_FRONTEND_ANF_ANF_H_
