#include "frontend/anf/anf.h"

namespace pytond::frontend {

namespace {

using py::Expr;
using py::ExprPtr;
using py::Stmt;

class AnfRewriter {
 public:
  Result<std::vector<Stmt>> Rewrite(const std::vector<Stmt>& body) {
    std::vector<Stmt> out;
    for (const Stmt& s : body) {
      cur_line_ = s.line;
      Stmt copy = s;
      PYTOND_ASSIGN_OR_RETURN(copy.value,
                              Walk(s.value, /*top_level=*/true, &out));
      if (copy.target && copy.target->kind == Expr::Kind::kSubscript) {
        // Normalize the frame side of `df['c'] = ...` too.
        ExprPtr target = std::make_shared<Expr>(*copy.target);
        PYTOND_ASSIGN_OR_RETURN(
            target->children[0],
            Walk(copy.target->children[0], /*top_level=*/true, &out));
        copy.target = target;
      }
      out.push_back(std::move(copy));
    }
    return out;
  }

 private:
  static bool IsHoistable(const Expr& e) {
    switch (e.kind) {
      case Expr::Kind::kCall:
      case Expr::Kind::kSubscript:
      case Expr::Kind::kCompare:
      case Expr::Kind::kBoolOp:
        return true;
      default:
        return false;
    }
  }

  Result<ExprPtr> Walk(const ExprPtr& e, bool top_level,
                       std::vector<Stmt>* out) {
    ExprPtr copy = std::make_shared<Expr>(*e);
    switch (e->kind) {
      case Expr::Kind::kName:
      case Expr::Kind::kLiteral:
      case Expr::Kind::kList:   // literal argument structure: keep inline
      case Expr::Kind::kTuple:  // ditto (named-agg specs etc.)
        return copy;
      case Expr::Kind::kAttribute: {
        PYTOND_ASSIGN_OR_RETURN(copy->children[0],
                                Walk(e->children[0], false, out));
        return copy;
      }
      case Expr::Kind::kCall: {
        // Normalize the callee and positional args; kwargs stay inline
        // (they carry config like column lists, not data operations).
        for (size_t i = 0; i < copy->children.size(); ++i) {
          PYTOND_ASSIGN_OR_RETURN(copy->children[i],
                                  Walk(e->children[i], false, out));
        }
        break;
      }
      case Expr::Kind::kSubscript:
      case Expr::Kind::kBinOp:
      case Expr::Kind::kCompare:
      case Expr::Kind::kBoolOp:
      case Expr::Kind::kUnary: {
        for (size_t i = 0; i < copy->children.size(); ++i) {
          PYTOND_ASSIGN_OR_RETURN(copy->children[i],
                                  Walk(e->children[i], false, out));
        }
        break;
      }
    }
    if (!top_level && IsHoistable(*copy)) {
      std::string tmp = "_v" + std::to_string(++counter_);
      Stmt hoisted;
      hoisted.kind = Stmt::Kind::kAssign;
      hoisted.line = copy->line > 0 ? copy->line : cur_line_;
      hoisted.target = py::MakeName(tmp);
      hoisted.target->line = hoisted.line;
      hoisted.value = copy;
      out->push_back(std::move(hoisted));
      auto ref = py::MakeName(tmp);
      ref->line = hoisted.line;
      return ref;
    }
    return copy;
  }

  int counter_ = 0;
  int cur_line_ = 0;  // line of the statement currently being rewritten
};

}  // namespace

Result<std::vector<py::Stmt>> ToAnf(const std::vector<py::Stmt>& body) {
  return AnfRewriter().Rewrite(body);
}

}  // namespace pytond::frontend
