#include "frontend/compiler.h"

#include "analysis/dataflow/dataflow.h"
#include "analysis/physical/physical.h"
#include "analysis/verifier.h"
#include "frontend/analysis/analyzer.h"
#include "frontend/anf/anf.h"
#include "frontend/pylang/parser.h"

namespace pytond::frontend {

namespace {

Result<Compiled> CompileOne(const py::Function& fn, const Catalog& catalog,
                            const CompileOptions& options,
                            const std::vector<ParamSlot>& slots) {
  // Decorator arguments override compile options (paper §III-A).
  TranslateOptions topts;
  topts.layout = options.layout;
  for (const auto& [key, value] : fn.decorator_kwargs) {
    if (key == "layout") {
      if (value->kind == py::Expr::Kind::kLiteral &&
          value->literal.type() == DataType::kString) {
        topts.layout = value->literal.AsString() == "sparse"
                           ? TensorLayout::kSparse
                           : TensorLayout::kDense;
      }
    } else if (key == "pivot_values") {
      for (const auto& item : value->children) {
        if (item->kind == py::Expr::Kind::kLiteral &&
            item->literal.type() == DataType::kString) {
          topts.pivot_values.push_back(item->literal.AsString());
        }
      }
    }
  }

  py::Function normalized = fn;
  obs::Span anf_span(options.trace, "anf", "phase");
  PYTOND_ASSIGN_OR_RETURN(normalized.body, ToAnf(fn.body));
  anf_span.End();

  Compiled out;
  out.function_name = fn.name;

  // Frontend translatability analysis (F-series, DESIGN.md §11): schema /
  // shape / liveness facts over the same ANF body the translator walks.
  // Errors abort before translation with a located message; warnings ride
  // along ahead of the verifier's T-warnings; liveness facts gate the
  // translator's region fusion.
  check::FunctionFacts ffacts;
  if (options.frontend_checks) {
    obs::Span analyze_span(options.trace, "analyze", "phase");
    check::AnalyzerOptions copts;
    copts.catalog = &catalog;
    copts.layout = topts.layout;
    copts.pivot_values = topts.pivot_values;
    ffacts = check::AnalyzeFunction(normalized, copts);
    analyze_span.AddCounter(
        "bindings", static_cast<int64_t>(ffacts.bindings.size()));
    analyze_span.AddCounter(
        "diagnostics", static_cast<int64_t>(ffacts.diagnostics.size()));
    analyze_span.End();
    if (!ffacts.error_status.ok()) return ffacts.error_status;
    for (analysis::Diagnostic& d : ffacts.diagnostics) {
      out.diagnostics.push_back(std::move(d));
    }
    topts.facts = &ffacts;
    topts.fusion_log = &out.rewrite_log;
  }

  obs::Span translate_span(options.trace, "translate", "phase");
  PYTOND_ASSIGN_OR_RETURN(TranslationResult tr,
                          TranslateFunction(normalized, catalog, topts));
  translate_span.AddCounter("rules",
                            static_cast<int64_t>(tr.program.rules.size()));
  translate_span.End();

  out.output_columns = tr.output_columns;
  out.tondir_before = tr.program.ToString();

  std::set<std::string> base;
  for (const auto& [rel, cols] : tr.program.base_columns) base.insert(rel);

  if (options.verify) {
    // The translator must hand the optimizer a semantically sound program;
    // anything the verifier flags here is a translator bug, not user error.
    obs::Span verify_span(options.trace, "verify", "phase");
    analysis::VerifyOptions vopts;
    vopts.base_relations = base;
    vopts.deep_lints = options.deep_lints;
    auto diags = analysis::VerifyProgram(tr.program, vopts);
    if (analysis::HasErrors(diags)) {
      return Status::Internal("translator produced invalid TondIR for '" +
                              fn.name + "':\n" +
                              analysis::FormatDiagnostics(diags) +
                              "--- program ---\n" + tr.program.ToString());
    }
    // Keep warnings with the compiled artifact so cached compiles re-emit
    // them instead of dropping them on cache hits (appended after any
    // frontend F-warnings).
    for (analysis::Diagnostic& d : diags) {
      out.diagnostics.push_back(std::move(d));
    }
  }

  opt::OptimizerOptions oopts =
      opt::OptimizerOptions::Preset(options.optimization_level);
  if (options.verify_each_pass.has_value()) {
    oopts.verify_each_pass = *options.verify_each_pass;
  } else if (!options.verify) {
    oopts.verify_each_pass = false;
  }
  oopts.trace = options.trace;
  oopts.rewrite_log = &out.rewrite_log;
  PYTOND_RETURN_IF_ERROR(opt::Optimize(&tr.program, base, oopts));
  out.tondir_after = tr.program.ToString();

  if (!slots.empty()) {
    // Param-slot safety (P040-P042): the optimizer must treat kParam
    // terms as opaque. A folded or retyped slot bakes one client's
    // binding into a skeleton plan the cache shares across bindings.
    obs::Span pspan(options.trace, "verify_params", "phase");
    std::vector<DataType> slot_types;
    slot_types.reserve(slots.size());
    for (const ParamSlot& s : slots) slot_types.push_back(s.type);
    auto pdiags =
        analysis::physical::VerifyParamSlots(tr.program, slot_types);
    PYTOND_RETURN_IF_ERROR(analysis::physical::CheckOrError(
        pdiags, "parameterize:" + fn.name));
  }

  // Re-derive column facts on the optimized program so codegen can emit
  // type-aware literals (dialect adaptation, e.g. DATE casts).
  analysis::dataflow::AnalyzeOptions aopts;
  aopts.base_relations = base;
  analysis::dataflow::ProgramFacts facts =
      analysis::dataflow::AnalyzeProgram(tr.program, aopts);

  sqlgen::SqlGenOptions sopts;
  sopts.dialect = options.dialect;
  sopts.trace = options.trace;
  sopts.facts = &facts;
  PYTOND_ASSIGN_OR_RETURN(out.sql, sqlgen::GenerateSql(tr.program, sopts));

  if (!slots.empty()) {
    // P043: every declared slot must surface as `$pN` in the emitted
    // SQL, and no `$pN` may reference an undeclared slot — the serve
    // path binds EXECUTE arguments positionally against this text.
    auto sdiags =
        analysis::physical::VerifySkeletonSql(out.sql, slots.size());
    PYTOND_RETURN_IF_ERROR(
        analysis::physical::CheckOrError(sdiags, "skeleton:" + fn.name));
  }
  return out;
}

}  // namespace

Result<std::vector<Compiled>> CompileModule(const std::string& source,
                                            const Catalog& catalog,
                                            const CompileOptions& options) {
  obs::Span compile_span(options.trace, "compile", "compile");
  obs::Span parse_span(options.trace, "parse", "phase");
  PYTOND_ASSIGN_OR_RETURN(py::Module module, py::ParseModule(source));
  parse_span.AddCounter("functions",
                        static_cast<int64_t>(module.functions.size()));
  parse_span.End();
  if (module.functions.empty()) {
    return Status::InvalidArgument("no @pytond-decorated function found");
  }
  std::vector<Compiled> out;
  for (py::Function& fn : module.functions) {
    // Serve-path auto-parameterization runs on the freshly parsed tree,
    // before ANF/analysis, so every later phase sees the same marked
    // literals Session::Prepare keyed the skeleton on.
    std::vector<ParamSlot> slots;
    if (options.parameterize) slots = ParameterizeFunction(&fn);
    PYTOND_ASSIGN_OR_RETURN(Compiled c,
                            CompileOne(fn, catalog, options, slots));
    c.params = std::move(slots);
    out.push_back(std::move(c));
  }
  return out;
}

Result<Compiled> CompileFunction(const std::string& source,
                                 const Catalog& catalog,
                                 const CompileOptions& options) {
  PYTOND_ASSIGN_OR_RETURN(std::vector<Compiled> all,
                          CompileModule(source, catalog, options));
  if (all.size() != 1) {
    return Status::InvalidArgument("expected exactly one @pytond function");
  }
  return std::move(all[0]);
}

}  // namespace pytond::frontend
