#include "frontend/pylang/parser.h"

#include <cctype>
#include <cstdlib>
#include <optional>

namespace pytond::frontend::py {

namespace {

enum class Tok { kEnd, kNewline, kName, kNumber, kString, kOp, kKeyword };

struct Token {
  Tok kind = Tok::kEnd;
  std::string text;
  Value number;
  int line = 1;
  int col = 1;  // 1-based column of token start
};

bool IsKeyword(const std::string& s) {
  return s == "def" || s == "return" || s == "and" || s == "or" ||
         s == "not" || s == "True" || s == "False" || s == "None" ||
         s == "in";
}

class Lexer {
 public:
  explicit Lexer(const std::string& src) : src_(src) { Tokenize(); }

  const std::vector<Token>& tokens() const { return tokens_; }

 private:
  void Tokenize() {
    int line = 1;
    int col = 1;
    int depth = 0;
    size_t i = 0;
    bool line_start = true;
    int indent = 0;
    while (i < src_.size()) {
      char c = src_[i];
      if (c == '\n') {
        if (depth == 0) {
          if (!tokens_.empty() && tokens_.back().kind != Tok::kNewline) {
            tokens_.push_back({Tok::kNewline, "\n", {}, line, col});
          }
        }
        ++line;
        col = 1;
        ++i;
        line_start = true;
        indent = 0;
        continue;
      }
      if (line_start && (c == ' ' || c == '\t')) {
        indent += c == '\t' ? 8 : 1;
        ++i;
        ++col;
        continue;
      }
      if (c == ' ' || c == '\t' || c == '\r' || c == '\\') {
        ++i;
        ++col;
        continue;
      }
      if (c == '#') {
        while (i < src_.size() && src_[i] != '\n') ++i;
        continue;
      }
      if (line_start) line_start = false;
      Token t;
      t.line = line;
      t.col = depth > 0 ? 9999 : indent + 1;  // col encodes indentation
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        size_t start = i;
        while (i < src_.size() &&
               (std::isalnum(static_cast<unsigned char>(src_[i])) ||
                src_[i] == '_')) {
          ++i;
        }
        t.text = src_.substr(start, i - start);
        t.kind = IsKeyword(t.text) ? Tok::kKeyword : Tok::kName;
      } else if (std::isdigit(static_cast<unsigned char>(c)) ||
                 (c == '.' && i + 1 < src_.size() &&
                  std::isdigit(static_cast<unsigned char>(src_[i + 1])))) {
        size_t start = i;
        bool is_float = false;
        while (i < src_.size() &&
               (std::isdigit(static_cast<unsigned char>(src_[i])) ||
                src_[i] == '.' || src_[i] == 'e' || src_[i] == 'E' ||
                src_[i] == '_' ||
                ((src_[i] == '+' || src_[i] == '-') && i > start &&
                 (src_[i - 1] == 'e' || src_[i - 1] == 'E')))) {
          if (src_[i] == '.' || src_[i] == 'e' || src_[i] == 'E') {
            is_float = true;
          }
          ++i;
        }
        std::string num = src_.substr(start, i - start);
        std::erase(num, '_');
        t.kind = Tok::kNumber;
        t.text = num;
        t.number = is_float
                       ? Value::Float64(std::strtod(num.c_str(), nullptr))
                       : Value::Int64(std::strtoll(num.c_str(), nullptr, 10));
      } else if (c == '\'' || c == '"') {
        char quote = c;
        ++i;
        std::string out;
        while (i < src_.size() && src_[i] != quote) {
          if (src_[i] == '\\' && i + 1 < src_.size()) {
            ++i;
            switch (src_[i]) {
              case 'n': out += '\n'; break;
              case 't': out += '\t'; break;
              default: out += src_[i];
            }
          } else {
            out += src_[i];
          }
          ++i;
        }
        ++i;  // closing quote
        t.kind = Tok::kString;
        t.text = std::move(out);
      } else {
        static const char* kTwo[] = {"==", "!=", "<=", ">=", "//", "**"};
        t.kind = Tok::kOp;
        bool matched = false;
        for (const char* op : kTwo) {
          if (src_.compare(i, 2, op) == 0) {
            t.text = op;
            i += 2;
            matched = true;
            break;
          }
        }
        if (!matched) {
          t.text = std::string(1, c);
          ++i;
          if (c == '(' || c == '[' || c == '{') ++depth;
          if (c == ')' || c == ']' || c == '}') --depth;
        }
      }
      col += static_cast<int>(t.text.size());
      tokens_.push_back(std::move(t));
    }
    if (!tokens_.empty() && tokens_.back().kind != Tok::kNewline) {
      tokens_.push_back({Tok::kNewline, "\n", {}, line, col});
    }
    tokens_.push_back({Tok::kEnd, "", {}, line, col});
  }

  const std::string& src_;
  std::vector<Token> tokens_;
};

class Parser {
 public:
  explicit Parser(const std::string& src) : lexer_(src) {}

  Result<Module> ParseModuleSource() {
    Module module;
    while (!AtEnd()) {
      if (PeekOp("@")) {
        PYTOND_ASSIGN_OR_RETURN(auto decorator_kwargs, ParseDecorator());
        if (!decorator_kwargs.has_value()) {
          // Not @pytond: skip the decorated function entirely.
          PYTOND_RETURN_IF_ERROR(SkipFunction());
          continue;
        }
        PYTOND_ASSIGN_OR_RETURN(Function fn, ParseFunction());
        fn.decorator_kwargs = *decorator_kwargs;
        module.functions.push_back(std::move(fn));
        continue;
      }
      if (PeekKeyword("def")) {
        PYTOND_RETURN_IF_ERROR(SkipFunction());
        continue;
      }
      // Module-level statement (imports etc.): skip the line.
      SkipLine();
    }
    return module;
  }

  Result<ExprPtr> ParseExpressionOnly() {
    PYTOND_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
    return e;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t i = std::min(pos_ + ahead, lexer_.tokens().size() - 1);
    return lexer_.tokens()[i];
  }
  Token Next() { return lexer_.tokens()[pos_++]; }
  bool AtEnd() const { return Peek().kind == Tok::kEnd; }
  void SkipNewlines() {
    while (Peek().kind == Tok::kNewline) ++pos_;
  }
  void SkipLine() {
    while (Peek().kind != Tok::kNewline && Peek().kind != Tok::kEnd) ++pos_;
    SkipNewlines();
  }
  bool PeekOp(const char* op, size_t ahead = 0) const {
    return Peek(ahead).kind == Tok::kOp && Peek(ahead).text == op;
  }
  bool TryOp(const char* op) {
    if (PeekOp(op)) {
      ++pos_;
      return true;
    }
    return false;
  }
  Status ExpectOp(const char* op) {
    if (!TryOp(op)) return Error(std::string("expected '") + op + "'");
    return Status::OK();
  }
  bool PeekKeyword(const char* kw) const {
    return Peek().kind == Tok::kKeyword && Peek().text == kw;
  }
  bool TryKeyword(const char* kw) {
    if (PeekKeyword(kw)) {
      ++pos_;
      return true;
    }
    return false;
  }
  Status Error(const std::string& msg) const {
    return Status::ParseError(msg + " at line " + std::to_string(Peek().line) +
                              " (near '" + Peek().text + "')");
  }

  /// Parses "@name" or "@name(kwargs)". Returns kwargs when the decorator
  /// is @pytond, nullopt otherwise.
  Result<std::optional<std::vector<std::pair<std::string, ExprPtr>>>>
  ParseDecorator() {
    PYTOND_RETURN_IF_ERROR(ExpectOp("@"));
    if (Peek().kind != Tok::kName) return Error("expected decorator name");
    std::string name = Next().text;
    std::vector<std::pair<std::string, ExprPtr>> kwargs;
    if (TryOp("(")) {
      while (!TryOp(")")) {
        if (Peek().kind != Tok::kName) return Error("expected kwarg name");
        std::string kw = Next().text;
        PYTOND_RETURN_IF_ERROR(ExpectOp("="));
        PYTOND_ASSIGN_OR_RETURN(ExprPtr v, ParseExpr());
        kwargs.emplace_back(kw, v);
        if (!TryOp(",") && !PeekOp(")")) return Error("expected ',' or ')'");
      }
    }
    SkipNewlines();
    if (name != "pytond") {
      return std::optional<std::vector<std::pair<std::string, ExprPtr>>>();
    }
    return std::optional<std::vector<std::pair<std::string, ExprPtr>>>(
        std::move(kwargs));
  }

  Status SkipFunction() {
    // Skip "def name(...):" then all indented lines.
    if (TryKeyword("def")) {
      SkipLine();
    }
    while (!AtEnd() && Peek().col > 1) SkipLine();
    return Status::OK();
  }

  Result<Function> ParseFunction() {
    SkipNewlines();
    if (!TryKeyword("def")) return Error("expected 'def'");
    Function fn;
    if (Peek().kind != Tok::kName) return Error("expected function name");
    fn.name = Next().text;
    PYTOND_RETURN_IF_ERROR(ExpectOp("("));
    while (!TryOp(")")) {
      if (Peek().kind != Tok::kName) return Error("expected parameter name");
      fn.params.push_back(Next().text);
      if (!TryOp(",") && !PeekOp(")")) return Error("expected ',' or ')'");
    }
    PYTOND_RETURN_IF_ERROR(ExpectOp(":"));
    SkipNewlines();
    // Body: statements with column > 1 until dedent.
    while (!AtEnd() && Peek().col > 1) {
      PYTOND_ASSIGN_OR_RETURN(Stmt s, ParseStatement());
      fn.body.push_back(std::move(s));
      SkipNewlines();
    }
    if (fn.body.empty()) return Error("empty function body");
    return fn;
  }

  Result<Stmt> ParseStatement() {
    Stmt s;
    s.line = Peek().line;
    if (TryKeyword("return")) {
      s.kind = Stmt::Kind::kReturn;
      PYTOND_ASSIGN_OR_RETURN(s.value, ParseExpr());
      return s;
    }
    s.kind = Stmt::Kind::kAssign;
    PYTOND_ASSIGN_OR_RETURN(s.target, ParsePostfix());
    if (s.target->kind != Expr::Kind::kName &&
        s.target->kind != Expr::Kind::kSubscript) {
      return Error("assignment target must be a name or subscript");
    }
    PYTOND_RETURN_IF_ERROR(ExpectOp("="));
    PYTOND_ASSIGN_OR_RETURN(s.value, ParseExpr());
    return s;
  }

  // ------ expressions, Python precedence ------
  Result<ExprPtr> ParseExpr() { return ParseOr(); }

  ExprPtr MakeBin(Expr::Kind kind, std::string op, ExprPtr l, ExprPtr r) {
    auto e = std::make_shared<Expr>();
    e->kind = kind;
    e->op = std::move(op);
    e->line = l->line;
    e->children = {std::move(l), std::move(r)};
    return e;
  }

  Result<ExprPtr> ParseOr() {
    PYTOND_ASSIGN_OR_RETURN(ExprPtr l, ParseAnd());
    while (TryKeyword("or")) {
      PYTOND_ASSIGN_OR_RETURN(ExprPtr r, ParseAnd());
      l = MakeBin(Expr::Kind::kBoolOp, "|", l, r);
    }
    return l;
  }

  Result<ExprPtr> ParseAnd() {
    PYTOND_ASSIGN_OR_RETURN(ExprPtr l, ParseNot());
    while (TryKeyword("and")) {
      PYTOND_ASSIGN_OR_RETURN(ExprPtr r, ParseNot());
      l = MakeBin(Expr::Kind::kBoolOp, "&", l, r);
    }
    return l;
  }

  Result<ExprPtr> ParseNot() {
    if (TryKeyword("not")) {
      PYTOND_ASSIGN_OR_RETURN(ExprPtr c, ParseNot());
      auto e = std::make_shared<Expr>();
      e->kind = Expr::Kind::kUnary;
      e->op = "~";
      e->line = c->line;
      e->children = {c};
      return e;
    }
    return ParseComparison();
  }

  Result<ExprPtr> ParseComparison() {
    PYTOND_ASSIGN_OR_RETURN(ExprPtr l, ParseBitOr());
    static const char* kCmps[] = {"==", "!=", "<=", ">=", "<", ">"};
    for (const char* op : kCmps) {
      if (PeekOp(op)) {
        ++pos_;
        PYTOND_ASSIGN_OR_RETURN(ExprPtr r, ParseBitOr());
        return MakeBin(Expr::Kind::kCompare, op, l, r);
      }
    }
    return l;
  }

  Result<ExprPtr> ParseBitOr() {
    PYTOND_ASSIGN_OR_RETURN(ExprPtr l, ParseBitAnd());
    while (PeekOp("|")) {
      ++pos_;
      PYTOND_ASSIGN_OR_RETURN(ExprPtr r, ParseBitAnd());
      l = MakeBin(Expr::Kind::kBoolOp, "|", l, r);
    }
    return l;
  }

  Result<ExprPtr> ParseBitAnd() {
    PYTOND_ASSIGN_OR_RETURN(ExprPtr l, ParseAdd());
    while (PeekOp("&")) {
      ++pos_;
      PYTOND_ASSIGN_OR_RETURN(ExprPtr r, ParseAdd());
      l = MakeBin(Expr::Kind::kBoolOp, "&", l, r);
    }
    return l;
  }

  Result<ExprPtr> ParseAdd() {
    PYTOND_ASSIGN_OR_RETURN(ExprPtr l, ParseMul());
    while (PeekOp("+") || PeekOp("-")) {
      std::string op = Next().text;
      PYTOND_ASSIGN_OR_RETURN(ExprPtr r, ParseMul());
      l = MakeBin(Expr::Kind::kBinOp, op, l, r);
    }
    return l;
  }

  Result<ExprPtr> ParseMul() {
    PYTOND_ASSIGN_OR_RETURN(ExprPtr l, ParseUnary());
    while (PeekOp("*") || PeekOp("/") || PeekOp("//") || PeekOp("%") ||
           PeekOp("**")) {
      std::string op = Next().text;
      PYTOND_ASSIGN_OR_RETURN(ExprPtr r, ParseUnary());
      l = MakeBin(Expr::Kind::kBinOp, op, l, r);
    }
    return l;
  }

  Result<ExprPtr> ParseUnary() {
    if (PeekOp("-") || PeekOp("~")) {
      int line = Peek().line;
      std::string op = Next().text;
      PYTOND_ASSIGN_OR_RETURN(ExprPtr c, ParseUnary());
      auto e = std::make_shared<Expr>();
      e->kind = Expr::Kind::kUnary;
      e->op = op;
      e->line = line;
      e->children = {c};
      return e;
    }
    if (TryOp("+")) return ParseUnary();
    return ParsePostfix();
  }

  Result<ExprPtr> ParsePostfix() {
    PYTOND_ASSIGN_OR_RETURN(ExprPtr e, ParseAtom());
    while (true) {
      if (TryOp(".")) {
        if (Peek().kind != Tok::kName) return Error("expected attribute");
        auto attr = std::make_shared<Expr>();
        attr->kind = Expr::Kind::kAttribute;
        attr->name = Next().text;
        attr->line = e->line;
        attr->children = {e};
        e = attr;
        continue;
      }
      if (TryOp("[")) {
        auto sub = std::make_shared<Expr>();
        sub->kind = Expr::Kind::kSubscript;
        sub->line = e->line;
        PYTOND_ASSIGN_OR_RETURN(ExprPtr idx, ParseExpr());
        PYTOND_RETURN_IF_ERROR(ExpectOp("]"));
        sub->children = {e, idx};
        e = sub;
        continue;
      }
      if (TryOp("(")) {
        auto call = std::make_shared<Expr>();
        call->kind = Expr::Kind::kCall;
        call->line = e->line;
        call->children = {e};
        while (!TryOp(")")) {
          if (Peek().kind == Tok::kName && PeekOp("=", 1)) {
            std::string kw = Next().text;
            ++pos_;  // '='
            PYTOND_ASSIGN_OR_RETURN(ExprPtr v, ParseExpr());
            call->kwargs.emplace_back(kw, v);
          } else {
            PYTOND_ASSIGN_OR_RETURN(ExprPtr v, ParseExpr());
            call->children.push_back(v);
          }
          if (!TryOp(",") && !PeekOp(")")) return Error("expected ',' or ')'");
        }
        e = call;
        continue;
      }
      break;
    }
    return e;
  }

  Result<ExprPtr> ParseAtom() {
    const Token& t = Peek();
    switch (t.kind) {
      case Tok::kName: {
        auto e = MakeName(Next().text);
        e->line = t.line;
        return e;
      }
      case Tok::kNumber: {
        auto e = MakeLiteral(Next().number);
        e->line = t.line;
        return e;
      }
      case Tok::kString: {
        auto e = MakeLiteral(Value::String(Next().text));
        e->line = t.line;
        return e;
      }
      case Tok::kKeyword: {
        ExprPtr e;
        if (TryKeyword("True")) e = MakeLiteral(Value::Bool(true));
        else if (TryKeyword("False")) e = MakeLiteral(Value::Bool(false));
        else if (TryKeyword("None")) e = MakeLiteral(Value::Null());
        else return Error("unexpected keyword");
        e->line = t.line;
        return e;
      }
      case Tok::kOp: {
        if (TryOp("(")) {
          // Tuple or parenthesized expression.
          PYTOND_ASSIGN_OR_RETURN(ExprPtr first, ParseExpr());
          if (TryOp(")")) return first;
          auto tup = std::make_shared<Expr>();
          tup->kind = Expr::Kind::kTuple;
          tup->line = t.line;
          tup->children = {first};
          while (TryOp(",")) {
            if (PeekOp(")")) break;
            PYTOND_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
            tup->children.push_back(e);
          }
          PYTOND_RETURN_IF_ERROR(ExpectOp(")"));
          return tup;
        }
        if (TryOp("[")) {
          auto list = std::make_shared<Expr>();
          list->kind = Expr::Kind::kList;
          list->line = t.line;
          while (!TryOp("]")) {
            PYTOND_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
            list->children.push_back(e);
            if (!TryOp(",") && !PeekOp("]")) {
              return Error("expected ',' or ']'");
            }
          }
          return list;
        }
        return Error("unexpected token");
      }
      default:
        return Error("unexpected end of input");
    }
  }

  Lexer lexer_;
  size_t pos_ = 0;
};

}  // namespace

ExprPtr MakeName(std::string name) {
  auto e = std::make_shared<Expr>();
  e->kind = Expr::Kind::kName;
  e->name = std::move(name);
  return e;
}

ExprPtr MakeLiteral(Value v) {
  auto e = std::make_shared<Expr>();
  e->kind = Expr::Kind::kLiteral;
  e->literal = std::move(v);
  return e;
}

std::string Expr::ToString() const {
  switch (kind) {
    case Kind::kName: return name;
    case Kind::kLiteral:
      return literal.type() == DataType::kString ? "'" + literal.AsString() +
                                                       "'"
                                                 : literal.ToString();
    case Kind::kList: {
      std::string s = "[";
      for (size_t i = 0; i < children.size(); ++i) {
        if (i) s += ", ";
        s += children[i]->ToString();
      }
      return s + "]";
    }
    case Kind::kTuple: {
      std::string s = "(";
      for (size_t i = 0; i < children.size(); ++i) {
        if (i) s += ", ";
        s += children[i]->ToString();
      }
      return s + ")";
    }
    case Kind::kAttribute:
      return children[0]->ToString() + "." + name;
    case Kind::kSubscript:
      return children[0]->ToString() + "[" + children[1]->ToString() + "]";
    case Kind::kCall: {
      std::string s = children[0]->ToString() + "(";
      for (size_t i = 1; i < children.size(); ++i) {
        if (i > 1) s += ", ";
        s += children[i]->ToString();
      }
      for (size_t i = 0; i < kwargs.size(); ++i) {
        if (i || children.size() > 1) s += ", ";
        s += kwargs[i].first + "=" + kwargs[i].second->ToString();
      }
      return s + ")";
    }
    case Kind::kBinOp:
    case Kind::kCompare:
    case Kind::kBoolOp:
      return "(" + children[0]->ToString() + " " + op + " " +
             children[1]->ToString() + ")";
    case Kind::kUnary:
      return "(" + op + children[0]->ToString() + ")";
  }
  return "?";
}

Result<Module> ParseModule(const std::string& source) {
  return Parser(source).ParseModuleSource();
}

Result<ExprPtr> ParseExpression(const std::string& source) {
  return Parser(source).ParseExpressionOnly();
}

}  // namespace pytond::frontend::py
