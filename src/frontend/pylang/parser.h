#ifndef PYTOND_FRONTEND_PYLANG_PARSER_H_
#define PYTOND_FRONTEND_PYLANG_PARSER_H_

#include <string>

#include "common/status.h"
#include "frontend/pylang/ast.h"

namespace pytond::frontend::py {

/// Parses a source module, collecting every function marked with the
/// @pytond decorator (bare `@pytond` or `@pytond(kw=...)`). Undecorated
/// functions are skipped, mirroring the paper's selective compilation.
Result<Module> ParseModule(const std::string& source);

/// Parses a single expression (tests / decorator argument helpers).
Result<ExprPtr> ParseExpression(const std::string& source);

}  // namespace pytond::frontend::py

#endif  // PYTOND_FRONTEND_PYLANG_PARSER_H_
