#ifndef PYTOND_FRONTEND_PYLANG_AST_H_
#define PYTOND_FRONTEND_PYLANG_AST_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/value.h"

namespace pytond::frontend::py {

struct Expr;
using ExprPtr = std::shared_ptr<Expr>;

/// Expression node of the mini-Python dialect PyTond accepts: the
/// straight-line Pandas/NumPy subset (names, literals, attribute access,
/// subscripts, calls with kwargs, arithmetic / comparison / mask operators,
/// lists and tuples).
struct Expr {
  enum class Kind {
    kName,       // identifier
    kLiteral,    // number / string / bool / None
    kList,       // [e1, e2, ...]
    kTuple,      // (e1, e2, ...)
    kAttribute,  // value.attr          children = [value]
    kSubscript,  // value[index]        children = [value, index]
    kCall,       // func(args...)       children = [func, args...]
    kBinOp,      // + - * / // % **     children = [l, r]
    kCompare,    // < <= == != >= >     children = [l, r]
    kBoolOp,     // & | (or and/or)     children = [l, r]
    kUnary,      // - ~ not             children = [e]
  };

  Kind kind;
  std::string name;  // kName; kAttribute attr name
  Value literal;     // kLiteral
  std::string op;    // operator spelling ("+", "==", "&", "~", ...)
  std::vector<ExprPtr> children;
  std::vector<std::pair<std::string, ExprPtr>> kwargs;  // kCall only
  int line = 0;
  /// kLiteral only: parameter-slot ordinal assigned by the serve-path
  /// parameterizer (frontend/parameterize.h), or -1 for a plain literal.
  /// A marked literal keeps its value as the typing/default seed; the
  /// translator emits a TondIR parameter term instead of a constant.
  int param = -1;

  std::string ToString() const;
};

ExprPtr MakeName(std::string name);
ExprPtr MakeLiteral(Value v);

/// Statement: assignment (`target = value`, target a name or subscript) or
/// `return value`.
struct Stmt {
  enum class Kind { kAssign, kReturn };
  Kind kind;
  ExprPtr target;  // kAssign
  ExprPtr value;
  int line = 0;
};

/// A @pytond-decorated function: parameters are the input DataFrames /
/// arrays (bound to database tables of the same name unless remapped).
struct Function {
  std::string name;
  std::vector<std::string> params;
  std::vector<Stmt> body;
  /// Decorator keyword arguments, e.g. layout='sparse',
  /// pivot_values=['v1','v2'].
  std::vector<std::pair<std::string, ExprPtr>> decorator_kwargs;
};

/// A parsed module: every @pytond-decorated function found in the source.
struct Module {
  std::vector<Function> functions;
};

}  // namespace pytond::frontend::py

#endif  // PYTOND_FRONTEND_PYLANG_AST_H_
