#include "frontend/parameterize.h"

namespace pytond::frontend {

namespace {

using py::Expr;
using py::ExprPtr;
using py::Stmt;

bool ParameterizableLiteral(const Expr& e) {
  if (e.kind != Expr::Kind::kLiteral) return false;
  switch (e.literal.type()) {
    case DataType::kInt64:
    case DataType::kFloat64:
    case DataType::kString:
      return true;
    default:
      // Bool/None literals are plan shape (mask folding, null tests),
      // not data the user varies per request.
      return false;
  }
}

class Parameterizer {
 public:
  std::vector<ParamSlot> Run(py::Function* fn) {
    for (Stmt& s : fn->body) {
      // Assignment targets (including `df['c'] = ...` subscripts) are
      // structural; only the value side can carry filter literals.
      Walk(s.value);
    }
    return std::move(slots_);
  }

 private:
  /// Marks literals that feed a comparison operand: the literal itself,
  /// or literals reachable through arithmetic / unary minus. Anything
  /// behind a call, subscript, attribute, list, or nested mask is left
  /// alone — the translator reads those values structurally.
  void MarkOperand(const ExprPtr& e) {
    switch (e->kind) {
      case Expr::Kind::kLiteral:
        if (ParameterizableLiteral(*e)) {
          e->param = static_cast<int>(slots_.size());
          ParamSlot slot;
          slot.type = e->literal.type();
          slot.seed = e->literal;
          slot.line = e->line;
          slots_.push_back(std::move(slot));
        }
        return;
      case Expr::Kind::kBinOp:
        // `**` and `//` exponents/divisors can be consumed structurally
        // (shape-changing in the tensor paths); plain arithmetic is safe.
        if (e->op == "+" || e->op == "-" || e->op == "*" || e->op == "/" ||
            e->op == "%") {
          for (const ExprPtr& c : e->children) MarkOperand(c);
        }
        return;
      case Expr::Kind::kUnary:
        if (e->op == "-") MarkOperand(e->children[0]);
        return;
      default:
        return;
    }
  }

  /// Pre-order sweep: every comparison marks its operands, then the walk
  /// descends everywhere (masks nest inside subscripts and calls) except
  /// kwargs, which carry configuration rather than data.
  void Walk(const ExprPtr& e) {
    if (e == nullptr) return;
    if (e->kind == Expr::Kind::kCompare) {
      for (const ExprPtr& c : e->children) MarkOperand(c);
    }
    for (const ExprPtr& c : e->children) Walk(c);
  }

  std::vector<ParamSlot> slots_;
};

void SerializeExpr(const Expr& e, std::string* out) {
  switch (e.kind) {
    case Expr::Kind::kName:
      out->append("n:");
      out->append(e.name);
      return;
    case Expr::Kind::kLiteral:
      if (e.param >= 0) {
        // Slot type rides in the key: `3`, `3.0`, and `'3'` compile to
        // different slot types, and a plan compiled against an int64
        // slot must not be served for a float- or string-literal source
        // (its default bindings would fail the Execute type check).
        switch (e.literal.type()) {
          case DataType::kFloat64: out->append("$f"); break;
          case DataType::kString: out->append("$s"); break;
          default: out->append("$p"); break;
        }
        out->append(std::to_string(e.param));
        return;
      }
      // Type-tagged so `3` (int), `3.0` (float), and `'3'` (string)
      // never collide in the key.
      switch (e.literal.type()) {
        case DataType::kInt64: out->append("i:"); break;
        case DataType::kFloat64: out->append("f:"); break;
        case DataType::kString: out->append("s:"); break;
        case DataType::kBool: out->append("b:"); break;
        case DataType::kDate: out->append("d:"); break;
        case DataType::kNull: out->append("z:"); break;
      }
      out->append(e.literal.ToString());
      return;
    case Expr::Kind::kList:
    case Expr::Kind::kTuple: {
      out->push_back(e.kind == Expr::Kind::kList ? '[' : '(');
      for (size_t i = 0; i < e.children.size(); ++i) {
        if (i) out->push_back(',');
        SerializeExpr(*e.children[i], out);
      }
      out->push_back(e.kind == Expr::Kind::kList ? ']' : ')');
      return;
    }
    case Expr::Kind::kAttribute:
      SerializeExpr(*e.children[0], out);
      out->push_back('.');
      out->append(e.name);
      return;
    case Expr::Kind::kSubscript:
      SerializeExpr(*e.children[0], out);
      out->push_back('[');
      SerializeExpr(*e.children[1], out);
      out->push_back(']');
      return;
    case Expr::Kind::kCall: {
      SerializeExpr(*e.children[0], out);
      out->push_back('(');
      for (size_t i = 1; i < e.children.size(); ++i) {
        if (i > 1) out->push_back(',');
        SerializeExpr(*e.children[i], out);
      }
      for (const auto& [key, value] : e.kwargs) {
        out->push_back(',');
        out->append(key);
        out->push_back('=');
        SerializeExpr(*value, out);
      }
      out->push_back(')');
      return;
    }
    case Expr::Kind::kBinOp:
    case Expr::Kind::kCompare:
    case Expr::Kind::kBoolOp:
      out->push_back('(');
      SerializeExpr(*e.children[0], out);
      out->append(e.op);
      SerializeExpr(*e.children[1], out);
      out->push_back(')');
      return;
    case Expr::Kind::kUnary:
      out->push_back('(');
      out->append(e.op);
      SerializeExpr(*e.children[0], out);
      out->push_back(')');
      return;
  }
}

}  // namespace

std::vector<ParamSlot> ParameterizeFunction(py::Function* fn) {
  return Parameterizer().Run(fn);
}

std::string SkeletonKey(const py::Function& fn) {
  std::string out = "def ";
  out += fn.name;
  out.push_back('(');
  for (size_t i = 0; i < fn.params.size(); ++i) {
    if (i) out.push_back(',');
    out += fn.params[i];
  }
  out.push_back(')');
  for (const auto& [key, value] : fn.decorator_kwargs) {
    out.push_back('@');
    out += key;
    out.push_back('=');
    SerializeExpr(*value, &out);
  }
  out.push_back('{');
  for (const Stmt& s : fn.body) {
    if (s.kind == Stmt::Kind::kReturn) {
      out += "ret ";
    } else if (s.target != nullptr) {
      SerializeExpr(*s.target, &out);
      out.push_back('=');
    }
    if (s.value != nullptr) SerializeExpr(*s.value, &out);
    out.push_back(';');
  }
  out.push_back('}');
  return out;
}

}  // namespace pytond::frontend
