#include "workloads/datasci.h"

#include <random>

namespace pytond::workloads::datasci {

namespace {

using Rng = std::mt19937_64;

int64_t Uniform(Rng& rng, int64_t lo, int64_t hi) {
  return std::uniform_int_distribution<int64_t>(lo, hi)(rng);
}
double UniformF(Rng& rng, double lo, double hi) {
  return std::uniform_real_distribution<double>(lo, hi)(rng);
}

}  // namespace

Status PopulateCrimeIndex(engine::Database* db, int64_t rows, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> total(rows), adult(rows), robberies(rows);
  for (int64_t i = 0; i < rows; ++i) {
    total[i] = UniformF(rng, 1000, 550000);
    adult[i] = total[i] * UniformF(rng, 0.5, 0.9);
    robberies[i] = total[i] * UniformF(rng, 0.0, 0.02);
  }
  Table t;
  PYTOND_RETURN_IF_ERROR(
      t.AddColumn("total_population", Column::Float64(std::move(total))));
  PYTOND_RETURN_IF_ERROR(
      t.AddColumn("adult_population", Column::Float64(std::move(adult))));
  PYTOND_RETURN_IF_ERROR(
      t.AddColumn("num_robberies", Column::Float64(std::move(robberies))));
  PYTOND_RETURN_IF_ERROR(db->CreateTable("crime_data", std::move(t)));

  Table w;
  PYTOND_RETURN_IF_ERROR(w.AddColumn("id", Column::Int64({0, 1, 2})));
  PYTOND_RETURN_IF_ERROR(
      w.AddColumn("c0", Column::Float64({60.0, 2.5, -2000.0})));
  TableConstraints tc;
  tc.primary_key = {"id"};
  PYTOND_RETURN_IF_ERROR(db->CreateTable("crime_weights", std::move(w), tc));
  return Status::OK();
}

const char* CrimeIndexSource() {
  return R"PY(
@pytond()
def crime_index(crime_data, crime_weights):
    big = crime_data[crime_data.total_population > 10000]
    a = big.to_numpy()
    idx = np.einsum('ij,j->i', a, crime_weights.to_numpy())
    d = pd.DataFrame(idx)
    safe = d[d.c0 < 300000.0]
    out = safe.agg(total_index=('c0', 'sum'), cities=('c0', 'count'))
    return out
)PY";
}

Status PopulateBirthAnalysis(engine::Database* db, int64_t rows,
                             uint64_t seed) {
  Rng rng(seed);
  static const char* kNames[] = {"Emma", "Olivia", "Noah", "Liam", "Ava",
                                 "Mia", "Lucas", "Ethan", "Amelia", "Leo",
                                 "Zara", "Kai", "Nova", "Remy", "Sage"};
  std::vector<std::string> name(rows), sex(rows);
  std::vector<int64_t> year(rows), births(rows);
  for (int64_t i = 0; i < rows; ++i) {
    name[i] = kNames[Uniform(rng, 0, 14)];
    year[i] = Uniform(rng, 1880, 2020);
    sex[i] = Uniform(rng, 0, 1) ? std::string("M") : std::string("F");
    births[i] = Uniform(rng, 1, 5000);
  }
  Table t;
  PYTOND_RETURN_IF_ERROR(t.AddColumn("name", Column::String(std::move(name))));
  PYTOND_RETURN_IF_ERROR(t.AddColumn("year", Column::Int64(std::move(year))));
  PYTOND_RETURN_IF_ERROR(t.AddColumn("sex", Column::String(std::move(sex))));
  PYTOND_RETURN_IF_ERROR(
      t.AddColumn("births", Column::Int64(std::move(births))));
  return db->CreateTable("births", std::move(t));
}

const char* BirthAnalysisSource() {
  return R"PY(
@pytond(pivot_values=['M', 'F'])
def birth_analysis(births):
    g = births.groupby(['name']).agg(total=('births', 'sum'))
    top = g[g.total > 100000]
    f = births[births.name.isin(top['name'])]
    p = f.pivot_table(index='year', columns='sex', values='births',
                      aggfunc='sum')
    out = p.sort_values(by=['year'])
    return out
)PY";
}

Status PopulateN3(engine::Database* db, int64_t rows, uint64_t seed) {
  Rng rng(seed);
  static const char* kCarriers[] = {"AA", "DL", "UA", "WN", "B6", "AS",
                                    "NK", "F9"};
  static const char* kAirports[] = {"ATL", "LAX", "ORD", "DFW", "DEN",
                                    "JFK", "SFO", "SEA", "MIA", "BOS"};
  std::vector<std::string> carrier(rows), origin(rows);
  std::vector<int64_t> month(rows), cancelled(rows);
  std::vector<double> dep(rows), arr(rows), dist(rows);
  for (int64_t i = 0; i < rows; ++i) {
    carrier[i] = kCarriers[Uniform(rng, 0, 7)];
    origin[i] = kAirports[Uniform(rng, 0, 9)];
    month[i] = Uniform(rng, 1, 12);
    dep[i] = UniformF(rng, -15, 180);
    arr[i] = dep[i] + UniformF(rng, -30, 60);
    dist[i] = UniformF(rng, 100, 2800);
    cancelled[i] = Uniform(rng, 0, 99) < 2 ? 1 : 0;
  }
  Table t;
  PYTOND_RETURN_IF_ERROR(
      t.AddColumn("carrier", Column::String(std::move(carrier))));
  PYTOND_RETURN_IF_ERROR(
      t.AddColumn("origin", Column::String(std::move(origin))));
  PYTOND_RETURN_IF_ERROR(t.AddColumn("month", Column::Int64(std::move(month))));
  PYTOND_RETURN_IF_ERROR(
      t.AddColumn("dep_delay", Column::Float64(std::move(dep))));
  PYTOND_RETURN_IF_ERROR(
      t.AddColumn("arr_delay", Column::Float64(std::move(arr))));
  PYTOND_RETURN_IF_ERROR(
      t.AddColumn("distance", Column::Float64(std::move(dist))));
  PYTOND_RETURN_IF_ERROR(
      t.AddColumn("cancelled", Column::Int64(std::move(cancelled))));
  return db->CreateTable("flights", std::move(t));
}

const char* N3Source() {
  return R"PY(
@pytond()
def n3(flights):
    ok = flights[(flights.cancelled == 0) & (flights.distance > 200)]
    ok['speed_penalty'] = ok.arr_delay / (ok.distance / 100.0)
    summer = ok[(ok.month >= 6) & (ok.month <= 8)]
    g = summer.groupby(['carrier', 'origin']).agg(
        flights=('month', 'count'),
        avg_dep=('dep_delay', 'mean'),
        avg_arr=('arr_delay', 'mean'),
        worst=('arr_delay', 'max'),
        penalty=('speed_penalty', 'mean'))
    late = g[g.avg_arr > 10.0]
    out = late.sort_values(by=['avg_arr'], ascending=[False]).head(25)
    return out
)PY";
}

Status PopulateN9(engine::Database* db, int64_t rows, uint64_t seed) {
  Rng rng(seed);
  static const char* kHoods[] = {"Harlem", "Midtown", "SoHo", "Astoria",
                                 "Williamsburg", "Bushwick", "Chelsea",
                                 "Tribeca", "Flatbush", "Inwood"};
  static const char* kRooms[] = {"Entire home/apt", "Private room",
                                 "Shared room"};
  std::vector<std::string> hood(rows), room(rows);
  std::vector<double> price(rows);
  std::vector<int64_t> nights(rows), reviews(rows), avail(rows);
  for (int64_t i = 0; i < rows; ++i) {
    hood[i] = kHoods[Uniform(rng, 0, 9)];
    room[i] = kRooms[Uniform(rng, 0, 2)];
    price[i] = UniformF(rng, 20, 900);
    nights[i] = Uniform(rng, 1, 30);
    reviews[i] = Uniform(rng, 0, 400);
    avail[i] = Uniform(rng, 0, 365);
  }
  Table t;
  PYTOND_RETURN_IF_ERROR(
      t.AddColumn("neighbourhood", Column::String(std::move(hood))));
  PYTOND_RETURN_IF_ERROR(
      t.AddColumn("room_type", Column::String(std::move(room))));
  PYTOND_RETURN_IF_ERROR(t.AddColumn("price", Column::Float64(std::move(price))));
  PYTOND_RETURN_IF_ERROR(
      t.AddColumn("minimum_nights", Column::Int64(std::move(nights))));
  PYTOND_RETURN_IF_ERROR(
      t.AddColumn("number_of_reviews", Column::Int64(std::move(reviews))));
  PYTOND_RETURN_IF_ERROR(
      t.AddColumn("availability", Column::Int64(std::move(avail))));
  return db->CreateTable("listings", std::move(t));
}

const char* N9Source() {
  return R"PY(
@pytond()
def n9(listings):
    active = listings[(listings.availability > 30) &
                      (listings.number_of_reviews > 0) &
                      (listings.price > 0)]
    rooms = active[active.room_type.isin(['Entire home/apt',
                                          'Private room'])]
    rooms['value'] = rooms.price / rooms.minimum_nights
    g = rooms.groupby(['neighbourhood', 'room_type']).agg(
        n=('price', 'count'),
        avg_price=('price', 'mean'),
        max_price=('price', 'max'),
        avg_value=('value', 'mean'))
    popular = g[g.n > 5]
    out = popular.sort_values(by=['avg_price'], ascending=[False]).head(20)
    return out
)PY";
}

Status PopulateHybrid(engine::Database* db, int64_t rows, uint64_t seed) {
  Rng rng(seed);
  std::vector<int64_t> pk1(rows), pk2(rows);
  std::vector<double> f(4 * rows), g(4 * rows);
  for (int64_t i = 0; i < rows; ++i) {
    pk1[i] = i;
    pk2[i] = i;
    for (int c = 0; c < 4; ++c) {
      f[c * rows + i] = UniformF(rng, -1, 1);
      g[c * rows + i] = UniformF(rng, 0, 1);
    }
  }
  {
    Table t;
    PYTOND_RETURN_IF_ERROR(t.AddColumn("pk", Column::Int64(pk1)));
    for (int c = 0; c < 4; ++c) {
      std::string col_name = "f";
      col_name += std::to_string(c);
      PYTOND_RETURN_IF_ERROR(t.AddColumn(
          col_name,
          Column::Float64(std::vector<double>(f.begin() + c * rows,
                                              f.begin() + (c + 1) * rows))));
    }
    TableConstraints tc;
    tc.primary_key = {"pk"};
    PYTOND_RETURN_IF_ERROR(db->CreateTable("points", std::move(t), tc));
  }
  {
    Table t;
    PYTOND_RETURN_IF_ERROR(t.AddColumn("pk", Column::Int64(pk2)));
    for (int c = 0; c < 4; ++c) {
      std::string col_name = "g";
      col_name += std::to_string(c);
      PYTOND_RETURN_IF_ERROR(t.AddColumn(
          col_name,
          Column::Float64(std::vector<double>(g.begin() + c * rows,
                                              g.begin() + (c + 1) * rows))));
    }
    TableConstraints tc;
    tc.primary_key = {"pk"};
    PYTOND_RETURN_IF_ERROR(db->CreateTable("lookup", std::move(t), tc));
  }
  {
    Table w;
    PYTOND_RETURN_IF_ERROR(w.AddColumn("id", Column::Int64({0, 1, 2, 3})));
    PYTOND_RETURN_IF_ERROR(
        w.AddColumn("c0", Column::Float64({0.5, -1.5, 2.0, 1.0})));
    TableConstraints tc;
    tc.primary_key = {"id"};
    PYTOND_RETURN_IF_ERROR(db->CreateTable("weights", std::move(w), tc));
  }
  return Status::OK();
}

const char* HybridMatMulSource(bool filtered) {
  if (filtered) {
    return R"PY(
@pytond()
def hybrid_matmul_filtered(points, lookup, weights):
    j = points.merge(lookup, on='pk')
    f = j[j.g0 > 0.5]
    m = f[['f0', 'f1', 'f2', 'f3']]
    a = m.to_numpy()
    out = np.einsum('ij,j->i', a, weights.to_numpy())
    return out
)PY";
  }
  return R"PY(
@pytond()
def hybrid_matmul(points, lookup, weights):
    j = points.merge(lookup, on='pk')
    m = j[['f0', 'f1', 'f2', 'f3']]
    a = m.to_numpy()
    out = np.einsum('ij,j->i', a, weights.to_numpy())
    return out
)PY";
}

const char* HybridCovarSource(bool filtered) {
  if (filtered) {
    return R"PY(
@pytond()
def hybrid_covar_filtered(points, lookup):
    j = points.merge(lookup, on='pk')
    f = j[j.g0 > 0.5]
    m = f[['f0', 'f1', 'f2', 'f3']]
    a = m.to_numpy()
    out = np.einsum('ij,ik->jk', a, a)
    return out
)PY";
  }
  return R"PY(
@pytond()
def hybrid_covar(points, lookup):
    j = points.merge(lookup, on='pk')
    m = j[['f0', 'f1', 'f2', 'f3']]
    a = m.to_numpy()
    out = np.einsum('ij,ik->jk', a, a)
    return out
)PY";
}

Status PopulateCovariance(engine::Database* db, int64_t rows, int cols,
                          double density, uint64_t seed) {
  Rng rng(seed);
  Table dense;
  std::vector<int64_t> ids(rows);
  for (int64_t i = 0; i < rows; ++i) ids[i] = i;
  PYTOND_RETURN_IF_ERROR(dense.AddColumn("id", Column::Int64(std::move(ids))));
  std::vector<int64_t> coo_r, coo_c;
  std::vector<double> coo_v;
  for (int c = 0; c < cols; ++c) {
    std::vector<double> col(rows, 0.0);
    for (int64_t r = 0; r < rows; ++r) {
      if (UniformF(rng, 0, 1) < density) {
        col[r] = UniformF(rng, -1, 1);
        coo_r.push_back(r);
        coo_c.push_back(c);
        coo_v.push_back(col[r]);
      }
    }
    std::string col_name = "c";
    col_name += std::to_string(c);
    PYTOND_RETURN_IF_ERROR(
        dense.AddColumn(col_name, Column::Float64(std::move(col))));
  }
  TableConstraints tc;
  tc.primary_key = {"id"};
  PYTOND_RETURN_IF_ERROR(db->CreateTable("mat", std::move(dense), tc));

  Table coo;
  PYTOND_RETURN_IF_ERROR(
      coo.AddColumn("row_id", Column::Int64(std::move(coo_r))));
  PYTOND_RETURN_IF_ERROR(
      coo.AddColumn("col_id", Column::Int64(std::move(coo_c))));
  PYTOND_RETURN_IF_ERROR(coo.AddColumn("val", Column::Float64(std::move(coo_v))));
  return db->CreateTable("mat_coo", std::move(coo));
}

const char* CovarDenseSource() {
  return R"PY(
@pytond()
def covar_dense(mat):
    a = mat.to_numpy()
    out = np.einsum('ij,ik->jk', a, a)
    return out
)PY";
}

const char* CovarSparseSource() {
  return R"PY(
@pytond(layout='sparse')
def covar_sparse(mat_coo):
    out = np.einsum('ij,ik->jk', mat_coo, mat_coo)
    return out
)PY";
}

}  // namespace pytond::workloads::datasci
