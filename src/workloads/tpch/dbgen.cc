#include "workloads/tpch/dbgen.h"

#include <random>

#include "common/date_util.h"

namespace pytond::workloads::tpch {

namespace {

using Rng = std::mt19937_64;

int64_t Uniform(Rng& rng, int64_t lo, int64_t hi) {
  return std::uniform_int_distribution<int64_t>(lo, hi)(rng);
}

double UniformF(Rng& rng, double lo, double hi) {
  return std::uniform_real_distribution<double>(lo, hi)(rng);
}

const char* kRegions[5] = {"AFRICA", "AMERICA", "ASIA", "EUROPE",
                           "MIDDLE EAST"};
// (nation, region index) per the TPC-H spec.
struct NationSpec {
  const char* name;
  int region;
};
const NationSpec kNations[25] = {
    {"ALGERIA", 0},      {"ARGENTINA", 1}, {"BRAZIL", 1},
    {"CANADA", 1},       {"EGYPT", 4},     {"ETHIOPIA", 0},
    {"FRANCE", 3},       {"GERMANY", 3},   {"INDIA", 2},
    {"INDONESIA", 2},    {"IRAN", 4},      {"IRAQ", 4},
    {"JAPAN", 2},        {"JORDAN", 4},    {"KENYA", 0},
    {"MOROCCO", 0},      {"MOZAMBIQUE", 0},{"PERU", 1},
    {"CHINA", 2},        {"ROMANIA", 3},   {"SAUDI ARABIA", 4},
    {"VIETNAM", 2},      {"RUSSIA", 3},    {"UNITED KINGDOM", 3},
    {"UNITED STATES", 1}};

const char* kSegments[5] = {"AUTOMOBILE", "BUILDING", "FURNITURE",
                            "HOUSEHOLD", "MACHINERY"};
const char* kPriorities[5] = {"1-URGENT", "2-HIGH", "3-MEDIUM",
                              "4-NOT SPECIFIED", "5-LOW"};
const char* kShipModes[7] = {"REG AIR", "AIR", "RAIL", "SHIP", "TRUCK",
                             "MAIL", "FOB"};
const char* kInstructs[4] = {"DELIVER IN PERSON", "COLLECT COD", "NONE",
                             "TAKE BACK RETURN"};
const char* kTypes1[6] = {"STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY",
                          "PROMO"};
const char* kTypes2[5] = {"ANODIZED", "BURNISHED", "PLATED", "POLISHED",
                          "BRUSHED"};
const char* kTypes3[5] = {"TIN", "NICKEL", "BRASS", "STEEL", "COPPER"};
const char* kContainers1[5] = {"SM", "LG", "MED", "JUMBO", "WRAP"};
const char* kContainers2[8] = {"CASE", "BOX", "BAG", "JAR", "PKG", "PACK",
                               "CAN", "DRUM"};
const char* kColors[12] = {"almond", "antique", "aquamarine", "azure",
                           "beige", "bisque", "black", "blanched", "blue",
                           "forest", "green", "ghost"};
const char* kWords[16] = {"carefully", "quickly", "furiously", "slyly",
                          "blithely", "ideas", "requests", "deposits",
                          "packages", "accounts", "theodolites", "pinto",
                          "beans", "foxes", "dependencies", "platelets"};

std::string Comment(Rng& rng, int words) {
  std::string out;
  for (int i = 0; i < words; ++i) {
    if (i) out += ' ';
    out += kWords[Uniform(rng, 0, 15)];
  }
  // Rare markers used by Q13 / Q16 predicates.
  int64_t roll = Uniform(rng, 0, 99);
  if (roll < 2) out += " special packages requests";
  else if (roll < 4) out += " Customer slyly Complaints";
  return out;
}

std::string PadNum(int64_t v, int width) {
  std::string s = std::to_string(v);
  while (static_cast<int>(s.size()) < width) s.insert(s.begin(), '0');
  return s;
}

int32_t RandomDate(Rng& rng, int32_t lo, int32_t hi) {
  return static_cast<int32_t>(Uniform(rng, lo, hi));
}

}  // namespace

Status Populate(engine::Database* db, double scale_factor, uint64_t seed) {
  Rng rng(seed);
  const int64_t n_supplier = std::max<int64_t>(10, 10000 * scale_factor);
  const int64_t n_part = std::max<int64_t>(20, 200000 * scale_factor);
  const int64_t n_customer = std::max<int64_t>(15, 150000 * scale_factor);
  const int64_t n_orders = std::max<int64_t>(150, 1500000 * scale_factor);

  const int32_t d_lo = *date_util::FromYMD(1992, 1, 1);
  const int32_t d_hi = *date_util::FromYMD(1998, 8, 2);

  // ---- region / nation ----
  {
    Table region;
    std::vector<int64_t> rk;
    std::vector<std::string> rn, rc;
    for (int i = 0; i < 5; ++i) {
      rk.push_back(i);
      rn.push_back(kRegions[i]);
      rc.push_back(Comment(rng, 4));
    }
    PYTOND_RETURN_IF_ERROR(region.AddColumn("r_regionkey", Column::Int64(rk)));
    PYTOND_RETURN_IF_ERROR(region.AddColumn("r_name", Column::String(rn)));
    PYTOND_RETURN_IF_ERROR(region.AddColumn("r_comment", Column::String(rc)));
    TableConstraints tc;
    tc.primary_key = {"r_regionkey"};
    PYTOND_RETURN_IF_ERROR(db->CreateTable("region", std::move(region), tc));
  }
  {
    Table nation;
    std::vector<int64_t> nk, nr;
    std::vector<std::string> nn, nc;
    for (int i = 0; i < 25; ++i) {
      nk.push_back(i);
      nn.push_back(kNations[i].name);
      nr.push_back(kNations[i].region);
      nc.push_back(Comment(rng, 4));
    }
    PYTOND_RETURN_IF_ERROR(nation.AddColumn("n_nationkey", Column::Int64(nk)));
    PYTOND_RETURN_IF_ERROR(nation.AddColumn("n_name", Column::String(nn)));
    PYTOND_RETURN_IF_ERROR(
        nation.AddColumn("n_regionkey", Column::Int64(nr)));
    PYTOND_RETURN_IF_ERROR(nation.AddColumn("n_comment", Column::String(nc)));
    TableConstraints tc;
    tc.primary_key = {"n_nationkey"};
    PYTOND_RETURN_IF_ERROR(db->CreateTable("nation", std::move(nation), tc));
  }

  // ---- supplier ----
  {
    std::vector<int64_t> sk, snat;
    std::vector<std::string> sname, saddr, sphone, scomment;
    std::vector<double> sbal;
    for (int64_t i = 1; i <= n_supplier; ++i) {
      sk.push_back(i);
      sname.push_back("Supplier#" + PadNum(i, 9));
      saddr.push_back("addr" + std::to_string(Uniform(rng, 0, 99999)));
      int64_t nat = Uniform(rng, 0, 24);
      snat.push_back(nat);
      sphone.push_back(std::to_string(nat + 10) + "-" +
                       PadNum(Uniform(rng, 100, 999), 3) + "-" +
                       PadNum(Uniform(rng, 100, 999), 3));
      sbal.push_back(UniformF(rng, -999.99, 9999.99));
      scomment.push_back(Comment(rng, 6));
    }
    Table t;
    PYTOND_RETURN_IF_ERROR(t.AddColumn("s_suppkey", Column::Int64(sk)));
    PYTOND_RETURN_IF_ERROR(t.AddColumn("s_name", Column::String(sname)));
    PYTOND_RETURN_IF_ERROR(t.AddColumn("s_address", Column::String(saddr)));
    PYTOND_RETURN_IF_ERROR(t.AddColumn("s_nationkey", Column::Int64(snat)));
    PYTOND_RETURN_IF_ERROR(t.AddColumn("s_phone", Column::String(sphone)));
    PYTOND_RETURN_IF_ERROR(t.AddColumn("s_acctbal", Column::Float64(sbal)));
    PYTOND_RETURN_IF_ERROR(t.AddColumn("s_comment", Column::String(scomment)));
    TableConstraints tc;
    tc.primary_key = {"s_suppkey"};
    PYTOND_RETURN_IF_ERROR(db->CreateTable("supplier", std::move(t), tc));
  }

  // ---- part ----
  {
    std::vector<int64_t> pk, psize;
    std::vector<std::string> pname, pmfgr, pbrand, ptype, pcontainer,
        pcomment;
    std::vector<double> pprice;
    for (int64_t i = 1; i <= n_part; ++i) {
      pk.push_back(i);
      pname.push_back(std::string(kColors[Uniform(rng, 0, 11)]) + " " +
                      kColors[Uniform(rng, 0, 11)] + " " +
                      kColors[Uniform(rng, 0, 11)]);
      int64_t m = Uniform(rng, 1, 5);
      pmfgr.push_back("Manufacturer#" + std::to_string(m));
      pbrand.push_back("Brand#" + std::to_string(m) +
                       std::to_string(Uniform(rng, 1, 5)));
      ptype.push_back(std::string(kTypes1[Uniform(rng, 0, 5)]) + " " +
                      kTypes2[Uniform(rng, 0, 4)] + " " +
                      kTypes3[Uniform(rng, 0, 4)]);
      psize.push_back(Uniform(rng, 1, 50));
      pcontainer.push_back(std::string(kContainers1[Uniform(rng, 0, 4)]) +
                           " " + kContainers2[Uniform(rng, 0, 7)]);
      pprice.push_back(900 + static_cast<double>(i % 1000) +
                       UniformF(rng, 0, 100));
      pcomment.push_back(Comment(rng, 3));
    }
    Table t;
    PYTOND_RETURN_IF_ERROR(t.AddColumn("p_partkey", Column::Int64(pk)));
    PYTOND_RETURN_IF_ERROR(t.AddColumn("p_name", Column::String(pname)));
    PYTOND_RETURN_IF_ERROR(t.AddColumn("p_mfgr", Column::String(pmfgr)));
    PYTOND_RETURN_IF_ERROR(t.AddColumn("p_brand", Column::String(pbrand)));
    PYTOND_RETURN_IF_ERROR(t.AddColumn("p_type", Column::String(ptype)));
    PYTOND_RETURN_IF_ERROR(t.AddColumn("p_size", Column::Int64(psize)));
    PYTOND_RETURN_IF_ERROR(
        t.AddColumn("p_container", Column::String(pcontainer)));
    PYTOND_RETURN_IF_ERROR(
        t.AddColumn("p_retailprice", Column::Float64(pprice)));
    PYTOND_RETURN_IF_ERROR(t.AddColumn("p_comment", Column::String(pcomment)));
    TableConstraints tc;
    tc.primary_key = {"p_partkey"};
    PYTOND_RETURN_IF_ERROR(db->CreateTable("part", std::move(t), tc));
  }

  // ---- partsupp (4 suppliers per part) ----
  {
    std::vector<int64_t> pspk, pssk, psq;
    std::vector<double> pscost;
    std::vector<std::string> pscomment;
    for (int64_t p = 1; p <= n_part; ++p) {
      for (int j = 0; j < 4; ++j) {
        pspk.push_back(p);
        pssk.push_back((p + j * (n_supplier / 4 + 1)) % n_supplier + 1);
        psq.push_back(Uniform(rng, 1, 9999));
        pscost.push_back(UniformF(rng, 1.0, 1000.0));
        pscomment.push_back(Comment(rng, 3));
      }
    }
    Table t;
    PYTOND_RETURN_IF_ERROR(t.AddColumn("ps_partkey", Column::Int64(pspk)));
    PYTOND_RETURN_IF_ERROR(t.AddColumn("ps_suppkey", Column::Int64(pssk)));
    PYTOND_RETURN_IF_ERROR(t.AddColumn("ps_availqty", Column::Int64(psq)));
    PYTOND_RETURN_IF_ERROR(
        t.AddColumn("ps_supplycost", Column::Float64(pscost)));
    PYTOND_RETURN_IF_ERROR(
        t.AddColumn("ps_comment", Column::String(pscomment)));
    TableConstraints tc;
    tc.primary_key = {"ps_partkey", "ps_suppkey"};
    PYTOND_RETURN_IF_ERROR(db->CreateTable("partsupp", std::move(t), tc));
  }

  // ---- customer ----
  {
    std::vector<int64_t> ck, cnat;
    std::vector<std::string> cname, caddr, cphone, cseg, ccomment;
    std::vector<double> cbal;
    for (int64_t i = 1; i <= n_customer; ++i) {
      ck.push_back(i);
      cname.push_back("Customer#" + PadNum(i, 9));
      caddr.push_back("caddr" + std::to_string(Uniform(rng, 0, 99999)));
      int64_t nat = Uniform(rng, 0, 24);
      cnat.push_back(nat);
      cphone.push_back(std::to_string(nat + 10) + "-" +
                       PadNum(Uniform(rng, 100, 999), 3) + "-" +
                       PadNum(Uniform(rng, 1000, 9999), 4));
      cbal.push_back(UniformF(rng, -999.99, 9999.99));
      cseg.push_back(kSegments[Uniform(rng, 0, 4)]);
      ccomment.push_back(Comment(rng, 6));
    }
    Table t;
    PYTOND_RETURN_IF_ERROR(t.AddColumn("c_custkey", Column::Int64(ck)));
    PYTOND_RETURN_IF_ERROR(t.AddColumn("c_name", Column::String(cname)));
    PYTOND_RETURN_IF_ERROR(t.AddColumn("c_address", Column::String(caddr)));
    PYTOND_RETURN_IF_ERROR(t.AddColumn("c_nationkey", Column::Int64(cnat)));
    PYTOND_RETURN_IF_ERROR(t.AddColumn("c_phone", Column::String(cphone)));
    PYTOND_RETURN_IF_ERROR(t.AddColumn("c_acctbal", Column::Float64(cbal)));
    PYTOND_RETURN_IF_ERROR(t.AddColumn("c_mktsegment", Column::String(cseg)));
    PYTOND_RETURN_IF_ERROR(t.AddColumn("c_comment", Column::String(ccomment)));
    TableConstraints tc;
    tc.primary_key = {"c_custkey"};
    PYTOND_RETURN_IF_ERROR(db->CreateTable("customer", std::move(t), tc));
  }

  // ---- orders + lineitem ----
  {
    std::vector<int64_t> ok, ocust, oship;
    std::vector<std::string> ostatus, opri, oclerk, ocomment;
    std::vector<double> ototal;
    std::vector<int32_t> odate;

    std::vector<int64_t> lok, lpk, lsk, lnum, lqty;
    std::vector<double> lprice, ldisc, ltax;
    std::vector<std::string> lret, lstat, linstr, lmode, lcomment;
    std::vector<int32_t> lship, lcommit, lreceipt;

    const int32_t cutoff = *date_util::FromYMD(1995, 6, 17);
    for (int64_t i = 1; i <= n_orders; ++i) {
      int64_t okey = i * 4 - 3;  // sparse keys like dbgen
      ok.push_back(okey);
      // Like dbgen: customers whose key is divisible by 3 place no orders
      // (gives Q22 its "customers without orders" population).
      int64_t cust = Uniform(rng, 1, n_customer);
      while (cust % 3 == 0) cust = Uniform(rng, 1, n_customer);
      ocust.push_back(cust);
      int32_t od = RandomDate(rng, d_lo, d_hi - 151);
      odate.push_back(od);
      opri.push_back(kPriorities[Uniform(rng, 0, 4)]);
      oclerk.push_back("Clerk#" + PadNum(Uniform(rng, 1, 1000), 9));
      oship.push_back(0);
      ocomment.push_back(Comment(rng, 5));

      int nlines = static_cast<int>(Uniform(rng, 1, 7));
      double order_total = 0;
      bool all_f = true, all_o = true;
      for (int ln = 1; ln <= nlines; ++ln) {
        lok.push_back(okey);
        int64_t partkey = Uniform(rng, 1, n_part);
        lpk.push_back(partkey);
        lsk.push_back((partkey + Uniform(rng, 0, 3) * (n_supplier / 4 + 1)) %
                          n_supplier +
                      1);
        lnum.push_back(ln);
        int64_t qty = Uniform(rng, 1, 50);
        lqty.push_back(qty);
        double price =
            static_cast<double>(qty) * (900 + static_cast<double>(partkey % 1000));
        lprice.push_back(price);
        double disc = static_cast<double>(Uniform(rng, 0, 10)) / 100.0;
        ldisc.push_back(disc);
        ltax.push_back(static_cast<double>(Uniform(rng, 0, 8)) / 100.0);
        int32_t ship = od + static_cast<int32_t>(Uniform(rng, 1, 121));
        int32_t commit = od + static_cast<int32_t>(Uniform(rng, 30, 90));
        int32_t receipt = ship + static_cast<int32_t>(Uniform(rng, 1, 30));
        lship.push_back(ship);
        lcommit.push_back(commit);
        lreceipt.push_back(receipt);
        if (receipt <= cutoff) {
          lret.push_back(Uniform(rng, 0, 1) ? "R" : "A");
        } else {
          lret.push_back("N");
        }
        if (ship > cutoff) {
          lstat.push_back("O");
          all_f = false;
        } else {
          lstat.push_back("F");
          all_o = false;
        }
        linstr.push_back(kInstructs[Uniform(rng, 0, 3)]);
        lmode.push_back(kShipModes[Uniform(rng, 0, 6)]);
        lcomment.push_back(Comment(rng, 3));
        order_total += price * (1 - disc);
      }
      ototal.push_back(order_total);
      ostatus.push_back(all_f ? "F" : (all_o ? "O" : "P"));
    }
    Table orders;
    PYTOND_RETURN_IF_ERROR(orders.AddColumn("o_orderkey", Column::Int64(ok)));
    PYTOND_RETURN_IF_ERROR(orders.AddColumn("o_custkey", Column::Int64(ocust)));
    PYTOND_RETURN_IF_ERROR(
        orders.AddColumn("o_orderstatus", Column::String(ostatus)));
    PYTOND_RETURN_IF_ERROR(
        orders.AddColumn("o_totalprice", Column::Float64(ototal)));
    PYTOND_RETURN_IF_ERROR(
        orders.AddColumn("o_orderdate", Column::Date(odate)));
    PYTOND_RETURN_IF_ERROR(
        orders.AddColumn("o_orderpriority", Column::String(opri)));
    PYTOND_RETURN_IF_ERROR(orders.AddColumn("o_clerk", Column::String(oclerk)));
    PYTOND_RETURN_IF_ERROR(
        orders.AddColumn("o_shippriority", Column::Int64(oship)));
    PYTOND_RETURN_IF_ERROR(
        orders.AddColumn("o_comment", Column::String(ocomment)));
    TableConstraints otc;
    otc.primary_key = {"o_orderkey"};
    PYTOND_RETURN_IF_ERROR(db->CreateTable("orders", std::move(orders), otc));

    Table li;
    PYTOND_RETURN_IF_ERROR(li.AddColumn("l_orderkey", Column::Int64(lok)));
    PYTOND_RETURN_IF_ERROR(li.AddColumn("l_partkey", Column::Int64(lpk)));
    PYTOND_RETURN_IF_ERROR(li.AddColumn("l_suppkey", Column::Int64(lsk)));
    PYTOND_RETURN_IF_ERROR(li.AddColumn("l_linenumber", Column::Int64(lnum)));
    PYTOND_RETURN_IF_ERROR(li.AddColumn("l_quantity", Column::Int64(lqty)));
    PYTOND_RETURN_IF_ERROR(
        li.AddColumn("l_extendedprice", Column::Float64(lprice)));
    PYTOND_RETURN_IF_ERROR(li.AddColumn("l_discount", Column::Float64(ldisc)));
    PYTOND_RETURN_IF_ERROR(li.AddColumn("l_tax", Column::Float64(ltax)));
    PYTOND_RETURN_IF_ERROR(li.AddColumn("l_returnflag", Column::String(lret)));
    PYTOND_RETURN_IF_ERROR(li.AddColumn("l_linestatus", Column::String(lstat)));
    PYTOND_RETURN_IF_ERROR(li.AddColumn("l_shipdate", Column::Date(lship)));
    PYTOND_RETURN_IF_ERROR(li.AddColumn("l_commitdate", Column::Date(lcommit)));
    PYTOND_RETURN_IF_ERROR(
        li.AddColumn("l_receiptdate", Column::Date(lreceipt)));
    PYTOND_RETURN_IF_ERROR(
        li.AddColumn("l_shipinstruct", Column::String(linstr)));
    PYTOND_RETURN_IF_ERROR(li.AddColumn("l_shipmode", Column::String(lmode)));
    PYTOND_RETURN_IF_ERROR(li.AddColumn("l_comment", Column::String(lcomment)));
    TableConstraints ltc;
    ltc.primary_key = {"l_orderkey", "l_linenumber"};
    PYTOND_RETURN_IF_ERROR(db->CreateTable("lineitem", std::move(li), ltc));
  }
  return Status::OK();
}

}  // namespace pytond::workloads::tpch
