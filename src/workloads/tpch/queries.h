#ifndef PYTOND_WORKLOADS_TPCH_QUERIES_H_
#define PYTOND_WORKLOADS_TPCH_QUERIES_H_

#include <string>
#include <vector>

namespace pytond::workloads::tpch {

/// One TPC-H query as a Pandas-dialect @pytond program. The same source
/// drives both PyTond compilation and the eager baseline interpreter,
/// exactly like the paper runs the same Python through both systems.
struct Query {
  int id;                   // 1..22
  const char* name;         // "Q1" ...
  const char* source;       // @pytond function text
};

/// All 22 queries ("PyTond is the first approach offering complete
/// coverage for the TPC-H benchmark", paper §V-B).
const std::vector<Query>& AllQueries();

/// Lookup by id; terminates on bad id (programmer error).
const Query& GetQuery(int id);

}  // namespace pytond::workloads::tpch

#endif  // PYTOND_WORKLOADS_TPCH_QUERIES_H_
