#ifndef PYTOND_WORKLOADS_TPCH_DBGEN_H_
#define PYTOND_WORKLOADS_TPCH_DBGEN_H_

#include "common/status.h"
#include "engine/database.h"

namespace pytond::workloads::tpch {

/// Deterministic TPC-H-like data generator. Produces all eight tables with
/// the standard schemas, key structure, value domains and selectivity-
/// relevant distributions at the requested scale factor (SF 1.0 ≈ the
/// official 6M-lineitem dataset; tests use much smaller factors). Loads
/// tables with their primary-key constraints into `db`.
Status Populate(engine::Database* db, double scale_factor, uint64_t seed = 42);

}  // namespace pytond::workloads::tpch

#endif  // PYTOND_WORKLOADS_TPCH_DBGEN_H_
