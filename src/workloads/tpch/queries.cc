#include "workloads/tpch/queries.h"

namespace pytond::workloads::tpch {

namespace {

const char* kQ1 = R"PY(
@pytond()
def q1(lineitem):
    f = lineitem[lineitem.l_shipdate <= '1998-09-02']
    f['disc_price'] = f.l_extendedprice * (1 - f.l_discount)
    f['charge'] = f.l_extendedprice * (1 - f.l_discount) * (1 + f.l_tax)
    g = f.groupby(['l_returnflag', 'l_linestatus']).agg(
        sum_qty=('l_quantity', 'sum'),
        sum_base_price=('l_extendedprice', 'sum'),
        sum_disc_price=('disc_price', 'sum'),
        sum_charge=('charge', 'sum'),
        avg_qty=('l_quantity', 'mean'),
        avg_price=('l_extendedprice', 'mean'),
        avg_disc=('l_discount', 'mean'),
        count_order=('l_quantity', 'count'))
    out = g.sort_values(by=['l_returnflag', 'l_linestatus'])
    return out
)PY";

const char* kQ2 = R"PY(
@pytond()
def q2(part, supplier, partsupp, nation, region):
    r = region[region.r_name == 'EUROPE']
    n = nation.merge(r, left_on='n_regionkey', right_on='r_regionkey')
    s = supplier.merge(n, left_on='s_nationkey', right_on='n_nationkey')
    ps = partsupp.merge(s, left_on='ps_suppkey', right_on='s_suppkey')
    p = part[(part.p_size == 15) & (part.p_type.str.endswith('BRASS'))]
    j = p.merge(ps, left_on='p_partkey', right_on='ps_partkey')
    mn = j.groupby(['p_partkey']).agg(min_cost=('ps_supplycost', 'min'))
    j2 = j.merge(mn, left_on='p_partkey', right_on='p_partkey')
    j3 = j2[j2.ps_supplycost == j2.min_cost]
    out = j3[['s_acctbal', 's_name', 'n_name', 'p_partkey', 'p_mfgr',
              's_address', 's_phone', 's_comment']]
    out2 = out.sort_values(by=['s_acctbal', 'n_name', 's_name', 'p_partkey'],
                           ascending=[False, True, True, True]).head(100)
    return out2
)PY";

const char* kQ3 = R"PY(
@pytond()
def q3(customer, orders, lineitem):
    c = customer[customer.c_mktsegment == 'BUILDING']
    o = orders[orders.o_orderdate < '1995-03-15']
    l = lineitem[lineitem.l_shipdate > '1995-03-15']
    co = c.merge(o, left_on='c_custkey', right_on='o_custkey')
    col = co.merge(l, left_on='o_orderkey', right_on='l_orderkey')
    col['volume'] = col.l_extendedprice * (1 - col.l_discount)
    g = col.groupby(['l_orderkey', 'o_orderdate', 'o_shippriority']).agg(
        revenue=('volume', 'sum'))
    out = g.sort_values(by=['revenue', 'o_orderdate'],
                        ascending=[False, True]).head(10)
    return out
)PY";

const char* kQ4 = R"PY(
@pytond()
def q4(orders, lineitem):
    l = lineitem[lineitem.l_commitdate < lineitem.l_receiptdate]
    o = orders[(orders.o_orderdate >= '1993-07-01') &
               (orders.o_orderdate < '1993-10-01')]
    f = o[o.o_orderkey.isin(l['l_orderkey'])]
    g = f.groupby(['o_orderpriority']).agg(order_count=('o_orderkey', 'count'))
    out = g.sort_values(by=['o_orderpriority'])
    return out
)PY";

const char* kQ5 = R"PY(
@pytond()
def q5(customer, orders, lineitem, supplier, nation, region):
    r = region[region.r_name == 'ASIA']
    n = nation.merge(r, left_on='n_regionkey', right_on='r_regionkey')
    s = supplier.merge(n, left_on='s_nationkey', right_on='n_nationkey')
    o = orders[(orders.o_orderdate >= '1994-01-01') &
               (orders.o_orderdate < '1995-01-01')]
    co = customer.merge(o, left_on='c_custkey', right_on='o_custkey')
    l = lineitem.merge(co, left_on='l_orderkey', right_on='o_orderkey')
    j = l.merge(s, left_on='l_suppkey', right_on='s_suppkey')
    j2 = j[j.c_nationkey == j.s_nationkey]
    j2['volume'] = j2.l_extendedprice * (1 - j2.l_discount)
    g = j2.groupby(['n_name']).agg(revenue=('volume', 'sum'))
    out = g.sort_values(by=['revenue'], ascending=[False])
    return out
)PY";

const char* kQ6 = R"PY(
@pytond()
def q6(lineitem):
    f = lineitem[(lineitem.l_shipdate >= '1994-01-01') &
                 (lineitem.l_shipdate < '1995-01-01') &
                 (lineitem.l_discount >= 0.05) &
                 (lineitem.l_discount <= 0.07) &
                 (lineitem.l_quantity < 24)]
    f['rev'] = f.l_extendedprice * f.l_discount
    out = f.agg(revenue=('rev', 'sum'))
    return out
)PY";

const char* kQ7 = R"PY(
@pytond()
def q7(supplier, lineitem, orders, customer, nation):
    n1 = nation[(nation.n_name == 'FRANCE') | (nation.n_name == 'GERMANY')]
    s = supplier.merge(n1, left_on='s_nationkey', right_on='n_nationkey')
    l = lineitem[(lineitem.l_shipdate >= '1995-01-01') &
                 (lineitem.l_shipdate <= '1996-12-31')]
    sl = s.merge(l, left_on='s_suppkey', right_on='l_suppkey')
    o = orders.merge(sl, left_on='o_orderkey', right_on='l_orderkey')
    c = customer.merge(n1, left_on='c_nationkey', right_on='n_nationkey')
    j = o.merge(c, left_on='o_custkey', right_on='c_custkey')
    j2 = j[((j.n_name_x == 'FRANCE') & (j.n_name_y == 'GERMANY')) |
           ((j.n_name_x == 'GERMANY') & (j.n_name_y == 'FRANCE'))]
    j2['l_year'] = j2.l_shipdate.dt.year
    j2['volume'] = j2.l_extendedprice * (1 - j2.l_discount)
    g = j2.groupby(['n_name_x', 'n_name_y', 'l_year']).agg(
        revenue=('volume', 'sum'))
    out = g.sort_values(by=['n_name_x', 'n_name_y', 'l_year'])
    return out
)PY";

const char* kQ8 = R"PY(
@pytond()
def q8(part, supplier, lineitem, orders, customer, nation, region):
    r = region[region.r_name == 'AMERICA']
    n1 = nation.merge(r, left_on='n_regionkey', right_on='r_regionkey')
    c = customer.merge(n1, left_on='c_nationkey', right_on='n_nationkey')
    o = orders[(orders.o_orderdate >= '1995-01-01') &
               (orders.o_orderdate <= '1996-12-31')]
    co = c.merge(o, left_on='c_custkey', right_on='o_custkey')
    p = part[part.p_type == 'ECONOMY ANODIZED STEEL']
    l = lineitem.merge(p, left_on='l_partkey', right_on='p_partkey')
    lo = l.merge(co, left_on='l_orderkey', right_on='o_orderkey')
    s = supplier.merge(nation, left_on='s_nationkey', right_on='n_nationkey')
    j = lo.merge(s, left_on='l_suppkey', right_on='s_suppkey')
    j['o_year'] = j.o_orderdate.dt.year
    j['volume'] = j.l_extendedprice * (1 - j.l_discount)
    j['brazil_volume'] = np.where(j.n_name_y == 'BRAZIL', j.volume, 0.0)
    g = j.groupby(['o_year']).agg(total=('volume', 'sum'),
                                  brazil=('brazil_volume', 'sum'))
    g['mkt_share'] = g.brazil / g.total
    out = g[['o_year', 'mkt_share']]
    out2 = out.sort_values(by=['o_year'])
    return out2
)PY";

const char* kQ9 = R"PY(
@pytond()
def q9(part, supplier, lineitem, partsupp, orders, nation):
    p = part[part.p_name.str.contains('green')]
    l = lineitem.merge(p, left_on='l_partkey', right_on='p_partkey')
    ps = partsupp.merge(l, left_on=['ps_partkey', 'ps_suppkey'],
                        right_on=['l_partkey', 'l_suppkey'])
    s = supplier.merge(nation, left_on='s_nationkey', right_on='n_nationkey')
    j = ps.merge(s, left_on='ps_suppkey', right_on='s_suppkey')
    o = j.merge(orders, left_on='l_orderkey', right_on='o_orderkey')
    o['o_year'] = o.o_orderdate.dt.year
    o['amount'] = o.l_extendedprice * (1 - o.l_discount) - o.ps_supplycost * o.l_quantity
    g = o.groupby(['n_name', 'o_year']).agg(sum_profit=('amount', 'sum'))
    out = g.sort_values(by=['n_name', 'o_year'], ascending=[True, False])
    return out
)PY";

const char* kQ10 = R"PY(
@pytond()
def q10(customer, orders, lineitem, nation):
    o = orders[(orders.o_orderdate >= '1993-10-01') &
               (orders.o_orderdate < '1994-01-01')]
    l = lineitem[lineitem.l_returnflag == 'R']
    co = customer.merge(o, left_on='c_custkey', right_on='o_custkey')
    col = co.merge(l, left_on='o_orderkey', right_on='l_orderkey')
    j = col.merge(nation, left_on='c_nationkey', right_on='n_nationkey')
    j['volume'] = j.l_extendedprice * (1 - j.l_discount)
    g = j.groupby(['c_custkey', 'c_name', 'c_acctbal', 'c_phone', 'n_name',
                   'c_address', 'c_comment']).agg(revenue=('volume', 'sum'))
    out = g.sort_values(by=['revenue'], ascending=[False]).head(20)
    return out
)PY";

const char* kQ11 = R"PY(
@pytond()
def q11(partsupp, supplier, nation):
    n = nation[nation.n_name == 'GERMANY']
    s = supplier.merge(n, left_on='s_nationkey', right_on='n_nationkey')
    ps = partsupp.merge(s, left_on='ps_suppkey', right_on='s_suppkey')
    ps['value'] = ps.ps_supplycost * ps.ps_availqty
    g = ps.groupby(['ps_partkey']).agg(value=('value', 'sum'))
    t = ps.agg(total=('value', 'sum'))
    j = g.merge(t, how='cross')
    f = j[j.value > j.total * 0.0001]
    out = f[['ps_partkey', 'value']]
    out2 = out.sort_values(by=['value'], ascending=[False])
    return out2
)PY";

const char* kQ12 = R"PY(
@pytond()
def q12(orders, lineitem):
    l = lineitem[(lineitem.l_shipmode.isin(['MAIL', 'SHIP'])) &
                 (lineitem.l_commitdate < lineitem.l_receiptdate) &
                 (lineitem.l_shipdate < lineitem.l_commitdate) &
                 (lineitem.l_receiptdate >= '1994-01-01') &
                 (lineitem.l_receiptdate < '1995-01-01')]
    j = orders.merge(l, left_on='o_orderkey', right_on='l_orderkey')
    j['high'] = np.where((j.o_orderpriority == '1-URGENT') |
                         (j.o_orderpriority == '2-HIGH'), 1, 0)
    j['low'] = np.where((j.o_orderpriority != '1-URGENT') &
                        (j.o_orderpriority != '2-HIGH'), 1, 0)
    g = j.groupby(['l_shipmode']).agg(high_line_count=('high', 'sum'),
                                      low_line_count=('low', 'sum'))
    out = g.sort_values(by=['l_shipmode'])
    return out
)PY";

const char* kQ13 = R"PY(
@pytond()
def q13(customer, orders):
    o = orders[~(orders.o_comment.str.contains('special%requests'))]
    j = customer.merge(o, left_on='c_custkey', right_on='o_custkey',
                       how='left')
    g = j.groupby(['c_custkey']).agg(c_count=('o_orderkey', 'count'))
    d = g.groupby(['c_count']).agg(custdist=('c_custkey', 'count'))
    out = d.sort_values(by=['custdist', 'c_count'], ascending=[False, False])
    return out
)PY";

const char* kQ14 = R"PY(
@pytond()
def q14(lineitem, part):
    l = lineitem[(lineitem.l_shipdate >= '1995-09-01') &
                 (lineitem.l_shipdate < '1995-10-01')]
    j = l.merge(part, left_on='l_partkey', right_on='p_partkey')
    j['rev'] = j.l_extendedprice * (1 - j.l_discount)
    j['promo_rev'] = np.where(j.p_type.str.startswith('PROMO'), j.rev, 0.0)
    t = j.agg(promo=('promo_rev', 'sum'), total=('rev', 'sum'))
    t['promo_revenue'] = 100.0 * t.promo / t.total
    out = t[['promo_revenue']]
    return out
)PY";

const char* kQ15 = R"PY(
@pytond()
def q15(lineitem, supplier):
    l = lineitem[(lineitem.l_shipdate >= '1996-01-01') &
                 (lineitem.l_shipdate < '1996-04-01')]
    l['rev'] = l.l_extendedprice * (1 - l.l_discount)
    g = l.groupby(['l_suppkey']).agg(total_revenue=('rev', 'sum'))
    m = g.agg(max_rev=('total_revenue', 'max'))
    j = g.merge(m, how='cross')
    f = j[j.total_revenue == j.max_rev]
    out = f.merge(supplier, left_on='l_suppkey', right_on='s_suppkey')
    out2 = out[['s_suppkey', 's_name', 's_address', 's_phone',
                'total_revenue']]
    out3 = out2.sort_values(by=['s_suppkey'])
    return out3
)PY";

const char* kQ16 = R"PY(
@pytond()
def q16(partsupp, part, supplier):
    bad = supplier[supplier.s_comment.str.contains('Customer%Complaints')]
    p = part[(part.p_brand != 'Brand#45') &
             (~(part.p_type.str.startswith('MEDIUM POLISHED'))) &
             (part.p_size.isin([49, 14, 23, 45, 19, 3, 36, 9]))]
    j = partsupp.merge(p, left_on='ps_partkey', right_on='p_partkey')
    f = j[~j.ps_suppkey.isin(bad['s_suppkey'])]
    g = f.groupby(['p_brand', 'p_type', 'p_size']).agg(
        supplier_cnt=('ps_suppkey', 'nunique'))
    out = g.sort_values(by=['supplier_cnt', 'p_brand', 'p_type', 'p_size'],
                        ascending=[False, True, True, True])
    return out
)PY";

const char* kQ17 = R"PY(
@pytond()
def q17(lineitem, part):
    p = part[(part.p_brand == 'Brand#23') & (part.p_container == 'MED BOX')]
    j = lineitem.merge(p, left_on='l_partkey', right_on='p_partkey')
    g = j.groupby(['l_partkey']).agg(avg_qty=('l_quantity', 'mean'))
    j2 = j.merge(g, left_on='l_partkey', right_on='l_partkey')
    f = j2[j2.l_quantity < 0.2 * j2.avg_qty]
    t = f.agg(total=('l_extendedprice', 'sum'))
    t['avg_yearly'] = t.total / 7.0
    out = t[['avg_yearly']]
    return out
)PY";

const char* kQ18 = R"PY(
@pytond()
def q18(customer, orders, lineitem):
    g = lineitem.groupby(['l_orderkey']).agg(sum_qty=('l_quantity', 'sum'))
    big = g[g.sum_qty > 300]
    o = orders[orders.o_orderkey.isin(big['l_orderkey'])]
    co = customer.merge(o, left_on='c_custkey', right_on='o_custkey')
    j = co.merge(lineitem, left_on='o_orderkey', right_on='l_orderkey')
    g2 = j.groupby(['c_name', 'c_custkey', 'o_orderkey', 'o_orderdate',
                    'o_totalprice']).agg(total_qty=('l_quantity', 'sum'))
    out = g2.sort_values(by=['o_totalprice', 'o_orderdate'],
                         ascending=[False, True]).head(100)
    return out
)PY";

const char* kQ19 = R"PY(
@pytond()
def q19(lineitem, part):
    j = lineitem.merge(part, left_on='l_partkey', right_on='p_partkey')
    f = j[(j.l_shipmode.isin(['AIR', 'AIR REG'])) &
          (j.l_shipinstruct == 'DELIVER IN PERSON')]
    m = f[((f.p_brand == 'Brand#12') &
           (f.p_container.isin(['SM CASE', 'SM BOX', 'SM PACK', 'SM PKG'])) &
           (f.l_quantity >= 1) & (f.l_quantity <= 11) &
           (f.p_size >= 1) & (f.p_size <= 5)) |
          ((f.p_brand == 'Brand#23') &
           (f.p_container.isin(['MED BAG', 'MED BOX', 'MED PKG', 'MED PACK'])) &
           (f.l_quantity >= 10) & (f.l_quantity <= 20) &
           (f.p_size >= 1) & (f.p_size <= 10)) |
          ((f.p_brand == 'Brand#34') &
           (f.p_container.isin(['LG CASE', 'LG BOX', 'LG PACK', 'LG PKG'])) &
           (f.l_quantity >= 20) & (f.l_quantity <= 30) &
           (f.p_size >= 1) & (f.p_size <= 15))]
    m['rev'] = m.l_extendedprice * (1 - m.l_discount)
    out = m.agg(revenue=('rev', 'sum'))
    return out
)PY";

const char* kQ20 = R"PY(
@pytond()
def q20(supplier, nation, partsupp, part, lineitem):
    n = nation[nation.n_name == 'CANADA']
    s = supplier.merge(n, left_on='s_nationkey', right_on='n_nationkey')
    p = part[part.p_name.str.startswith('forest')]
    ps = partsupp[partsupp.ps_partkey.isin(p['p_partkey'])]
    l = lineitem[(lineitem.l_shipdate >= '1994-01-01') &
                 (lineitem.l_shipdate < '1995-01-01')]
    lg = l.groupby(['l_partkey', 'l_suppkey']).agg(sum_qty=('l_quantity', 'sum'))
    j = ps.merge(lg, left_on=['ps_partkey', 'ps_suppkey'],
                 right_on=['l_partkey', 'l_suppkey'])
    f = j[j.ps_availqty > 0.5 * j.sum_qty]
    out = s[s.s_suppkey.isin(f['ps_suppkey'])]
    out2 = out[['s_name', 's_address']]
    out3 = out2.sort_values(by=['s_name'])
    return out3
)PY";

const char* kQ21 = R"PY(
@pytond()
def q21(supplier, lineitem, orders, nation):
    n = nation[nation.n_name == 'SAUDI ARABIA']
    l1 = lineitem[lineitem.l_receiptdate > lineitem.l_commitdate]
    g = lineitem.groupby(['l_orderkey']).agg(nsupp=('l_suppkey', 'nunique'))
    multi = g[g.nsupp > 1]
    gl = l1.groupby(['l_orderkey']).agg(nlate=('l_suppkey', 'nunique'))
    single_late = gl[gl.nlate == 1]
    o = orders[orders.o_orderstatus == 'F']
    j = l1.merge(o, left_on='l_orderkey', right_on='o_orderkey')
    j2 = j[j.l_orderkey.isin(multi['l_orderkey'])]
    j3 = j2[j2.l_orderkey.isin(single_late['l_orderkey'])]
    s = supplier.merge(n, left_on='s_nationkey', right_on='n_nationkey')
    j4 = j3.merge(s, left_on='l_suppkey', right_on='s_suppkey')
    g2 = j4.groupby(['s_name']).agg(numwait=('l_orderkey', 'count'))
    out = g2.sort_values(by=['numwait', 's_name'],
                         ascending=[False, True]).head(100)
    return out
)PY";

const char* kQ22 = R"PY(
@pytond()
def q22(customer, orders):
    c = customer.copy()
    c['cntrycode'] = c.c_phone.str.slice(0, 2)
    f = c[c.cntrycode.isin(['13', '31', '23', '29', '30', '18', '17'])]
    pos = f[f.c_acctbal > 0.0]
    a = pos.agg(avg_bal=('c_acctbal', 'mean'))
    j = f.merge(a, how='cross')
    rich = j[j.c_acctbal > j.avg_bal]
    noord = rich[~rich.c_custkey.isin(orders['o_custkey'])]
    g = noord.groupby(['cntrycode']).agg(numcust=('c_custkey', 'count'),
                                         totacctbal=('c_acctbal', 'sum'))
    out = g.sort_values(by=['cntrycode'])
    return out
)PY";

}  // namespace

const std::vector<Query>& AllQueries() {
  static const std::vector<Query>* kQueries = new std::vector<Query>{
      {1, "Q1", kQ1},    {2, "Q2", kQ2},    {3, "Q3", kQ3},
      {4, "Q4", kQ4},    {5, "Q5", kQ5},    {6, "Q6", kQ6},
      {7, "Q7", kQ7},    {8, "Q8", kQ8},    {9, "Q9", kQ9},
      {10, "Q10", kQ10}, {11, "Q11", kQ11}, {12, "Q12", kQ12},
      {13, "Q13", kQ13}, {14, "Q14", kQ14}, {15, "Q15", kQ15},
      {16, "Q16", kQ16}, {17, "Q17", kQ17}, {18, "Q18", kQ18},
      {19, "Q19", kQ19}, {20, "Q20", kQ20}, {21, "Q21", kQ21},
      {22, "Q22", kQ22}};
  return *kQueries;
}

const Query& GetQuery(int id) { return AllQueries().at(id - 1); }

}  // namespace pytond::workloads::tpch
