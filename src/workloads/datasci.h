#ifndef PYTOND_WORKLOADS_DATASCI_H_
#define PYTOND_WORKLOADS_DATASCI_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "engine/database.h"

namespace pytond::workloads::datasci {

/// Deterministic synthetic datasets reproducing the operator mix of the
/// paper's hybrid workloads (the paper's datasets are Weld's Crime Index /
/// Birth Analysis notebooks and two Kaggle notebooks; we generate
/// schema-compatible data at a configurable scale — see DESIGN.md
/// substitutions).

/// Crime Index (Weld notebook, SF100 in the paper): city statistics table
/// `crime_data(total_population, adult_population, num_robberies)` plus a
/// 3x1 `crime_weights` matrix table.
Status PopulateCrimeIndex(engine::Database* db, int64_t rows,
                          uint64_t seed = 7);

/// Birth Analysis: `births(name, year, sex, births)`.
Status PopulateBirthAnalysis(engine::Database* db, int64_t rows,
                             uint64_t seed = 11);

/// Kaggle N3 stand-in: airline on-time records
/// `flights(carrier, origin, month, dep_delay, arr_delay, distance,
/// cancelled)` (the paper's N3 processes 700MB of airline data).
Status PopulateN3(engine::Database* db, int64_t rows, uint64_t seed = 13);

/// Kaggle N9 stand-in: housing listings
/// `listings(neighbourhood, room_type, price, minimum_nights,
/// number_of_reviews, availability)`.
Status PopulateN9(engine::Database* db, int64_t rows, uint64_t seed = 17);

/// Hybrid matrix workloads: `points(pk, f0..f3)`, `lookup(pk, g0..g3)`
/// and a 4x1 `weights` matrix (paper §V-A: join two large tables, convert
/// to NumPy, run an einsum).
Status PopulateHybrid(engine::Database* db, int64_t rows, uint64_t seed = 19);

/// Covariance input (Figure 9): dense matrix table `mat(id, c0..c{cols-1})`
/// plus its sparse COO twin `mat_coo(row_id, col_id, val)`. `density` in
/// (0, 1] is the fraction of nonzero entries.
Status PopulateCovariance(engine::Database* db, int64_t rows, int cols,
                          double density, uint64_t seed = 23);

// ---- @pytond sources (shared by PyTond and the eager baseline) ----

/// Hybrid Pandas->NumPy->Pandas pipeline over the crime data.
const char* CrimeIndexSource();
/// Pivot-table pipeline over the births data.
const char* BirthAnalysisSource();
/// Relational pipeline over the flights data.
const char* N3Source();
/// Relational pipeline over the listings data.
const char* N9Source();
/// Join -> einsum matrix-vector multiplication (plain / filtered).
const char* HybridMatMulSource(bool filtered);
/// Join -> einsum covariance computation (plain / filtered).
const char* HybridCovarSource(bool filtered);
/// Covariance over the dense layout.
const char* CovarDenseSource();
/// Covariance over the sparse (COO) layout.
const char* CovarSparseSource();

}  // namespace pytond::workloads::datasci

#endif  // PYTOND_WORKLOADS_DATASCI_H_
