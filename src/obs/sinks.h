#ifndef PYTOND_OBS_SINKS_H_
#define PYTOND_OBS_SINKS_H_

#include <string>

#include "obs/trace.h"

namespace pytond::obs {

/// Human-readable indented span tree: one line per span with duration,
/// self-time share, and counters. For terminals and test logs.
std::string FormatTree(const TraceCollector& collector);

/// Structured JSON: the span tree verbatim —
/// {"trace":{"name":..,"cat":..,"start_us":..,"dur_us":..,
///  "counters":{..},"children":[..]}}.
std::string ToJson(const TraceCollector& collector);

/// Chrome trace-event JSON (load in chrome://tracing or Perfetto):
/// {"traceEvents":[{"name","cat","ph":"X","ts","dur","pid","tid","args"}..],
///  "displayTimeUnit":"ms"}. Timestamps are microseconds relative to the
/// collector epoch; counters ride along as event args.
std::string ToChromeTrace(const TraceCollector& collector);

}  // namespace pytond::obs

#endif  // PYTOND_OBS_SINKS_H_
