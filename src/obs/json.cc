#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace pytond::obs {

namespace {

/// Length of the valid UTF-8 sequence starting at s[i], or 0 if the bytes
/// there are not well-formed UTF-8 (bad lead byte, truncated or wrong
/// continuation bytes, overlong encoding, surrogate, > U+10FFFF).
size_t Utf8SequenceLength(std::string_view s, size_t i) {
  auto cont = [&](size_t k, unsigned char lo = 0x80,
                  unsigned char hi = 0xBF) {
    if (k >= s.size()) return false;
    unsigned char b = static_cast<unsigned char>(s[k]);
    return b >= lo && b <= hi;
  };
  unsigned char c = static_cast<unsigned char>(s[i]);
  if (c <= 0x7F) return 1;
  if (c >= 0xC2 && c <= 0xDF) return cont(i + 1) ? 2 : 0;
  if (c == 0xE0) return cont(i + 1, 0xA0) && cont(i + 2) ? 3 : 0;
  if (c == 0xED) return cont(i + 1, 0x80, 0x9F) && cont(i + 2) ? 3 : 0;
  if (c >= 0xE1 && c <= 0xEF) return cont(i + 1) && cont(i + 2) ? 3 : 0;
  if (c == 0xF0) {
    return cont(i + 1, 0x90) && cont(i + 2) && cont(i + 3) ? 4 : 0;
  }
  if (c >= 0xF1 && c <= 0xF3) {
    return cont(i + 1) && cont(i + 2) && cont(i + 3) ? 4 : 0;
  }
  if (c == 0xF4) {
    return cont(i + 1, 0x80, 0x8F) && cont(i + 2) && cont(i + 3) ? 4 : 0;
  }
  return 0;  // 0x80..0xC1 (stray continuation / overlong), 0xF5..0xFF
}

}  // namespace

std::string EscapeJson(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  size_t i = 0;
  while (i < s.size()) {
    unsigned char c = static_cast<unsigned char>(s[i]);
    switch (c) {
      case '"': out += "\\\""; ++i; continue;
      case '\\': out += "\\\\"; ++i; continue;
      case '\b': out += "\\b"; ++i; continue;
      case '\f': out += "\\f"; ++i; continue;
      case '\n': out += "\\n"; ++i; continue;
      case '\r': out += "\\r"; ++i; continue;
      case '\t': out += "\\t"; ++i; continue;
      default: break;
    }
    if (c < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
      ++i;
      continue;
    }
    if (c < 0x80) {
      out += static_cast<char>(c);
      ++i;
      continue;
    }
    // Multi-byte: pass well-formed UTF-8 through unchanged; replace each
    // malformed byte with an escaped U+FFFD so arbitrary span/metric
    // names (raw pointers, fuzzer junk) can never produce invalid JSON.
    size_t len = Utf8SequenceLength(s, i);
    if (len == 0) {
      out += "\\ufffd";
      ++i;
    } else {
      out.append(s.substr(i, len));
      i += len;
    }
  }
  return out;
}

void JsonWriter::Comma() {
  if (after_key_) {
    after_key_ = false;
    return;  // value follows its key directly
  }
  if (!first_.empty()) {
    if (!first_.back()) out_ += ',';
    first_.back() = false;
  }
}

// NOLINTBEGIN(readability-identifier-naming) — fluent interface
JsonWriter& JsonWriter::BeginObject() {
  Comma();
  out_ += '{';
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  out_ += '}';
  if (!first_.empty()) first_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  Comma();
  out_ += '[';
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  out_ += ']';
  if (!first_.empty()) first_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view k) {
  Comma();
  out_ += '"';
  out_ += EscapeJson(k);
  out_ += "\":";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::String(std::string_view v) {
  Comma();
  out_ += '"';
  out_ += EscapeJson(v);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::Int(int64_t v) {
  Comma();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::UInt(uint64_t v) {
  Comma();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::Double(double v) {
  Comma();
  if (!std::isfinite(v)) {
    out_ += "null";
    return *this;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  out_ += buf;
  // "%.6g" of e.g. 1e300 yields "1e+300" which is valid JSON; integers
  // like "42" are too. Nothing further to fix up.
  return *this;
}

JsonWriter& JsonWriter::Bool(bool v) {
  Comma();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Null() {
  Comma();
  out_ += "null";
  return *this;
}
// NOLINTEND(readability-identifier-naming)

namespace {

/// Recursive-descent JSON syntax checker.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  Status Validate() {
    PYTOND_RETURN_IF_ERROR(ParseValue(0));
    SkipWs();
    if (pos_ != text_.size()) return Fail("trailing content");
    return Status::OK();
  }

 private:
  Status Fail(const std::string& what) const {
    return Status::InvalidArgument("malformed JSON at byte " +
                                   std::to_string(pos_) + ": " + what);
  }

  void SkipWs() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') ++pos_;
      else break;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ParseValue(int depth) {
    if (depth > 256) return Fail("nesting too deep");
    SkipWs();
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    char c = text_[pos_];
    switch (c) {
      case '{': return ParseObject(depth);
      case '[': return ParseArray(depth);
      case '"': return ParseString();
      case 't': return ParseLiteral("true");
      case 'f': return ParseLiteral("false");
      case 'n': return ParseLiteral("null");
      default:
        if (c == '-' || (c >= '0' && c <= '9')) return ParseNumber();
        return Fail(std::string("unexpected character '") + c + "'");
    }
  }

  Status ParseObject(int depth) {
    ++pos_;  // '{'
    SkipWs();
    if (Consume('}')) return Status::OK();
    while (true) {
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Fail("expected object key");
      }
      PYTOND_RETURN_IF_ERROR(ParseString());
      SkipWs();
      if (!Consume(':')) return Fail("expected ':'");
      PYTOND_RETURN_IF_ERROR(ParseValue(depth + 1));
      SkipWs();
      if (Consume(',')) continue;
      if (Consume('}')) return Status::OK();
      return Fail("expected ',' or '}'");
    }
  }

  Status ParseArray(int depth) {
    ++pos_;  // '['
    SkipWs();
    if (Consume(']')) return Status::OK();
    while (true) {
      PYTOND_RETURN_IF_ERROR(ParseValue(depth + 1));
      SkipWs();
      if (Consume(',')) continue;
      if (Consume(']')) return Status::OK();
      return Fail("expected ',' or ']'");
    }
  }

  Status ParseString() {
    ++pos_;  // '"'
    while (pos_ < text_.size()) {
      unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return Status::OK();
      }
      if (c < 0x20) return Fail("raw control character in string");
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return Fail("truncated escape");
        char e = text_[pos_];
        if (e == 'u') {
          for (int i = 1; i <= 4; ++i) {
            if (pos_ + static_cast<size_t>(i) >= text_.size() ||
                !std::isxdigit(
                    static_cast<unsigned char>(text_[pos_ + i]))) {
              return Fail("bad \\u escape");
            }
          }
          pos_ += 4;
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' &&
                   e != 'f' && e != 'n' && e != 'r' && e != 't') {
          return Fail("bad escape character");
        }
      }
      ++pos_;
    }
    return Fail("unterminated string");
  }

  Status ParseNumber() {
    Consume('-');
    if (pos_ >= text_.size()) return Fail("truncated number");
    if (text_[pos_] == '0') {
      ++pos_;
    } else if (text_[pos_] >= '1' && text_[pos_] <= '9') {
      while (pos_ < text_.size() && std::isdigit(
                 static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    } else {
      return Fail("bad number");
    }
    if (Consume('.')) {
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return Fail("bad fraction");
      }
      while (pos_ < text_.size() && std::isdigit(
                 static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return Fail("bad exponent");
      }
      while (pos_ < text_.size() && std::isdigit(
                 static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    return Status::OK();
  }

  Status ParseLiteral(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return Fail("bad literal");
    pos_ += lit.size();
    return Status::OK();
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Status ValidateJson(std::string_view text) {
  return JsonParser(text).Validate();
}

}  // namespace pytond::obs
