#ifndef PYTOND_OBS_TRACE_H_
#define PYTOND_OBS_TRACE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace pytond::obs {

/// Monotonic wall clock in nanoseconds (std::chrono::steady_clock).
uint64_t NowNs();

/// One node of the trace tree: a named timed scope with typed int64
/// counters and nested children. Durations are inclusive of children
/// (flame-graph semantics); sinks and summarizers derive self time by
/// subtracting child durations.
struct SpanNode {
  std::string name;
  std::string category;        // span taxonomy, see DESIGN.md §8
  uint64_t start_ns = 0;       // relative to the collector's epoch
  uint64_t duration_ns = 0;    // 0 while the span is still open
  std::vector<std::pair<std::string, int64_t>> counters;
  std::vector<std::unique_ptr<SpanNode>> children;

  /// Adds `delta` to the named counter (created at 0 if absent).
  void AddCounter(std::string_view counter, int64_t delta);
  /// Counter value, 0 if absent.
  int64_t Counter(std::string_view counter) const;
  bool HasCounter(std::string_view counter) const;

  /// First direct child with the given name, or nullptr.
  const SpanNode* FindChild(std::string_view child_name) const;
  /// Depth-first search over the whole subtree (excluding this node).
  const SpanNode* FindDescendant(std::string_view target) const;

  /// Sum of direct children's durations with the given category ("" = all);
  /// used to compute self time.
  uint64_t ChildDurationNs(std::string_view child_category = {}) const;
  uint64_t SelfDurationNs() const {
    uint64_t c = ChildDurationNs();
    return c >= duration_ns ? 0 : duration_ns - c;
  }
};

/// Per-query trace collector: owns the span tree and the open-span stack.
/// NOT thread-safe — spans must be opened and closed from one coordinating
/// thread (worker threads inside ParallelFor never touch the collector).
/// Attach one via RunOptions/QueryOptions/CompileOptions; a null collector
/// everywhere reduces instrumentation to a pointer null check.
class TraceCollector {
 public:
  TraceCollector();

  /// Opens a child span under the innermost open span (LIFO discipline).
  SpanNode* OpenSpan(std::string_view name, std::string_view category);
  /// Closes `node`, stamping its duration. Must be the innermost open span.
  void CloseSpan(SpanNode* node);

  /// The synthetic root ("trace"). Its duration tracks the last close.
  const SpanNode& root() const { return root_; }
  SpanNode& mutable_root() { return root_; }
  /// Innermost open span (the root if none is open).
  SpanNode* current() { return stack_.back(); }

  /// steady-clock ns at collector construction; span starts are relative
  /// to this.
  uint64_t epoch_ns() const { return epoch_ns_; }

 private:
  SpanNode root_;
  std::vector<SpanNode*> stack_;
  uint64_t epoch_ns_;
};

/// RAII scope: opens a span on construction, closes it on destruction.
/// A null collector makes every member function a no-op — this is the
/// null-check-only fast path the whole pipeline relies on.
class Span {
 public:
  Span(TraceCollector* collector, std::string_view name,
       std::string_view category = {});
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  bool active() const { return node_ != nullptr; }
  void AddCounter(std::string_view counter, int64_t delta);
  /// Closes early (idempotent); later AddCounter calls are dropped.
  void End();

 private:
  TraceCollector* collector_ = nullptr;
  SpanNode* node_ = nullptr;
};

}  // namespace pytond::obs

#endif  // PYTOND_OBS_TRACE_H_
