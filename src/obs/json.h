#ifndef PYTOND_OBS_JSON_H_
#define PYTOND_OBS_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace pytond::obs {

/// Escapes `s` for inclusion inside a JSON string literal (no quotes
/// added): backslash, quote, and control characters per RFC 8259.
std::string EscapeJson(std::string_view s);

/// Minimal streaming JSON writer shared by the trace sinks and the
/// machine-readable tool outputs (`tondtrace --format=json|chrome`,
/// `tondlint --json`). Call sequence is checked only by construction
/// order — callers are expected to emit well-formed documents; tests
/// close the loop with ValidateJson.
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();
  /// Emits an object key; must be followed by exactly one value.
  JsonWriter& Key(std::string_view k);
  JsonWriter& String(std::string_view v);
  JsonWriter& Int(int64_t v);
  JsonWriter& UInt(uint64_t v);
  /// Non-finite doubles render as null (JSON has no NaN/Inf).
  JsonWriter& Double(double v);
  JsonWriter& Bool(bool v);
  JsonWriter& Null();

  const std::string& str() const { return out_; }
  std::string TakeString() { return std::move(out_); }

 private:
  void Comma();
  std::string out_;
  std::vector<bool> first_;    // per open container: no element emitted yet
  bool after_key_ = false;
};

/// Minimal syntax-only JSON validator (the "pipe through a minimal
/// validator" gate used by scripts/check.sh via `tondtrace --check`).
/// OK iff `text` is exactly one well-formed JSON value plus optional
/// trailing whitespace; otherwise InvalidArgument naming the byte offset.
Status ValidateJson(std::string_view text);

}  // namespace pytond::obs

#endif  // PYTOND_OBS_JSON_H_
