#ifndef PYTOND_OBS_QUERY_PROFILE_H_
#define PYTOND_OBS_QUERY_PROFILE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace pytond::obs {

/// Flattened summary of one compile+run trace — the paper's compile-time
/// vs. execution-time split (Figures 3-10), computable without walking the
/// span tree by hand. Produced by SummarizeTrace / Session::RunProfiled.
struct QueryProfile {
  double compile_ms = 0;  // whole frontend pipeline (parse..sqlgen)
  double exec_ms = 0;     // engine "query" span
  double eager_ms = 0;    // eager-baseline run, 0 unless one was traced

  /// Compile phases in pipeline order (parse, anf, translate, verify,
  /// optimize, sqlgen) with inclusive milliseconds.
  std::vector<std::pair<std::string, double>> compile_phases;

  /// Optimizer passes aggregated by name across rounds: time plus the
  /// net rules/atoms removed (inlining can make atoms negative).
  struct PassSummary {
    std::string name;
    double ms = 0;
    int64_t runs = 0;
    int64_t times_changed = 0;
    int64_t rules_removed = 0;
    int64_t atoms_removed = 0;
  };
  std::vector<PassSummary> passes;

  /// Executor operators aggregated by name with *self* milliseconds
  /// (children excluded) and total output rows.
  struct OperatorSummary {
    std::string name;
    double self_ms = 0;
    int64_t invocations = 0;
    int64_t rows_out = 0;
  };
  std::vector<OperatorSummary> operators;

  /// eager_ms / exec_ms — the paper's headline speedup ratio; 0 when
  /// either side is missing.
  double SpeedupVsBaseline() const;

  /// Multi-line human-readable rendering.
  std::string ToString() const;
};

/// Walks the collector's span tree by category ("phase", "pass",
/// "operator", "engine", "eager") and aggregates it into a QueryProfile.
QueryProfile SummarizeTrace(const TraceCollector& collector);

}  // namespace pytond::obs

#endif  // PYTOND_OBS_QUERY_PROFILE_H_
