#ifndef PYTOND_OBS_METRICS_METRICS_H_
#define PYTOND_OBS_METRICS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace pytond::obs {

/// Always-on runtime metrics (DESIGN.md §12).
///
/// A MetricsRegistry lives on each engine::Database and aggregates cheap
/// operational counters across every session and query: QPS, latency
/// percentiles, rows moved, plan-cache hit rates, scheduler activity, and
/// memory peaks. Unlike the per-query TraceCollector (opt-in, tree-shaped,
/// single-threaded), everything here is designed to be hammered from many
/// racing query threads with a handful of atomic operations per *query*
/// (never per row), so it stays on in production serve paths.
///
/// Naming scheme: `tond_<area>_<name>[_<unit>]` using only
/// [a-zA-Z0-9_] plus an optional trailing `{key="value"}` label set —
/// directly usable as a Prometheus series name. Areas in use: `db`
/// (query front door), `session` (Run* entry points), `cache` (plan
/// cache), `sched` (worker pool), `mem` (accountants).

/// Process-wide default switch, read once from the environment:
/// TOND_METRICS=off|0|false disables recording (exposition still works,
/// everything reads zero). Each registry can also be toggled at runtime.
bool MetricsEnabledByEnv();

/// Sharded monotonic counter: adds land on a per-thread shard to keep
/// racing sessions off each other's cache lines; reads sum the shards.
class Counter {
 public:
  static constexpr size_t kShards = 16;

  void Add(uint64_t delta);
  uint64_t Value() const;

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> v{0};
  };
  std::array<Shard, kShards> shards_;
};

/// Last-write-wins instantaneous value with a CAS-max variant for peaks.
class Gauge {
 public:
  void Set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void Add(int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  /// Raises the gauge to `v` if larger (peak tracking).
  void SetMax(int64_t v);
  int64_t Value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

/// Point-in-time copy of one histogram; quantiles are interpolated within
/// the covering log bucket and clamped to the exact observed min/max.
struct HistogramSnapshot {
  std::vector<uint64_t> buckets;  // per-bucket counts (see Histogram)
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t min = 0;
  uint64_t max = 0;

  double Quantile(double q) const;
  double Mean() const {
    return count == 0 ? 0 : static_cast<double>(sum) / count;
  }
  /// Bucket-wise difference vs an earlier snapshot of the same histogram
  /// (counters are monotonic, so this is the activity in between).
  HistogramSnapshot DeltaSince(const HistogramSnapshot& prev) const;
};

/// Log-bucketed latency/size histogram. Bucket i counts values whose
/// bit-width is i, i.e. the half-open range [2^(i-1), 2^i) with bucket 0
/// holding exact zeros — so bucket upper bounds are 2^i - 1 and relative
/// quantile error is bounded by 2x, which is plenty for p50/p95/p99
/// operational dashboards. Recording is one fetch_add plus min/max CAS;
/// histograms merge (and diff) bucket-wise, which is what makes per-window
/// delta reporting in `tondstat --watch` exact.
class Histogram {
 public:
  static constexpr size_t kBuckets = 64;

  void Record(uint64_t value);
  HistogramSnapshot Snapshot() const;
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }

 private:
  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> min_{UINT64_MAX};
  std::atomic<uint64_t> max_{0};
};

/// Point-in-time copy of a whole registry, renderable as JSON or
/// Prometheus text exposition format. Metric vectors are name-sorted.
struct MetricsSnapshot {
  uint64_t taken_ns = 0;  // steady-clock stamp (NowNs)
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, int64_t>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;

  /// Counter/histogram activity since `prev` (gauges stay instantaneous).
  /// Metrics absent from `prev` diff against zero.
  MetricsSnapshot DeltaSince(const MetricsSnapshot& prev) const;

  /// Lookup helpers (0 / empty snapshot when absent).
  uint64_t CounterValue(std::string_view name) const;
  int64_t GaugeValue(std::string_view name) const;
  const HistogramSnapshot* FindHistogram(std::string_view name) const;

  /// One JSON object: {"ts_ns":..., "counters":{...}, "gauges":{...},
  /// "histograms":{name:{count,sum,min,max,mean,p50,p95,p99,buckets}}}.
  std::string ToJson() const;
  /// Prometheus text exposition: `# TYPE` per family, cumulative
  /// `_bucket{le=...}` lines plus `_sum`/`_count` for histograms.
  std::string ToPrometheus() const;
};

/// Owner of named metrics. Lookup takes a short mutex; hot paths resolve
/// their metrics once and keep the returned references (stable for the
/// registry's lifetime). The `enabled` flag gates the convenience
/// recording helpers and is the contract callers with cached references
/// must check themselves (see Database/Session).
class MetricsRegistry {
 public:
  MetricsRegistry() : enabled_(MetricsEnabledByEnv()) {}
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// Find-or-create; references stay valid for the registry's lifetime.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Name-based recording, gated on enabled(). For cold paths and tools;
  /// hot paths cache the references instead.
  void AddCounter(std::string_view name, uint64_t delta);
  void SetGauge(std::string_view name, int64_t v);
  void SetGaugeMax(std::string_view name, int64_t v);
  void RecordHistogram(std::string_view name, uint64_t value);

  MetricsSnapshot Snapshot() const;

 private:
  std::atomic<bool> enabled_;
  mutable std::mutex mu_;  // guards the maps, not the metrics
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>>
      histograms_;
};

}  // namespace pytond::obs

#endif  // PYTOND_OBS_METRICS_METRICS_H_
