#ifndef PYTOND_OBS_METRICS_MEMORY_ACCOUNTANT_H_
#define PYTOND_OBS_METRICS_MEMORY_ACCOUNTANT_H_

#include <atomic>
#include <cstdint>

namespace pytond::obs {

/// Per-query (and database-wide) byte accounting.
///
/// Charge/Release protocol (DESIGN.md §12): operators charge bytes for
/// the structures they materialize — hash-join build tables, aggregate
/// group states, and every materialized intermediate table. Transient
/// build structures release when the operator finishes (ScopedCharge);
/// materialized outputs stay charged until the owning query's accountant
/// is destroyed, which releases its remaining balance from the parent.
/// Charges propagate up the parent chain (query -> database), so the
/// database-wide accountant's peak captures concurrent queries
/// overlapping in time.
///
/// Thread-safe: morsel workers of one query charge the same accountant.
class MemoryAccountant {
 public:
  explicit MemoryAccountant(MemoryAccountant* parent = nullptr)
      : parent_(parent) {}
  ~MemoryAccountant();
  MemoryAccountant(const MemoryAccountant&) = delete;
  MemoryAccountant& operator=(const MemoryAccountant&) = delete;

  void Charge(uint64_t bytes);
  void Release(uint64_t bytes);

  /// Bytes currently charged (monotone peak in `peak`).
  uint64_t current() const {
    return current_.load(std::memory_order_relaxed);
  }
  uint64_t peak() const { return peak_.load(std::memory_order_relaxed); }

  /// Raises `peak` without touching `current` — lets an external observer
  /// (RunOptions/QueryOptions::mem) mirror a query-local peak.
  void ObservePeak(uint64_t bytes);

  MemoryAccountant* parent() const { return parent_; }

 private:
  MemoryAccountant* parent_;
  std::atomic<uint64_t> current_{0};
  std::atomic<uint64_t> peak_{0};
};

/// RAII transient charge: charges on construction (or Add), releases the
/// full balance on destruction. Null accountant makes every call a no-op.
class ScopedCharge {
 public:
  ScopedCharge(MemoryAccountant* accountant, uint64_t bytes = 0)
      : accountant_(accountant) {
    Add(bytes);
  }
  ~ScopedCharge() {
    if (accountant_ != nullptr && bytes_ > 0) {
      accountant_->Release(bytes_);
    }
  }
  ScopedCharge(const ScopedCharge&) = delete;
  ScopedCharge& operator=(const ScopedCharge&) = delete;

  void Add(uint64_t bytes) {
    if (accountant_ != nullptr && bytes > 0) {
      accountant_->Charge(bytes);
      bytes_ += bytes;
    }
  }
  uint64_t bytes() const { return bytes_; }

 private:
  MemoryAccountant* accountant_;
  uint64_t bytes_ = 0;
};

}  // namespace pytond::obs

#endif  // PYTOND_OBS_METRICS_MEMORY_ACCOUNTANT_H_
