#include "obs/metrics/memory_accountant.h"

namespace pytond::obs {

MemoryAccountant::~MemoryAccountant() {
  // Materialized-output charges are never individually released; hand the
  // remaining balance back to the parent so database-wide `current`
  // returns to its pre-query level.
  uint64_t leftover = current_.load(std::memory_order_relaxed);
  if (parent_ != nullptr && leftover > 0) parent_->Release(leftover);
}

void MemoryAccountant::Charge(uint64_t bytes) {
  if (bytes == 0) return;
  uint64_t now =
      current_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  ObservePeak(now);
  if (parent_ != nullptr) parent_->Charge(bytes);
}

void MemoryAccountant::Release(uint64_t bytes) {
  if (bytes == 0) return;
  // Clamp at zero defensively; a release larger than the balance would
  // otherwise wrap the unsigned counter forever.
  uint64_t cur = current_.load(std::memory_order_relaxed);
  uint64_t dec;
  do {
    dec = bytes < cur ? bytes : cur;
  } while (!current_.compare_exchange_weak(cur, cur - dec,
                                           std::memory_order_relaxed));
  if (parent_ != nullptr) parent_->Release(dec);
}

void MemoryAccountant::ObservePeak(uint64_t bytes) {
  uint64_t cur = peak_.load(std::memory_order_relaxed);
  while (bytes > cur && !peak_.compare_exchange_weak(
                            cur, bytes, std::memory_order_relaxed)) {
  }
}

}  // namespace pytond::obs
