#include "obs/metrics/metrics.h"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <thread>

#include "obs/json.h"
#include "obs/trace.h"

namespace pytond::obs {

namespace {

/// Shard index for the calling thread: hash the thread id once per call
/// (cheap, and threads keep hitting the same shard).
size_t ThreadShard() {
  static thread_local const size_t shard =
      std::hash<std::thread::id>{}(std::this_thread::get_id()) %
      Counter::kShards;
  return shard;
}

/// Bucket index for `v`: 0 for zero, else bit-width (1..64).
size_t BucketIndex(uint64_t v) {
  if (v == 0) return 0;
  size_t w = static_cast<size_t>(std::bit_width(v));
  return std::min(w, Histogram::kBuckets - 1);
}

/// Inclusive upper bound of bucket i (2^i - 1; bucket 0 holds zeros).
uint64_t BucketUpper(size_t i) {
  if (i == 0) return 0;
  if (i >= 64) return UINT64_MAX;
  return (uint64_t{1} << i) - 1;
}

uint64_t BucketLower(size_t i) { return i == 0 ? 0 : BucketUpper(i - 1) + 1; }

void AtomicSetMax(std::atomic<uint64_t>* a, uint64_t v) {
  uint64_t cur = a->load(std::memory_order_relaxed);
  while (v > cur &&
         !a->compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void AtomicSetMin(std::atomic<uint64_t>* a, uint64_t v) {
  uint64_t cur = a->load(std::memory_order_relaxed);
  while (v < cur &&
         !a->compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

/// Prometheus family name: the series name with any {label} suffix cut.
std::string_view FamilyOf(std::string_view name) {
  size_t brace = name.find('{');
  return brace == std::string_view::npos ? name : name.substr(0, brace);
}

void AppendPromType(std::string* out, std::string_view family,
                    std::string_view type, std::string* last_family) {
  if (*last_family == family) return;
  *last_family = std::string(family);
  out->append("# TYPE ");
  out->append(family);
  out->push_back(' ');
  out->append(type);
  out->push_back('\n');
}

}  // namespace

bool MetricsEnabledByEnv() {
  static const bool enabled = [] {
    const char* v = std::getenv("TOND_METRICS");
    if (v == nullptr) return true;
    return !(std::strcmp(v, "off") == 0 || std::strcmp(v, "0") == 0 ||
             std::strcmp(v, "false") == 0);
  }();
  return enabled;
}

void Counter::Add(uint64_t delta) {
  shards_[ThreadShard()].v.fetch_add(delta, std::memory_order_relaxed);
}

uint64_t Counter::Value() const {
  uint64_t total = 0;
  for (const Shard& s : shards_) {
    total += s.v.load(std::memory_order_relaxed);
  }
  return total;
}

void Gauge::SetMax(int64_t v) {
  int64_t cur = v_.load(std::memory_order_relaxed);
  while (v > cur &&
         !v_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void Histogram::Record(uint64_t value) {
  buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  AtomicSetMin(&min_, value);
  AtomicSetMax(&max_, value);
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot s;
  s.buckets.resize(kBuckets);
  for (size_t i = 0; i < kBuckets; ++i) {
    s.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  uint64_t mn = min_.load(std::memory_order_relaxed);
  s.min = mn == UINT64_MAX ? 0 : mn;
  s.max = max_.load(std::memory_order_relaxed);
  return s;
}

double HistogramSnapshot::Quantile(double q) const {
  // Count from the bucket copy, not `count`: a racing snapshot can see a
  // bucket increment before (or after) the count increment, and quantiles
  // must stay internally consistent with the buckets they walk.
  uint64_t total = 0;
  for (uint64_t b : buckets) total += b;
  if (total == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  double target = q * static_cast<double>(total);
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) continue;
    if (static_cast<double>(seen + buckets[i]) >= target) {
      // Linear interpolation inside the covering bucket.
      double frac =
          buckets[i] == 0
              ? 0
              : (target - static_cast<double>(seen)) /
                    static_cast<double>(buckets[i]);
      double lo = static_cast<double>(BucketLower(i));
      double hi = static_cast<double>(BucketUpper(i));
      double v = lo + frac * (hi - lo);
      // Clamp to exact observed extremes for tight tails.
      v = std::max(v, static_cast<double>(min));
      if (max > 0) v = std::min(v, static_cast<double>(max));
      return v;
    }
    seen += buckets[i];
  }
  return static_cast<double>(max);
}

HistogramSnapshot HistogramSnapshot::DeltaSince(
    const HistogramSnapshot& prev) const {
  HistogramSnapshot d;
  d.buckets.resize(buckets.size());
  for (size_t i = 0; i < buckets.size(); ++i) {
    uint64_t p = i < prev.buckets.size() ? prev.buckets[i] : 0;
    d.buckets[i] = buckets[i] >= p ? buckets[i] - p : 0;
  }
  d.count = count >= prev.count ? count - prev.count : 0;
  d.sum = sum >= prev.sum ? sum - prev.sum : 0;
  // min/max are lifetime extremes; keep the current ones as the best
  // available bound for the window.
  d.min = min;
  d.max = max;
  return d;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>())
             .first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

void MetricsRegistry::AddCounter(std::string_view name, uint64_t delta) {
  if (enabled()) counter(name).Add(delta);
}

void MetricsRegistry::SetGauge(std::string_view name, int64_t v) {
  if (enabled()) gauge(name).Set(v);
}

void MetricsRegistry::SetGaugeMax(std::string_view name, int64_t v) {
  if (enabled()) gauge(name).SetMax(v);
}

void MetricsRegistry::RecordHistogram(std::string_view name,
                                      uint64_t value) {
  if (enabled()) histogram(name).Record(value);
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot s;
  s.taken_ns = NowNs();
  std::lock_guard<std::mutex> lock(mu_);
  s.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    s.counters.emplace_back(name, c->Value());
  }
  s.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    s.gauges.emplace_back(name, g->Value());
  }
  s.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    s.histograms.emplace_back(name, h->Snapshot());
  }
  return s;
}

MetricsSnapshot MetricsSnapshot::DeltaSince(
    const MetricsSnapshot& prev) const {
  MetricsSnapshot d;
  d.taken_ns = taken_ns;
  d.counters.reserve(counters.size());
  for (const auto& [name, v] : counters) {
    uint64_t p = prev.CounterValue(name);
    d.counters.emplace_back(name, v >= p ? v - p : 0);
  }
  d.gauges = gauges;
  d.histograms.reserve(histograms.size());
  for (const auto& [name, h] : histograms) {
    const HistogramSnapshot* p = prev.FindHistogram(name);
    d.histograms.emplace_back(
        name, p == nullptr ? h : h.DeltaSince(*p));
  }
  return d;
}

uint64_t MetricsSnapshot::CounterValue(std::string_view name) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return v;
  }
  return 0;
}

int64_t MetricsSnapshot::GaugeValue(std::string_view name) const {
  for (const auto& [n, v] : gauges) {
    if (n == name) return v;
  }
  return 0;
}

const HistogramSnapshot* MetricsSnapshot::FindHistogram(
    std::string_view name) const {
  for (const auto& [n, h] : histograms) {
    if (n == name) return &h;
  }
  return nullptr;
}

std::string MetricsSnapshot::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("ts_ns").UInt(taken_ns);
  w.Key("counters").BeginObject();
  for (const auto& [name, v] : counters) w.Key(name).UInt(v);
  w.EndObject();
  w.Key("gauges").BeginObject();
  for (const auto& [name, v] : gauges) w.Key(name).Int(v);
  w.EndObject();
  w.Key("histograms").BeginObject();
  for (const auto& [name, h] : histograms) {
    w.Key(name).BeginObject();
    w.Key("count").UInt(h.count);
    w.Key("sum").UInt(h.sum);
    w.Key("min").UInt(h.min);
    w.Key("max").UInt(h.max);
    w.Key("mean").Double(h.Mean());
    w.Key("p50").Double(h.Quantile(0.50));
    w.Key("p95").Double(h.Quantile(0.95));
    w.Key("p99").Double(h.Quantile(0.99));
    // Sparse bucket list: [upper_bound, count] for non-empty buckets.
    w.Key("buckets").BeginArray();
    for (size_t i = 0; i < h.buckets.size(); ++i) {
      if (h.buckets[i] == 0) continue;
      w.BeginArray().UInt(BucketUpper(i)).UInt(h.buckets[i]).EndArray();
    }
    w.EndArray();
    w.EndObject();
  }
  w.EndObject();
  w.EndObject();
  return w.TakeString();
}

std::string MetricsSnapshot::ToPrometheus() const {
  std::string out;
  std::string last_family;
  char buf[64];
  for (const auto& [name, v] : counters) {
    AppendPromType(&out, FamilyOf(name), "counter", &last_family);
    std::snprintf(buf, sizeof(buf), " %llu\n",
                  static_cast<unsigned long long>(v));
    out += name;
    out += buf;
  }
  last_family.clear();
  for (const auto& [name, v] : gauges) {
    AppendPromType(&out, FamilyOf(name), "gauge", &last_family);
    std::snprintf(buf, sizeof(buf), " %lld\n", static_cast<long long>(v));
    out += name;
    out += buf;
  }
  for (const auto& [name, h] : histograms) {
    // Histograms with labels are not emitted today; names are families.
    out += "# TYPE " + name + " histogram\n";
    uint64_t cumulative = 0;
    size_t highest = 0;
    for (size_t i = 0; i < h.buckets.size(); ++i) {
      if (h.buckets[i] > 0) highest = i;
    }
    for (size_t i = 0; i <= highest; ++i) {
      cumulative += h.buckets[i];
      std::snprintf(buf, sizeof(buf), "\"} %llu\n",
                    static_cast<unsigned long long>(cumulative));
      out += name + "_bucket{le=\"" + std::to_string(BucketUpper(i)) + buf;
    }
    std::snprintf(buf, sizeof(buf), " %llu\n",
                  static_cast<unsigned long long>(h.count));
    out += name + "_bucket{le=\"+Inf\"}" + buf;
    std::snprintf(buf, sizeof(buf), " %llu\n",
                  static_cast<unsigned long long>(h.sum));
    out += name + "_sum" + buf;
    std::snprintf(buf, sizeof(buf), " %llu\n",
                  static_cast<unsigned long long>(h.count));
    out += name + "_count" + buf;
  }
  return out;
}

}  // namespace pytond::obs
