#include "obs/sinks.h"

#include <cstdio>

#include "obs/json.h"

namespace pytond::obs {

namespace {

double NsToMs(uint64_t ns) { return static_cast<double>(ns) / 1e6; }
double NsToUs(uint64_t ns) { return static_cast<double>(ns) / 1e3; }

void FormatNode(const SpanNode& node, int depth, std::string* out) {
  char buf[64];
  out->append(static_cast<size_t>(depth) * 2, ' ');
  out->append(node.name);
  std::snprintf(buf, sizeof(buf), "  %.3f ms", NsToMs(node.duration_ns));
  out->append(buf);
  if (!node.children.empty()) {
    std::snprintf(buf, sizeof(buf), " (self %.3f ms)",
                  NsToMs(node.SelfDurationNs()));
    out->append(buf);
  }
  if (!node.counters.empty()) {
    out->append("  [");
    bool first = true;
    for (const auto& [name, value] : node.counters) {
      if (!first) out->append(" ");
      first = false;
      out->append(name);
      out->append("=");
      out->append(std::to_string(value));
    }
    out->append("]");
  }
  out->append("\n");
  for (const auto& c : node.children) FormatNode(*c, depth + 1, out);
}

void JsonNode(const SpanNode& node, JsonWriter* w) {
  w->BeginObject();
  w->Key("name").String(node.name);
  w->Key("cat").String(node.category);
  w->Key("start_us").Double(NsToUs(node.start_ns));
  w->Key("dur_us").Double(NsToUs(node.duration_ns));
  if (!node.counters.empty()) {
    w->Key("counters").BeginObject();
    for (const auto& [name, value] : node.counters) {
      w->Key(name).Int(value);
    }
    w->EndObject();
  }
  if (!node.children.empty()) {
    w->Key("children").BeginArray();
    for (const auto& c : node.children) JsonNode(*c, w);
    w->EndArray();
  }
  w->EndObject();
}

void ChromeEvents(const SpanNode& node, JsonWriter* w) {
  w->BeginObject();
  w->Key("name").String(node.name);
  w->Key("cat").String(node.category.empty() ? "span" : node.category);
  w->Key("ph").String("X");
  w->Key("ts").Double(NsToUs(node.start_ns));
  w->Key("dur").Double(NsToUs(node.duration_ns));
  w->Key("pid").Int(1);
  w->Key("tid").Int(1);
  if (!node.counters.empty()) {
    w->Key("args").BeginObject();
    for (const auto& [name, value] : node.counters) {
      w->Key(name).Int(value);
    }
    w->EndObject();
  }
  w->EndObject();
  for (const auto& c : node.children) ChromeEvents(*c, w);
}

}  // namespace

std::string FormatTree(const TraceCollector& collector) {
  std::string out;
  FormatNode(collector.root(), 0, &out);
  return out;
}

std::string ToJson(const TraceCollector& collector) {
  JsonWriter w;
  w.BeginObject();
  w.Key("trace");
  JsonNode(collector.root(), &w);
  w.EndObject();
  return w.TakeString();
}

std::string ToChromeTrace(const TraceCollector& collector) {
  JsonWriter w;
  w.BeginObject();
  w.Key("traceEvents").BeginArray();
  // Emit the root's children — the synthetic "trace" root would only add
  // one all-enclosing bar to the timeline.
  for (const auto& c : collector.root().children) ChromeEvents(*c, &w);
  w.EndArray();
  w.Key("displayTimeUnit").String("ms");
  w.EndObject();
  return w.TakeString();
}

}  // namespace pytond::obs
