#include "obs/trace.h"

#include <chrono>

namespace pytond::obs {

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void SpanNode::AddCounter(std::string_view counter, int64_t delta) {
  for (auto& [name_, value] : counters) {
    if (name_ == counter) {
      value += delta;
      return;
    }
  }
  counters.emplace_back(std::string(counter), delta);
}

int64_t SpanNode::Counter(std::string_view counter) const {
  for (const auto& [name_, value] : counters) {
    if (name_ == counter) return value;
  }
  return 0;
}

bool SpanNode::HasCounter(std::string_view counter) const {
  for (const auto& [name_, value] : counters) {
    if (name_ == counter) return true;
  }
  return false;
}

const SpanNode* SpanNode::FindChild(std::string_view child_name) const {
  for (const auto& c : children) {
    if (c->name == child_name) return c.get();
  }
  return nullptr;
}

const SpanNode* SpanNode::FindDescendant(std::string_view target) const {
  for (const auto& c : children) {
    if (c->name == target) return c.get();
    if (const SpanNode* found = c->FindDescendant(target)) return found;
  }
  return nullptr;
}

uint64_t SpanNode::ChildDurationNs(std::string_view child_category) const {
  uint64_t total = 0;
  for (const auto& c : children) {
    if (child_category.empty() || c->category == child_category) {
      total += c->duration_ns;
    }
  }
  return total;
}

TraceCollector::TraceCollector() : epoch_ns_(NowNs()) {
  root_.name = "trace";
  root_.category = "root";
  stack_.push_back(&root_);
}

SpanNode* TraceCollector::OpenSpan(std::string_view name,
                                   std::string_view category) {
  auto node = std::make_unique<SpanNode>();
  node->name = std::string(name);
  node->category = std::string(category);
  node->start_ns = NowNs() - epoch_ns_;
  SpanNode* raw = node.get();
  stack_.back()->children.push_back(std::move(node));
  stack_.push_back(raw);
  return raw;
}

void TraceCollector::CloseSpan(SpanNode* node) {
  node->duration_ns = NowNs() - epoch_ns_ - node->start_ns;
  // Tolerate out-of-order closes (destruction order bugs) by popping down
  // to the node rather than corrupting the stack.
  while (stack_.size() > 1) {
    SpanNode* top = stack_.back();
    stack_.pop_back();
    if (top == node) break;
  }
  // The root's duration tracks the furthest close seen.
  uint64_t end = node->start_ns + node->duration_ns;
  if (end > root_.duration_ns) root_.duration_ns = end;
}

Span::Span(TraceCollector* collector, std::string_view name,
           std::string_view category) {
  if (collector == nullptr) return;  // inert: the advertised null check
  collector_ = collector;
  node_ = collector->OpenSpan(name, category);
}

Span::~Span() { End(); }

void Span::AddCounter(std::string_view counter, int64_t delta) {
  if (node_ != nullptr) node_->AddCounter(counter, delta);
}

void Span::End() {
  if (node_ == nullptr) return;
  collector_->CloseSpan(node_);
  node_ = nullptr;
  collector_ = nullptr;
}

}  // namespace pytond::obs
