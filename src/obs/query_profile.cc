#include "obs/query_profile.h"

#include <cstdio>

namespace pytond::obs {

namespace {

double NsToMs(uint64_t ns) { return static_cast<double>(ns) / 1e6; }

void Walk(const SpanNode& node, QueryProfile* p) {
  if (node.category == "compile") {
    p->compile_ms += NsToMs(node.duration_ns);
  } else if (node.category == "engine" && node.name == "query") {
    p->exec_ms += NsToMs(node.duration_ns);
  } else if (node.category == "eager" && node.name == "eager") {
    p->eager_ms += NsToMs(node.duration_ns);
  } else if (node.category == "phase") {
    bool merged = false;
    for (auto& [name, ms] : p->compile_phases) {
      if (name == node.name) {
        ms += NsToMs(node.duration_ns);
        merged = true;
        break;
      }
    }
    if (!merged) {
      p->compile_phases.emplace_back(node.name, NsToMs(node.duration_ns));
    }
  } else if (node.category == "pass") {
    QueryProfile::PassSummary* s = nullptr;
    for (auto& existing : p->passes) {
      if (existing.name == node.name) {
        s = &existing;
        break;
      }
    }
    if (s == nullptr) {
      p->passes.emplace_back();
      s = &p->passes.back();
      s->name = node.name;
    }
    s->ms += NsToMs(node.duration_ns);
    s->runs += 1;
    s->times_changed += node.Counter("changed");
    s->rules_removed +=
        node.Counter("rules_before") - node.Counter("rules_after");
    s->atoms_removed +=
        node.Counter("atoms_before") - node.Counter("atoms_after");
  } else if (node.category == "operator") {
    QueryProfile::OperatorSummary* s = nullptr;
    for (auto& existing : p->operators) {
      if (existing.name == node.name) {
        s = &existing;
        break;
      }
    }
    if (s == nullptr) {
      p->operators.emplace_back();
      s = &p->operators.back();
      s->name = node.name;
    }
    s->self_ms += NsToMs(node.duration_ns - node.ChildDurationNs("operator"));
    s->invocations += 1;
    s->rows_out += node.Counter("rows_out");
  }
  for (const auto& c : node.children) Walk(*c, p);
}

}  // namespace

double QueryProfile::SpeedupVsBaseline() const {
  if (eager_ms <= 0 || exec_ms <= 0) return 0;
  return eager_ms / exec_ms;
}

std::string QueryProfile::ToString() const {
  char buf[160];
  std::string out;
  std::snprintf(buf, sizeof(buf),
                "compile %.3f ms | exec %.3f ms", compile_ms, exec_ms);
  out += buf;
  if (eager_ms > 0) {
    std::snprintf(buf, sizeof(buf), " | eager %.3f ms (%.2fx)", eager_ms,
                  SpeedupVsBaseline());
    out += buf;
  }
  out += "\n";
  if (!compile_phases.empty()) {
    out += "compile phases:\n";
    for (const auto& [name, ms] : compile_phases) {
      std::snprintf(buf, sizeof(buf), "  %-28s %9.3f ms\n", name.c_str(), ms);
      out += buf;
    }
  }
  if (!passes.empty()) {
    out += "optimizer passes:\n";
    for (const PassSummary& s : passes) {
      std::snprintf(buf, sizeof(buf),
                    "  %-28s %9.3f ms  runs=%lld changed=%lld rules-=%lld "
                    "atoms-=%lld\n",
                    s.name.c_str(), s.ms, static_cast<long long>(s.runs),
                    static_cast<long long>(s.times_changed),
                    static_cast<long long>(s.rules_removed),
                    static_cast<long long>(s.atoms_removed));
      out += buf;
    }
  }
  if (!operators.empty()) {
    out += "operators (self time):\n";
    for (const OperatorSummary& s : operators) {
      std::snprintf(buf, sizeof(buf),
                    "  %-28s %9.3f ms  calls=%lld rows_out=%lld\n",
                    s.name.c_str(), s.self_ms,
                    static_cast<long long>(s.invocations),
                    static_cast<long long>(s.rows_out));
      out += buf;
    }
  }
  return out;
}

QueryProfile SummarizeTrace(const TraceCollector& collector) {
  QueryProfile p;
  Walk(collector.root(), &p);
  return p;
}

}  // namespace pytond::obs
