#include "optimizer/passes.h"

#include <algorithm>
#include <functional>
#include <map>

#include "analysis/verifier.h"

namespace pytond::opt {

using tondir::Atom;
using tondir::Body;
using tondir::CmpOp;
using tondir::Program;
using tondir::Rule;
using tondir::Term;
using tondir::TermPtr;

namespace {

/// Classifies the Compare atoms of a body in order: true = assignment
/// (fresh var + '='), false = filter.
std::vector<bool> ClassifyAssignments(const Body& body) {
  std::set<std::string> defined;
  std::vector<bool> is_assign(body.size(), false);
  for (size_t i = 0; i < body.size(); ++i) {
    const Atom& a = body[i];
    if (a.kind == Atom::Kind::kCompare) {
      is_assign[i] = a.cmp_op == CmpOp::kEq && !defined.count(a.var0);
    }
    a.CollectDefinedVars(defined, &defined);
  }
  return is_assign;
}

/// Variables a rule "needs" regardless of assignments: head / group / sort
/// vars, filter operands, join vars, exists and external atom vars.
std::set<std::string> SeedNeededVars(const Rule& rule,
                                     const std::vector<bool>& is_assign) {
  std::set<std::string> needed(rule.head.vars.begin(), rule.head.vars.end());
  needed.insert(rule.head.group_vars.begin(), rule.head.group_vars.end());
  for (const auto& k : rule.head.sort_keys) needed.insert(k.var);

  // Count appearances of vars across relation accesses (join vars).
  std::map<std::string, int> access_count;
  for (const Atom& a : rule.body) {
    if (a.kind == Atom::Kind::kRelAccess) {
      std::set<std::string> local;
      for (const std::string& v : a.vars) {
        // A var bound twice within one access is an equality filter.
        if (!local.insert(v).second) needed.insert(v);
        access_count[v]++;
      }
    }
  }
  for (const auto& [v, n] : access_count) {
    if (n > 1) needed.insert(v);
  }

  for (size_t i = 0; i < rule.body.size(); ++i) {
    const Atom& a = rule.body[i];
    switch (a.kind) {
      case Atom::Kind::kCompare:
        if (!is_assign[i]) {
          needed.insert(a.var0);
          if (a.term) a.term->CollectVars(&needed);
        }
        break;
      case Atom::Kind::kExists: {
        // Vars shared between the exists body and the outer body act as
        // correlations; conservatively mark all referenced vars needed.
        for (const Atom& inner : *a.exists_body) inner.CollectVars(&needed);
        break;
      }
      case Atom::Kind::kExternal:
        needed.insert(a.vars.begin(), a.vars.end());
        break;
      case Atom::Kind::kConstRel:
        // The generated column participates in the cross product; keep it.
        needed.insert(a.var0);
        break;
      case Atom::Kind::kRelAccess:
        break;
    }
  }
  return needed;
}

bool RelationDefinedOnce(const Program& p, const std::string& rel,
                         size_t* def_index) {
  int found = -1;
  for (size_t i = 0; i < p.rules.size(); ++i) {
    if (p.rules[i].head.relation == rel) {
      if (found >= 0) return false;
      found = static_cast<int>(i);
    }
  }
  if (found < 0) return false;
  *def_index = static_cast<size_t>(found);
  return true;
}

/// Renames every occurrence of variables per `subst` (old name -> new name)
/// throughout a body.
void RenameVars(Body* body, const std::map<std::string, std::string>& subst) {
  std::map<std::string, TermPtr> term_subst;
  for (const auto& [from, to] : subst) term_subst[from] = Term::Var(to);
  auto rename = [&](std::string* v) {
    auto it = subst.find(*v);
    if (it != subst.end()) *v = it->second;
  };
  for (Atom& a : *body) {
    switch (a.kind) {
      case Atom::Kind::kRelAccess:
      case Atom::Kind::kExternal:
        for (std::string& v : a.vars) rename(&v);
        break;
      case Atom::Kind::kConstRel:
        rename(&a.var0);
        break;
      case Atom::Kind::kCompare:
        rename(&a.var0);
        if (a.term) a.term = Term::Substitute(a.term, term_subst);
        break;
      case Atom::Kind::kExists: {
        RenameVars(a.exists_body.get(), subst);
        break;
      }
    }
  }
}

void RenameHead(tondir::Head* head,
                const std::map<std::string, std::string>& subst) {
  auto rename = [&](std::string* v) {
    auto it = subst.find(*v);
    if (it != subst.end()) *v = it->second;
  };
  for (std::string& v : head->vars) rename(&v);
  for (std::string& v : head->group_vars) rename(&v);
  for (auto& k : head->sort_keys) rename(&k.var);
}

}  // namespace

namespace {

bool TermHasUid(const Term& t) {
  if (t.kind == Term::Kind::kExt && t.ext_name == "uid") return true;
  for (const auto& c : t.children) {
    if (TermHasUid(*c)) return true;
  }
  return false;
}

bool RuleHasUid(const Rule& rule) {
  for (const Atom& a : rule.body) {
    if (a.kind == Atom::Kind::kCompare && a.term && TermHasUid(*a.term)) {
      return true;
    }
  }
  return false;
}

}  // namespace

bool IsFlowBreaker(const Rule& rule) {
  if (rule.HasAggregate()) return true;
  if (rule.head.has_group()) return true;
  if (rule.head.distinct) return true;
  if (rule.head.has_sort() || rule.head.limit.has_value()) return true;
  if (rule.HasOuterMarker()) return true;
  // UID generation is a row_number window in SQL; it must stay in its own
  // CTE (paper §III-E) so the ids are generated once and carried along.
  if (RuleHasUid(rule)) return true;
  return false;
}

bool LocalDeadCodeElimination(Program* program) {
  bool changed = false;
  for (Rule& rule : program->rules) {
    bool rule_changed = true;
    while (rule_changed) {
      rule_changed = false;
      std::vector<bool> is_assign = ClassifyAssignments(rule.body);
      std::set<std::string> needed = SeedNeededVars(rule, is_assign);
      // Backwards: an assignment feeding a needed var makes its term's
      // vars needed too.
      std::vector<bool> keep(rule.body.size(), true);
      for (size_t i = rule.body.size(); i-- > 0;) {
        if (!is_assign[i]) continue;
        const Atom& a = rule.body[i];
        if (needed.count(a.var0)) {
          if (a.term) a.term->CollectVars(&needed);
        } else {
          keep[i] = false;
        }
      }
      Body next;
      for (size_t i = 0; i < rule.body.size(); ++i) {
        if (keep[i]) next.push_back(std::move(rule.body[i]));
      }
      if (next.size() != rule.body.size()) {
        rule_changed = true;
        changed = true;
      }
      rule.body = std::move(next);  // atoms were moved either way
    }
  }
  return changed;
}

bool CopyPropagation(Program* program) {
  bool changed = false;
  for (Rule& rule : program->rules) {
    bool retry = true;
    while (retry) {
      retry = false;
      std::vector<bool> is_assign = ClassifyAssignments(rule.body);
      // Assignment targets bound to non-variable expressions must not be
      // unified into access bindings.
      std::set<std::string> expr_targets;
      for (size_t i = 0; i < rule.body.size(); ++i) {
        const Atom& a = rule.body[i];
        if (a.kind == Atom::Kind::kCompare && is_assign[i] &&
            a.term->kind != Term::Kind::kVar) {
          expr_targets.insert(a.var0);
        }
      }
      for (size_t i = 0; i < rule.body.size(); ++i) {
        const Atom& a = rule.body[i];
        if (a.kind != Atom::Kind::kCompare || a.cmp_op != CmpOp::kEq ||
            !a.term || a.term->kind != Term::Kind::kVar) {
          continue;
        }
        std::string x = a.var0;
        std::string y = a.term->var;
        if (expr_targets.count(y)) continue;
        if (!is_assign[i] && expr_targets.count(x)) continue;
        rule.body.erase(rule.body.begin() + static_cast<std::ptrdiff_t>(i));
        if (x != y) {
          std::map<std::string, std::string> subst = {{x, y}};
          RenameVars(&rule.body, subst);
          RenameHead(&rule.head, subst);
        }
        changed = true;
        retry = true;
        break;
      }
    }
  }
  return changed;
}

bool GlobalDeadCodeElimination(Program* program,
                               const std::set<std::string>& base_relations) {
  bool changed = false;
  auto readers = program->BuildReaderIndex();

  // Dead rule elimination: non-sink rules nobody reads.
  for (size_t i = 0; i + 1 < program->rules.size();) {
    const std::string& rel = program->rules[i].head.relation;
    auto it = readers.find(rel);
    if (it == readers.end() || it->second.empty()) {
      program->rules.erase(program->rules.begin() +
                           static_cast<std::ptrdiff_t>(i));
      readers = program->BuildReaderIndex();
      changed = true;
    } else {
      ++i;
    }
  }

  // Column pruning: remove head positions no reader uses.
  for (size_t r = 0; r + 1 < program->rules.size(); ++r) {
    Rule& def = program->rules[r];
    const std::string& rel = def.head.relation;
    if (base_relations.count(rel)) continue;
    size_t def_index;
    if (!RelationDefinedOnce(*program, rel, &def_index) || def_index != r) {
      continue;
    }
    size_t width = def.head.vars.size();
    std::vector<bool> used(width, false);

    auto it = readers.find(rel);
    if (it == readers.end()) continue;
    bool analyzable = true;
    for (size_t reader_idx : it->second) {
      const Rule& reader = program->rules[reader_idx];
      std::vector<bool> is_assign = ClassifyAssignments(reader.body);
      std::set<std::string> needed = SeedNeededVars(reader, is_assign);
      // Assignment targets that are needed pull in their term vars
      // (forward propagation to fixpoint).
      bool grow = true;
      while (grow) {
        grow = false;
        for (size_t i = 0; i < reader.body.size(); ++i) {
          if (!is_assign[i]) continue;
          const Atom& a = reader.body[i];
          if (needed.count(a.var0)) {
            size_t before = needed.size();
            if (a.term) a.term->CollectVars(&needed);
            if (needed.size() != before) grow = true;
          }
        }
      }
      // Join vars between accesses were seeded already. Now mark used
      // positions of each access to `rel` (also inside exists bodies all
      // vars were seeded as needed, so accesses there keep everything).
      std::function<void(const Body&)> mark = [&](const Body& body) {
        for (const Atom& a : body) {
          if (a.kind == Atom::Kind::kRelAccess && a.relation == rel) {
            if (a.vars.size() != width) {
              analyzable = false;
              continue;
            }
            for (size_t i = 0; i < width; ++i) {
              if (needed.count(a.vars[i])) used[i] = true;
            }
          } else if (a.kind == Atom::Kind::kExists) {
            // Inside exists everything was seeded needed; mark directly.
            for (const Atom& inner : *a.exists_body) {
              if (inner.kind == Atom::Kind::kRelAccess &&
                  inner.relation == rel) {
                if (inner.vars.size() != width) {
                  analyzable = false;
                  continue;
                }
                for (size_t i = 0; i < width; ++i) used[i] = true;
              }
            }
          }
        }
      };
      mark(reader.body);
    }
    if (!analyzable) continue;
    if (std::all_of(used.begin(), used.end(), [](bool b) { return b; })) {
      continue;
    }

    // Rewrite the defining head and every reader access.
    std::vector<std::string> new_vars, new_cols;
    std::set<size_t> kept_positions;
    for (size_t i = 0; i < width; ++i) {
      if (used[i]) {
        new_vars.push_back(def.head.vars[i]);
        if (!def.head.col_names.empty()) {
          new_cols.push_back(def.head.col_names[i]);
        }
        kept_positions.insert(i);
      }
    }
    def.head.vars = new_vars;
    def.head.col_names = new_cols;

    // Update uniqueness positions.
    auto info_it = program->relation_info.find(rel);
    if (info_it != program->relation_info.end()) {
      std::set<size_t> remapped;
      size_t new_pos = 0;
      for (size_t i = 0; i < width; ++i) {
        if (!used[i]) continue;
        if (info_it->second.unique_positions.count(i)) {
          remapped.insert(new_pos);
        }
        ++new_pos;
      }
      info_it->second.unique_positions = remapped;
    }

    std::function<void(Body*)> shrink = [&](Body* body) {
      for (Atom& a : *body) {
        if (a.kind == Atom::Kind::kRelAccess && a.relation == rel) {
          std::vector<std::string> nv;
          for (size_t i = 0; i < a.vars.size(); ++i) {
            if (used[i]) nv.push_back(a.vars[i]);
          }
          a.vars = std::move(nv);
        } else if (a.kind == Atom::Kind::kExists) {
          shrink(a.exists_body.get());
        }
      }
    };
    for (size_t reader_idx : it->second) {
      shrink(&program->rules[reader_idx].body);
    }
    changed = true;
  }
  return changed;
}

namespace {

bool IsUniqueVarInAccess(const Program& p, const Atom& access,
                         const std::string& var) {
  auto it = p.relation_info.find(access.relation);
  if (it == p.relation_info.end()) return false;
  for (size_t pos : it->second.unique_positions) {
    if (pos < access.vars.size() && access.vars[pos] == var) return true;
  }
  return false;
}

}  // namespace

bool GroupAggregateElimination(Program* program) {
  bool changed = false;
  for (Rule& rule : program->rules) {
    if (!rule.head.has_group()) continue;
    // Condition: every relation access holds some group var at a unique
    // position (so each group has at most one row), and nothing else
    // multiplies cardinality (no constant relations).
    bool ok = true;
    bool has_access = false;
    for (const Atom& a : rule.body) {
      if (a.kind == Atom::Kind::kConstRel) {
        ok = false;
        break;
      }
      if (a.kind != Atom::Kind::kRelAccess) continue;
      has_access = true;
      bool covered = false;
      for (const std::string& g : rule.head.group_vars) {
        if (IsUniqueVarInAccess(*program, a, g)) {
          covered = true;
          break;
        }
      }
      if (!covered) {
        ok = false;
        break;
      }
    }
    if (!ok || !has_access) continue;

    // Aggregate assignments must be top-level aggs (rewritable).
    bool rewritable = true;
    for (const Atom& a : rule.body) {
      if (a.kind == Atom::Kind::kCompare && a.term && a.term->ContainsAgg() &&
          a.term->kind != Term::Kind::kAgg) {
        rewritable = false;
        break;
      }
    }
    if (!rewritable) continue;

    for (Atom& a : rule.body) {
      if (a.kind != Atom::Kind::kCompare || !a.term ||
          a.term->kind != Term::Kind::kAgg) {
        continue;
      }
      switch (a.term->agg_fn) {
        case tondir::AggFn::kSum:
        case tondir::AggFn::kMin:
        case tondir::AggFn::kMax:
        case tondir::AggFn::kAvg:
          a.term = a.term->children[0];
          break;
        case tondir::AggFn::kCount:
        case tondir::AggFn::kCountDistinct:
          a.term = Term::Const(Value::Int64(1));
          break;
      }
    }
    rule.head.group_vars.clear();
    changed = true;
  }
  return changed;
}

bool SelfJoinElimination(Program* program) {
  bool changed = false;
  for (Rule& rule : program->rules) {
    bool retry = true;
    while (retry) {
      retry = false;
      // Find two accesses of the same relation sharing a var at the same
      // unique position.
      for (size_t i = 0; i < rule.body.size() && !retry; ++i) {
        if (rule.body[i].kind != Atom::Kind::kRelAccess) continue;
        for (size_t j = i + 1; j < rule.body.size() && !retry; ++j) {
          if (rule.body[j].kind != Atom::Kind::kRelAccess) continue;
          const Atom& a1 = rule.body[i];
          const Atom& a2 = rule.body[j];
          if (a1.relation != a2.relation ||
              a1.vars.size() != a2.vars.size()) {
            continue;
          }
          auto info = program->relation_info.find(a1.relation);
          if (info == program->relation_info.end()) continue;
          bool joined_on_unique = false;
          for (size_t pos : info->second.unique_positions) {
            if (pos < a1.vars.size() && a1.vars[pos] == a2.vars[pos]) {
              joined_on_unique = true;
              break;
            }
          }
          if (!joined_on_unique) continue;
          // Merge: a2's bindings become a1's.
          std::map<std::string, std::string> subst;
          for (size_t p = 0; p < a1.vars.size(); ++p) {
            if (a2.vars[p] != a1.vars[p]) subst[a2.vars[p]] = a1.vars[p];
          }
          rule.body.erase(rule.body.begin() + static_cast<std::ptrdiff_t>(j));
          if (!subst.empty()) {
            RenameVars(&rule.body, subst);
            RenameHead(&rule.head, subst);
          }
          changed = true;
          retry = true;
        }
      }
    }
  }
  return changed;
}

bool RuleInlining(Program* program,
                  const std::set<std::string>& base_relations) {
  bool changed = false;
  bool progress = true;
  int fresh_counter = 0;
  while (progress) {
    progress = false;
    auto readers = program->BuildReaderIndex();
    for (size_t r = 0; r < program->rules.size(); ++r) {
      if (r + 1 == program->rules.size()) break;  // sink rule
      Rule& def = program->rules[r];
      const std::string& rel = def.head.relation;
      if (base_relations.count(rel)) continue;
      if (IsFlowBreaker(def)) continue;
      size_t def_index;
      if (!RelationDefinedOnce(*program, rel, &def_index)) continue;
      auto it = readers.find(rel);
      if (it == readers.end() || it->second.empty()) continue;

      // Inline into every reader (including accesses inside exists).
      for (size_t reader_idx : it->second) {
        Rule& reader = program->rules[reader_idx];
        std::function<void(Body*)> process = [&](Body* body) {
          for (size_t k = 0; k < body->size(); ++k) {
            Atom& a = (*body)[k];
            if (a.kind == Atom::Kind::kExists) {
              process(a.exists_body.get());
              continue;
            }
            if (a.kind != Atom::Kind::kRelAccess || a.relation != rel) {
              continue;
            }
            // Build substitution: def head vars -> reader access vars;
            // all other def body vars -> fresh names.
            std::map<std::string, std::string> subst;
            Body extra_equalities;
            for (size_t p = 0; p < def.head.vars.size(); ++p) {
              const std::string& h = def.head.vars[p];
              const std::string& y = a.vars[p];
              auto s = subst.find(h);
              if (s == subst.end()) {
                subst[h] = y;
              } else if (s->second != y) {
                extra_equalities.push_back(
                    Atom::Compare(y, CmpOp::kEq, Term::Var(s->second)));
              }
            }
            std::set<std::string> body_vars;
            for (const Atom& ba : def.body) ba.CollectVars(&body_vars);
            for (const std::string& v : body_vars) {
              if (!subst.count(v)) {
                subst[v] = v + "_in" + std::to_string(fresh_counter);
              }
            }
            ++fresh_counter;
            Body inlined;
            for (const Atom& ba : def.body) {
              inlined.push_back(ba.CloneAtom());
            }
            RenameVars(&inlined, subst);
            for (Atom& eq : extra_equalities) inlined.push_back(eq);
            // Replace access atom with inlined body.
            body->erase(body->begin() + static_cast<std::ptrdiff_t>(k));
            body->insert(body->begin() + static_cast<std::ptrdiff_t>(k),
                         inlined.begin(), inlined.end());
            k += inlined.size() - 1;
          }
        };
        process(&reader.body);
      }
      // Remove the inlined rule.
      program->rules.erase(program->rules.begin() +
                           static_cast<std::ptrdiff_t>(r));
      changed = true;
      progress = true;
      break;  // indices invalidated; restart scan
    }
  }
  return changed;
}

OptimizerOptions OptimizerOptions::Preset(int level) {
  OptimizerOptions o;
  o.local_dce = level >= 1;
  o.global_dce = level >= 1;
  o.group_agg_elim = level >= 2;
  o.self_join_elim = level >= 3;
  o.rule_inlining = level >= 4;
  return o;
}

Status Optimize(tondir::Program* program,
                const std::set<std::string>& base_relations,
                const OptimizerOptions& options) {
  struct Pass {
    const char* name;
    bool enabled;
    bool (*run)(tondir::Program*, const std::set<std::string>&);
  };
  const Pass passes[] = {
      {"RuleInlining", options.rule_inlining,
       [](tondir::Program* p, const std::set<std::string>& b) {
         return RuleInlining(p, b);
       }},
      {"SelfJoinElimination", options.self_join_elim,
       [](tondir::Program* p, const std::set<std::string>&) {
         return SelfJoinElimination(p);
       }},
      {"GroupAggregateElimination", options.group_agg_elim,
       [](tondir::Program* p, const std::set<std::string>&) {
         return GroupAggregateElimination(p);
       }},
      {"GlobalDeadCodeElimination", options.global_dce,
       [](tondir::Program* p, const std::set<std::string>& b) {
         return GlobalDeadCodeElimination(p, b);
       }},
      {"CopyPropagation", options.local_dce,
       [](tondir::Program* p, const std::set<std::string>&) {
         return CopyPropagation(p);
       }},
      {"LocalDeadCodeElimination", options.local_dce,
       [](tondir::Program* p, const std::set<std::string>&) {
         return LocalDeadCodeElimination(p);
       }},
  };

  analysis::VerifyOptions vopts;
  vopts.base_relations = base_relations;
  if (options.verify_each_pass) {
    auto diags = analysis::VerifyProgram(*program, vopts);
    if (analysis::HasErrors(diags)) {
      return Status::InvalidArgument(
          "program is invalid before optimization:\n" +
          analysis::FormatDiagnostics(diags));
    }
  }

  // Total atoms across all rule bodies — the optimizer's unit of "work
  // eliminated" alongside whole rules. Only computed when tracing.
  auto count_atoms = [](const tondir::Program& p) {
    int64_t atoms = 0;
    for (const Rule& r : p.rules) atoms += static_cast<int64_t>(r.body.size());
    return atoms;
  };

  obs::Span opt_span(options.trace, "optimize", "phase");
  for (int round = 0; round < 8; ++round) {
    bool changed = false;
    for (const Pass& pass : passes) {
      if (!pass.enabled) continue;
      obs::Span pass_span(options.trace, pass.name, "pass");
      int64_t rules_before = 0, atoms_before = 0;
      if (options.trace != nullptr) {
        rules_before = static_cast<int64_t>(program->rules.size());
        atoms_before = count_atoms(*program);
      }
      std::string before;
      if (options.verify_each_pass) before = program->ToString();
      bool pass_changed = pass.run(program, base_relations);
      if (options.trace != nullptr) {
        pass_span.AddCounter("round", round);
        pass_span.AddCounter("changed", pass_changed ? 1 : 0);
        pass_span.AddCounter("rules_before", rules_before);
        pass_span.AddCounter("rules_after",
                             static_cast<int64_t>(program->rules.size()));
        pass_span.AddCounter("atoms_before", atoms_before);
        pass_span.AddCounter("atoms_after", count_atoms(*program));
      }
      pass_span.End();
      bool hooked = false;
      if (options.post_pass_hook) {
        options.post_pass_hook(pass.name, program);
        hooked = true;
      }
      if ((pass_changed || hooked) && options.verify_each_pass) {
        auto diags = analysis::VerifyProgram(*program, vopts);
        if (analysis::HasErrors(diags)) {
          return Status::Internal(
              std::string("optimizer pass ") + pass.name + " (round " +
              std::to_string(round) + ") broke TondIR invariants:\n" +
              analysis::FormatDiagnostics(diags) +
              "--- program before " + pass.name + " ---\n" + before +
              "--- program after ---\n" + program->ToString());
        }
      }
      changed |= pass_changed;
    }
    if (!changed) break;
  }
  return Status::OK();
}

}  // namespace pytond::opt
