#include "optimizer/passes.h"

#include <algorithm>
#include <functional>
#include <map>

#include "analysis/dataflow/dataflow.h"
#include "analysis/verifier.h"

namespace pytond::opt {

using tondir::Atom;
using tondir::Body;
using tondir::CmpOp;
using tondir::Program;
using tondir::Rule;
using tondir::Term;
using tondir::TermPtr;

namespace {

/// Classifies the Compare atoms of a body in order: true = assignment
/// (fresh var + '='), false = filter.
std::vector<bool> ClassifyAssignments(const Body& body) {
  std::set<std::string> defined;
  std::vector<bool> is_assign(body.size(), false);
  for (size_t i = 0; i < body.size(); ++i) {
    const Atom& a = body[i];
    if (a.kind == Atom::Kind::kCompare) {
      is_assign[i] = a.cmp_op == CmpOp::kEq && !defined.count(a.var0);
    }
    a.CollectDefinedVars(defined, &defined);
  }
  return is_assign;
}

/// Variables a rule "needs" regardless of assignments: head / group / sort
/// vars, filter operands, join vars, exists and external atom vars.
std::set<std::string> SeedNeededVars(const Rule& rule,
                                     const std::vector<bool>& is_assign) {
  std::set<std::string> needed(rule.head.vars.begin(), rule.head.vars.end());
  needed.insert(rule.head.group_vars.begin(), rule.head.group_vars.end());
  for (const auto& k : rule.head.sort_keys) needed.insert(k.var);

  // Count appearances of vars across relation accesses (join vars).
  std::map<std::string, int> access_count;
  for (const Atom& a : rule.body) {
    if (a.kind == Atom::Kind::kRelAccess) {
      std::set<std::string> local;
      for (const std::string& v : a.vars) {
        // A var bound twice within one access is an equality filter.
        if (!local.insert(v).second) needed.insert(v);
        access_count[v]++;
      }
    }
  }
  for (const auto& [v, n] : access_count) {
    if (n > 1) needed.insert(v);
  }

  for (size_t i = 0; i < rule.body.size(); ++i) {
    const Atom& a = rule.body[i];
    switch (a.kind) {
      case Atom::Kind::kCompare:
        if (!is_assign[i]) {
          needed.insert(a.var0);
          if (a.term) a.term->CollectVars(&needed);
        }
        break;
      case Atom::Kind::kExists: {
        // Vars shared between the exists body and the outer body act as
        // correlations; conservatively mark all referenced vars needed.
        for (const Atom& inner : *a.exists_body) inner.CollectVars(&needed);
        break;
      }
      case Atom::Kind::kExternal:
        needed.insert(a.vars.begin(), a.vars.end());
        break;
      case Atom::Kind::kConstRel:
        // The generated column participates in the cross product; keep it.
        needed.insert(a.var0);
        break;
      case Atom::Kind::kRelAccess:
        break;
    }
  }
  return needed;
}

bool RelationDefinedOnce(const Program& p, const std::string& rel,
                         size_t* def_index) {
  int found = -1;
  for (size_t i = 0; i < p.rules.size(); ++i) {
    if (p.rules[i].head.relation == rel) {
      if (found >= 0) return false;
      found = static_cast<int>(i);
    }
  }
  if (found < 0) return false;
  *def_index = static_cast<size_t>(found);
  return true;
}

/// Renames every occurrence of variables per `subst` (old name -> new name)
/// throughout a body.
void RenameVars(Body* body, const std::map<std::string, std::string>& subst) {
  std::map<std::string, TermPtr> term_subst;
  for (const auto& [from, to] : subst) term_subst[from] = Term::Var(to);
  auto rename = [&](std::string* v) {
    auto it = subst.find(*v);
    if (it != subst.end()) *v = it->second;
  };
  for (Atom& a : *body) {
    switch (a.kind) {
      case Atom::Kind::kRelAccess:
      case Atom::Kind::kExternal:
        for (std::string& v : a.vars) rename(&v);
        break;
      case Atom::Kind::kConstRel:
        rename(&a.var0);
        break;
      case Atom::Kind::kCompare:
        rename(&a.var0);
        if (a.term) a.term = Term::Substitute(a.term, term_subst);
        break;
      case Atom::Kind::kExists: {
        RenameVars(a.exists_body.get(), subst);
        break;
      }
    }
  }
}

void RenameHead(tondir::Head* head,
                const std::map<std::string, std::string>& subst) {
  auto rename = [&](std::string* v) {
    auto it = subst.find(*v);
    if (it != subst.end()) *v = it->second;
  };
  for (std::string& v : head->vars) rename(&v);
  for (std::string& v : head->group_vars) rename(&v);
  for (auto& k : head->sort_keys) rename(&k.var);
}

}  // namespace

namespace {

bool TermHasUid(const Term& t) {
  if (t.kind == Term::Kind::kExt && t.ext_name == "uid") return true;
  for (const auto& c : t.children) {
    if (TermHasUid(*c)) return true;
  }
  return false;
}

bool RuleHasUid(const Rule& rule) {
  for (const Atom& a : rule.body) {
    if (a.kind == Atom::Kind::kCompare && a.term && TermHasUid(*a.term)) {
      return true;
    }
  }
  return false;
}

}  // namespace

bool IsFlowBreaker(const Rule& rule) {
  if (rule.HasAggregate()) return true;
  if (rule.head.has_group()) return true;
  if (rule.head.distinct) return true;
  if (rule.head.has_sort() || rule.head.limit.has_value()) return true;
  if (rule.HasOuterMarker()) return true;
  // UID generation is a row_number window in SQL; it must stay in its own
  // CTE (paper §III-E) so the ids are generated once and carried along.
  if (RuleHasUid(rule)) return true;
  return false;
}

bool LocalDeadCodeElimination(Program* program) {
  bool changed = false;
  for (Rule& rule : program->rules) {
    bool rule_changed = true;
    while (rule_changed) {
      rule_changed = false;
      std::vector<bool> is_assign = ClassifyAssignments(rule.body);
      std::set<std::string> needed = SeedNeededVars(rule, is_assign);
      // Backwards: an assignment feeding a needed var makes its term's
      // vars needed too.
      std::vector<bool> keep(rule.body.size(), true);
      for (size_t i = rule.body.size(); i-- > 0;) {
        if (!is_assign[i]) continue;
        const Atom& a = rule.body[i];
        if (needed.count(a.var0)) {
          if (a.term) a.term->CollectVars(&needed);
        } else {
          keep[i] = false;
        }
      }
      Body next;
      for (size_t i = 0; i < rule.body.size(); ++i) {
        if (keep[i]) next.push_back(std::move(rule.body[i]));
      }
      if (next.size() != rule.body.size()) {
        rule_changed = true;
        changed = true;
      }
      rule.body = std::move(next);  // atoms were moved either way
    }
  }
  return changed;
}

bool CopyPropagation(Program* program) {
  bool changed = false;
  for (Rule& rule : program->rules) {
    bool retry = true;
    while (retry) {
      retry = false;
      std::vector<bool> is_assign = ClassifyAssignments(rule.body);
      // Assignment targets bound to non-variable expressions must not be
      // unified into access bindings.
      std::set<std::string> expr_targets;
      for (size_t i = 0; i < rule.body.size(); ++i) {
        const Atom& a = rule.body[i];
        if (a.kind == Atom::Kind::kCompare && is_assign[i] &&
            a.term->kind != Term::Kind::kVar) {
          expr_targets.insert(a.var0);
        }
      }
      for (size_t i = 0; i < rule.body.size(); ++i) {
        const Atom& a = rule.body[i];
        if (a.kind != Atom::Kind::kCompare || a.cmp_op != CmpOp::kEq ||
            !a.term || a.term->kind != Term::Kind::kVar) {
          continue;
        }
        std::string x = a.var0;
        std::string y = a.term->var;
        if (expr_targets.count(y)) continue;
        if (!is_assign[i] && expr_targets.count(x)) continue;
        rule.body.erase(rule.body.begin() + static_cast<std::ptrdiff_t>(i));
        if (x != y) {
          std::map<std::string, std::string> subst = {{x, y}};
          RenameVars(&rule.body, subst);
          RenameHead(&rule.head, subst);
        }
        changed = true;
        retry = true;
        break;
      }
    }
  }
  return changed;
}

bool GlobalDeadCodeElimination(Program* program,
                               const std::set<std::string>& base_relations) {
  bool changed = false;
  auto readers = program->BuildReaderIndex();

  // Dead rule elimination: non-sink rules nobody reads.
  for (size_t i = 0; i + 1 < program->rules.size();) {
    const std::string& rel = program->rules[i].head.relation;
    auto it = readers.find(rel);
    if (it == readers.end() || it->second.empty()) {
      program->rules.erase(program->rules.begin() +
                           static_cast<std::ptrdiff_t>(i));
      readers = program->BuildReaderIndex();
      changed = true;
    } else {
      ++i;
    }
  }

  // Column pruning: remove head positions no reader uses.
  for (size_t r = 0; r + 1 < program->rules.size(); ++r) {
    Rule& def = program->rules[r];
    const std::string& rel = def.head.relation;
    if (base_relations.count(rel)) continue;
    size_t def_index;
    if (!RelationDefinedOnce(*program, rel, &def_index) || def_index != r) {
      continue;
    }
    size_t width = def.head.vars.size();
    std::vector<bool> used(width, false);

    auto it = readers.find(rel);
    if (it == readers.end()) continue;
    bool analyzable = true;
    for (size_t reader_idx : it->second) {
      const Rule& reader = program->rules[reader_idx];
      std::vector<bool> is_assign = ClassifyAssignments(reader.body);
      std::set<std::string> needed = SeedNeededVars(reader, is_assign);
      // Assignment targets that are needed pull in their term vars
      // (forward propagation to fixpoint).
      bool grow = true;
      while (grow) {
        grow = false;
        for (size_t i = 0; i < reader.body.size(); ++i) {
          if (!is_assign[i]) continue;
          const Atom& a = reader.body[i];
          if (needed.count(a.var0)) {
            size_t before = needed.size();
            if (a.term) a.term->CollectVars(&needed);
            if (needed.size() != before) grow = true;
          }
        }
      }
      // Join vars between accesses were seeded already. Now mark used
      // positions of each access to `rel` (also inside exists bodies all
      // vars were seeded as needed, so accesses there keep everything).
      std::function<void(const Body&)> mark = [&](const Body& body) {
        for (const Atom& a : body) {
          if (a.kind == Atom::Kind::kRelAccess && a.relation == rel) {
            if (a.vars.size() != width) {
              analyzable = false;
              continue;
            }
            for (size_t i = 0; i < width; ++i) {
              if (needed.count(a.vars[i])) used[i] = true;
            }
          } else if (a.kind == Atom::Kind::kExists) {
            // Inside exists everything was seeded needed; mark directly.
            for (const Atom& inner : *a.exists_body) {
              if (inner.kind == Atom::Kind::kRelAccess &&
                  inner.relation == rel) {
                if (inner.vars.size() != width) {
                  analyzable = false;
                  continue;
                }
                for (size_t i = 0; i < width; ++i) used[i] = true;
              }
            }
          }
        }
      };
      mark(reader.body);
    }
    if (!analyzable) continue;
    if (std::all_of(used.begin(), used.end(), [](bool b) { return b; })) {
      continue;
    }

    // Rewrite the defining head and every reader access.
    std::vector<std::string> new_vars, new_cols;
    std::set<size_t> kept_positions;
    for (size_t i = 0; i < width; ++i) {
      if (used[i]) {
        new_vars.push_back(def.head.vars[i]);
        if (!def.head.col_names.empty()) {
          new_cols.push_back(def.head.col_names[i]);
        }
        kept_positions.insert(i);
      }
    }
    def.head.vars = new_vars;
    def.head.col_names = new_cols;

    // Update uniqueness positions.
    auto info_it = program->relation_info.find(rel);
    if (info_it != program->relation_info.end()) {
      std::set<size_t> remapped;
      size_t new_pos = 0;
      for (size_t i = 0; i < width; ++i) {
        if (!used[i]) continue;
        if (info_it->second.unique_positions.count(i)) {
          remapped.insert(new_pos);
        }
        ++new_pos;
      }
      info_it->second.unique_positions = remapped;
    }

    std::function<void(Body*)> shrink = [&](Body* body) {
      for (Atom& a : *body) {
        if (a.kind == Atom::Kind::kRelAccess && a.relation == rel) {
          std::vector<std::string> nv;
          for (size_t i = 0; i < a.vars.size(); ++i) {
            if (used[i]) nv.push_back(a.vars[i]);
          }
          a.vars = std::move(nv);
        } else if (a.kind == Atom::Kind::kExists) {
          shrink(a.exists_body.get());
        }
      }
    };
    for (size_t reader_idx : it->second) {
      shrink(&program->rules[reader_idx].body);
    }
    changed = true;
  }
  return changed;
}

namespace {

/// Fact-gated uniqueness: `var` sits at a position of `access` that the
/// dataflow analysis proved to be a candidate key of the relation. Returns
/// the justifying key fact (nullptr when unproven). Unlike the
/// relation_info lookup this replaced, derived relations' keys are
/// re-derived structurally, so a stale unique_positions entry cannot
/// justify a rewrite.
const analysis::dataflow::KeyFact* UniqueKeyForVar(
    const analysis::dataflow::ProgramFacts& facts, const Atom& access,
    const std::string& var) {
  const analysis::dataflow::RelationFacts* rf = facts.Find(access.relation);
  if (rf == nullptr) return nullptr;
  for (size_t pos = 0; pos < access.vars.size(); ++pos) {
    if (access.vars[pos] != var) continue;
    if (const analysis::dataflow::KeyFact* k = rf->KeyWithin({pos})) {
      return k;
    }
  }
  return nullptr;
}

void LogRewrite(std::vector<std::string>* log, const char* pass,
                size_t rule_index, const std::string& what,
                const std::string& fact) {
  if (log == nullptr) return;
  log->push_back(std::string(pass) + ": rule " +
                 std::to_string(rule_index) + ": " + what +
                 " [fact: " + fact + "]");
}

}  // namespace

bool GroupAggregateElimination(Program* program,
                               std::vector<std::string>* rewrite_log) {
  analysis::dataflow::ProgramFacts facts =
      analysis::dataflow::AnalyzeProgram(*program);
  bool changed = false;
  for (size_t rule_index = 0; rule_index < program->rules.size();
       ++rule_index) {
    Rule& rule = program->rules[rule_index];
    if (!rule.head.has_group()) continue;
    // Condition: every relation access holds some group var at a unique
    // position (so each group has at most one row), and nothing else
    // multiplies cardinality (no constant relations).
    bool ok = true;
    bool has_access = false;
    std::string justification;
    for (const Atom& a : rule.body) {
      if (a.kind == Atom::Kind::kConstRel) {
        ok = false;
        break;
      }
      if (a.kind != Atom::Kind::kRelAccess) continue;
      has_access = true;
      const analysis::dataflow::KeyFact* covered = nullptr;
      for (const std::string& g : rule.head.group_vars) {
        covered = UniqueKeyForVar(facts, a, g);
        if (covered != nullptr) break;
      }
      if (covered == nullptr) {
        ok = false;
        break;
      }
      if (!justification.empty()) justification += "; ";
      justification += "'" + a.relation + "': " + covered->why;
    }
    if (!ok || !has_access) continue;

    // Aggregate assignments must be top-level aggs (rewritable).
    bool rewritable = true;
    for (const Atom& a : rule.body) {
      if (a.kind == Atom::Kind::kCompare && a.term && a.term->ContainsAgg() &&
          a.term->kind != Term::Kind::kAgg) {
        rewritable = false;
        break;
      }
    }
    if (!rewritable) continue;

    for (Atom& a : rule.body) {
      if (a.kind != Atom::Kind::kCompare || !a.term ||
          a.term->kind != Term::Kind::kAgg) {
        continue;
      }
      switch (a.term->agg_fn) {
        case tondir::AggFn::kSum:
        case tondir::AggFn::kMin:
        case tondir::AggFn::kMax:
        case tondir::AggFn::kAvg:
          a.term = a.term->children[0];
          break;
        case tondir::AggFn::kCount:
        case tondir::AggFn::kCountDistinct:
          a.term = Term::Const(Value::Int64(1));
          break;
      }
    }
    rule.head.group_vars.clear();
    LogRewrite(rewrite_log, "GroupAggregateElimination", rule_index,
               "ungrouped '" + rule.head.relation +
                   "': every group holds one row",
               justification);
    changed = true;
  }
  return changed;
}

bool SelfJoinElimination(Program* program,
                         std::vector<std::string>* rewrite_log) {
  analysis::dataflow::ProgramFacts facts =
      analysis::dataflow::AnalyzeProgram(*program);
  bool changed = false;
  for (size_t rule_index = 0; rule_index < program->rules.size();
       ++rule_index) {
    Rule& rule = program->rules[rule_index];
    bool retry = true;
    while (retry) {
      retry = false;
      // Find two accesses of the same relation sharing a var at the same
      // unique (fact-proven key) position.
      for (size_t i = 0; i < rule.body.size() && !retry; ++i) {
        if (rule.body[i].kind != Atom::Kind::kRelAccess) continue;
        for (size_t j = i + 1; j < rule.body.size() && !retry; ++j) {
          if (rule.body[j].kind != Atom::Kind::kRelAccess) continue;
          const Atom& a1 = rule.body[i];
          const Atom& a2 = rule.body[j];
          if (a1.relation != a2.relation ||
              a1.vars.size() != a2.vars.size()) {
            continue;
          }
          const analysis::dataflow::RelationFacts* rf =
              facts.Find(a1.relation);
          if (rf == nullptr) continue;
          const analysis::dataflow::KeyFact* joined_on_unique = nullptr;
          for (size_t pos = 0; pos < a1.vars.size(); ++pos) {
            if (a1.vars[pos] != a2.vars[pos]) continue;
            joined_on_unique = rf->KeyWithin({pos});
            if (joined_on_unique != nullptr) break;
          }
          if (joined_on_unique == nullptr) continue;
          LogRewrite(rewrite_log, "SelfJoinElimination", rule_index,
                     "merged duplicate access of '" + a1.relation + "'",
                     joined_on_unique->why);
          // Merge: a2's bindings become a1's.
          std::map<std::string, std::string> subst;
          for (size_t p = 0; p < a1.vars.size(); ++p) {
            if (a2.vars[p] != a1.vars[p]) subst[a2.vars[p]] = a1.vars[p];
          }
          rule.body.erase(rule.body.begin() + static_cast<std::ptrdiff_t>(j));
          if (!subst.empty()) {
            RenameVars(&rule.body, subst);
            RenameHead(&rule.head, subst);
          }
          changed = true;
          retry = true;
        }
      }
    }
  }
  return changed;
}

namespace {

bool TermContainsUid(const Term& t) {
  if (t.kind == Term::Kind::kExt && t.ext_name == "uid") return true;
  for (const auto& c : t.children) {
    if (TermContainsUid(*c)) return true;
  }
  return false;
}

size_t CountTermUses(const Term& t, const std::string& v) {
  size_t n = t.kind == Term::Kind::kVar && t.var == v ? 1 : 0;
  for (const auto& c : t.children) n += CountTermUses(*c, v);
  return n;
}

size_t CountBodyUses(const Body& body, const std::string& v) {
  size_t n = 0;
  for (const Atom& a : body) {
    n += static_cast<size_t>(std::count(a.vars.begin(), a.vars.end(), v));
    if (!a.var0.empty() && a.var0 == v) ++n;
    if (a.term) n += CountTermUses(*a.term, v);
    if (a.exists_body) n += CountBodyUses(*a.exists_body, v);
  }
  return n;
}

size_t CountRuleUses(const Rule& r, const std::string& v) {
  size_t n = CountBodyUses(r.body, v);
  n += static_cast<size_t>(
      std::count(r.head.vars.begin(), r.head.vars.end(), v));
  n += static_cast<size_t>(
      std::count(r.head.group_vars.begin(), r.head.group_vars.end(), v));
  for (const auto& k : r.head.sort_keys) {
    if (k.var == v) ++n;
  }
  return n;
}

/// Removes assignments inside exists bodies whose target variable is used
/// nowhere else in the rule. Such an atom is an always-true constraint
/// (∃x. x = t holds vacuously), left behind by inlining; local DCE cannot
/// reach it because every variable inside an exists body is conservatively
/// treated as live.
bool DropDeadExistsBindings(Rule* rule, size_t rule_index,
                            std::vector<std::string>* rewrite_log) {
  bool changed = false;
  std::function<void(Body*)> visit = [&](Body* body) {
    for (Atom& a : *body) {
      if (a.kind != Atom::Kind::kExists) continue;
      Body* inner = a.exists_body.get();
      bool removed = true;
      while (removed) {
        removed = false;
        for (size_t i = 0; i < inner->size(); ++i) {
          const Atom& b = (*inner)[i];
          if (b.kind != Atom::Kind::kCompare || b.cmp_op != CmpOp::kEq ||
              b.term == nullptr || TermContainsUid(*b.term) ||
              b.term->ContainsAgg()) {
            continue;
          }
          if (CountRuleUses(*rule, b.var0) != 1) continue;
          LogRewrite(rewrite_log, "PredicateSimplify", rule_index,
                     "dropped dead binding '" + b.var0 +
                         "' inside exists(..)",
                     "target variable is used nowhere else in the rule");
          inner->erase(inner->begin() + static_cast<std::ptrdiff_t>(i));
          changed = removed = true;
          break;
        }
      }
      visit(inner);
    }
  };
  visit(&rule->body);
  return changed;
}

}  // namespace

bool PredicateSimplify(Program* program,
                       std::vector<std::string>* rewrite_log) {
  std::vector<analysis::Diagnostic> diags;
  analysis::dataflow::AnalyzeOptions ao;
  ao.diags = &diags;
  analysis::dataflow::ProgramFacts facts =
      analysis::dataflow::AnalyzeProgram(*program, ao);
  bool changed = false;

  // 1. Fold always-true filter atoms. T022 is only emitted for top-level
  //    filters whose non-nullable operands are implied by the facts of the
  //    *other* atoms, so removing the atom is semantics-preserving. Nested
  //    findings report their enclosing exists atom's index and are skipped
  //    by the kCompare check.
  std::map<size_t, std::set<size_t>> drop;
  for (const analysis::Diagnostic& d : diags) {
    if (d.code != analysis::codes::kAlwaysTruePredicate) continue;
    if (d.rule_index < 0 || d.atom_index < 0) continue;
    auto ri = static_cast<size_t>(d.rule_index);
    auto ai = static_cast<size_t>(d.atom_index);
    if (ri >= program->rules.size()) continue;
    const Body& body = program->rules[ri].body;
    if (ai >= body.size() || body[ai].kind != Atom::Kind::kCompare) continue;
    drop[ri].insert(ai);
  }
  for (auto& [ri, atoms] : drop) {
    Rule& rule = program->rules[ri];
    for (auto it = atoms.rbegin(); it != atoms.rend(); ++it) {
      LogRewrite(rewrite_log, "PredicateSimplify", ri,
                 "folded always-true filter " +
                     tondir::AtomToString(rule.body[*it]),
                 "implied by value facts of the surrounding body");
      rule.body.erase(rule.body.begin() + static_cast<std::ptrdiff_t>(*it));
      changed = true;
    }
  }

  // 2. Syntactic duplicate filters (the always-true check above only sees
  //    value facts; identical LIKE/boolean filters are caught here).
  for (size_t ri = 0; ri < program->rules.size(); ++ri) {
    Rule& rule = program->rules[ri];
    std::vector<bool> is_assign = ClassifyAssignments(rule.body);
    std::set<std::string> seen;
    for (size_t i = 0; i < rule.body.size(); ++i) {
      const Atom& a = rule.body[i];
      if (a.kind != Atom::Kind::kCompare || is_assign[i]) continue;
      if (!seen.insert(tondir::AtomToString(a)).second) {
        LogRewrite(rewrite_log, "PredicateSimplify", ri,
                   "removed duplicate filter " + tondir::AtomToString(a),
                   "identical filter already constrains the body");
        rule.body.erase(rule.body.begin() + static_cast<std::ptrdiff_t>(i));
        is_assign.erase(is_assign.begin() + static_cast<std::ptrdiff_t>(i));
        --i;
        changed = true;
      }
    }
  }

  // 3. Cap provably-empty rules with limit(0): always-false predicates and
  //    reads of provably-empty relations mean the rule can never produce a
  //    row, so the generated query short-circuits.
  for (size_t ri = 0; ri < program->rules.size(); ++ri) {
    Rule& rule = program->rules[ri];
    if (rule.head.limit.has_value() && *rule.head.limit == 0) continue;
    const analysis::dataflow::RelationFacts* rf =
        facts.Find(rule.head.relation);
    if (rf == nullptr || !rf->provably_empty) continue;
    rule.head.limit = 0;
    LogRewrite(rewrite_log, "PredicateSimplify", ri,
               "capped provably-empty rule with limit(0)", rf->empty_why);
    changed = true;
  }

  // 4. Dead bindings inside exists bodies.
  for (size_t ri = 0; ri < program->rules.size(); ++ri) {
    changed |= DropDeadExistsBindings(&program->rules[ri], ri, rewrite_log);
  }
  return changed;
}

bool RuleInlining(Program* program,
                  const std::set<std::string>& base_relations) {
  bool changed = false;
  bool progress = true;
  int fresh_counter = 0;
  while (progress) {
    progress = false;
    auto readers = program->BuildReaderIndex();
    for (size_t r = 0; r < program->rules.size(); ++r) {
      if (r + 1 == program->rules.size()) break;  // sink rule
      Rule& def = program->rules[r];
      const std::string& rel = def.head.relation;
      if (base_relations.count(rel)) continue;
      if (IsFlowBreaker(def)) continue;
      size_t def_index;
      if (!RelationDefinedOnce(*program, rel, &def_index)) continue;
      auto it = readers.find(rel);
      if (it == readers.end() || it->second.empty()) continue;

      // Inline into every reader (including accesses inside exists).
      for (size_t reader_idx : it->second) {
        Rule& reader = program->rules[reader_idx];
        std::function<void(Body*)> process = [&](Body* body) {
          for (size_t k = 0; k < body->size(); ++k) {
            Atom& a = (*body)[k];
            if (a.kind == Atom::Kind::kExists) {
              process(a.exists_body.get());
              continue;
            }
            if (a.kind != Atom::Kind::kRelAccess || a.relation != rel) {
              continue;
            }
            // Build substitution: def head vars -> reader access vars;
            // all other def body vars -> fresh names.
            std::map<std::string, std::string> subst;
            Body extra_equalities;
            for (size_t p = 0; p < def.head.vars.size(); ++p) {
              const std::string& h = def.head.vars[p];
              const std::string& y = a.vars[p];
              auto s = subst.find(h);
              if (s == subst.end()) {
                subst[h] = y;
              } else if (s->second != y) {
                extra_equalities.push_back(
                    Atom::Compare(y, CmpOp::kEq, Term::Var(s->second)));
              }
            }
            std::set<std::string> body_vars;
            for (const Atom& ba : def.body) ba.CollectVars(&body_vars);
            for (const std::string& v : body_vars) {
              if (!subst.count(v)) {
                subst[v] = v + "_in" + std::to_string(fresh_counter);
              }
            }
            ++fresh_counter;
            Body inlined;
            for (const Atom& ba : def.body) {
              inlined.push_back(ba.CloneAtom());
            }
            RenameVars(&inlined, subst);
            for (Atom& eq : extra_equalities) inlined.push_back(eq);
            // Replace access atom with inlined body.
            body->erase(body->begin() + static_cast<std::ptrdiff_t>(k));
            body->insert(body->begin() + static_cast<std::ptrdiff_t>(k),
                         inlined.begin(), inlined.end());
            k += inlined.size() - 1;
          }
        };
        process(&reader.body);
      }
      // Remove the inlined rule.
      program->rules.erase(program->rules.begin() +
                           static_cast<std::ptrdiff_t>(r));
      changed = true;
      progress = true;
      break;  // indices invalidated; restart scan
    }
  }
  return changed;
}

OptimizerOptions OptimizerOptions::Preset(int level) {
  OptimizerOptions o;
  o.local_dce = level >= 1;
  o.global_dce = level >= 1;
  o.predicate_simplify = level >= 1;
  o.group_agg_elim = level >= 2;
  o.self_join_elim = level >= 3;
  o.rule_inlining = level >= 4;
  return o;
}

Status Optimize(tondir::Program* program,
                const std::set<std::string>& base_relations,
                const OptimizerOptions& options) {
  std::vector<std::string>* log = options.rewrite_log;
  struct Pass {
    const char* name;
    bool enabled;
    std::function<bool(tondir::Program*, const std::set<std::string>&)> run;
  };
  const Pass passes[] = {
      {"RuleInlining", options.rule_inlining,
       [](tondir::Program* p, const std::set<std::string>& b) {
         return RuleInlining(p, b);
       }},
      {"SelfJoinElimination", options.self_join_elim,
       [log](tondir::Program* p, const std::set<std::string>&) {
         return SelfJoinElimination(p, log);
       }},
      {"GroupAggregateElimination", options.group_agg_elim,
       [log](tondir::Program* p, const std::set<std::string>&) {
         return GroupAggregateElimination(p, log);
       }},
      {"GlobalDeadCodeElimination", options.global_dce,
       [](tondir::Program* p, const std::set<std::string>& b) {
         return GlobalDeadCodeElimination(p, b);
       }},
      {"CopyPropagation", options.local_dce,
       [](tondir::Program* p, const std::set<std::string>&) {
         return CopyPropagation(p);
       }},
      {"PredicateSimplify", options.predicate_simplify,
       [log](tondir::Program* p, const std::set<std::string>&) {
         return PredicateSimplify(p, log);
       }},
      {"LocalDeadCodeElimination", options.local_dce,
       [](tondir::Program* p, const std::set<std::string>&) {
         return LocalDeadCodeElimination(p);
       }},
  };

  analysis::VerifyOptions vopts;
  vopts.base_relations = base_relations;
  if (options.verify_each_pass) {
    auto diags = analysis::VerifyProgram(*program, vopts);
    if (analysis::HasErrors(diags)) {
      return Status::InvalidArgument(
          "program is invalid before optimization:\n" +
          analysis::FormatDiagnostics(diags));
    }
  }

  // Total atoms across all rule bodies — the optimizer's unit of "work
  // eliminated" alongside whole rules. Only computed when tracing.
  auto count_atoms = [](const tondir::Program& p) {
    int64_t atoms = 0;
    for (const Rule& r : p.rules) atoms += static_cast<int64_t>(r.body.size());
    return atoms;
  };

  obs::Span opt_span(options.trace, "optimize", "phase");
  for (int round = 0; round < 8; ++round) {
    bool changed = false;
    for (const Pass& pass : passes) {
      if (!pass.enabled) continue;
      obs::Span pass_span(options.trace, pass.name, "pass");
      int64_t rules_before = 0, atoms_before = 0;
      if (options.trace != nullptr) {
        rules_before = static_cast<int64_t>(program->rules.size());
        atoms_before = count_atoms(*program);
      }
      std::string before;
      if (options.verify_each_pass) before = program->ToString();
      bool pass_changed = pass.run(program, base_relations);
      if (options.trace != nullptr) {
        pass_span.AddCounter("round", round);
        pass_span.AddCounter("changed", pass_changed ? 1 : 0);
        pass_span.AddCounter("rules_before", rules_before);
        pass_span.AddCounter("rules_after",
                             static_cast<int64_t>(program->rules.size()));
        pass_span.AddCounter("atoms_before", atoms_before);
        pass_span.AddCounter("atoms_after", count_atoms(*program));
      }
      pass_span.End();
      bool hooked = false;
      if (options.post_pass_hook) {
        options.post_pass_hook(pass.name, program);
        hooked = true;
      }
      if ((pass_changed || hooked) && options.verify_each_pass) {
        auto diags = analysis::VerifyProgram(*program, vopts);
        if (analysis::HasErrors(diags)) {
          return Status::Internal(
              std::string("optimizer pass ") + pass.name + " (round " +
              std::to_string(round) + ") broke TondIR invariants:\n" +
              analysis::FormatDiagnostics(diags) +
              "--- program before " + pass.name + " ---\n" + before +
              "--- program after ---\n" + program->ToString());
        }
      }
      changed |= pass_changed;
    }
    if (!changed) break;
  }
  return Status::OK();
}

}  // namespace pytond::opt
