#ifndef PYTOND_OPTIMIZER_PASSES_H_
#define PYTOND_OPTIMIZER_PASSES_H_

#include <functional>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/trace.h"
#include "tondir/ir.h"

namespace pytond::opt {

/// Which TondIR rewrites to run (paper §IV). The presets O0..O4 follow the
/// ablation of Figure 10: O0 = none ("Grizzly-simulated"), O1 = dead-code
/// eliminations, O2 = +group/aggregate elimination, O3 = +self-join
/// elimination, O4 = +rule inlining (full PyTond).
struct OptimizerOptions {
  bool local_dce = true;
  bool global_dce = true;
  bool group_agg_elim = true;
  bool self_join_elim = true;
  bool rule_inlining = true;
  bool predicate_simplify = true;

  /// When set, every fact-gated rewrite appends one line naming the pass,
  /// the rewritten rule, and the dataflow fact that justifies it (the
  /// fact-gated rewrite contract, DESIGN.md §10).
  std::vector<std::string>* rewrite_log = nullptr;

  /// Re-run the semantic verifier (analysis::VerifyProgram) after every
  /// pass that changed the program. On a violation, Optimize returns an
  /// Internal error naming the offending pass and round, with the
  /// diagnostics and the before/after rule text. Defaults on in debug
  /// builds, off in release (NDEBUG) builds.
#ifdef NDEBUG
  bool verify_each_pass = false;
#else
  bool verify_each_pass = true;
#endif

  /// Test/debug hook invoked after each pass that changed the program,
  /// *before* per-pass verification — lets tests corrupt a pass output to
  /// prove the harness pinpoints it, or dump intermediate programs.
  std::function<void(const char* pass_name, tondir::Program* program)>
      post_pass_hook;

  /// Optional tracing: Optimize opens an "optimize" phase span plus one
  /// "pass"-category span per enabled pass per round, with counters
  /// round/changed/rules_before/rules_after/atoms_before/atoms_after
  /// (the rules-eliminated and inlining deltas of paper Figure 10).
  /// Null = zero instrumentation beyond a pointer check.
  obs::TraceCollector* trace = nullptr;

  /// Preset for ablation level 0..4 (verification settings untouched).
  static OptimizerOptions Preset(int level);
};

/// Runs the enabled passes to a fixpoint (bounded) over `program`.
/// `base_relations` are database tables (never rewritten or inlined).
/// Relation uniqueness knowledge is read from program->relation_info and
/// updated as rules are rewritten.
Status Optimize(tondir::Program* program,
                const std::set<std::string>& base_relations,
                const OptimizerOptions& options);

/// Individual passes (exposed for unit tests). Each returns true if it
/// changed the program.
bool LocalDeadCodeElimination(tondir::Program* program);

/// Canonicalization: variable-to-variable equality atoms (`(x = y)`) are
/// removed by unifying the two names, turning explicit equality filters and
/// pure aliases into shared-variable joins. Runs with local DCE.
bool CopyPropagation(tondir::Program* program);
bool GlobalDeadCodeElimination(tondir::Program* program,
                               const std::set<std::string>& base_relations);
/// Fact-gated rewrites: both passes run the dataflow analysis
/// (analysis/dataflow/) over the current program and eliminate only when a
/// derived key fact proves safety. Keys of extensional relations come from
/// the declared catalog ground truth; keys of derived relations are
/// re-derived structurally on every invocation, so stale or wrong
/// relation_info entries can no longer cause unsound merges. Each applied
/// rewrite appends its justification to `rewrite_log` when non-null.
bool GroupAggregateElimination(tondir::Program* program,
                               std::vector<std::string>* rewrite_log =
                                   nullptr);
bool SelfJoinElimination(tondir::Program* program,
                         std::vector<std::string>* rewrite_log = nullptr);
/// Folds provably always-true filter atoms (including dead bindings inside
/// exists(..) bodies, which local DCE cannot reach) and caps provably
/// always-false or provably-empty rules with limit(0). Consumes the same
/// dataflow facts as the fact-gated eliminations above.
bool PredicateSimplify(tondir::Program* program,
                       std::vector<std::string>* rewrite_log = nullptr);
bool RuleInlining(tondir::Program* program,
                  const std::set<std::string>& base_relations);

/// True if the rule is a flow breaker for inlining (Table VII): aggregate,
/// group-by, distinct, sort/limit, outer-join marker. (The sink rule is
/// handled separately by the inliner.)
bool IsFlowBreaker(const tondir::Rule& rule);

}  // namespace pytond::opt

#endif  // PYTOND_OPTIMIZER_PASSES_H_
