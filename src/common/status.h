#ifndef PYTOND_COMMON_STATUS_H_
#define PYTOND_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

namespace pytond {

/// Error categories used across the PyTond pipeline.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   // caller passed something malformed
  kNotFound,          // missing table / column / rule
  kUnsupported,       // valid input outside the supported subset
  kParseError,        // SQL or mini-Python syntax error
  kTypeError,         // type inference / binding failure
  kInternal,          // invariant violation inside the library
  kRejected,          // admission control turned the request away
};

/// Lightweight RocksDB-style status object. PyTond does not use C++
/// exceptions; every fallible public API returns a Status or Result<T>.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Rejected(std::string msg) {
    return Status(StatusCode::kRejected, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<category>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Value-or-error result. `ok()` must be checked before dereferencing.
template <typename T>
class Result {
 public:
  // NOLINTNEXTLINE(google-explicit-constructor): ergonomic returns.
  Result(T value) : payload_(std::move(value)) {}
  // NOLINTNEXTLINE(google-explicit-constructor): ergonomic error returns.
  Result(Status status) : payload_(std::move(status)) {}

  bool ok() const { return std::holds_alternative<T>(payload_); }
  const Status& status() const { return std::get<Status>(payload_); }

  T& value() & { return std::get<T>(payload_); }
  const T& value() const& { return std::get<T>(payload_); }
  T&& value() && { return std::get<T>(std::move(payload_)); }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::variant<T, Status> payload_;
};

}  // namespace pytond

/// Propagates a non-OK Status from an expression returning Status.
#define PYTOND_RETURN_IF_ERROR(expr)             \
  do {                                           \
    ::pytond::Status _st = (expr);               \
    if (!_st.ok()) return _st;                   \
  } while (0)

/// Evaluates an expression returning Result<T>; on error propagates the
/// Status, otherwise binds the value to `lhs`.
#define PYTOND_ASSIGN_OR_RETURN(lhs, expr)       \
  auto PYTOND_CONCAT_(_res_, __LINE__) = (expr); \
  if (!PYTOND_CONCAT_(_res_, __LINE__).ok())     \
    return PYTOND_CONCAT_(_res_, __LINE__).status(); \
  lhs = std::move(PYTOND_CONCAT_(_res_, __LINE__)).value()

#define PYTOND_CONCAT_IMPL_(a, b) a##b
#define PYTOND_CONCAT_(a, b) PYTOND_CONCAT_IMPL_(a, b)

#endif  // PYTOND_COMMON_STATUS_H_
