#ifndef PYTOND_COMMON_VALUE_H_
#define PYTOND_COMMON_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "common/status.h"

namespace pytond {

/// Column / scalar data types understood by the whole stack.
/// Dates are stored as int32 days since 1970-01-01 (proleptic Gregorian).
enum class DataType : uint8_t {
  kInt64 = 0,
  kFloat64,
  kString,
  kBool,
  kDate,
  kNull,  // type of an untyped NULL literal; resolved during binding
};

/// Human-readable type name ("INT64", "FLOAT64", ...).
const char* DataTypeName(DataType type);

/// True for kInt64 / kFloat64 / kDate / kBool (orderable, arithmetic-capable
/// except bool).
bool IsNumeric(DataType type);

/// Result type of an arithmetic op over two inputs; kFloat64 wins over
/// kInt64. Returns kNull on incompatible inputs.
DataType CommonNumericType(DataType a, DataType b);

/// A dynamically typed scalar. Used for literals, aggregate results and
/// row access in tests; hot loops use the typed column vectors directly.
class Value {
 public:
  Value() : type_(DataType::kNull) {}

  static Value Int64(int64_t v) { return Value(DataType::kInt64, v); }
  static Value Float64(double v) { return Value(DataType::kFloat64, v); }
  static Value String(std::string v) {
    return Value(DataType::kString, std::move(v));
  }
  static Value Bool(bool v) { return Value(DataType::kBool, v); }
  static Value Date(int32_t days) {
    return Value(DataType::kDate, static_cast<int64_t>(days));
  }
  static Value Null() { return Value(); }

  DataType type() const { return type_; }
  bool is_null() const { return type_ == DataType::kNull; }

  int64_t AsInt64() const { return std::get<int64_t>(data_); }
  double AsFloat64() const { return std::get<double>(data_); }
  const std::string& AsString() const { return std::get<std::string>(data_); }
  bool AsBool() const { return std::get<bool>(data_); }
  int32_t AsDate() const { return static_cast<int32_t>(AsInt64()); }

  /// Numeric value widened to double (int64/float64/date/bool).
  double ToDouble() const;

  /// Renders the value for result printing; NULL prints as "NULL",
  /// dates as "YYYY-MM-DD", floats with up to 6 fractional digits.
  std::string ToString() const;

  /// Deep equality (type and payload). NULL == NULL here (useful in tests;
  /// SQL three-valued logic lives in the evaluator, not in Value).
  bool operator==(const Value& other) const;
  bool operator!=(const Value& other) const { return !(*this == other); }

 private:
  Value(DataType t, int64_t v) : type_(t), data_(v) {}
  Value(DataType t, double v) : type_(t), data_(v) {}
  Value(DataType t, std::string v) : type_(t), data_(std::move(v)) {}
  Value(DataType t, bool v) : type_(t), data_(v) {}

  DataType type_;
  std::variant<std::monostate, int64_t, double, std::string, bool> data_;
};

}  // namespace pytond

#endif  // PYTOND_COMMON_VALUE_H_
