#ifndef PYTOND_COMMON_STRING_UTIL_H_
#define PYTOND_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace pytond {
namespace string_util {

/// SQL LIKE with '%' (any run) and '_' (single char) wildcards.
bool Like(std::string_view text, std::string_view pattern);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep);

/// Splits on a single character; keeps empty fields.
std::vector<std::string> Split(std::string_view text, char sep);

/// ASCII lower-case copy.
std::string ToLower(std::string_view text);

/// Strips leading/trailing ASCII whitespace.
std::string Strip(std::string_view text);

bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);
bool Contains(std::string_view text, std::string_view needle);

}  // namespace string_util
}  // namespace pytond

#endif  // PYTOND_COMMON_STRING_UTIL_H_
