#include <algorithm>
#include <array>
#include <cctype>
#include <cmath>
#include <cstdio>

#include "common/date_util.h"
#include "common/status.h"
#include "common/string_util.h"
#include "common/value.h"

namespace pytond {

std::string Status::ToString() const {
  if (ok()) return "OK";
  const char* name = "UNKNOWN";
  switch (code_) {
    case StatusCode::kOk: name = "OK"; break;
    case StatusCode::kInvalidArgument: name = "InvalidArgument"; break;
    case StatusCode::kNotFound: name = "NotFound"; break;
    case StatusCode::kUnsupported: name = "Unsupported"; break;
    case StatusCode::kParseError: name = "ParseError"; break;
    case StatusCode::kTypeError: name = "TypeError"; break;
    case StatusCode::kInternal: name = "Internal"; break;
    case StatusCode::kRejected: name = "Rejected"; break;
  }
  return std::string(name) + ": " + message_;
}

const char* DataTypeName(DataType type) {
  switch (type) {
    case DataType::kInt64: return "INT64";
    case DataType::kFloat64: return "FLOAT64";
    case DataType::kString: return "STRING";
    case DataType::kBool: return "BOOL";
    case DataType::kDate: return "DATE";
    case DataType::kNull: return "NULL";
  }
  return "?";
}

bool IsNumeric(DataType type) {
  return type == DataType::kInt64 || type == DataType::kFloat64 ||
         type == DataType::kDate || type == DataType::kBool;
}

DataType CommonNumericType(DataType a, DataType b) {
  if (a == DataType::kNull) return b;
  if (b == DataType::kNull) return a;
  if (a == b) return a;
  auto widen = [](DataType t) {
    return (t == DataType::kBool || t == DataType::kDate) ? DataType::kInt64
                                                          : t;
  };
  DataType wa = widen(a), wb = widen(b);
  if (wa == wb) return wa;
  if ((wa == DataType::kInt64 && wb == DataType::kFloat64) ||
      (wa == DataType::kFloat64 && wb == DataType::kInt64)) {
    return DataType::kFloat64;
  }
  return DataType::kNull;
}

double Value::ToDouble() const {
  switch (type_) {
    case DataType::kInt64:
    case DataType::kDate:
      return static_cast<double>(std::get<int64_t>(data_));
    case DataType::kFloat64: return std::get<double>(data_);
    case DataType::kBool: return std::get<bool>(data_) ? 1.0 : 0.0;
    default: return 0.0;
  }
}

std::string Value::ToString() const {
  switch (type_) {
    case DataType::kNull: return "NULL";
    case DataType::kInt64: return std::to_string(AsInt64());
    case DataType::kBool: return AsBool() ? "true" : "false";
    case DataType::kString: return AsString();
    case DataType::kDate: return date_util::Format(AsDate());
    case DataType::kFloat64: {
      char buf[40];
      std::snprintf(buf, sizeof(buf), "%.6f", AsFloat64());
      std::string s(buf);
      // Trim trailing zeros but keep at least one fractional digit.
      size_t dot = s.find('.');
      size_t last = s.find_last_not_of('0');
      if (last > dot) s.erase(last + 1);
      else s.erase(dot + 2);
      return s;
    }
  }
  return "?";
}

bool Value::operator==(const Value& other) const {
  if (type_ != other.type_) {
    // int64 / float64 cross-compare numerically (handy in tests).
    if (IsNumeric(type_) && IsNumeric(other.type_)) {
      return ToDouble() == other.ToDouble();
    }
    return false;
  }
  return data_ == other.data_;
}

namespace date_util {
namespace {

// Howard Hinnant's civil-days algorithms.
int64_t DaysFromCivil(int y, unsigned m, unsigned d) {
  y -= m <= 2;
  const int era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);
  const unsigned doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097LL + static_cast<int>(doe) - 719468;
}

void CivilFromDays(int64_t z, int* yy, unsigned* mm, unsigned* dd) {
  z += 719468;
  const int era = static_cast<int>((z >= 0 ? z : z - 146096) / 146097);
  const unsigned doe = static_cast<unsigned>(z - era * 146097LL);
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const int y = static_cast<int>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  const unsigned d = doy - (153 * mp + 2) / 5 + 1;
  const unsigned m = mp + (mp < 10 ? 3 : -9);
  *yy = y + (m <= 2);
  *mm = m;
  *dd = d;
}

bool IsLeap(int y) { return (y % 4 == 0 && y % 100 != 0) || y % 400 == 0; }

int DaysInMonth(int y, int m) {
  static constexpr std::array<int, 12> kDays = {31, 28, 31, 30, 31, 30,
                                                31, 31, 30, 31, 30, 31};
  return m == 2 && IsLeap(y) ? 29 : kDays[m - 1];
}

}  // namespace

Result<int32_t> FromYMD(int y, int m, int d) {
  if (m < 1 || m > 12 || d < 1 || d > DaysInMonth(y, m)) {
    return Status::InvalidArgument("invalid date " + std::to_string(y) + "-" +
                                   std::to_string(m) + "-" +
                                   std::to_string(d));
  }
  return static_cast<int32_t>(
      DaysFromCivil(y, static_cast<unsigned>(m), static_cast<unsigned>(d)));
}

Result<int32_t> Parse(const std::string& text) {
  int y = 0, m = 0, d = 0;
  if (std::sscanf(text.c_str(), "%d-%d-%d", &y, &m, &d) != 3) {
    return Status::ParseError("bad date literal '" + text + "'");
  }
  return FromYMD(y, m, d);
}

void ToYMD(int32_t days, int* y, int* m, int* d) {
  unsigned mm, dd;
  CivilFromDays(days, y, &mm, &dd);
  *m = static_cast<int>(mm);
  *d = static_cast<int>(dd);
}

std::string Format(int32_t days) {
  int y, m, d;
  ToYMD(days, &y, &m, &d);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", y, m, d);
  return buf;
}

int Year(int32_t days) {
  int y, m, d;
  ToYMD(days, &y, &m, &d);
  return y;
}

int Month(int32_t days) {
  int y, m, d;
  ToYMD(days, &y, &m, &d);
  return m;
}

int32_t AddDays(int32_t days, int n) { return days + n; }

int32_t AddMonths(int32_t days, int n) {
  int y, m, d;
  ToYMD(days, &y, &m, &d);
  int total = (y * 12 + (m - 1)) + n;
  int ny = total / 12;
  int nm = total % 12;
  if (nm < 0) {
    nm += 12;
    ny -= 1;
  }
  nm += 1;
  int nd = std::min(d, DaysInMonth(ny, nm));
  return static_cast<int32_t>(DaysFromCivil(ny, static_cast<unsigned>(nm),
                                            static_cast<unsigned>(nd)));
}

int32_t AddYears(int32_t days, int n) { return AddMonths(days, n * 12); }

}  // namespace date_util

namespace string_util {

bool Like(std::string_view text, std::string_view pattern) {
  // Iterative two-pointer match with backtracking on the last '%'.
  size_t t = 0, p = 0;
  size_t star_p = std::string_view::npos, star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '_' || pattern[p] == text[t])) {
      ++t;
      ++p;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_t = t;
    } else if (star_p != std::string_view::npos) {
      p = star_p + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::vector<std::string> Split(std::string_view text, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      out.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string ToLower(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::string Strip(std::string_view text) {
  size_t b = 0, e = text.size();
  while (b < e && std::isspace(static_cast<unsigned char>(text[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(text[e - 1]))) --e;
  return std::string(text.substr(b, e - b));
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

bool Contains(std::string_view text, std::string_view needle) {
  return text.find(needle) != std::string_view::npos;
}

}  // namespace string_util
}  // namespace pytond
