#ifndef PYTOND_COMMON_DATE_UTIL_H_
#define PYTOND_COMMON_DATE_UTIL_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace pytond {

/// Calendar helpers over the int32 days-since-epoch date representation.
/// All functions use the proleptic Gregorian calendar.
namespace date_util {

/// Days since 1970-01-01 for the given civil date. Values are validated;
/// e.g. month 13 returns an error.
Result<int32_t> FromYMD(int y, int m, int d);

/// Parses "YYYY-MM-DD".
Result<int32_t> Parse(const std::string& text);

/// Inverse of FromYMD.
void ToYMD(int32_t days, int* y, int* m, int* d);

/// "YYYY-MM-DD".
std::string Format(int32_t days);

/// Calendar year of the date.
int Year(int32_t days);

/// Calendar month (1..12) of the date.
int Month(int32_t days);

/// Adds a calendar interval; months/years clamp the day-of-month
/// (1994-01-31 + 1 month = 1994-02-28), matching SQL INTERVAL semantics.
int32_t AddDays(int32_t days, int n);
int32_t AddMonths(int32_t days, int n);
int32_t AddYears(int32_t days, int n);

}  // namespace date_util
}  // namespace pytond

#endif  // PYTOND_COMMON_DATE_UTIL_H_
