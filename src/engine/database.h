#ifndef PYTOND_ENGINE_DATABASE_H_
#define PYTOND_ENGINE_DATABASE_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "engine/exec/executor.h"
#include "engine/profile.h"
#include "obs/trace.h"
#include "storage/catalog.h"

namespace pytond::engine {

/// What ExplainQuery reports.
///  - kNone / kPlan:  parse + bind + plan-tune only; returns the plan tree
///    (and CTE cardinalities) without running the final query.
///  - kAnalyze:       runs the query and annotates every operator with
///    actuals — `rows=`, `time=`, and join build sizes (EXPLAIN ANALYZE).
enum class ExplainMode { kNone, kPlan, kAnalyze };

/// Per-query execution options.
struct QueryOptions {
  BackendProfile profile = BackendProfile::kVectorized;
  int num_threads = 1;
  ExplainMode explain = ExplainMode::kNone;
  /// Optional per-query trace: CTE materialization, binding, and
  /// per-operator spans land here. Null = no instrumentation.
  obs::TraceCollector* trace = nullptr;
};

/// The in-memory RDBMS substrate: a catalog plus a SQL front door.
/// Queries execute as: parse -> materialize CTEs in order -> bind final
/// SELECT -> profile-specific plan tuning -> interpret.
class Database {
 public:
  Database() = default;
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  Catalog& catalog() { return catalog_; }
  const Catalog& catalog() const { return catalog_; }

  Status CreateTable(const std::string& name, Table table,
                     TableConstraints constraints = {});

  /// Executes one SQL statement, returning the result table.
  Result<std::shared_ptr<const Table>> Query(const std::string& sql,
                                             const QueryOptions& opts = {});

  /// Parses + binds, returning the plan text (for tests / debugging).
  Result<std::string> ExplainQuery(const std::string& sql,
                                   const QueryOptions& opts = {});

 private:
  Catalog catalog_;
};

}  // namespace pytond::engine

#endif  // PYTOND_ENGINE_DATABASE_H_
