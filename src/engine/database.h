#ifndef PYTOND_ENGINE_DATABASE_H_
#define PYTOND_ENGINE_DATABASE_H_

#include <memory>
#include <mutex>
#include <string>

#include "common/status.h"
#include "engine/exec/executor.h"
#include "engine/profile.h"
#include "engine/sched/worker_pool.h"
#include "obs/metrics/memory_accountant.h"
#include "obs/metrics/metrics.h"
#include "obs/trace.h"
#include "storage/catalog.h"

namespace pytond::engine {

/// What ExplainQuery reports.
///  - kNone / kPlan:  parse + bind + plan-tune only; returns the plan tree
///    (and CTE cardinalities) without running the final query.
///  - kAnalyze:       runs the query and annotates every operator with
///    actuals — `rows=`, `time=`, and join build sizes (EXPLAIN ANALYZE).
enum class ExplainMode { kNone, kPlan, kAnalyze };

/// Per-query execution options.
struct QueryOptions {
  BackendProfile profile = BackendProfile::kVectorized;
  int num_threads = 1;
  /// Push-based pipelined execution (see ExecContext::pipeline). An
  /// execution-only switch — plans compile identically either way — so
  /// it does NOT participate in plan-cache keys, mirroring num_threads.
  bool pipeline = PipelineEnabledDefault();
  ExplainMode explain = ExplainMode::kNone;
  /// Prepared-statement bindings: positional values for `$pN`
  /// placeholders in the SQL text, substituted at parse time (see
  /// sql::ParseSql). Null = the query must be placeholder-free. The
  /// caller keeps the vector alive for the duration of the query.
  const std::vector<Value>* params = nullptr;
  /// Physical plan/pipeline verification (analysis/physical/, P-series):
  /// checks the bound plan, re-checks after every optimizer pass (with
  /// per-pass blame), and checks the pipeline decomposition before
  /// execution. A violation fails the query with an Internal status
  /// naming the stage. Execution-only like `pipeline`, so it does NOT
  /// participate in plan-cache keys.
  bool verify_plans = VerifyPlansDefault();
  /// Optional per-query trace: CTE materialization, binding, and
  /// per-operator spans land here. Null = no instrumentation.
  obs::TraceCollector* trace = nullptr;
  /// Optional peak-memory observer: after the query finishes, its
  /// accountant's peak is mirrored here via ObservePeak (bench_exec and
  /// tests read exact per-query peaks this way).
  obs::MemoryAccountant* mem = nullptr;
};

/// The in-memory RDBMS substrate: a catalog plus a SQL front door.
/// Queries execute as: parse -> materialize CTEs in order -> bind final
/// SELECT -> profile-specific plan tuning -> interpret.
///
/// Concurrency: Query/ExplainQuery are safe to call from many threads at
/// once over the immutable catalog — each call builds its own QueryScope,
/// ExecContext, and (optional) TraceCollector, while all calls share one
/// lazily created worker pool. CreateTable must not race with running
/// queries (populate first, then serve).
class Database {
 public:
  Database();
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  Catalog& catalog() { return catalog_; }
  const Catalog& catalog() const { return catalog_; }

  Status CreateTable(const std::string& name, Table table,
                     TableConstraints constraints = {});

  /// Executes one SQL statement, returning the result table.
  Result<std::shared_ptr<const Table>> Query(const std::string& sql,
                                             const QueryOptions& opts = {});

  /// Parses + binds, returning the plan text (for tests / debugging).
  Result<std::string> ExplainQuery(const std::string& sql,
                                   const QueryOptions& opts = {});

  /// The shared execution scheduler, created on first use and grown to
  /// `workers` threads (never shrinks). Thread-safe.
  sched::WorkerPool& pool(int workers);
  /// The pool if any parallel query ever ran (observability), else null.
  const sched::WorkerPool* pool_if_created() const;

  /// Always-on operational metrics (DESIGN.md §12). Query/session/cache
  /// series are recorded live; scheduler and database-wide memory gauges
  /// are synced on StatsSnapshot().
  obs::MetricsRegistry& metrics() { return metrics_; }
  const obs::MetricsRegistry& metrics() const { return metrics_; }

  /// Database-wide memory accountant (parent of every query accountant).
  /// The mutable overload lets external holders of database-lifetime
  /// memory (result caches, serve-side buffers, tests exercising the
  /// admission brake) charge against the same budget queries do.
  obs::MemoryAccountant& memory() { return db_mem_; }
  const obs::MemoryAccountant& memory() const { return db_mem_; }

  /// Syncs derived gauges (scheduler, db memory) and snapshots the
  /// registry — the exposition entry point for tondstat.
  obs::MetricsSnapshot StatsSnapshot();

 private:
  /// Resolves the pool for one query: num_threads - 1 workers (the
  /// query's coordinating thread executes morsels too), null when serial.
  sched::WorkerPool* PoolFor(const QueryOptions& opts);

  /// Query body (parse -> CTEs -> final select), with the per-query
  /// accountant threaded into every ExecContext. Metrics recording wraps
  /// this in Query().
  Result<std::shared_ptr<const Table>> QueryImpl(const std::string& sql,
                                                 const QueryOptions& opts,
                                                 obs::MemoryAccountant* mem);

  /// Copies scheduler/memory state into gauges (no-op when disabled).
  void SyncDerivedGauges();

  Catalog catalog_;
  mutable std::mutex pool_mu_;
  std::unique_ptr<sched::WorkerPool> pool_;

  obs::MetricsRegistry metrics_;
  obs::MemoryAccountant db_mem_;
  // Hot-path metrics, resolved once (see MetricsRegistry lookup contract).
  obs::Counter* queries_total_;
  obs::Counter* query_failures_total_;
  obs::Counter* rows_out_total_;
  obs::Histogram* query_latency_ns_;
  obs::Histogram* query_mem_peak_bytes_;
};

}  // namespace pytond::engine

#endif  // PYTOND_ENGINE_DATABASE_H_
