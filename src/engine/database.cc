#include "engine/database.h"

#include <cinttypes>
#include <cstdio>

#include "analysis/physical/physical.h"
#include "engine/plan/binder.h"
#include "engine/plan/optimizer.h"
#include "engine/sql/parser.h"
#include "obs/trace.h"

namespace pytond::engine {

namespace physical = pytond::analysis::physical;

namespace {

/// One verification point over the bound/optimized plan: walks the tree
/// under a "verify_plans" span, accumulates accounting into `stats`, and
/// converts any error diagnostic into a stage-blamed Internal status.
Status VerifyPlanStage(const LogicalPlan& plan, const BinderCatalog& bc,
                       const std::string& stage, const QueryOptions& opts,
                       physical::VerifyStats* stats) {
  obs::Span span(opts.trace, "verify_plans", "engine");
  physical::VerifyOptions vopts;
  vopts.table_schema = bc.schema;
  auto diags = physical::VerifyPlan(plan, vopts, stats);
  return physical::CheckOrError(diags, stage);
}

const char* ProfileNameImpl(BackendProfile p) {
  switch (p) {
    case BackendProfile::kVectorized: return "vectorized";
    case BackendProfile::kCompiled: return "compiled";
    case BackendProfile::kResearch: return "research";
  }
  return "?";
}

struct QueryScope {
  std::map<std::string, std::shared_ptr<const Table>> temps;
  std::map<std::string, Schema> temp_schemas;

  BinderCatalog MakeBinderCatalog(const Catalog& catalog) const {
    BinderCatalog bc;
    bc.schema = [this, &catalog](const std::string& name) -> const Schema* {
      auto it = temp_schemas.find(name);
      if (it != temp_schemas.end()) return &it->second;
      const Table* t = catalog.GetTable(name);
      return t == nullptr ? nullptr : &t->schema();
    };
    bc.row_count = [this, &catalog](const std::string& name) -> double {
      auto it = temps.find(name);
      if (it != temps.end()) {
        return static_cast<double>(it->second->num_rows());
      }
      const Table* t = catalog.GetTable(name);
      return t == nullptr ? 1.0 : static_cast<double>(t->num_rows());
    };
    return bc;
  }
};

Result<std::shared_ptr<const Table>> RunSelect(const sql::SelectStmt& stmt,
                                               const Catalog& catalog,
                                               QueryScope* scope,
                                               const QueryOptions& opts,
                                               sched::WorkerPool* pool,
                                               obs::MemoryAccountant* mem,
                                               obs::MetricsRegistry* metrics,
                                               PlanStatsMap* op_stats = nullptr,
                                               PlanPtr* out_plan = nullptr,
                                               physical::VerifyStats* vstats =
                                                   nullptr) {
  // VALUES body (CTE like `v(c0) AS (VALUES (0),(1))`).
  if (stmt.is_values()) {
    auto t = std::make_shared<Table>();
    size_t width = stmt.values_rows[0].size();
    Schema schema;
    for (size_t i = 0; i < width; ++i) {
      DataType ty = DataType::kInt64;
      for (const auto& row : stmt.values_rows) {
        if (!row[i].is_null()) {
          ty = row[i].type();
          break;
        }
      }
      schema.Add("col" + std::to_string(i), ty);
    }
    *t = Table(schema);
    for (const auto& row : stmt.values_rows) {
      PYTOND_RETURN_IF_ERROR(t->AppendRow(row));
    }
    return std::shared_ptr<const Table>(t);
  }

  BinderCatalog bc = scope->MakeBinderCatalog(catalog);
  sql::SelectStmt core = stmt;
  core.ctes.clear();
  obs::Span bind_span(opts.trace, "bind", "engine");
  PYTOND_ASSIGN_OR_RETURN(PlanPtr plan, BindSelect(core, bc, opts.profile));
  bind_span.End();
  const bool verify = opts.verify_plans;
  physical::VerifyStats vlocal;
  if (verify) {
    PYTOND_RETURN_IF_ERROR(
        VerifyPlanStage(*plan, bc, "bind", opts, &vlocal));
  }
  obs::Span tune_span(opts.trace, "plan_tuning", "engine");
  PlanPassHooks hooks;
  hooks.after_pass = [&](const char* pass) {
    return VerifyPlanStage(*plan, bc, std::string("optimizer:") + pass, opts,
                           &vlocal);
  };
  PYTOND_RETURN_IF_ERROR(OptimizePlan(plan, opts.profile, bc.row_count,
                                      verify ? &hooks : nullptr));
  tune_span.End();
  if (out_plan != nullptr) *out_plan = plan;

  ExecContext ctx;
  ctx.catalog = &catalog;
  ctx.temps = &scope->temps;
  ctx.num_threads = opts.num_threads;
  ctx.pool = pool;
  ctx.trace = opts.trace;
  ctx.op_stats = op_stats;
  ctx.mem = mem;
  ctx.pipeline = opts.pipeline;
  ctx.metrics = metrics;
  ctx.verify_plans = verify;
  ctx.verify_stats = verify ? &vlocal : nullptr;
  auto result = ExecutePlan(*plan, ctx);
  if (verify) {
    if (metrics != nullptr && metrics->enabled()) {
      metrics->counter("tond_verify_ns_total").Add(vlocal.ns);
      metrics->counter("tond_verify_checks_total").Add(vlocal.checks);
      metrics->counter("tond_verify_stages_total").Add(vlocal.stages);
    }
    if (vstats != nullptr) vstats->Merge(vlocal);
  }
  return result;
}

/// Renames a result table's columns to CTE alias names when given.
Result<std::shared_ptr<const Table>> ApplyColumnAliases(
    std::shared_ptr<const Table> t, const std::vector<std::string>& names) {
  if (names.empty()) return t;
  if (names.size() != t->num_columns()) {
    return Status::InvalidArgument("CTE column alias count mismatch");
  }
  auto renamed = std::make_shared<Table>();
  for (size_t i = 0; i < t->num_columns(); ++i) {
    PYTOND_RETURN_IF_ERROR(renamed->AddColumn(names[i], t->column(i)));
  }
  return std::shared_ptr<const Table>(renamed);
}

}  // namespace

const char* BackendProfileName(BackendProfile p) { return ProfileNameImpl(p); }

Database::Database()
    : queries_total_(&metrics_.counter("tond_db_queries_total")),
      query_failures_total_(&metrics_.counter("tond_db_query_failures_total")),
      rows_out_total_(&metrics_.counter("tond_db_rows_out_total")),
      query_latency_ns_(&metrics_.histogram("tond_db_query_latency_ns")),
      query_mem_peak_bytes_(
          &metrics_.histogram("tond_mem_query_peak_bytes")) {}

Status Database::CreateTable(const std::string& name, Table table,
                             TableConstraints constraints) {
  return catalog_.CreateTable(name, std::move(table), std::move(constraints));
}

sched::WorkerPool& Database::pool(int workers) {
  std::lock_guard<std::mutex> lock(pool_mu_);
  if (pool_ == nullptr) {
    pool_ = std::make_unique<sched::WorkerPool>(workers);
  } else {
    pool_->EnsureWorkers(workers);
  }
  return *pool_;
}

const sched::WorkerPool* Database::pool_if_created() const {
  std::lock_guard<std::mutex> lock(pool_mu_);
  return pool_.get();
}

sched::WorkerPool* Database::PoolFor(const QueryOptions& opts) {
  if (opts.num_threads <= 1) return nullptr;
  return &pool(opts.num_threads - 1);
}

Result<std::shared_ptr<const Table>> Database::Query(
    const std::string& sql, const QueryOptions& opts) {
  const bool record = metrics_.enabled();
  const uint64_t t0 = record ? obs::NowNs() : 0;
  // Per-query accountant chained to the database-wide one; operators
  // charge/release through it, and its peak survives for observers.
  obs::MemoryAccountant query_mem(&db_mem_);
  auto result = QueryImpl(sql, opts, &query_mem);
  if (opts.mem != nullptr) opts.mem->ObservePeak(query_mem.peak());
  if (record) {
    queries_total_->Add(1);
    query_latency_ns_->Record(obs::NowNs() - t0);
    query_mem_peak_bytes_->Record(query_mem.peak());
    if (result.ok()) {
      rows_out_total_->Add((*result)->num_rows());
    } else {
      query_failures_total_->Add(1);
    }
  }
  return result;
}

Result<std::shared_ptr<const Table>> Database::QueryImpl(
    const std::string& sql, const QueryOptions& opts,
    obs::MemoryAccountant* mem) {
  sched::WorkerPool* pool = PoolFor(opts);
  obs::Span query_span(opts.trace, "query", "engine");
  if (pool != nullptr) {
    query_span.AddCounter("pool_workers", pool->num_workers());
  }
  obs::Span parse_span(opts.trace, "parse_sql", "engine");
  PYTOND_ASSIGN_OR_RETURN(sql::SelectPtr stmt,
                          sql::ParseSql(sql, opts.params));
  parse_span.End();
  QueryScope scope;
  for (const auto& cte : stmt->ctes) {
    obs::Span cte_span(opts.trace, "cte:" + cte.name, "cte");
    PYTOND_ASSIGN_OR_RETURN(
        auto t, RunSelect(*cte.select, catalog_, &scope, opts, pool, mem,
                          &metrics_));
    PYTOND_ASSIGN_OR_RETURN(t, ApplyColumnAliases(t, cte.column_names));
    cte_span.AddCounter("rows", static_cast<int64_t>(t->num_rows()));
    scope.temps[cte.name] = t;
    scope.temp_schemas[cte.name] = t->schema();
  }
  obs::Span final_span(opts.trace, "final_select", "engine");
  return RunSelect(*stmt, catalog_, &scope, opts, pool, mem, &metrics_);
}

Result<std::string> Database::ExplainQuery(const std::string& sql,
                                           const QueryOptions& opts) {
  const bool analyze = opts.explain == ExplainMode::kAnalyze;
  sched::WorkerPool* pool = analyze ? PoolFor(opts) : nullptr;
  PYTOND_ASSIGN_OR_RETURN(sql::SelectPtr stmt,
                          sql::ParseSql(sql, opts.params));
  QueryScope scope;
  std::string out;
  // EXPLAIN ANALYZE accounts memory like a real run so `mem=` shows
  // per-operator peaks; plain EXPLAIN executes nothing.
  obs::MemoryAccountant query_mem(&db_mem_);
  obs::MemoryAccountant* mem = analyze ? &query_mem : nullptr;

  // Shared across all sub-plans of this statement; the annotator renders
  // `rows=`/`time=` actuals next to each operator that executed.
  PlanStatsMap stats;
  physical::VerifyStats vstats;
  LogicalPlan::Annotator annotate = [&stats](const LogicalPlan& p) {
    auto it = stats.find(&p);
    if (it == stats.end()) return std::string();
    const OperatorStats& s = it->second;
    char buf[160];
    std::snprintf(buf, sizeof(buf), "(rows=%" PRIu64 ", time=%.3f ms",
                  s.rows_out, static_cast<double>(s.time_ns) / 1e6);
    std::string a = buf;
    if (s.mem_bytes > 0) {
      std::snprintf(buf, sizeof(buf), ", mem=%.1f KiB",
                    static_cast<double>(s.mem_bytes) / 1024.0);
      a += buf;
    }
    if (p.kind == LogicalPlan::Kind::kJoin) {
      std::snprintf(buf, sizeof(buf), ", build=%" PRIu64, s.build_rows);
      a += buf;
    }
    if (s.batches > 1) {
      std::snprintf(buf, sizeof(buf), ", morsels=%" PRIu64, s.batches);
      a += buf;
      if (s.steals > 0) {
        std::snprintf(buf, sizeof(buf), ", steals=%" PRIu64, s.steals);
        a += buf;
      }
    }
    if (p.kind == LogicalPlan::Kind::kFilter && s.rows_in > 0) {
      std::snprintf(buf, sizeof(buf), ", sel=%.1f%%",
                    100.0 * static_cast<double>(s.rows_out) /
                        static_cast<double>(s.rows_in));
      a += buf;
    }
    if (s.pipeline_id >= 0) {
      std::snprintf(buf, sizeof(buf), ", pipe=%d", s.pipeline_id);
      a += buf;
    }
    if (s.streamed_bytes > 0) {
      std::snprintf(buf, sizeof(buf), ", streamed=%.1f KiB",
                    static_cast<double>(s.streamed_bytes) / 1024.0);
      a += buf;
    }
    a += ")";
    return a;
  };

  for (const auto& cte : stmt->ctes) {
    // Materialize CTEs so later plans can be bound/estimated.
    uint64_t t0 = analyze ? obs::NowNs() : 0;
    PlanPtr plan;
    PYTOND_ASSIGN_OR_RETURN(
        auto t, RunSelect(*cte.select, catalog_, &scope, opts, pool, mem,
                          &metrics_, analyze ? &stats : nullptr, &plan,
                          &vstats));
    PYTOND_ASSIGN_OR_RETURN(t, ApplyColumnAliases(t, cte.column_names));
    scope.temps[cte.name] = t;
    scope.temp_schemas[cte.name] = t->schema();
    out += "-- CTE " + cte.name + " (" + std::to_string(t->num_rows()) +
           " rows";
    if (analyze) {
      char buf[48];
      std::snprintf(buf, sizeof(buf), ", %.3f ms",
                    static_cast<double>(obs::NowNs() - t0) / 1e6);
      out += buf;
    }
    out += ")\n";
    if (analyze && plan != nullptr) out += plan->ToString(1, annotate);
  }
  if (!stmt->is_values()) {
    if (analyze) {
      uint64_t t0 = obs::NowNs();
      PlanPtr plan;
      PYTOND_ASSIGN_OR_RETURN(
          auto t, RunSelect(*stmt, catalog_, &scope, opts, pool, mem,
                            &metrics_, &stats, &plan, &vstats));
      char buf[64];
      std::snprintf(buf, sizeof(buf), "-- Result (%zu rows, %.3f ms)\n",
                    t->num_rows(),
                    static_cast<double>(obs::NowNs() - t0) / 1e6);
      out += buf;
      if (plan != nullptr) out += plan->ToString(0, annotate);
    } else {
      BinderCatalog bc = scope.MakeBinderCatalog(catalog_);
      sql::SelectStmt core = *stmt;
      core.ctes.clear();
      PYTOND_ASSIGN_OR_RETURN(PlanPtr plan,
                              BindSelect(core, bc, opts.profile));
      PYTOND_RETURN_IF_ERROR(
          OptimizePlan(plan, opts.profile, bc.row_count));
      out += plan->ToString();
    }
  }
  if (analyze && opts.verify_plans) {
    // Verification ran at every stage and found nothing (a violation
    // would have failed the query) — report what it cost.
    char buf[96];
    std::snprintf(buf, sizeof(buf),
                  "-- verify=ok stages=%" PRIu64 " checks=%" PRIu64
                  " time=%.3f ms\n",
                  vstats.stages, vstats.checks,
                  static_cast<double>(vstats.ns) / 1e6);
    out += buf;
  }
  if (opts.mem != nullptr) opts.mem->ObservePeak(query_mem.peak());
  return out;
}

void Database::SyncDerivedGauges() {
  if (!metrics_.enabled()) return;
  metrics_.gauge("tond_mem_db_current_bytes")
      .Set(static_cast<int64_t>(db_mem_.current()));
  metrics_.gauge("tond_mem_db_peak_bytes")
      .Set(static_cast<int64_t>(db_mem_.peak()));
  const sched::WorkerPool* p = pool_if_created();
  if (p == nullptr) return;
  metrics_.gauge("tond_sched_workers").Set(p->num_workers());
  metrics_.gauge("tond_sched_runs")
      .Set(static_cast<int64_t>(p->total_runs()));
  metrics_.gauge("tond_sched_morsels")
      .Set(static_cast<int64_t>(p->total_morsels()));
  metrics_.gauge("tond_sched_steals")
      .Set(static_cast<int64_t>(p->total_steals()));
  metrics_.gauge("tond_sched_queue_depth_peak")
      .Set(static_cast<int64_t>(p->peak_queue_depth()));
  std::vector<sched::WorkerPool::WorkerActivity> acts = p->worker_activity();
  for (size_t i = 0; i < acts.size(); ++i) {
    const std::string worker = "{worker=\"" + std::to_string(i) + "\"}";
    metrics_.gauge("tond_sched_worker_busy_ns" + worker)
        .Set(static_cast<int64_t>(acts[i].busy_ns));
    metrics_.gauge("tond_sched_worker_tasks" + worker)
        .Set(static_cast<int64_t>(acts[i].tasks));
  }
}

obs::MetricsSnapshot Database::StatsSnapshot() {
  SyncDerivedGauges();
  return metrics_.Snapshot();
}

}  // namespace pytond::engine
