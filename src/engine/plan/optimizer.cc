#include "engine/plan/optimizer.h"

namespace pytond::engine {

namespace {

void SelectBuildSides(
    const PlanPtr& plan,
    const std::function<double(const std::string&)>& table_rows) {
  for (const PlanPtr& c : plan->children) SelectBuildSides(c, table_rows);
  if (plan->kind == LogicalPlan::Kind::kJoin &&
      plan->join_type == JoinType::kInner) {
    double l = plan->children[0]->EstimateRows(table_rows);
    double r = plan->children[1]->EstimateRows(table_rows);
    // Hash-build on the (estimated) smaller side.
    plan->build_left = l < r;
  }
}

}  // namespace

void OptimizePlan(const PlanPtr& plan, BackendProfile profile,
                  const std::function<double(const std::string&)>& table_rows) {
  if (profile == BackendProfile::kCompiled) {
    SelectBuildSides(plan, table_rows);
  }
}

}  // namespace pytond::engine
