#include "engine/plan/optimizer.h"

namespace pytond::engine {

namespace {

bool SelectBuildSides(
    const PlanPtr& plan,
    const std::function<double(const std::string&)>& table_rows) {
  bool changed = false;
  for (const PlanPtr& c : plan->children) {
    changed = SelectBuildSides(c, table_rows) || changed;
  }
  if (plan->kind == LogicalPlan::Kind::kJoin &&
      plan->join_type == JoinType::kInner) {
    double l = plan->children[0]->EstimateRows(table_rows);
    double r = plan->children[1]->EstimateRows(table_rows);
    // Hash-build on the (estimated) smaller side.
    bool build_left = l < r;
    changed = changed || plan->build_left != build_left;
    plan->build_left = build_left;
  }
  return changed;
}

/// Pushes kLimit below an immediate kProject child: a projection is
/// stateless and 1:1, so Limit(Project(X)) == Project(Limit(X)) — and
/// the pushed form computes projection expressions only over the rows
/// the limit keeps. Rewrites in place by content-swapping `plan` into
/// the projection (callers hold PlanPtrs into the tree, so node
/// identity at the root must be preserved).
bool PushLimitBelowProject(const PlanPtr& plan) {
  bool changed = false;
  for (const PlanPtr& c : plan->children) {
    changed = PushLimitBelowProject(c) || changed;
  }
  while (plan->kind == LogicalPlan::Kind::kLimit &&
         plan->children.size() == 1 &&
         plan->children[0]->kind == LogicalPlan::Kind::kProject) {
    PlanPtr proj = plan->children[0];
    PlanPtr inner = MakePlan(LogicalPlan::Kind::kLimit);
    inner->limit = plan->limit;
    inner->children = {proj->children[0]};
    inner->schema = proj->children[0]->schema;
    *plan = *proj;  // the node becomes the projection...
    plan->children = {inner};  // ...over the sunk limit
    changed = true;
    PushLimitBelowProject(inner);  // stacked projections: keep sinking
  }
  return changed;
}

}  // namespace

Status OptimizePlan(
    const PlanPtr& plan, BackendProfile profile,
    const std::function<double(const std::string&)>& table_rows,
    const PlanPassHooks* hooks) {
  struct Pass {
    const char* name;
    bool applies;
    std::function<bool()> run;  // true = the pass rewrote the plan
  };
  const Pass passes[] = {
      {"limit_pushdown", true, [&] { return PushLimitBelowProject(plan); }},
      {"build_side_selection", profile == BackendProfile::kCompiled,
       [&] { return SelectBuildSides(plan, table_rows); }},
  };
  for (const Pass& pass : passes) {
    if (!pass.applies) continue;
    bool changed = pass.run();
    if (changed && hooks != nullptr && hooks->after_pass) {
      PYTOND_RETURN_IF_ERROR(hooks->after_pass(pass.name));
    }
  }
  return Status::OK();
}

}  // namespace pytond::engine
