#include "engine/plan/binder.h"

#include "common/date_util.h"

#include <algorithm>
#include <optional>
#include <set>

namespace pytond::engine {

namespace {

using sql::Expr;
using sql::ExprPtr;
using sql::SelectStmt;
using sql::TableRef;

constexpr int kOuterBase = 1000000;

/// Column name scope: global index -> (alias, name, type); supports one
/// outer level for correlated subqueries (resolved indices are offset by
/// kOuterBase).
struct NameScope {
  struct Entry {
    std::string alias;
    std::string name;
    DataType type;
  };
  std::vector<Entry> cols;
  const NameScope* outer = nullptr;

  void Add(const std::string& alias, const Schema& schema) {
    for (size_t i = 0; i < schema.names.size(); ++i) {
      cols.push_back({alias, schema.names[i], schema.types[i]});
    }
  }

  Result<std::pair<int, DataType>> Resolve(const std::string& table,
                                           const std::string& name) const {
    int found = -1;
    for (size_t i = 0; i < cols.size(); ++i) {
      if (!table.empty() && cols[i].alias != table) continue;
      if (cols[i].name != name) continue;
      if (found >= 0) {
        // Qualified duplicate: keep the first (self-join aliases are
        // always distinct so this only fires on unqualified ambiguity).
        if (table.empty()) {
          return Status::TypeError("ambiguous column '" + name + "'");
        }
      }
      if (found < 0) found = static_cast<int>(i);
    }
    if (found >= 0) return std::make_pair(found, cols[found].type);
    if (outer != nullptr) {
      auto r = outer->Resolve(table, name);
      if (r.ok()) {
        return std::make_pair(r->first + kOuterBase, r->second);
      }
    }
    return Status::NotFound("column '" + (table.empty() ? name
                                                        : table + "." + name) +
                            "'");
  }
};

bool IsAggregateName(const std::string& name) {
  return name == "sum" || name == "avg" || name == "min" || name == "max" ||
         name == "count";
}

/// Structural equality of unbound expressions (group-key matching).
bool ExprEquals(const Expr& a, const Expr& b) {
  if (a.kind != b.kind || a.op != b.op || a.name != b.name ||
      a.table != b.table || a.distinct != b.distinct ||
      a.negated != b.negated || a.children.size() != b.children.size()) {
    return false;
  }
  if (a.kind == Expr::Kind::kLiteral && !(a.literal == b.literal)) {
    return false;
  }
  for (size_t i = 0; i < a.children.size(); ++i) {
    if (!ExprEquals(*a.children[i], *b.children[i])) return false;
  }
  return true;
}

bool ContainsAggregate(const Expr& e) {
  if (e.kind == Expr::Kind::kFunction && IsAggregateName(e.name)) return true;
  for (const auto& c : e.children) {
    if (ContainsAggregate(*c)) return true;
  }
  return false;
}

bool ContainsSubquery(const Expr& e) {
  if (e.kind == Expr::Kind::kExists || e.kind == Expr::Kind::kInSubquery) {
    return true;
  }
  for (const auto& c : e.children) {
    if (ContainsSubquery(*c)) return true;
  }
  return false;
}

bool ContainsWindow(const Expr& e) {
  if (e.kind == Expr::Kind::kWindow) return true;
  for (const auto& c : e.children) {
    if (ContainsWindow(*c)) return true;
  }
  return false;
}

void SplitConjuncts(const ExprPtr& e, std::vector<ExprPtr>* out) {
  if (e->kind == Expr::Kind::kBinary && e->op == Expr::Op::kAnd) {
    SplitConjuncts(e->children[0], out);
    SplitConjuncts(e->children[1], out);
    return;
  }
  out->push_back(e);
}

bool ExprUsesOuter(const BoundExpr& e) {
  if (e.kind == BoundExpr::Kind::kColRef && e.col_index >= kOuterBase) {
    return true;
  }
  for (const auto& c : e.children) {
    if (ExprUsesOuter(*c)) return true;
  }
  return false;
}

void ShiftColumns(BoundExpr* e, int local_shift, int outer_shift) {
  if (e->kind == BoundExpr::Kind::kColRef) {
    if (e->col_index >= kOuterBase) {
      e->col_index = e->col_index - kOuterBase + outer_shift;
    } else {
      e->col_index += local_shift;
    }
  }
  for (auto& c : e->children) ShiftColumns(c.get(), local_shift, outer_shift);
}

/// Hook consulted before default binding at every node; returns a bound
/// expression to override (used for group keys, aggregates, windows).
using BindHook = std::function<Result<std::optional<BoundExprPtr>>(const Expr&)>;

class ExprBinder {
 public:
  ExprBinder(const NameScope& scope, BindHook hook)
      : scope_(scope), hook_(std::move(hook)) {}

  Result<BoundExprPtr> Bind(const Expr& e) {
    if (hook_) {
      PYTOND_ASSIGN_OR_RETURN(std::optional<BoundExprPtr> hooked, hook_(e));
      if (hooked.has_value()) return *hooked;
    }
    switch (e.kind) {
      case Expr::Kind::kColumnRef: {
        PYTOND_ASSIGN_OR_RETURN(auto rc, scope_.Resolve(e.table, e.name));
        return BoundExpr::ColRef(rc.first, rc.second);
      }
      case Expr::Kind::kLiteral:
        return BoundExpr::Const(e.literal);
      case Expr::Kind::kBinary: {
        PYTOND_ASSIGN_OR_RETURN(BoundExprPtr l, Bind(*e.children[0]));
        PYTOND_ASSIGN_OR_RETURN(BoundExprPtr r, Bind(*e.children[1]));
        // Implicit coercion: comparing a DATE column against a string
        // literal parses the literal as a date (standard SQL behaviour).
        PYTOND_RETURN_IF_ERROR(CoerceDateLiteral(l.get(), r.get()));
        PYTOND_RETURN_IF_ERROR(CoerceDateLiteral(r.get(), l.get()));
        PYTOND_ASSIGN_OR_RETURN(DataType t, BinaryType(e.op, l->type, r->type));
        return BoundExpr::Binary(e.op, std::move(l), std::move(r), t);
      }
      case Expr::Kind::kUnary: {
        PYTOND_ASSIGN_OR_RETURN(BoundExprPtr c, Bind(*e.children[0]));
        DataType t = e.op == Expr::Op::kNot ? DataType::kBool : c->type;
        return BoundExpr::Unary(e.op, std::move(c), t);
      }
      case Expr::Kind::kFunction: {
        std::vector<BoundExprPtr> args;
        std::vector<DataType> arg_types;
        for (const auto& ch : e.children) {
          PYTOND_ASSIGN_OR_RETURN(BoundExprPtr a, Bind(*ch));
          arg_types.push_back(a->type);
          args.push_back(std::move(a));
        }
        PYTOND_ASSIGN_OR_RETURN(DataType t,
                                ScalarFunctionType(e.name, arg_types));
        return BoundExpr::Func(e.name, std::move(args), t);
      }
      case Expr::Kind::kCase: {
        auto out = std::make_shared<BoundExpr>();
        out->kind = BoundExpr::Kind::kCase;
        out->case_has_else = e.case_has_else;
        DataType t = DataType::kNull;
        size_t pairs = e.children.size() / 2;
        for (size_t p = 0; p < pairs; ++p) {
          PYTOND_ASSIGN_OR_RETURN(BoundExprPtr c, Bind(*e.children[2 * p]));
          PYTOND_ASSIGN_OR_RETURN(BoundExprPtr v,
                                  Bind(*e.children[2 * p + 1]));
          t = CommonNumericType(t, v->type) != DataType::kNull
                  ? CommonNumericType(t, v->type)
                  : (t == DataType::kNull ? v->type : t);
          out->children.push_back(std::move(c));
          out->children.push_back(std::move(v));
        }
        if (e.case_has_else) {
          PYTOND_ASSIGN_OR_RETURN(BoundExprPtr v, Bind(*e.children.back()));
          t = CommonNumericType(t, v->type) != DataType::kNull
                  ? CommonNumericType(t, v->type)
                  : t;
          out->children.push_back(std::move(v));
        }
        out->type = t;
        return out;
      }
      case Expr::Kind::kCast: {
        PYTOND_ASSIGN_OR_RETURN(BoundExprPtr c, Bind(*e.children[0]));
        auto out = std::make_shared<BoundExpr>();
        out->kind = BoundExpr::Kind::kCast;
        out->type = e.cast_type;
        out->children = {std::move(c)};
        return out;
      }
      case Expr::Kind::kIsNull: {
        PYTOND_ASSIGN_OR_RETURN(BoundExprPtr c, Bind(*e.children[0]));
        auto out = std::make_shared<BoundExpr>();
        out->kind = BoundExpr::Kind::kIsNull;
        out->type = DataType::kBool;
        out->negated = e.negated;
        out->children = {std::move(c)};
        return out;
      }
      case Expr::Kind::kInList: {
        PYTOND_ASSIGN_OR_RETURN(BoundExprPtr c, Bind(*e.children[0]));
        auto out = std::make_shared<BoundExpr>();
        out->kind = BoundExpr::Kind::kInList;
        out->type = DataType::kBool;
        out->negated = e.negated;
        for (size_t i = 1; i < e.children.size(); ++i) {
          if (e.children[i]->kind != Expr::Kind::kLiteral) {
            return Status::Unsupported("IN list items must be literals");
          }
          out->in_list.push_back(e.children[i]->literal);
        }
        out->children = {std::move(c)};
        return out;
      }
      case Expr::Kind::kBetween: {
        PYTOND_ASSIGN_OR_RETURN(BoundExprPtr x, Bind(*e.children[0]));
        PYTOND_ASSIGN_OR_RETURN(BoundExprPtr lo, Bind(*e.children[1]));
        PYTOND_ASSIGN_OR_RETURN(BoundExprPtr hi, Bind(*e.children[2]));
        BoundExprPtr ge = BoundExpr::Binary(Expr::Op::kGe, x->CloneExpr(),
                                            std::move(lo), DataType::kBool);
        BoundExprPtr le = BoundExpr::Binary(Expr::Op::kLe, std::move(x),
                                            std::move(hi), DataType::kBool);
        BoundExprPtr both = BoundExpr::Binary(Expr::Op::kAnd, std::move(ge),
                                              std::move(le), DataType::kBool);
        if (e.negated) {
          return BoundExpr::Unary(Expr::Op::kNot, std::move(both),
                                  DataType::kBool);
        }
        return both;
      }
      case Expr::Kind::kStar:
        return Status::TypeError("'*' outside COUNT(*)");
      case Expr::Kind::kExists:
      case Expr::Kind::kInSubquery:
        return Status::Unsupported(
            "subquery allowed only as a top-level WHERE conjunct");
      case Expr::Kind::kWindow:
        return Status::Unsupported(
            "window function allowed only as a top-level select item");
    }
    return Status::Internal("unreachable");
  }

 private:
  static Status CoerceDateLiteral(BoundExpr* date_side, BoundExpr* lit) {
    if (date_side->type == DataType::kDate &&
        lit->kind == BoundExpr::Kind::kConst &&
        lit->type == DataType::kString) {
      PYTOND_ASSIGN_OR_RETURN(int32_t d,
                              date_util::Parse(lit->constant.AsString()));
      lit->constant = Value::Date(d);
      lit->type = DataType::kDate;
    }
    return Status::OK();
  }

  static Result<DataType> BinaryType(Expr::Op op, DataType l, DataType r) {
    switch (op) {
      case Expr::Op::kAnd: case Expr::Op::kOr:
      case Expr::Op::kLt: case Expr::Op::kLe: case Expr::Op::kEq:
      case Expr::Op::kNe: case Expr::Op::kGe: case Expr::Op::kGt:
      case Expr::Op::kLike: case Expr::Op::kNotLike:
        return DataType::kBool;
      case Expr::Op::kConcat:
        return DataType::kString;
      case Expr::Op::kDiv:
        return DataType::kFloat64;
      case Expr::Op::kAdd: case Expr::Op::kSub: case Expr::Op::kMul:
      case Expr::Op::kMod: {
        DataType t = CommonNumericType(l, r);
        if (t == DataType::kNull || t == DataType::kDate ||
            t == DataType::kBool) {
          t = (t == DataType::kNull) ? DataType::kFloat64 : DataType::kInt64;
        }
        return t;
      }
      default:
        return Status::Internal("bad binary op");
    }
  }

  const NameScope& scope_;
  BindHook hook_;
};

/// A bound FROM unit: plan + its alias->schema mapping entries.
struct Unit {
  PlanPtr plan;
  NameScope scope;  // local scope of this unit only (no outer)
  double est_rows = 1.0;
};

class SelectBinder {
 public:
  SelectBinder(const BinderCatalog& catalog, BackendProfile profile,
               const NameScope* outer)
      : catalog_(catalog), profile_(profile), outer_(outer) {}

  /// Binds the full statement. When `for_subquery` is set, select items are
  /// ignored, correlated conjuncts are exported to `correlated`, and the
  /// returned plan is the unprojected FROM+filters tree (its scope is
  /// exported via `subquery_scope`).
  Result<PlanPtr> Bind(const SelectStmt& stmt, bool for_subquery,
                       std::vector<ExprPtr>* correlated,
                       NameScope* subquery_scope) {
    if (!stmt.ctes.empty()) {
      return Status::Internal("CTEs must be materialized before BindSelect");
    }
    // WHERE: split conjuncts into plain filters, subquery conjuncts and
    // (for subqueries) correlated conjuncts.
    std::vector<ExprPtr> where;
    if (stmt.where) SplitConjuncts(stmt.where, &where);

    std::vector<ExprPtr> plain, subqueries;
    for (const ExprPtr& c : where) {
      if (ContainsSubquery(*c)) {
        subqueries.push_back(c);
      } else {
        plain.push_back(c);
      }
    }

    // BindFrom consumes conjuncts it can push into units or turn into
    // join keys; the remainder stays in `plain`.
    PYTOND_ASSIGN_OR_RETURN(Unit joined, BindFrom(stmt, &plain));

    NameScope scope = joined.scope;
    scope.outer = outer_;
    PlanPtr plan = joined.plan;

    // Bind plain conjuncts; correlated ones (outer refs) are exported when
    // binding a subquery body.
    BoundExprPtr filter;
    for (const ExprPtr& c : plain) {
      ExprBinder b(scope, nullptr);
      PYTOND_ASSIGN_OR_RETURN(BoundExprPtr bc, b.Bind(*c));
      if (for_subquery && ExprUsesOuter(*bc)) {
        correlated->push_back(c);
        continue;
      }
      filter = filter ? BoundExpr::Binary(Expr::Op::kAnd, filter, bc,
                                          DataType::kBool)
                      : bc;
    }
    if (filter) {
      PlanPtr f = MakePlan(LogicalPlan::Kind::kFilter);
      f->predicate = filter;
      f->schema = plan->schema;
      f->children = {plan};
      plan = f;
    }

    // Semi/anti joins from EXISTS / IN subqueries.
    for (const ExprPtr& c : subqueries) {
      PYTOND_ASSIGN_OR_RETURN(plan, ApplySubquery(plan, &scope, *c));
      scope.outer = outer_;
    }

    if (for_subquery) {
      *subquery_scope = scope;
      return plan;
    }

    return BindProjection(stmt, plan, scope);
  }

 private:
  /// Pushes every conjunct in `*conjuncts` that only references `unit`
  /// down as a filter on it; removes consumed conjuncts.
  Status PushUnitFilters(Unit* unit, size_t unit_id,
                         std::vector<Unit>& units,
                         std::vector<ExprPtr>* conjuncts) {
    BoundExprPtr pred;
    auto it = conjuncts->begin();
    while (it != conjuncts->end()) {
      std::set<size_t> refs;
      if (CollectUnits(**it, units, &refs) && refs.size() <= 1 &&
          (refs.empty() || *refs.begin() == unit_id)) {
        ExprBinder b(unit->scope, nullptr);
        PYTOND_ASSIGN_OR_RETURN(BoundExprPtr bc, b.Bind(**it));
        pred = pred ? BoundExpr::Binary(Expr::Op::kAnd, pred, bc,
                                        DataType::kBool)
                    : bc;
        it = conjuncts->erase(it);
      } else {
        ++it;
      }
    }
    if (pred) {
      PlanPtr f = MakePlan(LogicalPlan::Kind::kFilter);
      f->predicate = pred;
      f->schema = unit->plan->schema;
      f->children = {unit->plan};
      unit->plan = f;
      unit->est_rows *= 0.3;  // selectivity guess for join ordering
    }
    return Status::OK();
  }

  // ---------- FROM ----------
  Result<Unit> BindFrom(const SelectStmt& stmt,
                        std::vector<ExprPtr>* conjuncts) {
    if (stmt.from.empty()) {
      // FROM-less select: single-row dummy.
      Unit u;
      auto t = std::make_shared<Table>();
      Column c = Column::Int64({0});
      Status st = t->AddColumn("__dummy__", std::move(c));
      (void)st;
      u.plan = MakePlan(LogicalPlan::Kind::kValues);
      u.plan->values = t;
      u.plan->schema = t->schema();
      u.scope.Add("", t->schema());
      u.est_rows = 1;
      return u;
    }
    std::vector<Unit> units;
    for (const auto& ref : stmt.from) {
      PYTOND_ASSIGN_OR_RETURN(Unit u, BindTableRef(*ref));
      units.push_back(std::move(u));
    }
    for (size_t i = 0; i < units.size(); ++i) {
      PYTOND_RETURN_IF_ERROR(
          PushUnitFilters(&units[i], i, units, conjuncts));
    }
    if (units.size() == 1) return units[0];

    // Classify remaining conjuncts to find cross-unit equi-join predicates.
    struct EquiPred {
      size_t a, b;       // unit ids
      ExprPtr lhs, rhs;  // lhs references unit a, rhs unit b
      ExprPtr source;    // original conjunct (for removal once used)
      bool used = false;
    };
    std::vector<EquiPred> equis;
    for (const ExprPtr& c : *conjuncts) {
      if (c->kind != Expr::Kind::kBinary || c->op != Expr::Op::kEq) continue;
      std::set<size_t> lu, ru;
      if (!CollectUnits(*c->children[0], units, &lu)) continue;
      if (!CollectUnits(*c->children[1], units, &ru)) continue;
      if (lu.size() == 1 && ru.size() == 1 && *lu.begin() != *ru.begin()) {
        equis.push_back({*lu.begin(), *ru.begin(), c->children[0],
                         c->children[1], c, false});
      }
    }

    // Join order. Both profiles avoid accidental cross products by only
    // adding units connected to the already-joined set; they differ in the
    // tie-break: FROM order (kVectorized / kResearch, duck-like baseline)
    // vs estimated-cardinality greedy (kCompiled, hyper-like planner).
    bool greedy_size = profile_ == BackendProfile::kCompiled;
    std::vector<bool> placed(units.size(), false);
    std::vector<size_t> order;
    {
      size_t first = 0;
      if (greedy_size) {
        for (size_t i = 1; i < units.size(); ++i) {
          if (units[i].est_rows < units[first].est_rows) first = i;
        }
      }
      order.push_back(first);
      placed[first] = true;
    }
    while (order.size() < units.size()) {
      int next = -1;
      for (size_t i = 0; i < units.size(); ++i) {
        if (placed[i]) continue;
        bool connected = false;
        for (const EquiPred& e : equis) {
          if ((e.a == i && placed[e.b]) || (e.b == i && placed[e.a])) {
            connected = true;
            break;
          }
        }
        if (!connected) continue;
        if (next < 0 ||
            (greedy_size && units[i].est_rows < units[next].est_rows)) {
          next = static_cast<int>(i);
        }
        if (!greedy_size && next >= 0) break;  // first connected in order
      }
      if (next < 0) {  // genuinely disconnected: unavoidable cross join
        for (size_t i = 0; i < units.size(); ++i) {
          if (!placed[i] &&
              (next < 0 ||
               (greedy_size && units[i].est_rows < units[next].est_rows))) {
            next = static_cast<int>(i);
            if (!greedy_size) break;
          }
        }
      }
      order.push_back(static_cast<size_t>(next));
      placed[static_cast<size_t>(next)] = true;
    }

    // Left-deep join build following `order`.
    Unit acc = units[order[0]];
    std::vector<size_t> in_acc = {order[0]};
    for (size_t k = 1; k < order.size(); ++k) {
      size_t uid = order[k];
      const Unit& right = units[uid];
      // Keys connecting acc to `uid`.
      std::vector<std::pair<BoundExprPtr, BoundExprPtr>> keys;
      for (EquiPred& e : equis) {
        if (e.used) continue;
        bool a_in = std::count(in_acc.begin(), in_acc.end(), e.a) > 0;
        bool b_in = std::count(in_acc.begin(), in_acc.end(), e.b) > 0;
        ExprPtr acc_side, right_side;
        if (a_in && e.b == uid) {
          acc_side = e.lhs;
          right_side = e.rhs;
        } else if (b_in && e.a == uid) {
          acc_side = e.rhs;
          right_side = e.lhs;
        } else {
          continue;
        }
        NameScope acc_scope = acc.scope;
        acc_scope.outer = outer_;
        ExprBinder lb(acc_scope, nullptr);
        PYTOND_ASSIGN_OR_RETURN(BoundExprPtr lk, lb.Bind(*acc_side));
        NameScope r_scope = right.scope;
        r_scope.outer = outer_;
        ExprBinder rb(r_scope, nullptr);
        PYTOND_ASSIGN_OR_RETURN(BoundExprPtr rk, rb.Bind(*right_side));
        keys.emplace_back(std::move(lk), std::move(rk));
        e.used = true;
      }
      PlanPtr j = MakePlan(LogicalPlan::Kind::kJoin);
      j->join_type = keys.empty() ? JoinType::kCross : JoinType::kInner;
      j->join_keys = std::move(keys);
      j->children = {acc.plan, right.plan};
      j->schema = acc.plan->schema;
      for (size_t i = 0; i < right.plan->schema.names.size(); ++i) {
        j->schema.Add(right.plan->schema.names[i],
                      right.plan->schema.types[i]);
      }
      acc.plan = j;
      for (const auto& e : right.scope.cols) acc.scope.cols.push_back(e);
      acc.est_rows = std::max(acc.est_rows, right.est_rows);
      in_acc.push_back(uid);
    }
    // Remove conjuncts consumed as join keys.
    for (const EquiPred& e : equis) {
      if (!e.used) continue;
      auto it = std::find(conjuncts->begin(), conjuncts->end(), e.source);
      if (it != conjuncts->end()) conjuncts->erase(it);
    }
    return acc;
  }

  /// True (and fills `out`) if every column ref in `e` resolves to some
  /// unit; refs that resolve to no unit (outer refs) make this return false.
  bool CollectUnits(const Expr& e, const std::vector<Unit>& units,
                    std::set<size_t>* out) {
    if (e.kind == Expr::Kind::kColumnRef) {
      for (size_t i = 0; i < units.size(); ++i) {
        if (units[i].scope.Resolve(e.table, e.name).ok()) {
          out->insert(i);
          return true;
        }
      }
      return false;
    }
    for (const auto& c : e.children) {
      if (!CollectUnits(*c, units, out)) return false;
    }
    return true;
  }

  Result<Unit> BindTableRef(const TableRef& ref) {
    switch (ref.kind) {
      case TableRef::Kind::kBase: {
        const Schema* schema = catalog_.schema(ref.table_name);
        if (schema == nullptr) {
          return Status::NotFound("table '" + ref.table_name + "'");
        }
        Unit u;
        u.plan = MakePlan(LogicalPlan::Kind::kScan);
        u.plan->table_name = ref.table_name;
        u.plan->schema = *schema;
        u.scope.Add(ref.alias.empty() ? ref.table_name : ref.alias, *schema);
        u.est_rows = catalog_.row_count(ref.table_name);
        return u;
      }
      case TableRef::Kind::kValues: {
        Unit u;
        auto t = std::make_shared<Table>();
        PYTOND_RETURN_IF_ERROR(BuildValuesTable(
            ref.values_rows, ref.values_columns, t.get()));
        u.plan = MakePlan(LogicalPlan::Kind::kValues);
        u.plan->values = t;
        u.plan->schema = t->schema();
        u.scope.Add(ref.alias, t->schema());
        u.est_rows = static_cast<double>(t->num_rows());
        return u;
      }
      case TableRef::Kind::kJoin: {
        PYTOND_ASSIGN_OR_RETURN(Unit l, BindTableRef(*ref.left));
        PYTOND_ASSIGN_OR_RETURN(Unit r, BindTableRef(*ref.right));
        NameScope merged = l.scope;
        for (const auto& e : r.scope.cols) merged.cols.push_back(e);
        merged.outer = outer_;

        PlanPtr j = MakePlan(LogicalPlan::Kind::kJoin);
        switch (ref.join_type) {
          case TableRef::JoinType::kInner: j->join_type = JoinType::kInner; break;
          case TableRef::JoinType::kLeft: j->join_type = JoinType::kLeft; break;
          case TableRef::JoinType::kRight: j->join_type = JoinType::kRight; break;
          case TableRef::JoinType::kFull: j->join_type = JoinType::kFull; break;
          case TableRef::JoinType::kCross: j->join_type = JoinType::kCross; break;
        }
        if (ref.on_condition) {
          std::vector<ExprPtr> conjuncts;
          SplitConjuncts(ref.on_condition, &conjuncts);
          size_t lwidth = l.scope.cols.size();
          BoundExprPtr residual;
          for (const ExprPtr& c : conjuncts) {
            // Try an equi key: one side binds in l only, other in r only.
            bool is_key = false;
            if (c->kind == Expr::Kind::kBinary && c->op == Expr::Op::kEq) {
              ExprBinder lb(l.scope, nullptr), rb(r.scope, nullptr);
              auto l0 = lb.Bind(*c->children[0]);
              auto r1 = rb.Bind(*c->children[1]);
              if (l0.ok() && r1.ok()) {
                j->join_keys.emplace_back(*l0, *r1);
                is_key = true;
              } else {
                auto l1 = lb.Bind(*c->children[1]);
                auto r0 = rb.Bind(*c->children[0]);
                if (l1.ok() && r0.ok()) {
                  j->join_keys.emplace_back(*l1, *r0);
                  is_key = true;
                }
              }
            }
            if (!is_key) {
              ExprBinder mb(merged, nullptr);
              PYTOND_ASSIGN_OR_RETURN(BoundExprPtr bc, mb.Bind(*c));
              (void)lwidth;
              residual = residual
                             ? BoundExpr::Binary(Expr::Op::kAnd, residual, bc,
                                                 DataType::kBool)
                             : bc;
            }
          }
          j->predicate = residual;
        }
        j->children = {l.plan, r.plan};
        j->schema = l.plan->schema;
        for (size_t i = 0; i < r.plan->schema.names.size(); ++i) {
          j->schema.Add(r.plan->schema.names[i], r.plan->schema.types[i]);
        }
        Unit u;
        u.plan = j;
        u.scope = merged;
        u.scope.outer = nullptr;
        u.est_rows = std::max(l.est_rows, r.est_rows);
        return u;
      }
    }
    return Status::Internal("unreachable");
  }

  static Status BuildValuesTable(const std::vector<std::vector<Value>>& rows,
                                 const std::vector<std::string>& col_names,
                                 Table* out) {
    if (rows.empty()) return Status::InvalidArgument("empty VALUES");
    size_t width = rows[0].size();
    Schema schema;
    for (size_t i = 0; i < width; ++i) {
      DataType t = DataType::kNull;
      for (const auto& row : rows) {
        if (!row[i].is_null()) {
          t = row[i].type();
          break;
        }
      }
      if (t == DataType::kNull) t = DataType::kInt64;
      schema.Add(i < col_names.size() ? col_names[i]
                                      : "col" + std::to_string(i),
                 t);
    }
    *out = Table(schema);
    for (const auto& row : rows) {
      PYTOND_RETURN_IF_ERROR(out->AppendRow(row));
    }
    return Status::OK();
  }

  // ---------- subqueries ----------
  Result<PlanPtr> ApplySubquery(PlanPtr plan, NameScope* scope,
                                const Expr& conjunct) {
    const Expr* node = &conjunct;
    bool negated = false;
    while (node->kind == Expr::Kind::kUnary && node->op == Expr::Op::kNot) {
      negated = !negated;
      node = node->children[0].get();
    }
    if (node->kind == Expr::Kind::kExists) {
      bool anti = negated != node->negated;
      return BindSemiJoin(plan, scope, *node->subquery, nullptr, anti);
    }
    if (node->kind == Expr::Kind::kInSubquery) {
      bool anti = negated != node->negated;
      return BindSemiJoin(plan, scope, *node->subquery,
                          node->children[0].get(), anti);
    }
    return Status::Unsupported(
        "subqueries must appear as bare [NOT] EXISTS/IN conjuncts");
  }

  Result<PlanPtr> BindSemiJoin(PlanPtr plan, NameScope* scope,
                               const SelectStmt& sub, const Expr* in_lhs,
                               bool anti) {
    SelectBinder inner_binder(catalog_, profile_, scope);
    std::vector<ExprPtr> correlated;
    NameScope inner_scope;
    PYTOND_ASSIGN_OR_RETURN(
        PlanPtr inner,
        inner_binder.Bind(sub, /*for_subquery=*/true, &correlated,
                          &inner_scope));

    PlanPtr j = MakePlan(LogicalPlan::Kind::kJoin);
    j->join_type = anti ? JoinType::kAnti : JoinType::kSemi;
    j->children = {plan, inner};
    j->schema = plan->schema;

    // IN lhs: outer expr = inner select item.
    if (in_lhs != nullptr) {
      ExprBinder ob(*scope, nullptr);
      PYTOND_ASSIGN_OR_RETURN(BoundExprPtr lhs, ob.Bind(*in_lhs));
      if (sub.items.size() != 1 || sub.items[0].is_star) {
        return Status::Unsupported("IN subquery needs one select item");
      }
      NameScope is = inner_scope;
      is.outer = nullptr;
      ExprBinder ib(is, nullptr);
      PYTOND_ASSIGN_OR_RETURN(BoundExprPtr rhs, ib.Bind(*sub.items[0].expr));
      j->join_keys.emplace_back(std::move(lhs), std::move(rhs));
    }

    // Correlated conjuncts: equality with one pure-outer / one pure-inner
    // side becomes a key; anything else becomes a residual over
    // concat(outer, inner).
    size_t outer_width = plan->schema.names.size();
    NameScope corr = inner_scope;
    corr.outer = scope;
    BoundExprPtr residual;
    for (const ExprPtr& c : correlated) {
      ExprBinder cb(corr, nullptr);
      PYTOND_ASSIGN_OR_RETURN(BoundExprPtr bc, cb.Bind(*c));
      bool key_done = false;
      if (bc->kind == BoundExpr::Kind::kBinary &&
          bc->op == Expr::Op::kEq) {
        BoundExprPtr a = bc->children[0], b = bc->children[1];
        bool a_outer = ExprUsesOuter(*a), b_outer = ExprUsesOuter(*b);
        auto pure = [](const BoundExpr& e, bool outer) {
          // All colrefs on the same side.
          std::vector<int> cols;
          e.CollectColumns(&cols);
          for (int idx : cols) {
            if ((idx >= kOuterBase) != outer) return false;
          }
          return true;
        };
        if (a_outer != b_outer && pure(*a, a_outer) && pure(*b, b_outer)) {
          BoundExprPtr outer_side = a_outer ? a : b;
          BoundExprPtr inner_side = a_outer ? b : a;
          // Outer refs become plain refs over the outer plan schema.
          struct Rebase {
            void operator()(BoundExpr* e) const {
              if (e->kind == BoundExpr::Kind::kColRef &&
                  e->col_index >= kOuterBase) {
                e->col_index -= kOuterBase;
              }
              for (auto& c : e->children) (*this)(c.get());
            }
          };
          Rebase{}(outer_side.get());
          j->join_keys.emplace_back(outer_side, inner_side);
          key_done = true;
        }
      }
      if (!key_done) {
        // Residual over concat(outer, inner): inner idx += outer_width,
        // outer idx -= kOuterBase.
        ShiftColumns(bc.get(), static_cast<int>(outer_width), 0);
        struct Rebase {
          void operator()(BoundExpr* e) const {
            if (e->kind == BoundExpr::Kind::kColRef &&
                e->col_index >= kOuterBase) {
              e->col_index -= kOuterBase;
            }
            for (auto& c : e->children) (*this)(c.get());
          }
        };
        Rebase{}(bc.get());
        residual = residual ? BoundExpr::Binary(Expr::Op::kAnd, residual, bc,
                                                DataType::kBool)
                            : bc;
      }
    }
    j->predicate = residual;
    if (j->join_keys.empty()) {
      return Status::Unsupported(
          "EXISTS subquery needs at least one equality correlation");
    }
    return j;
  }

  // ---------- projection / aggregation / order ----------
  Result<PlanPtr> BindProjection(const SelectStmt& stmt, PlanPtr plan,
                                 NameScope& scope) {
    bool has_agg = !stmt.group_by.empty();
    for (const auto& item : stmt.items) {
      if (!item.is_star && ContainsAggregate(*item.expr)) has_agg = true;
    }
    if (stmt.having && !has_agg) {
      return Status::Unsupported("HAVING without aggregation");
    }

    bool has_window = false;
    for (const auto& item : stmt.items) {
      if (!item.is_star && ContainsWindow(*item.expr)) has_window = true;
    }
    if (has_window && has_agg) {
      return Status::Unsupported("window + aggregate in one SELECT");
    }
    if (has_window && profile_ == BackendProfile::kResearch) {
      return Status::Unsupported(
          "backend profile 'research' does not support window functions");
    }

    std::vector<BoundExprPtr> out_exprs;
    std::vector<std::string> out_names;

    if (has_agg) {
      PYTOND_ASSIGN_OR_RETURN(plan,
                              BindAggregate(stmt, plan, scope, &out_exprs,
                                            &out_names));
    } else if (has_window) {
      PYTOND_ASSIGN_OR_RETURN(plan,
                              BindWindow(stmt, plan, scope, &out_exprs,
                                         &out_names));
    } else {
      for (const auto& item : stmt.items) {
        if (item.is_star) {
          for (size_t i = 0; i < scope.cols.size(); ++i) {
            out_exprs.push_back(
                BoundExpr::ColRef(static_cast<int>(i), scope.cols[i].type));
            out_names.push_back(scope.cols[i].name);
          }
          continue;
        }
        ExprBinder b(scope, nullptr);
        PYTOND_ASSIGN_OR_RETURN(BoundExprPtr e, b.Bind(*item.expr));
        out_exprs.push_back(e);
        out_names.push_back(DeriveName(item));
      }
    }

    PlanPtr proj = MakePlan(LogicalPlan::Kind::kProject);
    proj->exprs = out_exprs;
    proj->names = out_names;
    proj->children = {plan};
    for (size_t i = 0; i < out_exprs.size(); ++i) {
      proj->schema.Add(out_names[i], out_exprs[i]->type);
    }
    plan = proj;

    if (stmt.distinct) {
      PlanPtr d = MakePlan(LogicalPlan::Kind::kDistinct);
      d->children = {plan};
      d->schema = plan->schema;
      plan = d;
    }

    if (!stmt.order_by.empty()) {
      // Keys referencing output columns sort directly; other keys (input
      // columns / expressions) are appended as hidden projection columns,
      // sorted on, then dropped.
      PlanPtr s = MakePlan(LogicalPlan::Kind::kSort);
      size_t visible = proj->schema.names.size();
      for (const auto& key : stmt.order_by) {
        int idx = -1;
        if (key.expr->kind == Expr::Kind::kColumnRef &&
            key.expr->table.empty()) {
          idx = plan->schema.Find(key.expr->name);
        }
        if (idx < 0 && !has_agg && !stmt.distinct) {
          ExprBinder b(scope, nullptr);
          auto bound = b.Bind(*key.expr);
          if (bound.ok()) {
            proj->exprs.push_back(*bound);
            std::string hidden =
                "__sort" + std::to_string(proj->exprs.size()) + "__";
            proj->names.push_back(hidden);
            proj->schema.Add(hidden, (*bound)->type);
            idx = static_cast<int>(proj->schema.names.size()) - 1;
          }
        }
        if (idx < 0) {
          return Status::NotFound("ORDER BY column '" +
                                  (key.expr->kind == Expr::Kind::kColumnRef
                                       ? key.expr->name
                                       : std::string("<expr>")) +
                                  "'");
        }
        s->sort_keys.emplace_back(idx, key.ascending);
      }
      s->children = {plan};
      s->schema = plan->schema;
      plan = s;
      if (proj->schema.names.size() > visible) {
        // Drop hidden sort columns.
        PlanPtr strip = MakePlan(LogicalPlan::Kind::kProject);
        for (size_t i = 0; i < visible; ++i) {
          strip->exprs.push_back(BoundExpr::ColRef(
              static_cast<int>(i), plan->schema.types[i]));
          strip->names.push_back(plan->schema.names[i]);
          strip->schema.Add(plan->schema.names[i], plan->schema.types[i]);
        }
        strip->children = {plan};
        plan = strip;
      }
    }

    if (stmt.limit) {
      PlanPtr l = MakePlan(LogicalPlan::Kind::kLimit);
      l->limit = *stmt.limit;
      l->children = {plan};
      l->schema = plan->schema;
      plan = l;
    }
    return plan;
  }

  static std::string DeriveName(const sql::SelectItem& item) {
    if (!item.alias.empty()) return item.alias;
    if (item.expr->kind == Expr::Kind::kColumnRef) return item.expr->name;
    return "expr";
  }

  Result<PlanPtr> BindAggregate(const SelectStmt& stmt, PlanPtr plan,
                                NameScope& scope,
                                std::vector<BoundExprPtr>* out_exprs,
                                std::vector<std::string>* out_names) {
    PlanPtr agg = MakePlan(LogicalPlan::Kind::kAggregate);

    // Bind group expressions over the input.
    for (const auto& g : stmt.group_by) {
      ExprBinder b(scope, nullptr);
      PYTOND_ASSIGN_OR_RETURN(BoundExprPtr e, b.Bind(*g));
      agg->group_exprs.push_back(e);
      std::string name = g->kind == Expr::Kind::kColumnRef
                             ? g->name
                             : "g" + std::to_string(agg->group_exprs.size());
      agg->group_names.push_back(name);
    }

    // Hook: group-key structural matches and aggregate calls map to
    // post-aggregation columns.
    size_t n_groups = stmt.group_by.size();
    auto hook = [&](const Expr& e) -> Result<std::optional<BoundExprPtr>> {
      for (size_t i = 0; i < stmt.group_by.size(); ++i) {
        if (ExprEquals(e, *stmt.group_by[i])) {
          return std::optional<BoundExprPtr>(BoundExpr::ColRef(
              static_cast<int>(i), agg->group_exprs[i]->type));
        }
      }
      if (e.kind == Expr::Kind::kFunction && IsAggregateName(e.name)) {
        AggSpec spec;
        bool star = !e.children.empty() &&
                    e.children[0]->kind == Expr::Kind::kStar;
        if (e.name == "count" && (e.children.empty() || star)) {
          spec.op = AggOp::kCountStar;
          spec.out_type = DataType::kInt64;
        } else {
          ExprBinder ab(scope, nullptr);
          PYTOND_ASSIGN_OR_RETURN(BoundExprPtr arg, ab.Bind(*e.children[0]));
          if (e.name == "count") {
            spec.op = e.distinct ? AggOp::kCountDistinct : AggOp::kCount;
            spec.out_type = DataType::kInt64;
          } else if (e.name == "sum") {
            spec.op = AggOp::kSum;
            spec.out_type = arg->type == DataType::kInt64 ? DataType::kInt64
                                                          : DataType::kFloat64;
          } else if (e.name == "avg") {
            spec.op = AggOp::kAvg;
            spec.out_type = DataType::kFloat64;
          } else if (e.name == "min") {
            spec.op = AggOp::kMin;
            spec.out_type = arg->type;
          } else {
            spec.op = AggOp::kMax;
            spec.out_type = arg->type;
          }
          spec.arg = arg;
        }
        spec.out_name = "a" + std::to_string(agg->aggs.size());
        agg->aggs.push_back(spec);
        return std::optional<BoundExprPtr>(BoundExpr::ColRef(
            static_cast<int>(n_groups + agg->aggs.size() - 1),
            spec.out_type));
      }
      return std::optional<BoundExprPtr>();
    };

    // Bind select items with the hook (the post-agg scope is positional;
    // the hook intercepts every column-producing node).
    NameScope post;  // names resolved only through the hook
    for (const auto& item : stmt.items) {
      if (item.is_star) {
        return Status::Unsupported("SELECT * with aggregation");
      }
      ExprBinder b(post, hook);
      PYTOND_ASSIGN_OR_RETURN(BoundExprPtr e, b.Bind(*item.expr));
      out_exprs->push_back(e);
      out_names->push_back(DeriveName(item));
    }

    BoundExprPtr having;
    if (stmt.having) {
      ExprBinder b(post, hook);
      PYTOND_ASSIGN_OR_RETURN(having, b.Bind(*stmt.having));
    }

    agg->children = {plan};
    for (size_t i = 0; i < agg->group_exprs.size(); ++i) {
      agg->schema.Add(agg->group_names[i], agg->group_exprs[i]->type);
    }
    for (const AggSpec& s : agg->aggs) {
      agg->schema.Add(s.out_name, s.out_type);
    }
    PlanPtr out = agg;
    if (having) {
      PlanPtr f = MakePlan(LogicalPlan::Kind::kFilter);
      f->predicate = having;
      f->children = {out};
      f->schema = out->schema;
      out = f;
    }
    return out;
  }

  Result<PlanPtr> BindWindow(const SelectStmt& stmt, PlanPtr plan,
                             NameScope& scope,
                             std::vector<BoundExprPtr>* out_exprs,
                             std::vector<std::string>* out_names) {
    // Collect the (single) window spec — it may be nested inside an
    // expression (e.g. row_number() OVER (...) - 1).
    const Expr* window = nullptr;
    std::function<Status(const Expr&)> find = [&](const Expr& e) -> Status {
      if (e.kind == Expr::Kind::kWindow) {
        if (window != nullptr) {
          return Status::Unsupported("multiple window functions");
        }
        window = &e;
      }
      for (const auto& c : e.children) PYTOND_RETURN_IF_ERROR(find(*c));
      return Status::OK();
    };
    for (const auto& item : stmt.items) {
      if (!item.is_star) PYTOND_RETURN_IF_ERROR(find(*item.expr));
    }
    if (window->name != "row_number") {
      return Status::Unsupported("only row_number() windows are supported");
    }
    PlanPtr w = MakePlan(LogicalPlan::Kind::kWindow);
    for (const auto& [key, asc] : window->window_order) {
      ExprBinder b(scope, nullptr);
      PYTOND_ASSIGN_OR_RETURN(BoundExprPtr e, b.Bind(*key));
      if (e->kind != BoundExpr::Kind::kColRef) {
        return Status::Unsupported("window ORDER BY must be a column");
      }
      w->window_order.emplace_back(e->col_index, asc);
    }
    w->window_name = "__rownum__";
    w->children = {plan};
    w->schema = plan->schema;
    w->schema.Add(w->window_name, DataType::kInt64);
    int rownum_idx = static_cast<int>(w->schema.names.size()) - 1;

    auto hook = [&](const Expr& e) -> Result<std::optional<BoundExprPtr>> {
      if (e.kind == Expr::Kind::kWindow) {
        return std::optional<BoundExprPtr>(
            BoundExpr::ColRef(rownum_idx, DataType::kInt64));
      }
      return std::optional<BoundExprPtr>();
    };
    for (const auto& item : stmt.items) {
      if (item.is_star) {
        for (size_t i = 0; i < scope.cols.size(); ++i) {
          out_exprs->push_back(
              BoundExpr::ColRef(static_cast<int>(i), scope.cols[i].type));
          out_names->push_back(scope.cols[i].name);
        }
        continue;
      }
      ExprBinder b(scope, hook);
      PYTOND_ASSIGN_OR_RETURN(BoundExprPtr e, b.Bind(*item.expr));
      out_exprs->push_back(e);
      out_names->push_back(item.alias.empty() && ContainsWindow(*item.expr)
                               ? "row_number"
                               : DeriveName(item));
    }
    return w;
  }

  const BinderCatalog& catalog_;
  BackendProfile profile_;
  const NameScope* outer_;
};

}  // namespace

Result<PlanPtr> BindSelect(const sql::SelectStmt& stmt,
                           const BinderCatalog& catalog,
                           BackendProfile profile) {
  SelectBinder binder(catalog, profile, nullptr);
  std::vector<ExprPtr> correlated;
  NameScope unused;
  return binder.Bind(stmt, /*for_subquery=*/false, &correlated, &unused);
}

}  // namespace pytond::engine
