#ifndef PYTOND_ENGINE_PLAN_OPTIMIZER_H_
#define PYTOND_ENGINE_PLAN_OPTIMIZER_H_

#include <functional>

#include "engine/plan/logical.h"
#include "engine/profile.h"

namespace pytond::engine {

/// Physical-plan tuning applied after binding. The kCompiled profile
/// ("hyper-like") runs build-side selection on inner hash joins; the other
/// profiles leave the plan as bound (the binder already differs per
/// profile in join ordering).
void OptimizePlan(const PlanPtr& plan, BackendProfile profile,
                  const std::function<double(const std::string&)>& table_rows);

}  // namespace pytond::engine

#endif  // PYTOND_ENGINE_PLAN_OPTIMIZER_H_
