#ifndef PYTOND_ENGINE_PLAN_OPTIMIZER_H_
#define PYTOND_ENGINE_PLAN_OPTIMIZER_H_

#include <functional>

#include "common/status.h"
#include "engine/plan/logical.h"
#include "engine/profile.h"

namespace pytond::engine {

/// Per-pass instrumentation for OptimizePlan. `after_pass` runs after
/// every pass that rewrote the plan, with the pass's stable name — the
/// physical verifier hangs off this to blame the exact pass that
/// corrupted a plan (mirroring the TondIR optimizer's verify_each_pass).
/// Passes that inspected but did not touch the plan are skipped: the
/// plan they leave behind is byte-identical to one already verified, so
/// re-verifying it could never blame them. A non-OK return aborts
/// optimization.
struct PlanPassHooks {
  std::function<Status(const char* pass)> after_pass;
};

/// Physical-plan tuning applied after binding, as a sequence of named
/// passes:
///   - "limit_pushdown"        (all profiles): LIMIT sinks below stateless
///     1:1 projections, so pipelined chains truncate before computing
///     projection expressions over rows the limit would discard.
///   - "build_side_selection"  (kCompiled only, "hyper-like"): hash-build
///     on the estimated smaller side of inner joins; the other profiles
///     leave join sides as bound.
Status OptimizePlan(
    const PlanPtr& plan, BackendProfile profile,
    const std::function<double(const std::string&)>& table_rows,
    const PlanPassHooks* hooks = nullptr);

}  // namespace pytond::engine

#endif  // PYTOND_ENGINE_PLAN_OPTIMIZER_H_
