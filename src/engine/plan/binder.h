#ifndef PYTOND_ENGINE_PLAN_BINDER_H_
#define PYTOND_ENGINE_PLAN_BINDER_H_

#include <functional>
#include <map>
#include <string>

#include "common/status.h"
#include "engine/plan/logical.h"
#include "engine/profile.h"
#include "engine/sql/ast.h"

namespace pytond::engine {

/// Schema/row-count resolver for table names (base tables + materialized
/// CTE temporaries).
struct BinderCatalog {
  std::function<const Schema*(const std::string&)> schema;
  std::function<double(const std::string&)> row_count;
};

/// Binds one (CTE-free) SELECT against the catalog, producing an executable
/// plan. CTE orchestration lives in Database::Query.
Result<PlanPtr> BindSelect(const sql::SelectStmt& stmt,
                           const BinderCatalog& catalog,
                           BackendProfile profile);

}  // namespace pytond::engine

#endif  // PYTOND_ENGINE_PLAN_BINDER_H_
