#ifndef PYTOND_ENGINE_PLAN_LOGICAL_H_
#define PYTOND_ENGINE_PLAN_LOGICAL_H_

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "engine/expr/expr.h"
#include "storage/table.h"

namespace pytond::engine {

enum class JoinType { kInner, kLeft, kRight, kFull, kSemi, kAnti, kCross };

const char* JoinTypeName(JoinType t);

/// Aggregate operations supported by the Aggregate node.
enum class AggOp { kSum, kMin, kMax, kAvg, kCount, kCountStar, kCountDistinct };

/// One aggregate computation: op over an input expression.
struct AggSpec {
  AggOp op;
  BoundExprPtr arg;  // null for kCountStar
  std::string out_name;
  DataType out_type = DataType::kFloat64;
};

struct LogicalPlan;
using PlanPtr = std::shared_ptr<LogicalPlan>;

/// Logical/physical plan node (the engine interprets this tree directly;
/// planner passes rewrite it in place).
struct LogicalPlan {
  enum class Kind {
    kScan,       // base or temp table by name
    kValues,     // inline constant table
    kFilter,     // predicate over child
    kProject,    // exprs+names over child
    kJoin,       // children[0] x children[1]
    kAggregate,  // group_exprs + aggs over child
    kSort,       // sort_keys over child columns
    kLimit,
    kDistinct,
    kWindow,     // appends a row_number column ordered by window_order
  };

  Kind kind;
  Schema schema;  // output schema (filled by the binder)
  std::vector<PlanPtr> children;

  // kScan
  std::string table_name;
  // kValues
  std::shared_ptr<Table> values;
  // kFilter / kJoin residual
  BoundExprPtr predicate;
  // kProject
  std::vector<BoundExprPtr> exprs;
  std::vector<std::string> names;
  // kJoin: equi-key pairs (left expr over left schema, right expr over
  // right schema); `predicate` (if set) is a residual over the
  // concatenated left+right schema.
  JoinType join_type = JoinType::kInner;
  std::vector<std::pair<BoundExprPtr, BoundExprPtr>> join_keys;
  /// Inner joins only: hash-build on the left child instead of the right
  /// (set by the kCompiled profile's build-side selection pass).
  bool build_left = false;
  // kAggregate
  std::vector<BoundExprPtr> group_exprs;
  std::vector<std::string> group_names;
  std::vector<AggSpec> aggs;
  // kSort: indices into child schema + ascending flag.
  std::vector<std::pair<int, bool>> sort_keys;
  // kLimit
  int64_t limit = 0;
  // kWindow
  std::vector<std::pair<int, bool>> window_order;
  std::string window_name;

  /// Single-line description of this node (no indent, no children).
  std::string Label() const;

  /// Indented tree rendering for debugging / plan tests.
  std::string ToString(int indent = 0) const;

  /// Tree rendering with a per-node annotation appended to each line —
  /// how EXPLAIN ANALYZE attaches `rows=`/`time=` actuals. An empty
  /// annotation leaves the line bare.
  using Annotator = std::function<std::string(const LogicalPlan&)>;
  std::string ToString(int indent, const Annotator& annotate) const;

  /// Rough output-cardinality estimate used by the kCompiled profile's
  /// greedy join ordering.
  double EstimateRows(
      const std::function<double(const std::string&)>& table_rows) const;
};

PlanPtr MakePlan(LogicalPlan::Kind kind);

}  // namespace pytond::engine

#endif  // PYTOND_ENGINE_PLAN_LOGICAL_H_
