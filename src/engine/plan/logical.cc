#include "engine/plan/logical.h"

#include <functional>
#include <sstream>

namespace pytond::engine {

const char* JoinTypeName(JoinType t) {
  switch (t) {
    case JoinType::kInner: return "INNER";
    case JoinType::kLeft: return "LEFT";
    case JoinType::kRight: return "RIGHT";
    case JoinType::kFull: return "FULL";
    case JoinType::kSemi: return "SEMI";
    case JoinType::kAnti: return "ANTI";
    case JoinType::kCross: return "CROSS";
  }
  return "?";
}

PlanPtr MakePlan(LogicalPlan::Kind kind) {
  auto p = std::make_shared<LogicalPlan>();
  p->kind = kind;
  return p;
}

std::string LogicalPlan::Label() const {
  std::ostringstream os;
  switch (kind) {
    case Kind::kScan: os << "Scan(" << table_name << ")"; break;
    case Kind::kValues: os << "Values(" << values->num_rows() << ")"; break;
    case Kind::kFilter: os << "Filter(" << predicate->ToString() << ")"; break;
    case Kind::kProject: {
      os << "Project(";
      for (size_t i = 0; i < names.size(); ++i) {
        if (i) os << ", ";
        os << names[i];
      }
      os << ")";
      break;
    }
    case Kind::kJoin: {
      os << JoinTypeName(join_type) << "Join(";
      for (size_t i = 0; i < join_keys.size(); ++i) {
        if (i) os << ", ";
        os << join_keys[i].first->ToString() << "="
           << join_keys[i].second->ToString();
      }
      if (predicate) os << " residual";
      os << ")";
      break;
    }
    case Kind::kAggregate:
      os << "Aggregate(groups=" << group_exprs.size()
         << ", aggs=" << aggs.size() << ")";
      break;
    case Kind::kSort: os << "Sort"; break;
    case Kind::kLimit: os << "Limit(" << limit << ")"; break;
    case Kind::kDistinct: os << "Distinct"; break;
    case Kind::kWindow: os << "Window(row_number)"; break;
  }
  return os.str();
}

std::string LogicalPlan::ToString(int indent) const {
  return ToString(indent, nullptr);
}

std::string LogicalPlan::ToString(int indent,
                                  const Annotator& annotate) const {
  std::ostringstream os;
  os << std::string(static_cast<size_t>(indent) * 2, ' ') << Label();
  if (annotate) {
    std::string extra = annotate(*this);
    if (!extra.empty()) os << " " << extra;
  }
  os << "\n";
  for (const PlanPtr& c : children) os << c->ToString(indent + 1, annotate);
  return os.str();
}

double LogicalPlan::EstimateRows(
    const std::function<double(const std::string&)>& table_rows) const {
  switch (kind) {
    case Kind::kScan: return table_rows(table_name);
    case Kind::kValues: return static_cast<double>(values->num_rows());
    case Kind::kFilter: return 0.3 * children[0]->EstimateRows(table_rows);
    case Kind::kJoin: {
      double l = children[0]->EstimateRows(table_rows);
      double r = children[1]->EstimateRows(table_rows);
      if (join_type == JoinType::kCross) return l * r;
      if (join_type == JoinType::kSemi || join_type == JoinType::kAnti) {
        return l;
      }
      return std::max(l, r);
    }
    case Kind::kAggregate: {
      double in = children[0]->EstimateRows(table_rows);
      return group_exprs.empty() ? 1.0 : in / 10.0;
    }
    case Kind::kLimit:
      return static_cast<double>(limit);
    default:
      return children.empty() ? 1.0 : children[0]->EstimateRows(table_rows);
  }
}

}  // namespace pytond::engine
