#ifndef PYTOND_ENGINE_EXEC_EXECUTOR_H_
#define PYTOND_ENGINE_EXEC_EXECUTOR_H_

#include <functional>
#include <map>
#include <memory>

#include "engine/plan/logical.h"
#include "obs/trace.h"
#include "storage/catalog.h"

namespace pytond::engine {

/// Per-operator execution actuals, recorded when ExecContext::op_stats is
/// attached (EXPLAIN ANALYZE) — time is *self* time, children excluded.
struct OperatorStats {
  uint64_t time_ns = 0;
  uint64_t rows_in = 0;        // sum over all inputs
  uint64_t rows_out = 0;
  uint64_t batches = 0;        // parallel chunks the operator split into
  uint64_t build_rows = 0;     // join: hash-build input rows
  uint64_t build_buckets = 0;  // join: distinct hash-build keys
};

/// Keyed by plan-node identity; each node executes once per query.
using PlanStatsMap = std::map<const LogicalPlan*, OperatorStats>;

/// Execution context: base catalog, materialized CTE temporaries, the
/// intra-operator parallelism degree, and optional instrumentation (both
/// null by default — the uninstrumented path costs one null check per
/// operator).
struct ExecContext {
  const Catalog* catalog = nullptr;
  const std::map<std::string, std::shared_ptr<const Table>>* temps = nullptr;
  int num_threads = 1;
  obs::TraceCollector* trace = nullptr;
  PlanStatsMap* op_stats = nullptr;
};

/// Stable display name for a plan operator ("Scan", "HashJoin", ...).
const char* PlanOpName(LogicalPlan::Kind kind);

using TablePtr = std::shared_ptr<const Table>;

/// Interprets the plan tree bottom-up, materializing each operator's
/// output. Filters, joins (probe side) and aggregations (partial states)
/// parallelize over row ranges when ctx.num_threads > 1.
Result<TablePtr> ExecutePlan(const LogicalPlan& plan, const ExecContext& ctx);

/// Runs fn(thread_id, begin, end) over `threads` contiguous ranges of
/// [0, n). With one thread (or tiny n) runs inline.
void ParallelFor(size_t n, int threads,
                 const std::function<void(int, size_t, size_t)>& fn);

}  // namespace pytond::engine

#endif  // PYTOND_ENGINE_EXEC_EXECUTOR_H_
