#ifndef PYTOND_ENGINE_EXEC_EXECUTOR_H_
#define PYTOND_ENGINE_EXEC_EXECUTOR_H_

#include <functional>
#include <map>
#include <memory>

#include "engine/plan/logical.h"
#include "engine/sched/worker_pool.h"
#include "obs/metrics/memory_accountant.h"
#include "obs/trace.h"
#include "storage/catalog.h"

namespace pytond::obs {
class MetricsRegistry;
}  // namespace pytond::obs

namespace pytond::analysis::physical {
struct VerifyStats;
}  // namespace pytond::analysis::physical

namespace pytond::engine {

/// Inputs below this row count always execute inline — the per-task
/// scheduling cost outweighs any parallel win (ExecContext::
/// min_parallel_rows overrides per query).
inline constexpr size_t kMinParallelRows = 4096;

/// Upper bound on rows per morsel. Small parallel-eligible inputs shrink
/// morsels further so every executor still gets work (see MorselRows).
inline constexpr size_t kDefaultMorselRows = 16384;

/// Per-operator execution actuals, recorded when ExecContext::op_stats is
/// attached (EXPLAIN ANALYZE) — time is *self* time, children excluded.
struct OperatorStats {
  uint64_t time_ns = 0;
  uint64_t rows_in = 0;        // sum over all inputs
  uint64_t rows_out = 0;
  uint64_t batches = 0;        // morsels the operator actually split into
  uint64_t steals = 0;         // pool loop tasks stolen across deques
  uint64_t build_rows = 0;     // join: hash-build input rows
  uint64_t build_buckets = 0;  // join: distinct hash-build keys
  uint64_t mem_bytes = 0;      // bytes charged: output + transient builds
  /// Pipelined execution only: which pipeline ran this operator (-1 when
  /// the operator executed on the materializing path).
  int32_t pipeline_id = -1;
  /// Pipelined execution only: bytes pushed through this operator as
  /// in-flight chunks instead of being materialized between operators.
  uint64_t streamed_bytes = 0;
};

/// Keyed by plan-node identity; each node executes once per query.
using PlanStatsMap = std::map<const LogicalPlan*, OperatorStats>;

/// Process-wide default for push-based pipelined execution. True unless
/// the TOND_PIPELINE environment variable is set to "0"/"off"/"false"
/// (read once; the materializing fallback stays available per query via
/// ExecContext::pipeline / QueryOptions::pipeline / RunOptions::pipeline).
bool PipelineEnabledDefault();

/// Process-wide default for the physical plan/pipeline verifier
/// (analysis/physical/): always on in debug and sanitizer builds, opt-in
/// via TOND_VERIFY_PLANS in release (read once; per query override via
/// QueryOptions::verify_plans / RunOptions::verify_plans).
bool VerifyPlansDefault();

/// Execution context: base catalog, materialized CTE temporaries, the
/// intra-operator parallelism degree plus morsel sizing, the shared worker
/// pool, and optional instrumentation (trace/op_stats null by default —
/// the uninstrumented path costs one null check per operator).
struct ExecContext {
  const Catalog* catalog = nullptr;
  const std::map<std::string, std::shared_ptr<const Table>>* temps = nullptr;
  int num_threads = 1;
  /// Inputs shorter than this run inline (no parallel split).
  size_t min_parallel_rows = kMinParallelRows;
  /// Morsel-size cap; the effective size also adapts down for small inputs
  /// (MorselRows) so chunk boundaries stay a function of n alone.
  size_t morsel_rows = kDefaultMorselRows;
  /// Shared scheduler (one per Database). Null + num_threads > 1 falls
  /// back to transient threads (standalone executor use).
  sched::WorkerPool* pool = nullptr;
  obs::TraceCollector* trace = nullptr;
  PlanStatsMap* op_stats = nullptr;
  /// Per-query byte accounting (always-on when queries run through
  /// Database::Query). Operators charge hash-join builds, aggregate
  /// tables, and materialized outputs; null skips all accounting.
  obs::MemoryAccountant* mem = nullptr;
  /// Push-based pipelined execution (ExecutePipelined): streaming
  /// operator chains run fused over source morsels instead of
  /// materializing every intermediate. Off = the original
  /// operator-at-a-time materializing interpreter.
  bool pipeline = PipelineEnabledDefault();
  /// Optional always-on metrics sink (Database registry): pipelined
  /// execution records pipeline/morsel/streamed-byte counters here.
  obs::MetricsRegistry* metrics = nullptr;
  /// Physical verification of the pipeline decomposition (P-series):
  /// ExecutePipelined checks the PipelinePlan it builds before running
  /// it, failing the query with an Internal status on any violation.
  /// Off by default — Database::Query wires it from QueryOptions.
  bool verify_plans = false;
  /// Optional accumulator for verification accounting (stages / checks /
  /// ns), shared across the per-query verification points.
  analysis::physical::VerifyStats* verify_stats = nullptr;
};

/// Effective rows per morsel for an input of n rows: ctx.morsel_rows
/// capped so parallel-eligible inputs split into several chunks. Depends
/// only on n and ctx sizing knobs — never on num_threads — which is what
/// makes per-chunk results recombined in chunk order identical across
/// thread counts.
size_t MorselRows(size_t n, const ExecContext& ctx);

/// Number of chunks ParallelFor will split n rows into (1 = inline).
/// Callers size per-chunk accumulation state with this.
size_t NumMorsels(size_t n, const ExecContext& ctx);

/// Stable display name for a plan operator ("Scan", "HashJoin", ...).
const char* PlanOpName(LogicalPlan::Kind kind);

using TablePtr = std::shared_ptr<const Table>;

/// Interprets the plan tree bottom-up, materializing each operator's
/// output. Filters, joins (probe side) and aggregations (partial states)
/// parallelize over morsels when ctx.num_threads > 1, scheduled on
/// ctx.pool when one is attached.
Result<TablePtr> ExecutePlan(const LogicalPlan& plan, const ExecContext& ctx);

/// Morsel-driven parallel loop: runs fn(chunk, begin, end) over the
/// NumMorsels(n, ctx) fixed contiguous chunks of [0, n), inline when that
/// is 1. Chunk boundaries depend only on n and ctx sizing (not on thread
/// count or scheduling), so combining per-chunk results by chunk index is
/// deterministic. Returns scheduler stats (morsels == NumMorsels).
sched::PoolRunStats ParallelFor(
    size_t n, const ExecContext& ctx,
    const std::function<void(size_t, size_t, size_t)>& fn);

}  // namespace pytond::engine

#endif  // PYTOND_ENGINE_EXEC_EXECUTOR_H_
