#ifndef PYTOND_ENGINE_EXEC_EXECUTOR_H_
#define PYTOND_ENGINE_EXEC_EXECUTOR_H_

#include <functional>
#include <map>
#include <memory>

#include "engine/plan/logical.h"
#include "storage/catalog.h"

namespace pytond::engine {

/// Execution context: base catalog, materialized CTE temporaries, and the
/// intra-operator parallelism degree.
struct ExecContext {
  const Catalog* catalog = nullptr;
  const std::map<std::string, std::shared_ptr<const Table>>* temps = nullptr;
  int num_threads = 1;
};

using TablePtr = std::shared_ptr<const Table>;

/// Interprets the plan tree bottom-up, materializing each operator's
/// output. Filters, joins (probe side) and aggregations (partial states)
/// parallelize over row ranges when ctx.num_threads > 1.
Result<TablePtr> ExecutePlan(const LogicalPlan& plan, const ExecContext& ctx);

/// Runs fn(thread_id, begin, end) over `threads` contiguous ranges of
/// [0, n). With one thread (or tiny n) runs inline.
void ParallelFor(size_t n, int threads,
                 const std::function<void(int, size_t, size_t)>& fn);

}  // namespace pytond::engine

#endif  // PYTOND_ENGINE_EXEC_EXECUTOR_H_
