#ifndef PYTOND_ENGINE_EXEC_EXEC_INTERNAL_H_
#define PYTOND_ENGINE_EXEC_EXEC_INTERNAL_H_

#include <cstring>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "engine/exec/executor.h"
#include "engine/plan/logical.h"
#include "storage/table.h"

/// Operator kernels shared by the two execution strategies: the original
/// materializing interpreter (executor.cc) and the push-based pipeline
/// runtime (pipeline.cc). Both must produce bit-identical results at one
/// thread — keeping the row-level kernels (key encoding, aggregate cell
/// accumulation/merge/finalize, sort comparisons) in one place is what
/// makes that invariant cheap to hold.
namespace pytond::engine::exec_internal {

/// Wraps a materialized table into the shared-ownership handle operators
/// exchange.
TablePtr WrapTable(Table t);

/// An all-null column of `n` rows (outer-join padding).
Column NullColumn(DataType type, size_t n);

/// Concatenates same-typed columns in order.
Column ConcatColumns(std::vector<Column> parts, DataType type);

/// Evaluates `expr` in parallel morsels over all of `input`; per-chunk
/// columns concatenate in chunk order, so the result equals the
/// sequential evaluation regardless of thread count.
Result<Column> EvalParallel(const BoundExpr& expr, const Table& input,
                            const ExecContext& ctx);

/// Encoded-row key for hashing a set of key columns at `row`.
std::string EncodeKey(const std::vector<Column>& cols, size_t row);

/// Evaluates each expression over the whole input (parallel morsels).
Result<std::vector<Column>> EvalKeyColumns(
    const std::vector<BoundExprPtr>& exprs, const Table& input,
    const ExecContext& ctx);

/// COUNT(DISTINCT ...) accumulator. Fixed-width values — int64, date,
/// bool, and float64 via its bit pattern (-0.0 normalized to +0.0, same
/// as the encoded-row convention) — dedupe in a set of raw uint64 keys:
/// no per-value heap string, an 8-byte hash, and a third of the memory
/// of the old encoded-string set. Strings keep a string set. A cell only
/// ever sees one argument type, so exactly one lane is populated.
class DistinctSet {
 public:
  void Add(const Column& col, size_t row) {
    switch (col.type()) {
      case DataType::kInt64:
      case DataType::kNull:
        fixed_.insert(static_cast<uint64_t>(col.ints()[row]));
        break;
      case DataType::kDate:
        fixed_.insert(
            static_cast<uint64_t>(static_cast<uint32_t>(col.dates()[row])));
        break;
      case DataType::kBool:
        fixed_.insert(col.bools()[row] != 0 ? 1u : 0u);
        break;
      case DataType::kFloat64: {
        double v = col.doubles()[row];
        if (v == 0.0) v = 0.0;  // -0.0 counts as +0.0
        uint64_t bits;
        std::memcpy(&bits, &v, sizeof(bits));
        fixed_.insert(bits);
        break;
      }
      case DataType::kString:
        strings_.insert(col.strings()[row]);
        break;
    }
  }

  /// Folds `other` in, stealing its storage when it is the bigger side:
  /// a distinct *count* is insertion-order independent, so swapping
  /// before the insert loop makes the total merge work proportional to
  /// the smaller partials, not to whichever side happened to arrive
  /// first — the difference between Q16's merge tail scaling with the
  /// supplier universe and scaling with the last morsel.
  void MergeFrom(DistinctSet* other) {
    if (other->fixed_.size() > fixed_.size()) fixed_.swap(other->fixed_);
    fixed_.insert(other->fixed_.begin(), other->fixed_.end());
    if (other->strings_.size() > strings_.size()) {
      strings_.swap(other->strings_);
    }
    strings_.insert(other->strings_.begin(), other->strings_.end());
  }

  size_t size() const { return fixed_.size() + strings_.size(); }

  /// Rough resident bytes for the aggregate memory charge.
  size_t MemoryBytes() const {
    size_t bytes = fixed_.size() * (sizeof(uint64_t) + sizeof(void*) * 2);
    for (const std::string& s : strings_) {
      bytes += s.capacity() + sizeof(std::string) + sizeof(void*) * 2;
    }
    return bytes;
  }

 private:
  std::unordered_set<uint64_t> fixed_;
  std::unordered_set<std::string> strings_;
};

/// One aggregate accumulator (per group, per AggSpec).
struct AggCell {
  double dsum = 0;
  int64_t isum = 0;
  int64_t count = 0;
  bool has_value = false;
  Value extreme;  // min/max
  std::unique_ptr<DistinctSet> distinct;
};

/// Folds input row `row` (indexed into `arg_cols`) into each agg cell.
void AccumulateRow(const LogicalPlan& plan, std::vector<AggCell>* cells,
                   const std::vector<Column>& arg_cols, size_t row);

/// Merges a partial cell into `into` (commutative up to float rounding;
/// callers merge in chunk order to keep rounding deterministic).
void MergeCell(const AggSpec& spec, AggCell* into, AggCell& from);

/// Produces the output value for a finished cell.
Value FinalizeCell(const AggSpec& spec, const AggCell& cell,
                   DataType arg_type);

/// Three-way row comparison over (column index, ascending) keys; nulls
/// sort first.
int CompareRows(const Table& t,
                const std::vector<std::pair<int, bool>>& keys, uint32_t a,
                uint32_t b);

/// Runs one serial pipeline breaker (Sort / Limit / Distinct / Window)
/// over a fully materialized input.
Result<TablePtr> ExecSerialBreaker(const LogicalPlan& plan, TablePtr input);

/// Runs one operator over already-materialized inputs (the materializing
/// interpreter's dispatch, exposed for the pipeline runtime's compute
/// fallback — e.g. cross joins). `stats` (nullable) receives
/// operator-internal actuals.
Result<TablePtr> ExecNodeOnInputs(const LogicalPlan& plan,
                                  const std::vector<TablePtr>& inputs,
                                  const ExecContext& ctx,
                                  OperatorStats* stats);

/// True when the operator's output is a uniquely owned materialization
/// (everything except Scan/Values, which alias catalog tables or CTE
/// temporaries and must not be charged or released by consumers).
bool OwnsOutput(LogicalPlan::Kind kind);

}  // namespace pytond::engine::exec_internal

#endif  // PYTOND_ENGINE_EXEC_EXEC_INTERNAL_H_
