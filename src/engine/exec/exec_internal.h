#ifndef PYTOND_ENGINE_EXEC_EXEC_INTERNAL_H_
#define PYTOND_ENGINE_EXEC_EXEC_INTERNAL_H_

#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "engine/exec/executor.h"
#include "engine/plan/logical.h"
#include "storage/table.h"

/// Operator kernels shared by the two execution strategies: the original
/// materializing interpreter (executor.cc) and the push-based pipeline
/// runtime (pipeline.cc). Both must produce bit-identical results at one
/// thread — keeping the row-level kernels (key encoding, aggregate cell
/// accumulation/merge/finalize, sort comparisons) in one place is what
/// makes that invariant cheap to hold.
namespace pytond::engine::exec_internal {

/// Wraps a materialized table into the shared-ownership handle operators
/// exchange.
TablePtr WrapTable(Table t);

/// An all-null column of `n` rows (outer-join padding).
Column NullColumn(DataType type, size_t n);

/// Concatenates same-typed columns in order.
Column ConcatColumns(std::vector<Column> parts, DataType type);

/// Evaluates `expr` in parallel morsels over all of `input`; per-chunk
/// columns concatenate in chunk order, so the result equals the
/// sequential evaluation regardless of thread count.
Result<Column> EvalParallel(const BoundExpr& expr, const Table& input,
                            const ExecContext& ctx);

/// Encoded-row key for hashing a set of key columns at `row`.
std::string EncodeKey(const std::vector<Column>& cols, size_t row);

/// Evaluates each expression over the whole input (parallel morsels).
Result<std::vector<Column>> EvalKeyColumns(
    const std::vector<BoundExprPtr>& exprs, const Table& input,
    const ExecContext& ctx);

/// One aggregate accumulator (per group, per AggSpec).
struct AggCell {
  double dsum = 0;
  int64_t isum = 0;
  int64_t count = 0;
  bool has_value = false;
  Value extreme;  // min/max
  std::unique_ptr<std::unordered_set<std::string>> distinct;
};

/// Folds input row `row` (indexed into `arg_cols`) into each agg cell.
void AccumulateRow(const LogicalPlan& plan, std::vector<AggCell>* cells,
                   const std::vector<Column>& arg_cols, size_t row);

/// Merges a partial cell into `into` (commutative up to float rounding;
/// callers merge in chunk order to keep rounding deterministic).
void MergeCell(const AggSpec& spec, AggCell* into, AggCell& from);

/// Produces the output value for a finished cell.
Value FinalizeCell(const AggSpec& spec, const AggCell& cell,
                   DataType arg_type);

/// Three-way row comparison over (column index, ascending) keys; nulls
/// sort first.
int CompareRows(const Table& t,
                const std::vector<std::pair<int, bool>>& keys, uint32_t a,
                uint32_t b);

/// Runs one serial pipeline breaker (Sort / Limit / Distinct / Window)
/// over a fully materialized input.
Result<TablePtr> ExecSerialBreaker(const LogicalPlan& plan, TablePtr input);

/// Runs one operator over already-materialized inputs (the materializing
/// interpreter's dispatch, exposed for the pipeline runtime's compute
/// fallback — e.g. cross joins). `stats` (nullable) receives
/// operator-internal actuals.
Result<TablePtr> ExecNodeOnInputs(const LogicalPlan& plan,
                                  const std::vector<TablePtr>& inputs,
                                  const ExecContext& ctx,
                                  OperatorStats* stats);

/// True when the operator's output is a uniquely owned materialization
/// (everything except Scan/Values, which alias catalog tables or CTE
/// temporaries and must not be charged or released by consumers).
bool OwnsOutput(LogicalPlan::Kind kind);

}  // namespace pytond::engine::exec_internal

#endif  // PYTOND_ENGINE_EXEC_EXEC_INTERNAL_H_
