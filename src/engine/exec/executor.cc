#include "engine/exec/executor.h"

#include <algorithm>
#include <atomic>
#include <numeric>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "engine/exec/exec_internal.h"
#include "engine/exec/pipeline.h"

namespace pytond::engine {

size_t MorselRows(size_t n, const ExecContext& ctx) {
  size_t cap = ctx.morsel_rows > 0 ? ctx.morsel_rows : kDefaultMorselRows;
  // Small parallel-eligible inputs shrink morsels (floor 1024 rows) so the
  // split still yields several chunks; n/8 keeps boundaries a function of
  // n alone, preserving thread-count determinism.
  return std::clamp(n / 8, size_t{1024}, cap);
}

size_t NumMorsels(size_t n, const ExecContext& ctx) {
  if (ctx.num_threads <= 1 || n < ctx.min_parallel_rows) return 1;
  size_t m = MorselRows(n, ctx);
  return (n + m - 1) / m;
}

sched::PoolRunStats ParallelFor(
    size_t n, const ExecContext& ctx,
    const std::function<void(size_t, size_t, size_t)>& fn) {
  sched::PoolRunStats stats;
  size_t chunks = NumMorsels(n, ctx);
  if (chunks <= 1) {
    fn(0, 0, n);
    stats.morsels = n > 0 ? 1 : 0;
    return stats;
  }
  size_t morsel = MorselRows(n, ctx);
  if (ctx.pool != nullptr) {
    return ctx.pool->ParallelFor(n, morsel, ctx.num_threads, fn);
  }
  // No shared pool attached (standalone ExecutePlan use): same morsel
  // decomposition on transient threads, each draining a shared cursor.
  stats.morsels = chunks;
  std::atomic<size_t> next{0};
  auto loop = [&] {
    for (;;) {
      size_t c = next.fetch_add(1, std::memory_order_relaxed);
      if (c >= chunks) return;
      size_t begin = c * morsel;
      fn(c, begin, std::min(n, begin + morsel));
    }
  };
  size_t extra = std::min(static_cast<size_t>(ctx.num_threads - 1),
                          chunks - 1);
  std::vector<std::thread> workers;
  workers.reserve(extra);
  for (size_t i = 0; i < extra; ++i) workers.emplace_back(loop);
  loop();
  for (std::thread& w : workers) w.join();
  return stats;
}

// Kernels shared with the pipeline runtime (see exec_internal.h).
namespace exec_internal {

TablePtr WrapTable(Table t) {
  return std::make_shared<const Table>(std::move(t));
}

Column NullColumn(DataType type, size_t n) {
  Column c(type);
  c.Reserve(n);
  for (size_t i = 0; i < n; ++i) c.AppendNull();
  return c;
}

/// Concatenates same-typed columns in order.
Column ConcatColumns(std::vector<Column> parts, DataType type) {
  Column out(type);
  size_t total = 0;
  for (const Column& p : parts) total += p.size();
  out.Reserve(total);
  for (Column& p : parts) out.AppendAll(std::move(p));
  return out;
}

/// Evaluates `expr` in parallel morsels over all of `input`; per-chunk
/// columns concatenate in chunk order, so the result equals the
/// sequential evaluation regardless of thread count.
Result<Column> EvalParallel(const BoundExpr& expr, const Table& input,
                            const ExecContext& ctx) {
  size_t n = input.num_rows();
  size_t nt = NumMorsels(n, ctx);
  if (nt <= 1) return EvaluateExpr(expr, input, 0, n);
  std::vector<Column> parts(nt, Column(expr.type));
  std::vector<Status> errs(nt);
  ParallelFor(n, ctx, [&](size_t chunk, size_t begin, size_t end) {
    auto r = EvaluateExpr(expr, input, begin, end);
    if (r.ok()) parts[chunk] = std::move(*r);
    else errs[chunk] = r.status();
  });
  for (const Status& s : errs) {
    if (!s.ok()) return s;
  }
  return ConcatColumns(std::move(parts), expr.type);
}

/// Encoded-row key for hashing a set of key columns at `row`.
std::string EncodeKey(const std::vector<Column>& cols, size_t row) {
  std::string key;
  key.reserve(cols.size() * 12);
  for (const Column& c : cols) AppendEncodedValue(c, row, &key);
  return key;
}

Result<std::vector<Column>> EvalKeyColumns(
    const std::vector<BoundExprPtr>& exprs, const Table& input,
    const ExecContext& ctx) {
  std::vector<Column> out;
  out.reserve(exprs.size());
  for (const auto& e : exprs) {
    PYTOND_ASSIGN_OR_RETURN(Column c, EvalParallel(*e, input, ctx));
    out.push_back(std::move(c));
  }
  return out;
}

}  // namespace exec_internal

namespace {

using namespace exec_internal;  // NOLINT(build/namespaces)

// ---------------------------------------------------------------- filter
Result<TablePtr> ExecFilter(const LogicalPlan& plan, TablePtr input,
                            const ExecContext& ctx,
                            OperatorStats* stats = nullptr) {
  size_t n = input->num_rows();
  size_t nt = NumMorsels(n, ctx);
  std::vector<std::vector<uint32_t>> sels(nt);
  std::vector<Status> errs(nt);
  sched::PoolRunStats ps =
      ParallelFor(n, ctx, [&](size_t chunk, size_t begin, size_t end) {
        errs[chunk] = EvaluatePredicate(*plan.predicate, *input, begin, end,
                                        &sels[chunk]);
      });
  if (stats != nullptr) {
    stats->batches = ps.morsels;
    stats->steals = ps.steals;
  }
  for (const Status& s : errs) {
    if (!s.ok()) return s;
  }
  std::vector<uint32_t> sel;
  for (auto& part : sels) {
    sel.insert(sel.end(), part.begin(), part.end());
  }
  return WrapTable(input->Gather(sel));
}

// ---------------------------------------------------------------- project
Result<TablePtr> ExecProject(const LogicalPlan& plan, TablePtr input,
                             const ExecContext& ctx) {
  Table out;
  for (size_t i = 0; i < plan.exprs.size(); ++i) {
    PYTOND_ASSIGN_OR_RETURN(Column c,
                            EvalParallel(*plan.exprs[i], *input, ctx));
    PYTOND_RETURN_IF_ERROR(out.AddColumn(plan.names[i], std::move(c)));
  }
  if (plan.exprs.empty()) return WrapTable(Table(plan.schema));
  return WrapTable(std::move(out));
}

// ---------------------------------------------------------------- join
struct HashTable {
  std::unordered_map<std::string, std::vector<uint32_t>> buckets;
};

Result<TablePtr> ExecJoin(const LogicalPlan& plan, TablePtr left,
                          TablePtr right, const ExecContext& ctx,
                          OperatorStats* stats = nullptr) {
  JoinType jt = plan.join_type;

  // Output schema: left cols then right cols (semi/anti: left only).
  auto assemble = [&](const std::vector<uint32_t>& lidx,
                      const std::vector<uint32_t>& ridx,
                      const std::vector<uint32_t>& l_only,
                      const std::vector<uint32_t>& r_only) -> Table {
    // matched pairs + left-unmatched (null right) + right-unmatched.
    Table out;
    size_t extra_l = l_only.size(), extra_r = r_only.size();
    for (size_t c = 0; c < left->num_columns(); ++c) {
      Column col = left->column(c).Gather(lidx);
      if (extra_l) {
        Column lpart = left->column(c).Gather(l_only);
        std::vector<Column> parts;
        parts.push_back(std::move(col));
        parts.push_back(std::move(lpart));
        col = ConcatColumns(std::move(parts), left->column(c).type());
      }
      if (extra_r) {
        std::vector<Column> parts;
        parts.push_back(std::move(col));
        parts.push_back(NullColumn(left->column(c).type(), extra_r));
        col = ConcatColumns(std::move(parts), left->column(c).type());
      }
      Status st = out.AddColumn(left->schema().names[c], std::move(col));
      (void)st;
    }
    for (size_t c = 0; c < right->num_columns(); ++c) {
      Column col = right->column(c).Gather(ridx);
      if (extra_l) {
        std::vector<Column> parts;
        parts.push_back(std::move(col));
        parts.push_back(NullColumn(right->column(c).type(), extra_l));
        col = ConcatColumns(std::move(parts), right->column(c).type());
      }
      if (extra_r) {
        Column rpart = right->column(c).Gather(r_only);
        std::vector<Column> parts;
        parts.push_back(std::move(col));
        parts.push_back(std::move(rpart));
        col = ConcatColumns(std::move(parts), right->column(c).type());
      }
      Status st = out.AddColumn(right->schema().names[c], std::move(col));
      (void)st;
    }
    return out;
  };

  if (jt == JoinType::kCross) {
    std::vector<uint32_t> lidx, ridx;
    size_t ln = left->num_rows(), rn = right->num_rows();
    lidx.reserve(ln * rn);
    ridx.reserve(ln * rn);
    for (size_t i = 0; i < ln; ++i) {
      for (size_t j = 0; j < rn; ++j) {
        lidx.push_back(static_cast<uint32_t>(i));
        ridx.push_back(static_cast<uint32_t>(j));
      }
    }
    Table out = assemble(lidx, ridx, {}, {});
    if (plan.predicate) {
      LogicalPlan f;
      f.kind = LogicalPlan::Kind::kFilter;
      f.predicate = plan.predicate;
      return ExecFilter(f, WrapTable(std::move(out)), ctx);
    }
    return WrapTable(std::move(out));
  }

  // Right joins probe the right side; inner joins may also build on the
  // left when the planner's build-side selection decided so.
  bool swapped = jt == JoinType::kRight ||
                 (jt == JoinType::kInner && plan.build_left);
  TablePtr probe_t = swapped ? right : left;
  TablePtr build_t = swapped ? left : right;

  std::vector<BoundExprPtr> probe_exprs, build_exprs;
  for (const auto& [l, r] : plan.join_keys) {
    probe_exprs.push_back(swapped ? r : l);
    build_exprs.push_back(swapped ? l : r);
  }
  PYTOND_ASSIGN_OR_RETURN(std::vector<Column> probe_keys,
                          EvalKeyColumns(probe_exprs, *probe_t, ctx));
  PYTOND_ASSIGN_OR_RETURN(std::vector<Column> build_keys,
                          EvalKeyColumns(build_exprs, *build_t, ctx));

  // Build.
  HashTable ht;
  size_t bn = build_t->num_rows();
  ht.buckets.reserve(bn * 2);
  for (size_t i = 0; i < bn; ++i) {
    // SQL join semantics: NULL keys never match.
    bool has_null = false;
    for (const Column& c : build_keys) {
      if (!c.IsValid(i)) {
        has_null = true;
        break;
      }
    }
    if (has_null) continue;
    ht.buckets[EncodeKey(build_keys, i)].push_back(static_cast<uint32_t>(i));
  }

  // Transient build-side memory: evaluated key columns plus the hash
  // table (encoded keys, row-id vectors, node overhead). Charged for the
  // duration of the probe, released when the join finishes.
  uint64_t build_bytes = 0;
  if (ctx.mem != nullptr || stats != nullptr) {
    for (const Column& c : build_keys) build_bytes += c.MemoryBytes();
    for (const auto& [key, rows] : ht.buckets) {
      build_bytes += key.size() + rows.capacity() * sizeof(uint32_t) +
                     sizeof(void*) * 4;  // unordered_map node overhead
    }
  }
  obs::ScopedCharge build_charge(ctx.mem, build_bytes);
  if (stats != nullptr) stats->mem_bytes += build_bytes;

  // Probe (parallel morsels over the shared read-only hash table).
  size_t pn = probe_t->num_rows();
  size_t nt = NumMorsels(pn, ctx);
  if (stats != nullptr) {
    stats->build_rows = bn;
    stats->build_buckets = ht.buckets.size();
  }
  struct ProbeOut {
    std::vector<uint32_t> pidx, bidx;      // surviving pairs
    std::vector<uint32_t> p_unmatched;     // probe rows with no match
    std::vector<uint8_t> build_matched;    // per build row (outer tracking)
    Status status;
  };
  std::vector<ProbeOut> outs(nt);
  bool need_build_matched = jt == JoinType::kFull;
  bool need_unmatched = jt == JoinType::kLeft || jt == JoinType::kRight ||
                        jt == JoinType::kFull || jt == JoinType::kAnti;
  bool is_semi_anti = jt == JoinType::kSemi || jt == JoinType::kAnti;

  sched::PoolRunStats ps =
      ParallelFor(pn, ctx, [&](size_t chunk, size_t begin, size_t end) {
    ProbeOut& o = outs[chunk];
    if (need_build_matched) o.build_matched.assign(bn, 0);
    std::vector<uint32_t> cand_p, cand_b;
    for (size_t i = begin; i < end; ++i) {
      bool has_null = false;
      for (const Column& c : probe_keys) {
        if (!c.IsValid(i)) {
          has_null = true;
          break;
        }
      }
      const std::vector<uint32_t>* bucket = nullptr;
      if (!has_null) {
        auto it = ht.buckets.find(EncodeKey(probe_keys, i));
        if (it != ht.buckets.end()) bucket = &it->second;
      }
      if (bucket == nullptr) {
        if (need_unmatched || is_semi_anti) {
          o.p_unmatched.push_back(static_cast<uint32_t>(i));
        }
        continue;
      }
      for (uint32_t b : *bucket) {
        cand_p.push_back(static_cast<uint32_t>(i));
        cand_b.push_back(b);
      }
    }
    // Residual filtering over candidate pairs.
    if (plan.predicate && !cand_p.empty()) {
      // Build pair table in left/right order for the residual.
      Table pair;
      const Table& lt = swapped ? *build_t : *probe_t;
      const Table& rt = swapped ? *probe_t : *build_t;
      const std::vector<uint32_t>& li = swapped ? cand_b : cand_p;
      const std::vector<uint32_t>& ri = swapped ? cand_p : cand_b;
      for (size_t c = 0; c < lt.num_columns(); ++c) {
        std::string name = "l";
        name += std::to_string(c);
        Status st = pair.AddColumn(name, lt.column(c).Gather(li));
        (void)st;
      }
      for (size_t c = 0; c < rt.num_columns(); ++c) {
        std::string name = "r";
        name += std::to_string(c);
        Status st = pair.AddColumn(name, rt.column(c).Gather(ri));
        (void)st;
      }
      std::vector<uint32_t> keep;
      o.status = EvaluatePredicate(*plan.predicate, pair, 0, pair.num_rows(),
                                   &keep);
      if (!o.status.ok()) return;
      std::vector<uint32_t> fp, fb;
      fp.reserve(keep.size());
      fb.reserve(keep.size());
      for (uint32_t k : keep) {
        fp.push_back(cand_p[k]);
        fb.push_back(cand_b[k]);
      }
      cand_p = std::move(fp);
      cand_b = std::move(fb);
    }
    if (is_semi_anti) {
      // Collapse pairs into per-probe-row match flags.
      std::unordered_set<uint32_t> matched(cand_p.begin(), cand_p.end());
      for (size_t i = begin; i < end; ++i) {
        bool m = matched.count(static_cast<uint32_t>(i)) > 0;
        if ((jt == JoinType::kSemi) == m) {
          // Reuse pidx as the emit list for semi/anti.
          if (m || jt == JoinType::kAnti) {
            // For anti we must also skip rows already in p_unmatched
            // (they had no bucket) -- they are unmatched, so they pass.
          }
          o.pidx.push_back(static_cast<uint32_t>(i));
        }
      }
      // p_unmatched rows had no bucket: for anti they pass, for semi fail.
      // They were never added to cand_p, so the loop above already treated
      // them as unmatched; clear the side list.
      o.p_unmatched.clear();
      return;
    }
    if (need_unmatched && plan.predicate) {
      // Rows whose candidates were all filtered out become unmatched.
      std::unordered_set<uint32_t> matched(cand_p.begin(), cand_p.end());
      std::vector<uint32_t> um;
      for (size_t i = begin; i < end; ++i) {
        if (!matched.count(static_cast<uint32_t>(i))) {
          um.push_back(static_cast<uint32_t>(i));
        }
      }
      o.p_unmatched = std::move(um);
    }
    if (need_build_matched) {
      for (uint32_t b : cand_b) o.build_matched[b] = 1;
    }
    o.pidx = std::move(cand_p);
    o.bidx = std::move(cand_b);
  });
  if (stats != nullptr) {
    stats->batches = ps.morsels;
    stats->steals = ps.steals;
  }

  for (const ProbeOut& o : outs) {
    if (!o.status.ok()) return o.status;
  }

  std::vector<uint32_t> pidx, bidx, p_unmatched;
  std::vector<uint8_t> build_matched(need_build_matched ? bn : 0, 0);
  for (const ProbeOut& o : outs) {
    pidx.insert(pidx.end(), o.pidx.begin(), o.pidx.end());
    bidx.insert(bidx.end(), o.bidx.begin(), o.bidx.end());
    p_unmatched.insert(p_unmatched.end(), o.p_unmatched.begin(),
                       o.p_unmatched.end());
    if (need_build_matched && !o.build_matched.empty()) {
      for (size_t i = 0; i < bn; ++i) build_matched[i] |= o.build_matched[i];
    }
  }

  if (is_semi_anti) {
    return WrapTable(left->Gather(pidx));
  }

  if (jt == JoinType::kInner) {
    // With swapped sides, pidx indexes the right table and bidx the left.
    return swapped ? WrapTable(assemble(bidx, pidx, {}, {}))
                   : WrapTable(assemble(pidx, bidx, {}, {}));
  }
  if (jt == JoinType::kLeft) {
    return WrapTable(assemble(pidx, bidx, p_unmatched, {}));
  }
  if (jt == JoinType::kRight) {
    // Internally probe=right, build=left; output order is left,right.
    return WrapTable(assemble(bidx, pidx, {}, p_unmatched));
  }
  // Full outer.
  std::vector<uint32_t> b_unmatched;
  for (size_t i = 0; i < bn; ++i) {
    if (!build_matched[i]) b_unmatched.push_back(static_cast<uint32_t>(i));
  }
  return WrapTable(assemble(pidx, bidx, p_unmatched, b_unmatched));
}

}  // namespace

// ---------------------------------------------------------------- aggregate
namespace exec_internal {

void AccumulateRow(const LogicalPlan& plan, std::vector<AggCell>* cells,
                   const std::vector<Column>& arg_cols, size_t row) {
  for (size_t a = 0; a < plan.aggs.size(); ++a) {
    const AggSpec& spec = plan.aggs[a];
    AggCell& cell = (*cells)[a];
    if (spec.op == AggOp::kCountStar) {
      ++cell.count;
      continue;
    }
    const Column& arg = arg_cols[a];
    if (!arg.IsValid(row)) continue;
    switch (spec.op) {
      case AggOp::kCount:
        ++cell.count;
        break;
      case AggOp::kCountDistinct:
        if (!cell.distinct) cell.distinct = std::make_unique<DistinctSet>();
        cell.distinct->Add(arg, row);
        break;
      case AggOp::kSum:
      case AggOp::kAvg:
        if (arg.type() == DataType::kInt64) {
          cell.isum += arg.ints()[row];
        } else {
          cell.dsum += arg.Get(row).ToDouble();
        }
        ++cell.count;
        cell.has_value = true;
        break;
      case AggOp::kMin:
      case AggOp::kMax: {
        Value v = arg.Get(row);
        if (!cell.has_value) {
          cell.extreme = v;
          cell.has_value = true;
        } else {
          bool less;
          if (v.type() == DataType::kString) {
            less = v.AsString() < cell.extreme.AsString();
          } else {
            less = v.ToDouble() < cell.extreme.ToDouble();
          }
          if ((spec.op == AggOp::kMin) == less) cell.extreme = v;
        }
        break;
      }
      case AggOp::kCountStar:
        break;
    }
  }
}

void MergeCell(const AggSpec& spec, AggCell* into, AggCell& from) {
  switch (spec.op) {
    case AggOp::kCountStar:
    case AggOp::kCount:
      into->count += from.count;
      break;
    case AggOp::kCountDistinct:
      if (from.distinct) {
        if (!into->distinct) {
          into->distinct = std::move(from.distinct);
        } else {
          into->distinct->MergeFrom(from.distinct.get());
        }
      }
      break;
    case AggOp::kSum:
    case AggOp::kAvg:
      into->dsum += from.dsum;
      into->isum += from.isum;
      into->count += from.count;
      into->has_value |= from.has_value;
      break;
    case AggOp::kMin:
    case AggOp::kMax:
      if (from.has_value) {
        if (!into->has_value) {
          into->extreme = from.extreme;
          into->has_value = true;
        } else {
          bool less;
          if (from.extreme.type() == DataType::kString) {
            less = from.extreme.AsString() < into->extreme.AsString();
          } else {
            less = from.extreme.ToDouble() < into->extreme.ToDouble();
          }
          if ((spec.op == AggOp::kMin) == less) into->extreme = from.extreme;
        }
      }
      break;
  }
}

Value FinalizeCell(const AggSpec& spec, const AggCell& cell,
                   DataType arg_type) {
  switch (spec.op) {
    case AggOp::kCountStar:
    case AggOp::kCount:
      return Value::Int64(cell.count);
    case AggOp::kCountDistinct:
      return Value::Int64(cell.distinct ? static_cast<int64_t>(
                                              cell.distinct->size())
                                        : 0);
    case AggOp::kSum:
      if (!cell.has_value) return Value::Null();
      if (arg_type == DataType::kInt64) return Value::Int64(cell.isum);
      return Value::Float64(cell.dsum);
    case AggOp::kAvg: {
      if (cell.count == 0) return Value::Null();
      double total = cell.dsum + static_cast<double>(cell.isum);
      return Value::Float64(total / static_cast<double>(cell.count));
    }
    case AggOp::kMin:
    case AggOp::kMax:
      return cell.has_value ? cell.extreme : Value::Null();
  }
  return Value::Null();
}

}  // namespace exec_internal

namespace {

struct GroupState {
  uint32_t representative;  // row index of first occurrence
  std::vector<AggCell> cells;
};

Result<TablePtr> ExecAggregate(const LogicalPlan& plan, TablePtr input,
                               const ExecContext& ctx,
                               OperatorStats* stats = nullptr) {
  PYTOND_ASSIGN_OR_RETURN(std::vector<Column> keys,
                          EvalKeyColumns(plan.group_exprs, *input, ctx));
  std::vector<Column> args(plan.aggs.size());
  std::vector<DataType> arg_types(plan.aggs.size(), DataType::kInt64);
  for (size_t a = 0; a < plan.aggs.size(); ++a) {
    if (plan.aggs[a].arg) {
      PYTOND_ASSIGN_OR_RETURN(args[a],
                              EvalParallel(*plan.aggs[a].arg, *input, ctx));
      arg_types[a] = args[a].type();
    }
  }

  size_t n = input->num_rows();
  size_t nt = NumMorsels(n, ctx);

  // Per-morsel partial states, merged below in chunk order — the merge
  // order (and thus float rounding) is identical for every thread count.
  using LocalMap = std::unordered_map<std::string, GroupState>;
  std::vector<LocalMap> locals(nt);
  sched::PoolRunStats ps =
      ParallelFor(n, ctx, [&](size_t chunk, size_t begin, size_t end) {
    LocalMap& m = locals[chunk];
    for (size_t i = begin; i < end; ++i) {
      std::string key = EncodeKey(keys, i);
      auto [it, inserted] = m.try_emplace(std::move(key));
      if (inserted) {
        it->second.representative = static_cast<uint32_t>(i);
        it->second.cells.resize(plan.aggs.size());
      }
      AccumulateRow(plan, &it->second.cells, args, i);
    }
  });
  if (stats != nullptr) {
    stats->batches = ps.morsels;
    stats->steals = ps.steals;
  }

  // Merge per-morsel maps in chunk order.
  LocalMap& global = locals[0];
  for (size_t m = 1; m < locals.size(); ++m) {
    for (auto& [key, state] : locals[m]) {
      auto it = global.find(key);
      if (it == global.end()) {
        global.emplace(key, std::move(state));
      } else {
        for (size_t a = 0; a < plan.aggs.size(); ++a) {
          MergeCell(plan.aggs[a], &it->second.cells[a], state.cells[a]);
        }
      }
    }
  }

  // Global aggregate over empty input still yields one row.
  if (plan.group_exprs.empty() && global.empty()) {
    GroupState g;
    g.representative = 0;
    g.cells.resize(plan.aggs.size());
    global.emplace("", std::move(g));
  }

  // Transient aggregate-table memory: encoded group keys plus per-group
  // cell state, released once the output is assembled.
  uint64_t agg_bytes = 0;
  if (ctx.mem != nullptr || stats != nullptr) {
    for (const auto& [key, state] : global) {
      agg_bytes += key.size() + sizeof(GroupState) +
                   state.cells.size() * sizeof(AggCell) +
                   sizeof(void*) * 4;  // unordered_map node overhead
      for (const AggCell& cell : state.cells) {
        if (cell.distinct) agg_bytes += cell.distinct->MemoryBytes();
      }
    }
  }
  obs::ScopedCharge agg_charge(ctx.mem, agg_bytes);
  if (stats != nullptr) stats->mem_bytes += agg_bytes;

  // Assemble output: group key columns + aggregate columns.
  Table out(plan.schema);
  std::vector<uint32_t> reps;
  reps.reserve(global.size());
  std::vector<const GroupState*> states;
  states.reserve(global.size());
  for (const auto& [key, state] : global) {
    reps.push_back(state.representative);
    states.push_back(&state);
  }
  for (size_t k = 0; k < keys.size(); ++k) {
    out.column(k) = keys[k].Gather(reps);
  }
  for (size_t a = 0; a < plan.aggs.size(); ++a) {
    Column& col = out.column(keys.size() + a);
    col.Reserve(states.size());
    for (const GroupState* g : states) {
      col.Append(FinalizeCell(plan.aggs[a], g->cells[a], arg_types[a]));
    }
  }
  return WrapTable(std::move(out));
}

}  // namespace

// ---------------------------------------------------------------- sort
namespace exec_internal {

int CompareRows(const Table& t,
                const std::vector<std::pair<int, bool>>& keys, uint32_t a,
                uint32_t b) {
  for (const auto& [col, asc] : keys) {
    const Column& c = t.column(col);
    bool va = c.IsValid(a), vb = c.IsValid(b);
    int cmp = 0;
    if (!va || !vb) {
      cmp = static_cast<int>(vb) - static_cast<int>(va);  // nulls first
    } else {
      switch (c.type()) {
        case DataType::kString: {
          cmp = c.strings()[a].compare(c.strings()[b]);
          break;
        }
        case DataType::kInt64:
        case DataType::kNull:
          cmp = c.ints()[a] < c.ints()[b] ? -1 : (c.ints()[a] > c.ints()[b]);
          break;
        case DataType::kFloat64:
          cmp = c.doubles()[a] < c.doubles()[b]
                    ? -1
                    : (c.doubles()[a] > c.doubles()[b]);
          break;
        case DataType::kBool:
          cmp = static_cast<int>(c.bools()[a]) - static_cast<int>(c.bools()[b]);
          break;
        case DataType::kDate:
          cmp = c.dates()[a] < c.dates()[b] ? -1
                                            : (c.dates()[a] > c.dates()[b]);
          break;
      }
    }
    if (cmp != 0) return asc ? cmp : -cmp;
  }
  return 0;
}

}  // namespace exec_internal

namespace {

Result<TablePtr> ExecSort(const LogicalPlan& plan, TablePtr input) {
  std::vector<uint32_t> idx(input->num_rows());
  std::iota(idx.begin(), idx.end(), 0);
  std::stable_sort(idx.begin(), idx.end(), [&](uint32_t a, uint32_t b) {
    return CompareRows(*input, plan.sort_keys, a, b) < 0;
  });
  return WrapTable(input->Gather(idx));
}

// ---------------------------------------------------------------- misc
Result<TablePtr> ExecDistinct(TablePtr input) {
  std::unordered_set<std::string> seen;
  std::vector<uint32_t> keep;
  size_t n = input->num_rows();
  std::vector<const Column*> cols;
  for (size_t c = 0; c < input->num_columns(); ++c) {
    cols.push_back(&input->column(c));
  }
  for (size_t i = 0; i < n; ++i) {
    std::string key;
    for (const Column* c : cols) AppendEncodedValue(*c, i, &key);
    if (seen.insert(std::move(key)).second) {
      keep.push_back(static_cast<uint32_t>(i));
    }
  }
  return WrapTable(input->Gather(keep));
}

Result<TablePtr> ExecWindow(const LogicalPlan& plan, TablePtr input) {
  size_t n = input->num_rows();
  std::vector<uint32_t> idx(n);
  std::iota(idx.begin(), idx.end(), 0);
  std::stable_sort(idx.begin(), idx.end(), [&](uint32_t a, uint32_t b) {
    return CompareRows(*input, plan.window_order, a, b) < 0;
  });
  std::vector<int64_t> rownum(n);
  for (size_t r = 0; r < n; ++r) {
    rownum[idx[r]] = static_cast<int64_t>(r) + 1;
  }
  Table out = input->Gather([&] {
    std::vector<uint32_t> all(n);
    std::iota(all.begin(), all.end(), 0);
    return all;
  }());
  PYTOND_RETURN_IF_ERROR(
      out.AddColumn(plan.window_name, Column::Int64(std::move(rownum))));
  return WrapTable(std::move(out));
}

/// Runs one operator over already-materialized inputs. `stats` (nullable)
/// receives operator-internal actuals (batches, hash-build sizes).
Result<TablePtr> ExecNode(const LogicalPlan& plan,
                          const std::vector<TablePtr>& inputs,
                          const ExecContext& ctx, OperatorStats* stats) {
  switch (plan.kind) {
    case LogicalPlan::Kind::kScan: {
      if (ctx.temps != nullptr) {
        auto it = ctx.temps->find(plan.table_name);
        if (it != ctx.temps->end()) return it->second;
      }
      const Table* t = ctx.catalog->GetTable(plan.table_name);
      if (t == nullptr) {
        return Status::NotFound("table '" + plan.table_name + "'");
      }
      return TablePtr(t, [](const Table*) {});  // non-owning
    }
    case LogicalPlan::Kind::kValues:
      return TablePtr(plan.values);
    case LogicalPlan::Kind::kFilter:
      return ExecFilter(plan, inputs[0], ctx, stats);
    case LogicalPlan::Kind::kProject:
      return ExecProject(plan, inputs[0], ctx);
    case LogicalPlan::Kind::kJoin:
      return ExecJoin(plan, inputs[0], inputs[1], ctx, stats);
    case LogicalPlan::Kind::kAggregate:
      return ExecAggregate(plan, inputs[0], ctx, stats);
    case LogicalPlan::Kind::kSort:
      return ExecSort(plan, inputs[0]);
    case LogicalPlan::Kind::kLimit: {
      const TablePtr& in = inputs[0];
      size_t n = std::min<size_t>(in->num_rows(),
                                  static_cast<size_t>(plan.limit));
      std::vector<uint32_t> idx(n);
      std::iota(idx.begin(), idx.end(), 0);
      return WrapTable(in->Gather(idx));
    }
    case LogicalPlan::Kind::kDistinct:
      return ExecDistinct(inputs[0]);
    case LogicalPlan::Kind::kWindow:
      return ExecWindow(plan, inputs[0]);
  }
  return Status::Internal("unreachable plan kind");
}

}  // namespace

namespace exec_internal {

Result<TablePtr> ExecSerialBreaker(const LogicalPlan& plan, TablePtr input) {
  switch (plan.kind) {
    case LogicalPlan::Kind::kSort:
      return ExecSort(plan, std::move(input));
    case LogicalPlan::Kind::kDistinct:
      return ExecDistinct(std::move(input));
    case LogicalPlan::Kind::kWindow:
      return ExecWindow(plan, std::move(input));
    case LogicalPlan::Kind::kLimit: {
      size_t n = std::min<size_t>(input->num_rows(),
                                  static_cast<size_t>(plan.limit));
      std::vector<uint32_t> idx(n);
      std::iota(idx.begin(), idx.end(), 0);
      return WrapTable(input->Gather(idx));
    }
    default:
      return Status::Internal("not a serial pipeline breaker: " +
                              std::string(PlanOpName(plan.kind)));
  }
}

Result<TablePtr> ExecNodeOnInputs(const LogicalPlan& plan,
                                  const std::vector<TablePtr>& inputs,
                                  const ExecContext& ctx,
                                  OperatorStats* stats) {
  return ExecNode(plan, inputs, ctx, stats);
}

bool OwnsOutput(LogicalPlan::Kind kind) {
  return kind != LogicalPlan::Kind::kScan &&
         kind != LogicalPlan::Kind::kValues;
}

}  // namespace exec_internal

const char* PlanOpName(LogicalPlan::Kind kind) {
  switch (kind) {
    case LogicalPlan::Kind::kScan: return "Scan";
    case LogicalPlan::Kind::kValues: return "Values";
    case LogicalPlan::Kind::kFilter: return "Filter";
    case LogicalPlan::Kind::kProject: return "Project";
    case LogicalPlan::Kind::kJoin: return "HashJoin";
    case LogicalPlan::Kind::kAggregate: return "Aggregate";
    case LogicalPlan::Kind::kSort: return "Sort";
    case LogicalPlan::Kind::kLimit: return "Limit";
    case LogicalPlan::Kind::kDistinct: return "Distinct";
    case LogicalPlan::Kind::kWindow: return "Window";
  }
  return "?";
}

namespace {

using exec_internal::OwnsOutput;

/// Charges this operator's materialized output and releases the child
/// outputs it just consumed — child intermediates die with the parent's
/// input vector, so query `current` tracks true co-residency and `peak`
/// the worst overlap (output + inputs + transient builds all live here).
uint64_t AccountNodeMemory(const LogicalPlan& plan,
                           const std::vector<TablePtr>& inputs,
                           const TablePtr& output,
                           obs::MemoryAccountant* mem) {
  uint64_t out_bytes = 0;
  if (OwnsOutput(plan.kind)) {
    out_bytes = output->MemoryBytes();
    mem->Charge(out_bytes);
  }
  for (size_t i = 0; i < inputs.size(); ++i) {
    if (OwnsOutput(plan.children[i]->kind)) {
      mem->Release(inputs[i]->MemoryBytes());
    }
  }
  return out_bytes;
}

}  // namespace

Result<TablePtr> ExecutePlan(const LogicalPlan& plan, const ExecContext& ctx) {
  if (ctx.pipeline) return ExecutePipelined(plan, ctx);
  std::vector<TablePtr> inputs;
  inputs.reserve(plan.children.size());
  // Uninstrumented fast path: the only overhead vs. the pre-obs executor
  // is this null check (plus per-operator — never per-row — accounting
  // when the always-on memory accountant is attached).
  if (ctx.trace == nullptr && ctx.op_stats == nullptr) {
    for (const PlanPtr& c : plan.children) {
      PYTOND_ASSIGN_OR_RETURN(TablePtr in, ExecutePlan(*c, ctx));
      inputs.push_back(std::move(in));
    }
    Result<TablePtr> result = ExecNode(plan, inputs, ctx, nullptr);
    if (result.ok() && ctx.mem != nullptr) {
      AccountNodeMemory(plan, inputs, *result, ctx.mem);
    }
    return result;
  }

  // Span opens before the children so the trace nests like the plan tree
  // (durations inclusive); OperatorStats::time_ns measures self time only.
  std::string label = PlanOpName(plan.kind);
  if (plan.kind == LogicalPlan::Kind::kScan) label += ":" + plan.table_name;
  obs::Span span(ctx.trace, label, "operator");
  for (const PlanPtr& c : plan.children) {
    PYTOND_ASSIGN_OR_RETURN(TablePtr in, ExecutePlan(*c, ctx));
    inputs.push_back(std::move(in));
  }
  OperatorStats stats;
  for (const TablePtr& in : inputs) stats.rows_in += in->num_rows();
  uint64_t t0 = obs::NowNs();
  Result<TablePtr> result = ExecNode(plan, inputs, ctx, &stats);
  stats.time_ns = obs::NowNs() - t0;
  if (result.ok()) {
    stats.rows_out = (*result)->num_rows();
    if (ctx.mem != nullptr) {
      stats.mem_bytes += AccountNodeMemory(plan, inputs, *result, ctx.mem);
    } else if (OwnsOutput(plan.kind)) {
      stats.mem_bytes += (*result)->MemoryBytes();
    }
  }
  span.AddCounter("rows_in", static_cast<int64_t>(stats.rows_in));
  span.AddCounter("rows_out", static_cast<int64_t>(stats.rows_out));
  if (stats.mem_bytes > 0) {
    span.AddCounter("mem_bytes", static_cast<int64_t>(stats.mem_bytes));
  }
  if (stats.batches > 0) {
    span.AddCounter("batches", static_cast<int64_t>(stats.batches));
  }
  if (stats.steals > 0) {
    span.AddCounter("steals", static_cast<int64_t>(stats.steals));
  }
  if (plan.kind == LogicalPlan::Kind::kJoin) {
    span.AddCounter("build_rows", static_cast<int64_t>(stats.build_rows));
    span.AddCounter("build_buckets",
                    static_cast<int64_t>(stats.build_buckets));
  }
  if (plan.kind == LogicalPlan::Kind::kFilter && stats.rows_in > 0) {
    // Selectivity in basis points (rows_out / rows_in * 10000).
    span.AddCounter("selectivity_bp",
                    static_cast<int64_t>(stats.rows_out * 10000 /
                                         stats.rows_in));
  }
  if (ctx.op_stats != nullptr) (*ctx.op_stats)[&plan] = stats;
  return result;
}

}  // namespace pytond::engine
