#ifndef PYTOND_ENGINE_EXEC_PIPELINE_H_
#define PYTOND_ENGINE_EXEC_PIPELINE_H_

#include <cstdint>
#include <vector>

#include "engine/exec/executor.h"
#include "engine/plan/logical.h"

/// Push-based pipelined execution (DESIGN.md §13).
///
/// A plan tree is decomposed into pipelines at its *breakers* — operators
/// that must see their whole input before producing output (aggregate,
/// sort, distinct, window, limit, and every hash-join build side). Each
/// pipeline owns a morsel source (a scan, a VALUES table, or another
/// pipeline's materialized output), a chain of streaming operators
/// (filter, project, hash-join probe) that transform one chunk in place
/// without materializing between operators, and a sink that merges
/// per-worker thread-local state into the pipeline's single materialized
/// output. Pipelines execute in dependency order on the shared
/// work-stealing pool; chunk boundaries depend only on the source row
/// count, so results are bit-identical across thread counts.
namespace pytond::engine {

/// What a pipeline's sink does with the chunks its workers push.
enum class PipelineSinkKind {
  /// Collect chunks in morsel order; the concatenation is the pipeline's
  /// output (final results, hash-join build sides).
  kResult,
  /// Thread-local aggregation hash tables, merged in morsel order and
  /// finalized into the output table (the breaker is a kAggregate node).
  kAggregate,
  /// Collect chunks, then run a serial breaker (sort / distinct / window
  /// / limit) over the concatenation.
  kSerial,
  /// No streaming at all: run the breaker node through the materializing
  /// interpreter over its dependencies' outputs (cross joins).
  kCompute,
};

/// One pipeline of the decomposed plan. Plan-node pointers reference the
/// bound plan tree, which outlives execution.
struct PipelineDesc {
  int id = 0;
  /// Morsel source: a kScan/kValues leaf, or null when the source is
  /// another pipeline's output (`source_pipeline`).
  const LogicalPlan* source = nullptr;
  int source_pipeline = -1;
  /// Streaming operators in push order (kFilter / kProject / kJoin probe).
  std::vector<const LogicalPlan*> ops;
  /// Parallel to `ops`: the pipeline whose output is the hash-join build
  /// side for a kJoin probe op, -1 for non-join ops.
  std::vector<int> op_build_inputs;
  /// Parallel to `ops`: backward-liveness output mask per chain position
  /// (1 = live, 0 = dead; empty = fully live, nothing to drop). Computed
  /// at build time so the whole decomposition — late-materialization
  /// masks included — is a verifiable artifact before anything executes;
  /// masked ops leave dead columns as typed empty placeholders.
  std::vector<std::vector<uint8_t>> op_masks;
  /// The breaker this pipeline feeds (kAggregate/kSerial/kCompute sinks);
  /// null for kResult pipelines.
  const LogicalPlan* breaker = nullptr;
  PipelineSinkKind sink = PipelineSinkKind::kResult;
  /// kCompute only: producing pipelines of the breaker's children, in
  /// child order.
  std::vector<int> inputs;
  /// Every pipeline whose output this one reads (build sides, the source
  /// pipeline, compute inputs). All ids are smaller than `id`, so running
  /// pipelines in index order satisfies every dependency.
  std::vector<int> deps;
  /// The plan node whose output this pipeline materializes.
  const LogicalPlan* output = nullptr;
};

/// A whole plan decomposed into pipelines, topologically ordered (deps
/// before dependents; the last pipeline produces the query result).
struct PipelinePlan {
  std::vector<PipelineDesc> pipelines;
};

/// Splits `plan` at its pipeline breakers. Pure structure — nothing is
/// executed — so tests can assert breaker placement and dependency edges
/// directly.
PipelinePlan BuildPipelines(const LogicalPlan& plan);

/// Executes `plan` via pipeline decomposition: builds the PipelinePlan,
/// runs each pipeline's morsels through its operator chain on the shared
/// pool (thread-local sink state, merged in morsel order), and returns
/// the root pipeline's output. Observability parity with the
/// materializing path: per-operator OperatorStats (plus pipeline_id and
/// streamed_bytes), synthesized per-operator spans, per-pipeline
/// "pipeline" spans, metrics counters, and memory accounting all flow
/// through the same ExecContext hooks.
Result<TablePtr> ExecutePipelined(const LogicalPlan& plan,
                                  const ExecContext& ctx);

}  // namespace pytond::engine

#endif  // PYTOND_ENGINE_EXEC_PIPELINE_H_
