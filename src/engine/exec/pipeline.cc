#include "engine/exec/pipeline.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <memory>
#include <numeric>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "analysis/physical/physical.h"
#include "engine/exec/exec_internal.h"
#include "obs/metrics/metrics.h"

namespace pytond::engine {

bool VerifyPlansDefault() { return analysis::physical::VerifyDefault(); }

bool PipelineEnabledDefault() {
  static const bool enabled = [] {
    const char* v = std::getenv("TOND_PIPELINE");
    if (v == nullptr) return true;
    std::string s(v);
    return !(s == "0" || s == "off" || s == "OFF" || s == "false" ||
             s == "FALSE");
  }();
  return enabled;
}

namespace {

using exec_internal::AccumulateRow;
using exec_internal::AggCell;
using exec_internal::ConcatColumns;
using exec_internal::EncodeKey;
using exec_internal::EvalKeyColumns;
using exec_internal::ExecNodeOnInputs;
using exec_internal::ExecSerialBreaker;
using exec_internal::FinalizeCell;
using exec_internal::MergeCell;
using exec_internal::NullColumn;
using exec_internal::WrapTable;

// ===================================================================
// Pipeline builder
// ===================================================================

/// Below this much chain work (source rows × chain depth) a pipeline
/// collapses to a single inline morsel: pool dispatch, per-morsel
/// expression batching, and the slot merge each cost more than the
/// morsels themselves. The collapse depends only on the plan and n,
/// never the thread count, so thread-count determinism is preserved.
constexpr size_t kPipelineInlineRows = 32768;

/// Column-parallel sink gathers only pay off with real hardware
/// parallelism; on a single-core host pool dispatch is pure overhead.
const bool kMultiCore = std::thread::hardware_concurrency() > 1;

bool IsStreamingOp(LogicalPlan::Kind kind) {
  return kind == LogicalPlan::Kind::kFilter ||
         kind == LogicalPlan::Kind::kProject;
}

bool IsLeaf(LogicalPlan::Kind kind) {
  return kind == LogicalPlan::Kind::kScan ||
         kind == LogicalPlan::Kind::kValues;
}

/// True for joins the pipeline runtime streams on the probe side (the
/// build side becomes a dependency pipeline). Cross joins fall back to
/// the materializing interpreter (kCompute sink).
bool IsProbeJoin(const LogicalPlan& plan) {
  return plan.kind == LogicalPlan::Kind::kJoin &&
         plan.join_type != JoinType::kCross;
}

/// Backward liveness over one pipeline's chain: an aggregate sink reads
/// only its group/argument columns; a projection reads only the columns
/// its live expressions name. Each op's mask covers its *output* columns
/// — anything downstream (later ops + the sink) still reads — so masked
/// ops can leave dead columns as typed empty placeholders instead of
/// gathering them (late materialization). Result and serial sinks
/// consume full rows, so their chains stay fully live unless a
/// projection narrows them. Runs at build time (Push) so the masks are
/// part of the verifiable PipelinePlan.
void ComputeOpMasks(PipelineDesc* d) {
  d->op_masks.assign(d->ops.size(), {});
  if (d->ops.empty() || d->sink == PipelineSinkKind::kCompute) return;
  // Decomposition is pure structure (the builder never reads
  // expressions), but liveness isn't: skip masking on trees whose ops
  // lack their expressions — e.g. the structural plans the builder unit
  // tests hand-assemble. Missing masks just mean "everything live".
  for (const LogicalPlan* opn : d->ops) {
    if (opn->kind == LogicalPlan::Kind::kFilter && !opn->predicate) return;
    if (opn->kind == LogicalPlan::Kind::kProject &&
        opn->exprs.size() != opn->schema.num_columns()) {
      return;
    }
    if (opn->kind == LogicalPlan::Kind::kJoin && opn->join_keys.empty() &&
        !opn->predicate) {
      return;
    }
  }
  auto refs_into = [](const BoundExpr& e, std::vector<uint8_t>* m) {
    std::vector<int> cols;
    e.CollectColumns(&cols);
    for (int c : cols) {
      if (c >= 0 && static_cast<size_t>(c) < m->size()) (*m)[c] = 1;
    }
  };
  std::vector<uint8_t> after(d->ops.back()->schema.num_columns(), 1);
  if (d->sink == PipelineSinkKind::kAggregate) {
    std::fill(after.begin(), after.end(), 0);
    for (const BoundExprPtr& e : d->breaker->group_exprs) {
      refs_into(*e, &after);
    }
    for (const auto& a : d->breaker->aggs) {
      if (a.arg) refs_into(*a.arg, &after);
    }
  }
  for (size_t i = d->ops.size(); i-- > 0;) {
    const LogicalPlan* opn = d->ops[i];
    std::vector<uint8_t> omask = std::move(after);
    switch (opn->kind) {
      case LogicalPlan::Kind::kFilter:
        after = omask;
        refs_into(*opn->predicate, &after);
        break;
      case LogicalPlan::Kind::kProject:
        after.assign(opn->children[0]->schema.num_columns(), 0);
        for (size_t j = 0; j < opn->exprs.size(); ++j) {
          if (omask[j]) refs_into(*opn->exprs[j], &after);
        }
        break;
      case LogicalPlan::Kind::kJoin: {
        JoinType jt = opn->join_type;
        bool swapped = jt == JoinType::kRight ||
                       (jt == JoinType::kInner && opn->build_left);
        size_t lsz = opn->children[0]->schema.num_columns();
        size_t psz = opn->children[swapped ? 1 : 0]->schema.num_columns();
        size_t off = swapped ? lsz : 0;  // probe block within l++r
        if (jt == JoinType::kFull) {
          // Finish() emits full build rows; keep everything live.
          after.assign(psz, 1);
          std::fill(omask.begin(), omask.end(), 1);
          break;
        }
        if (jt == JoinType::kSemi || jt == JoinType::kAnti) {
          after = omask;  // output schema == probe schema
        } else {
          after.assign(psz, 0);
          for (size_t c = 0; c < psz; ++c) {
            if (omask[off + c]) after[c] = 1;
          }
        }
        for (const auto& [l, r] : opn->join_keys) {
          refs_into(*(swapped ? r : l), &after);
        }
        if (opn->predicate) {
          std::vector<int> cols;
          opn->predicate->CollectColumns(&cols);
          for (int c : cols) {
            size_t cc = static_cast<size_t>(c);
            if (c >= 0 && cc >= off && cc < off + psz) after[cc - off] = 1;
          }
        }
        break;
      }
      default:
        after.assign(omask.size(), 1);
        break;
    }
    if (std::find(omask.begin(), omask.end(), 0) != omask.end()) {
      d->op_masks[i] = std::move(omask);
    }
  }
}

class Builder {
 public:
  PipelinePlan Build(const LogicalPlan& root) {
    BuildInto(&root);
    return std::move(plan_);
  }

 private:
  int Push(PipelineDesc d) {
    d.id = static_cast<int>(plan_.pipelines.size());
    ComputeOpMasks(&d);
    plan_.pipelines.push_back(std::move(d));
    return plan_.pipelines.back().id;
  }

  /// Builds the pipeline(s) that materialize `node`'s full output,
  /// returning the producing pipeline's id.
  int BuildInto(const LogicalPlan* node) {
    switch (node->kind) {
      case LogicalPlan::Kind::kAggregate: {
        PipelineDesc d;
        BuildStream(node->children[0].get(), &d);
        d.breaker = node;
        d.sink = PipelineSinkKind::kAggregate;
        d.output = node;
        return Push(std::move(d));
      }
      case LogicalPlan::Kind::kSort:
      case LogicalPlan::Kind::kLimit:
      case LogicalPlan::Kind::kDistinct:
      case LogicalPlan::Kind::kWindow: {
        PipelineDesc d;
        BuildStream(node->children[0].get(), &d);
        d.breaker = node;
        d.sink = PipelineSinkKind::kSerial;
        d.output = node;
        return Push(std::move(d));
      }
      case LogicalPlan::Kind::kJoin:
        if (!IsProbeJoin(*node)) {
          // Cross join: materialize both children, then run the node
          // through the interpreter.
          PipelineDesc d;
          d.breaker = node;
          d.sink = PipelineSinkKind::kCompute;
          d.output = node;
          for (const PlanPtr& c : node->children) {
            int pid = BuildInto(c.get());
            d.inputs.push_back(pid);
            d.deps.push_back(pid);
          }
          return Push(std::move(d));
        }
        [[fallthrough]];
      case LogicalPlan::Kind::kScan:
      case LogicalPlan::Kind::kValues:
      case LogicalPlan::Kind::kFilter:
      case LogicalPlan::Kind::kProject: {
        PipelineDesc d;
        BuildStream(node, &d);
        d.sink = PipelineSinkKind::kResult;
        d.output = node;
        return Push(std::move(d));
      }
    }
    return -1;  // unreachable
  }

  /// Extends `d`'s streaming chain downward from `node`: sets the morsel
  /// source at the bottom and appends ops on the way back up.
  void BuildStream(const LogicalPlan* node, PipelineDesc* d) {
    if (IsLeaf(node->kind)) {
      d->source = node;
      return;
    }
    if (IsStreamingOp(node->kind)) {
      BuildStream(node->children[0].get(), d);
      d->ops.push_back(node);
      d->op_build_inputs.push_back(-1);
      return;
    }
    if (IsProbeJoin(*node)) {
      bool swapped = node->join_type == JoinType::kRight ||
                     (node->join_type == JoinType::kInner && node->build_left);
      const LogicalPlan* build_child =
          swapped ? node->children[0].get() : node->children[1].get();
      const LogicalPlan* probe_child =
          swapped ? node->children[1].get() : node->children[0].get();
      int build_pid = BuildInto(build_child);
      BuildStream(probe_child, d);
      d->ops.push_back(node);
      d->op_build_inputs.push_back(build_pid);
      d->deps.push_back(build_pid);
      return;
    }
    // A breaker feeds this chain: its pipeline's materialized output
    // becomes the morsel source.
    int pid = BuildInto(node);
    d->source_pipeline = pid;
    d->deps.push_back(pid);
  }

  PipelinePlan plan_;
};

// ===================================================================
// Chunks and streaming operators
// ===================================================================

/// One in-flight morsel: a [begin, end) view over a source table until
/// the first operator rewrites it, an owned table afterwards. Lives on
/// the worker's stack for the whole chain — this is the "no materialized
/// intermediates" part. A filter over a still-unrewritten view produces
/// a third state: a selection vector of absolute row ids into `table`,
/// deferred so a result sink can merge every morsel's selection and pay
/// one gather total instead of gather-per-morsel plus a concatenation.
struct Chunk {
  const Table* table = nullptr;
  size_t begin = 0;
  size_t end = 0;
  Table storage;
  std::vector<uint32_t> sel;  // absolute rows into *table when has_sel
  bool has_sel = false;

  size_t rows() const { return has_sel ? sel.size() : end - begin; }
  bool owned() const { return table == &storage; }
  void SetOwned(Table t) {
    size_t n = t.num_rows();
    SetOwned(std::move(t), n);
  }
  /// Owned table with an explicit row count: masked tables keep dead
  /// columns as typed empty placeholders, so column 0 (what
  /// Table::num_rows reads) may not reflect the real row count.
  void SetOwned(Table t, size_t nrows) {
    storage = std::move(t);
    table = &storage;
    begin = 0;
    end = nrows;
    sel.clear();
    has_sel = false;
  }
  void SetSel(std::vector<uint32_t> s) {
    sel = std::move(s);
    has_sel = true;
  }
};

/// Evaluates expressions over the selected rows of a source table without
/// materializing the full-width selection. A bare column reference
/// gathers exactly one column; a compound expression evaluates over a
/// lazily-assembled narrow table that gathers only the columns it
/// references (placeholder empty columns keep indices stable — the
/// evaluator never reads a column an expression doesn't name).
class SelEval {
 public:
  SelEval(const Table& t, const std::vector<uint32_t>& sel)
      : t_(t), sel_(sel), narrow_(t.schema()) {
    gathered_.assign(t.num_columns(), 0);
  }

  Result<Column> Eval(const BoundExpr& e) {
    if (e.kind == BoundExpr::Kind::kColRef) {
      return t_.column(e.col_index).Gather(sel_);
    }
    EnsureNarrow(e);
    return EvaluateExpr(e, narrow_, 0, sel_.size());
  }

  /// `keep` gets positions into `sel` (relative), not absolute row ids.
  Status EvalPredicate(const BoundExpr& e, std::vector<uint32_t>* keep) {
    EnsureNarrow(e);
    return EvaluatePredicate(e, narrow_, 0, sel_.size(), keep);
  }

 private:
  void EnsureNarrow(const BoundExpr& e) {
    std::vector<int> cols;
    e.CollectColumns(&cols);
    for (int c : cols) {
      if (gathered_[c]) continue;
      narrow_.column(c) = t_.column(c).Gather(sel_);
      gathered_[c] = 1;
    }
  }

  const Table& t_;
  const std::vector<uint32_t>& sel_;
  Table narrow_;
  std::vector<uint8_t> gathered_;
};

/// Gathers `rows` from `t`, skipping dead columns: a column is dead
/// when the liveness mask says nothing downstream reads it, or when an
/// upstream op already reduced it to a placeholder. Dead columns stay
/// typed empty placeholders so column indices remain stable — the
/// expression evaluator never reads a column an expression doesn't
/// name, and nothing masked ever escapes the pipeline (result and
/// serial sinks pin their whole chain live).
Table GatherLive(const Table& t, const std::vector<uint32_t>& rows,
                 const std::vector<uint8_t>* mask) {
  Table out(t.schema());
  for (size_t c = 0; c < t.num_columns(); ++c) {
    const Column& col = t.column(c);
    if ((mask != nullptr && !(*mask)[c]) ||
        (col.size() == 0 && !rows.empty())) {
      continue;
    }
    out.column(c) = col.Gather(rows);
  }
  return out;
}

/// A streaming operator: transforms one chunk in place on a worker
/// thread. Prepare runs once on the coordinating thread (hash builds);
/// Finish emits at most one trailing chunk after every morsel has been
/// pushed (full-outer build-unmatched rows).
class StreamOp {
 public:
  explicit StreamOp(const LogicalPlan* node) : node_(node) {}
  virtual ~StreamOp() = default;
  StreamOp(const StreamOp&) = delete;
  StreamOp& operator=(const StreamOp&) = delete;

  const LogicalPlan* node() const { return node_; }
  /// Installs the backward-liveness mask over this op's output columns
  /// (computed once per pipeline, before Prepare). Empty = all live.
  void SetOutputMask(std::vector<uint8_t> m) { mask_ = std::move(m); }
  virtual Status Prepare(const ExecContext& ctx) {
    (void)ctx;
    return Status::OK();
  }
  virtual Status Push(Chunk* chunk, const ExecContext& ctx) = 0;
  virtual Result<bool> Finish(Chunk* out, const ExecContext& ctx) {
    (void)out;
    (void)ctx;
    return false;
  }

  // Stats surfaced by Prepare (hash-join builds).
  uint64_t build_rows = 0;
  uint64_t build_buckets = 0;
  uint64_t build_bytes = 0;

 protected:
  const std::vector<uint8_t>* mask() const {
    return mask_.empty() ? nullptr : &mask_;
  }

  const LogicalPlan* node_;
  std::vector<uint8_t> mask_;
};

class FilterOp : public StreamOp {
 public:
  using StreamOp::StreamOp;

  Status Push(Chunk* chunk, const ExecContext& ctx) override {
    (void)ctx;
    if (chunk->has_sel) {
      // Compose with the upstream filter's selection: evaluate over the
      // already-selected rows and keep the surviving absolute row ids.
      SelEval ev(*chunk->table, chunk->sel);
      std::vector<uint32_t> keep;
      PYTOND_RETURN_IF_ERROR(ev.EvalPredicate(*node_->predicate, &keep));
      std::vector<uint32_t> out;
      out.reserve(keep.size());
      for (uint32_t k : keep) out.push_back(chunk->sel[k]);
      chunk->sel = std::move(out);
      return Status::OK();
    }
    std::vector<uint32_t> sel;
    PYTOND_RETURN_IF_ERROR(EvaluatePredicate(*node_->predicate, *chunk->table,
                                             chunk->begin, chunk->end, &sel));
    if (!chunk->owned()) {
      // Keep the source view and defer the gather: downstream ops
      // evaluate through the selection, while a result sink merges all
      // selections and pays a single gather for the whole pipeline.
      chunk->SetSel(std::move(sel));
    } else {
      size_t nsel = sel.size();
      chunk->SetOwned(GatherLive(*chunk->table, sel, mask()), nsel);
    }
    return Status::OK();
  }
};

class ProjectOp : public StreamOp {
 public:
  using StreamOp::StreamOp;

  Status Push(Chunk* chunk, const ExecContext& ctx) override {
    (void)ctx;
    if (node_->exprs.empty()) {
      chunk->SetOwned(Table(node_->schema));
      return Status::OK();
    }
    // Dead output columns (nothing downstream reads them) stay typed
    // empty placeholders; only live expressions are evaluated.
    size_t len = chunk->rows();
    Table out(node_->schema);
    if (chunk->has_sel) {
      // Project straight through the selection: each referenced column
      // is copied exactly once (no full-width materialization first).
      SelEval ev(*chunk->table, chunk->sel);
      for (size_t i = 0; i < node_->exprs.size(); ++i) {
        if (!mask_.empty() && !mask_[i]) continue;
        PYTOND_ASSIGN_OR_RETURN(Column c, ev.Eval(*node_->exprs[i]));
        out.column(i) = std::move(c);
      }
    } else {
      for (size_t i = 0; i < node_->exprs.size(); ++i) {
        if (!mask_.empty() && !mask_[i]) continue;
        PYTOND_ASSIGN_OR_RETURN(Column c,
                                EvaluateExpr(*node_->exprs[i], *chunk->table,
                                             chunk->begin, chunk->end));
        out.column(i) = std::move(c);
      }
    }
    chunk->SetOwned(std::move(out), len);
    return Status::OK();
  }
};

/// Matched pairs + left-unmatched (null right) + right-unmatched, in the
/// plan's left-cols-then-right-cols output order (same row layout the
/// materializing ExecJoin produces). `lmask`/`rmask` (nullable) are the
/// liveness masks over the two column blocks: dead columns — nothing
/// downstream reads them — are never gathered and stay typed empty
/// placeholders in the output.
Table AssemblePairs(const Table& lt, const Table& rt,
                    const std::vector<uint32_t>& lidx,
                    const std::vector<uint32_t>& ridx,
                    const std::vector<uint32_t>& l_only,
                    const std::vector<uint32_t>& r_only,
                    const std::vector<uint8_t>* lmask,
                    const std::vector<uint8_t>* rmask) {
  size_t extra_l = l_only.size(), extra_r = r_only.size();
  Schema sch = lt.schema();
  for (size_t c = 0; c < rt.num_columns(); ++c) {
    sch.Add(rt.schema().names[c], rt.schema().types[c]);
  }
  Table out(std::move(sch));
  bool l_any = !lidx.empty() || extra_l > 0;
  bool r_any = !ridx.empty() || extra_r > 0;
  for (size_t c = 0; c < lt.num_columns(); ++c) {
    const Column& src = lt.column(c);
    if ((lmask != nullptr && !(*lmask)[c]) || (src.size() == 0 && l_any)) {
      continue;
    }
    Column col = src.Gather(lidx);
    if (extra_l) {
      Column lpart = src.Gather(l_only);
      std::vector<Column> parts;
      parts.push_back(std::move(col));
      parts.push_back(std::move(lpart));
      col = ConcatColumns(std::move(parts), src.type());
    }
    if (extra_r) {
      std::vector<Column> parts;
      parts.push_back(std::move(col));
      parts.push_back(NullColumn(src.type(), extra_r));
      col = ConcatColumns(std::move(parts), src.type());
    }
    out.column(c) = std::move(col);
  }
  for (size_t c = 0; c < rt.num_columns(); ++c) {
    const Column& src = rt.column(c);
    if ((rmask != nullptr && !(*rmask)[c]) || (src.size() == 0 && r_any)) {
      continue;
    }
    Column col = src.Gather(ridx);
    if (extra_l) {
      std::vector<Column> parts;
      parts.push_back(std::move(col));
      parts.push_back(NullColumn(src.type(), extra_l));
      col = ConcatColumns(std::move(parts), src.type());
    }
    if (extra_r) {
      Column rpart = src.Gather(r_only);
      std::vector<Column> parts;
      parts.push_back(std::move(col));
      parts.push_back(std::move(rpart));
      col = ConcatColumns(std::move(parts), src.type());
    }
    out.column(lt.num_columns() + c) = std::move(col);
  }
  return out;
}

/// Hash-join probe: the build side is a dependency pipeline's
/// materialized output; Prepare builds the hash table once, Push probes
/// one chunk and assembles its share of the output in place.
class ProbeOp : public StreamOp {
 public:
  ProbeOp(const LogicalPlan* node, TablePtr build)
      : StreamOp(node), build_(std::move(build)) {}

  Status Prepare(const ExecContext& ctx) override {
    JoinType jt = node_->join_type;
    swapped_ = jt == JoinType::kRight ||
               (jt == JoinType::kInner && node_->build_left);
    std::vector<BoundExprPtr> build_exprs;
    for (const auto& [l, r] : node_->join_keys) {
      probe_exprs_.push_back(swapped_ ? r : l);
      build_exprs.push_back(swapped_ ? l : r);
    }
    // The output mask splits positionally over the left-then-right
    // column blocks (semi/anti output the probe schema directly and use
    // the mask whole; kFull never gets one — Finish emits full rows).
    if (!mask_.empty() && jt != JoinType::kSemi && jt != JoinType::kAnti) {
      size_t lsz = node_->children[0]->schema.num_columns();
      lmask_.assign(mask_.begin(), mask_.begin() + lsz);
      rmask_.assign(mask_.begin() + lsz, mask_.end());
    }
    if (node_->predicate) {
      // Residual-predicate candidate tables only need the columns the
      // predicate actually names (left-then-right combined space).
      std::vector<int> cols;
      node_->predicate->CollectColumns(&cols);
      pred_refs_.assign(node_->children[0]->schema.num_columns() +
                            node_->children[1]->schema.num_columns(),
                        0);
      for (int c : cols) {
        if (c >= 0 && static_cast<size_t>(c) < pred_refs_.size()) {
          pred_refs_[c] = 1;
        }
      }
    }
    PYTOND_ASSIGN_OR_RETURN(std::vector<Column> build_keys,
                            EvalKeyColumns(build_exprs, *build_, ctx));
    size_t bn = build_->num_rows();
    buckets_.reserve(bn * 2);
    for (size_t i = 0; i < bn; ++i) {
      // SQL join semantics: NULL keys never match.
      bool has_null = false;
      for (const Column& c : build_keys) {
        if (!c.IsValid(i)) {
          has_null = true;
          break;
        }
      }
      if (has_null) continue;
      buckets_[EncodeKey(build_keys, i)].push_back(static_cast<uint32_t>(i));
    }
    build_rows = bn;
    build_buckets = buckets_.size();
    if (ctx.mem != nullptr || ctx.op_stats != nullptr ||
        ctx.trace != nullptr) {
      for (const Column& c : build_keys) build_bytes += c.MemoryBytes();
      for (const auto& [key, rows] : buckets_) {
        build_bytes += key.size() + rows.capacity() * sizeof(uint32_t) +
                       sizeof(void*) * 4;  // unordered_map node overhead
      }
    }
    if (jt == JoinType::kFull && bn > 0) {
      build_matched_ = std::make_unique<std::atomic<uint8_t>[]>(bn);
      for (size_t i = 0; i < bn; ++i) {
        build_matched_[i].store(0, std::memory_order_relaxed);
      }
    }
    return Status::OK();
  }

  Status Push(Chunk* chunk, const ExecContext& ctx) override {
    (void)ctx;
    JoinType jt = node_->join_type;
    const Table& probe = *chunk->table;
    // A selection chunk (upstream filter over the source view) probes
    // through its selection: keys are evaluated over the selected rows
    // only and candidates carry absolute source row ids, so unmatched
    // probe rows are never copied at all.
    const bool use_sel = chunk->has_sel;
    std::vector<uint32_t> sel_rows;
    if (use_sel) sel_rows = std::move(chunk->sel);
    size_t begin = chunk->begin, end = chunk->end;
    size_t len = use_sel ? sel_rows.size() : end - begin;
    auto abs_of = [&](size_t rel) {
      return use_sel ? sel_rows[rel] : static_cast<uint32_t>(begin + rel);
    };
    bool need_unmatched = jt == JoinType::kLeft || jt == JoinType::kRight ||
                          jt == JoinType::kFull;
    bool is_semi_anti = jt == JoinType::kSemi || jt == JoinType::kAnti;

    std::vector<Column> pkeys;
    pkeys.reserve(probe_exprs_.size());
    if (use_sel) {
      SelEval ev(probe, sel_rows);
      for (const BoundExprPtr& e : probe_exprs_) {
        PYTOND_ASSIGN_OR_RETURN(Column c, ev.Eval(*e));
        pkeys.push_back(std::move(c));
      }
    } else {
      for (const BoundExprPtr& e : probe_exprs_) {
        PYTOND_ASSIGN_OR_RETURN(Column c, EvaluateExpr(*e, probe, begin, end));
        pkeys.push_back(std::move(c));
      }
    }

    std::vector<uint32_t> cand_p, cand_b;  // cand_p absolute into `probe`
    std::vector<uint32_t> p_unmatched;
    for (size_t rel = 0; rel < len; ++rel) {
      bool has_null = false;
      for (const Column& c : pkeys) {
        if (!c.IsValid(rel)) {
          has_null = true;
          break;
        }
      }
      const std::vector<uint32_t>* bucket = nullptr;
      if (!has_null) {
        auto it = buckets_.find(EncodeKey(pkeys, rel));
        if (it != buckets_.end()) bucket = &it->second;
      }
      uint32_t abs = abs_of(rel);
      if (bucket == nullptr) {
        if (need_unmatched) p_unmatched.push_back(abs);
        continue;
      }
      for (uint32_t b : *bucket) {
        cand_p.push_back(abs);
        cand_b.push_back(b);
      }
    }

    // Residual filtering over candidate pairs (left/right column order).
    // Only predicate-referenced columns are gathered; the rest stay
    // typed empty placeholders the evaluator never reads.
    if (node_->predicate && !cand_p.empty()) {
      const Table& lt = swapped_ ? *build_ : probe;
      const Table& rt = swapped_ ? probe : *build_;
      const std::vector<uint32_t>& li = swapped_ ? cand_b : cand_p;
      const std::vector<uint32_t>& ri = swapped_ ? cand_p : cand_b;
      Schema psch;
      for (size_t c = 0; c < lt.num_columns(); ++c) {
        psch.Add("l" + std::to_string(c), lt.column(c).type());
      }
      for (size_t c = 0; c < rt.num_columns(); ++c) {
        psch.Add("r" + std::to_string(c), rt.column(c).type());
      }
      Table pair(std::move(psch));
      for (size_t c = 0; c < lt.num_columns(); ++c) {
        if (!pred_refs_[c] || lt.column(c).size() == 0) continue;
        pair.column(c) = lt.column(c).Gather(li);
      }
      for (size_t c = 0; c < rt.num_columns(); ++c) {
        if (!pred_refs_[lt.num_columns() + c] || rt.column(c).size() == 0) {
          continue;
        }
        pair.column(lt.num_columns() + c) = rt.column(c).Gather(ri);
      }
      std::vector<uint32_t> keep;
      PYTOND_RETURN_IF_ERROR(EvaluatePredicate(*node_->predicate, pair, 0,
                                               cand_p.size(), &keep));
      std::vector<uint32_t> fp, fb;
      fp.reserve(keep.size());
      fb.reserve(keep.size());
      for (uint32_t k : keep) {
        fp.push_back(cand_p[k]);
        fb.push_back(cand_b[k]);
      }
      cand_p = std::move(fp);
      cand_b = std::move(fb);
    }

    if (is_semi_anti) {
      std::unordered_set<uint32_t> matched(cand_p.begin(), cand_p.end());
      std::vector<uint32_t> emit;
      for (size_t rel = 0; rel < len; ++rel) {
        uint32_t abs = abs_of(rel);
        bool m = matched.count(abs) > 0;
        if ((jt == JoinType::kSemi) == m) emit.push_back(abs);
      }
      size_t nemit = emit.size();
      chunk->SetOwned(GatherLive(probe, emit, mask()), nemit);
      return Status::OK();
    }

    if (need_unmatched && node_->predicate) {
      // Rows whose candidates were all filtered out become unmatched.
      std::unordered_set<uint32_t> matched(cand_p.begin(), cand_p.end());
      p_unmatched.clear();
      for (size_t rel = 0; rel < len; ++rel) {
        uint32_t abs = abs_of(rel);
        if (!matched.count(abs)) p_unmatched.push_back(abs);
      }
    }
    if (build_matched_ != nullptr) {
      for (uint32_t b : cand_b) {
        build_matched_[b].store(1, std::memory_order_relaxed);
      }
    }

    const std::vector<uint8_t>* lm = lmask_.empty() ? nullptr : &lmask_;
    const std::vector<uint8_t>* rm = rmask_.empty() ? nullptr : &rmask_;
    size_t nout = cand_p.size() + p_unmatched.size();
    switch (jt) {
      case JoinType::kInner:
        chunk->SetOwned(swapped_
                            ? AssemblePairs(*build_, probe, cand_b, cand_p,
                                            {}, {}, lm, rm)
                            : AssemblePairs(probe, *build_, cand_p, cand_b,
                                            {}, {}, lm, rm),
                        cand_p.size());
        break;
      case JoinType::kLeft:
        chunk->SetOwned(AssemblePairs(probe, *build_, cand_p, cand_b,
                                      p_unmatched, {}, lm, rm),
                        nout);
        break;
      case JoinType::kRight:
        // Internally probe=right, build=left; output order is left,right.
        chunk->SetOwned(AssemblePairs(*build_, probe, cand_b, cand_p, {},
                                      p_unmatched, lm, rm),
                        nout);
        break;
      default:  // kFull (build-unmatched rows are emitted by Finish)
        chunk->SetOwned(AssemblePairs(probe, *build_, cand_p, cand_b,
                                      p_unmatched, {}, lm, rm));
        break;
    }
    return Status::OK();
  }

  Result<bool> Finish(Chunk* out, const ExecContext& ctx) override {
    (void)ctx;
    if (node_->join_type != JoinType::kFull) return false;
    size_t bn = build_->num_rows();
    std::vector<uint32_t> b_unmatched;
    for (size_t i = 0; i < bn; ++i) {
      if (build_matched_ == nullptr ||
          build_matched_[i].load(std::memory_order_relaxed) == 0) {
        b_unmatched.push_back(static_cast<uint32_t>(i));
      }
    }
    if (b_unmatched.empty()) return false;
    // Probe-side columns are all-null for build-unmatched rows; kFull is
    // never swapped, so the probe side is the plan's left child.
    const Schema& ls = node_->children[0]->schema;
    Table t;
    for (size_t c = 0; c < ls.num_columns(); ++c) {
      Status st = t.AddColumn(ls.names[c],
                              NullColumn(ls.types[c], b_unmatched.size()));
      (void)st;
    }
    for (size_t c = 0; c < build_->num_columns(); ++c) {
      Status st = t.AddColumn(build_->schema().names[c],
                              build_->column(c).Gather(b_unmatched));
      (void)st;
    }
    out->SetOwned(std::move(t));
    return true;
  }

 private:
  TablePtr build_;
  bool swapped_ = false;
  std::vector<BoundExprPtr> probe_exprs_;
  std::vector<uint8_t> lmask_, rmask_;  // liveness per output block
  std::vector<uint8_t> pred_refs_;      // residual-predicate column refs
  std::unordered_map<std::string, std::vector<uint32_t>> buckets_;
  std::unique_ptr<std::atomic<uint8_t>[]> build_matched_;
};

// ===================================================================
// Sinks (thread-local per-slot state, merged in morsel order)
// ===================================================================

/// A pipeline sink: Push is called from worker threads with a slot index
/// that is unique per morsel (thread-local by construction — no locks);
/// Finalize merges the slots in slot order on the coordinating thread,
/// which keeps the merged result independent of scheduling.
class Sink {
 public:
  virtual ~Sink() = default;
  virtual void Prepare(size_t slots) = 0;
  virtual Status Push(Chunk* chunk, size_t slot, const ExecContext& ctx) = 0;
  /// Merges slot state into the pipeline's output. `transient_bytes`
  /// (nullable out) reports bytes charged for merge-time state.
  virtual Result<TablePtr> Finalize(const ExecContext& ctx,
                                    uint64_t* transient_bytes) = 0;
};

/// Collects owned chunks per slot; the slot-order concatenation is the
/// output. Selection-view chunks (a filter over the source view) stay
/// as selection vectors: Finalize merges consecutive selections over
/// the same source table and pays a single gather for the whole run —
/// the same single-copy shape as the materializing executor's filter.
class CollectSink : public Sink {
 public:
  explicit CollectSink(const Schema* fallback_schema)
      : fallback_schema_(fallback_schema) {}

  void Prepare(size_t slots) override {
    slots_.resize(slots);
    sels_.resize(slots);
    sel_src_.assign(slots, nullptr);
    used_.assign(slots, 0);
  }

  Status Push(Chunk* chunk, size_t slot, const ExecContext& ctx) override {
    (void)ctx;
    if (chunk->has_sel) {
      sels_[slot] = std::move(chunk->sel);
      sel_src_[slot] = chunk->table;
    } else if (chunk->owned()) {
      slots_[slot] = std::move(chunk->storage);
    } else {
      // View chunk (no ops rewrote it): keep it as a trivial selection.
      std::vector<uint32_t> idx(chunk->rows());
      std::iota(idx.begin(), idx.end(),
                static_cast<uint32_t>(chunk->begin));
      sels_[slot] = std::move(idx);
      sel_src_[slot] = chunk->table;
    }
    used_[slot] = 1;
    return Status::OK();
  }

  Result<TablePtr> Finalize(const ExecContext& ctx,
                            uint64_t* transient_bytes) override {
    if (transient_bytes != nullptr) *transient_bytes = 0;
    // Wide merged selections gather column-parallel on the pool: columns
    // are independent and land by index, so the output is identical to
    // the serial gather no matter how the pool schedules them. This is
    // parallelism the materializing executor's filter never had.
    auto gather = [&ctx](const Table& t, const std::vector<uint32_t>& rows) {
      size_t nc = t.num_columns();
      if (!kMultiCore || ctx.pool == nullptr || ctx.num_threads <= 1 ||
          nc <= 1 || rows.size() * nc < kPipelineInlineRows) {
        return t.Gather(rows);
      }
      std::vector<Column> cols(nc);
      ctx.pool->ParallelFor(nc, 1, ctx.num_threads,
                            [&](size_t, size_t b, size_t e) {
                              for (size_t c = b; c < e; ++c) {
                                cols[c] = t.column(c).Gather(rows);
                              }
                            });
      Table out;
      for (size_t c = 0; c < nc; ++c) {
        Status st = out.AddColumn(t.schema().names[c], std::move(cols[c]));
        (void)st;
      }
      return out;
    };
    // Coalesce in slot order: consecutive selections over one source
    // table merge into a single gather; owned tables pass through.
    std::vector<Table> parts;
    std::vector<uint32_t> pending;
    const Table* pending_src = nullptr;
    auto flush = [&] {
      if (pending_src == nullptr) return;
      parts.push_back(gather(*pending_src, pending));
      pending.clear();
      pending_src = nullptr;
    };
    for (size_t i = 0; i < slots_.size(); ++i) {
      if (!used_[i]) continue;
      if (sel_src_[i] != nullptr) {
        if (pending_src != nullptr && pending_src != sel_src_[i]) flush();
        pending_src = sel_src_[i];
        pending.insert(pending.end(), sels_[i].begin(), sels_[i].end());
      } else {
        flush();
        parts.push_back(std::move(slots_[i]));
      }
    }
    flush();
    if (parts.empty()) return WrapTable(Table(*fallback_schema_));
    if (parts.size() == 1) return WrapTable(std::move(parts[0]));
    Table out;
    const Table& first = parts[0];
    for (size_t c = 0; c < first.num_columns(); ++c) {
      std::vector<Column> cols;
      cols.reserve(parts.size());
      for (Table& p : parts) cols.push_back(std::move(p.column(c)));
      PYTOND_RETURN_IF_ERROR(out.AddColumn(
          first.schema().names[c],
          ConcatColumns(std::move(cols), first.schema().types[c])));
    }
    return WrapTable(std::move(out));
  }

 private:
  const Schema* fallback_schema_;
  std::vector<Table> slots_;
  std::vector<std::vector<uint32_t>> sels_;
  std::vector<const Table*> sel_src_;
  std::vector<uint8_t> used_;
};

/// Thread-local aggregation: each slot owns a hash table of partial
/// groups; Finalize merges them in slot order (identical float rounding
/// for every thread count) and assembles the output table.
class AggSink : public Sink {
 public:
  explicit AggSink(const LogicalPlan* node) : node_(node) {
    key_types_.reserve(node_->group_exprs.size());
    for (const BoundExprPtr& e : node_->group_exprs) {
      key_types_.push_back(e->type);
    }
    arg_types_.assign(node_->aggs.size(), DataType::kInt64);
    for (size_t a = 0; a < node_->aggs.size(); ++a) {
      if (node_->aggs[a].arg) arg_types_[a] = node_->aggs[a].arg->type;
    }
  }

  void Prepare(size_t slots) override { locals_.resize(slots); }

  Status Push(Chunk* chunk, size_t slot, const ExecContext& ctx) override {
    (void)ctx;
    const LogicalPlan& p = *node_;
    const Table& in = *chunk->table;
    size_t begin = chunk->begin, len = chunk->rows();
    std::vector<Column> keys;
    keys.reserve(p.group_exprs.size());
    std::vector<Column> args(p.aggs.size());
    if (chunk->has_sel) {
      // Selection chunk: evaluate keys and arguments over the selected
      // rows directly — the unreferenced (often wide) remainder of the
      // source table is never copied.
      SelEval ev(in, chunk->sel);
      for (const BoundExprPtr& e : p.group_exprs) {
        PYTOND_ASSIGN_OR_RETURN(Column c, ev.Eval(*e));
        keys.push_back(std::move(c));
      }
      for (size_t a = 0; a < p.aggs.size(); ++a) {
        if (p.aggs[a].arg) {
          PYTOND_ASSIGN_OR_RETURN(args[a], ev.Eval(*p.aggs[a].arg));
        }
      }
    } else {
      for (const BoundExprPtr& e : p.group_exprs) {
        PYTOND_ASSIGN_OR_RETURN(Column c,
                                EvaluateExpr(*e, in, begin, chunk->end));
        keys.push_back(std::move(c));
      }
      for (size_t a = 0; a < p.aggs.size(); ++a) {
        if (p.aggs[a].arg) {
          PYTOND_ASSIGN_OR_RETURN(
              args[a], EvaluateExpr(*p.aggs[a].arg, in, begin, chunk->end));
        }
      }
    }
    LocalMap& m = locals_[slot];
    for (size_t rel = 0; rel < len; ++rel) {
      std::string key = EncodeKey(keys, rel);
      auto [it, inserted] = m.try_emplace(std::move(key));
      if (inserted) {
        it->second.cells.resize(p.aggs.size());
        it->second.key_vals.reserve(keys.size());
        for (const Column& k : keys) {
          it->second.key_vals.push_back(k.Get(rel));
        }
      }
      AccumulateRow(p, &it->second.cells, args, rel);
    }
    return Status::OK();
  }

  Result<TablePtr> Finalize(const ExecContext& ctx,
                            uint64_t* transient_bytes) override {
    const LogicalPlan& p = *node_;
    LocalMap global;
    if (!locals_.empty()) global = std::move(locals_[0]);
    for (size_t s = 1; s < locals_.size(); ++s) {
      for (auto& [key, g] : locals_[s]) {
        auto it = global.find(key);
        if (it == global.end()) {
          global.emplace(key, std::move(g));
        } else {
          for (size_t a = 0; a < p.aggs.size(); ++a) {
            MergeCell(p.aggs[a], &it->second.cells[a], g.cells[a]);
          }
        }
      }
    }
    // Global aggregate over empty input still yields one row.
    if (p.group_exprs.empty() && global.empty()) {
      AggGroup g;
      g.cells.resize(p.aggs.size());
      global.emplace("", std::move(g));
    }

    // Transient aggregate-table memory, released once the output is
    // assembled (same protocol as the materializing ExecAggregate).
    uint64_t agg_bytes = 0;
    if (ctx.mem != nullptr || transient_bytes != nullptr) {
      for (const auto& [key, g] : global) {
        agg_bytes += key.size() + sizeof(AggGroup) +
                     g.cells.size() * sizeof(AggCell) +
                     sizeof(void*) * 4;  // unordered_map node overhead
      }
    }
    obs::ScopedCharge agg_charge(ctx.mem, agg_bytes);
    if (transient_bytes != nullptr) *transient_bytes = agg_bytes;

    Table out(p.schema);
    size_t ngroups = global.size();
    for (size_t k = 0; k < key_types_.size(); ++k) {
      Column col(key_types_[k]);
      col.Reserve(ngroups);
      for (const auto& [key, g] : global) col.Append(g.key_vals[k]);
      out.column(k) = std::move(col);
    }
    for (size_t a = 0; a < p.aggs.size(); ++a) {
      Column& col = out.column(key_types_.size() + a);
      col.Reserve(ngroups);
      for (const auto& [key, g] : global) {
        col.Append(FinalizeCell(p.aggs[a], g.cells[a], arg_types_[a]));
      }
    }
    return WrapTable(std::move(out));
  }

 private:
  struct AggGroup {
    std::vector<Value> key_vals;
    std::vector<AggCell> cells;
  };
  using LocalMap = std::unordered_map<std::string, AggGroup>;

  const LogicalPlan* node_;
  std::vector<DataType> key_types_;
  std::vector<DataType> arg_types_;
  std::vector<LocalMap> locals_;
};

// ===================================================================
// Pipeline executor
// ===================================================================

/// Per-(operator, slot) actuals, aggregated after the run. Slots are
/// touched by exactly one worker each, so no synchronization.
struct StatCell {
  uint64_t rows_in = 0;
  uint64_t rows_out = 0;
  uint64_t time_ns = 0;
  uint64_t bytes = 0;
};

class PipelineExecutor {
 public:
  PipelineExecutor(const PipelinePlan& pp, const LogicalPlan& root,
                   const ExecContext& ctx)
      : pp_(pp), root_(root), ctx_(ctx) {
    if (ctx_.op_stats != nullptr) {
      stats_ = ctx_.op_stats;
    } else if (ctx_.trace != nullptr) {
      stats_ = &local_stats_;
    }
    record_metrics_ = ctx_.metrics != nullptr && ctx_.metrics->enabled();
    track_ = stats_ != nullptr || record_metrics_;
  }

  Result<TablePtr> Run() {
    size_t np = pp_.pipelines.size();
    outputs_.resize(np);
    charged_.assign(np, 0);
    std::vector<int> consumers(np, 0);
    for (const PipelineDesc& d : pp_.pipelines) {
      for (int dep : d.deps) consumers[dep]++;
    }
    for (const PipelineDesc& d : pp_.pipelines) {
      PYTOND_ASSIGN_OR_RETURN(outputs_[d.id], RunPipeline(d));
      for (int dep : d.deps) {
        if (--consumers[dep] == 0) {
          if (ctx_.mem != nullptr && charged_[dep] > 0) {
            ctx_.mem->Release(charged_[dep]);
            charged_[dep] = 0;
          }
          outputs_[dep].reset();
        }
      }
    }
    if (ctx_.trace != nullptr && stats_ != nullptr) SynthesizeSpans();
    return outputs_[np - 1];
  }

 private:
  Result<TablePtr> RunPipeline(const PipelineDesc& d);
  Result<TablePtr> RunCompute(const PipelineDesc& d);
  Result<TablePtr> ResolveLeaf(const LogicalPlan& leaf);
  void SynthesizeSpans();
  uint64_t SynthesizeNode(const LogicalPlan& p, obs::SpanNode* parent,
                          uint64_t start);

  const PipelinePlan& pp_;
  const LogicalPlan& root_;
  const ExecContext& ctx_;
  std::vector<TablePtr> outputs_;
  std::vector<uint64_t> charged_;  // pipeline-output bytes still charged
  PlanStatsMap local_stats_;       // span synthesis without EXPLAIN ANALYZE
  PlanStatsMap* stats_ = nullptr;
  bool record_metrics_ = false;
  bool track_ = false;
};

Result<TablePtr> PipelineExecutor::ResolveLeaf(const LogicalPlan& leaf) {
  if (leaf.kind == LogicalPlan::Kind::kValues) return TablePtr(leaf.values);
  if (ctx_.temps != nullptr) {
    auto it = ctx_.temps->find(leaf.table_name);
    if (it != ctx_.temps->end()) return it->second;
  }
  const Table* t = ctx_.catalog->GetTable(leaf.table_name);
  if (t == nullptr) {
    return Status::NotFound("table '" + leaf.table_name + "'");
  }
  return TablePtr(t, [](const Table*) {});  // non-owning
}

Result<TablePtr> PipelineExecutor::RunCompute(const PipelineDesc& d) {
  obs::Span pspan(ctx_.trace, "pipeline:" + std::to_string(d.id),
                  "pipeline");
  std::vector<TablePtr> inputs;
  inputs.reserve(d.inputs.size());
  for (int pid : d.inputs) inputs.push_back(outputs_[pid]);
  OperatorStats stats;
  for (const TablePtr& in : inputs) stats.rows_in += in->num_rows();
  uint64_t t0 = track_ ? obs::NowNs() : 0;
  PYTOND_ASSIGN_OR_RETURN(TablePtr out,
                          ExecNodeOnInputs(*d.breaker, inputs, ctx_, &stats));
  stats.time_ns = track_ ? obs::NowNs() - t0 : 0;
  stats.rows_out = out->num_rows();
  stats.pipeline_id = d.id;
  uint64_t out_bytes = 0;
  if (ctx_.mem != nullptr || track_) out_bytes = out->MemoryBytes();
  if (ctx_.mem != nullptr) ctx_.mem->Charge(out_bytes);
  charged_[d.id] = out_bytes;
  stats.mem_bytes += out_bytes;
  if (stats_ != nullptr) (*stats_)[d.breaker] = stats;
  pspan.AddCounter("rows_out", static_cast<int64_t>(stats.rows_out));
  if (record_metrics_) {
    ctx_.metrics->counter("tond_exec_pipelines_total").Add(1);
  }
  return out;
}

Result<TablePtr> PipelineExecutor::RunPipeline(const PipelineDesc& d) {
  if (d.sink == PipelineSinkKind::kCompute) return RunCompute(d);

  // --- resolve the morsel source ---
  TablePtr src;
  if (d.source != nullptr) {
    PYTOND_ASSIGN_OR_RETURN(src, ResolveLeaf(*d.source));
  } else {
    src = outputs_[d.source_pipeline];
  }
  size_t n = src->num_rows();
  if (stats_ != nullptr && d.source != nullptr) {
    OperatorStats& ss = (*stats_)[d.source];
    ss.rows_out = n;
    ss.pipeline_id = d.id;
  }

  // --- passthrough shortcircuits (no ops; nothing to stream) ---
  if (d.ops.empty() && d.sink == PipelineSinkKind::kResult) {
    if (d.source_pipeline >= 0) {
      // Alias of the producing pipeline's output: inherit its charge so
      // the release-on-last-consumer logic stays balanced.
      charged_[d.id] = charged_[d.source_pipeline];
      charged_[d.source_pipeline] = 0;
    }
    return src;
  }
  if (d.ops.empty() && d.sink == PipelineSinkKind::kSerial) {
    obs::Span pspan(ctx_.trace, "pipeline:" + std::to_string(d.id),
                    "pipeline");
    uint64_t t0 = track_ ? obs::NowNs() : 0;
    PYTOND_ASSIGN_OR_RETURN(TablePtr out, ExecSerialBreaker(*d.breaker, src));
    uint64_t out_bytes = 0;
    if (ctx_.mem != nullptr || track_) out_bytes = out->MemoryBytes();
    if (ctx_.mem != nullptr) ctx_.mem->Charge(out_bytes);
    charged_[d.id] = out_bytes;
    if (stats_ != nullptr) {
      OperatorStats& bs = (*stats_)[d.breaker];
      bs.rows_in = n;
      bs.rows_out = out->num_rows();
      bs.time_ns = track_ ? obs::NowNs() - t0 : 0;
      bs.mem_bytes = out_bytes;
      bs.pipeline_id = d.id;
    }
    pspan.AddCounter("rows_out", static_cast<int64_t>(out->num_rows()));
    if (record_metrics_) {
      ctx_.metrics->counter("tond_exec_pipelines_total").Add(1);
    }
    return out;
  }

  obs::Span pspan(ctx_.trace, "pipeline:" + std::to_string(d.id),
                  "pipeline");

  // --- construct operators and sink ---
  std::vector<std::unique_ptr<StreamOp>> ops;
  ops.reserve(d.ops.size());
  for (size_t i = 0; i < d.ops.size(); ++i) {
    const LogicalPlan* op_node = d.ops[i];
    switch (op_node->kind) {
      case LogicalPlan::Kind::kFilter:
        ops.push_back(std::make_unique<FilterOp>(op_node));
        break;
      case LogicalPlan::Kind::kProject:
        ops.push_back(std::make_unique<ProjectOp>(op_node));
        break;
      case LogicalPlan::Kind::kJoin:
        ops.push_back(std::make_unique<ProbeOp>(
            op_node, outputs_[d.op_build_inputs[i]]));
        break;
      default:
        return Status::Internal("non-streaming op in pipeline chain");
    }
  }
  // --- late materialization: apply the build-time liveness masks ---
  for (size_t i = 0; i < ops.size() && i < d.op_masks.size(); ++i) {
    if (!d.op_masks[i].empty()) {
      ops[i]->SetOutputMask(d.op_masks[i]);
    }
  }

  obs::ScopedCharge build_charge(ctx_.mem, 0);
  for (const auto& op : ops) {
    PYTOND_RETURN_IF_ERROR(op->Prepare(ctx_));
    build_charge.Add(op->build_bytes);
  }

  // The schema chunks carry into the sink (for the all-empty case).
  const Schema* chain_schema =
      d.ops.empty()
          ? (d.source != nullptr ? &d.source->schema
                                 : &pp_.pipelines[d.source_pipeline]
                                        .output->schema)
          : &d.ops.back()->schema;
  std::unique_ptr<Sink> sink;
  if (d.sink == PipelineSinkKind::kAggregate) {
    sink = std::make_unique<AggSink>(d.breaker);
  } else {
    sink = std::make_unique<CollectSink>(chain_schema);
  }

  size_t nm = std::max<size_t>(NumMorsels(n, ctx_), 1);
  // Small chains collapse to ONE inline morsel: pool dispatch, per-morsel
  // expression batching, and the slot merge each cost more than the
  // morsels themselves below this much work. The collapse is a function
  // of (n, chain depth) only — never the thread count — so any two
  // thread counts still chunk, accumulate, and merge identically.
  if (nm > 1 && n * (1 + d.ops.size()) < kPipelineInlineRows) nm = 1;
  size_t slots = nm + ops.size();  // trailing slots for Finish chunks
  sink->Prepare(slots);

  // Per-(op, slot) actuals; index ops.size() is the sink.
  std::vector<std::vector<StatCell>> cells;
  if (track_) {
    cells.assign(ops.size() + 1, std::vector<StatCell>(slots));
  }
  auto run_chain = [&](Chunk* chunk, size_t slot,
                       size_t first_op) -> Status {
    for (size_t oi = first_op; oi < ops.size(); ++oi) {
      uint64_t t0 = track_ ? obs::NowNs() : 0;
      uint64_t rin = chunk->rows();
      PYTOND_RETURN_IF_ERROR(ops[oi]->Push(chunk, ctx_));
      if (track_) {
        StatCell& c = cells[oi][slot];
        c.rows_in += rin;
        c.rows_out += chunk->rows();
        c.time_ns += obs::NowNs() - t0;
        c.bytes += chunk->owned() ? chunk->storage.MemoryBytes() : 0;
      }
      // A fully-filtered morsel contributes nothing downstream; every op
      // and sink treats an empty push as a no-op, so stop early instead
      // of evaluating expressions over zero-lane inputs.
      if (chunk->rows() == 0) return Status::OK();
    }
    uint64_t t0 = track_ ? obs::NowNs() : 0;
    uint64_t rin = chunk->rows();
    PYTOND_RETURN_IF_ERROR(sink->Push(chunk, slot, ctx_));
    if (track_) {
      StatCell& c = cells[ops.size()][slot];
      c.rows_in += rin;
      c.time_ns += obs::NowNs() - t0;
    }
    return Status::OK();
  };

  // --- run source morsels through the chain (workers) ---
  uint64_t run_t0 = track_ ? obs::NowNs() : 0;
  std::vector<Status> errs(nm);
  auto run_morsel = [&](size_t morsel, size_t begin, size_t end) {
    Chunk chunk;
    chunk.table = src.get();
    chunk.begin = begin;
    chunk.end = end;
    errs[morsel] = run_chain(&chunk, morsel, 0);
  };
  sched::PoolRunStats ps;
  if (nm == 1) {
    // Collapsed (or inherently serial) chain: one chunk, no pool.
    run_morsel(0, 0, n);
    ps.morsels = n > 0 ? 1 : 0;
  } else {
    ps = ParallelFor(n, ctx_, run_morsel);
  }
  for (const Status& s : errs) {
    if (!s.ok()) return s;
  }
  // --- trailing Finish chunks (coordinating thread) ---
  for (size_t oi = 0; oi < ops.size(); ++oi) {
    Chunk chunk;
    PYTOND_ASSIGN_OR_RETURN(bool has, ops[oi]->Finish(&chunk, ctx_));
    if (!has) continue;
    if (track_) {
      StatCell& c = cells[oi][nm + oi];
      c.rows_out += chunk.rows();
      c.bytes += chunk.storage.MemoryBytes();
    }
    PYTOND_RETURN_IF_ERROR(run_chain(&chunk, nm + oi, oi + 1));
  }
  uint64_t parallel_ns = track_ ? obs::NowNs() - run_t0 : 0;

  // --- finalize the sink (coordinating thread) ---
  uint64_t fin_t0 = track_ ? obs::NowNs() : 0;
  uint64_t sink_transient = 0;
  PYTOND_ASSIGN_OR_RETURN(TablePtr out,
                          sink->Finalize(ctx_, track_ ? &sink_transient
                                                      : nullptr));
  uint64_t serial_in_rows = out->num_rows();
  if (d.sink == PipelineSinkKind::kSerial) {
    // The collected table is the breaker's materialized input; charge it
    // for the duration of the serial phase (the old path charged the
    // child's materialized output the same way).
    obs::ScopedCharge collect_charge(
        ctx_.mem, ctx_.mem != nullptr ? out->MemoryBytes() : 0);
    PYTOND_ASSIGN_OR_RETURN(out, ExecSerialBreaker(*d.breaker, out));
  }
  uint64_t finalize_ns = track_ ? obs::NowNs() - fin_t0 : 0;

  uint64_t out_bytes = 0;
  if (ctx_.mem != nullptr || track_) out_bytes = out->MemoryBytes();
  if (ctx_.mem != nullptr) ctx_.mem->Charge(out_bytes);
  charged_[d.id] = out_bytes;

  // --- per-operator stats, pipeline span, metrics ---
  uint64_t streamed_bytes = 0;
  if (track_) {
    // Worker busy time can exceed the parallel region's wall clock (nm
    // workers overlap); scale self times so the plan's span tree still
    // nests inside the query wall time.
    uint64_t busy = 0;
    for (const auto& op_cells : cells) {
      for (const StatCell& c : op_cells) busy += c.time_ns;
    }
    double scale =
        busy > parallel_ns && busy > 0
            ? static_cast<double>(parallel_ns) / static_cast<double>(busy)
            : 1.0;
    for (size_t oi = 0; oi < ops.size(); ++oi) {
      StatCell total;
      for (const StatCell& c : cells[oi]) {
        total.rows_in += c.rows_in;
        total.rows_out += c.rows_out;
        total.time_ns += c.time_ns;
        total.bytes += c.bytes;
      }
      streamed_bytes += total.bytes;
      if (stats_ != nullptr) {
        const LogicalPlan* op_node = d.ops[oi];
        OperatorStats& os = (*stats_)[op_node];
        os.rows_in = total.rows_in;
        os.rows_out = total.rows_out;
        os.time_ns =
            static_cast<uint64_t>(static_cast<double>(total.time_ns) * scale);
        os.batches = ps.morsels;
        os.steals = ps.steals;
        os.pipeline_id = d.id;
        os.streamed_bytes = total.bytes;
        if (op_node->kind == LogicalPlan::Kind::kJoin) {
          os.build_rows = ops[oi]->build_rows;
          os.build_buckets = ops[oi]->build_buckets;
          os.mem_bytes += ops[oi]->build_bytes;
          os.rows_in += ops[oi]->build_rows;  // build side feeds the join
        }
        if (oi + 1 == ops.size() && d.breaker == nullptr) {
          os.mem_bytes += out_bytes;  // the chain's single materialization
        }
      }
    }
    if (stats_ != nullptr) {
      StatCell sink_total;
      for (const StatCell& c : cells[ops.size()]) {
        sink_total.rows_in += c.rows_in;
        sink_total.time_ns += c.time_ns;
      }
      if (d.breaker != nullptr) {
        OperatorStats& bs = (*stats_)[d.breaker];
        bs.rows_in = sink_total.rows_in;
        bs.rows_out = out->num_rows();
        bs.time_ns = static_cast<uint64_t>(
                         static_cast<double>(sink_total.time_ns) * scale) +
                     finalize_ns;
        bs.batches = ps.morsels;
        bs.steals = ps.steals;
        bs.pipeline_id = d.id;
        bs.mem_bytes = sink_transient + out_bytes;
        if (d.sink == PipelineSinkKind::kSerial) {
          bs.rows_in = serial_in_rows;
        }
      } else if (d.ops.empty()) {
        // kResult with no ops is handled by the passthrough shortcircuit.
      }
    }
  }
  pspan.AddCounter("morsels", static_cast<int64_t>(ps.morsels));
  if (ps.steals > 0) {
    pspan.AddCounter("steals", static_cast<int64_t>(ps.steals));
  }
  pspan.AddCounter("rows_source", static_cast<int64_t>(n));
  pspan.AddCounter("rows_out", static_cast<int64_t>(out->num_rows()));
  pspan.AddCounter("ops", static_cast<int64_t>(ops.size()));
  if (streamed_bytes > 0) {
    pspan.AddCounter("streamed_bytes",
                     static_cast<int64_t>(streamed_bytes));
  }
  if (record_metrics_) {
    ctx_.metrics->counter("tond_exec_pipelines_total").Add(1);
    ctx_.metrics->counter("tond_exec_pipeline_morsels_total")
        .Add(ps.morsels);
    if (streamed_bytes > 0) {
      ctx_.metrics->counter("tond_exec_streamed_bytes_total")
          .Add(streamed_bytes);
    }
  }
  return out;
}

/// Rebuilds the per-operator span tree the materializing path records
/// live: one "operator"-category span per plan node, nested like the
/// plan, with the same counters plus pipeline/streamed_bytes. Spans are
/// synthesized after the run (workers never touch the collector) and
/// appended under the innermost open span — final_select during a query.
void PipelineExecutor::SynthesizeSpans() {
  obs::SpanNode* parent = ctx_.trace->current();
  SynthesizeNode(root_, parent, parent->start_ns);
}

uint64_t PipelineExecutor::SynthesizeNode(const LogicalPlan& p,
                                          obs::SpanNode* parent,
                                          uint64_t start) {
  auto node = std::make_unique<obs::SpanNode>();
  node->name = PlanOpName(p.kind);
  if (p.kind == LogicalPlan::Kind::kScan) {
    node->name += ":" + p.table_name;
  }
  node->category = "operator";
  node->start_ns = start;
  uint64_t child_ns = 0;
  for (const PlanPtr& c : p.children) {
    child_ns += SynthesizeNode(*c, node.get(), start + child_ns);
  }
  OperatorStats s;
  auto it = stats_->find(&p);
  if (it != stats_->end()) s = it->second;
  if (s.rows_in == 0) {
    for (const PlanPtr& c : p.children) {
      auto cit = stats_->find(c.get());
      if (cit != stats_->end()) s.rows_in += cit->second.rows_out;
    }
  }
  node->duration_ns = child_ns + s.time_ns;
  node->AddCounter("rows_in", static_cast<int64_t>(s.rows_in));
  node->AddCounter("rows_out", static_cast<int64_t>(s.rows_out));
  if (s.mem_bytes > 0) {
    node->AddCounter("mem_bytes", static_cast<int64_t>(s.mem_bytes));
  }
  if (s.batches > 0) {
    node->AddCounter("batches", static_cast<int64_t>(s.batches));
  }
  if (s.steals > 0) {
    node->AddCounter("steals", static_cast<int64_t>(s.steals));
  }
  if (p.kind == LogicalPlan::Kind::kJoin) {
    node->AddCounter("build_rows", static_cast<int64_t>(s.build_rows));
    node->AddCounter("build_buckets",
                     static_cast<int64_t>(s.build_buckets));
  }
  if (p.kind == LogicalPlan::Kind::kFilter && s.rows_in > 0) {
    node->AddCounter("selectivity_bp",
                     static_cast<int64_t>(s.rows_out * 10000 / s.rows_in));
  }
  if (s.pipeline_id >= 0) {
    node->AddCounter("pipeline", s.pipeline_id);
  }
  if (s.streamed_bytes > 0) {
    node->AddCounter("streamed_bytes",
                     static_cast<int64_t>(s.streamed_bytes));
  }
  uint64_t dur = node->duration_ns;
  parent->children.push_back(std::move(node));
  return dur;
}

}  // namespace

PipelinePlan BuildPipelines(const LogicalPlan& plan) {
  return Builder().Build(plan);
}

Result<TablePtr> ExecutePipelined(const LogicalPlan& plan,
                                  const ExecContext& ctx) {
  PipelinePlan pp = BuildPipelines(plan);
  if (ctx.verify_plans) {
    namespace physical = analysis::physical;
    auto diags = physical::VerifyPipelines(plan, pp, ctx.verify_stats);
    PYTOND_RETURN_IF_ERROR(physical::CheckOrError(diags, "pipeline_build"));
  }
  PipelineExecutor exec(pp, plan, ctx);
  return exec.Run();
}

}  // namespace pytond::engine
