#ifndef PYTOND_ENGINE_PROFILE_H_
#define PYTOND_ENGINE_PROFILE_H_

namespace pytond::engine {

/// Planner/executor profiles emulating the paper's three backends.
///  - kVectorized ("duck-like"):  baseline planner — left-deep joins in
///    FROM order, no build-side selection.
///  - kCompiled ("hyper-like"):   full planner — greedy join ordering and
///    build-side selection; narrows the gap left by unoptimized SQL,
///    mirroring Hyper's stronger query planning in the paper.
///  - kResearch ("lingo-like"):   baseline planner, and window functions
///    are rejected (reproduces the paper's LingoDB exclusion for
///    UID-bearing queries).
enum class BackendProfile { kVectorized, kCompiled, kResearch };

const char* BackendProfileName(BackendProfile p);

}  // namespace pytond::engine

#endif  // PYTOND_ENGINE_PROFILE_H_
