#ifndef PYTOND_ENGINE_SQL_AST_H_
#define PYTOND_ENGINE_SQL_AST_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/value.h"

namespace pytond::engine::sql {

struct SelectStmt;
using SelectPtr = std::shared_ptr<SelectStmt>;

/// Scalar expression AST produced by the SQL parser (unbound).
struct Expr {
  enum class Kind {
    kColumnRef,    // [table.]name
    kLiteral,      // typed constant
    kStar,         // * (only inside COUNT(*))
    kBinary,       // arithmetic / comparison / AND / OR / LIKE / concat
    kUnary,        // NOT, unary minus
    kFunction,     // name(args) — scalar or aggregate, resolved at binding
    kCase,         // CASE WHEN .. THEN .. [ELSE ..] END
    kCast,         // CAST(x AS type)
    kIsNull,       // x IS [NOT] NULL
    kInList,       // x [NOT] IN (v1, v2, ...)
    kInSubquery,   // x [NOT] IN (SELECT ...)
    kExists,       // [NOT] EXISTS (SELECT ...)
    kWindow,       // row_number() OVER (ORDER BY ...)
    kBetween,      // x BETWEEN a AND b
  };

  enum class Op {
    kNone,
    kAdd, kSub, kMul, kDiv, kMod, kConcat,
    kLt, kLe, kEq, kNe, kGe, kGt,
    kAnd, kOr, kLike, kNotLike,
    kNot, kNeg,
  };

  Kind kind;
  Op op = Op::kNone;

  std::string table;        // kColumnRef qualifier (may be empty)
  std::string name;         // kColumnRef column / kFunction name
  Value literal;            // kLiteral
  bool distinct = false;    // kFunction: COUNT(DISTINCT x)
  bool negated = false;     // kInList / kInSubquery / kExists / kIsNull
  DataType cast_type = DataType::kInt64;  // kCast

  std::vector<std::shared_ptr<Expr>> children;  // operands / args
  // kCase: children = [when1, then1, when2, then2, ..., else?]; the
  // trailing odd child (if case_has_else) is the ELSE branch.
  bool case_has_else = false;

  SelectPtr subquery;  // kInSubquery / kExists

  // kWindow: ORDER BY keys of the OVER clause.
  std::vector<std::pair<std::shared_ptr<Expr>, bool>> window_order;
};

using ExprPtr = std::shared_ptr<Expr>;

/// One item of the SELECT list.
struct SelectItem {
  ExprPtr expr;
  std::string alias;  // empty -> derived from expr
  bool is_star = false;
};

/// FROM-clause item: a base table / CTE reference, an inline VALUES list,
/// or an explicit JOIN tree.
struct TableRef {
  enum class Kind { kBase, kValues, kJoin };
  enum class JoinType { kInner, kLeft, kRight, kFull, kCross };

  Kind kind;
  // kBase
  std::string table_name;
  std::string alias;
  // kValues: rows of literals + optional column aliases.
  std::vector<std::vector<Value>> values_rows;
  std::vector<std::string> values_columns;
  // kJoin
  JoinType join_type = JoinType::kInner;
  std::shared_ptr<TableRef> left;
  std::shared_ptr<TableRef> right;
  ExprPtr on_condition;  // null for CROSS
};

/// ORDER BY key.
struct OrderKey {
  ExprPtr expr;
  bool ascending = true;
};

/// A (possibly CTE-prefixed) SELECT statement.
struct SelectStmt {
  struct Cte {
    std::string name;
    std::vector<std::string> column_names;  // optional aliases
    SelectPtr select;
  };

  std::vector<Cte> ctes;
  bool distinct = false;
  std::vector<SelectItem> items;
  std::vector<std::shared_ptr<TableRef>> from;  // comma-separated refs
  ExprPtr where;
  std::vector<ExprPtr> group_by;
  ExprPtr having;
  std::vector<OrderKey> order_by;
  std::optional<int64_t> limit;
  // Pure VALUES body (CTE like `v(c0) AS (VALUES (0), (1))`).
  std::vector<std::vector<Value>> values_rows;
  bool is_values() const { return !values_rows.empty(); }
};

}  // namespace pytond::engine::sql

#endif  // PYTOND_ENGINE_SQL_AST_H_
