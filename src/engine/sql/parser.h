#ifndef PYTOND_ENGINE_SQL_PARSER_H_
#define PYTOND_ENGINE_SQL_PARSER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "engine/sql/ast.h"

namespace pytond::engine::sql {

/// Parses one SQL statement (WITH ... SELECT ...). The supported dialect is
/// the one PyTond's code generator emits plus hand-written reference
/// queries: CTEs, SELECT [DISTINCT], FROM with comma joins and explicit
/// [LEFT|RIGHT|FULL] [OUTER] JOIN .. ON, WHERE, GROUP BY, HAVING,
/// ORDER BY .. [ASC|DESC], LIMIT, CASE, CAST, EXISTS/IN subqueries, IN
/// lists, LIKE, IS [NOT] NULL, BETWEEN, date literals (DATE 'Y-M-D'),
/// row_number() OVER (ORDER BY ..), VALUES lists, and the scalar/aggregate
/// functions of the engine.
///
/// `params` binds prepared-statement placeholders: `$pN` in the text
/// substitutes (*params)[N] as a literal at parse time, so everything
/// below the parser is parameter-free. Null `params` (the default) makes
/// any placeholder a parse error.
Result<SelectPtr> ParseSql(const std::string& text,
                           const std::vector<Value>* params = nullptr);

}  // namespace pytond::engine::sql

#endif  // PYTOND_ENGINE_SQL_PARSER_H_
