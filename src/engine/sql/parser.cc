#include "engine/sql/parser.h"

#include <cctype>
#include <cstdlib>

#include "common/date_util.h"
#include "common/string_util.h"

namespace pytond::engine::sql {
namespace {

enum class TokKind { kEnd, kIdent, kKeyword, kNumber, kString, kOp, kParam };

struct Token {
  TokKind kind = TokKind::kEnd;
  std::string text;   // identifier (original case), op text, string payload
  std::string upper;  // uppercase for keyword comparison
  Value number;
  size_t pos = 0;
};

const char* kKeywords[] = {
    "SELECT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "ORDER", "LIMIT",
    "AS", "WITH", "AND", "OR", "NOT", "IN", "EXISTS", "LIKE", "BETWEEN",
    "IS", "NULL", "CASE", "WHEN", "THEN", "ELSE", "END", "CAST", "DISTINCT",
    "JOIN", "LEFT", "RIGHT", "FULL", "OUTER", "INNER", "CROSS", "ON",
    "ASC", "DESC", "VALUES", "DATE", "TRUE", "FALSE", "OVER", "UNION",
    "ALL", "INTERVAL", "EXTRACT", "YEAR", "MONTH", "DAY",
};

bool IsKeyword(const std::string& upper) {
  for (const char* k : kKeywords) {
    if (upper == k) return true;
  }
  return false;
}

class Lexer {
 public:
  explicit Lexer(const std::string& text) : text_(text) { Advance(); }

  const Token& Peek() const { return cur_; }

  Token Next() {
    Token t = cur_;
    Advance();
    return t;
  }

  Status error(const std::string& msg) const {
    size_t line = 1, col = 1;
    for (size_t i = 0; i < cur_.pos && i < text_.size(); ++i) {
      if (text_[i] == '\n') { ++line; col = 1; } else { ++col; }
    }
    return Status::ParseError(msg + " at line " + std::to_string(line) +
                              ":" + std::to_string(col) + " (near '" +
                              cur_.text + "')");
  }

 private:
  void Advance() {
    SkipWsAndComments();
    cur_ = Token{};
    cur_.pos = pos_;
    if (pos_ >= text_.size()) return;
    char c = text_[pos_];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = pos_;
      while (pos_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '_')) {
        ++pos_;
      }
      cur_.text = text_.substr(start, pos_ - start);
      cur_.upper = cur_.text;
      for (char& ch : cur_.upper) {
        ch = static_cast<char>(std::toupper(static_cast<unsigned char>(ch)));
      }
      cur_.kind = IsKeyword(cur_.upper) ? TokKind::kKeyword : TokKind::kIdent;
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = pos_;
      bool is_float = false;
      while (pos_ < text_.size() &&
             (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
              ((text_[pos_] == '+' || text_[pos_] == '-') && pos_ > start &&
               (text_[pos_ - 1] == 'e' || text_[pos_ - 1] == 'E')))) {
        if (text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E') {
          is_float = true;
        }
        ++pos_;
      }
      std::string tok = text_.substr(start, pos_ - start);
      cur_.kind = TokKind::kNumber;
      cur_.text = tok;
      cur_.number = is_float
                        ? Value::Float64(std::strtod(tok.c_str(), nullptr))
                        : Value::Int64(std::strtoll(tok.c_str(), nullptr, 10));
      return;
    }
    if (c == '\'') {
      ++pos_;
      std::string out;
      while (pos_ < text_.size()) {
        if (text_[pos_] == '\'') {
          if (pos_ + 1 < text_.size() && text_[pos_ + 1] == '\'') {
            out += '\'';
            pos_ += 2;
            continue;
          }
          break;
        }
        out += text_[pos_++];
      }
      ++pos_;  // closing quote
      cur_.kind = TokKind::kString;
      cur_.text = std::move(out);
      return;
    }
    if (c == '$') {  // parameter placeholder $pN (prepared statements)
      size_t start = pos_;
      ++pos_;
      if (pos_ < text_.size() && text_[pos_] == 'p') {
        ++pos_;
        size_t digits = pos_;
        while (pos_ < text_.size() &&
               std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
          ++pos_;
        }
        if (pos_ > digits) {
          cur_.kind = TokKind::kParam;
          cur_.text = text_.substr(start, pos_ - start);
          cur_.number = Value::Int64(
              std::strtoll(text_.substr(digits, pos_ - digits).c_str(),
                           nullptr, 10));
          return;
        }
      }
      pos_ = start + 1;
      cur_.kind = TokKind::kOp;
      cur_.text = "$";
      return;
    }
    if (c == '"') {  // quoted identifier
      ++pos_;
      size_t start = pos_;
      while (pos_ < text_.size() && text_[pos_] != '"') ++pos_;
      cur_.kind = TokKind::kIdent;
      cur_.text = text_.substr(start, pos_ - start);
      cur_.upper = string_util::ToLower(cur_.text);
      ++pos_;
      return;
    }
    // Operators / punctuation.
    static const char* kTwoChar[] = {"<=", ">=", "<>", "!=", "||"};
    for (const char* op : kTwoChar) {
      if (text_.compare(pos_, 2, op) == 0) {
        cur_.kind = TokKind::kOp;
        cur_.text = op;
        pos_ += 2;
        return;
      }
    }
    cur_.kind = TokKind::kOp;
    cur_.text = std::string(1, c);
    ++pos_;
  }

  void SkipWsAndComments() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '-' && pos_ + 1 < text_.size() &&
                 text_[pos_ + 1] == '-') {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
      } else {
        break;
      }
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
  Token cur_;
};

ExprPtr MakeExpr(Expr::Kind kind) {
  auto e = std::make_shared<Expr>();
  e->kind = kind;
  return e;
}

class Parser {
 public:
  Parser(const std::string& text, const std::vector<Value>* params)
      : lex_(text), params_(params) {}

  Result<SelectPtr> ParseStatement() {
    PYTOND_ASSIGN_OR_RETURN(SelectPtr stmt, ParseSelect());
    if (TryOp(";")) {
      // trailing semicolon ok
    }
    if (lex_.Peek().kind != TokKind::kEnd) {
      return lex_.error("trailing input after statement");
    }
    return stmt;
  }

 private:
  // ---- token helpers ----
  bool PeekKeyword(const char* kw) const {
    return lex_.Peek().kind == TokKind::kKeyword && lex_.Peek().upper == kw;
  }
  bool TryKeyword(const char* kw) {
    if (PeekKeyword(kw)) {
      lex_.Next();
      return true;
    }
    return false;
  }
  Status ExpectKeyword(const char* kw) {
    if (!TryKeyword(kw)) return lex_.error(std::string("expected ") + kw);
    return Status::OK();
  }
  bool PeekOp(const char* op) const {
    return lex_.Peek().kind == TokKind::kOp && lex_.Peek().text == op;
  }
  bool TryOp(const char* op) {
    if (PeekOp(op)) {
      lex_.Next();
      return true;
    }
    return false;
  }
  Status ExpectOp(const char* op) {
    if (!TryOp(op)) return lex_.error(std::string("expected '") + op + "'");
    return Status::OK();
  }
  Result<std::string> Identifier() {
    if (lex_.Peek().kind == TokKind::kIdent) return lex_.Next().text;
    // Soft keywords usable as column names (e.g. a column called "month").
    if (lex_.Peek().kind == TokKind::kKeyword &&
        (lex_.Peek().upper == "YEAR" || lex_.Peek().upper == "MONTH" ||
         lex_.Peek().upper == "DAY" || lex_.Peek().upper == "VALUES")) {
      return lex_.Next().text;
    }
    return lex_.error("expected identifier");
  }

  // ---- statement level ----
  Result<SelectPtr> ParseSelect() {
    auto stmt = std::make_shared<SelectStmt>();
    if (TryKeyword("WITH")) {
      while (true) {
        SelectStmt::Cte cte;
        PYTOND_ASSIGN_OR_RETURN(cte.name, Identifier());
        if (TryOp("(")) {
          while (true) {
            PYTOND_ASSIGN_OR_RETURN(std::string col, Identifier());
            cte.column_names.push_back(col);
            if (TryOp(")")) break;
            PYTOND_RETURN_IF_ERROR(ExpectOp(","));
          }
        }
        PYTOND_RETURN_IF_ERROR(ExpectKeyword("AS"));
        PYTOND_RETURN_IF_ERROR(ExpectOp("("));
        PYTOND_ASSIGN_OR_RETURN(cte.select, ParseSelectCore());
        PYTOND_RETURN_IF_ERROR(ExpectOp(")"));
        stmt->ctes.push_back(std::move(cte));
        if (!TryOp(",")) break;
      }
    }
    PYTOND_ASSIGN_OR_RETURN(SelectPtr core, ParseSelectCore());
    core->ctes = std::move(stmt->ctes);
    return core;
  }

  Result<SelectPtr> ParseSelectCore() {
    auto stmt = std::make_shared<SelectStmt>();
    if (TryKeyword("VALUES")) {
      PYTOND_RETURN_IF_ERROR(ParseValuesRows(&stmt->values_rows));
      return stmt;
    }
    PYTOND_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
    if (TryKeyword("DISTINCT")) stmt->distinct = true;
    while (true) {
      SelectItem item;
      if (TryOp("*")) {
        item.is_star = true;
      } else {
        PYTOND_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (TryKeyword("AS")) {
          PYTOND_ASSIGN_OR_RETURN(item.alias, Identifier());
        } else if (lex_.Peek().kind == TokKind::kIdent) {
          item.alias = lex_.Next().text;
        }
      }
      stmt->items.push_back(std::move(item));
      if (!TryOp(",")) break;
    }
    if (TryKeyword("FROM")) {
      while (true) {
        PYTOND_ASSIGN_OR_RETURN(auto ref, ParseTableRef());
        stmt->from.push_back(ref);
        if (!TryOp(",")) break;
      }
    }
    if (TryKeyword("WHERE")) {
      PYTOND_ASSIGN_OR_RETURN(stmt->where, ParseExpr());
    }
    if (TryKeyword("GROUP")) {
      PYTOND_RETURN_IF_ERROR(ExpectKeyword("BY"));
      while (true) {
        PYTOND_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        stmt->group_by.push_back(e);
        if (!TryOp(",")) break;
      }
    }
    if (TryKeyword("HAVING")) {
      PYTOND_ASSIGN_OR_RETURN(stmt->having, ParseExpr());
    }
    if (TryKeyword("ORDER")) {
      PYTOND_RETURN_IF_ERROR(ExpectKeyword("BY"));
      while (true) {
        OrderKey key;
        PYTOND_ASSIGN_OR_RETURN(key.expr, ParseExpr());
        if (TryKeyword("DESC")) key.ascending = false;
        else TryKeyword("ASC");
        stmt->order_by.push_back(std::move(key));
        if (!TryOp(",")) break;
      }
    }
    if (TryKeyword("LIMIT")) {
      if (lex_.Peek().kind != TokKind::kNumber) {
        return lex_.error("expected LIMIT count");
      }
      stmt->limit = lex_.Next().number.AsInt64();
    }
    return stmt;
  }

  Status ParseValuesRows(std::vector<std::vector<Value>>* rows) {
    while (true) {
      PYTOND_RETURN_IF_ERROR(ExpectOp("("));
      std::vector<Value> row;
      while (true) {
        PYTOND_ASSIGN_OR_RETURN(Value v, ParseLiteralValue());
        row.push_back(std::move(v));
        if (TryOp(")")) break;
        PYTOND_RETURN_IF_ERROR(ExpectOp(","));
      }
      rows->push_back(std::move(row));
      if (!TryOp(",")) break;
    }
    return Status::OK();
  }

  Result<Value> ParseLiteralValue() {
    const Token& t = lex_.Peek();
    if (t.kind == TokKind::kNumber) return lex_.Next().number;
    if (t.kind == TokKind::kString) return Value::String(lex_.Next().text);
    bool neg = false;
    if (PeekOp("-")) {
      lex_.Next();
      neg = true;
      if (lex_.Peek().kind == TokKind::kNumber) {
        Value v = lex_.Next().number;
        if (v.type() == DataType::kFloat64) {
          return Value::Float64(-v.AsFloat64());
        }
        return Value::Int64(-v.AsInt64());
      }
      return lex_.error("expected number after '-'");
    }
    (void)neg;
    if (TryKeyword("TRUE")) return Value::Bool(true);
    if (TryKeyword("FALSE")) return Value::Bool(false);
    if (TryKeyword("NULL")) return Value::Null();
    if (TryKeyword("DATE")) {
      if (lex_.Peek().kind != TokKind::kString) {
        return lex_.error("expected date string");
      }
      PYTOND_ASSIGN_OR_RETURN(int32_t d, date_util::Parse(lex_.Next().text));
      return Value::Date(d);
    }
    return lex_.error("expected literal");
  }

  // ---- FROM clause ----
  Result<std::shared_ptr<TableRef>> ParseTableRef() {
    PYTOND_ASSIGN_OR_RETURN(auto left, ParseTablePrimary());
    while (true) {
      TableRef::JoinType jt;
      if (TryKeyword("JOIN")) {
        jt = TableRef::JoinType::kInner;
      } else if (TryKeyword("INNER")) {
        PYTOND_RETURN_IF_ERROR(ExpectKeyword("JOIN"));
        jt = TableRef::JoinType::kInner;
      } else if (TryKeyword("LEFT")) {
        TryKeyword("OUTER");
        PYTOND_RETURN_IF_ERROR(ExpectKeyword("JOIN"));
        jt = TableRef::JoinType::kLeft;
      } else if (TryKeyword("RIGHT")) {
        TryKeyword("OUTER");
        PYTOND_RETURN_IF_ERROR(ExpectKeyword("JOIN"));
        jt = TableRef::JoinType::kRight;
      } else if (TryKeyword("FULL")) {
        TryKeyword("OUTER");
        PYTOND_RETURN_IF_ERROR(ExpectKeyword("JOIN"));
        jt = TableRef::JoinType::kFull;
      } else if (TryKeyword("CROSS")) {
        PYTOND_RETURN_IF_ERROR(ExpectKeyword("JOIN"));
        jt = TableRef::JoinType::kCross;
      } else {
        break;
      }
      PYTOND_ASSIGN_OR_RETURN(auto right, ParseTablePrimary());
      auto join = std::make_shared<TableRef>();
      join->kind = TableRef::Kind::kJoin;
      join->join_type = jt;
      join->left = left;
      join->right = right;
      if (jt != TableRef::JoinType::kCross) {
        PYTOND_RETURN_IF_ERROR(ExpectKeyword("ON"));
        PYTOND_ASSIGN_OR_RETURN(join->on_condition, ParseExpr());
      }
      left = join;
    }
    return left;
  }

  Result<std::shared_ptr<TableRef>> ParseTablePrimary() {
    auto ref = std::make_shared<TableRef>();
    if (TryOp("(")) {
      PYTOND_RETURN_IF_ERROR(ExpectKeyword("VALUES"));
      ref->kind = TableRef::Kind::kValues;
      PYTOND_RETURN_IF_ERROR(ParseValuesRows(&ref->values_rows));
      PYTOND_RETURN_IF_ERROR(ExpectOp(")"));
    } else {
      ref->kind = TableRef::Kind::kBase;
      PYTOND_ASSIGN_OR_RETURN(ref->table_name, Identifier());
    }
    if (TryKeyword("AS")) {
      PYTOND_ASSIGN_OR_RETURN(ref->alias, Identifier());
    } else if (lex_.Peek().kind == TokKind::kIdent) {
      ref->alias = lex_.Next().text;
    }
    if (ref->kind == TableRef::Kind::kValues && TryOp("(")) {
      while (true) {
        PYTOND_ASSIGN_OR_RETURN(std::string col, Identifier());
        ref->values_columns.push_back(col);
        if (TryOp(")")) break;
        PYTOND_RETURN_IF_ERROR(ExpectOp(","));
      }
    }
    return ref;
  }

  // ---- expressions (precedence climbing) ----
  Result<ExprPtr> ParseExpr() { return ParseOr(); }

  Result<ExprPtr> ParseOr() {
    PYTOND_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAnd());
    while (TryKeyword("OR")) {
      PYTOND_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAnd());
      auto e = MakeExpr(Expr::Kind::kBinary);
      e->op = Expr::Op::kOr;
      e->children = {lhs, rhs};
      lhs = e;
    }
    return lhs;
  }

  Result<ExprPtr> ParseAnd() {
    PYTOND_ASSIGN_OR_RETURN(ExprPtr lhs, ParseNot());
    while (TryKeyword("AND")) {
      PYTOND_ASSIGN_OR_RETURN(ExprPtr rhs, ParseNot());
      auto e = MakeExpr(Expr::Kind::kBinary);
      e->op = Expr::Op::kAnd;
      e->children = {lhs, rhs};
      lhs = e;
    }
    return lhs;
  }

  Result<ExprPtr> ParseNot() {
    if (TryKeyword("NOT")) {
      PYTOND_ASSIGN_OR_RETURN(ExprPtr inner, ParseNot());
      auto e = MakeExpr(Expr::Kind::kUnary);
      e->op = Expr::Op::kNot;
      e->children = {inner};
      return e;
    }
    return ParseComparison();
  }

  Result<ExprPtr> ParseComparison() {
    if (TryKeyword("EXISTS")) {
      PYTOND_RETURN_IF_ERROR(ExpectOp("("));
      auto e = MakeExpr(Expr::Kind::kExists);
      PYTOND_ASSIGN_OR_RETURN(e->subquery, ParseSelect());
      PYTOND_RETURN_IF_ERROR(ExpectOp(")"));
      return e;
    }
    PYTOND_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAdditive());
    // Postfix predicates.
    while (true) {
      if (TryKeyword("IS")) {
        bool neg = TryKeyword("NOT");
        PYTOND_RETURN_IF_ERROR(ExpectKeyword("NULL"));
        auto e = MakeExpr(Expr::Kind::kIsNull);
        e->negated = neg;
        e->children = {lhs};
        lhs = e;
        continue;
      }
      bool neg = false;
      if (PeekKeyword("NOT")) {
        // lookahead for NOT IN / NOT LIKE / NOT BETWEEN
        lex_.Next();
        neg = true;
      }
      if (TryKeyword("LIKE")) {
        PYTOND_ASSIGN_OR_RETURN(ExprPtr pat, ParseAdditive());
        auto e = MakeExpr(Expr::Kind::kBinary);
        e->op = neg ? Expr::Op::kNotLike : Expr::Op::kLike;
        e->children = {lhs, pat};
        lhs = e;
        continue;
      }
      if (TryKeyword("BETWEEN")) {
        PYTOND_ASSIGN_OR_RETURN(ExprPtr lo, ParseAdditive());
        PYTOND_RETURN_IF_ERROR(ExpectKeyword("AND"));
        PYTOND_ASSIGN_OR_RETURN(ExprPtr hi, ParseAdditive());
        auto e = MakeExpr(Expr::Kind::kBetween);
        e->negated = neg;
        e->children = {lhs, lo, hi};
        lhs = e;
        continue;
      }
      if (TryKeyword("IN")) {
        PYTOND_RETURN_IF_ERROR(ExpectOp("("));
        if (PeekKeyword("SELECT") || PeekKeyword("WITH")) {
          auto e = MakeExpr(Expr::Kind::kInSubquery);
          e->negated = neg;
          e->children = {lhs};
          PYTOND_ASSIGN_OR_RETURN(e->subquery, ParseSelect());
          PYTOND_RETURN_IF_ERROR(ExpectOp(")"));
          lhs = e;
        } else {
          auto e = MakeExpr(Expr::Kind::kInList);
          e->negated = neg;
          e->children = {lhs};
          while (true) {
            PYTOND_ASSIGN_OR_RETURN(ExprPtr v, ParseAdditive());
            e->children.push_back(v);
            if (TryOp(")")) break;
            PYTOND_RETURN_IF_ERROR(ExpectOp(","));
          }
          lhs = e;
        }
        continue;
      }
      if (neg) return lex_.error("expected IN/LIKE/BETWEEN after NOT");
      break;
    }
    // Binary comparison.
    struct CmpTok { const char* tok; Expr::Op op; };
    static const CmpTok kCmps[] = {
        {"<=", Expr::Op::kLe}, {">=", Expr::Op::kGe}, {"<>", Expr::Op::kNe},
        {"!=", Expr::Op::kNe}, {"<", Expr::Op::kLt},  {">", Expr::Op::kGt},
        {"=", Expr::Op::kEq},
    };
    for (const CmpTok& ct : kCmps) {
      if (TryOp(ct.tok)) {
        PYTOND_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdditive());
        auto e = MakeExpr(Expr::Kind::kBinary);
        e->op = ct.op;
        e->children = {lhs, rhs};
        return e;
      }
    }
    return lhs;
  }

  Result<ExprPtr> ParseAdditive() {
    PYTOND_ASSIGN_OR_RETURN(ExprPtr lhs, ParseMultiplicative());
    while (true) {
      Expr::Op op;
      if (TryOp("+")) op = Expr::Op::kAdd;
      else if (TryOp("-")) op = Expr::Op::kSub;
      else if (TryOp("||")) op = Expr::Op::kConcat;
      else break;
      PYTOND_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMultiplicative());
      auto e = MakeExpr(Expr::Kind::kBinary);
      e->op = op;
      e->children = {lhs, rhs};
      lhs = e;
    }
    return lhs;
  }

  Result<ExprPtr> ParseMultiplicative() {
    PYTOND_ASSIGN_OR_RETURN(ExprPtr lhs, ParseUnary());
    while (true) {
      Expr::Op op;
      if (TryOp("*")) op = Expr::Op::kMul;
      else if (TryOp("/")) op = Expr::Op::kDiv;
      else if (TryOp("%")) op = Expr::Op::kMod;
      else break;
      PYTOND_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnary());
      auto e = MakeExpr(Expr::Kind::kBinary);
      e->op = op;
      e->children = {lhs, rhs};
      lhs = e;
    }
    return lhs;
  }

  Result<ExprPtr> ParseUnary() {
    if (TryOp("-")) {
      PYTOND_ASSIGN_OR_RETURN(ExprPtr inner, ParseUnary());
      auto e = MakeExpr(Expr::Kind::kUnary);
      e->op = Expr::Op::kNeg;
      e->children = {inner};
      return e;
    }
    if (TryOp("+")) return ParseUnary();
    return ParsePrimary();
  }

  Result<ExprPtr> ParsePrimary() {
    const Token& t = lex_.Peek();
    if (t.kind == TokKind::kParam) {
      // Parameters substitute at parse time: the plan below the parser
      // only ever sees ordinary literals, so binding a prepared statement
      // costs one parse, never a re-compile.
      if (params_ == nullptr) {
        return lex_.error("parameter placeholder in non-prepared query");
      }
      int64_t idx = t.number.AsInt64();
      if (idx < 0 || static_cast<size_t>(idx) >= params_->size()) {
        return lex_.error("parameter index out of range (bound " +
                          std::to_string(params_->size()) + ")");
      }
      lex_.Next();
      auto e = MakeExpr(Expr::Kind::kLiteral);
      e->literal = (*params_)[static_cast<size_t>(idx)];
      return e;
    }
    if (t.kind == TokKind::kNumber) {
      auto e = MakeExpr(Expr::Kind::kLiteral);
      e->literal = lex_.Next().number;
      return e;
    }
    if (t.kind == TokKind::kString) {
      auto e = MakeExpr(Expr::Kind::kLiteral);
      e->literal = Value::String(lex_.Next().text);
      return e;
    }
    if (PeekKeyword("TRUE") || PeekKeyword("FALSE") || PeekKeyword("NULL") ||
        PeekKeyword("DATE")) {
      PYTOND_ASSIGN_OR_RETURN(Value v, ParseLiteralValue());
      auto e = MakeExpr(Expr::Kind::kLiteral);
      e->literal = std::move(v);
      return e;
    }
    if (TryKeyword("CASE")) {
      auto e = MakeExpr(Expr::Kind::kCase);
      while (TryKeyword("WHEN")) {
        PYTOND_ASSIGN_OR_RETURN(ExprPtr cond, ParseExpr());
        PYTOND_RETURN_IF_ERROR(ExpectKeyword("THEN"));
        PYTOND_ASSIGN_OR_RETURN(ExprPtr val, ParseExpr());
        e->children.push_back(cond);
        e->children.push_back(val);
      }
      if (TryKeyword("ELSE")) {
        PYTOND_ASSIGN_OR_RETURN(ExprPtr val, ParseExpr());
        e->children.push_back(val);
        e->case_has_else = true;
      }
      // Tolerate the codegen's compact form "(CASE WHEN .. ELSE x)" where
      // END is supplied; END is required by grammar.
      PYTOND_RETURN_IF_ERROR(ExpectKeyword("END"));
      return e;
    }
    if (TryKeyword("CAST")) {
      PYTOND_RETURN_IF_ERROR(ExpectOp("("));
      auto e = MakeExpr(Expr::Kind::kCast);
      PYTOND_ASSIGN_OR_RETURN(ExprPtr inner, ParseExpr());
      e->children = {inner};
      PYTOND_RETURN_IF_ERROR(ExpectKeyword("AS"));
      // DATE is a reserved keyword (date literals), so Identifier() would
      // reject it; accept it explicitly as a cast target.
      std::string ty;
      if (TryKeyword("DATE")) {
        ty = "date";
      } else {
        PYTOND_ASSIGN_OR_RETURN(ty, Identifier());
      }
      std::string tyl = string_util::ToLower(ty);
      if (tyl == "double" || tyl == "float" || tyl == "real" ||
          tyl == "float64") {
        e->cast_type = DataType::kFloat64;
      } else if (tyl == "int" || tyl == "integer" || tyl == "bigint" ||
                 tyl == "int64") {
        e->cast_type = DataType::kInt64;
      } else if (tyl == "varchar" || tyl == "text" || tyl == "string") {
        e->cast_type = DataType::kString;
      } else if (tyl == "date") {
        e->cast_type = DataType::kDate;
      } else {
        return lex_.error("unsupported cast type " + ty);
      }
      PYTOND_RETURN_IF_ERROR(ExpectOp(")"));
      return e;
    }
    if (TryKeyword("EXTRACT")) {
      PYTOND_RETURN_IF_ERROR(ExpectOp("("));
      std::string field;
      if (TryKeyword("YEAR")) field = "year";
      else if (TryKeyword("MONTH")) field = "month";
      else if (TryKeyword("DAY")) field = "day";
      else return lex_.error("unsupported EXTRACT field");
      PYTOND_RETURN_IF_ERROR(ExpectKeyword("FROM"));
      PYTOND_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
      PYTOND_RETURN_IF_ERROR(ExpectOp(")"));
      auto e = MakeExpr(Expr::Kind::kFunction);
      e->name = field;
      e->children = {arg};
      return e;
    }
    if (PeekKeyword("YEAR") || PeekKeyword("MONTH") || PeekKeyword("DAY")) {
      // Soft keyword: year(x) is the Hyper-style date function; a bare
      // `year` (or `tbl.year`) is an ordinary column reference.
      std::string word = lex_.Next().text;
      if (TryOp("(")) {
        PYTOND_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
        PYTOND_RETURN_IF_ERROR(ExpectOp(")"));
        auto e = MakeExpr(Expr::Kind::kFunction);
        e->name = string_util::ToLower(word);
        e->children = {arg};
        return e;
      }
      auto e = MakeExpr(Expr::Kind::kColumnRef);
      if (TryOp(".")) {
        e->table = word;
        PYTOND_ASSIGN_OR_RETURN(e->name, Identifier());
      } else {
        e->name = word;
      }
      return e;
    }
    if (TryOp("(")) {
      PYTOND_ASSIGN_OR_RETURN(ExprPtr inner, ParseExpr());
      PYTOND_RETURN_IF_ERROR(ExpectOp(")"));
      return inner;
    }
    if (t.kind == TokKind::kIdent) {
      std::string name = lex_.Next().text;
      if (TryOp("(")) {
        auto e = MakeExpr(Expr::Kind::kFunction);
        e->name = string_util::ToLower(name);
        if (TryKeyword("DISTINCT")) e->distinct = true;
        if (TryOp("*")) {
          e->children.push_back(MakeExpr(Expr::Kind::kStar));
          PYTOND_RETURN_IF_ERROR(ExpectOp(")"));
        } else if (!TryOp(")")) {
          while (true) {
            PYTOND_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
            e->children.push_back(arg);
            if (TryOp(")")) break;
            PYTOND_RETURN_IF_ERROR(ExpectOp(","));
          }
        }
        if (TryKeyword("OVER")) {
          auto w = MakeExpr(Expr::Kind::kWindow);
          w->name = e->name;
          PYTOND_RETURN_IF_ERROR(ExpectOp("("));
          if (TryKeyword("ORDER")) {
            PYTOND_RETURN_IF_ERROR(ExpectKeyword("BY"));
            while (true) {
              PYTOND_ASSIGN_OR_RETURN(ExprPtr k, ParseExpr());
              bool asc = true;
              if (TryKeyword("DESC")) asc = false;
              else TryKeyword("ASC");
              w->window_order.emplace_back(k, asc);
              if (!TryOp(",")) break;
            }
          }
          PYTOND_RETURN_IF_ERROR(ExpectOp(")"));
          return w;
        }
        return e;
      }
      auto e = MakeExpr(Expr::Kind::kColumnRef);
      if (TryOp(".")) {
        e->table = name;
        PYTOND_ASSIGN_OR_RETURN(e->name, Identifier());
      } else {
        e->name = name;
      }
      return e;
    }
    return lex_.error("unexpected token in expression");
  }

  Lexer lex_;
  const std::vector<Value>* params_;
};

}  // namespace

Result<SelectPtr> ParseSql(const std::string& text,
                           const std::vector<Value>* params) {
  return Parser(text, params).ParseStatement();
}

}  // namespace pytond::engine::sql
