#include "engine/expr/expr.h"

#include <cmath>
#include <cstring>

#include "common/date_util.h"
#include "common/string_util.h"

namespace pytond::engine {

using sql::Expr;

BoundExprPtr BoundExpr::ColRef(int index, DataType type) {
  auto e = std::make_shared<BoundExpr>();
  e->kind = Kind::kColRef;
  e->col_index = index;
  e->type = type;
  return e;
}

BoundExprPtr BoundExpr::Const(Value v) {
  auto e = std::make_shared<BoundExpr>();
  e->kind = Kind::kConst;
  e->type = v.type();
  e->constant = std::move(v);
  return e;
}

BoundExprPtr BoundExpr::Binary(sql::Expr::Op op, BoundExprPtr l,
                               BoundExprPtr r, DataType type) {
  auto e = std::make_shared<BoundExpr>();
  e->kind = Kind::kBinary;
  e->op = op;
  e->type = type;
  e->children = {std::move(l), std::move(r)};
  return e;
}

BoundExprPtr BoundExpr::Unary(sql::Expr::Op op, BoundExprPtr c,
                              DataType type) {
  auto e = std::make_shared<BoundExpr>();
  e->kind = Kind::kUnary;
  e->op = op;
  e->type = type;
  e->children = {std::move(c)};
  return e;
}

BoundExprPtr BoundExpr::Func(std::string name, std::vector<BoundExprPtr> args,
                             DataType type) {
  auto e = std::make_shared<BoundExpr>();
  e->kind = Kind::kFunc;
  e->func = std::move(name);
  e->type = type;
  e->children = std::move(args);
  return e;
}

std::string BoundExpr::ToString() const {
  switch (kind) {
    case Kind::kColRef: {
      std::string s = "#";
      s += std::to_string(col_index);
      return s;
    }
    case Kind::kConst: return constant.ToString();
    case Kind::kBinary: {
      std::string s = "(";
      s += children[0]->ToString();
      s += " op";
      s += std::to_string(static_cast<int>(op));
      s += " ";
      s += children[1]->ToString();
      s += ")";
      return s;
    }
    case Kind::kUnary: {
      std::string s = "(u ";
      s += children[0]->ToString();
      s += ")";
      return s;
    }
    case Kind::kFunc: {
      std::string s = func + "(";
      for (size_t i = 0; i < children.size(); ++i) {
        if (i) s += ",";
        s += children[i]->ToString();
      }
      return s + ")";
    }
    case Kind::kCase: return "case(...)";
    case Kind::kCast: {
      std::string s = "cast(";
      s += children[0]->ToString();
      s += ")";
      return s;
    }
    case Kind::kIsNull: {
      std::string s = "isnull(";
      s += children[0]->ToString();
      s += ")";
      return s;
    }
    case Kind::kInList: {
      std::string s = "in(";
      s += children[0]->ToString();
      s += ")";
      return s;
    }
  }
  return "?";
}

void BoundExpr::CollectColumns(std::vector<int>* out) const {
  if (kind == Kind::kColRef) out->push_back(col_index);
  for (const auto& c : children) c->CollectColumns(out);
}

BoundExprPtr BoundExpr::CloneExpr() const {
  auto e = std::make_shared<BoundExpr>(*this);
  for (auto& c : e->children) c = c->CloneExpr();
  return e;
}

BoundExprPtr BoundExpr::RemapColumns(const BoundExprPtr& e,
                                     const std::vector<int>& mapping) {
  auto copy = e->CloneExpr();
  struct Walker {
    const std::vector<int>& mapping;
    void Walk(BoundExpr* n) {
      if (n->kind == Kind::kColRef) {
        n->col_index = mapping[n->col_index];
      }
      for (auto& c : n->children) Walk(c.get());
    }
  } w{mapping};
  w.Walk(copy.get());
  return copy;
}

namespace {

size_t RangeLen(size_t begin, size_t end) { return end - begin; }

// Reads column values as doubles over [begin, end).
std::vector<double> AsDoubles(const Column& c, size_t begin, size_t end) {
  std::vector<double> out(RangeLen(begin, end));
  switch (c.type()) {
    case DataType::kInt64:
    case DataType::kNull: {
      const auto& v = c.ints();
      for (size_t i = begin; i < end; ++i) {
        out[i - begin] = static_cast<double>(v[i]);
      }
      break;
    }
    case DataType::kFloat64: {
      const auto& v = c.doubles();
      std::copy(v.begin() + begin, v.begin() + end, out.begin());
      break;
    }
    case DataType::kBool: {
      const auto& v = c.bools();
      for (size_t i = begin; i < end; ++i) out[i - begin] = v[i] ? 1.0 : 0.0;
      break;
    }
    case DataType::kDate: {
      const auto& v = c.dates();
      for (size_t i = begin; i < end; ++i) {
        out[i - begin] = static_cast<double>(v[i]);
      }
      break;
    }
    case DataType::kString: break;  // caller guarantees numeric
  }
  return out;
}

std::vector<int64_t> AsInts(const Column& c, size_t begin, size_t end) {
  std::vector<int64_t> out(RangeLen(begin, end));
  switch (c.type()) {
    case DataType::kInt64:
    case DataType::kNull: {
      const auto& v = c.ints();
      std::copy(v.begin() + begin, v.begin() + end, out.begin());
      break;
    }
    case DataType::kFloat64: {
      const auto& v = c.doubles();
      for (size_t i = begin; i < end; ++i) {
        out[i - begin] = static_cast<int64_t>(v[i]);
      }
      break;
    }
    case DataType::kBool: {
      const auto& v = c.bools();
      for (size_t i = begin; i < end; ++i) out[i - begin] = v[i];
      break;
    }
    case DataType::kDate: {
      const auto& v = c.dates();
      for (size_t i = begin; i < end; ++i) out[i - begin] = v[i];
      break;
    }
    case DataType::kString: break;
  }
  return out;
}

// Validity slice of [begin, end); empty => all valid.
std::vector<uint8_t> SliceValidity(const Column& c, size_t begin,
                                   size_t end) {
  if (c.validity().empty()) return {};
  return std::vector<uint8_t>(c.validity().begin() + begin,
                              c.validity().begin() + end);
}

std::vector<uint8_t> MergeValidity(const std::vector<uint8_t>& a,
                                   const std::vector<uint8_t>& b) {
  if (a.empty()) return b;
  if (b.empty()) return a;
  std::vector<uint8_t> out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] & b[i];
  return out;
}

// Materializes a constant as a column of length n.
Column ConstColumn(const Value& v, size_t n) {
  DataType t = v.is_null() ? DataType::kInt64 : v.type();
  Column c(t);
  c.Reserve(n);
  for (size_t i = 0; i < n; ++i) c.Append(v);
  return c;
}

bool IsComparison(Expr::Op op) {
  switch (op) {
    case Expr::Op::kLt: case Expr::Op::kLe: case Expr::Op::kEq:
    case Expr::Op::kNe: case Expr::Op::kGe: case Expr::Op::kGt:
      return true;
    default: return false;
  }
}

template <typename T>
uint8_t CompareOp(Expr::Op op, const T& a, const T& b) {
  switch (op) {
    case Expr::Op::kLt: return a < b;
    case Expr::Op::kLe: return a <= b;
    case Expr::Op::kEq: return a == b;
    case Expr::Op::kNe: return a != b;
    case Expr::Op::kGe: return a >= b;
    case Expr::Op::kGt: return a > b;
    default: return 0;
  }
}

}  // namespace

Result<DataType> ScalarFunctionType(const std::string& name,
                                    const std::vector<DataType>& args) {
  if (name == "round" || name == "abs") {
    if (args.empty()) return Status::TypeError(name + " needs an argument");
    return args[0] == DataType::kInt64 && name == "abs" ? DataType::kInt64
                                                        : DataType::kFloat64;
  }
  if (name == "year" || name == "month" || name == "day" ||
      name == "length") {
    return DataType::kInt64;
  }
  if (name == "substr" || name == "substring" || name == "lower" ||
      name == "upper") {
    return DataType::kString;
  }
  if (name == "starts_with" || name == "ends_with" || name == "contains") {
    return DataType::kBool;
  }
  if (name == "coalesce") {
    for (DataType t : args) {
      if (t != DataType::kNull) return t;
    }
    return DataType::kNull;
  }
  if (name == "sqrt" || name == "ln" || name == "exp" || name == "power") {
    return DataType::kFloat64;
  }
  return Status::Unsupported("unknown scalar function '" + name + "'");
}

namespace {

Result<Column> EvalBinary(const BoundExpr& expr, const Table& input,
                          size_t begin, size_t end) {
  size_t n = RangeLen(begin, end);
  PYTOND_ASSIGN_OR_RETURN(Column lc,
                          EvaluateExpr(*expr.children[0], input, begin, end));
  // Short-circuitable logic ops still evaluate both sides (vectorized).
  PYTOND_ASSIGN_OR_RETURN(Column rc,
                          EvaluateExpr(*expr.children[1], input, begin, end));
  std::vector<uint8_t> validity =
      MergeValidity(SliceValidity(lc, 0, n), SliceValidity(rc, 0, n));

  Expr::Op op = expr.op;
  if (op == Expr::Op::kAnd || op == Expr::Op::kOr) {
    const auto& a = lc.bools();
    const auto& b = rc.bools();
    std::vector<uint8_t> out(n);
    // NULL collapses to false: mask invalid lanes to 0 first.
    for (size_t i = 0; i < n; ++i) {
      uint8_t av = lc.IsValid(i) ? a[i] : 0;
      uint8_t bv = rc.IsValid(i) ? b[i] : 0;
      out[i] = op == Expr::Op::kAnd ? (av & bv) : (av | bv);
    }
    return Column::Bool(std::move(out));
  }

  if (op == Expr::Op::kLike || op == Expr::Op::kNotLike) {
    const auto& a = lc.strings();
    const auto& b = rc.strings();
    std::vector<uint8_t> out(n);
    bool rhs_const = expr.children[1]->kind == BoundExpr::Kind::kConst;
    // Guard n == 0: a constant pattern column has no lanes to index.
    const std::string pat0 =
        (rhs_const && n > 0) ? b[0] : std::string();
    for (size_t i = 0; i < n; ++i) {
      bool m = string_util::Like(a[i], rhs_const ? pat0 : b[i]);
      out[i] = (op == Expr::Op::kLike) ? m : !m;
    }
    Column c = Column::Bool(std::move(out));
    c.validity() = std::move(validity);
    return c;
  }

  if (IsComparison(op)) {
    std::vector<uint8_t> out(n);
    if (lc.type() == DataType::kString || rc.type() == DataType::kString) {
      const auto& a = lc.strings();
      const auto& b = rc.strings();
      for (size_t i = 0; i < n; ++i) out[i] = CompareOp(op, a[i], b[i]);
    } else if (lc.type() == DataType::kInt64 &&
               rc.type() == DataType::kInt64) {
      const auto& a = lc.ints();
      const auto& b = rc.ints();
      for (size_t i = 0; i < n; ++i) out[i] = CompareOp(op, a[i], b[i]);
    } else if (lc.type() == DataType::kDate && rc.type() == DataType::kDate) {
      const auto& a = lc.dates();
      const auto& b = rc.dates();
      for (size_t i = 0; i < n; ++i) out[i] = CompareOp(op, a[i], b[i]);
    } else {
      std::vector<double> a = AsDoubles(lc, 0, n), b = AsDoubles(rc, 0, n);
      for (size_t i = 0; i < n; ++i) out[i] = CompareOp(op, a[i], b[i]);
    }
    Column c = Column::Bool(std::move(out));
    c.validity() = std::move(validity);
    return c;
  }

  if (op == Expr::Op::kConcat) {
    const auto& a = lc.strings();
    const auto& b = rc.strings();
    std::vector<std::string> out(n);
    for (size_t i = 0; i < n; ++i) out[i] = a[i] + b[i];
    Column c = Column::String(std::move(out));
    c.validity() = std::move(validity);
    return c;
  }

  // Arithmetic.
  if (expr.type == DataType::kInt64 &&
      (op == Expr::Op::kAdd || op == Expr::Op::kSub ||
       op == Expr::Op::kMul || op == Expr::Op::kMod)) {
    std::vector<int64_t> a = AsInts(lc, 0, n), b = AsInts(rc, 0, n);
    std::vector<int64_t> out(n);
    switch (op) {
      case Expr::Op::kAdd:
        for (size_t i = 0; i < n; ++i) out[i] = a[i] + b[i];
        break;
      case Expr::Op::kSub:
        for (size_t i = 0; i < n; ++i) out[i] = a[i] - b[i];
        break;
      case Expr::Op::kMul:
        for (size_t i = 0; i < n; ++i) out[i] = a[i] * b[i];
        break;
      default:  // kMod
        for (size_t i = 0; i < n; ++i) {
          if (b[i] == 0) {
            if (validity.empty()) validity.assign(n, 1);
            validity[i] = 0;
            out[i] = 0;
          } else {
            out[i] = a[i] % b[i];
          }
        }
        break;
    }
    Column c = Column::Int64(std::move(out));
    c.validity() = std::move(validity);
    return c;
  }

  std::vector<double> a = AsDoubles(lc, 0, n), b = AsDoubles(rc, 0, n);
  std::vector<double> out(n);
  switch (op) {
    case Expr::Op::kAdd:
      for (size_t i = 0; i < n; ++i) out[i] = a[i] + b[i];
      break;
    case Expr::Op::kSub:
      for (size_t i = 0; i < n; ++i) out[i] = a[i] - b[i];
      break;
    case Expr::Op::kMul:
      for (size_t i = 0; i < n; ++i) out[i] = a[i] * b[i];
      break;
    case Expr::Op::kDiv:
      for (size_t i = 0; i < n; ++i) {
        if (b[i] == 0.0) {
          if (validity.empty()) validity.assign(n, 1);
          validity[i] = 0;
          out[i] = 0;
        } else {
          out[i] = a[i] / b[i];
        }
      }
      break;
    case Expr::Op::kMod:
      for (size_t i = 0; i < n; ++i) {
        out[i] = b[i] == 0.0 ? 0.0 : std::fmod(a[i], b[i]);
      }
      break;
    default:
      return Status::Internal("unexpected binary op");
  }
  Column c = Column::Float64(std::move(out));
  c.validity() = std::move(validity);
  return c;
}

Result<Column> EvalFunc(const BoundExpr& expr, const Table& input,
                        size_t begin, size_t end) {
  size_t n = RangeLen(begin, end);
  std::vector<Column> args;
  args.reserve(expr.children.size());
  for (const auto& ch : expr.children) {
    PYTOND_ASSIGN_OR_RETURN(Column c, EvaluateExpr(*ch, input, begin, end));
    args.push_back(std::move(c));
  }
  std::vector<uint8_t> validity;
  for (const Column& a : args) {
    validity = MergeValidity(validity, SliceValidity(a, 0, n));
  }
  const std::string& f = expr.func;

  if (f == "round") {
    std::vector<double> x = AsDoubles(args[0], 0, n);
    double scale = 1.0;
    if (args.size() > 1) {
      scale = std::pow(10.0, AsDoubles(args[1], 0, n)[0]);
    }
    std::vector<double> out(n);
    for (size_t i = 0; i < n; ++i) out[i] = std::round(x[i] * scale) / scale;
    Column c = Column::Float64(std::move(out));
    c.validity() = std::move(validity);
    return c;
  }
  if (f == "abs") {
    if (expr.type == DataType::kInt64) {
      std::vector<int64_t> x = AsInts(args[0], 0, n);
      for (auto& v : x) v = std::llabs(v);
      Column c = Column::Int64(std::move(x));
      c.validity() = std::move(validity);
      return c;
    }
    std::vector<double> x = AsDoubles(args[0], 0, n);
    for (auto& v : x) v = std::fabs(v);
    Column c = Column::Float64(std::move(x));
    c.validity() = std::move(validity);
    return c;
  }
  if (f == "sqrt" || f == "ln" || f == "exp") {
    std::vector<double> x = AsDoubles(args[0], 0, n);
    for (auto& v : x) {
      v = f == "sqrt" ? std::sqrt(v) : (f == "ln" ? std::log(v) : std::exp(v));
    }
    Column c = Column::Float64(std::move(x));
    c.validity() = std::move(validity);
    return c;
  }
  if (f == "power") {
    std::vector<double> x = AsDoubles(args[0], 0, n);
    std::vector<double> y = AsDoubles(args[1], 0, n);
    std::vector<double> out(n);
    for (size_t i = 0; i < n; ++i) out[i] = std::pow(x[i], y[i]);
    Column c = Column::Float64(std::move(out));
    c.validity() = std::move(validity);
    return c;
  }
  if (f == "year" || f == "month" || f == "day") {
    const auto& d = args[0].dates();
    std::vector<int64_t> out(n);
    for (size_t i = 0; i < n; ++i) {
      int y, m, dd;
      date_util::ToYMD(d[i], &y, &m, &dd);
      out[i] = f == "year" ? y : (f == "month" ? m : dd);
    }
    Column c = Column::Int64(std::move(out));
    c.validity() = std::move(validity);
    return c;
  }
  if (f == "length") {
    const auto& s = args[0].strings();
    std::vector<int64_t> out(n);
    for (size_t i = 0; i < n; ++i) out[i] = static_cast<int64_t>(s[i].size());
    Column c = Column::Int64(std::move(out));
    c.validity() = std::move(validity);
    return c;
  }
  if (f == "substr" || f == "substring") {
    const auto& s = args[0].strings();
    std::vector<int64_t> start = AsInts(args[1], 0, n);
    std::vector<int64_t> len =
        args.size() > 2 ? AsInts(args[2], 0, n)
                        : std::vector<int64_t>(n, 1 << 30);
    std::vector<std::string> out(n);
    for (size_t i = 0; i < n; ++i) {
      int64_t b = std::max<int64_t>(1, start[i]) - 1;  // SQL is 1-based
      if (b >= static_cast<int64_t>(s[i].size())) continue;
      int64_t l = std::max<int64_t>(0, len[i]);
      out[i] = s[i].substr(static_cast<size_t>(b),
                           static_cast<size_t>(
                               std::min<int64_t>(l, s[i].size() - b)));
    }
    Column c = Column::String(std::move(out));
    c.validity() = std::move(validity);
    return c;
  }
  if (f == "lower" || f == "upper") {
    const auto& s = args[0].strings();
    std::vector<std::string> out(n);
    for (size_t i = 0; i < n; ++i) {
      out[i] = s[i];
      for (char& ch : out[i]) {
        ch = f == "lower"
                 ? static_cast<char>(std::tolower(static_cast<unsigned char>(ch)))
                 : static_cast<char>(std::toupper(static_cast<unsigned char>(ch)));
      }
    }
    Column c = Column::String(std::move(out));
    c.validity() = std::move(validity);
    return c;
  }
  if (f == "starts_with" || f == "ends_with" || f == "contains") {
    const auto& s = args[0].strings();
    const auto& p = args[1].strings();
    std::vector<uint8_t> out(n);
    for (size_t i = 0; i < n; ++i) {
      out[i] = f == "starts_with" ? string_util::StartsWith(s[i], p[i])
               : f == "ends_with" ? string_util::EndsWith(s[i], p[i])
                                  : string_util::Contains(s[i], p[i]);
    }
    Column c = Column::Bool(std::move(out));
    c.validity() = std::move(validity);
    return c;
  }
  if (f == "coalesce") {
    Column out(expr.type);
    out.Reserve(n);
    for (size_t i = 0; i < n; ++i) {
      bool written = false;
      for (const Column& a : args) {
        if (a.IsValid(i)) {
          Value v = a.Get(i);
          out.Append(v);
          written = true;
          break;
        }
      }
      if (!written) out.AppendNull();
    }
    return out;
  }
  return Status::Unsupported("scalar function '" + f + "'");
}

}  // namespace

Result<Column> EvaluateExpr(const BoundExpr& expr, const Table& input,
                            size_t begin, size_t end) {
  size_t n = RangeLen(begin, end);
  switch (expr.kind) {
    case BoundExpr::Kind::kColRef: {
      const Column& src = input.column(expr.col_index);
      std::vector<uint32_t> rows(n);
      for (size_t i = 0; i < n; ++i) rows[i] = static_cast<uint32_t>(begin + i);
      return src.Gather(rows);
    }
    case BoundExpr::Kind::kConst:
      return ConstColumn(expr.constant, n);
    case BoundExpr::Kind::kBinary:
      return EvalBinary(expr, input, begin, end);
    case BoundExpr::Kind::kUnary: {
      PYTOND_ASSIGN_OR_RETURN(
          Column c, EvaluateExpr(*expr.children[0], input, begin, end));
      if (expr.op == Expr::Op::kNot) {
        auto& b = c.bools();
        for (size_t i = 0; i < n; ++i) {
          b[i] = (c.IsValid(i) && !b[i]) ? 1 : 0;
        }
        c.validity().clear();
        return c;
      }
      // Negate.
      if (c.type() == DataType::kInt64) {
        for (auto& v : c.ints()) v = -v;
      } else {
        for (auto& v : c.doubles()) v = -v;
      }
      return c;
    }
    case BoundExpr::Kind::kFunc:
      return EvalFunc(expr, input, begin, end);
    case BoundExpr::Kind::kCase: {
      size_t pairs = expr.children.size() / 2;
      std::vector<Column> conds, vals;
      for (size_t p = 0; p < pairs; ++p) {
        PYTOND_ASSIGN_OR_RETURN(
            Column c, EvaluateExpr(*expr.children[2 * p], input, begin, end));
        PYTOND_ASSIGN_OR_RETURN(
            Column v,
            EvaluateExpr(*expr.children[2 * p + 1], input, begin, end));
        conds.push_back(std::move(c));
        vals.push_back(std::move(v));
      }
      Column else_col(expr.type);
      bool has_else = expr.case_has_else;
      if (has_else) {
        PYTOND_ASSIGN_OR_RETURN(
            else_col,
            EvaluateExpr(*expr.children.back(), input, begin, end));
      }
      Column out(expr.type);
      out.Reserve(n);
      for (size_t i = 0; i < n; ++i) {
        bool hit = false;
        for (size_t p = 0; p < pairs; ++p) {
          if (conds[p].IsValid(i) && conds[p].bools()[i]) {
            out.Append(vals[p].Get(i));
            hit = true;
            break;
          }
        }
        if (!hit) {
          if (has_else) out.Append(else_col.Get(i));
          else out.AppendNull();
        }
      }
      return out;
    }
    case BoundExpr::Kind::kCast: {
      PYTOND_ASSIGN_OR_RETURN(
          Column c, EvaluateExpr(*expr.children[0], input, begin, end));
      if (c.type() == expr.type) return c;
      Column out(expr.type);
      out.Reserve(n);
      for (size_t i = 0; i < n; ++i) {
        if (!c.IsValid(i)) {
          out.AppendNull();
          continue;
        }
        switch (expr.type) {
          case DataType::kFloat64:
            out.Append(Value::Float64(c.Get(i).ToDouble()));
            break;
          case DataType::kInt64:
            if (c.type() == DataType::kString) {
              out.Append(
                  Value::Int64(std::strtoll(c.strings()[i].c_str(), nullptr, 10)));
            } else {
              out.Append(Value::Int64(static_cast<int64_t>(c.Get(i).ToDouble())));
            }
            break;
          case DataType::kString:
            out.Append(Value::String(c.Get(i).ToString()));
            break;
          case DataType::kDate:
            if (c.type() == DataType::kString) {
              PYTOND_ASSIGN_OR_RETURN(int32_t d,
                                      date_util::Parse(c.strings()[i]));
              out.Append(Value::Date(d));
            } else {
              out.Append(
                  Value::Date(static_cast<int32_t>(c.Get(i).ToDouble())));
            }
            break;
          default:
            return Status::Unsupported("cast target");
        }
      }
      return out;
    }
    case BoundExpr::Kind::kIsNull: {
      PYTOND_ASSIGN_OR_RETURN(
          Column c, EvaluateExpr(*expr.children[0], input, begin, end));
      std::vector<uint8_t> out(n);
      for (size_t i = 0; i < n; ++i) {
        bool isnull = !c.IsValid(i);
        out[i] = expr.negated ? !isnull : isnull;
      }
      return Column::Bool(std::move(out));
    }
    case BoundExpr::Kind::kInList: {
      PYTOND_ASSIGN_OR_RETURN(
          Column c, EvaluateExpr(*expr.children[0], input, begin, end));
      std::vector<uint8_t> out(n);
      for (size_t i = 0; i < n; ++i) {
        if (!c.IsValid(i)) {
          out[i] = 0;
          continue;
        }
        Value v = c.Get(i);
        bool found = false;
        for (const Value& item : expr.in_list) {
          if (v == item) {
            found = true;
            break;
          }
        }
        out[i] = expr.negated ? !found : found;
      }
      return Column::Bool(std::move(out));
    }
  }
  return Status::Internal("unreachable expr kind");
}

Result<Column> EvaluateExpr(const BoundExpr& expr, const Table& input) {
  return EvaluateExpr(expr, input, 0, input.num_rows());
}

Status EvaluatePredicate(const BoundExpr& pred, const Table& input,
                         size_t begin, size_t end,
                         std::vector<uint32_t>* out) {
  PYTOND_ASSIGN_OR_RETURN(Column c, EvaluateExpr(pred, input, begin, end));
  const auto& b = c.bools();
  for (size_t i = 0; i < b.size(); ++i) {
    if (c.IsValid(i) && b[i]) out->push_back(static_cast<uint32_t>(begin + i));
  }
  return Status::OK();
}

void AppendEncodedValue(const Column& col, size_t row, std::string* out) {
  if (!col.IsValid(row)) {
    out->push_back('\xFF');
    return;
  }
  switch (col.type()) {
    case DataType::kInt64:
    case DataType::kNull: {
      out->push_back('i');
      int64_t v = col.ints()[row];
      out->append(reinterpret_cast<const char*>(&v), sizeof(v));
      break;
    }
    case DataType::kFloat64: {
      out->push_back('f');
      double v = col.doubles()[row];
      // Normalize -0.0 so it hashes like +0.0.
      if (v == 0.0) v = 0.0;
      out->append(reinterpret_cast<const char*>(&v), sizeof(v));
      break;
    }
    case DataType::kString: {
      out->push_back('s');
      const std::string& s = col.strings()[row];
      uint32_t len = static_cast<uint32_t>(s.size());
      out->append(reinterpret_cast<const char*>(&len), sizeof(len));
      out->append(s);
      break;
    }
    case DataType::kBool:
      out->push_back('b');
      out->push_back(static_cast<char>(col.bools()[row]));
      break;
    case DataType::kDate: {
      out->push_back('d');
      int32_t v = col.dates()[row];
      out->append(reinterpret_cast<const char*>(&v), sizeof(v));
      break;
    }
  }
}

}  // namespace pytond::engine
