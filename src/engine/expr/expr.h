#ifndef PYTOND_ENGINE_EXPR_EXPR_H_
#define PYTOND_ENGINE_EXPR_EXPR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "engine/sql/ast.h"
#include "storage/table.h"

namespace pytond::engine {

struct BoundExpr;
using BoundExprPtr = std::shared_ptr<BoundExpr>;

/// A scalar expression bound to input column indices, annotated with its
/// result type. Evaluated vectorized over row ranges of a table.
struct BoundExpr {
  enum class Kind {
    kColRef,   // input column by index
    kConst,    // literal
    kBinary,   // arithmetic / comparison / logic / like / concat
    kUnary,    // NOT / negate
    kFunc,     // scalar function by name
    kCase,     // children = when1, then1, ..., [else]
    kCast,
    kIsNull,   // [NOT] IS NULL
    kInList,   // membership in constant list
  };

  Kind kind;
  DataType type = DataType::kNull;

  int col_index = -1;                     // kColRef
  Value constant;                         // kConst
  sql::Expr::Op op = sql::Expr::Op::kNone;  // kBinary / kUnary
  std::string func;                       // kFunc name (lower-case)
  bool negated = false;                   // kIsNull / kInList
  bool case_has_else = false;             // kCase
  std::vector<Value> in_list;             // kInList
  std::vector<BoundExprPtr> children;

  static BoundExprPtr ColRef(int index, DataType type);
  static BoundExprPtr Const(Value v);
  static BoundExprPtr Binary(sql::Expr::Op op, BoundExprPtr l, BoundExprPtr r,
                             DataType type);
  static BoundExprPtr Unary(sql::Expr::Op op, BoundExprPtr c, DataType type);
  static BoundExprPtr Func(std::string name, std::vector<BoundExprPtr> args,
                           DataType type);

  /// Structural description for debugging.
  std::string ToString() const;
  /// True if the expression only references columns (no constants-only).
  void CollectColumns(std::vector<int>* out) const;
  /// Rewrites column indices through `mapping` (old index -> new index).
  static BoundExprPtr RemapColumns(const BoundExprPtr& e,
                                   const std::vector<int>& mapping);
  BoundExprPtr CloneExpr() const;
};

/// Evaluates `expr` over rows [begin, end) of `input`, returning a column of
/// length end-begin. Type errors were caught at bind time; runtime errors
/// (e.g. bad substring bounds) are clamped, division by zero yields NULL.
Result<Column> EvaluateExpr(const BoundExpr& expr, const Table& input,
                            size_t begin, size_t end);

/// Convenience: evaluates over all rows.
Result<Column> EvaluateExpr(const BoundExpr& expr, const Table& input);

/// Evaluates a boolean predicate over [begin, end) and appends the indices
/// of passing rows (absolute indices) to `out`. NULL predicate = not pass.
Status EvaluatePredicate(const BoundExpr& pred, const Table& input,
                         size_t begin, size_t end,
                         std::vector<uint32_t>* out);

/// Infers the result type of a scalar function at bind time.
Result<DataType> ScalarFunctionType(const std::string& name,
                                    const std::vector<DataType>& args);

/// Appends a type-tagged binary encoding of row `row` of `col` to `out`;
/// used for hash keys in joins / group-by / distinct. NULLs encode
/// distinctly from every value.
void AppendEncodedValue(const Column& col, size_t row, std::string* out);

}  // namespace pytond::engine

#endif  // PYTOND_ENGINE_EXPR_EXPR_H_
