#ifndef PYTOND_ENGINE_SCHED_WORKER_POOL_H_
#define PYTOND_ENGINE_SCHED_WORKER_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace pytond::engine::sched {

/// Scheduler counters for one ParallelFor run (also accumulated pool-wide).
struct PoolRunStats {
  uint64_t morsels = 0;  // chunks executed (operator "batches")
  uint64_t steals = 0;   // loop tasks taken from another worker's deque
  uint64_t queued = 0;   // tasks already pending pool-wide at submit time
};

/// Persistent shared worker pool with per-worker work-stealing deques and
/// morsel-driven loop execution.
///
/// One pool lives per Database (created on first parallel query, grown to
/// the largest degree requested, joined on Database destruction), and every
/// parallel operator of every concurrent query submits to it instead of
/// spawning threads. A ParallelFor run enqueues one *loop task* per helper
/// worker; each executor (helpers + the calling thread, which always
/// participates) then claims fixed-size morsels of the iteration space from
/// a shared atomic cursor until it is drained. Loop tasks are dealt
/// round-robin across the per-worker deques; a worker whose own deque is
/// empty steals from the back of another's, which is what keeps several
/// concurrent queries' tasks flowing when their submitters landed on busy
/// workers.
///
/// Shutdown is graceful and deadlock-free by construction: the calling
/// thread can always finish a run alone, so tasks still queued when the
/// pool stops are simply dropped (their job's morsels have been or will be
/// claimed by the caller), and in-flight tasks are joined.
class WorkerPool {
 public:
  /// Spawns `workers` threads (>= 0). Typically num_threads - 1, since the
  /// submitting thread executes morsels too.
  explicit WorkerPool(int workers);
  ~WorkerPool();
  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  int num_workers() const;
  /// Grows the pool to at least `workers` threads; never shrinks.
  void EnsureWorkers(int workers);

  /// Runs fn(chunk, begin, end) over the ceil(n / morsel_rows) contiguous
  /// morsels of [0, n), using at most `parallelism` executors (this thread
  /// plus up to parallelism-1 pool workers). Blocks until every morsel has
  /// executed. Chunk indices are dense in [0, ceil(n / morsel_rows)) and
  /// chunk boundaries depend only on n and morsel_rows — never on worker
  /// count or scheduling — so callers can combine per-chunk results in
  /// chunk order deterministically. Safe to call from many threads at once.
  PoolRunStats ParallelFor(size_t n, size_t morsel_rows, int parallelism,
                           const std::function<void(size_t, size_t, size_t)>& fn);

  /// Cumulative counters across all runs (observability).
  uint64_t total_morsels() const { return total_morsels_.load(); }
  uint64_t total_steals() const { return total_steals_.load(); }
  uint64_t total_runs() const { return total_runs_.load(); }
  uint64_t peak_queue_depth() const { return peak_queue_.load(); }

  /// Per-worker lifetime activity, indexed by worker (observability).
  struct WorkerActivity {
    uint64_t busy_ns = 0;  // wall time spent executing loop tasks
    uint64_t tasks = 0;    // loop tasks executed (own deque + stolen)
  };
  std::vector<WorkerActivity> worker_activity() const;

 private:
  struct Job;
  struct Task {
    std::shared_ptr<Job> job;
  };
  /// Heap-allocated so worker threads keep a stable pointer while the
  /// vector grows under mu_ (EnsureWorkers never shrinks).
  struct alignas(64) WorkerCounters {
    std::atomic<uint64_t> busy_ns{0};
    std::atomic<uint64_t> tasks{0};
  };

  void WorkerMain(size_t self, WorkerCounters* counters);
  static void RunLoop(Job& job);

  mutable std::mutex mu_;  // guards deques_, pending_, stop_, growth
  std::condition_variable work_cv_;
  bool stop_ = false;
  size_t pending_ = 0;     // tasks sitting in deques, not yet claimed
  size_t next_deque_ = 0;  // round-robin dealing cursor
  std::vector<std::deque<Task>> deques_;
  std::vector<std::thread> threads_;
  std::vector<std::unique_ptr<WorkerCounters>> worker_counters_;

  std::atomic<uint64_t> total_morsels_{0};
  std::atomic<uint64_t> total_steals_{0};
  std::atomic<uint64_t> total_runs_{0};
  std::atomic<uint64_t> peak_queue_{0};
};

}  // namespace pytond::engine::sched

#endif  // PYTOND_ENGINE_SCHED_WORKER_POOL_H_
