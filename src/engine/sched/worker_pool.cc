#include "engine/sched/worker_pool.h"

#include <algorithm>

#include "obs/trace.h"

namespace pytond::engine::sched {

/// One ParallelFor invocation. Lives in a shared_ptr held by the caller and
/// by every queued loop task, so a task that drains after the caller
/// returned (all morsels already claimed) still touches valid memory — it
/// reads the exhausted cursor and exits without dereferencing `fn`.
struct WorkerPool::Job {
  const std::function<void(size_t, size_t, size_t)>* fn = nullptr;
  size_t n = 0;
  size_t morsel_rows = 0;
  size_t num_chunks = 0;
  std::atomic<size_t> next{0};  // morsel claim cursor
  std::atomic<size_t> done{0};  // morsels fully executed
  std::atomic<uint64_t> steals{0};
  std::mutex mu;
  std::condition_variable done_cv;
};

WorkerPool::WorkerPool(int workers) { EnsureWorkers(workers); }

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

int WorkerPool::num_workers() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(threads_.size());
}

void WorkerPool::EnsureWorkers(int workers) {
  std::lock_guard<std::mutex> lock(mu_);
  while (static_cast<int>(threads_.size()) < workers) {
    deques_.emplace_back();
    worker_counters_.push_back(std::make_unique<WorkerCounters>());
    size_t self = threads_.size();
    WorkerCounters* counters = worker_counters_.back().get();
    threads_.emplace_back(
        [this, self, counters] { WorkerMain(self, counters); });
  }
}

std::vector<WorkerPool::WorkerActivity> WorkerPool::worker_activity()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<WorkerActivity> out;
  out.reserve(worker_counters_.size());
  for (const auto& c : worker_counters_) {
    out.push_back({c->busy_ns.load(std::memory_order_relaxed),
                   c->tasks.load(std::memory_order_relaxed)});
  }
  return out;
}

void WorkerPool::RunLoop(Job& job) {
  for (;;) {
    size_t c = job.next.fetch_add(1, std::memory_order_relaxed);
    if (c >= job.num_chunks) return;
    size_t begin = c * job.morsel_rows;
    size_t end = std::min(job.n, begin + job.morsel_rows);
    (*job.fn)(c, begin, end);
    // acq_rel: publishes fn's writes to the caller's acquire load in
    // ParallelFor, with or without the condition-variable handoff.
    if (job.done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        job.num_chunks) {
      std::lock_guard<std::mutex> lock(job.mu);
      job.done_cv.notify_all();
    }
  }
}

void WorkerPool::WorkerMain(size_t self, WorkerCounters* counters) {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [&] { return stop_ || pending_ > 0; });
    if (stop_) return;  // queued tasks are dropped; callers self-complete
    Task task;
    bool found = false, stolen = false;
    if (!deques_[self].empty()) {
      task = std::move(deques_[self].front());
      deques_[self].pop_front();
      found = true;
    } else {
      for (size_t i = 1; i < deques_.size(); ++i) {
        std::deque<Task>& d = deques_[(self + i) % deques_.size()];
        if (!d.empty()) {
          task = std::move(d.back());
          d.pop_back();
          found = stolen = true;
          break;
        }
      }
    }
    if (!found) continue;  // lost the race for the task that woke us
    --pending_;
    lock.unlock();
    if (stolen) task.job->steals.fetch_add(1, std::memory_order_relaxed);
    uint64_t t0 = obs::NowNs();
    RunLoop(*task.job);
    counters->busy_ns.fetch_add(obs::NowNs() - t0,
                                std::memory_order_relaxed);
    counters->tasks.fetch_add(1, std::memory_order_relaxed);
    task.job.reset();
    lock.lock();
  }
}

PoolRunStats WorkerPool::ParallelFor(
    size_t n, size_t morsel_rows, int parallelism,
    const std::function<void(size_t, size_t, size_t)>& fn) {
  PoolRunStats stats;
  if (n == 0) return stats;
  if (morsel_rows == 0) morsel_rows = n;
  size_t chunks = (n + morsel_rows - 1) / morsel_rows;
  stats.morsels = chunks;

  auto job = std::make_shared<Job>();
  job->fn = &fn;
  job->n = n;
  job->morsel_rows = morsel_rows;
  job->num_chunks = chunks;

  size_t helpers = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    size_t cap = std::min(deques_.size(), chunks);
    helpers = std::min(
        cap, static_cast<size_t>(std::max(parallelism - 1, 0)));
    stats.queued = pending_;
    for (size_t i = 0; i < helpers; ++i) {
      deques_[next_deque_++ % deques_.size()].push_back(Task{job});
    }
    pending_ += helpers;
    uint64_t depth = pending_;
    uint64_t peak = peak_queue_.load(std::memory_order_relaxed);
    while (depth > peak &&
           !peak_queue_.compare_exchange_weak(peak, depth)) {
    }
  }
  if (helpers > 0) work_cv_.notify_all();

  RunLoop(*job);  // the submitting thread always participates

  if (job->done.load(std::memory_order_acquire) < chunks) {
    std::unique_lock<std::mutex> lock(job->mu);
    job->done_cv.wait(lock, [&] {
      return job->done.load(std::memory_order_acquire) >= chunks;
    });
  }
  stats.steals = job->steals.load(std::memory_order_relaxed);
  total_morsels_.fetch_add(stats.morsels, std::memory_order_relaxed);
  total_steals_.fetch_add(stats.steals, std::memory_order_relaxed);
  total_runs_.fetch_add(1, std::memory_order_relaxed);
  return stats;
}

}  // namespace pytond::engine::sched
