#include "runtime/interpreter.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/date_util.h"

#include "common/string_util.h"
#include "frontend/pylang/parser.h"
#include "frontend/translate/einsum.h"
#include "runtime/eager.h"

namespace pytond::runtime {

namespace {

using py::Expr;
using py::ExprPtr;
using py::Stmt;

/// Runtime value: a frame (table), a series (column + owner length), a
/// scalar, a string list, or a pending group-by.
struct RValue {
  enum class Kind { kFrame, kSeries, kScalar, kStrList, kGroupBy,
                    kEmptyFrame };
  Kind kind;
  Table table;                       // kFrame / kGroupBy base
  Column column;                     // kSeries
  Value scalar;                      // kScalar
  std::vector<std::string> strings;  // kStrList / groupby selection
  std::vector<Value> literals;       // kStrList raw items (isin lists)
  std::vector<std::string> group_keys;
  bool str_ctx = false;
  bool dt_ctx = false;
};

class Interpreter {
 public:
  Interpreter(const Catalog& catalog, const InterpretOptions& options)
      : catalog_(catalog), options_(options) {}

  Result<Table> Run(const py::Function& fn) {
    obs::TraceCollector* trace = options_.trace;
    obs::Span load_span(trace, "load", "eager");
    for (const std::string& p : fn.params) {
      const Table* t = catalog_.GetTable(p);
      if (t == nullptr) return Status::NotFound("table '" + p + "'");
      RValue v;
      v.kind = RValue::Kind::kFrame;
      v.table = *t;  // eager copy: the "data loading" the baseline pays
      env_[p] = std::move(v);
    }
    load_span.End();
    for (const Stmt& s : fn.body) {
      obs::Span stmt_span(trace, "stmt:line" + std::to_string(s.line),
                          "eager");
      if (s.kind == Stmt::Kind::kReturn) {
        PYTOND_ASSIGN_OR_RETURN(RValue v, Eval(s.value));
        if (v.kind == RValue::Kind::kSeries) {
          Table out;
          PYTOND_RETURN_IF_ERROR(out.AddColumn("value", v.column));
          return out;
        }
        if (v.kind != RValue::Kind::kFrame) {
          return Status::Unsupported("return value");
        }
        return v.table;
      }
      PYTOND_RETURN_IF_ERROR(ExecAssign(s));
    }
    return Status::InvalidArgument("no return");
  }

 private:
  Status ExecAssign(const Stmt& s) {
    if (s.target->kind == Expr::Kind::kName) {
      PYTOND_ASSIGN_OR_RETURN(RValue v, Eval(s.value));
      env_[s.target->name] = std::move(v);
      return Status::OK();
    }
    // df['col'] = series/scalar
    const std::string& name = s.target->children[0]->name;
    auto it = env_.find(name);
    if (it == env_.end()) return Status::NotFound(name);
    if (s.target->children[1]->kind != Expr::Kind::kLiteral) {
      return Status::Unsupported("assignment subscript");
    }
    std::string col = s.target->children[1]->literal.AsString();
    PYTOND_ASSIGN_OR_RETURN(RValue v, Eval(s.value));
    RValue& dst = it->second;
    Column c;
    if (v.kind == RValue::Kind::kSeries) {
      c = v.column;
    } else if (v.kind == RValue::Kind::kScalar) {
      size_t n = dst.kind == RValue::Kind::kFrame ? dst.table.num_rows() : 0;
      c = eager::Broadcast(v.scalar, n, DataType::kFloat64);
    } else {
      return Status::Unsupported("column assignment value");
    }
    if (dst.kind == RValue::Kind::kEmptyFrame) {
      Table t;
      PYTOND_RETURN_IF_ERROR(t.AddColumn(col, std::move(c)));
      dst.kind = RValue::Kind::kFrame;
      dst.table = std::move(t);
      return Status::OK();
    }
    if (dst.kind != RValue::Kind::kFrame) {
      return Status::Unsupported("column assignment target");
    }
    // Align lengths for cross-frame zips (paper's implicit join).
    size_t n = std::min(dst.table.num_rows(), c.size());
    if (c.size() != dst.table.num_rows()) {
      std::vector<uint32_t> idx(n);
      for (size_t i = 0; i < n; ++i) idx[i] = static_cast<uint32_t>(i);
      dst.table = dst.table.Gather(idx);
      c = c.Gather(idx);
    }
    int existing = dst.table.schema().Find(col);
    if (existing >= 0) {
      dst.table.column(static_cast<size_t>(existing)) = std::move(c);
    } else {
      PYTOND_RETURN_IF_ERROR(dst.table.AddColumn(col, std::move(c)));
    }
    return Status::OK();
  }

  Result<RValue> Eval(const ExprPtr& e) {
    switch (e->kind) {
      case Expr::Kind::kName: {
        auto it = env_.find(e->name);
        if (it == env_.end()) return Status::NotFound(e->name);
        return it->second;
      }
      case Expr::Kind::kLiteral: {
        RValue v;
        v.kind = RValue::Kind::kScalar;
        v.scalar = e->literal;
        return v;
      }
      case Expr::Kind::kList:
      case Expr::Kind::kTuple: {
        RValue v;
        v.kind = RValue::Kind::kStrList;
        for (const auto& c : e->children) {
          if (c->kind != Expr::Kind::kLiteral) {
            return Status::Unsupported("non-literal list");
          }
          v.literals.push_back(c->literal);
          if (c->literal.type() == DataType::kString) {
            v.strings.push_back(c->literal.AsString());
          }
        }
        return v;
      }
      case Expr::Kind::kAttribute:
        return EvalAttribute(*e);
      case Expr::Kind::kSubscript:
        return EvalSubscript(*e);
      case Expr::Kind::kCall:
        return EvalCall(*e);
      case Expr::Kind::kBinOp:
      case Expr::Kind::kCompare:
      case Expr::Kind::kBoolOp:
        return EvalBinary(*e);
      case Expr::Kind::kUnary: {
        PYTOND_ASSIGN_OR_RETURN(RValue v, Eval(e->children[0]));
        if (e->op == "~") {
          for (size_t i = 0; i < v.column.size(); ++i) {
            v.column.bools()[i] = !v.column.bools()[i];
          }
          return v;
        }
        if (v.kind == RValue::Kind::kScalar) {
          v.scalar = v.scalar.type() == DataType::kFloat64
                         ? Value::Float64(-v.scalar.AsFloat64())
                         : Value::Int64(-v.scalar.AsInt64());
          return v;
        }
        PYTOND_ASSIGN_OR_RETURN(
            v.column,
            eager::BinaryOp("-",
                            eager::Broadcast(Value::Int64(0), v.column.size(),
                                             DataType::kInt64),
                            v.column));
        return v;
      }
    }
    return Status::Internal("unreachable");
  }

  Result<RValue> EvalAttribute(const Expr& e) {
    PYTOND_ASSIGN_OR_RETURN(RValue base, Eval(e.children[0]));
    const std::string& attr = e.name;
    if (base.kind == RValue::Kind::kFrame) {
      if (attr == "values") return base;
      const Column* c = base.table.FindColumn(attr);
      if (c == nullptr) return Status::NotFound("column '" + attr + "'");
      RValue v;
      v.kind = RValue::Kind::kSeries;
      v.column = *c;
      return v;
    }
    if (base.kind == RValue::Kind::kSeries) {
      if (attr == "str") {
        base.str_ctx = true;
        return base;
      }
      if (attr == "dt") {
        base.dt_ctx = true;
        return base;
      }
      if (base.dt_ctx) {
        base.dt_ctx = false;
        const auto& d = base.column.dates();
        std::vector<int64_t> out(d.size());
        for (size_t i = 0; i < d.size(); ++i) {
          int y, m, dd;
          date_util::ToYMD(d[i], &y, &m, &dd);
          out[i] = attr == "year" ? y : (attr == "month" ? m : dd);
        }
        base.column = Column::Int64(std::move(out));
        return base;
      }
    }
    return Status::Unsupported("attribute '" + attr + "'");
  }

  Result<RValue> EvalSubscript(const Expr& e) {
    PYTOND_ASSIGN_OR_RETURN(RValue base, Eval(e.children[0]));
    PYTOND_ASSIGN_OR_RETURN(RValue idx, Eval(e.children[1]));
    if (base.kind == RValue::Kind::kGroupBy &&
        idx.kind == RValue::Kind::kStrList) {
      base.strings = idx.strings;
      return base;
    }
    if (base.kind != RValue::Kind::kFrame) {
      return Status::Unsupported("subscript base");
    }
    if (idx.kind == RValue::Kind::kScalar &&
        idx.scalar.type() == DataType::kString) {
      const Column* c = base.table.FindColumn(idx.scalar.AsString());
      if (c == nullptr) {
        return Status::NotFound("column '" + idx.scalar.AsString() + "'");
      }
      RValue v;
      v.kind = RValue::Kind::kSeries;
      v.column = *c;
      return v;
    }
    if (idx.kind == RValue::Kind::kStrList) {
      RValue v;
      v.kind = RValue::Kind::kFrame;
      PYTOND_ASSIGN_OR_RETURN(v.table,
                              eager::Project(base.table, idx.strings));
      return v;
    }
    if (idx.kind == RValue::Kind::kSeries) {
      RValue v;
      v.kind = RValue::Kind::kFrame;
      v.table = eager::Filter(base.table, idx.column);
      return v;
    }
    return Status::Unsupported("subscript index");
  }

  Result<RValue> EvalBinary(const Expr& e) {
    PYTOND_ASSIGN_OR_RETURN(RValue l, Eval(e.children[0]));
    PYTOND_ASSIGN_OR_RETURN(RValue r, Eval(e.children[1]));
    if (l.kind == RValue::Kind::kScalar && r.kind == RValue::Kind::kScalar) {
      // Fold numerically.
      Column lc = eager::Broadcast(l.scalar, 1, DataType::kFloat64);
      Column rc = eager::Broadcast(r.scalar, 1, DataType::kFloat64);
      PYTOND_ASSIGN_OR_RETURN(Column out, eager::BinaryOp(e.op, lc, rc));
      RValue v;
      v.kind = RValue::Kind::kScalar;
      v.scalar = out.Get(0);
      return v;
    }
    // Frame-level (array) elementwise arithmetic.
    if (l.kind == RValue::Kind::kFrame || r.kind == RValue::Kind::kFrame) {
      return ArrayBinary(e.op, l, r);
    }
    size_t n = l.kind == RValue::Kind::kSeries ? l.column.size()
                                               : r.column.size();
    Column lc = l.kind == RValue::Kind::kSeries
                    ? l.column
                    : eager::Broadcast(l.scalar, n, r.column.type());
    Column rc = r.kind == RValue::Kind::kSeries
                    ? r.column
                    : eager::Broadcast(r.scalar, n, l.column.type());
    RValue v;
    v.kind = RValue::Kind::kSeries;
    PYTOND_ASSIGN_OR_RETURN(v.column, eager::BinaryOp(e.op, lc, rc));
    return v;
  }

  Result<RValue> ArrayBinary(const std::string& op, RValue& l, RValue& r) {
    if (l.kind == RValue::Kind::kFrame && r.kind == RValue::Kind::kScalar) {
      RValue v = l;
      for (size_t c = 0; c < v.table.num_columns(); ++c) {
        if (v.table.schema().names[c] == "id") continue;
        PYTOND_ASSIGN_OR_RETURN(
            v.table.column(c),
            eager::BinaryOp(op, v.table.column(c),
                            eager::Broadcast(r.scalar,
                                             v.table.num_rows(),
                                             DataType::kFloat64)));
      }
      return v;
    }
    if (l.kind == RValue::Kind::kFrame && r.kind == RValue::Kind::kFrame &&
        op == "*") {
      RValue v;
      v.kind = RValue::Kind::kFrame;
      std::string spec = l.table.num_columns() <= 2 ? "i,i->i" : "ij,ij->ij";
      PYTOND_ASSIGN_OR_RETURN(
          v.table, eager::EinsumDense(spec == "i,i->i" ? "ij,ij->ij" : spec,
                                      {&l.table, &r.table}));
      return v;
    }
    return Status::Unsupported("array op '" + op + "'");
  }

  Result<RValue> EvalCall(const Expr& e) {
    const ExprPtr& callee = e.children[0];
    if (callee->kind != Expr::Kind::kAttribute) {
      if (callee->kind == Expr::Kind::kName && callee->name == "DataFrame") {
        return DataFrameCtor(e);
      }
      return Status::Unsupported("call " + callee->ToString());
    }
    const std::string& method = callee->name;
    const ExprPtr& base_expr = callee->children[0];
    if (base_expr->kind == Expr::Kind::kName &&
        (base_expr->name == "np" || base_expr->name == "numpy")) {
      return NumpyCall(method, e);
    }
    if (base_expr->kind == Expr::Kind::kName &&
        (base_expr->name == "pd" || base_expr->name == "pandas")) {
      if (method == "DataFrame") return DataFrameCtor(e);
      return Status::Unsupported("pd." + method);
    }
    PYTOND_ASSIGN_OR_RETURN(RValue base, Eval(base_expr));
    return Method(base, method, e);
  }

  Result<RValue> DataFrameCtor(const Expr& e) {
    RValue v;
    if (e.children.size() == 1) {
      v.kind = RValue::Kind::kEmptyFrame;
      return v;
    }
    PYTOND_ASSIGN_OR_RETURN(v, Eval(e.children[1]));
    return v;
  }

  Result<RValue> NumpyCall(const std::string& fn, const Expr& e) {
    if (fn == "einsum") {
      std::string spec = e.children[1]->literal.AsString();
      std::vector<Table> ops;
      for (size_t i = 2; i < e.children.size(); ++i) {
        PYTOND_ASSIGN_OR_RETURN(RValue v, Eval(e.children[i]));
        if (v.kind != RValue::Kind::kFrame) {
          return Status::Unsupported("einsum operand");
        }
        ops.push_back(std::move(v.table));
      }
      std::vector<const Table*> ptrs;
      for (const Table& t : ops) ptrs.push_back(&t);
      bool sparse = options_.sparse ||
                    (!ops.empty() && ops[0].schema().Find("row_id") == 0);
      RValue out;
      out.kind = RValue::Kind::kFrame;
      if (ops.size() > 2) {
        // N-ary: contract pairwise along the same path PyTond plans.
        PYTOND_ASSIGN_OR_RETURN(auto parsed,
                                frontend::ParseEinsumSpec(spec));
        PYTOND_ASSIGN_OR_RETURN(auto path,
                                frontend::PlanContractionPath(parsed));
        std::vector<Table> store = std::move(ops);
        for (const auto& step : path) {
          std::vector<const Table*> args = {&store[step.lhs]};
          if (step.binary.inputs.size() > 1) {
            args.push_back(&store[step.rhs]);
          }
          // Normalize index letters so the eager kernel table matches.
          std::string bspec =
              frontend::NormalizeSpec(step.binary).ToString();
          Table result;
          PYTOND_ASSIGN_OR_RETURN(
              result, sparse ? eager::EinsumSparse(bspec, args)
                             : eager::EinsumDense(bspec, args));
          store.push_back(std::move(result));
        }
        out.table = std::move(store.back());
        return out;
      }
      if (sparse) {
        PYTOND_ASSIGN_OR_RETURN(out.table, eager::EinsumSparse(spec, ptrs));
      } else {
        PYTOND_ASSIGN_OR_RETURN(out.table, eager::EinsumDense(spec, ptrs));
      }
      return out;
    }
    if (fn == "where") {
      PYTOND_ASSIGN_OR_RETURN(RValue c, Eval(e.children[1]));
      PYTOND_ASSIGN_OR_RETURN(RValue a, Eval(e.children[2]));
      PYTOND_ASSIGN_OR_RETURN(RValue b, Eval(e.children[3]));
      size_t n = c.column.size();
      Column av = a.kind == RValue::Kind::kSeries
                      ? a.column
                      : eager::Broadcast(a.scalar, n, DataType::kFloat64);
      Column bv = b.kind == RValue::Kind::kSeries
                      ? b.column
                      : eager::Broadcast(b.scalar, n, av.type());
      Column out(av.type());
      for (size_t i = 0; i < n; ++i) {
        bool cond = c.column.IsValid(i) && c.column.bools()[i];
        out.Append(cond ? av.Get(i) : bv.Get(i));
      }
      RValue v;
      v.kind = RValue::Kind::kSeries;
      v.column = std::move(out);
      return v;
    }
    return Status::Unsupported("np." + fn);
  }

  Result<RValue> Method(RValue& base, const std::string& method,
                        const Expr& e) {
    if (base.kind == RValue::Kind::kSeries) return SeriesMethod(base, method, e);
    if (base.kind == RValue::Kind::kGroupBy) {
      return GroupByMethod(base, method, e);
    }
    if (base.kind != RValue::Kind::kFrame) {
      return Status::Unsupported("method " + method);
    }
    Table& t = base.table;
    if (method == "merge") {
      PYTOND_ASSIGN_OR_RETURN(RValue other, Eval(e.children[1]));
      Table rt = other.kind == RValue::Kind::kFrame ? other.table : Table();
      if (other.kind == RValue::Kind::kSeries) {
        PYTOND_RETURN_IF_ERROR(rt.AddColumn("value", other.column));
      }
      std::string how = "inner";
      std::vector<std::string> lkeys, rkeys;
      for (const auto& [k, v] : e.kwargs) {
        if (k == "how") how = v->literal.AsString();
        if (k == "on") {
          auto r = Eval(v);
          lkeys = r->strings.empty()
                      ? std::vector<std::string>{v->literal.AsString()}
                      : r->strings;
          rkeys = lkeys;
        }
        if (k == "left_on") {
          auto r = Eval(v);
          lkeys = r->strings.empty()
                      ? std::vector<std::string>{v->literal.AsString()}
                      : r->strings;
        }
        if (k == "right_on") {
          auto r = Eval(v);
          rkeys = r->strings.empty()
                      ? std::vector<std::string>{v->literal.AsString()}
                      : r->strings;
        }
      }
      if (how != "cross" && (lkeys.empty() || lkeys.size() != rkeys.size())) {
        return Status::InvalidArgument("merge needs matching join keys");
      }
      RValue out;
      out.kind = RValue::Kind::kFrame;
      PYTOND_ASSIGN_OR_RETURN(out.table,
                              eager::Merge(t, rt, lkeys, rkeys, how));
      return out;
    }
    if (method == "groupby") {
      PYTOND_ASSIGN_OR_RETURN(RValue keys, Eval(e.children[1]));
      RValue v;
      v.kind = RValue::Kind::kGroupBy;
      v.table = t;
      v.group_keys = keys.kind == RValue::Kind::kStrList
                         ? keys.strings
                         : std::vector<std::string>{keys.scalar.AsString()};
      return v;
    }
    if (method == "agg" || method == "aggregate") {
      return DoAgg(t, {}, e);
    }
    if (method == "sort_values") {
      std::vector<std::string> keys;
      std::vector<bool> asc;
      for (const auto& [k, v] : e.kwargs) {
        if (k == "by") {
          PYTOND_ASSIGN_OR_RETURN(RValue r, Eval(v));
          keys = r.kind == RValue::Kind::kStrList
                     ? r.strings
                     : std::vector<std::string>{r.scalar.AsString()};
        }
        if (k == "ascending") {
          if (v->kind == Expr::Kind::kList) {
            for (const auto& item : v->children) {
              asc.push_back(item->literal.AsBool());
            }
          } else {
            asc.assign(1, v->literal.AsBool());
          }
        }
      }
      if (keys.empty() && e.children.size() > 1) {
        PYTOND_ASSIGN_OR_RETURN(RValue r, Eval(e.children[1]));
        keys = r.kind == RValue::Kind::kStrList
                   ? r.strings
                   : std::vector<std::string>{r.scalar.AsString()};
      }
      if (asc.empty()) asc.assign(keys.size(), true);
      while (asc.size() < keys.size()) asc.push_back(asc.back());
      RValue out;
      out.kind = RValue::Kind::kFrame;
      PYTOND_ASSIGN_OR_RETURN(out.table, eager::SortValues(t, keys, asc));
      return out;
    }
    if (method == "head") {
      int64_t n = 5;
      if (e.children.size() > 1) n = e.children[1]->literal.AsInt64();
      RValue out;
      out.kind = RValue::Kind::kFrame;
      out.table = eager::Head(t, static_cast<size_t>(n));
      return out;
    }
    if (method == "drop") {
      std::vector<std::string> cols;
      if (e.children.size() > 1) {
        PYTOND_ASSIGN_OR_RETURN(RValue r, Eval(e.children[1]));
        cols = r.kind == RValue::Kind::kStrList
                   ? r.strings
                   : std::vector<std::string>{r.scalar.AsString()};
      }
      std::vector<std::string> keep;
      for (const std::string& c : t.schema().names) {
        if (!std::count(cols.begin(), cols.end(), c)) keep.push_back(c);
      }
      RValue out;
      out.kind = RValue::Kind::kFrame;
      PYTOND_ASSIGN_OR_RETURN(out.table, eager::Project(t, keep));
      return out;
    }
    if (method == "reset_index" || method == "copy" || method == "astype" ||
        method == "to_numpy") {
      return base;
    }
    if (method == "pivot_table") {
      std::string index, columns, values;
      for (const auto& [k, v] : e.kwargs) {
        if (k == "index") index = v->literal.AsString();
        if (k == "columns") columns = v->literal.AsString();
        if (k == "values") values = v->literal.AsString();
      }
      if (options_.pivot_values.empty()) {
        return Status::InvalidArgument(
            "pivot_table needs distinct values via the decorator "
            "(pivot_values=[...])");
      }
      RValue out;
      out.kind = RValue::Kind::kFrame;
      PYTOND_ASSIGN_OR_RETURN(
          out.table, eager::PivotTable(t, index, columns, values,
                                       options_.pivot_values));
      return out;
    }
    if (method == "sum" || method == "nonzero" || method == "round" ||
        method == "all" || method == "compress") {
      return ArrayMethod(base, method, e);
    }
    return Status::Unsupported("frame method " + method);
  }

  Result<RValue> ArrayMethod(RValue& base, const std::string& method,
                             const Expr& e) {
    Table& t = base.table;
    if (method == "sum") {
      std::string spec = "ij->";
      if (const auto* kw = FindKw(e, "axis")) {
        spec = (*kw)->literal.AsInt64() == 0 ? "ij->j" : "ij->i";
      } else if (t.num_columns() <= 2) {
        spec = "i->";
      }
      if (spec == "i->") spec = "ij->";  // total over data columns
      RValue out;
      out.kind = RValue::Kind::kFrame;
      PYTOND_ASSIGN_OR_RETURN(out.table, eager::EinsumDense(spec, {&t}));
      return out;
    }
    if (method == "round") {
      RValue out = base;
      for (size_t c = 0; c < out.table.num_columns(); ++c) {
        if (out.table.schema().names[c] == "id") continue;
        Column& col = out.table.column(c);
        if (col.type() == DataType::kFloat64) {
          for (double& v : col.doubles()) v = std::round(v);
        }
      }
      return out;
    }
    return Status::Unsupported("array method " + method);
  }

  static const ExprPtr* FindKw(const Expr& e, const std::string& name) {
    for (const auto& [k, v] : e.kwargs) {
      if (k == name) return &v;
    }
    return nullptr;
  }

  Result<RValue> SeriesMethod(RValue& base, const std::string& method,
                              const Expr& e) {
    if (base.str_ctx) {
      base.str_ctx = false;
      const auto& s = base.column.strings();
      std::vector<uint8_t> mask(s.size());
      if (method == "startswith" || method == "endswith" ||
          method == "contains") {
        std::string pat = e.children[1]->literal.AsString();
        // Patterns may embed '%' wildcards (like Pandas regex-ish
        // contains); evaluate through the LIKE matcher for parity with
        // the generated SQL.
        std::string like = method == "startswith" ? pat + "%"
                           : method == "endswith" ? "%" + pat
                                                  : "%" + pat + "%";
        for (size_t i = 0; i < s.size(); ++i) {
          mask[i] = string_util::Like(s[i], like);
        }
        RValue v;
        v.kind = RValue::Kind::kSeries;
        v.column = Column::Bool(std::move(mask));
        return v;
      }
      if (method == "slice") {
        int64_t a = e.children[1]->literal.AsInt64();
        int64_t b = e.children[2]->literal.AsInt64();
        std::vector<std::string> out(s.size());
        for (size_t i = 0; i < s.size(); ++i) {
          if (a < static_cast<int64_t>(s[i].size())) {
            out[i] = s[i].substr(static_cast<size_t>(a),
                                 static_cast<size_t>(b - a));
          }
        }
        RValue v;
        v.kind = RValue::Kind::kSeries;
        v.column = Column::String(std::move(out));
        return v;
      }
      return Status::Unsupported(".str." + method);
    }
    if (method == "isin") {
      PYTOND_ASSIGN_OR_RETURN(RValue other, Eval(e.children[1]));
      Column values;
      if (other.kind == RValue::Kind::kSeries) {
        values = other.column;
      } else if (other.kind == RValue::Kind::kFrame &&
                 other.table.num_columns() == 1) {
        values = other.table.column(0);
      } else if (other.kind == RValue::Kind::kStrList) {
        bool all_strings = other.strings.size() == other.literals.size();
        values = Column(all_strings ? DataType::kString
                                    : other.literals.empty()
                                          ? DataType::kString
                                          : other.literals[0].type());
        for (const Value& lit : other.literals) values.Append(lit);
        // isin over a numeric literal list must match the probe's type
        // encoding: normalize int lists probing float columns.
        if (!all_strings && base.column.type() == DataType::kFloat64 &&
            values.type() == DataType::kInt64) {
          Column fv(DataType::kFloat64);
          for (size_t i = 0; i < values.size(); ++i) {
            fv.Append(Value::Float64(values.Get(i).ToDouble()));
          }
          values = std::move(fv);
        }
      } else {
        return Status::Unsupported("isin operand");
      }
      if (other.kind == RValue::Kind::kStrList && other.literals.empty()) {
        return Status::InvalidArgument("isin([]) is empty");
      }
      RValue v;
      v.kind = RValue::Kind::kSeries;
      PYTOND_ASSIGN_OR_RETURN(v.column,
                              eager::IsinMask(base.column, values));
      return v;
    }
    if (method == "unique") {
      Table t;
      PYTOND_RETURN_IF_ERROR(t.AddColumn("value", base.column));
      RValue v;
      v.kind = RValue::Kind::kFrame;
      PYTOND_ASSIGN_OR_RETURN(v.table, eager::Unique(t, "value"));
      return v;
    }
    if (method == "round") {
      RValue v = base;
      if (v.column.type() == DataType::kFloat64) {
        double scale = 1;
        if (e.children.size() > 1) {
          scale = std::pow(10.0, static_cast<double>(
                                     e.children[1]->literal.AsInt64()));
        }
        for (double& d : v.column.doubles()) {
          d = std::round(d * scale) / scale;
        }
      }
      return v;
    }
    static const char* kAggs[] = {"sum", "min", "max", "mean", "count",
                                  "nunique"};
    for (const char* fn : kAggs) {
      if (method == fn) {
        Table t;
        PYTOND_RETURN_IF_ERROR(t.AddColumn("value", base.column));
        RValue v;
        v.kind = RValue::Kind::kFrame;
        PYTOND_ASSIGN_OR_RETURN(
            v.table, eager::GroupByAgg(t, {}, {{method, "value", method}}));
        return v;
      }
    }
    if (method == "astype") return base;
    return Status::Unsupported("series method " + method);
  }

  Result<RValue> GroupByMethod(RValue& base, const std::string& method,
                               const Expr& e) {
    if (method == "agg" || method == "aggregate") {
      return DoAgg(base.table, base.group_keys, e);
    }
    static const char* kAggs[] = {"sum", "min", "max", "mean", "count",
                                  "nunique"};
    for (const char* fn : kAggs) {
      if (method == fn) {
        std::vector<eager::AggSpec> specs;
        std::vector<std::string> cols = base.strings;
        if (cols.empty()) {
          for (const std::string& c : base.table.schema().names) {
            if (!std::count(base.group_keys.begin(), base.group_keys.end(),
                            c)) {
              cols.push_back(c);
            }
          }
        }
        for (const std::string& c : cols) specs.push_back({c, c, method});
        RValue v;
        v.kind = RValue::Kind::kFrame;
        PYTOND_ASSIGN_OR_RETURN(
            v.table, eager::GroupByAgg(base.table, base.group_keys, specs));
        return v;
      }
    }
    return Status::Unsupported("groupby method " + method);
  }

  Result<RValue> DoAgg(const Table& t, const std::vector<std::string>& keys,
                       const Expr& e) {
    if (e.kwargs.empty()) {
      return Status::Unsupported("agg() requires named aggregations");
    }
    std::vector<eager::AggSpec> specs;
    for (const auto& [out, spec] : e.kwargs) {
      specs.push_back({out, spec->children[0]->literal.AsString(),
                       spec->children[1]->literal.AsString()});
    }
    RValue v;
    v.kind = RValue::Kind::kFrame;
    PYTOND_ASSIGN_OR_RETURN(v.table, eager::GroupByAgg(t, keys, specs));
    return v;
  }

  const Catalog& catalog_;
  InterpretOptions options_;
  std::map<std::string, RValue> env_;
};

}  // namespace

Result<Table> Interpret(const py::Function& function, const Catalog& catalog,
                        const InterpretOptions& options) {
  obs::Span span(options.trace, "eager", "eager");
  return Interpreter(catalog, options).Run(function);
}

Result<Table> InterpretSource(const std::string& source,
                              const Catalog& catalog,
                              const InterpretOptions& options) {
  PYTOND_ASSIGN_OR_RETURN(py::Module module, py::ParseModule(source));
  if (module.functions.size() != 1) {
    return Status::InvalidArgument("expected one @pytond function");
  }
  InterpretOptions opts = options;
  for (const auto& [k, v] : module.functions[0].decorator_kwargs) {
    if (k == "pivot_values") {
      for (const auto& item : v->children) {
        opts.pivot_values.push_back(item->literal.AsString());
      }
    }
    if (k == "layout" && v->kind == py::Expr::Kind::kLiteral) {
      opts.sparse = v->literal.AsString() == "sparse";
    }
  }
  return Interpret(module.functions[0], catalog, opts);
}

}  // namespace pytond::runtime
