#ifndef PYTOND_RUNTIME_INTERPRETER_H_
#define PYTOND_RUNTIME_INTERPRETER_H_

#include <string>

#include "common/status.h"
#include "frontend/pylang/ast.h"
#include "obs/trace.h"
#include "storage/catalog.h"

namespace pytond::runtime {

namespace py = ::pytond::frontend::py;

/// Options mirroring the @pytond decorator for the eager path.
struct InterpretOptions {
  std::vector<std::string> pivot_values;
  bool sparse = false;
  /// Optional tracing: the run opens an "eager" span (category "eager")
  /// with parse/load/per-statement children, so speedup ratios vs. the
  /// compiled path are computable from one trace (QueryProfile::eager_ms).
  obs::TraceCollector* trace = nullptr;
};

/// Executes a parsed mini-Python function eagerly against catalog tables —
/// the stand-in for running the original program under CPython with
/// Pandas/NumPy: one fully-materialized operation per API call, single
/// threaded, no cross-operation optimization.
Result<Table> Interpret(const py::Function& function, const Catalog& catalog,
                        const InterpretOptions& options = {});

/// Parses `source` (module with one @pytond function) and interprets it.
Result<Table> InterpretSource(const std::string& source,
                              const Catalog& catalog,
                              const InterpretOptions& options = {});

}  // namespace pytond::runtime

#endif  // PYTOND_RUNTIME_INTERPRETER_H_
